#include "sweep/sweep_runner.hh"

#include <cstdlib>
#include <cstring>

#include "sim/env.hh"
#include "sim/logging.hh"

namespace bvl
{

unsigned
SweepRunner::defaultJobs()
{
    // Strict parse: a typo'd BVL_JOBS (or one that overflows long)
    // must fail loudly rather than silently saturate or fall back.
    long long v = envInt("BVL_JOBS", 0, 1, 1 << 16);
    if (v)
        return static_cast<unsigned>(v);
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : numJobs(jobs ? jobs : defaultJobs())
{
    // numJobs == 1 runs everything inline in submit(); otherwise the
    // pool is fixed at construction so a sweep's thread count never
    // depends on its job count.
    if (numJobs > 1) {
        workers.reserve(numJobs);
        for (unsigned i = 0; i < numJobs; ++i)
            workers.emplace_back([this] { workerLoop(); });
    }
}

SweepRunner::~SweepRunner()
{
    {
        std::lock_guard<std::mutex> lock(m);
        stopping = true;
    }
    cv.notify_all();
    for (auto &w : workers)
        w.join();
}

void
SweepRunner::workerLoop()
{
    for (;;) {
        std::packaged_task<RunResult()> task;
        {
            std::unique_lock<std::mutex> lock(m);
            cv.wait(lock, [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return;     // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        // The task owns its whole simulation context; exceptions are
        // banked in the future by packaged_task.
        task();
    }
}

std::future<RunResult>
SweepRunner::submit(std::function<RunResult()> fn)
{
    std::packaged_task<RunResult()> task(std::move(fn));
    auto fut = task.get_future();
    if (numJobs == 1) {
        // Exact legacy behavior: run now, on this thread.
        task();
        return fut;
    }
    {
        std::lock_guard<std::mutex> lock(m);
        bvl_assert(!stopping, "submit() on a stopped SweepRunner");
        queue.push_back(std::move(task));
    }
    cv.notify_one();
    return fut;
}

std::future<RunResult>
SweepRunner::submit(SweepJob job)
{
    return submit([job = std::move(job)] {
        return runWorkload(job.design, job.workload, job.scale,
                           job.opts);
    });
}

std::vector<RunResult>
SweepRunner::runAll(const std::vector<SweepJob> &sweep)
{
    std::vector<std::future<RunResult>> futures;
    futures.reserve(sweep.size());
    for (const auto &job : sweep)
        futures.push_back(submit(job));
    std::vector<RunResult> results;
    results.reserve(sweep.size());
    for (auto &f : futures)
        results.push_back(f.get());
    return results;
}

std::vector<RunResult>
runSweep(const std::vector<SweepJob> &sweep, unsigned jobs)
{
    SweepRunner runner(jobs);
    return runner.runAll(sweep);
}

} // namespace bvl
