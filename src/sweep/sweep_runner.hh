/**
 * @file
 * Parallel sweep runner: executes independent (design, workload,
 * RunOptions) simulation jobs on a fixed thread pool.
 *
 * The paper's evaluation is a large grid of independent simulations
 * (7 designs x 19 workloads for Figure 4, times 16 V/f points for the
 * DVFS studies). Every job builds its own workload and Soc, so jobs
 * share no mutable state (DESIGN.md §10) and can run concurrently.
 *
 * Results are consumed in deterministic submission order regardless of
 * completion order: submit() returns a std::future and callers get()
 * them in the order they submitted, or use runSweep()/runAll() which
 * return a vector indexed by submission order. Combined with the
 * library's re-entrancy guarantees this makes sweep output
 * byte-identical for any thread count.
 *
 * The thread count comes from BVL_JOBS (default: all hardware
 * threads). BVL_JOBS=1 is *exact* legacy behavior: jobs execute
 * inline on the submitting thread, at submission time, with no worker
 * threads created.
 */

#ifndef BVL_SWEEP_SWEEP_RUNNER_HH
#define BVL_SWEEP_SWEEP_RUNNER_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "soc/run_driver.hh"

namespace bvl
{

/** One independent simulation of the sweep grid. */
struct SweepJob
{
    Design design = Design::d1b4VL;
    std::string workload;
    Scale scale = Scale::tiny;
    RunOptions opts{};
};

class SweepRunner
{
  public:
    /**
     * @p jobs worker threads; 0 means defaultJobs() (the BVL_JOBS
     * environment variable, falling back to hardware_concurrency).
     * With 1 job no threads are created and submit() runs the work
     * inline — exact legacy serial behavior.
     */
    explicit SweepRunner(unsigned jobs = 0);
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** Number of concurrent jobs this runner executes. */
    unsigned jobs() const { return numJobs; }

    /**
     * Queue one simulation; the future yields its RunResult. Futures
     * complete in any order — get() them in submission order for
     * deterministic consumption.
     */
    std::future<RunResult> submit(SweepJob job);

    /** Queue an arbitrary run thunk (custom Workload subclasses). */
    std::future<RunResult> submit(std::function<RunResult()> fn);

    /**
     * Submit every job and wait for all of them; results are indexed
     * by submission order.
     */
    std::vector<RunResult> runAll(const std::vector<SweepJob> &sweep);

    /** Resolved BVL_JOBS (>= 1); see the file comment. */
    static unsigned defaultJobs();

  private:
    void workerLoop();

    unsigned numJobs;
    std::vector<std::thread> workers;
    std::deque<std::packaged_task<RunResult()>> queue;
    std::mutex m;
    std::condition_variable cv;
    bool stopping = false;
};

/** One-shot convenience: run a whole sweep on a temporary runner. */
std::vector<RunResult> runSweep(const std::vector<SweepJob> &sweep,
                                unsigned jobs = 0);

} // namespace bvl

#endif // BVL_SWEEP_SWEEP_RUNNER_HH
