/**
 * @file
 * Content-addressed result cache with integrity verification.
 *
 * One file per job hash under <dir>/<hh>/<hash>.json (two-hex-char
 * shard directories), holding:
 *
 *   {"schema":"bvl-result-cache-v1","hash":"...","revision":"...",
 *    "digest":"<sha256 of the compact result serialization>",
 *    "result":{...}}
 *
 * Only ok results are cached — failures stay a per-sweep journal
 * concern so a transient failure never poisons future sweeps.
 *
 * lookup() re-serializes the embedded result and compares its SHA-256
 * against the stored digest, so a truncated, bit-flipped or
 * hand-edited entry is detected; the bad file is quarantined (renamed
 * to <file>.corrupt) and the lookup misses, which makes the service
 * transparently re-simulate and re-store. Stores are atomic
 * (temp file + fsync + rename), so concurrent sweeps sharing a cache
 * directory never observe a partial entry under its final name.
 */

#ifndef BVL_SWEEP_SERVICE_RESULT_CACHE_HH
#define BVL_SWEEP_SERVICE_RESULT_CACHE_HH

#include <atomic>
#include <string>

#include "soc/run_driver.hh"

namespace bvl
{

class ResultCache
{
  public:
    ResultCache() = default;

    /** Enable the cache rooted at @p dir (created on first store). */
    void setDir(std::string dir) { _dir = std::move(dir); }

    bool enabled() const { return !_dir.empty(); }
    const std::string &dir() const { return _dir; }

    /** Entry file path for @p hash (valid whether or not it exists). */
    std::string entryPath(const std::string &hash) const;

    /**
     * Load and verify the entry for @p hash. Returns false on miss,
     * or — after quarantining the file — on any integrity failure.
     */
    bool lookup(const std::string &hash, RunResult *out);

    /** Atomically persist an ok @p result under @p hash. */
    void store(const std::string &hash, const RunResult &result);

    /** Integrity failures detected by lookup() so far. */
    std::uint64_t corruptEntries() const { return _corrupt; }

  private:
    std::string _dir;
    std::atomic<std::uint64_t> _corrupt{0};
};

} // namespace bvl

#endif // BVL_SWEEP_SERVICE_RESULT_CACHE_HH
