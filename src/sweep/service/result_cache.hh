/**
 * @file
 * Content-addressed result cache with integrity verification.
 *
 * One file per job hash under <dir>/<hh>/<hash>.json (two-hex-char
 * shard directories), holding:
 *
 *   {"schema":"bvl-result-cache-v1","hash":"...","revision":"...",
 *    "digest":"<sha256 of the compact result serialization>",
 *    "result":{...}}
 *
 * Only ok results are cached — failures stay a per-sweep journal
 * concern so a transient failure never poisons future sweeps.
 *
 * lookup() re-serializes the embedded result and compares its SHA-256
 * against the stored digest, so a truncated, bit-flipped or
 * hand-edited entry is detected; the bad file is quarantined (renamed
 * to <file>.corrupt) and the lookup misses, which makes the service
 * transparently re-simulate and re-store. Stores are atomic
 * (temp file + fsync + rename), so concurrent sweeps sharing a cache
 * directory never observe a partial entry under its final name.
 *
 * Degradation policy (DESIGN.md §17): the cache is a pure
 * accelerator, so every failure turns into a miss. A failed store
 * additionally disables storing for the rest of the run (one warning)
 * — a full disk should cost one warning, not one per job. All
 * filesystem access goes through the sim/io seam; setDir() sweeps
 * orphaned "*.tmp.*" files left by dead writers.
 */

#ifndef BVL_SWEEP_SERVICE_RESULT_CACHE_HH
#define BVL_SWEEP_SERVICE_RESULT_CACHE_HH

#include <atomic>
#include <string>

#include "soc/run_driver.hh"

namespace bvl
{

class ResultCache
{
  public:
    ResultCache() = default;

    /**
     * Enable the cache rooted at @p dir (created on first store).
     * Sweeps stale temp files orphaned under @p dir by dead writers.
     */
    void setDir(std::string dir);

    bool enabled() const { return !_dir.empty(); }
    const std::string &dir() const { return _dir; }

    /** Entry file path for @p hash (valid whether or not it exists). */
    std::string entryPath(const std::string &hash) const;

    /**
     * Load and verify the entry for @p hash. Returns false on miss,
     * or — after quarantining the file — on any integrity failure.
     */
    bool lookup(const std::string &hash, RunResult *out);

    /** Atomically persist an ok @p result under @p hash. */
    void store(const std::string &hash, const RunResult &result);

    /** Integrity failures detected by lookup() so far. */
    std::uint64_t corruptEntries() const { return _corrupt; }

    /** True once a failed store disabled further stores this run. */
    bool storeBroken() const { return _storeBroken; }

    /** Stale temps removed by setDir()'s startup sweep. */
    unsigned tempsSwept() const { return _tempsSwept; }

  private:
    std::string _dir;
    std::atomic<std::uint64_t> _corrupt{0};
    std::atomic<bool> _storeBroken{false};
    unsigned _tempsSwept = 0;
};

} // namespace bvl

#endif // BVL_SWEEP_SERVICE_RESULT_CACHE_HH
