#include "sweep/service/result_cache.hh"

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "sim/logging.hh"
#include "soc/run_io.hh"
#include "sweep/service/digest.hh"
#include "sweep/service/job_hash.hh"

namespace bvl
{

namespace
{

constexpr const char *kCacheSchema = "bvl-result-cache-v1";

void
quarantine(const std::string &path)
{
    std::error_code ec;
    std::filesystem::rename(path, path + ".corrupt", ec);
    if (ec)
        warn("result cache: cannot quarantine %s: %s", path.c_str(),
             ec.message().c_str());
}

} // namespace

std::string
ResultCache::entryPath(const std::string &hash) const
{
    return _dir + "/" + hash.substr(0, 2) + "/" + hash + ".json";
}

bool
ResultCache::lookup(const std::string &hash, RunResult *out)
{
    if (!enabled())
        return false;
    std::string path = entryPath(hash);
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream text;
    text << in.rdbuf();

    // Any structural problem from here on is an integrity failure:
    // quarantine the entry and miss so the job re-simulates.
    try {
        Json doc = Json::parse(text.str());
        if (doc["schema"].asString() != kCacheSchema ||
            doc["hash"].asString() != hash)
            throw SimFatalError("schema/hash mismatch");
        std::string payload = doc["result"].dump(0);
        if (sha256Hex(payload) != doc["digest"].asString())
            throw SimFatalError("digest mismatch");
        *out = runResultFromJson(doc["result"]);
    } catch (const SimError &e) {
        ++_corrupt;
        warn("result cache: corrupt entry %s (%s); quarantined and "
             "re-simulating", path.c_str(), e.what());
        quarantine(path);
        return false;
    }
    return true;
}

void
ResultCache::store(const std::string &hash, const RunResult &result)
{
    if (!enabled())
        return;
    std::string path = entryPath(hash);

    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);

    Json doc = Json::object();
    doc.set("schema", kCacheSchema);
    doc.set("hash", hash);
    doc.set("revision", kLibraryRevision);
    Json payload = runResultToJson(result);
    doc.set("digest", sha256Hex(payload.dump(0)));
    doc.set("result", std::move(payload));
    std::string text = doc.dump(0);
    text += '\n';

    // Atomic publish: unique temp name, fsync, rename. Two writers
    // racing on the same hash both write identical bytes, so either
    // rename winning is correct.
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
                      "." +
                      std::to_string(std::hash<std::thread::id>{}(
                          std::this_thread::get_id()) &
                                     0xffff);
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        warn("result cache: cannot write %s", tmp.c_str());
        return;
    }
    std::size_t off = 0;
    bool ok = true;
    while (off < text.size()) {
        ssize_t n = ::write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            ok = false;
            break;
        }
        off += static_cast<std::size_t>(n);
    }
    if (ok)
        ::fsync(fd);
    ::close(fd);
    if (!ok) {
        warn("result cache: short write of %s; entry dropped",
             tmp.c_str());
        ::unlink(tmp.c_str());
        return;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        warn("result cache: cannot publish %s: %s", path.c_str(),
             ec.message().c_str());
        ::unlink(tmp.c_str());
    }
}

} // namespace bvl
