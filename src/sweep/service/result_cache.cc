#include "sweep/service/result_cache.hh"

#include "sim/io/sim_io.hh"
#include "sim/logging.hh"
#include "soc/run_io.hh"
#include "sweep/service/digest.hh"
#include "sweep/service/job_hash.hh"

namespace bvl
{

namespace
{

constexpr const char *kCacheSchema = "bvl-result-cache-v1";

void
quarantine(const std::string &path)
{
    std::string err;
    if (!io::renameFile("result_cache.quarantine.rename", path,
                        path + ".corrupt", &err))
        warn("result cache: cannot quarantine %s: %s", path.c_str(),
             err.c_str());
}

} // namespace

void
ResultCache::setDir(std::string dir)
{
    _dir = std::move(dir);
    // Orphaned publish temps (writers that died mid-store) are pure
    // litter: nothing references them, so clear them out up front.
    if (!_dir.empty())
        _tempsSwept = io::sweepStaleTemps("result_cache.sweep", _dir,
                                          /*selfStale=*/true);
}

std::string
ResultCache::entryPath(const std::string &hash) const
{
    return _dir + "/" + hash.substr(0, 2) + "/" + hash + ".json";
}

bool
ResultCache::lookup(const std::string &hash, RunResult *out)
{
    if (!enabled())
        return false;
    std::string path = entryPath(hash);
    std::string text;
    bool missing = false;
    std::string rerr;
    if (!io::readFile("result_cache.lookup.read", path, &text,
                      &missing, &rerr)) {
        // Unreadable-but-present is a transient I/O problem, not
        // proof of corruption: miss (the job re-simulates) but leave
        // the entry for the next run to try again.
        if (!missing)
            warn("result cache: cannot read %s (%s); re-simulating",
                 path.c_str(), rerr.c_str());
        return false;
    }

    // Any structural problem from here on is an integrity failure:
    // quarantine the entry and miss so the job re-simulates.
    try {
        Json doc = Json::parse(text);
        if (doc["schema"].asString() != kCacheSchema ||
            doc["hash"].asString() != hash)
            throw SimFatalError("schema/hash mismatch");
        std::string payload = doc["result"].dump(0);
        if (sha256Hex(payload) != doc["digest"].asString())
            throw SimFatalError("digest mismatch");
        *out = runResultFromJson(doc["result"]);
    } catch (const io::IoCrashError &) {
        throw;
    } catch (const SimError &e) {
        ++_corrupt;
        warn("result cache: corrupt entry %s (%s); quarantined and "
             "re-simulating", path.c_str(), e.what());
        quarantine(path);
        return false;
    }
    return true;
}

void
ResultCache::store(const std::string &hash, const RunResult &result)
{
    if (!enabled() || _storeBroken)
        return;
    std::string path = entryPath(hash);

    Json doc = Json::object();
    doc.set("schema", kCacheSchema);
    doc.set("hash", hash);
    doc.set("revision", kLibraryRevision);
    Json payload = runResultToJson(result);
    doc.set("digest", sha256Hex(payload.dump(0)));
    doc.set("result", std::move(payload));
    std::string text = doc.dump(0);
    text += '\n';

    // Atomic publish: unique temp name, fsync, rename (the seam owns
    // the mechanics and unlinks the temp on failure). Two writers
    // racing on the same hash both write identical bytes, so either
    // rename winning is correct.
    std::string err;
    std::string parent =
        std::string(path, 0, path.find_last_of('/'));
    if (!io::mkdirs("result_cache.store.mkdir", parent, &err) ||
        !io::writeFileAtomic("result_cache.store", path, text,
                             &err)) {
        // One failed store very likely means they all fail (disk
        // full, directory unwritable): disable the store side for
        // the rest of the run rather than warn per job. Lookups stay
        // live — whatever was published before the disk went bad is
        // still perfectly good.
        if (!_storeBroken.exchange(true))
            warn("result cache: cannot store %s (%s); cache stores "
                 "DISABLED for the rest of this run", path.c_str(),
                 err.c_str());
    }
}

} // namespace bvl
