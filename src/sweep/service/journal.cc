#include "sweep/service/journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "sim/check/forensics.hh"
#include "sim/logging.hh"
#include "soc/run_io.hh"

namespace bvl
{

namespace
{

constexpr const char *kJournalSchema = "bvl-sweep-journal-v1";

} // namespace

SweepJournal::~SweepJournal()
{
    if (fd >= 0)
        ::close(fd);
}

bool
SweepJournal::open(const std::string &path)
{
    bvl_assert(fd < 0, "journal opened twice");
    _path = path;

    std::error_code ec;
    auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);

    // Load existing entries before opening for append: a line is the
    // unit of durability, so anything unparsable (the torn tail of a
    // killed writer) is skipped, not fatal.
    std::ifstream in(path);
    if (in) {
        std::string line;
        std::size_t lineno = 0;
        while (std::getline(in, line)) {
            ++lineno;
            if (line.empty())
                continue;
            try {
                Json row = Json::parse(line);
                const std::string &hash = row["hash"].asString();
                if (row["schema"].asString() != kJournalSchema ||
                    hash.empty() || !row.has("result")) {
                    ++_skipped;
                    continue;
                }
                Entry e;
                e.result = runResultFromJson(row["result"]);
                if (row.has("attempts"))
                    e.attempts = static_cast<unsigned>(
                        row["attempts"].asU64());
                replay[hash] = std::move(e);
            } catch (const SimError &) {
                ++_skipped;
            }
        }
        if (_skipped)
            warn("sweep journal %s: skipped %zu corrupt/truncated "
                 "line(s)", path.c_str(), _skipped);
    }

    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
        warn("sweep journal: cannot open %s for append; journaling "
             "disabled", path.c_str());
        return false;
    }
    return true;
}

bool
SweepJournal::lookup(const std::string &hash, RunResult *out,
                     unsigned *attemptsOut) const
{
    std::lock_guard<std::mutex> lock(m);
    auto it = replay.find(hash);
    if (it == replay.end())
        return false;
    *out = it->second.result;
    if (attemptsOut)
        *attemptsOut = it->second.attempts;
    return true;
}

void
SweepJournal::append(const std::string &hash, const SweepJob &job,
                     unsigned attempts, const char *source,
                     const RunResult &result, double wallMs)
{
    if (fd < 0)
        return;

    Json row = Json::object();
    row.set("schema", kJournalSchema);
    row.set("hash", hash);
    row.set("design", designName(job.design));
    row.set("workload", job.workload);
    row.set("scale", scaleName(job.scale));
    row.set("attempts", attempts);
    row.set("source", source);
    row.set("wallMs", wallMs);
    row.set("result", runResultToJson(result));
    std::string line = row.dump(0);
    line += '\n';

    std::lock_guard<std::mutex> lock(m);
    // One write per line keeps a torn append confined to the tail;
    // fsync before the caller's future resolves makes the entry
    // survive kill -9.
    std::size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::write(fd, line.data() + off, line.size() - off);
        if (n < 0) {
            warn("sweep journal %s: write failed; entry dropped",
                 _path.c_str());
            return;
        }
        off += static_cast<std::size_t>(n);
    }
    ::fsync(fd);
    replay[hash] = Entry{result, attempts};
}

} // namespace bvl
