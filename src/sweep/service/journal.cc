#include "sweep/service/journal.hh"

#include <filesystem>
#include <sstream>

#include "sim/check/forensics.hh"
#include "sim/logging.hh"
#include "soc/run_io.hh"

namespace bvl
{

namespace
{

constexpr const char *kJournalSchema = "bvl-sweep-journal-v1";

} // namespace

bool
SweepJournal::open(const std::string &path)
{
    bvl_assert(!file.isOpen(), "journal opened twice");
    _path = path;

    auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        io::mkdirs("journal.open.mkdir", parent.string());

    // Load existing entries before opening for append: a line is the
    // unit of durability, so anything unparsable (the torn tail of a
    // killed writer) is skipped, not fatal. An unreadable-but-present
    // file is the same deal — every loss here only costs re-simulation.
    std::string text;
    bool missing = false;
    std::string rerr;
    if (io::readFile("journal.load.read", path, &text, &missing,
                     &rerr)) {
        std::istringstream in(text);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            try {
                Json row = Json::parse(line);
                const std::string &hash = row["hash"].asString();
                if (row["schema"].asString() != kJournalSchema ||
                    hash.empty() || !row.has("result")) {
                    ++_skipped;
                    continue;
                }
                Entry e;
                e.result = runResultFromJson(row["result"]);
                if (row.has("attempts"))
                    e.attempts = static_cast<unsigned>(
                        row["attempts"].asU64());
                replay[hash] = std::move(e);
            } catch (const io::IoCrashError &) {
                throw;
            } catch (const SimError &) {
                ++_skipped;
            }
        }
        if (_skipped)
            warn("sweep journal %s: skipped %zu corrupt/truncated "
                 "line(s)", path.c_str(), _skipped);
    } else if (!missing) {
        warn("sweep journal %s: unreadable (%s); starting over without "
             "replay entries", path.c_str(), rerr.c_str());
    }

    std::string oerr;
    if (!file.openAppend("journal.open", path, &oerr)) {
        warn("sweep journal: cannot open %s for append; journaling "
             "disabled (%s)", path.c_str(), oerr.c_str());
        return false;
    }
    return true;
}

bool
SweepJournal::lookup(const std::string &hash, RunResult *out,
                     unsigned *attemptsOut) const
{
    std::lock_guard<std::mutex> lock(m);
    auto it = replay.find(hash);
    if (it == replay.end())
        return false;
    *out = it->second.result;
    if (attemptsOut)
        *attemptsOut = it->second.attempts;
    return true;
}

void
SweepJournal::append(const std::string &hash, const SweepJob &job,
                     unsigned attempts, const char *source,
                     const RunResult &result, double wallMs)
{
    Json row = Json::object();
    row.set("schema", kJournalSchema);
    row.set("hash", hash);
    row.set("design", designName(job.design));
    row.set("workload", job.workload);
    row.set("scale", scaleName(job.scale));
    row.set("attempts", attempts);
    row.set("source", source);
    row.set("wallMs", wallMs);
    row.set("result", runResultToJson(result));
    std::string line = row.dump(0);
    line += '\n';

    std::lock_guard<std::mutex> lock(m);
    // The in-memory entry stays correct whatever the disk does: the
    // rest of this process still dedupes against it.
    replay[hash] = Entry{result, attempts};
    if (!file.isOpen())
        return;

    // One write per line keeps a torn append confined to the tail;
    // fsync before the caller's future resolves makes the entry
    // survive kill -9. If either fails the journal can no longer
    // promise that, so it degrades — loudly, once — rather than
    // aborting a sweep whose results are still perfectly good.
    std::string err;
    if (!file.writeAll("journal.append.write", line.data(),
                       line.size(), &err) ||
        !file.sync("journal.append.fsync", &err)) {
        file.close();
        _degraded = true;
        warn("sweep journal %s: append failed (%s); journaling "
             "DISABLED — this sweep will finish but is NOT resumable "
             "after a crash", _path.c_str(), err.c_str());
    }
}

} // namespace bvl
