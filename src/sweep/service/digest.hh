/**
 * @file
 * SHA-256 digest for the sweep service.
 *
 * The service needs a collision-resistant digest twice: job identity
 * (the content-addressed key of the journal and result cache) and
 * payload integrity (detecting a truncated or corrupted cache entry on
 * disk). The repo has no third-party dependencies, so this is a small
 * self-contained implementation of FIPS 180-4 SHA-256; it hashes a few
 * hundred bytes per job, nowhere near a hot path.
 */

#ifndef BVL_SWEEP_SERVICE_DIGEST_HH
#define BVL_SWEEP_SERVICE_DIGEST_HH

#include <array>
#include <cstdint>
#include <string>

namespace bvl
{

class Sha256
{
  public:
    Sha256() { reset(); }

    void reset();
    void update(const void *data, std::size_t len);

    /** Finalize and return the 64-char lowercase hex digest. */
    std::string hex();

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> h;
    std::uint8_t buf[64];
    std::size_t bufLen = 0;
    std::uint64_t totalBits = 0;
};

/** One-shot digest of a string. */
std::string sha256Hex(const std::string &data);

} // namespace bvl

#endif // BVL_SWEEP_SERVICE_DIGEST_HH
