#include "sweep/service/service.hh"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "sim/env.hh"
#include "sim/io/io_fault.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "soc/checkpoint_farm.hh"
#include "soc/run_io.hh"
#include "sweep/service/job_hash.hh"

namespace bvl
{

namespace
{

std::atomic<bool> g_stop{false};

extern "C" void
sweepStopHandler(int)
{
    g_stop.store(true, std::memory_order_relaxed);
    // Async-signal-safe note; SA_RESETHAND makes a second signal kill.
    const char msg[] =
        "\nbvl-sweep: stop requested; draining in-flight jobs "
        "(signal again to kill)\n";
    ssize_t ignored = ::write(2, msg, sizeof(msg) - 1);
    (void)ignored;
}

} // namespace

void
SweepService::installSignalHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = sweepStopHandler;
    sa.sa_flags = SA_RESETHAND;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

void
SweepService::requestStop()
{
    g_stop.store(true, std::memory_order_relaxed);
}

bool
SweepService::stopRequested()
{
    return g_stop.load(std::memory_order_relaxed);
}

void
SweepService::clearStop()
{
    g_stop.store(false, std::memory_order_relaxed);
}

SweepService::SweepService(SweepServiceOptions options)
    : opts(std::move(options)), runner(opts.jobs)
{
    bvl_assert(opts.maxAttempts >= 1,
               "SweepServiceOptions::maxAttempts must be >= 1");
    opts.isolate = envBool01("BVL_SWEEP_ISOLATE", opts.isolate);
    if (!opts.journalPath.empty())
        journal.open(opts.journalPath);
    if (!opts.cacheDir.empty())
        cache.setDir(opts.cacheDir);
}

SweepService::~SweepService() = default;

bool
SweepService::retryable(RunStatus s) const
{
    for (RunStatus r : opts.retryOn)
        if (r == s)
            return true;
    return false;
}

std::vector<double>
SweepService::backoffScheduleMs(const SweepServiceOptions &options,
                                const std::string &hashHex)
{
    // Per-job seed: fold the leading 16 hex digits of the hash into
    // the sweep-level seed, so the schedule is deterministic for a
    // given (options, job) but jobs don't retry in lock step.
    std::uint64_t h = 0;
    for (char c : hashHex.substr(0, 16)) {
        h <<= 4;
        if (c >= '0' && c <= '9')
            h |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            h |= static_cast<std::uint64_t>(c - 'a' + 10);
    }
    Rng rng(options.backoffSeed ^ h);
    std::vector<double> out;
    double base = options.backoffBaseMs;
    for (unsigned i = 0; i + 1 < options.maxAttempts; ++i) {
        double jitter =
            0.5 + static_cast<double>(rng.next() >> 11) /
                      static_cast<double>(1ull << 53);
        out.push_back(base * jitter);
        base *= 2.0;
    }
    return out;
}

SweepJob
SweepService::effectiveJob(const SweepJob &job,
                           const std::string &hash) const
{
    SweepJob eff = job;

    // Collision-free forensics: parallel jobs sharing one configured
    // forensicsPath each get a per-job file derived from the hash, so
    // two failing jobs can no longer race on the same report.
    if (!eff.opts.check.forensicsPath.empty()) {
        std::string p = eff.opts.check.forensicsPath;
        std::string tag = "." + hash.substr(0, 16);
        auto slash = p.find_last_of('/');
        auto dot = p.find_last_of('.');
        if (dot != std::string::npos &&
            (slash == std::string::npos || dot > slash))
            p.insert(dot, tag);
        else
            p += tag;
        eff.opts.check.forensicsPath = std::move(p);
    }

    if (opts.jobDeadlineNs > 0.0 &&
        (eff.opts.limitNs <= 0.0 || eff.opts.limitNs > opts.jobDeadlineNs))
        eff.opts.limitNs = opts.jobDeadlineNs;
    if (opts.wallDeadlineSec > 0.0)
        eff.opts.wallDeadlineSec = opts.wallDeadlineSec;
    return eff;
}

RunResult
SweepService::runAttempt(const SweepJob &job, unsigned attempt)
{
    if (opts.isolate)
        return runIsolated(job, attempt);
    if (opts.preRunHook)
        opts.preRunHook(job, attempt);
    return runWorkload(job.design, job.workload, job.scale, job.opts);
}

RunResult
SweepService::runIsolated(const SweepJob &job, unsigned attempt)
{
    auto failure = [&](const char *why) {
        RunResult r;
        r.workload = job.workload;
        r.design = designName(job.design);
        r.status = RunStatus::worker_lost;
        r.message = why;
        return r;
    };

    int fds[2];
    if (::pipe(fds) != 0)
        return failure("pipe() failed for isolated worker");

    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return failure("fork() failed for isolated worker");
    }

    if (pid == 0) {
        // Worker child: run the simulation, ship the serialized result
        // through the pipe, and _exit without running any atexit or
        // static destructors inherited from the parent.
        ::close(fds[0]);
        try {
            if (opts.preRunHook)
                opts.preRunHook(job, attempt);
            RunResult r = runWorkload(job.design, job.workload,
                                      job.scale, job.opts);
            std::string payload = runResultToJson(r).dump(0);
            std::uint64_t len = payload.size();
            bool ok = ::write(fds[1], &len, sizeof(len)) ==
                      static_cast<ssize_t>(sizeof(len));
            std::size_t off = 0;
            while (ok && off < payload.size()) {
                ssize_t n = ::write(fds[1], payload.data() + off,
                                    payload.size() - off);
                if (n < 0)
                    ok = false;
                else
                    off += static_cast<std::size_t>(n);
            }
            ::_exit(ok ? 0 : 3);
        } catch (...) {
            ::_exit(3);
        }
    }

    // Parent: supervise. A wall-clock budget is enforced here with
    // poll(); a worker that blows it is killed and reported as
    // RunStatus::deadline (the in-child watchdog hook usually fires
    // first and exits cleanly with the same status).
    ::close(fds[1]);
    auto start = std::chrono::steady_clock::now();
    bool deadlineKill = false;
    std::string payload;
    std::uint64_t want = 0;
    std::size_t lenGot = 0;
    bool shortRead = false;

    auto readSome = [&](void *buf, std::size_t n) -> ssize_t {
        if (opts.wallDeadlineSec > 0.0) {
            std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;
            double leftSec = opts.wallDeadlineSec - elapsed.count();
            if (leftSec <= 0.0)
                return -2;      // deadline
            struct pollfd pfd = {fds[0], POLLIN, 0};
            int pr = ::poll(&pfd, 1,
                            static_cast<int>(leftSec * 1000.0) + 1);
            if (pr == 0)
                return -2;      // deadline
            if (pr < 0)
                return -1;
        }
        return ::read(fds[0], buf, n);
    };

    for (;;) {
        if (lenGot < sizeof(want)) {
            ssize_t n = readSome(
                reinterpret_cast<char *>(&want) + lenGot,
                sizeof(want) - lenGot);
            if (n == -2) {
                deadlineKill = true;
                break;
            }
            if (n <= 0) {
                shortRead = true;
                break;
            }
            lenGot += static_cast<std::size_t>(n);
            if (lenGot == sizeof(want)) {
                if (want > (64u << 20)) {   // implausible: corrupt
                    shortRead = true;
                    break;
                }
                payload.reserve(want);
            }
            continue;
        }
        if (payload.size() >= want)
            break;
        char buf[65536];
        std::size_t chunk = want - payload.size();
        if (chunk > sizeof(buf))
            chunk = sizeof(buf);
        ssize_t n = readSome(buf, chunk);
        if (n == -2) {
            deadlineKill = true;
            break;
        }
        if (n <= 0) {
            shortRead = true;
            break;
        }
        payload.append(buf, static_cast<std::size_t>(n));
    }

    if (deadlineKill)
        ::kill(pid, SIGKILL);
    ::close(fds[0]);

    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);

    if (deadlineKill) {
        RunResult r = failure("worker exceeded wall-clock deadline; "
                              "killed");
        r.status = RunStatus::deadline;
        return r;
    }
    if (shortRead || payload.size() < want) {
        char msg[128];
        if (WIFSIGNALED(wstatus))
            std::snprintf(msg, sizeof(msg),
                          "worker killed by signal %d (%s)",
                          WTERMSIG(wstatus),
                          strsignal(WTERMSIG(wstatus)));
        else
            std::snprintf(msg, sizeof(msg),
                          "worker exited without a result (status %d)",
                          WIFEXITED(wstatus) ? WEXITSTATUS(wstatus)
                                             : -1);
        return failure(msg);
    }

    try {
        return runResultFromJson(Json::parse(payload));
    } catch (const SimError &e) {
        return failure("worker result unparsable");
    }
}

RunResult
SweepService::runJob(SweepJob job)
{
    if (stopRequested())
        throw SweepInterrupted();

    const std::string hash = jobHashHex(job);
    const bool cacheable = jobCacheable(job);
    unsigned priorAttempts = 0;

    if (cacheable) {
        RunResult stored;
        unsigned storedAttempts = 0;
        if (journal.isOpen() &&
            journal.lookup(hash, &stored, &storedAttempts)) {
            // A journaled entry is final when it succeeded, failed
            // non-retryably, or already exhausted the retry budget.
            // Otherwise the sweep was interrupted mid-retry: resume
            // the loop below with the remaining budget instead of
            // replaying a failure that still had attempts left.
            bool exhausted = storedAttempts >= opts.maxAttempts;
            if (stored.ok() || !retryable(stored.status) || exhausted) {
                nJournalHits.fetch_add(1, std::memory_order_relaxed);
                if (!stored.ok()) {
                    nFailed.fetch_add(1, std::memory_order_relaxed);
                    if (exhausted && retryable(stored.status)) {
                        QuarantineRecord q;
                        q.hash = hash;
                        q.design = designName(job.design);
                        q.workload = job.workload;
                        q.status = stored.status;
                        q.attempts = storedAttempts;
                        q.forensicsPath =
                            effectiveJob(job, hash)
                                .opts.check.forensicsPath;
                        std::lock_guard<std::mutex> lock(qm);
                        quarantine.push_back(std::move(q));
                    }
                }
                return stored;
            }
            priorAttempts = storedAttempts;
        } else if (cache.enabled() && cache.lookup(hash, &stored)) {
            nCacheHits.fetch_add(1, std::memory_order_relaxed);
            // Journal the cache hit too: resume must not depend on
            // the cache still being intact.
            if (journal.isOpen())
                journal.append(hash, job, 0, "cache", stored);
            return stored;
        }
    }

    SweepJob eff = effectiveJob(job, hash);
    RunResult r;
    unsigned attempt = priorAttempts;
    auto simStart = std::chrono::steady_clock::now();
    for (;;) {
        nSimulated.fetch_add(1, std::memory_order_relaxed);
        r = runAttempt(eff, attempt);
        ++attempt;
        if (r.ok() || !retryable(r.status) ||
            attempt >= opts.maxAttempts || stopRequested())
            break;
        nRetries.fetch_add(1, std::memory_order_relaxed);
        double delayMs =
            backoffScheduleMs(opts, hash)[attempt - 1 <
                                          opts.maxAttempts - 1
                                              ? attempt - 1
                                              : opts.maxAttempts - 2];
        warn("%s on %s: %s (attempt %u/%u); retrying in %.0f ms",
             eff.workload.c_str(), designName(eff.design),
             runStatusName(r.status), attempt, opts.maxAttempts,
             delayMs);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delayMs));
    }

    if (!r.ok()) {
        nFailed.fetch_add(1, std::memory_order_relaxed);
        if (attempt >= opts.maxAttempts && retryable(r.status)) {
            QuarantineRecord q;
            q.hash = hash;
            q.design = designName(job.design);
            q.workload = job.workload;
            q.status = r.status;
            q.attempts = attempt;
            q.forensicsPath = eff.opts.check.forensicsPath;
            std::lock_guard<std::mutex> lock(qm);
            quarantine.push_back(std::move(q));
        }
    }

    if (cacheable) {
        if (journal.isOpen()) {
            std::chrono::duration<double, std::milli> wall =
                std::chrono::steady_clock::now() - simStart;
            journal.append(hash, job, attempt, "sim", r, wall.count());
        }
        if (r.ok() && cache.enabled())
            cache.store(hash, r);
    }
    return r;
}

std::future<RunResult>
SweepService::submit(SweepJob job)
{
    nSubmitted.fetch_add(1, std::memory_order_relaxed);
    return runner.submit(
        [this, job = std::move(job)]() mutable {
            return runJob(std::move(job));
        });
}

std::vector<SweepService::QuarantineRecord>
SweepService::quarantined() const
{
    std::lock_guard<std::mutex> lock(qm);
    return quarantine;
}

SweepService::Summary
SweepService::summary() const
{
    Summary s;
    s.submitted = nSubmitted.load(std::memory_order_relaxed);
    s.simulated = nSimulated.load(std::memory_order_relaxed);
    s.journalHits = nJournalHits.load(std::memory_order_relaxed);
    s.cacheHits = nCacheHits.load(std::memory_order_relaxed);
    s.cacheCorrupt = cache.corruptEntries();
    s.retries = nRetries.load(std::memory_order_relaxed);
    s.failed = nFailed.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(qm);
        s.quarantines = quarantine.size();
    }
    s.interrupted = stopRequested();
    s.farmHits = CheckpointFarm::hits();
    s.farmProduced = CheckpointFarm::produced();
    s.farmCorrupt = CheckpointFarm::corrupt();
    s.farmEvicted = CheckpointFarm::evicted();
    s.tmpCleaned = io::ioTempsCleaned();
    s.ioFaults = io::ioFaultsFired();
    s.journalDegraded = journal.degraded();
    s.cacheDegraded = cache.storeBroken();
    s.farmDegraded = CheckpointFarm::storesDisabled();
    return s;
}

std::string
SweepService::summaryLine() const
{
    Summary s = summary();
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "bvl-sweep-summary: submitted=%llu simulated=%llu "
        "journal_hits=%llu cache_hits=%llu cache_corrupt=%llu "
        "retries=%llu quarantined=%llu failed=%llu interrupted=%d "
        "farm_hits=%llu farm_produced=%llu farm_corrupt=%llu "
        "farm_evicted=%llu tmp_cleaned=%llu io_faults=%llu "
        "journal_degraded=%d cache_degraded=%d farm_degraded=%d",
        (unsigned long long)s.submitted, (unsigned long long)s.simulated,
        (unsigned long long)s.journalHits,
        (unsigned long long)s.cacheHits,
        (unsigned long long)s.cacheCorrupt,
        (unsigned long long)s.retries, (unsigned long long)s.quarantines,
        (unsigned long long)s.failed, s.interrupted ? 1 : 0,
        (unsigned long long)s.farmHits,
        (unsigned long long)s.farmProduced,
        (unsigned long long)s.farmCorrupt,
        (unsigned long long)s.farmEvicted,
        (unsigned long long)s.tmpCleaned,
        (unsigned long long)s.ioFaults,
        s.journalDegraded ? 1 : 0, s.cacheDegraded ? 1 : 0,
        s.farmDegraded ? 1 : 0);
    return buf;
}

} // namespace bvl
