/**
 * @file
 * Write-ahead results journal for crash-safe sweeps.
 *
 * Append-only JSONL file, one completed job per line:
 *
 *   {"schema":"bvl-sweep-journal-v1","hash":"...","design":"...",
 *    "workload":"...","scale":"...","attempts":N,"source":"sim|cache",
 *    "wallMs":N.N,"result":{...}}
 *
 * "wallMs" is the host wall-clock time the recorded attempt(s) took
 * (0.0 for cache/journal replays); parsers must tolerate its absence
 * — rows written before it existed simply lack the field.
 *
 * Every append is written with a single write(2) and fsync'd before
 * the job's future resolves, so after a kill -9 at any point the
 * journal holds every job whose result was ever observable. On open,
 * existing entries are loaded for replay; a truncated final line (the
 * crash case) or an otherwise corrupt line is skipped with a warning
 * — the affected job simply re-simulates.
 *
 * Thread-safe: appends from concurrent sweep workers are serialized
 * on an internal mutex.
 *
 * Degradation policy (DESIGN.md §17): a failed append write or fsync
 * closes the file and marks the journal degraded — the sweep keeps
 * running and stays correct (in-memory replay still dedupes within
 * this process) but is no longer resumable, announced with one loud
 * warning. All filesystem access goes through the sim/io seam, so
 * every failure mode here is reachable deterministically.
 */

#ifndef BVL_SWEEP_SERVICE_JOURNAL_HH
#define BVL_SWEEP_SERVICE_JOURNAL_HH

#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/io/sim_io.hh"
#include "sweep/sweep_runner.hh"

namespace bvl
{

class SweepJournal
{
  public:
    SweepJournal() = default;

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /**
     * Open (creating parent directories and the file as needed) and
     * load existing entries. Returns false — with a warn() — when the
     * file cannot be opened for appending; the journal then behaves
     * as disabled and lookups/appends are no-ops.
     */
    bool open(const std::string &path);

    bool isOpen() const { return file.isOpen(); }
    const std::string &path() const { return _path; }

    /**
     * True once an append failed durably: the journal file is closed,
     * this sweep is no longer resumable, and further appends only
     * update the in-memory replay map.
     */
    bool degraded() const { return _degraded; }

    /** Entries loaded from disk at open() time (resume candidates). */
    std::size_t loadedEntries() const { return replay.size(); }
    /** Corrupt/truncated lines skipped during open(). */
    std::size_t skippedLines() const { return _skipped; }

    /**
     * Fetch the journaled result for @p hash, if any. When
     * @p attemptsOut is non-null it receives the attempt counter the
     * entry was recorded with, so a resumed sweep can account a
     * partially-retried job against its remaining retry budget
     * instead of trusting the last intact record unconditionally.
     */
    bool lookup(const std::string &hash, RunResult *out,
                unsigned *attemptsOut = nullptr) const;

    /**
     * Durably record one completed job. @p source is "sim" for a
     * fresh simulation or "cache" for a verified cache hit; @p wallMs
     * is the host time the attempt(s) took (0.0 for replays). The
     * entry also becomes visible to subsequent lookup()s.
     */
    void append(const std::string &hash, const SweepJob &job,
                unsigned attempts, const char *source,
                const RunResult &result, double wallMs = 0.0);

  private:
    struct Entry
    {
        RunResult result;
        unsigned attempts = 0;
    };

    io::SimFile file;
    std::string _path;
    bool _degraded = false;
    std::size_t _skipped = 0;
    mutable std::mutex m;
    std::unordered_map<std::string, Entry> replay;
};

} // namespace bvl

#endif // BVL_SWEEP_SERVICE_JOURNAL_HH
