/**
 * @file
 * Crash-safe sweep service: journaled, resumable, cache-backed
 * simulation with supervised workers (DESIGN.md §14).
 *
 * SweepService layers orchestration-level fault tolerance on the
 * SweepRunner thread pool:
 *
 *  - every completed job is appended (fsync'd) to a write-ahead
 *    journal keyed by the canonical job hash, so a sweep killed at
 *    any point — including kill -9 — resumes from the journal and
 *    completes with byte-identical submission-ordered results;
 *  - ok results are also stored in a content-addressed result cache
 *    (BVL_CACHE_DIR) with integrity digests, so overlapping sweeps
 *    and warm reruns perform zero simulations;
 *  - each job is supervised: simulated-time and wall-clock deadlines,
 *    bounded retry with deterministic seeded backoff for recoverable
 *    outcomes, and quarantine — a persistently failing job degrades
 *    to a recorded failed row (with its forensics report path)
 *    instead of aborting the sweep;
 *  - with isolate (BVL_SWEEP_ISOLATE=1), jobs run in forked worker
 *    processes so a SIGSEGV/abort in one design point is contained,
 *    reported as RunStatus::worker_lost and retried rather than
 *    killing the whole sweep.
 *
 * Futures resolve in any order; callers consume them in submission
 * order (bench_util.hh SweepResults), which keeps sweep output
 * byte-identical for any BVL_JOBS, with or without a warm journal or
 * cache.
 *
 * SIGINT/SIGTERM handling (installSignalHandlers): the first signal
 * requests a graceful stop — in-flight jobs drain and journal, queued
 * jobs fail fast with SweepInterrupted — and a second signal kills
 * the process. Benches translate SweepInterrupted into the distinct
 * "resumable" exit code (exitResumable) after flushing the journal.
 */

#ifndef BVL_SWEEP_SERVICE_SERVICE_HH
#define BVL_SWEEP_SERVICE_SERVICE_HH

#include <atomic>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "sweep/service/journal.hh"
#include "sweep/service/result_cache.hh"
#include "sweep/sweep_runner.hh"

namespace bvl
{

/** Thrown into job futures when a graceful stop was requested. */
class SweepInterrupted : public std::runtime_error
{
  public:
    SweepInterrupted()
        : std::runtime_error("sweep interrupted; journaled results are "
                             "durable, rerun to resume")
    {}
};

/** Exit code meaning "interrupted but resumable" (BSD EX_TEMPFAIL). */
constexpr int exitResumable = 75;

struct SweepServiceOptions
{
    /** Worker threads; 0 = SweepRunner::defaultJobs() (BVL_JOBS). */
    unsigned jobs = 0;
    /** Write-ahead journal file; empty disables journaling. */
    std::string journalPath;
    /** Content-addressed result cache root; empty disables caching. */
    std::string cacheDir;
    /** Total tries per job (1 = no retry). */
    unsigned maxAttempts = 3;
    /** First retry delay; doubles per attempt, with seeded jitter. */
    double backoffBaseMs = 10.0;
    /** Seed for the deterministic backoff jitter. */
    std::uint64_t backoffSeed = 0xb161764c;
    /** Per-job simulated-time budget; clamps RunOptions::limitNs. */
    double jobDeadlineNs = 0.0;
    /** Per-job wall-clock budget (watchdog hook / worker kill). */
    double wallDeadlineSec = 0.0;
    /** Fork one worker process per job (BVL_SWEEP_ISOLATE=1). */
    bool isolate = false;
    /** Statuses worth retrying (environmental, not deterministic). */
    std::vector<RunStatus> retryOn = {RunStatus::worker_lost,
                                      RunStatus::deadline};
    /**
     * Test hook, called before each simulation attempt — inside the
     * forked child in isolate mode, so a hook that raises a fatal
     * signal exercises real worker loss.
     */
    std::function<void(const SweepJob &, unsigned attempt)> preRunHook;
};

class SweepService
{
  public:
    explicit SweepService(SweepServiceOptions options = {});
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /**
     * Queue one simulation. The future yields the journal/cache/sim
     * result, or throws SweepInterrupted if a stop was requested
     * before the job started.
     */
    std::future<RunResult> submit(SweepJob job);

    unsigned jobs() const { return runner.jobs(); }
    const SweepServiceOptions &options() const { return opts; }

    /** A job that exhausted its retries (recorded, sweep continued). */
    struct QuarantineRecord
    {
        std::string hash;
        std::string design;
        std::string workload;
        RunStatus status = RunStatus::sim_error;
        unsigned attempts = 0;
        /** Failure report location, "" if forensics was not armed. */
        std::string forensicsPath;
    };

    std::vector<QuarantineRecord> quarantined() const;

    struct Summary
    {
        std::uint64_t submitted = 0;    ///< jobs accepted by submit()
        std::uint64_t simulated = 0;    ///< simulation attempts executed
        std::uint64_t journalHits = 0;  ///< served from the journal
        std::uint64_t cacheHits = 0;    ///< served from the cache
        std::uint64_t cacheCorrupt = 0; ///< quarantined cache entries
        std::uint64_t retries = 0;      ///< extra attempts after failures
        std::uint64_t quarantines = 0;  ///< jobs that exhausted retries
        std::uint64_t failed = 0;       ///< jobs with a non-ok result
        bool interrupted = false;       ///< a stop was requested
        /**
         * Checkpoint-farm telemetry (CheckpointFarm's process-wide
         * counters; thread-mode only — isolate-mode children count in
         * their own processes and report via each cell's log instead).
         */
        std::uint64_t farmHits = 0;      ///< prefixes restored
        std::uint64_t farmProduced = 0;  ///< prefixes fast-forwarded
        std::uint64_t farmCorrupt = 0;   ///< entries quarantined
        std::uint64_t farmEvicted = 0;   ///< entries evicted (budget)
        /** I/O-robustness telemetry (DESIGN.md §17). */
        std::uint64_t tmpCleaned = 0;    ///< stale temps removed
        std::uint64_t ioFaults = 0;      ///< injected faults fired
        bool journalDegraded = false;    ///< journal lost durability
        bool cacheDegraded = false;      ///< cache stores disabled
        bool farmDegraded = false;       ///< farm stores disabled
    };

    Summary summary() const;

    /** One-line machine-readable form, for scripts (stderr). */
    std::string summaryLine() const;

    /**
     * The deterministic retry-delay schedule (maxAttempts - 1 entries)
     * the service would use for a job with @p hashHex. Exposed so
     * tests can assert the backoff is reproducible across reruns.
     */
    static std::vector<double>
    backoffScheduleMs(const SweepServiceOptions &options,
                      const std::string &hashHex);

    // --- graceful-stop machinery (process-wide, signal-safe) ---------

    /** Install SIGINT/SIGTERM handlers that requestStop(). */
    static void installSignalHandlers();
    static void requestStop();
    static bool stopRequested();
    /** Clear the stop flag (tests reuse the process). */
    static void clearStop();

  private:
    SweepJob effectiveJob(const SweepJob &job,
                          const std::string &hash) const;
    RunResult runJob(SweepJob job);
    RunResult runAttempt(const SweepJob &job, unsigned attempt);
    RunResult runIsolated(const SweepJob &job, unsigned attempt);
    bool retryable(RunStatus s) const;

    SweepServiceOptions opts;
    SweepJournal journal;
    ResultCache cache;
    SweepRunner runner;

    std::atomic<std::uint64_t> nSubmitted{0};
    std::atomic<std::uint64_t> nSimulated{0};
    std::atomic<std::uint64_t> nJournalHits{0};
    std::atomic<std::uint64_t> nCacheHits{0};
    std::atomic<std::uint64_t> nRetries{0};
    std::atomic<std::uint64_t> nFailed{0};

    mutable std::mutex qm;
    std::vector<QuarantineRecord> quarantine;
};

} // namespace bvl

#endif // BVL_SWEEP_SERVICE_SERVICE_HH
