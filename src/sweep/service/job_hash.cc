#include "sweep/service/job_hash.hh"

#include "sim/check/forensics.hh"
#include "soc/run_io.hh"
#include "sweep/service/digest.hh"

namespace bvl
{

std::string
jobHashHex(const SweepJob &job)
{
    // Strip fields that do not affect simulation output so a traced or
    // supervised run keys identically to a plain one.
    RunOptions canonical = job.opts;
    canonical.trace.path.clear();
    canonical.trace.samplePath.clear();
    canonical.check.forensicsPath.clear();
    canonical.wallDeadlineSec = 0.0;
    // Checkpoint paths are output/input locations, not semantics: a
    // restored run is byte-identical to an uninterrupted one, so only
    // the fast-forward depth (which changes what is simulated in
    // detail) keys the hash. Sampling options all stay: they change
    // the measured windows and therefore the result.
    canonical.checkpoint.savePath.clear();
    canonical.checkpoint.restorePath.clear();
    // Farm mode and strict-restore are likewise perf/robustness knobs
    // around the same byte-identical result: a farm-restored cell
    // matches a cold fast-forwarded one by construction.
    canonical.checkpoint.farm = false;
    canonical.checkpoint.farmDir.clear();
    canonical.checkpoint.strict = false;

    Sha256 d;
    auto feed = [&](const std::string &s) {
        d.update(s.data(), s.size());
        d.update("\0", 1);      // unambiguous field separator
    };
    feed(designName(job.design));
    feed(job.workload);
    feed(scaleName(job.scale));
    feed(runOptionsToJson(canonical).dump(0));
    feed(kLibraryRevision);
    return d.hex();
}

bool
jobCacheable(const SweepJob &job)
{
    // Checkpoint jobs are excluded too: saving must actually write
    // the file, and restoring must actually read it (exercising the
    // corrupt-checkpoint fallback), neither of which a replayed
    // result can reproduce.
    return job.opts.trace.path.empty() &&
           job.opts.trace.samplePath.empty() &&
           job.opts.checkpoint.savePath.empty() &&
           job.opts.checkpoint.restorePath.empty();
}

} // namespace bvl
