/**
 * @file
 * Canonical job identity for the sweep service.
 *
 * A job's hash is the SHA-256 of (design, workload, scale, canonical
 * serialized RunOptions, library revision). Two jobs with the same
 * hash are guaranteed to produce the same RunResult, so the hash keys
 * both the write-ahead journal and the content-addressed result cache
 * (DESIGN.md §14).
 *
 * Canonicalization strips the RunOptions fields that do not affect
 * simulation output: output paths (trace path, sample path, forensics
 * path) and host-time supervision (wallDeadlineSec). Everything else
 * — including the engine-parameter override of the Figure 7/8
 * ablations and the fault plan — feeds the hash.
 *
 * The library revision ties cached results to simulation semantics:
 * bump kLibraryRevision whenever a change alters any RunResult (timing
 * model, stat definitions, workload generation, ...) so stale caches
 * invalidate themselves instead of serving wrong numbers.
 */

#ifndef BVL_SWEEP_SERVICE_JOB_HASH_HH
#define BVL_SWEEP_SERVICE_JOB_HASH_HH

#include <string>

#include "sweep/sweep_runner.hh"

namespace bvl
{

/** Bump on any change that alters simulation results. */
constexpr const char *kLibraryRevision = "bvl-r7";

/** 64-char hex SHA-256 identifying @p job (see file comment). */
std::string jobHashHex(const SweepJob &job);

/**
 * Jobs with armed per-run output files (Perfetto trace, stat samples)
 * have side effects a cached result cannot reproduce, so the service
 * always re-simulates them and never journals or caches them.
 */
bool jobCacheable(const SweepJob &job);

} // namespace bvl

#endif // BVL_SWEEP_SERVICE_JOB_HASH_HH
