/**
 * @file
 * Assembled memory hierarchy of one simulated SoC: per-core L1I/L1D, a
 * shared L2 with a directory (sharer bitmaps + invalidate-on-write),
 * and DRAM. Provides the three access paths the cores and vector
 * engines use:
 *
 *  - instruction fetches (core -> its L1I -> L2 -> DRAM)
 *  - scalar data accesses (core -> its L1D -> L2 -> DRAM)
 *  - vector-mode banked accesses (VMSU -> little L1D bank -> L2 -> DRAM)
 *  - high-bandwidth engine accesses (DVE -> L2 -> DRAM)
 *
 * Core/L1 numbering: ids [0, numLittle) are the little cores,
 * id numLittle is the big core.
 */

#ifndef BVL_MEM_MEM_SYSTEM_HH
#define BVL_MEM_MEM_SYSTEM_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mem_types.hh"
#include "sim/clock_domain.hh"
#include "sim/stats.hh"

namespace bvl
{

struct MemSystemParams
{
    unsigned numLittle = 4;

    CacheParams littleL1I{"l1i", 32 * 1024, 2, 2, 4, 1, 4};
    CacheParams littleL1D{"l1d", 32 * 1024, 2, 2, 8, 1, 4};
    CacheParams bigL1I{"bigl1i", 64 * 1024, 4, 2, 8, 1, 4};
    CacheParams bigL1D{"bigl1d", 64 * 1024, 4, 2, 16, 1, 4};
    CacheParams l2{"l2", 2 * 1024 * 1024, 16, 20, 32, 1, 4};
    DramParams dram{};

    /** Extra L2 cycles charged when a write miss invalidates sharers. */
    Cycles invalPenalty = 8;
};

/**
 * L2 front end: a shared Cache plus an inclusive-enough directory of
 * which L1Ds hold each line. Writes invalidate all other sharers; the
 * requester is charged an extra penalty when that happens.
 */
class L2Front : public MemLevel
{
  public:
    L2Front(ClockDomain &cd, StatGroup &sg, const CacheParams &l2p,
            Cycles inval_penalty, MemLevel *dram)
        : clock(cd), stats(sg), invalPenalty(inval_penalty),
          sDirInvalidates(sg.handle("l2.dir.invalidates")),
          cache(cd, sg, l2p, dram)
    {}

    /** Register an L1D participating in coherence. */
    void
    addL1(Cache *l1)
    {
        l1ds.push_back(l1);
    }

    void
    request(int requesterId, Addr lineAddr, bool isWrite,
            MemCallback done) override
    {
        Addr lineNum = lineOf(lineAddr);
        Cycles extra = 0;

        if (isWrite) {
            auto it = sharers.find(lineNum);
            if (it != sharers.end()) {
                std::uint32_t others = it->second;
                if (requesterId >= 0)
                    others &= ~(1u << requesterId);
                if (others != 0) {
                    for (unsigned i = 0; i < l1ds.size(); ++i)
                        if (others & (1u << i))
                            l1ds[i]->invalidate(lineAddr);
                    it->second &= ~others;
                    extra = invalPenalty;
                    sDirInvalidates++;
                }
            }
        }

        if (requesterId >= 0)
            sharers[lineNum] |= (1u << requesterId);

        if (extra > 0 && done) {
            Tick d = clock.cyclesToTicks(extra);
            auto &eq = clock.eventQueue();
            cache.access(lineAddr, isWrite,
                         [&eq, d, cb = std::move(done)]() mutable {
                             eq.schedule(d, std::move(cb));
                         });
        } else {
            cache.access(lineAddr, isWrite, std::move(done));
        }
    }

    void
    evicted(int requesterId, Addr lineAddr) override
    {
        if (requesterId < 0)
            return;
        auto it = sharers.find(lineOf(lineAddr));
        if (it != sharers.end()) {
            it->second &= ~(1u << requesterId);
            if (it->second == 0)
                sharers.erase(it);
        }
    }

    void
    warmRequest(int requesterId, Addr lineAddr, bool isWrite) override
    {
        // Functional mirror of request(): same directory bookkeeping
        // (invalidate other sharers on a write, record the requester),
        // then a warm tag/LRU update of the L2 itself — but no events,
        // penalties or stats (DESIGN.md §15).
        Addr lineNum = lineOf(lineAddr);
        if (isWrite) {
            auto it = sharers.find(lineNum);
            if (it != sharers.end()) {
                std::uint32_t others = it->second;
                if (requesterId >= 0)
                    others &= ~(1u << requesterId);
                if (others != 0) {
                    for (unsigned i = 0; i < l1ds.size(); ++i)
                        if (others & (1u << i))
                            l1ds[i]->warmInvalidate(lineAddr);
                    it->second &= ~others;
                }
            }
        }
        if (requesterId >= 0)
            sharers[lineNum] |= (1u << requesterId);
        cache.warmAccess(lineAddr, isWrite);
    }

    Cache &l2cache() { return cache; }

    /** Sharer bitmask of a line (tests). */
    std::uint32_t
    sharerMask(Addr lineAddr) const
    {
        auto it = sharers.find(lineOf(lineAddr));
        return it == sharers.end() ? 0 : it->second;
    }

    /** Full directory state (checkpointing, DESIGN.md §15). */
    const std::unordered_map<Addr, std::uint32_t> &
    sharerMap() const { return sharers; }

    /** Replace the directory state (checkpoint restore). */
    void
    loadSharers(std::unordered_map<Addr, std::uint32_t> s)
    {
        sharers = std::move(s);
    }

  private:
    ClockDomain &clock;
    StatGroup &stats;
    Cycles invalPenalty;
    StatHandle sDirInvalidates;
    Cache cache;
    std::vector<Cache *> l1ds;
    std::unordered_map<Addr, std::uint32_t> sharers;
};

class MemSystem
{
  public:
    MemSystem(ClockDomain &uncore, StatGroup &stats,
              MemSystemParams params = {});

    /** Instruction fetch from core @p coreId (big = numLittle). */
    void fetchInst(unsigned coreId, Addr addr, MemCallback done);

    /** Scalar data access through core @p coreId's private L1D. */
    void accessData(unsigned coreId, Addr addr, bool isWrite,
                    MemCallback done);

    /**
     * Vector-mode access through L1D bank @p bank of the logically
     * shared multi-bank cache (VMSU path).
     */
    void accessBank(unsigned bank, Addr addr, bool isWrite,
                    MemCallback done);

    /** Direct L2 access (decoupled vector engine path). */
    void accessL2(Addr addr, bool isWrite, MemCallback done);

    /**
     * Enter/exit vector mode: little L1Ds switch to banked indexing.
     * Resident lines are left in place and migrate on demand, as in
     * the paper.
     */
    void setVectorMode(bool on);

    /** Bank selection for an address (paper's interleaving). */
    unsigned bankOf(Addr addr) const { return bankMap.bankOf(addr); }

    // --- functional warm-up (fast-forward engine, DESIGN.md §15) -----

    /** Warm the instruction-fetch path of core @p coreId. */
    void
    warmFetch(unsigned coreId, Addr addr)
    {
        if (coreId == bigCoreId())
            bigL1Ic->warmAccess(addr, false);
        else
            littleL1Is[coreId]->warmAccess(addr, false);
    }

    /** Warm the scalar data path of core @p coreId. */
    void
    warmData(unsigned coreId, Addr addr, bool isWrite)
    {
        if (coreId == bigCoreId())
            bigL1Dc->warmAccess(addr, isWrite);
        else
            littleL1Ds[coreId]->warmAccess(addr, isWrite);
    }

    /** Warm the L2 + directory directly (vector element traffic). */
    void
    warmL2(Addr addr, bool isWrite)
    {
        l2front->warmRequest(-1, lineAlign(addr), isWrite);
    }

    /** Attach a fault injector to every cache and the DRAM channel. */
    void setFaultInjector(FaultInjector *inj);

    /** Attach the tracer to every cache and the DRAM channel. */
    void setTracer(Tracer *t);

    /** Register every level's heartbeat with a progress watchdog. */
    void registerProgress(Watchdog &wd);

    /** Register every cache's structural invariants. */
    void registerInvariants(InvariantRegistry &reg);

    unsigned numLittle() const { return p.numLittle; }
    unsigned bigCoreId() const { return p.numLittle; }

    Cache &littleL1D(unsigned i) { return *littleL1Ds[i]; }
    Cache &littleL1I(unsigned i) { return *littleL1Is[i]; }
    Cache &bigL1D() { return *bigL1Dc; }
    Cache &bigL1I() { return *bigL1Ic; }
    L2Front &l2() { return *l2front; }

  private:
    StatGroup &stats;
    MemSystemParams p;
    StatHandle sIfetchReqs, sDataReqs;
    BankMap bankMap;

    std::unique_ptr<Dram> dram;
    std::unique_ptr<L2Front> l2front;
    std::vector<std::unique_ptr<Cache>> littleL1Ds;
    std::vector<std::unique_ptr<Cache>> littleL1Is;
    std::unique_ptr<Cache> bigL1Dc;
    std::unique_ptr<Cache> bigL1Ic;
};

} // namespace bvl

#endif // BVL_MEM_MEM_SYSTEM_HH
