#include "mem/cache.hh"

#include <algorithm>

#include "sim/check/invariants.hh"
#include "sim/fault.hh"
#include "sim/trace/tracer.hh"
#include "sim/watchdog.hh"

namespace bvl
{

Cache::Cache(ClockDomain &cd, StatGroup &sg, CacheParams params,
             MemLevel *next_level, int l1_id)
    : clock(cd), stats(sg), p(std::move(params)), next(next_level),
      l1Id(l1_id),
      sAccesses(sg.handle(p.name + ".accesses")),
      sHits(sg.handle(p.name + ".hits")),
      sMisses(sg.handle(p.name + ".misses")),
      sFills(sg.handle(p.name + ".fills")),
      sEvictions(sg.handle(p.name + ".evictions")),
      sWritebacks(sg.handle(p.name + ".writebacks")),
      sInvalidations(sg.handle(p.name + ".invalidations")),
      sMshrFull(sg.handle(p.name + ".mshrFull"))
{
    bvl_assert(p.sizeBytes % (p.assoc * lineBytes) == 0,
               "%s: size not divisible by assoc*line", p.name.c_str());
    numSets = p.sizeBytes / (p.assoc * lineBytes);
    bvl_assert((numSets & (numSets - 1)) == 0,
               "%s: set count must be a power of two", p.name.c_str());
    sets.assign(numSets, std::vector<Way>(p.assoc));
}

unsigned
Cache::setIndex(Addr lineNum) const
{
    if (indexMode == IndexMode::vectorBanked)
        return static_cast<unsigned>((lineNum / p.numBanks) % numSets);
    return static_cast<unsigned>(lineNum % numSets);
}

Cache::Way *
Cache::findWay(Addr lineNum, unsigned set)
{
    for (auto &way : sets[set])
        if (way.valid && way.line == lineNum)
            return &way;
    return nullptr;
}

const Cache::Way *
Cache::findWay(Addr lineNum, unsigned set) const
{
    for (const auto &way : sets[set])
        if (way.valid && way.line == lineNum)
            return &way;
    return nullptr;
}

bool
Cache::probe(Addr addr) const
{
    Addr lineNum = lineOf(lineAlign(addr));
    return findWay(lineNum, setIndex(lineNum)) != nullptr;
}

void
Cache::invalidate(Addr lineAddr)
{
    Addr lineNum = lineOf(lineAlign(lineAddr));
    auto it = lineMap.find(lineNum);
    if (it == lineMap.end())
        return;
    if (Way *way = findWay(lineNum, it->second)) {
        way->valid = false;
        way->dirty = false;
    }
    lineMap.erase(it);
    sInvalidations++;
}

void
Cache::warmInvalidate(Addr lineAddr)
{
    Addr lineNum = lineOf(lineAlign(lineAddr));
    auto it = lineMap.find(lineNum);
    if (it == lineMap.end())
        return;
    if (Way *way = findWay(lineNum, it->second)) {
        way->valid = false;
        way->dirty = false;
    }
    lineMap.erase(it);
}

void
Cache::registerInvariants(InvariantRegistry &reg)
{
    // O(1) structural checks only: invariant sweeps run at retire
    // granularity, so no per-set/per-way walks here.
    reg.add(p.name + ".mshr.bound", [this]() -> std::string {
        if (mshrs.size() <= p.numMshrs)
            return "";
        return std::to_string(mshrs.size()) +
               " MSHRs allocated, capacity " +
               std::to_string(p.numMshrs);
    });
    reg.add(p.name + ".lineMap.bound", [this]() -> std::string {
        std::size_t capacity =
            static_cast<std::size_t>(numSets) * p.assoc;
        if (lineMap.size() <= capacity)
            return "";
        return "line map tracks " + std::to_string(lineMap.size()) +
               " lines, capacity " + std::to_string(capacity);
    });
    reg.add(p.name + ".mshr.stall", [this]() -> std::string {
        // A request may only stall in pendingQueue while the MSHR
        // file is genuinely full.
        if (pendingQueue.empty() || mshrs.size() >= p.numMshrs)
            return "";
        return std::to_string(pendingQueue.size()) +
               " requests stalled with only " +
               std::to_string(mshrs.size()) + "/" +
               std::to_string(p.numMshrs) + " MSHRs busy";
    });
}

void
Cache::setTracer(Tracer *t)
{
    trace = t;
    if (trace)
        traceTid = trace->track(p.name);
}

void
Cache::registerProgress(Watchdog &wd)
{
    // Hits and fills together advance on every serviced access; the
    // MSHR table is the in-flight request state worth dumping.
    wd.addSource(p.name,
                 [this] { return sHits.value() + sFills.value(); },
                 [this] { return mshrReport(); });
}

std::string
Cache::mshrReport() const
{
    if (mshrs.empty() && pendingQueue.empty())
        return "";
    std::string out = "mshrs " + std::to_string(mshrs.size()) + "/" +
                      std::to_string(p.numMshrs) + " stalled " +
                      std::to_string(pendingQueue.size()) + " lines";
    unsigned listed = 0;
    for (const auto &kv : mshrs) {
        out += (listed == 0 ? ": " : " ");
        out += std::to_string(kv.first);
        out += kv.second.isWrite ? "(w," : "(r,";
        out += std::to_string(kv.second.waiters.size()) + "w)";
        if (++listed == 8) {
            out += " ...";
            break;
        }
    }
    return out;
}

void
Cache::access(Addr addr, bool isWrite, MemCallback done)
{
    Addr lineNum = lineOf(lineAlign(addr));
    auto &eq = clock.eventQueue();

    // Tag-port occupancy: portsPerCycle lookups per cycle.
    Tick start = std::max(eq.now(), portNextFree);
    portNextFree = start + clock.periodPs() / p.portsPerCycle;

    Tick tagDone = start + clock.cyclesToTicks(p.hitLatency);
    sAccesses++;

    unsigned set = setIndex(lineNum);
    if (Way *way = findWay(lineNum, set)) {
        way->lastUse = eq.now();
        way->dirty |= isWrite;
        sHits++;
        if (done)
            eq.scheduleAt(tagDone, std::move(done));
        return;
    }

    sMisses++;
    handleMiss(lineNum, isWrite, std::move(done), tagDone);
}

void
Cache::handleMiss(Addr lineNum, bool isWrite, MemCallback done,
                  Tick readyTick)
{
    auto &eq = clock.eventQueue();

    auto it = mshrs.find(lineNum);
    if (it != mshrs.end()) {
        // Secondary miss: piggyback on the outstanding request.
        it->second.isWrite |= isWrite;
        if (done)
            it->second.waiters.push_back(std::move(done));
        return;
    }

    if (mshrs.size() >= p.numMshrs) {
        sMshrFull++;
        pendingQueue.emplace_back(lineNum, isWrite, std::move(done));
        return;
    }

    Mshr &mshr = mshrs[lineNum];
    mshr.isWrite = isWrite;
    if (trace)
        mshr.allocTick = eq.now();
    if (done)
        mshr.waiters.push_back(std::move(done));

    Tick delay = readyTick > eq.now() ? readyTick - eq.now() : 0;
    // Injected transient: the miss response is stretched by a few
    // cycles, as if the fill got stuck behind unrelated traffic.
    if (injector)
        delay += clock.cyclesToTicks(
            injector->cacheResponseDelay(eq.now()));
    eq.schedule(delay, [this, lineNum] {
        auto mit = mshrs.find(lineNum);
        bvl_assert(mit != mshrs.end(), "%s: lost MSHR", p.name.c_str());
        next->request(l1Id, lineNum << lineShift, mit->second.isWrite,
                      [this, lineNum] {
            auto &eq2 = clock.eventQueue();
            auto mit2 = mshrs.find(lineNum);
            bvl_assert(mit2 != mshrs.end(), "%s: MSHR vanished",
                       p.name.c_str());
            bool isWrite = mit2->second.isWrite;
            auto waiters = std::move(mit2->second.waiters);
            if (trace && trace->wants(TraceCat::cache)) {
                // Miss lifetimes overlap (non-blocking cache), so
                // MSHR allocate -> fill pairs as async events.
                std::uint64_t id = trace->nextAsyncId();
                Json args = Json::object();
                args.set("line", lineNum);
                args.set("write", isWrite);
                args.set("waiters",
                         static_cast<unsigned>(waiters.size()));
                trace->asyncBegin(TraceCat::cache, traceTid, "miss",
                                  id, mit2->second.allocTick,
                                  std::move(args));
                trace->asyncEnd(TraceCat::cache, traceTid, "miss",
                                id, eq2.now());
            }
            mshrs.erase(mit2);
            fill(lineNum, isWrite);
            // One-cycle fill-forward latency to the waiting requests.
            Tick respond = eq2.now() + clock.cyclesToTicks(1);
            for (auto &w : waiters)
                eq2.scheduleAt(respond, std::move(w));
            issuePending();
        });
    });
}

void
Cache::fill(Addr lineNum, bool isWrite)
{
    installLine(lineNum, isWrite, /*warm=*/false);
}

void
Cache::installLine(Addr lineNum, bool isWrite, bool warm)
{
    // If this cache already holds the line under the *other* indexing
    // mode (mode switched while it was resident), drop the stale copy:
    // the coherence protocol migrates the line to its new home set.
    auto stale = lineMap.find(lineNum);
    if (stale != lineMap.end()) {
        if (Way *old = findWay(lineNum, stale->second)) {
            old->valid = false;
            old->dirty = false;
        }
        lineMap.erase(stale);
    }

    unsigned set = setIndex(lineNum);
    Way *victim = nullptr;
    for (auto &way : sets[set]) {
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim || way.lastUse < victim->lastUse)
            victim = &way;
    }
    bvl_assert(victim, "%s: no victim way", p.name.c_str());

    if (victim->valid) {
        lineMap.erase(victim->line);
        next->evicted(l1Id, victim->line << lineShift);
        if (!warm)
            sEvictions++;
        if (victim->dirty) {
            if (warm) {
                next->warmRequest(l1Id, victim->line << lineShift,
                                  true);
            } else {
                sWritebacks++;
                next->request(l1Id, victim->line << lineShift, true,
                              MemCallback());
            }
        }
    }

    victim->valid = true;
    victim->line = lineNum;
    victim->dirty = isWrite;
    victim->lastUse = clock.eventQueue().now();
    lineMap[lineNum] = set;
    if (!warm)
        sFills++;
}

void
Cache::warmAccess(Addr addr, bool isWrite)
{
    Addr lineNum = lineOf(lineAlign(addr));
    unsigned set = setIndex(lineNum);
    if (Way *way = findWay(lineNum, set)) {
        way->lastUse = clock.eventQueue().now();
        way->dirty |= isWrite;
        return;
    }
    // Mirror the timed miss path's directory order: the next level
    // sees the line request before this cache installs it.
    next->warmRequest(l1Id, lineNum << lineShift, isWrite);
    installLine(lineNum, isWrite, /*warm=*/true);
}

std::vector<Cache::WayState>
Cache::dumpWays() const
{
    std::vector<WayState> out;
    out.reserve(static_cast<std::size_t>(numSets) * p.assoc);
    for (const auto &set : sets)
        for (const auto &way : set)
            out.push_back({way.valid, way.dirty, way.line,
                           way.lastUse});
    return out;
}

bool
Cache::loadWays(const std::vector<WayState> &ways)
{
    if (ways.size() != static_cast<std::size_t>(numSets) * p.assoc)
        return false;
    bvl_assert(mshrs.empty() && pendingQueue.empty(),
               "%s: loadWays on a busy cache", p.name.c_str());
    lineMap.clear();
    std::size_t i = 0;
    for (unsigned s = 0; s < numSets; ++s) {
        for (auto &way : sets[s]) {
            const WayState &ws = ways[i++];
            way.valid = ws.valid;
            way.dirty = ws.dirty;
            way.line = ws.line;
            way.lastUse = ws.lastUse;
            if (way.valid)
                lineMap[way.line] = s;
        }
    }
    return true;
}

void
Cache::issuePending()
{
    while (!pendingQueue.empty() && mshrs.size() < p.numMshrs) {
        auto [lineNum, isWrite, done] = std::move(pendingQueue.front());
        pendingQueue.pop_front();
        // Re-check the tags: the line may have been filled meanwhile.
        unsigned set = setIndex(lineNum);
        if (Way *way = findWay(lineNum, set)) {
            way->dirty |= isWrite;
            way->lastUse = clock.eventQueue().now();
            if (done)
                clock.eventQueue().schedule(clock.cyclesToTicks(1),
                                            std::move(done));
            continue;
        }
        handleMiss(lineNum, isWrite, std::move(done),
                   clock.eventQueue().now());
    }
}

} // namespace bvl
