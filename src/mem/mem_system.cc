#include "mem/mem_system.hh"

namespace bvl
{

MemSystem::MemSystem(ClockDomain &uncore, StatGroup &sg,
                     MemSystemParams params)
    : stats(sg), p(std::move(params)),
      sIfetchReqs(sg.handle("sys.ifetchReqs")),
      sDataReqs(sg.handle("sys.dataReqs"))
{
    bankMap.numBanks = p.numLittle;

    dram = std::make_unique<Dram>(uncore, stats, p.dram);
    l2front = std::make_unique<L2Front>(uncore, stats, p.l2,
                                        p.invalPenalty, dram.get());

    for (unsigned i = 0; i < p.numLittle; ++i) {
        CacheParams dp = p.littleL1D;
        dp.name = "little" + std::to_string(i) + ".l1d";
        dp.numBanks = p.numLittle;
        littleL1Ds.push_back(std::make_unique<Cache>(
            uncore, stats, dp, l2front.get(), static_cast<int>(i)));
        l2front->addL1(littleL1Ds.back().get());

        CacheParams ip = p.littleL1I;
        ip.name = "little" + std::to_string(i) + ".l1i";
        littleL1Is.push_back(std::make_unique<Cache>(
            uncore, stats, ip, l2front.get(), -1));
    }

    CacheParams bdp = p.bigL1D;
    bdp.name = "big.l1d";
    bigL1Dc = std::make_unique<Cache>(uncore, stats, bdp, l2front.get(),
                                      static_cast<int>(p.numLittle));
    l2front->addL1(bigL1Dc.get());

    CacheParams bip = p.bigL1I;
    bip.name = "big.l1i";
    bigL1Ic = std::make_unique<Cache>(uncore, stats, bip, l2front.get(),
                                      -1);
}

void
MemSystem::setFaultInjector(FaultInjector *inj)
{
    dram->setFaultInjector(inj);
    l2front->l2cache().setFaultInjector(inj);
    for (auto &l1d : littleL1Ds)
        l1d->setFaultInjector(inj);
    for (auto &l1i : littleL1Is)
        l1i->setFaultInjector(inj);
    bigL1Dc->setFaultInjector(inj);
    bigL1Ic->setFaultInjector(inj);
}

void
MemSystem::setTracer(Tracer *t)
{
    bigL1Ic->setTracer(t);
    bigL1Dc->setTracer(t);
    for (auto &l1i : littleL1Is)
        l1i->setTracer(t);
    for (auto &l1d : littleL1Ds)
        l1d->setTracer(t);
    l2front->l2cache().setTracer(t);
    dram->setTracer(t);
}

void
MemSystem::registerProgress(Watchdog &wd)
{
    // One heartbeat per cache keeps the diagnostic table readable and
    // pinpoints which level stopped servicing requests.
    for (auto &l1d : littleL1Ds)
        l1d->registerProgress(wd);
    bigL1Dc->registerProgress(wd);
    l2front->l2cache().registerProgress(wd);
    dram->registerProgress(wd);
}

void
MemSystem::registerInvariants(InvariantRegistry &reg)
{
    for (auto &l1d : littleL1Ds)
        l1d->registerInvariants(reg);
    for (auto &l1i : littleL1Is)
        l1i->registerInvariants(reg);
    bigL1Dc->registerInvariants(reg);
    bigL1Ic->registerInvariants(reg);
    l2front->l2cache().registerInvariants(reg);
}

void
MemSystem::fetchInst(unsigned coreId, Addr addr, MemCallback done)
{
    sIfetchReqs++;
    if (coreId == bigCoreId())
        bigL1Ic->access(addr, false, std::move(done));
    else
        littleL1Is[coreId]->access(addr, false, std::move(done));
}

void
MemSystem::accessData(unsigned coreId, Addr addr, bool isWrite,
                      MemCallback done)
{
    sDataReqs++;
    if (coreId == bigCoreId())
        bigL1Dc->access(addr, isWrite, std::move(done));
    else
        littleL1Ds[coreId]->access(addr, isWrite, std::move(done));
}

void
MemSystem::accessBank(unsigned bank, Addr addr, bool isWrite,
                      MemCallback done)
{
    bvl_assert(bank < p.numLittle, "bad bank %u", bank);
    sDataReqs++;
    littleL1Ds[bank]->access(addr, isWrite, std::move(done));
}

void
MemSystem::accessL2(Addr addr, bool isWrite, MemCallback done)
{
    sDataReqs++;
    l2front->request(-1, lineAlign(addr), isWrite, std::move(done));
}

void
MemSystem::setVectorMode(bool on)
{
    auto mode = on ? IndexMode::vectorBanked : IndexMode::scalarPrivate;
    for (auto &l1d : littleL1Ds)
        l1d->setIndexMode(mode);
}

} // namespace bvl
