/**
 * @file
 * Sparse byte-addressable backing store for functional execution.
 *
 * All cores and vector engines of one simulated system share a single
 * BackingStore: the timing models (caches, VMU) carry no data, only
 * tags and occupancy, so functional correctness is independent of
 * timing ("timing-directed" simulation, DESIGN.md §5).
 */

#ifndef BVL_MEM_BACKING_STORE_HH
#define BVL_MEM_BACKING_STORE_HH

#include <cstring>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace bvl
{

class BackingStore
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageBytes = Addr(1) << pageShift;

    /** Read @p n bytes at @p addr into @p out. */
    void
    read(Addr addr, void *out, std::size_t n) const
    {
        // Fast path: the access stays inside a recently touched page.
        // Fast-forward executes whole vector loops against this store
        // element by element, so the hit rate is near 100% and the
        // hash lookup below is the dominant cost it avoids. A small
        // set (not one entry) keeps it high when fetch, a source
        // stream and a destination stream alternate across pages.
        Addr off = addr & (pageBytes - 1);
        if (off + n <= pageBytes) {
            if (std::uint8_t *data = cacheFind(addr >> pageShift)) {
                std::memcpy(out, data + off, n);
                return;
            }
        }
        readSlow(addr, out, n);
    }

    /** Write @p n bytes from @p src at @p addr. */
    void
    write(Addr addr, const void *src, std::size_t n)
    {
        Addr off = addr & (pageBytes - 1);
        if (off + n <= pageBytes) {
            if (std::uint8_t *data = cacheFind(addr >> pageShift)) {
                std::memcpy(data + off, src, n);
                return;
            }
        }
        writeSlow(addr, src, n);
    }

    /** Typed read of a trivially copyable value. */
    template <typename T>
    T
    readT(Addr addr) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        read(addr, &value, sizeof(T));
        return value;
    }

    /** Typed write of a trivially copyable value. */
    template <typename T>
    void
    writeT(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &value, sizeof(T));
    }

    /** Zero-extended integer load of @p size bytes (1/2/4/8). */
    std::uint64_t
    readInt(Addr addr, unsigned size) const
    {
        std::uint64_t v = 0;
        bvl_assert(size <= 8, "bad access size %u", size);
        read(addr, &v, size);
        return v;
    }

    /** Integer store of the low @p size bytes of @p value. */
    void
    writeInt(Addr addr, std::uint64_t value, unsigned size)
    {
        bvl_assert(size <= 8, "bad access size %u", size);
        write(addr, &value, size);
    }

    /** Number of allocated pages (for tests / memory accounting). */
    std::size_t allocatedPages() const { return pages.size(); }

    /** Page map, keyed by page number (addr >> pageShift). Exposed so
     *  checkpointing can serialize the memory image (DESIGN.md §15). */
    const std::unordered_map<Addr, std::vector<std::uint8_t>> &
    pageMap() const { return pages; }

    /** Drop every page (checkpoint restore rewrites the full image). */
    void
    clear()
    {
        pages.clear();
        for (unsigned i = 0; i < cacheWays; ++i) {
            cachedPage[i] = ~Addr(0);
            cachedData[i] = nullptr;
        }
        cacheNext = 0;
    }

  private:
    std::uint8_t *
    cacheFind(Addr pageNum) const
    {
        for (unsigned i = 0; i < cacheWays; ++i)
            if (cachedPage[i] == pageNum)
                return cachedData[i];
        return nullptr;
    }

    void
    cacheInsert(Addr pageNum, std::uint8_t *data) const
    {
        cachedPage[cacheNext] = pageNum;
        cachedData[cacheNext] = data;
        cacheNext = (cacheNext + 1) % cacheWays;
    }

    void
    readSlow(Addr addr, void *out, std::size_t n) const
    {
        auto *dst = static_cast<std::uint8_t *>(out);
        while (n > 0) {
            Addr off = addr & (pageBytes - 1);
            std::size_t chunk = std::min<std::size_t>(n, pageBytes - off);
            auto it = pages.find(addr >> pageShift);
            if (it == pages.end()) {
                // Unallocated pages read as zero but are not cached:
                // a later write would allocate behind the cache's back.
                std::memset(dst, 0, chunk);
            } else {
                std::memcpy(dst, it->second.data() + off, chunk);
                cacheInsert(addr >> pageShift,
                            const_cast<std::uint8_t *>(
                                it->second.data()));
            }
            dst += chunk;
            addr += chunk;
            n -= chunk;
        }
    }

    void
    writeSlow(Addr addr, const void *src, std::size_t n)
    {
        auto *p = static_cast<const std::uint8_t *>(src);
        while (n > 0) {
            Addr off = addr & (pageBytes - 1);
            std::size_t chunk = std::min<std::size_t>(n, pageBytes - off);
            auto &page = pages[addr >> pageShift];
            if (page.empty())
                page.resize(pageBytes, 0);
            std::memcpy(page.data() + off, p, chunk);
            // The buffer address is stable across map rehashes (the
            // vector owns it on the heap), so caching it is safe until
            // clear().
            cacheInsert(addr >> pageShift, page.data());
            p += chunk;
            addr += chunk;
            n -= chunk;
        }
    }

    std::unordered_map<Addr, std::vector<std::uint8_t>> pages;
    /**
     * Small fully-scanned page cache for the element-granular
     * functional accesses (mutable: a read warms it), replaced
     * round-robin. Four ways cover the common fast-forward working
     * set — fetch line, one or two source streams, one destination
     * stream — where a single entry thrashed on every alternation.
     * Unallocated zero pages are never cached (a later write would
     * allocate behind the cache's back). A Soc is single-threaded, so
     * this needs no synchronization; sweeps build one Soc per job.
     */
    static constexpr unsigned cacheWays = 4;
    mutable Addr cachedPage[cacheWays] = {~Addr(0), ~Addr(0), ~Addr(0),
                                          ~Addr(0)};
    mutable std::uint8_t *cachedData[cacheWays] = {};
    mutable unsigned cacheNext = 0;
};

} // namespace bvl

#endif // BVL_MEM_BACKING_STORE_HH
