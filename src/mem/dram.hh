/**
 * @file
 * DRAM timing model: fixed access latency plus a channel-bandwidth
 * occupancy, matching the paper's single-channel LPDDR-class memory.
 */

#ifndef BVL_MEM_DRAM_HH
#define BVL_MEM_DRAM_HH

#include <algorithm>
#include <string>

#include "mem/cache.hh"
#include "mem/mem_types.hh"
#include "sim/clock_domain.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"
#include "sim/trace/tracer.hh"
#include "sim/watchdog.hh"

namespace bvl
{

struct DramParams
{
    std::string name = "dram";
    double latencyNs = 80.0;
    double bandwidthGBps = 25.6;
};

class Dram : public MemLevel
{
  public:
    Dram(ClockDomain &cd, StatGroup &sg, DramParams params)
        : clock(cd), stats(sg), p(std::move(params)),
          sReads(sg.handle(p.name + ".reads")),
          sWrites(sg.handle(p.name + ".writes"))
    {
        latencyTicks = static_cast<Tick>(p.latencyNs * ticksPerNs);
        // Ticks to transfer one line at the channel bandwidth.
        // bandwidthGBps == bytes/ns, so ticks = bytes / (GB/s) * 1000.
        lineTicks = static_cast<Tick>(
            lineBytes / p.bandwidthGBps * ticksPerNs + 0.5);
    }

    void
    request(int, Addr lineAddr, bool isWrite, MemCallback done) override
    {
        auto &eq = clock.eventQueue();
        Tick start = std::max(eq.now(), channelNextFree);
        channelNextFree = start + lineTicks;
        (isWrite ? sWrites : sReads)++;
        // Injected transient: response latency stretched as if a
        // refresh or rank conflict got in the way.
        Tick extra = injector
            ? clock.cyclesToTicks(injector->memResponseDelay(eq.now()))
            : 0;
        if (trace && trace->wants(TraceCat::dram)) {
            // Channel occupancy: grants are serialized, so transfer
            // spans never overlap and trace as complete events.
            Json args = Json::object();
            args.set("line", lineOf(lineAddr));
            trace->span(TraceCat::dram, traceTid,
                        isWrite ? "write" : "read", start,
                        start + lineTicks, std::move(args));
        }
        if (done)
            eq.scheduleAt(start + latencyTicks + extra, std::move(done));
    }

    /** Attach a fault injector that may stretch responses. */
    void setFaultInjector(FaultInjector *inj) { injector = inj; }

    /** Attach the tracer and register the channel's track. */
    void
    setTracer(Tracer *t)
    {
        trace = t;
        if (trace)
            traceTid = trace->track(p.name);
    }

    /** Register the channel's heartbeat with a progress watchdog. */
    void
    registerProgress(Watchdog &wd)
    {
        wd.addSource(p.name,
                     [this] { return sReads.value() + sWrites.value(); });
    }

  private:
    ClockDomain &clock;
    StatGroup &stats;
    DramParams p;
    StatHandle sReads, sWrites;
    FaultInjector *injector = nullptr;
    Tracer *trace = nullptr;
    unsigned traceTid = 0;
    Tick latencyTicks;
    Tick lineTicks;
    Tick channelNextFree = 0;
};

} // namespace bvl

#endif // BVL_MEM_DRAM_HH
