/**
 * @file
 * DRAM timing model: fixed access latency plus a channel-bandwidth
 * occupancy, matching the paper's single-channel LPDDR-class memory.
 */

#ifndef BVL_MEM_DRAM_HH
#define BVL_MEM_DRAM_HH

#include <algorithm>
#include <string>

#include "mem/cache.hh"
#include "mem/mem_types.hh"
#include "sim/clock_domain.hh"
#include "sim/stats.hh"

namespace bvl
{

struct DramParams
{
    std::string name = "dram";
    double latencyNs = 80.0;
    double bandwidthGBps = 25.6;
};

class Dram : public MemLevel
{
  public:
    Dram(ClockDomain &cd, StatGroup &sg, DramParams params)
        : clock(cd), stats(sg), p(std::move(params))
    {
        latencyTicks = static_cast<Tick>(p.latencyNs * ticksPerNs);
        // Ticks to transfer one line at the channel bandwidth.
        // bandwidthGBps == bytes/ns, so ticks = bytes / (GB/s) * 1000.
        lineTicks = static_cast<Tick>(
            lineBytes / p.bandwidthGBps * ticksPerNs + 0.5);
    }

    void
    request(int, Addr, bool isWrite, MemCallback done) override
    {
        auto &eq = clock.eventQueue();
        Tick start = std::max(eq.now(), channelNextFree);
        channelNextFree = start + lineTicks;
        stats.stat(p.name + (isWrite ? ".writes" : ".reads"))++;
        if (done)
            eq.scheduleAt(start + latencyTicks, std::move(done));
    }

  private:
    ClockDomain &clock;
    StatGroup &stats;
    DramParams p;
    Tick latencyTicks;
    Tick lineTicks;
    Tick channelNextFree = 0;
};

} // namespace bvl

#endif // BVL_MEM_DRAM_HH
