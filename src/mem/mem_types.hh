/**
 * @file
 * Shared memory-system types: callbacks, line math, bank addressing.
 *
 * The timing memory system carries no data (DESIGN.md §5): requests are
 * identified by line address and completed by invoking a callback at
 * the right simulated time.
 */

#ifndef BVL_MEM_MEM_TYPES_HH
#define BVL_MEM_MEM_TYPES_HH

#include "sim/small_fn.hh"
#include "sim/types.hh"

namespace bvl
{

/**
 * Invoked when a memory transaction completes. A SmallFn rather than a
 * std::function: the dominant capture shapes ([this], [this, lineNum],
 * [this, rd, gen]) fit its inline buffer, so completion callbacks move
 * through the memory hierarchy without heap traffic.
 */
using MemCallback = SmallFn;

/** Cache line size used throughout the simulated systems. */
constexpr unsigned lineBytes = 64;
constexpr unsigned lineShift = 6;

inline Addr lineAlign(Addr a) { return a & ~Addr(lineBytes - 1); }
inline Addr lineOf(Addr a) { return a >> lineShift; }

/**
 * Bank addressing for the vector-mode logically-shared L1D
 * (paper Section III-E): the bank bits sit directly above the block
 * offset so that consecutive cache lines map to consecutive banks,
 * minimizing bank conflicts for unit-stride streams.
 */
struct BankMap
{
    unsigned numBanks = 4;   ///< must be a power of two

    unsigned
    bankOf(Addr addr) const
    {
        return static_cast<unsigned>((addr >> lineShift) & (numBanks - 1));
    }

    /** Line address with bank bits stripped (used for set indexing). */
    Addr
    bankLocalLine(Addr addr) const
    {
        return (addr >> lineShift) / numBanks;
    }
};

/** Indexing mode of a reconfigurable L1 data cache. */
enum class IndexMode : std::uint8_t
{
    scalarPrivate,  ///< index bits directly above the block offset
    vectorBanked,   ///< index bits above the bank bits (paper §III-E)
};

} // namespace bvl

#endif // BVL_MEM_MEM_TYPES_HH
