/**
 * @file
 * Non-blocking set-associative cache timing model.
 *
 * The cache tracks tags, LRU state, dirtiness and MSHRs but no data.
 * Throughput is one tag lookup per cycle; hits respond after the hit
 * latency, misses allocate an MSHR and forward a line request to the
 * next level. Reconfigurable L1 data caches support two set-indexing
 * modes (IndexMode); a line filled in one mode is findable only in that
 * mode's set, which reproduces the paper's lazy eviction/migration of
 * wrongly-banked lines after a mode switch.
 */

#ifndef BVL_MEM_CACHE_HH
#define BVL_MEM_CACHE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/mem_types.hh"
#include "sim/clock_domain.hh"
#include "sim/stats.hh"

namespace bvl
{

class FaultInjector;
class InvariantRegistry;
class Tracer;
class Watchdog;

/** Construction parameters of one Cache. */
struct CacheParams
{
    std::string name = "cache";
    unsigned sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    Cycles hitLatency = 2;
    unsigned numMshrs = 8;
    /** Requests the cache can accept per cycle (L2 of 1bDV uses >1). */
    unsigned portsPerCycle = 1;
    /** Number of banks used when indexing in vectorBanked mode. */
    unsigned numBanks = 4;
};

/**
 * Interface to the level below a cache (another cache or DRAM), plus
 * a hook for sharer bookkeeping on evictions.
 */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Request one line. @p requesterId identifies the L1 for directory
     * purposes (-1 for requests not from an L1).
     */
    virtual void request(int requesterId, Addr lineAddr, bool isWrite,
                         MemCallback done) = 0;

    /** An L1 dropped its copy of @p lineAddr (eviction/invalidation). */
    virtual void evicted(int requesterId, Addr lineAddr) {
        (void)requesterId; (void)lineAddr;
    }

    /**
     * Timing-free counterpart of request() for fast-forward cache
     * warming (DESIGN.md §15): propagate the line functionally —
     * directory bookkeeping, next-level tag/LRU update — with no
     * events, callbacks or stats. Default no-op (DRAM keeps no
     * warmable state: the model is fixed-latency with no row
     * tracking).
     */
    virtual void warmRequest(int requesterId, Addr lineAddr,
                             bool isWrite) {
        (void)requesterId; (void)lineAddr; (void)isWrite;
    }
};

class Cache
{
  public:
    Cache(ClockDomain &cd, StatGroup &stats, CacheParams params,
          MemLevel *next, int l1Id = -1);

    /**
     * Access one cache line. @p done fires when the line is present
     * (load use / store completion time).
     */
    void access(Addr addr, bool isWrite, MemCallback done);

    /** Switch set-indexing mode (vector-mode entry/exit). */
    void setIndexMode(IndexMode mode) { indexMode = mode; }
    IndexMode getIndexMode() const { return indexMode; }

    /**
     * Functional (timing-free) access for fast-forward cache warming
     * (DESIGN.md §15): updates tags, LRU and dirty bits exactly like
     * the timed hit/fill paths — including stale-mode drop, victim
     * selection, eviction notification and dirty writeback through
     * MemLevel::warmRequest — but schedules no events, allocates no
     * MSHRs and increments no stats, so a warmed-then-run simulation
     * is byte-identical to one restored from a checkpoint of the same
     * warm state.
     */
    void warmAccess(Addr addr, bool isWrite);

    /** Flat snapshot of one way (checkpoint payload, DESIGN.md §15). */
    struct WayState
    {
        bool valid = false;
        bool dirty = false;
        Addr line = 0;
        Tick lastUse = 0;
    };

    /** Set-major (sets x assoc) dump of every way's tag state. */
    std::vector<WayState> dumpWays() const;

    /**
     * Restore tag state saved by dumpWays() from an identical
     * geometry; rebuilds the line map. Only valid on an idle cache
     * (no MSHRs, no pending requests). Returns false — leaving the
     * cache untouched — on a geometry mismatch.
     */
    bool loadWays(const std::vector<WayState> &ways);

    unsigned setCount() const { return numSets; }

    /** Drop a line (directory invalidation); no timing charged here. */
    void invalidate(Addr lineAddr);

    /** invalidate() for the warm path: same tag effect, no stats. */
    void warmInvalidate(Addr lineAddr);

    /** Tag-only presence check under the current mode (tests). */
    bool probe(Addr addr) const;

    /** Attach a fault injector that may stretch miss responses. */
    void setFaultInjector(FaultInjector *inj) { injector = inj; }

    /** Attach the tracer (nullptr = disarmed) and register this
     *  cache's track; miss lifetimes trace MSHR allocate -> fill. */
    void setTracer(Tracer *t);

    /** Register this cache's heartbeat with a progress watchdog. */
    void registerProgress(Watchdog &wd);

    /** Register MSHR/state sanity invariants (O(1) checks only). */
    void registerInvariants(InvariantRegistry &reg);

    /** One-line MSHR occupancy description for diagnostics. */
    std::string mshrReport() const;

    /** True if the line is resident in any set (tests). */
    bool residentAnywhere(Addr addr) const
    { return lineMap.count(lineOf(lineAlign(addr))) != 0; }

    const CacheParams &params() const { return p; }
    const std::string &name() const { return p.name; }

    /** Fraction of accesses that missed (tests / reporting). */
    double
    missRate() const
    {
        auto a = sAccesses.value();
        return a == 0 ? 0.0 : double(sMisses.value()) / a;
    }

  private:
    struct Way
    {
        bool valid = false;
        Addr line = 0;       ///< full line number (addr >> lineShift)
        bool dirty = false;
        Tick lastUse = 0;
    };

    struct Mshr
    {
        bool isWrite = false;
        std::vector<MemCallback> waiters;
        /** Allocation timestamp, recorded only while tracing. */
        Tick allocTick = 0;
    };

    unsigned setIndex(Addr lineNum) const;
    Way *findWay(Addr lineNum, unsigned set);
    const Way *findWay(Addr lineNum, unsigned set) const;
    void fill(Addr lineNum, bool isWrite);
    /** Shared line-install path of fill() and warmAccess(). */
    void installLine(Addr lineNum, bool isWrite, bool warm);
    void handleMiss(Addr lineNum, bool isWrite, MemCallback done,
                    Tick readyTick);
    void issuePending();

    ClockDomain &clock;
    StatGroup &stats;
    CacheParams p;
    MemLevel *next;
    int l1Id;
    FaultInjector *injector = nullptr;
    Tracer *trace = nullptr;
    unsigned traceTid = 0;

    /** Counters interned once at construction (DESIGN.md §11): the
     *  per-access path increments through these, never by name. */
    StatHandle sAccesses, sHits, sMisses, sFills, sEvictions,
               sWritebacks, sInvalidations, sMshrFull;

    unsigned numSets;
    IndexMode indexMode = IndexMode::scalarPrivate;

    std::vector<std::vector<Way>> sets;
    /** lineNum -> set holding it (unique per cache). */
    std::unordered_map<Addr, unsigned> lineMap;
    std::unordered_map<Addr, Mshr> mshrs;
    /** Requests stalled on a full MSHR file. */
    std::deque<std::tuple<Addr, bool, MemCallback>> pendingQueue;

    /** Tag-port occupancy: next tick a new lookup can start. */
    Tick portNextFree = 0;
};

} // namespace bvl

#endif // BVL_MEM_CACHE_HH
