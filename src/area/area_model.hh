/**
 * @file
 * Post-synthesis component-level area model (paper Section VI,
 * Table VI; 12 nm standard-cell flow). The per-component constants
 * are the paper's published numbers; totals and the 4L-vs-4VL
 * overhead are recomputed from the configuration, so queue-size
 * ablations move the overhead to first order as synthesis would.
 */

#ifndef BVL_AREA_AREA_MODEL_HH
#define BVL_AREA_AREA_MODEL_HH

#include <string>
#include <vector>

#include "core/vlittle_engine.hh"

namespace bvl
{

/** Little-core RTL models evaluated in the paper. */
enum class LittleCoreRtl
{
    simple,   ///< in-house single-issue RV64IMAF
    ariane,   ///< open-source Linux-capable RV64G
};

/** Component areas in kilo-square-microns (paper Table VI). */
struct AreaConstants
{
    double simpleCore = 26.1;
    double arianeCore = 41.8;
    double l1i32k64b = 40.3;     ///< 32KB L1I, 64-bit data path
    double l1d32k64b = 40.3;     ///< 32KB L1D, 64-bit data path
    double l1d32k512b = 41.6;    ///< 32KB L1D, 512-bit (vector) path
    double vxuRing = 0.3;        ///< 64-bit uni-directional ring
    double vmuQueues = 1.7;      ///< micro-op & command queues
    double storeAddrCam = 0.8;
    double lineBuffers = 0.4;
    double vcuUopQueue = 1.0;
    double vcuDataQueue = 1.0;

    // Reference design points the queue constants were measured at
    // (the vlittlePreset configuration).
    unsigned refVmiuQueueDepth = 16;
    unsigned refStoreCamEntries = 8;
    unsigned refUopQueueDepth = 64;
    unsigned refDataQueueDepth = 8;

    // Ara-referenced first-order estimate of the 1bDV engine.
    double araKgePerLane = 738.0;
    double arianeKge = 524.0;
};

struct AreaLine
{
    std::string component;
    double kum2;        ///< area of one instance (k um^2)
    unsigned count;
    double total() const { return kum2 * count; }
};

struct AreaReport
{
    std::vector<AreaLine> baseline4L;
    std::vector<AreaLine> cluster4VL;
    double total4L = 0.0;
    double total4VL = 0.0;
    /** 4VL vs 4L overhead (paper: ~2.4% simple, ~2.1% Ariane). */
    double overheadPercent = 0.0;
};

/**
 * Compute the Table-VI comparison for the given little-core RTL and
 * engine configuration (queue areas scale with configured depths).
 */
AreaReport computeClusterArea(LittleCoreRtl rtl,
                              const VEngineParams &engine,
                              const AreaConstants &c = {});

/**
 * First-order 1bDV engine area in kGE and the equivalence argument of
 * Section VI: a 4-Ariane cluster with L1s is about the same size as
 * an 8-lane Ara-class engine.
 */
struct DveAreaEstimate
{
    double engineKge = 0.0;        ///< 8 x 64-bit lanes
    double cluster4Ariane = 0.0;   ///< 4 cores + 8 caches, in kGE
    double ratio = 0.0;
};

DveAreaEstimate estimateDveArea(const AreaConstants &c = {});

} // namespace bvl

#endif // BVL_AREA_AREA_MODEL_HH
