#include "area/area_model.hh"

namespace bvl
{

AreaReport
computeClusterArea(LittleCoreRtl rtl, const VEngineParams &engine,
                   const AreaConstants &c)
{
    AreaReport r;
    double core = rtl == LittleCoreRtl::simple ? c.simpleCore
                                               : c.arianeCore;
    const char *coreName = rtl == LittleCoreRtl::simple
        ? "little core (simple RV64IMAF)"
        : "little core (Ariane RV64G)";
    unsigned n = engine.numLanes;

    r.baseline4L = {
        {coreName, core, n},
        {"32KB L1I, 64b path", c.l1i32k64b, n},
        {"32KB L1D, 64b path", c.l1d32k64b, n},
    };

    // Queue areas scale with configured depth relative to the
    // reference configuration the constants were synthesized at.
    auto scale = [](double area, unsigned depth, unsigned refDepth) {
        return area * static_cast<double>(depth) / refDepth;
    };
    r.cluster4VL = {
        {coreName, core, n},
        {"32KB L1I, 64b path", c.l1i32k64b, n},
        {"32KB L1D, 512b path", c.l1d32k512b, n},
        {"VXU: ring network", c.vxuRing, 1},
        {"VMU: micro-op & command queues",
         scale(c.vmuQueues, engine.vmiuQueueDepth, c.refVmiuQueueDepth),
         1},
        {"VMU: store-address CAM",
         scale(c.storeAddrCam, engine.storeCamEntries,
               c.refStoreCamEntries),
         1},
        {"VMU: line buffers", c.lineBuffers, 1},
        {"VCU: micro-op queue",
         scale(c.vcuUopQueue, engine.uopQueueDepth, c.refUopQueueDepth),
         1},
        {"VCU: data queue",
         scale(c.vcuDataQueue, engine.dataQueueDepth,
               c.refDataQueueDepth),
         1},
    };

    for (const auto &line : r.baseline4L)
        r.total4L += line.total();
    for (const auto &line : r.cluster4VL)
        r.total4VL += line.total();
    r.overheadPercent = 100.0 * (r.total4VL - r.total4L) / r.total4L;
    return r;
}

DveAreaEstimate
estimateDveArea(const AreaConstants &c)
{
    DveAreaEstimate e;
    e.engineKge = 8.0 * c.araKgePerLane;
    // One 32KB L1's area is roughly an Ariane core's (paper Section
    // VI), so a 4-core cluster with 8 caches is ~12 Ariane-equivalents.
    double cacheKge = c.arianeKge * (c.l1i32k64b / c.arianeCore);
    e.cluster4Ariane = 4.0 * c.arianeKge + 8.0 * cacheKge;
    e.ratio = e.cluster4Ariane / e.engineKge;
    return e;
}

} // namespace bvl
