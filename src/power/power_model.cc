#include "power/power_model.hh"

#include <algorithm>

namespace bvl
{

std::vector<PerfPowerPoint>
paretoFrontier(std::vector<PerfPowerPoint> points)
{
    std::vector<PerfPowerPoint> frontier;
    for (const auto &cand : points) {
        bool dominated = false;
        for (const auto &other : points) {
            if (other.dominates(cand)) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(cand);
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const auto &a, const auto &b) {
                  return a.watts < b.watts;
              });
    return frontier;
}

} // namespace bvl
