/**
 * @file
 * Voltage/frequency power model (paper Section VII, Table VII).
 *
 * The paper uses per-cluster average power measured on an Odroid
 * XU+E (Exynos 5410, per-cluster V/f rails) at four levels per
 * cluster, and estimates the decoupled vector engine at 1.4x its big
 * core's power at the same V/f point (the Tarantula ratio). The
 * published table is partially garbled in our source text; the values
 * here are reconstructed to match the reported trends (big core
 * 0.8-1.4 GHz at ~0.4-1.2 W, little cluster 0.6-1.2 GHz at an order
 * of magnitude less) — see DESIGN.md §5.
 */

#ifndef BVL_POWER_POWER_MODEL_HH
#define BVL_POWER_POWER_MODEL_HH

#include <array>
#include <vector>

#include "sim/logging.hh"
#include "soc/soc.hh"

namespace bvl
{

/** One voltage/frequency operating point of a cluster. */
struct VfLevel
{
    const char *name;
    double freqGhz;
    double watts;      ///< average cluster power at this level
};

/** Big-core levels b0..b3 (Table VII). */
constexpr std::array<VfLevel, 4> bigLevels{{
    {"b0", 0.8, 0.425},
    {"b1", 1.0, 0.591},
    {"b2", 1.2, 0.841},
    {"b3", 1.4, 1.205},
}};

/** Little-cluster levels l0..l3 (Table VII). */
constexpr std::array<VfLevel, 4> littleLevels{{
    {"l0", 0.6, 0.108},
    {"l1", 0.8, 0.180},
    {"l2", 1.0, 0.300},
    {"l3", 1.2, 0.480},
}};

/** Tarantula: the decoupled engine draws 1.4x its control core. */
constexpr double dvePowerRatio = 1.4;

/**
 * Estimated average system power of a design at the given cluster
 * levels (paper Section VII-B assumptions: 1bIV-4L and 1b-4VL draw
 * like 1b-4L; 1bDV adds the engine at the big core's level).
 */
inline double
systemPowerW(Design design, const VfLevel &big, const VfLevel &little)
{
    switch (design) {
      case Design::d1L:
        return little.watts / 4.0;
      case Design::d1b:
      case Design::d1bIV:
        return big.watts;
      case Design::d1bDV:
        return big.watts * (1.0 + dvePowerRatio);
      case Design::d1b4L:
      case Design::d1bIV4L:
      case Design::d1b4VL:
        return big.watts + little.watts;
    }
    return 0.0;
}

/** A measured (time, power) point of the design space exploration. */
struct PerfPowerPoint
{
    unsigned bigLevel = 0;
    unsigned littleLevel = 0;
    double ns = 0.0;
    double watts = 0.0;

    /** Pareto dominance: strictly better in one axis, >= in both. */
    bool
    dominates(const PerfPowerPoint &other) const
    {
        return ns <= other.ns && watts <= other.watts &&
               (ns < other.ns || watts < other.watts);
    }
};

/** Extract the Pareto frontier (min time, min power), sorted by power. */
std::vector<PerfPowerPoint>
paretoFrontier(std::vector<PerfPowerPoint> points);

} // namespace bvl

#endif // BVL_POWER_POWER_MODEL_HH
