/**
 * @file
 * Vector execution lane: the back end of one reconfigured little core.
 *
 * In vector mode a little core's fetch/decode stages are disabled and
 * its issue stage consumes VCU micro-ops in order (paper Section
 * III-C). The lane re-uses the core's scalar FU latencies, tracks
 * per-(vreg, chime) readiness in the re-purposed physical register
 * file, and attributes every stalled cycle to the paper's Figure-7
 * categories. The engine (LaneEnv) provides the VLU/VSU/VXU/VMIU
 * interactions.
 */

#ifndef BVL_CORE_LANE_HH
#define BVL_CORE_LANE_HH

#include <array>
#include <deque>
#include <string>

#include "core/vuop.hh"
#include "cpu/fu_params.hh"
#include "isa/reg.hh"
#include "sim/clock_domain.hh"
#include "sim/stats.hh"

namespace bvl
{

class Tracer;

/** Engine services a lane needs while executing micro-ops. */
class LaneEnv
{
  public:
    virtual ~LaneEnv() = default;

    /** Has the VLU delivered @p needed elements for this uop yet? */
    virtual bool loadDataReady(SeqNum vseq, unsigned lane, unsigned chime,
                               unsigned needed) = 0;
    /** Lane sends @p elems store-data elements to the VSU. */
    virtual void storeDataFromLane(SeqNum vseq, unsigned lane,
                                   unsigned chime, unsigned elems) = 0;
    /** Lane sends a chime's worth of indices to the VMIU. */
    virtual void indexFromLane(SeqNum vseq, unsigned lane,
                               unsigned chime) = 0;
    /** Lane sends cross-element source values into the VXU ring. */
    virtual void vxSourceFromLane(SeqNum vseq, unsigned lane,
                                  unsigned chime) = 0;
    /** Has the VXU finished shifting values for this instruction? */
    virtual bool vxDeliveryReady(SeqNum vseq) = 0;
    /** Have all vxRead micro-ops of this instruction completed? */
    virtual bool vxReadsComplete(SeqNum vseq) = 0;
    /** A lane micro-op of chime group @p chime finished (write-back). */
    virtual void uopRetired(SeqNum vseq, unsigned chime) = 0;
    /** Is the VCU currently blocked broadcasting by a busy peer? */
    virtual bool vcuBlockedLockstep() const = 0;
};

class VectorLane
{
  public:
    VectorLane(ClockDomain &cd, StatGroup &stats, LaneEnv &env,
               unsigned laneIdx, std::string statPrefix,
               FuLatencies fu, unsigned uopQueueDepth);

    bool queueFree() const { return uopQueue.size() < queueDepth; }
    void pushUop(const VUop &uop) { uopQueue.push_back(uop); }

    /** One cycle of in-order micro-op issue; called by the engine. */
    void tick();

    bool idle() const { return uopQueue.empty(); }
    void reset();

    std::uint64_t uopsRetired() const { return numUops; }

    /** Attach the tracer (nullptr = disarmed) and register this
     *  lane's "<prefix>lane" track. */
    void setTracer(Tracer *t);

  private:
    void recordStall(StallCause cause);
    bool srcsReady(const VUop &uop, StallCause &why) const;
    Tick occupyFu(const VUop &uop, unsigned subOps);

    ClockDomain &clock;
    StatGroup &stats;
    LaneEnv &env;
    unsigned lane;
    std::string prefix;
    /** Interned counters (DESIGN.md §11); sStall indexed by StallCause. */
    StatHandle sCycles, sUops;
    std::array<StatHandle, numStallCauses> sStall;
    FuLatencies fu;
    unsigned queueDepth;
    Tracer *trace = nullptr;
    unsigned traceTid = 0;

    std::deque<VUop> uopQueue;

    static constexpr unsigned maxChimes = 8;
    std::array<std::array<Tick, maxChimes>, numVRegs> vregReadyAt{};
    std::array<std::array<ProducerKind, maxChimes>, numVRegs>
        vregProducer{};
    std::array<Tick, 16> fuBusyUntil{};

    std::uint64_t numUops = 0;
};

} // namespace bvl

#endif // BVL_CORE_LANE_HH
