/**
 * @file
 * The big.VLITTLE decoupled vector engine (paper Section III).
 *
 * One parameterized engine models all three vector machines of the
 * evaluation:
 *
 *  - the VLITTLE engine itself: 4 lanes (reconfigured little cores),
 *    2 chimes, packed 32-bit elements (512-bit VLEN), banked shared
 *    L1D memory path, L1I-SRAM-backed VMSU data queues, 500-cycle
 *    mode-switch penalty;
 *  - the integrated vector unit of 1bIV: 2 lane-equivalents (128-bit
 *    VLEN), one chime, memory through the big core's L1D port;
 *  - the decoupled vector engine of 1bDV: 8 wide lanes (2048-bit
 *    VLEN), 4 chimes, deep buffers, direct high-bandwidth L2 path.
 *
 * Structure (Figure 1): the VCU cracks each dispatched vector
 * instruction into per-chime micro-ops and broadcasts them in lock
 * step over a pipelined bus; the VMU (VMIU + per-bank VMSUs + VLU +
 * VSU) decouples memory from execution; the VXU is a uni-directional
 * ring serving one cross-element instruction at a time.
 */

#ifndef BVL_CORE_VLITTLE_ENGINE_HH
#define BVL_CORE_VLITTLE_ENGINE_HH

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/lane.hh"
#include "core/vuop.hh"
#include "cpu/vec_engine.hh"
#include "mem/mem_system.hh"
#include "sim/clock_domain.hh"
#include "sim/stats.hh"

namespace bvl
{

class CheckContext;
class FaultInjector;
class InvariantRegistry;
class Tracer;
class Watchdog;

struct VEngineParams
{
    std::string name = "vlittle";
    /** Per-lane stat prefix; lane i uses "<lanePrefix><i>.". */
    std::string lanePrefix = "little";
    unsigned numLanes = 4;
    unsigned chimes = 2;
    bool packed = true;

    unsigned cmdQueueDepth = 32;   ///< VCU instruction command queue
    unsigned uopQueueDepth = 64;   ///< VCU micro-op queue (UopQ)
    unsigned dataQueueDepth = 8;   ///< VCU scalar-data queue
    unsigned laneUopQueueDepth = 4;
    unsigned vmiuQueueDepth = 16;
    /** Per-VMSU outstanding load/store line-data slots (the paper's
     *  re-purposed L1I SRAM FIFOs; swept in Figure 8). */
    unsigned loadQueueLines = 16;
    unsigned storeQueueLines = 16;
    unsigned storeCamEntries = 8;
    unsigned coalesceWindow = 4;   ///< indexed elems coalesced per line

    Cycles switchPenalty = 500;    ///< vector-region entry cost
    FuLatencies fu{};

    enum class MemPath { bankedL1, bigL1D, directL2 };
    MemPath memPath = MemPath::bankedL1;
    /** Engine toggles the little L1Ds into banked mode on switch. */
    bool controlsL1Mode = true;
    /** Head-of-ROB dispatch (decoupled) vs in-pipeline (integrated). */
    bool headDispatch = true;

    /** Hardware vector length presented to vsetvli (32-bit data). */
    unsigned
    vlenBits() const
    {
        return numLanes * chimes * (packed ? 64 : 32);
    }
};

class VlittleEngine : public Clocked, public VectorEngine, public LaneEnv
{
  public:
    VlittleEngine(ClockDomain &cd, StatGroup &stats, MemSystem &mem,
                  VEngineParams params = {});

    // --- VectorEngine interface (big core side) ---
    bool canAccept(const ExecTrace &trace) const override;
    void dispatch(const ExecTrace &trace,
                  std::function<void()> onDone) override;
    bool idle() const override;
    const char *engineName() const override { return p.name.c_str(); }
    bool dispatchAtHead() const override { return p.headDispatch; }

    /** Leave vector mode (driver calls when a vector region ends). */
    void exitVectorMode();
    bool inVectorMode() const { return vectorMode; }

    // --- LaneEnv interface (lane side) ---
    bool loadDataReady(SeqNum vseq, unsigned lane, unsigned chime,
                       unsigned needed) override;
    void storeDataFromLane(SeqNum vseq, unsigned lane, unsigned chime,
                           unsigned elems) override;
    void indexFromLane(SeqNum vseq, unsigned lane, unsigned chime) override;
    void vxSourceFromLane(SeqNum vseq, unsigned lane,
                          unsigned chime) override;
    bool vxDeliveryReady(SeqNum vseq) override;
    bool vxReadsComplete(SeqNum vseq) override;
    void uopRetired(SeqNum vseq, unsigned chime) override;
    bool vcuBlockedLockstep() const override { return lockstepBlocked; }

    const VEngineParams &params() const { return p; }

    /** Attach a fault injector (VCU bus stalls, VMU response drops). */
    void setFaultInjector(FaultInjector *inj) { injector = inj; }

    /** Attach the checker front end (nullptr = disarmed). */
    void setCheckContext(CheckContext *cc) { check = cc; }

    /** Attach the tracer (nullptr = disarmed); registers the VCU /
     *  VMIU / per-VMSU / VLU / VSU / VXU tracks and forwards to every
     *  lane. */
    void setTracer(Tracer *t);

    /** Register VCU/VMU queue and credit invariants. */
    void registerInvariants(InvariantRegistry &reg);

    /** Register the engine's heartbeat with a progress watchdog. */
    void registerProgress(Watchdog &wd);

    /** In-flight instruction table for deadlock diagnostics. */
    std::string inflightReport();

  protected:
    bool tick() override;

  private:
    /** One dynamic vector instruction in flight in the engine. */
    struct VInstr
    {
        SeqNum vseq = 0;
        ExecTrace trace;
        std::function<void()> onDone;
        bool needsDataSlot = false;

        std::vector<VUop> plan;       ///< lane uops, broadcast in order
        std::vector<int> planTarget;  ///< -1 broadcast, else lane index
        unsigned broadcastRemaining = 0;
        bool cracked = false;
        bool memCmdSent = false;
        bool isCross = false;
        bool scalarViaRing = false;   ///< vpopc & friends

        unsigned lanePending = 0;     ///< lane uops not yet retired
        unsigned storeLinesTotal = 0;
        unsigned storeLinesDone = 0;
        Tick ringDoneAt = maxTick;    ///< scalar-via-ring return time
        bool memGenDone = false;      ///< VMIU finished generating reqs
        bool completed = false;
        /** Dispatch timestamp, recorded only while tracing. */
        Tick dispatchTick = 0;
    };
    using VInstrPtr = std::shared_ptr<VInstr>;

    /** One cache-line request generated by the VMIU. */
    struct LineReq
    {
        std::uint64_t reqSeq = 0;
        SeqNum vseq = 0;
        Addr lineAddr = 0;
        bool isStore = false;
        bool indexed = false;
        unsigned elemStart = 0;
        unsigned elemCount = 0;
        unsigned vmsu = 0;
    };

    /** A VMU response whose injected retry budget was exhausted. */
    struct LostVmuResponse
    {
        SeqNum vseq = 0;
        Addr lineAddr = 0;
        bool isStore = false;
        unsigned vmsu = 0;
        unsigned attempts = 0;
        Tick tick = 0;
    };

    struct Vmsu
    {
        std::deque<LineReq> queue;
        unsigned loadSlotsUsed = 0;
        unsigned storeSlotsUsed = 0;
        /** Stores buffered in the queue (CAM capacity constraint). */
        unsigned camUsed = 0;
        std::unordered_set<std::uint64_t> storeDataReady;
    };

    // per-cycle unit models
    void vcuFrontTick();
    void vcuBroadcastTick();
    void vmiuTick();
    void vmsuTick(unsigned idx);
    void vluTick();
    void vsuTick();

    void crack(VInstr &vi);
    void completeInstr(VInstr &vi);
    void checkInstrDone(SeqNum vseq);
    unsigned packFactor(unsigned sewBytes) const;
    unsigned elemsPerChime(unsigned sewBytes) const;
    unsigned activeChimes(const ExecTrace &trace) const;
    unsigned laneOfElem(unsigned elemIdx, unsigned sewBytes) const;
    void issueToMemory(unsigned vmsuIdx, const LineReq &req,
                       unsigned attempt = 0);
    void deliverLine(unsigned vmsuIdx, SeqNum vseq, std::uint64_t reqSeq,
                     bool isStore);

    StatGroup &stats;
    MemSystem &mem;
    VEngineParams p;
    std::string sp;   ///< engine stat prefix "<name>."
    /** Interned counters (DESIGN.md §11). */
    StatHandle sModeSwitches, sDispatched, sVmiuCmds, sVcuStallsInjected,
               sUopsBroadcast, sVmuRetries, sVmuResponsesLost,
               sStoreLineReqs, sLoadLineReqs, sVmsuRawStalls,
               sVluDeliveries, sVsuLines, sCompleted, sCycles,
               sUnitLines, sStridedLines, sIndexedLines;
    FaultInjector *injector = nullptr;
    CheckContext *check = nullptr;
    Tracer *trace = nullptr;
    unsigned tidVcu = 0, tidVmiu = 0, tidVlu = 0, tidVsu = 0, tidVxu = 0;
    std::vector<unsigned> tidVmsu;
    /** Injected VCU command-bus stall: no broadcast until this tick. */
    Tick busStalledUntil = 0;
    /** Lost responses, recorded for deadlock forensics (bounded). */
    std::vector<LostVmuResponse> lostResponses;

    std::vector<std::unique_ptr<VectorLane>> lanes;

    // VCU state
    std::deque<VInstrPtr> cmdQueue;
    /** Cracked micro-ops awaiting lock-step broadcast (paper's UopQ). */
    struct QueuedUop
    {
        VInstrPtr vi;
        unsigned idx;
    };
    std::deque<QueuedUop> uopQueue;
    unsigned dataSlotsUsed = 0;
    bool vectorMode = false;
    Tick switchReadyAt = 0;
    bool lockstepBlocked = false;

    // in-flight instruction table
    std::map<SeqNum, VInstrPtr> inflight;
    SeqNum nextVseq = 1;

    // VMIU state
    std::deque<VInstrPtr> vmiuQueue;
    std::uint64_t nextReqSeq = 1;
    std::unordered_map<SeqNum, unsigned> vmiuNextElem;
    std::unordered_map<SeqNum, unsigned> idxChimesReady;
    std::unordered_map<SeqNum, unsigned> idxSendCounts;

    // VMSUs
    std::vector<Vmsu> vmsus;

    // VLU state
    std::deque<LineReq> vluOrder;
    std::unordered_set<std::uint64_t> vluDataReady;
    unsigned vluHeadDelivered = 0;
    /** delivered element counts per (vseq, lane, chime) */
    std::unordered_map<SeqNum, std::vector<unsigned>> arrived;

    // VSU state
    std::deque<LineReq> vsuOrder;
    std::unordered_map<SeqNum, unsigned> storeElemsReceived;

    // VXU state
    SeqNum vxuVseq = 0;
    unsigned vxReadsExpected = 0;
    unsigned vxReadsDone = 0;
    Tick vxDeliverAt = maxTick;
};

} // namespace bvl

#endif // BVL_CORE_VLITTLE_ENGINE_HH
