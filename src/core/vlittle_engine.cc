#include "core/vlittle_engine.hh"

#include <algorithm>
#include <cstdio>

#include "sim/check/check_context.hh"
#include "sim/fault.hh"
#include "sim/trace/tracer.hh"
#include "sim/watchdog.hh"

namespace bvl
{

namespace
{

/** Does the instruction consume a VCU scalar-data queue slot? */
bool
needsScalarData(const Instr &in)
{
    if (in.vsrc == VSrc2::vx || in.vsrc == VSrc2::vf)
        return true;
    if (in.traits().isVecMem)
        return true;   // base address (and stride)
    switch (in.op) {
      case Op::vsetvli:
      case Op::vmv_s_x:
      case Op::vfmv_s_f:
        return true;
      default:
        return false;
    }
}

int
vregIdx(RegId r)
{
    return isVReg(r) ? static_cast<int>(regIndex(r)) : -1;
}

} // namespace

VlittleEngine::VlittleEngine(ClockDomain &cd, StatGroup &sg,
                             MemSystem &ms, VEngineParams params)
    : Clocked(cd, params.name), stats(sg), mem(ms), p(std::move(params)),
      sp(p.name + "."),
      sModeSwitches(sg.handle(sp + "modeSwitches")),
      sDispatched(sg.handle(sp + "dispatched")),
      sVmiuCmds(sg.handle(sp + "vmiuCmds")),
      sVcuStallsInjected(sg.handle(sp + "vcuStallsInjected")),
      sUopsBroadcast(sg.handle(sp + "uopsBroadcast")),
      sVmuRetries(sg.handle(sp + "vmuRetries")),
      sVmuResponsesLost(sg.handle(sp + "vmuResponsesLost")),
      sStoreLineReqs(sg.handle(sp + "storeLineReqs")),
      sLoadLineReqs(sg.handle(sp + "loadLineReqs")),
      sVmsuRawStalls(sg.handle(sp + "vmsuRawStalls")),
      sVluDeliveries(sg.handle(sp + "vluDeliveries")),
      sVsuLines(sg.handle(sp + "vsuLines")),
      sCompleted(sg.handle(sp + "completed")),
      sCycles(sg.handle(sp + "cycles")),
      sUnitLines(sg.handle(sp + "unitLines")),
      sStridedLines(sg.handle(sp + "stridedLines")),
      sIndexedLines(sg.handle(sp + "indexedLines"))
{
    for (unsigned i = 0; i < p.numLanes; ++i) {
        lanes.push_back(std::make_unique<VectorLane>(
            cd, stats, *this, i,
            p.lanePrefix + std::to_string(i) + ".", p.fu,
            p.laneUopQueueDepth));
    }
    unsigned n_vmsus =
        p.memPath == VEngineParams::MemPath::bigL1D ? 1 :
        p.memPath == VEngineParams::MemPath::bankedL1 ? mem.numLittle()
                                                      : p.numLanes;
    vmsus.resize(n_vmsus);
}

unsigned
VlittleEngine::packFactor(unsigned sew_bytes) const
{
    if (!p.packed)
        return 1;
    return std::max(1u, 8u / std::max(1u, sew_bytes));
}

unsigned
VlittleEngine::elemsPerChime(unsigned sew_bytes) const
{
    return p.numLanes * packFactor(sew_bytes);
}

unsigned
VlittleEngine::activeChimes(const ExecTrace &trace) const
{
    unsigned sew = trace.inst->traits().isVecMem ? trace.inst->ew
                                                 : std::max<unsigned>(
                                                       1, trace.sew);
    unsigned epc = elemsPerChime(sew);
    unsigned c = (trace.vl + epc - 1) / epc;
    return std::clamp(c, 1u, p.chimes);
}

unsigned
VlittleEngine::laneOfElem(unsigned elem_idx, unsigned sew_bytes) const
{
    unsigned epc = elemsPerChime(sew_bytes);
    unsigned local = elem_idx % epc;
    return std::min(local / packFactor(sew_bytes), p.numLanes - 1);
}

// --------------------------------------------------------------------
// VectorEngine interface
// --------------------------------------------------------------------

bool
VlittleEngine::canAccept(const ExecTrace &trace) const
{
    if (cmdQueue.size() >= p.cmdQueueDepth)
        return false;
    if (needsScalarData(*trace.inst) && dataSlotsUsed >= p.dataQueueDepth)
        return false;
    return true;
}

void
VlittleEngine::dispatch(const ExecTrace &tr,
                        std::function<void()> onDone)
{
    bvl_assert(canAccept(tr), "%s: dispatch without canAccept",
               p.name.c_str());

    if (!vectorMode) {
        vectorMode = true;
        switchReadyAt = clock().eventQueue().now() +
                        clock().cyclesToTicks(p.switchPenalty);
        if (p.controlsL1Mode)
            mem.setVectorMode(true);
        sModeSwitches++;
        if (trace && trace->wants(TraceCat::vcu)) {
            trace->span(TraceCat::vcu, tidVcu, "modeSwitch",
                        clock().eventQueue().now(), switchReadyAt);
        }
    }

    auto vi = std::make_shared<VInstr>();
    vi->vseq = nextVseq++;
    vi->trace = tr;
    vi->onDone = std::move(onDone);
    vi->needsDataSlot = needsScalarData(*tr.inst);
    if (vi->needsDataSlot)
        ++dataSlotsUsed;

    cmdQueue.push_back(vi);
    inflight[vi->vseq] = vi;
    sDispatched++;
    if (trace) {
        vi->dispatchTick = clock().eventQueue().now();
        if (trace->wants(TraceCat::vcu)) {
            Json args = Json::object();
            args.set("vseq", vi->vseq);
            args.set("op", opName(tr.inst->op));
            trace->instant(TraceCat::vcu, tidVcu, "dispatch",
                           vi->dispatchTick, std::move(args));
        }
    }
    if (check)
        check->onVecDispatch(vi->vseq);
    activate();
}

bool
VlittleEngine::idle() const
{
    return cmdQueue.empty() && inflight.empty();
}

void
VlittleEngine::exitVectorMode()
{
    bvl_assert(idle(), "%s: exitVectorMode while busy", p.name.c_str());
    if (!vectorMode)
        return;
    vectorMode = false;
    if (p.controlsL1Mode)
        mem.setVectorMode(false);
    for (auto &lane : lanes)
        lane->reset();
}

// --------------------------------------------------------------------
// Cracking
// --------------------------------------------------------------------

void
VlittleEngine::crack(VInstr &vi)
{
    const Instr &in = *vi.trace.inst;
    const auto &tr = vi.trace;
    unsigned sew = in.traits().isVecMem ? in.ew
                                        : std::max<unsigned>(1, tr.sew);
    unsigned pf = packFactor(sew);
    unsigned chimeCount = activeChimes(tr);

    auto addBroadcast = [&](UopKind kind, unsigned chime, int vd, int vs1,
                            int vs2, int vs3, FuClass fuc) {
        VUop uop;
        uop.vseq = vi.vseq;
        uop.kind = kind;
        uop.op = in.op;
        uop.fu = fuc;
        uop.chime = chime;
        uop.vd = vd;
        uop.vs1 = vs1;
        uop.vs2 = vs2;
        uop.vs3 = vs3;
        uop.masked = in.masked;
        uop.packFactor = pf;
        uop.serialized = true;
        uop.reduceElems = tr.vl;
        vi.plan.push_back(uop);
        vi.planTarget.push_back(-1);
        vi.lanePending += p.numLanes;
    };
    auto addSingle = [&](UopKind kind, unsigned chime, int vd, int vs1,
                         FuClass fuc, unsigned targetLane) {
        VUop uop;
        uop.vseq = vi.vseq;
        uop.kind = kind;
        uop.op = in.op;
        uop.fu = fuc;
        uop.chime = chime;
        uop.vd = vd;
        uop.vs1 = vs1;
        uop.packFactor = pf;
        uop.reduceElems = tr.vl;
        vi.plan.push_back(uop);
        vi.planTarget.push_back(static_cast<int>(targetLane));
        vi.lanePending += 1;
    };

    switch (in.op) {
      case Op::vsetvli:
      case Op::vmfence:
        break;   // handled entirely in the VCU

      case Op::vle: case Op::vlse: case Op::vluxei: {
        bool indexed = in.op == Op::vluxei;
        if (indexed)
            for (unsigned c = 0; c < chimeCount; ++c)
                addBroadcast(UopKind::indexSend, c, -1, vregIdx(in.rs2),
                             -1, -1, FuClass::mem);
        for (unsigned c = 0; c < chimeCount; ++c)
            addBroadcast(UopKind::loadWb, c, vregIdx(in.rd), -1, -1, -1,
                         FuClass::mem);
        break;
      }

      case Op::vse: case Op::vsse: case Op::vsuxei: {
        bool indexed = in.op == Op::vsuxei;
        RegId dataReg = in.op == Op::vse ? in.rs2 : in.rs3;
        if (indexed)
            for (unsigned c = 0; c < chimeCount; ++c)
                addBroadcast(UopKind::indexSend, c, -1, vregIdx(in.rs2),
                             -1, -1, FuClass::mem);
        for (unsigned c = 0; c < chimeCount; ++c)
            addBroadcast(UopKind::storeRd, c, -1, vregIdx(dataReg), -1,
                         -1, FuClass::mem);
        break;
      }

      case Op::vrgather: case Op::vslideup: case Op::vslidedown: {
        vi.isCross = true;
        for (unsigned c = 0; c < chimeCount; ++c)
            addBroadcast(UopKind::vxRead, c, -1, vregIdx(in.rs1),
                         vregIdx(in.rs2), -1, FuClass::intAlu);
        for (unsigned c = 0; c < chimeCount; ++c)
            addBroadcast(UopKind::vxWrite, c, vregIdx(in.rd), -1, -1, -1,
                         FuClass::intAlu);
        break;
      }

      case Op::vredsum: case Op::vredmax: case Op::vredmin:
      case Op::vfredsum: case Op::vfredmax: case Op::vfredmin: {
        vi.isCross = true;
        for (unsigned c = 0; c < chimeCount; ++c)
            addBroadcast(UopKind::vxRead, c, -1, vregIdx(in.rs2),
                         vregIdx(in.rs1), -1, in.traits().fu);
        addSingle(UopKind::vxReduce, 0, vregIdx(in.rd), -1,
                  in.traits().fu, 0);
        break;
      }

      case Op::vpopc: case Op::vfirst: case Op::vmv_x_s:
      case Op::vfmv_f_s: {
        vi.isCross = true;
        vi.scalarViaRing = true;
        for (unsigned c = 0; c < chimeCount; ++c)
            addBroadcast(UopKind::vxRead, c, -1, vregIdx(in.rs1), -1, -1,
                         FuClass::intAlu);
        break;
      }

      case Op::vmv_s_x: case Op::vfmv_s_f:
        addSingle(UopKind::arith, 0, vregIdx(in.rd), -1,
                  FuClass::intAlu, 0);
        break;

      default: {
        // Plain per-chime arithmetic / compare / mask / move ops.
        int vs2 = in.vsrc == VSrc2::vv ? vregIdx(in.rs2) : -1;
        // FMA-style ops accumulate into vd.
        int vs3 = (in.op == Op::vfmacc || in.op == Op::vfnmsac)
                      ? vregIdx(in.rd) : -1;
        for (unsigned c = 0; c < chimeCount; ++c)
            addBroadcast(UopKind::arith, c, vregIdx(in.rd),
                         vregIdx(in.rs1), vs2, vs3, in.traits().fu);
        break;
      }
    }

    vi.cracked = true;
}

// --------------------------------------------------------------------
// VCU
// --------------------------------------------------------------------

void
VlittleEngine::vcuFrontTick()
{
    // Front stage (1 instruction/cycle): crack into the UopQ, forward
    // memory commands to the VMIU, execute vsetvli, resolve fences.
    // Decoupled from the broadcast stage so that stalled lanes do not
    // keep the memory side from running ahead (paper Section III-B).
    auto &eq = clock().eventQueue();
    if (cmdQueue.empty() || eq.now() < switchReadyAt)
        return;

    VInstrPtr vi = cmdQueue.front();
    const Instr &in = *vi->trace.inst;

    if (!vi->cracked) {
        crack(*vi);
        vi->broadcastRemaining =
            static_cast<unsigned>(vi->plan.size());
    }

    // vsetvli executes in the VCU (paper Section III-B).
    if (in.op == Op::vsetvli) {
        cmdQueue.pop_front();
        if (vi->needsDataSlot)
            --dataSlotsUsed;
        completeInstr(*vi);
        return;
    }

    // vmfence: all older instructions must have fully completed.
    if (in.op == Op::vmfence) {
        if (inflight.size() == 1 && vmiuQueue.empty() &&
            uopQueue.empty()) {
            cmdQueue.pop_front();
            if (vi->needsDataSlot)
                --dataSlotsUsed;
            completeInstr(*vi);
        }
        return;
    }

    // Cross-element instructions: one at a time in the VXU.
    if (vi->isCross) {
        if (vxuVseq != 0 && vxuVseq != vi->vseq)
            return;   // wait for the outstanding cross-element op
        if (vxuVseq == 0) {
            vxuVseq = vi->vseq;
            unsigned chimeCount = activeChimes(vi->trace);
            vxReadsExpected = chimeCount * p.numLanes;
            vxReadsDone = 0;
            vxDeliverAt = maxTick;
        }
    }

    // Memory command to the VMIU (decoupling: issued before any of
    // this instruction's micro-ops reach the lanes).
    if (in.traits().isVecMem && !vi->memCmdSent) {
        if (vmiuQueue.size() >= p.vmiuQueueDepth)
            return;
        vmiuQueue.push_back(vi);
        vi->memCmdSent = true;
        vmiuNextElem[vi->vseq] = 0;
        sVmiuCmds++;
    }

    // Move the whole micro-op plan into the UopQ.
    if (uopQueue.size() + vi->plan.size() > p.uopQueueDepth)
        return;
    for (unsigned i = 0; i < vi->plan.size(); ++i)
        uopQueue.push_back(QueuedUop{vi, i});
    cmdQueue.pop_front();
    if (vi->needsDataSlot)
        --dataSlotsUsed;
    if (vi->plan.empty())
        checkInstrDone(vi->vseq);
}

void
VlittleEngine::vcuBroadcastTick()
{
    // Broadcast stage: one micro-op per cycle from the UopQ head,
    // in lock step to all lanes.
    lockstepBlocked = false;
    if (uopQueue.empty())
        return;

    // Injected fault: the command bus freezes for a number of cycles
    // (queried only when there is something to broadcast, so a
    // disabled plan leaves the Rng untouched).
    auto &beq = clock().eventQueue();
    if (injector) {
        if (Cycles stall = injector->vcuStall(beq.now())) {
            busStalledUntil = std::max(
                busStalledUntil,
                beq.now() + clock().cyclesToTicks(stall));
            sVcuStallsInjected++;
        }
    }
    if (beq.now() < busStalledUntil) {
        lockstepBlocked = true;
        return;
    }

    QueuedUop &qu = uopQueue.front();
    VInstrPtr vi = qu.vi;
    const Instr &in = *vi->trace.inst;
    const VUop &uop = vi->plan[qu.idx];
    int target = vi->planTarget[qu.idx];

    if (target < 0) {
        for (const auto &lane : lanes) {
            if (!lane->queueFree()) {
                lockstepBlocked = true;
                return;
            }
        }
        unsigned sew = in.traits().isVecMem
            ? in.ew : std::max<unsigned>(1, vi->trace.sew);
        unsigned pf = packFactor(sew);
        unsigned epc = elemsPerChime(sew);
        for (unsigned l = 0; l < p.numLanes; ++l) {
            VUop laneUop = uop;
            // Elements this lane handles in this chime.
            unsigned base = uop.chime * epc + l * pf;
            unsigned vl = vi->trace.vl;
            laneUop.elems = base >= vl
                ? 0 : std::min<unsigned>(pf, vl - base);
            lanes[l]->pushUop(laneUop);
        }
    } else {
        if (!lanes[target]->queueFree()) {
            lockstepBlocked = true;
            return;
        }
        VUop laneUop = uop;
        laneUop.elems = std::min<unsigned>(laneUop.packFactor,
                                           std::max(1u, vi->trace.vl));
        lanes[target]->pushUop(laneUop);
    }

    uopQueue.pop_front();
    sUopsBroadcast++;
    if (trace && trace->wants(TraceCat::vcu)) {
        Json args = Json::object();
        args.set("vseq", vi->vseq);
        args.set("chime", uop.chime);
        args.set("kind", uopKindName(uop.kind));
        args.set("op", opName(in.op));
        trace->instant(TraceCat::vcu, tidVcu, "broadcast", beq.now(),
                       std::move(args));
    }
    bvl_assert(vi->broadcastRemaining > 0, "broadcast underflow");
    if (--vi->broadcastRemaining == 0)
        checkInstrDone(vi->vseq);
}

// --------------------------------------------------------------------
// VMIU: break memory commands into cache-line requests
// --------------------------------------------------------------------

void
VlittleEngine::deliverLine(unsigned vmsu_idx, SeqNum vseq,
                           std::uint64_t reqSeq, bool isStore)
{
    if (trace && trace->wants(TraceCat::vmu)) {
        trace->asyncEnd(TraceCat::vmu, tidVmsu[vmsu_idx],
                        isStore ? "store" : "load", reqSeq,
                        clock().eventQueue().now());
    }
    if (isStore) {
        --vmsus[vmsu_idx].storeSlotsUsed;
        auto it = inflight.find(vseq);
        if (it != inflight.end()) {
            ++it->second->storeLinesDone;
            checkInstrDone(vseq);
        }
    } else {
        vluDataReady.insert(reqSeq);
    }
    activate();
}

void
VlittleEngine::issueToMemory(unsigned vmsu_idx, const LineReq &req,
                             unsigned attempt)
{
    Addr addr = req.lineAddr << lineShift;
    bool isStore = req.isStore;

    if (attempt == 0 && trace && trace->wants(TraceCat::vmu)) {
        // Outstanding line requests overlap per VMSU, so their memory
        // lifetimes pair as async events keyed by the request seq.
        Json args = Json::object();
        args.set("vseq", req.vseq);
        args.set("line", req.lineAddr);
        args.set("elems", req.elemCount);
        trace->asyncBegin(TraceCat::vmu, tidVmsu[vmsu_idx],
                          isStore ? "store" : "load", req.reqSeq,
                          clock().eventQueue().now(), std::move(args));
    }

    // Injected fault: the response is dropped on the way back to the
    // VMSU. Bounded retries re-issue the line request after a timeout;
    // once they are exhausted the queue slot is stuck forever and the
    // progress watchdog reports the hang. The capture (LineReq + this
    // + attempt) fits MemCallback's inline buffer.
    auto done = [this, vmsu_idx, req, attempt] {
        Tick now = clock().eventQueue().now();
        if (injector && injector->dropVmuResponse(now)) {
            if (attempt < injector->vmuMaxRetries()) {
                sVmuRetries++;
                clock().scheduleCycles(
                    injector->vmuRetryDelay(),
                    [this, vmsu_idx, req, attempt] {
                        issueToMemory(vmsu_idx, req, attempt + 1);
                    });
            } else {
                sVmuResponsesLost++;
                // Remember the injection point so the watchdog's
                // deadlock diagnostic can name it (bounded table).
                if (lostResponses.size() < 16) {
                    lostResponses.push_back({req.vseq, req.lineAddr,
                                             req.isStore, vmsu_idx,
                                             attempt + 1, now});
                }
                warn("%s: VMU %s response for line 0x%llx (vseq %llu, "
                     "vmsu %u) lost after %u attempts; retry budget "
                     "exhausted",
                     p.name.c_str(), req.isStore ? "store" : "load",
                     static_cast<unsigned long long>(req.lineAddr),
                     static_cast<unsigned long long>(req.vseq),
                     vmsu_idx, attempt + 1);
            }
            return;
        }
        deliverLine(vmsu_idx, req.vseq, req.reqSeq, req.isStore);
    };

    switch (p.memPath) {
      case VEngineParams::MemPath::bankedL1:
        mem.accessBank(vmsu_idx, addr, isStore, std::move(done));
        break;
      case VEngineParams::MemPath::bigL1D:
        mem.accessData(mem.bigCoreId(), addr, isStore, std::move(done));
        break;
      case VEngineParams::MemPath::directL2:
        mem.accessL2(addr, isStore, std::move(done));
        break;
    }
}

void
VlittleEngine::vmiuTick()
{
    if (vmiuQueue.empty())
        return;
    VInstrPtr vi = vmiuQueue.front();
    const Instr &in = *vi->trace.inst;
    const auto &addrs = vi->trace.elemAddrs;
    bool isStore = in.traits().isVecStore;
    bool indexed = in.op == Op::vluxei || in.op == Op::vsuxei;
    SeqNum vseq = vi->vseq;

    if (addrs.empty()) {
        vi->memGenDone = true;
        vmiuQueue.pop_front();
        checkInstrDone(vseq);
        return;
    }

    unsigned ne = vmiuNextElem[vseq];
    unsigned avail = static_cast<unsigned>(addrs.size());
    if (indexed) {
        unsigned epc = elemsPerChime(in.ew);
        avail = std::min<unsigned>(avail, idxChimesReady[vseq] * epc);
        if (ne >= avail)
            return;   // waiting for index values from the lanes
    }

    // Build one cache-line request from consecutive elements.
    Addr line0 = lineOf(addrs[ne]);
    unsigned limit = indexed ? p.coalesceWindow
                             : static_cast<unsigned>(addrs.size());
    unsigned count = 1;
    while (ne + count < avail && count < limit &&
           lineOf(addrs[ne + count]) == line0) {
        ++count;
    }

    unsigned vmsuIdx;
    switch (p.memPath) {
      case VEngineParams::MemPath::bankedL1:
        vmsuIdx = mem.bankOf(line0 << lineShift);
        break;
      case VEngineParams::MemPath::bigL1D:
        vmsuIdx = 0;
        break;
      default:
        vmsuIdx = static_cast<unsigned>(line0 % vmsus.size());
        break;
    }
    Vmsu &m = vmsus[vmsuIdx];

    if (isStore) {
        if (m.storeSlotsUsed >= p.storeQueueLines ||
            m.camUsed >= p.storeCamEntries) {
            return;   // backpressure
        }
    } else if (m.loadSlotsUsed >= p.loadQueueLines) {
        return;
    }

    LineReq req;
    req.reqSeq = nextReqSeq++;
    req.vseq = vseq;
    req.lineAddr = line0;
    req.isStore = isStore;
    req.indexed = indexed;
    req.elemStart = ne;
    req.elemCount = count;
    req.vmsu = vmsuIdx;

    m.queue.push_back(req);
    if (isStore) {
        ++m.storeSlotsUsed;
        ++m.camUsed;
        vsuOrder.push_back(req);
        ++vi->storeLinesTotal;
    } else {
        ++m.loadSlotsUsed;
        vluOrder.push_back(req);
    }
    (isStore ? sStoreLineReqs : sLoadLineReqs)++;
    // Access-pattern taxonomy (DESIGN.md §18): line requests broken
    // down by how the element addresses were generated.
    bool strided = in.op == Op::vlse || in.op == Op::vsse;
    (indexed ? sIndexedLines : strided ? sStridedLines : sUnitLines)++;
    if (trace && trace->wants(TraceCat::vmu)) {
        Json args = Json::object();
        args.set("vseq", vseq);
        args.set("line", req.lineAddr);
        args.set("vmsu", vmsuIdx);
        args.set("elems", count);
        args.set("store", isStore);
        trace->instant(TraceCat::vmu, tidVmiu, "lineReq",
                       clock().eventQueue().now(), std::move(args));
    }

    vmiuNextElem[vseq] = ne + count;
    if (ne + count == addrs.size()) {
        vi->memGenDone = true;
        vmiuQueue.pop_front();
        checkInstrDone(vseq);
    }
}

// --------------------------------------------------------------------
// VMSU: per-bank request issue with store-address CAM
// --------------------------------------------------------------------

void
VlittleEngine::vmsuTick(unsigned idx)
{
    // Issue one request per cycle, oldest-first. A load may bypass
    // older stores that are still waiting for their data from the
    // VSU, but only if its line does not match any of them (the
    // store-address CAM check, paper Section III-E).
    Vmsu &m = vmsus[idx];
    std::unordered_set<Addr> olderStoreLines;
    unsigned scanned = 0;
    for (auto it = m.queue.begin();
         it != m.queue.end() && scanned < 8; ++it, ++scanned) {
        LineReq req = *it;
        if (req.isStore) {
            if (m.storeDataReady.count(req.reqSeq)) {
                m.storeDataReady.erase(req.reqSeq);
                bvl_assert(m.camUsed > 0, "CAM underflow");
                --m.camUsed;
                m.queue.erase(it);
                issueToMemory(idx, req);
                return;
            }
            olderStoreLines.insert(req.lineAddr);
        } else {
            if (olderStoreLines.count(req.lineAddr)) {
                sVmsuRawStalls++;
                continue;   // RAW through memory: wait for the store
            }
            m.queue.erase(it);
            issueToMemory(idx, req);
            return;
        }
    }
}

// --------------------------------------------------------------------
// VLU: in-order data delivery to the lanes
// --------------------------------------------------------------------

void
VlittleEngine::vluTick()
{
    if (vluOrder.empty())
        return;
    LineReq &req = vluOrder.front();
    if (!vluDataReady.count(req.reqSeq))
        return;

    // Indexed loads are pulled element by element (paper Section
    // III-E); unit/constant-stride responses push a whole line slice.
    if (req.indexed) {
        ++vluHeadDelivered;
        if (vluHeadDelivered < req.elemCount)
            return;
    }

    auto it = inflight.find(req.vseq);
    if (it != inflight.end()) {
        const Instr &in = *it->second->trace.inst;
        auto &counts = arrived[req.vseq];
        if (counts.empty())
            counts.assign(p.numLanes * p.chimes, 0);
        unsigned epc = elemsPerChime(in.ew);
        for (unsigned e = req.elemStart; e < req.elemStart + req.elemCount;
             ++e) {
            unsigned chime = std::min(e / epc, p.chimes - 1);
            unsigned lane = laneOfElem(e, in.ew);
            ++counts[lane * p.chimes + chime];
        }
    }

    if (trace && trace->wants(TraceCat::vmu)) {
        Json args = Json::object();
        args.set("vseq", req.vseq);
        args.set("line", req.lineAddr);
        args.set("elems", req.elemCount);
        trace->instant(TraceCat::vmu, tidVlu, "deliver",
                       clock().eventQueue().now(), std::move(args));
    }
    --vmsus[req.vmsu].loadSlotsUsed;
    vluDataReady.erase(req.reqSeq);
    vluOrder.pop_front();
    vluHeadDelivered = 0;
    sVluDeliveries++;
}

// --------------------------------------------------------------------
// VSU: assemble store lines from lane data
// --------------------------------------------------------------------

void
VlittleEngine::vsuTick()
{
    if (vsuOrder.empty())
        return;
    LineReq &req = vsuOrder.front();
    auto it = storeElemsReceived.find(req.vseq);
    unsigned have = it == storeElemsReceived.end() ? 0 : it->second;
    if (have < req.elemStart + req.elemCount)
        return;   // lanes have not produced this line's elements yet
    if (trace && trace->wants(TraceCat::vmu)) {
        Json args = Json::object();
        args.set("vseq", req.vseq);
        args.set("line", req.lineAddr);
        trace->instant(TraceCat::vmu, tidVsu, "lineReady",
                       clock().eventQueue().now(), std::move(args));
    }
    vmsus[req.vmsu].storeDataReady.insert(req.reqSeq);
    vsuOrder.pop_front();
    sVsuLines++;
}

// --------------------------------------------------------------------
// LaneEnv interface
// --------------------------------------------------------------------

bool
VlittleEngine::loadDataReady(SeqNum vseq, unsigned lane, unsigned chime,
                             unsigned needed)
{
    if (needed == 0)
        return true;
    auto it = arrived.find(vseq);
    if (it == arrived.end())
        return false;
    return it->second[lane * p.chimes + std::min(chime, p.chimes - 1)] >=
           needed;
}

void
VlittleEngine::storeDataFromLane(SeqNum vseq, unsigned, unsigned,
                                 unsigned elems)
{
    storeElemsReceived[vseq] += elems;
}

void
VlittleEngine::indexFromLane(SeqNum vseq, unsigned, unsigned)
{
    // A chime's indices are complete once every lane has sent its
    // share; lanes execute chimes in order, so counting is enough.
    auto &done = idxSendCounts[vseq];
    ++done;
    if (done % p.numLanes == 0)
        ++idxChimesReady[vseq];
}

void
VlittleEngine::vxSourceFromLane(SeqNum vseq, unsigned lane,
                                unsigned chime)
{
    if (vseq != vxuVseq)
        return;
    ++vxReadsDone;
    if (trace && trace->wants(TraceCat::vxu)) {
        Json args = Json::object();
        args.set("vseq", vseq);
        args.set("lane", lane);
        args.set("chime", chime);
        args.set("reads", vxReadsDone);
        trace->instant(TraceCat::vxu, tidVxu, "ringRead",
                       clock().eventQueue().now(), std::move(args));
    }
    if (vxReadsDone == vxReadsExpected) {
        auto it = inflight.find(vseq);
        unsigned totalElems =
            it != inflight.end() ? std::max(1u, it->second->trace.vl) : 1;
        // The ring shifts one hop per cycle for N element slots.
        vxDeliverAt = clock().eventQueue().now() +
                      clock().cyclesToTicks(totalElems);
        if (trace && trace->wants(TraceCat::vxu)) {
            Json args = Json::object();
            args.set("vseq", vseq);
            args.set("elems", totalElems);
            trace->span(TraceCat::vxu, tidVxu, "ringShift",
                        clock().eventQueue().now(), vxDeliverAt,
                        std::move(args));
        }
        if (it != inflight.end() && it->second->scalarViaRing) {
            // Scalar result returns to the big core after the ring
            // traversal plus one response hop.
            VInstrPtr vi = it->second;
            vi->ringDoneAt = clock().eventQueue().now() +
                             clock().cyclesToTicks(p.numLanes + 1);
            clock().eventQueue().scheduleAt(
                vi->ringDoneAt, [this, vi] { checkInstrDone(vi->vseq); });
        }
    }
}

bool
VlittleEngine::vxDeliveryReady(SeqNum vseq)
{
    return vseq == vxuVseq &&
           clock().eventQueue().now() >= vxDeliverAt;
}

bool
VlittleEngine::vxReadsComplete(SeqNum vseq)
{
    return vseq == vxuVseq && vxReadsDone == vxReadsExpected;
}

void
VlittleEngine::uopRetired(SeqNum vseq, unsigned chime)
{
    auto it = inflight.find(vseq);
    if (it == inflight.end())
        return;
    bvl_assert(it->second->lanePending > 0, "%s: uop underflow",
               p.name.c_str());
    --it->second->lanePending;
    if (check)
        check->onUopRetired(vseq, chime, clock().eventQueue().now());
    checkInstrDone(vseq);
    activate();
}

// --------------------------------------------------------------------
// Completion
// --------------------------------------------------------------------

void
VlittleEngine::checkInstrDone(SeqNum vseq)
{
    auto it = inflight.find(vseq);
    if (it == inflight.end())
        return;
    VInstr &vi = *it->second;
    if (vi.completed || !vi.cracked || vi.broadcastRemaining > 0)
        return;

    if (vi.scalarViaRing) {
        // Completed by the ring-delay event scheduled when the last
        // vxRead arrived; lanePending only tracks the reads.
        if (vi.lanePending > 0)
            return;
        if (clock().eventQueue().now() < vi.ringDoneAt)
            return;
    } else {
        if (vi.lanePending > 0)
            return;
        if (vi.trace.inst->traits().isVecMem) {
            if (!vi.memGenDone)
                return;
            if (vi.trace.inst->traits().isVecStore &&
                vi.storeLinesDone < vi.storeLinesTotal) {
                return;
            }
        }
    }
    completeInstr(vi);
}

void
VlittleEngine::completeInstr(VInstr &vi)
{
    if (vi.completed)
        return;
    vi.completed = true;
    sCompleted++;
    if (trace && trace->wants(TraceCat::vcu)) {
        // Vector instruction lifetimes overlap in the engine, so they
        // pair as async events on the VCU track.
        Tick now = clock().eventQueue().now();
        std::uint64_t id = trace->nextAsyncId();
        const char *name = opName(vi.trace.inst->op);
        Json args = Json::object();
        args.set("vseq", vi.vseq);
        args.set("op", name);
        args.set("dispatch", vi.dispatchTick);
        args.set("complete", now);
        trace->asyncBegin(TraceCat::vcu, tidVcu, name, id,
                          vi.dispatchTick, std::move(args));
        trace->asyncEnd(TraceCat::vcu, tidVcu, name, id, now);
    }

    if (vxuVseq == vi.vseq) {
        vxuVseq = 0;
        vxReadsExpected = vxReadsDone = 0;
        vxDeliverAt = maxTick;
    }
    arrived.erase(vi.vseq);
    storeElemsReceived.erase(vi.vseq);
    vmiuNextElem.erase(vi.vseq);
    idxChimesReady.erase(vi.vseq);
    idxSendCounts.erase(vi.vseq);

    SeqNum vseq = vi.vseq;
    auto onDone = std::move(vi.onDone);
    inflight.erase(vi.vseq);
    if (check)
        check->onVecComplete(vseq);
    if (onDone)
        onDone();
}

// --------------------------------------------------------------------
// Hardening hooks
// --------------------------------------------------------------------

void
VlittleEngine::setTracer(Tracer *t)
{
    trace = t;
    if (!trace)
        return;
    tidVcu = trace->track(sp + "vcu");
    tidVmiu = trace->track(sp + "vmiu");
    tidVmsu.clear();
    for (unsigned i = 0; i < vmsus.size(); ++i)
        tidVmsu.push_back(trace->track(sp + "vmsu" +
                                       std::to_string(i)));
    tidVlu = trace->track(sp + "vlu");
    tidVsu = trace->track(sp + "vsu");
    tidVxu = trace->track(sp + "vxu");
    for (auto &lane : lanes)
        lane->setTracer(trace);
}

void
VlittleEngine::registerInvariants(InvariantRegistry &reg)
{
    // VCU queue and credit conservation: every bound here is a credit
    // the dispatch/crack logic must never oversubscribe.
    reg.add(sp + "vcu.queues", [this]() -> std::string {
        if (cmdQueue.size() > p.cmdQueueDepth)
            return "command queue " + std::to_string(cmdQueue.size()) +
                   " > depth " + std::to_string(p.cmdQueueDepth);
        if (uopQueue.size() > p.uopQueueDepth)
            return "uop queue " + std::to_string(uopQueue.size()) +
                   " > depth " + std::to_string(p.uopQueueDepth);
        if (dataSlotsUsed > p.dataQueueDepth)
            return "scalar-data slots " + std::to_string(dataSlotsUsed) +
                   " > depth " + std::to_string(p.dataQueueDepth);
        return "";
    });
    reg.add(sp + "vcu.dataCredits", [this]() -> std::string {
        // Every consumed scalar-data slot must belong to an in-flight
        // or still-queued instruction that claimed one.
        unsigned claimed = 0;
        for (const auto &kv : inflight)
            claimed += kv.second->needsDataSlot ? 1 : 0;
        if (dataSlotsUsed > claimed)
            return std::to_string(dataSlotsUsed) +
                   " data slots used but only " +
                   std::to_string(claimed) + " in-flight claimants";
        return "";
    });
    reg.add(sp + "vmiu.queue", [this]() -> std::string {
        if (vmiuQueue.size() > p.vmiuQueueDepth)
            return "VMIU queue " + std::to_string(vmiuQueue.size()) +
                   " > depth " + std::to_string(p.vmiuQueueDepth);
        return "";
    });
    reg.add(sp + "vmsu.credits", [this]() -> std::string {
        for (unsigned i = 0; i < vmsus.size(); ++i) {
            const Vmsu &m = vmsus[i];
            if (m.loadSlotsUsed > p.loadQueueLines)
                return "vmsu" + std::to_string(i) + " load slots " +
                       std::to_string(m.loadSlotsUsed) + " > " +
                       std::to_string(p.loadQueueLines);
            if (m.storeSlotsUsed > p.storeQueueLines)
                return "vmsu" + std::to_string(i) + " store slots " +
                       std::to_string(m.storeSlotsUsed) + " > " +
                       std::to_string(p.storeQueueLines);
            if (m.camUsed > p.storeCamEntries)
                return "vmsu" + std::to_string(i) + " CAM entries " +
                       std::to_string(m.camUsed) + " > " +
                       std::to_string(p.storeCamEntries);
        }
        return "";
    });
    reg.add(sp + "uop.accounting", [this]() -> std::string {
        // Broadcast bookkeeping: an instruction past cracking can
        // never owe more broadcasts than its plan contains, nor more
        // lane retires than a full per-lane fan-out of that plan.
        for (const auto &kv : inflight) {
            const VInstr &vi = *kv.second;
            if (!vi.cracked)
                continue;
            if (vi.broadcastRemaining > vi.plan.size())
                return "vseq " + std::to_string(vi.vseq) +
                       " broadcastRemaining " +
                       std::to_string(vi.broadcastRemaining) +
                       " exceeds plan of " +
                       std::to_string(vi.plan.size());
            if (vi.lanePending > vi.plan.size() * p.numLanes)
                return "vseq " + std::to_string(vi.vseq) +
                       " lanePending " + std::to_string(vi.lanePending) +
                       " exceeds plan fan-out of " +
                       std::to_string(vi.plan.size() * p.numLanes);
        }
        return "";
    });
}

void
VlittleEngine::registerProgress(Watchdog &wd)
{
    // Work counters only (never cycles): chime micro-op broadcasts,
    // completions, and every VMU queue movement. A livelocked engine
    // keeps ticking but advances none of these.
    wd.addSource(p.name,
                 [this] {
                     return sDispatched.value() +
                            sUopsBroadcast.value() +
                            sCompleted.value() +
                            sLoadLineReqs.value() +
                            sStoreLineReqs.value() +
                            sVluDeliveries.value() +
                            sVsuLines.value();
                 },
                 [this] { return inflightReport(); });
}

std::string
VlittleEngine::inflightReport()
{
    if (idle())
        return vectorMode ? "idle (vector mode)" : "";

    std::string out = "cmdQ " + std::to_string(cmdQueue.size()) +
                      " uopQ " + std::to_string(uopQueue.size()) +
                      " vmiuQ " + std::to_string(vmiuQueue.size()) +
                      " vluQ " + std::to_string(vluOrder.size()) +
                      " vsuQ " + std::to_string(vsuOrder.size());
    if (busStalledUntil > clock().eventQueue().now())
        out += " busStalledUntil " + std::to_string(busStalledUntil);
    for (const auto &lost : lostResponses) {
        out += " | LOST " + std::string(lost.isStore ? "store" : "load") +
               " response: vseq " + std::to_string(lost.vseq) +
               " line 0x" + [&] {
                   char buf[20];
                   std::snprintf(buf, sizeof(buf), "%llx",
                                 static_cast<unsigned long long>(
                                     lost.lineAddr));
                   return std::string(buf);
               }() +
               " vmsu " + std::to_string(lost.vmsu) + " after " +
               std::to_string(lost.attempts) + " attempts at tick " +
               std::to_string(lost.tick);
    }
    for (unsigned i = 0; i < vmsus.size(); ++i) {
        const Vmsu &m = vmsus[i];
        if (m.queue.empty() && !m.loadSlotsUsed && !m.storeSlotsUsed)
            continue;
        out += " | vmsu" + std::to_string(i) + " q" +
               std::to_string(m.queue.size()) + " ld" +
               std::to_string(m.loadSlotsUsed) + " st" +
               std::to_string(m.storeSlotsUsed) + " cam" +
               std::to_string(m.camUsed);
    }
    unsigned listed = 0;
    for (const auto &kv : inflight) {
        const VInstr &vi = *kv.second;
        out += " | v" + std::to_string(vi.vseq) + " " +
               opName(vi.trace.inst->op) + " lanePend " +
               std::to_string(vi.lanePending) + " bcastRem " +
               std::to_string(vi.broadcastRemaining);
        if (vi.trace.inst->traits().isVecStore)
            out += " stLines " + std::to_string(vi.storeLinesDone) +
                   "/" + std::to_string(vi.storeLinesTotal);
        if (!vi.memGenDone && vi.trace.inst->traits().isVecMem)
            out += " memGenPending";
        if (++listed == 8) {
            out += " | ...";
            break;
        }
    }
    return out;
}

// --------------------------------------------------------------------
// Engine tick
// --------------------------------------------------------------------

bool
VlittleEngine::tick()
{
    if (idle())
        return false;
    sCycles++;

    vcuFrontTick();
    vcuBroadcastTick();
    for (auto &lane : lanes)
        lane->tick();
    vmiuTick();
    for (unsigned i = 0; i < vmsus.size(); ++i)
        vmsuTick(i);
    vluTick();
    vsuTick();

    return !idle();
}

} // namespace bvl
