#include "core/lane.hh"

#include "isa/reg.hh"
#include "sim/trace/tracer.hh"

namespace bvl
{

VectorLane::VectorLane(ClockDomain &cd, StatGroup &sg, LaneEnv &env,
                       unsigned lane_idx, std::string stat_prefix,
                       FuLatencies fu_params, unsigned uop_queue_depth)
    : clock(cd), stats(sg), env(env), lane(lane_idx),
      prefix(std::move(stat_prefix)),
      sCycles(sg.handle(prefix + "cycles")),
      sUops(sg.handle(prefix + "uops")),
      fu(fu_params), queueDepth(uop_queue_depth)
{
    for (unsigned c = 0; c < numStallCauses; ++c)
        sStall[c] = sg.handle(prefix + "stall." +
                              stallName(StallCause(c)));
    reset();
}

void
VectorLane::reset()
{
    uopQueue.clear();
    for (auto &row : vregReadyAt)
        row.fill(0);
    for (auto &row : vregProducer)
        row.fill(ProducerKind::none);
    fuBusyUntil.fill(0);
}

void
VectorLane::recordStall(StallCause cause)
{
    sStall[unsigned(cause)]++;
}

bool
VectorLane::srcsReady(const VUop &uop, StallCause &why) const
{
    Tick now = clock.eventQueue().now();
    unsigned chime = uop.chime < maxChimes ? uop.chime : maxChimes - 1;
    for (int r : {uop.vs1, uop.vs2, uop.vs3}) {
        if (r < 0)
            continue;
        if (vregReadyAt[r][chime] > now) {
            switch (vregProducer[r][chime]) {
              case ProducerKind::memory: why = StallCause::rawMem; break;
              case ProducerKind::crossElem: why = StallCause::xelem; break;
              default: why = StallCause::rawLlfu; break;
            }
            return false;
        }
    }
    if (uop.masked && vregReadyAt[0][chime] > now) {
        why = StallCause::rawLlfu;
        return false;
    }
    return true;
}

Tick
VectorLane::occupyFu(const VUop &uop, unsigned subOps)
{
    Tick now = clock.eventQueue().now();
    Cycles lat = fu.latency(uop.fu);
    Tick ready;
    if (subOps <= 1) {
        fuBusyUntil[unsigned(uop.fu)] =
            now + clock.cyclesToTicks(fu.pipelined(uop.fu) ? 1 : lat);
        ready = now + clock.cyclesToTicks(lat);
    } else if (fu.pipelined(uop.fu)) {
        // One packed element issued per cycle into the pipeline.
        fuBusyUntil[unsigned(uop.fu)] = now + clock.cyclesToTicks(subOps);
        ready = now + clock.cyclesToTicks(subOps - 1 + lat);
    } else {
        // Iterative unit (divide): fully serialized.
        fuBusyUntil[unsigned(uop.fu)] =
            now + clock.cyclesToTicks(subOps * lat);
        ready = now + clock.cyclesToTicks(subOps * lat);
    }
    return ready;
}

void
VectorLane::tick()
{
    Tick now = clock.eventQueue().now();
    sCycles++;

    if (uopQueue.empty()) {
        recordStall(env.vcuBlockedLockstep() ? StallCause::simd
                                             : StallCause::misc);
        return;
    }

    VUop &uop = uopQueue.front();
    unsigned chime = uop.chime < maxChimes ? uop.chime : maxChimes - 1;

    StallCause why = StallCause::misc;
    if (!srcsReady(uop, why)) {
        recordStall(why);
        return;
    }
    if (uop.fu != FuClass::nop && fuBusyUntil[unsigned(uop.fu)] > now) {
        recordStall(StallCause::structural);
        return;
    }

    SeqNum vseq = uop.vseq;
    Tick readyTick = now + clock.cyclesToTicks(1);

    switch (uop.kind) {
      case UopKind::arith: {
        bool complex = FuLatencies::longLatency(uop.fu);
        unsigned subOps =
            (uop.serialized && complex) ? std::max(1u, uop.elems) : 1;
        readyTick = occupyFu(uop, subOps);
        if (uop.vd >= 0) {
            vregReadyAt[uop.vd][chime] = readyTick;
            vregProducer[uop.vd][chime] = complex ? ProducerKind::longFu
                                                  : ProducerKind::shortOp;
        }
        break;
      }

      case UopKind::loadWb: {
        if (!env.loadDataReady(vseq, lane, chime, uop.elems)) {
            recordStall(StallCause::rawMem);
            return;
        }
        readyTick = occupyFu(uop, 1);
        if (uop.vd >= 0) {
            vregReadyAt[uop.vd][chime] = readyTick;
            vregProducer[uop.vd][chime] = ProducerKind::memory;
        }
        break;
      }

      case UopKind::storeRd: {
        occupyFu(uop, 1);
        env.storeDataFromLane(vseq, lane, chime, uop.elems);
        break;
      }

      case UopKind::indexSend: {
        occupyFu(uop, 1);
        env.indexFromLane(vseq, lane, chime);
        break;
      }

      case UopKind::vxRead: {
        occupyFu(uop, 1);
        env.vxSourceFromLane(vseq, lane, chime);
        break;
      }

      case UopKind::vxWrite: {
        if (!env.vxDeliveryReady(vseq)) {
            recordStall(StallCause::xelem);
            return;
        }
        readyTick = occupyFu(uop, 1);
        if (uop.vd >= 0) {
            vregReadyAt[uop.vd][chime] = readyTick;
            vregProducer[uop.vd][chime] = ProducerKind::crossElem;
        }
        break;
      }

      case UopKind::vxReduce: {
        if (!env.vxReadsComplete(vseq)) {
            recordStall(StallCause::xelem);
            return;
        }
        // One element streams in from the ring per cycle and issues
        // into the execution pipeline (paper Section III-D).
        readyTick = occupyFu(uop, std::max(1u, uop.reduceElems));
        if (uop.vd >= 0) {
            vregReadyAt[uop.vd][chime] = readyTick;
            vregProducer[uop.vd][chime] = ProducerKind::crossElem;
        }
        break;
      }
    }

    if (trace && trace->wants(TraceCat::lane)) {
        Json args = Json::object();
        args.set("vseq", vseq);
        args.set("chime", uop.chime);
        args.set("elems", uop.elems);
        args.set("op", opName(uop.op));
        trace->span(TraceCat::lane, traceTid, uopKindName(uop.kind),
                    now, readyTick, std::move(args));
    }

    // Completion (write-back) notification to the engine.
    clock.eventQueue().scheduleAt(readyTick, [this, vseq, chime] {
        env.uopRetired(vseq, chime);
    });

    uopQueue.pop_front();
    ++numUops;
    sUops++;
    recordStall(StallCause::busy);
}

void
VectorLane::setTracer(Tracer *t)
{
    trace = t;
    if (trace)
        traceTid = trace->track(prefix + "lane");
}

} // namespace bvl
