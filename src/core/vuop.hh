/**
 * @file
 * Micro-operations cracked by the VCU and executed by vector lanes.
 *
 * Per paper Section III-C, each vector instruction becomes one
 * micro-op per element group (chime), broadcast in lock step to all
 * little cores. Cross-element instructions additionally use
 * vxread/vxwrite/vxreduce micro-ops (Section III-D), and memory
 * instructions pair a VMIU command with per-chime writeback/read
 * micro-ops (Section III-E).
 */

#ifndef BVL_CORE_VUOP_HH
#define BVL_CORE_VUOP_HH

#include <cstdint>

#include "isa/opcode.hh"
#include "sim/types.hh"

namespace bvl
{

enum class UopKind : std::uint8_t
{
    arith,      ///< per-chime arithmetic on the lane's packed registers
    loadWb,     ///< write VLU-delivered load data into the register file
    storeRd,    ///< read store data from the register file, send to VSU
    indexSend,  ///< read index register, send indices to the VMIU
    vxRead,     ///< read source elements, send to the VXU ring
    vxWrite,    ///< wait for VXU data, write destination elements
    vxReduce,   ///< (first lane only) reduce all elements from the VXU
};

inline const char *
uopKindName(UopKind k)
{
    switch (k) {
      case UopKind::arith: return "arith";
      case UopKind::loadWb: return "loadWb";
      case UopKind::storeRd: return "storeRd";
      case UopKind::indexSend: return "indexSend";
      case UopKind::vxRead: return "vxRead";
      case UopKind::vxWrite: return "vxWrite";
      case UopKind::vxReduce: return "vxReduce";
    }
    return "?";
}

struct VUop
{
    SeqNum vseq = 0;          ///< owning dynamic vector instruction
    UopKind kind = UopKind::arith;
    Op op = Op::nop;          ///< originating opcode (FU class, latency)
    FuClass fu = FuClass::intAlu;
    unsigned chime = 0;

    // Architectural vector register numbers (-1 = unused).
    int vd = -1;
    int vs1 = -1;
    int vs2 = -1;
    int vs3 = -1;
    bool masked = false;

    /** Active elements this lane handles for this chime. */
    unsigned elems = 0;
    /** Elements packed per 64-bit physical register. */
    unsigned packFactor = 1;
    /** vxReduce: total elements arriving over the ring. */
    unsigned reduceElems = 0;
    /** Complex op: packed elements execute serially (paper III-C). */
    bool serialized = false;
};

} // namespace bvl

#endif // BVL_CORE_VUOP_HH
