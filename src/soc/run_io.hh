/**
 * @file
 * JSON round-trip serialization of RunOptions and RunResult.
 *
 * Two subsystems need a faithful on-disk form of a run: failure
 * forensics (replay recipes in the "bvl-failure-report-v1" schema) and
 * the crash-safe sweep service (write-ahead journal and result cache,
 * DESIGN.md §14). Both must reproduce a run *exactly*, so every field
 * that affects simulation — including the engine-parameter override of
 * the Figure 7/8 ablations — round-trips, and a serialized RunResult
 * re-serializes byte-identically (the JSON layer prints doubles with
 * %.17g, which is exact for IEEE doubles).
 *
 * fromJson functions accept missing members (defaulting them) so old
 * documents stay loadable; they throw SimFatalError on structurally
 * malformed input, matching Json::parse.
 */

#ifndef BVL_SOC_RUN_IO_HH
#define BVL_SOC_RUN_IO_HH

#include "sim/check/json.hh"
#include "soc/run_driver.hh"

namespace bvl
{

Json runOptionsToJson(const RunOptions &o);
RunOptions runOptionsFromJson(const Json &j);

Json runResultToJson(const RunResult &r);
RunResult runResultFromJson(const Json &j);

Json vengineParamsToJson(const VEngineParams &p);
VEngineParams vengineParamsFromJson(const Json &j);

/** Heartbeat/divergence serialization shared with forensics reports. */
Json heartbeatsToJson(const std::vector<Watchdog::Heartbeat> &beats);
std::vector<Watchdog::Heartbeat> heartbeatsFromJson(const Json &j);
Json divergenceToJson(const DivergenceRecord &d);
DivergenceRecord divergenceFromJson(const Json &j);

} // namespace bvl

#endif // BVL_SOC_RUN_IO_HH
