#include "soc/checkpoint.hh"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "sim/check/json.hh"
#include "sim/io/sim_io.hh"
#include "sim/logging.hh"
#include "sweep/service/digest.hh"

namespace bvl
{

namespace
{

constexpr const char *kSchema = "bvl-checkpoint-v2";
constexpr unsigned kVersion = 2;

/** Executing core of a single-stream run: littles[0] for 1L, else big. */
ArchState &
execArch(Soc &soc)
{
    return soc.design() == Design::d1L ? soc.littles[0]->archState()
                                       : soc.big->archState();
}

GsharePredictor *
execBpred(Soc &soc)
{
    return soc.design() == Design::d1L ? nullptr
                                       : &soc.big->predictor();
}

// --- little-endian payload writer/reader --------------------------------

void put8(std::string &out, std::uint8_t v) { out.push_back(char(v)); }

void
put32(std::string &out, std::uint32_t v)
{
    out.append(reinterpret_cast<const char *>(&v), 4);
}

void
put64(std::string &out, std::uint64_t v)
{
    out.append(reinterpret_cast<const char *>(&v), 8);
}

/** Bounds-checked sequential reader over the payload bytes. */
struct Reader
{
    const char *p;
    const char *end;
    bool ok = true;

    bool
    take(void *out, std::size_t n)
    {
        if (!ok || std::size_t(end - p) < n) {
            ok = false;
            return false;
        }
        std::memcpy(out, p, n);
        p += n;
        return true;
    }

    std::uint8_t get8() { std::uint8_t v = 0; take(&v, 1); return v; }
    std::uint32_t get32() { std::uint32_t v = 0; take(&v, 4); return v; }
    std::uint64_t get64() { std::uint64_t v = 0; take(&v, 8); return v; }
};

/** Fully parsed payload, held aside until verification passes. */
struct Parsed
{
    std::string arch;

    bool hasBpred = false;
    std::uint32_t bpredBits = 0;
    std::vector<std::uint8_t> bpredTable;
    std::uint32_t bpredHistory = 0;

    std::vector<std::pair<Addr, std::vector<std::uint8_t>>> pages;

    /** Tier-B recipe, fully decoded before anything is applied. */
    std::vector<WarmRecord> warm;
};

bool
parsePayload(const std::string &payload, Parsed &out)
{
    Reader r{payload.data(), payload.data() + payload.size()};

    std::uint64_t archBytes = r.get64();
    if (!r.ok || archBytes != ArchState::dumpedBytes ||
        std::size_t(r.end - r.p) < archBytes) {
        return false;
    }
    out.arch.assign(r.p, archBytes);
    r.p += archBytes;

    out.hasBpred = r.get8() != 0;
    if (out.hasBpred) {
        out.bpredBits = r.get32();
        std::uint32_t tableSize = r.get32();
        if (!r.ok || tableSize > (1u << 24) ||
            std::size_t(r.end - r.p) < tableSize) {
            return false;
        }
        out.bpredTable.resize(tableSize);
        r.take(out.bpredTable.data(), tableSize);
        out.bpredHistory = r.get32();
    }

    std::uint64_t pageCount = r.get64();
    if (!r.ok ||
        pageCount > std::uint64_t(r.end - r.p) /
                        (8 + BackingStore::pageBytes)) {
        return false;
    }
    out.pages.reserve(pageCount);
    for (std::uint64_t i = 0; i < pageCount; ++i) {
        Addr pageNum = r.get64();
        std::vector<std::uint8_t> bytes(BackingStore::pageBytes);
        if (!r.take(bytes.data(), bytes.size()))
            return false;
        out.pages.emplace_back(pageNum, std::move(bytes));
    }

    std::uint64_t warmRecords = r.get64();
    std::uint64_t warmBytes = r.get64();
    // Each record is at least 2 bytes (tag + one varint byte), so the
    // count is bounded by the remaining payload.
    if (!r.ok || warmBytes > std::uint64_t(r.end - r.p) ||
        warmRecords > warmBytes / 2 + 1) {
        return false;
    }
    std::string stream(r.p, warmBytes);
    r.p += warmBytes;
    if (!decodeWarmTrace(stream, warmRecords, out.warm))
        return false;

    return r.ok && r.p == r.end;
}

} // namespace

const char *
checkpointStatusName(CheckpointStatus s)
{
    switch (s) {
      case CheckpointStatus::ok: return "ok";
      case CheckpointStatus::missing: return "missing";
      case CheckpointStatus::corrupt: return "corrupt";
      case CheckpointStatus::mismatch: return "mismatch";
    }
    return "?";
}

const char *
checkpointFlavor(const Soc &soc)
{
    if (soc.design() == Design::d1L)
        return "little-scalar";
    return designHasVector(soc.design()) ? "big-vector" : "big-scalar";
}

std::string
checkpointInputSha256(const Soc &soc, Workload &workload)
{
    Sha256 d;
    std::vector<std::pair<Addr, const std::vector<std::uint8_t> *>>
        pages;
    for (const auto &kv : soc.backing.pageMap())
        pages.emplace_back(kv.first, &kv.second);
    std::sort(pages.begin(), pages.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (const auto &[num, bytes] : pages) {
        std::uint64_t n = num;
        d.update(&n, sizeof(n));
        d.update(bytes->data(), bytes->size());
    }
    for (const auto &[reg, value] : workload.fullRangeArgs()) {
        std::uint32_t r = static_cast<std::uint32_t>(reg);
        std::uint64_t v = value;
        d.update(&r, sizeof(r));
        d.update(&v, sizeof(v));
    }
    return d.hex();
}

bool
saveCheckpoint(const std::string &path, Soc &soc,
               const std::string &workloadName, std::uint64_t ffInsts,
               const WarmTrace &trace, const std::string &inputSha,
               std::string *error)
{
    std::string payload;

    // 1. Architectural state of the executing core.
    std::string archBytes;
    execArch(soc).dumpState(archBytes);
    put64(payload, archBytes.size());
    payload += archBytes;

    // 2. Branch predictor (big-core flavors only).
    GsharePredictor *bp = execBpred(soc);
    put8(payload, bp ? 1 : 0);
    if (bp) {
        put32(payload, bp->tableIndexBits());
        put32(payload, std::uint32_t(bp->rawTable().size()));
        payload.append(
            reinterpret_cast<const char *>(bp->rawTable().data()),
            bp->rawTable().size());
        put32(payload, bp->rawHistory());
    }

    // 3. Memory image, sorted by page number for determinism.
    std::vector<std::pair<Addr, const std::vector<std::uint8_t> *>>
        pages;
    for (const auto &kv : soc.backing.pageMap())
        pages.emplace_back(kv.first, &kv.second);
    std::sort(pages.begin(), pages.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    put64(payload, pages.size());
    for (const auto &[num, bytes] : pages) {
        put64(payload, num);
        payload.append(reinterpret_cast<const char *>(bytes->data()),
                       bytes->size());
    }

    // 4. Tier-B warm stream (replayed, not imaged, at load time).
    put64(payload, trace.records());
    put64(payload, trace.bytes().size());
    payload += trace.bytes();

    Json header = Json::object();
    header.set("schema", kSchema);
    header.set("version", kVersion);
    header.set("flavor", checkpointFlavor(soc));
    header.set("vlen", std::uint64_t(soc.vlenBits()));
    header.set("workload", workloadName);
    header.set("ffInsts", ffInsts);
    header.set("inputSha256", inputSha);
    header.set("payloadBytes", std::uint64_t(payload.size()));
    header.set("payloadSha256", sha256Hex(payload));

    std::string text = header.dump(0);
    text += '\n';
    text += payload;

    // Atomic publish through the seam: temp file, fsync, rename, with
    // the temp unlinked on any failure (result-cache idiom).
    auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty() &&
        !io::mkdirs("checkpoint.save.mkdir", parent.string(), error))
        return false;
    return io::writeFileAtomic("checkpoint.save", path, text, error);
}

CheckpointStatus
loadCheckpoint(const std::string &path, Soc &soc,
               const std::string &workloadName,
               const std::string &inputSha, std::string *error)
{
    auto fail = [&](CheckpointStatus st, const std::string &why) {
        if (error)
            *error = why;
        return st;
    };

    std::string data;
    bool missing = false;
    std::string rerr;
    if (!io::readFile("checkpoint.load.read", path, &data, &missing,
                      &rerr)) {
        if (missing)
            return fail(CheckpointStatus::missing,
                        "no checkpoint at " + path);
        // Present but unreadable: never trusted, so callers treat it
        // like any other bad artifact (quarantine + re-produce).
        return fail(CheckpointStatus::corrupt, rerr);
    }

    auto nl = data.find('\n');
    if (nl == std::string::npos)
        return fail(CheckpointStatus::corrupt, "missing header line");

    Json header;
    try {
        header = Json::parse(data.substr(0, nl));
    } catch (const SimError &e) {
        return fail(CheckpointStatus::corrupt,
                    std::string("bad header: ") + e.what());
    }
    if (header["schema"].asString() != kSchema ||
        header["version"].asU64() != kVersion) {
        return fail(CheckpointStatus::corrupt,
                    "unknown schema/version");
    }
    if (header["workload"].asString() != workloadName ||
        header["flavor"].asString() != checkpointFlavor(soc) ||
        header["vlen"].asU64() != soc.vlenBits()) {
        return fail(CheckpointStatus::mismatch,
                    "checkpoint is for " +
                        header["workload"].asString() + "/" +
                        header["flavor"].asString() + "/vlen" +
                        std::to_string(header["vlen"].asU64()) +
                        ", not " + workloadName + "/" +
                        checkpointFlavor(soc) + "/vlen" +
                        std::to_string(soc.vlenBits()));
    }
    if (header["inputSha256"].asString() != inputSha)
        return fail(CheckpointStatus::mismatch,
                    "initial memory/argument digest differs (other "
                    "scale or dataset?)");

    std::string payload = data.substr(nl + 1);
    if (payload.size() != header["payloadBytes"].asU64())
        return fail(CheckpointStatus::corrupt, "truncated payload");
    if (sha256Hex(payload) != header["payloadSha256"].asString())
        return fail(CheckpointStatus::corrupt, "payload digest mismatch");

    Parsed img;
    if (!parsePayload(payload, img))
        return fail(CheckpointStatus::corrupt, "malformed payload");

    // Predictor-geometry verification before anything is applied.
    GsharePredictor *bp = execBpred(soc);
    if (img.hasBpred != (bp != nullptr) ||
        (bp && (img.bpredBits != bp->tableIndexBits() ||
                img.bpredTable.size() != bp->rawTable().size()))) {
        return fail(CheckpointStatus::mismatch,
                    "branch-predictor geometry differs");
    }

    // --- apply (cannot fail from here on) ---------------------------

    bool archOk = execArch(soc).loadState(img.arch.data(),
                                          img.arch.size());
    bvl_assert(archOk, "arch image size verified but load failed");
    if (bp)
        bp->restore(img.bpredTable, img.bpredHistory);

    soc.backing.clear();
    for (const auto &[pageNum, bytes] : img.pages)
        soc.backing.write(pageNum << BackingStore::pageShift,
                          bytes.data(), bytes.size());

    // Tier B: replay the recorded warm calls through *this* SoC's
    // hierarchy. Warm accesses at tick 0 are deterministic functions
    // of the access sequence alone, so this leaves exactly the state
    // a live fast-forward would have — whatever the cache geometry.
    unsigned coreId = soc.design() == Design::d1L
                          ? 0u : soc.mem.bigCoreId();
    for (const WarmRecord &w : img.warm) {
        Addr addr = w.lineNum << lineShift;
        switch (w.kind) {
          case WarmRecord::fetch:
            soc.mem.warmFetch(coreId, addr);
            break;
          case WarmRecord::data:
            soc.mem.warmData(coreId, addr, w.isStore);
            break;
          case WarmRecord::l2:
            soc.mem.warmL2(addr, w.isStore);
            break;
        }
    }

    return CheckpointStatus::ok;
}

bool
quarantineCheckpoint(const std::string &path)
{
    std::string err;
    if (!io::renameFile("checkpoint.quarantine.rename", path,
                        path + ".corrupt", &err)) {
        warn("checkpoint: cannot quarantine %s: %s", path.c_str(),
             err.c_str());
        return false;
    }
    return true;
}

} // namespace bvl
