#include "soc/checkpoint.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/check/json.hh"
#include "sim/logging.hh"
#include "sweep/service/digest.hh"

namespace bvl
{

namespace
{

constexpr const char *kSchema = "bvl-checkpoint-v1";
constexpr unsigned kVersion = 1;

/** Executing core of a single-stream run: littles[0] for 1L, else big. */
ArchState &
execArch(Soc &soc)
{
    return soc.design() == Design::d1L ? soc.littles[0]->archState()
                                       : soc.big->archState();
}

GsharePredictor *
execBpred(Soc &soc)
{
    return soc.design() == Design::d1L ? nullptr
                                       : &soc.big->predictor();
}

/**
 * Every cache of the hierarchy in a fixed, design-determined order:
 * little L1Is, little L1Ds, big L1I, big L1D, L2. Save and load use
 * the same order, so position identifies the cache.
 */
std::vector<Cache *>
allCaches(Soc &soc)
{
    std::vector<Cache *> cs;
    unsigned n = soc.mem.numLittle();
    for (unsigned i = 0; i < n; ++i)
        cs.push_back(&soc.mem.littleL1I(i));
    for (unsigned i = 0; i < n; ++i)
        cs.push_back(&soc.mem.littleL1D(i));
    cs.push_back(&soc.mem.bigL1I());
    cs.push_back(&soc.mem.bigL1D());
    cs.push_back(&soc.mem.l2().l2cache());
    return cs;
}

// --- little-endian payload writer/reader --------------------------------

void put8(std::string &out, std::uint8_t v) { out.push_back(char(v)); }

void
put32(std::string &out, std::uint32_t v)
{
    out.append(reinterpret_cast<const char *>(&v), 4);
}

void
put64(std::string &out, std::uint64_t v)
{
    out.append(reinterpret_cast<const char *>(&v), 8);
}

/** Bounds-checked sequential reader over the payload bytes. */
struct Reader
{
    const char *p;
    const char *end;
    bool ok = true;

    bool
    take(void *out, std::size_t n)
    {
        if (!ok || std::size_t(end - p) < n) {
            ok = false;
            return false;
        }
        std::memcpy(out, p, n);
        p += n;
        return true;
    }

    std::uint8_t get8() { std::uint8_t v = 0; take(&v, 1); return v; }
    std::uint32_t get32() { std::uint32_t v = 0; take(&v, 4); return v; }
    std::uint64_t get64() { std::uint64_t v = 0; take(&v, 8); return v; }
};

/** Fully parsed payload, held aside until verification passes. */
struct Parsed
{
    std::string arch;

    bool hasBpred = false;
    std::uint32_t bpredBits = 0;
    std::vector<std::uint8_t> bpredTable;
    std::uint32_t bpredHistory = 0;

    std::vector<std::pair<Addr, std::vector<std::uint8_t>>> pages;

    struct CacheImage
    {
        std::uint8_t indexMode = 0;
        std::uint32_t numSets = 0;
        std::uint32_t assoc = 0;
        std::vector<Cache::WayState> ways;
    };
    std::vector<CacheImage> caches;

    std::unordered_map<Addr, std::uint32_t> sharers;
};

bool
parsePayload(const std::string &payload, Parsed &out)
{
    Reader r{payload.data(), payload.data() + payload.size()};

    std::uint64_t archBytes = r.get64();
    if (!r.ok || archBytes != ArchState::dumpedBytes ||
        std::size_t(r.end - r.p) < archBytes) {
        return false;
    }
    out.arch.assign(r.p, archBytes);
    r.p += archBytes;

    out.hasBpred = r.get8() != 0;
    if (out.hasBpred) {
        out.bpredBits = r.get32();
        std::uint32_t tableSize = r.get32();
        if (!r.ok || tableSize > (1u << 24) ||
            std::size_t(r.end - r.p) < tableSize) {
            return false;
        }
        out.bpredTable.resize(tableSize);
        r.take(out.bpredTable.data(), tableSize);
        out.bpredHistory = r.get32();
    }

    std::uint64_t pageCount = r.get64();
    if (!r.ok ||
        pageCount > std::uint64_t(r.end - r.p) /
                        (8 + BackingStore::pageBytes)) {
        return false;
    }
    out.pages.reserve(pageCount);
    for (std::uint64_t i = 0; i < pageCount; ++i) {
        Addr pageNum = r.get64();
        std::vector<std::uint8_t> bytes(BackingStore::pageBytes);
        if (!r.take(bytes.data(), bytes.size()))
            return false;
        out.pages.emplace_back(pageNum, std::move(bytes));
    }

    std::uint32_t cacheCount = r.get32();
    if (!r.ok || cacheCount > 1024)
        return false;
    out.caches.resize(cacheCount);
    for (auto &c : out.caches) {
        c.indexMode = r.get8();
        c.numSets = r.get32();
        c.assoc = r.get32();
        std::uint64_t ways = std::uint64_t(c.numSets) * c.assoc;
        if (!r.ok || ways > std::uint64_t(r.end - r.p) / 18)
            return false;
        c.ways.resize(ways);
        for (auto &w : c.ways) {
            w.valid = r.get8() != 0;
            w.dirty = r.get8() != 0;
            w.line = r.get64();
            w.lastUse = r.get64();
        }
    }

    std::uint64_t sharerCount = r.get64();
    if (!r.ok || sharerCount > std::uint64_t(r.end - r.p) / 12)
        return false;
    for (std::uint64_t i = 0; i < sharerCount; ++i) {
        Addr line = r.get64();
        std::uint32_t mask = r.get32();
        out.sharers[line] = mask;
    }

    return r.ok && r.p == r.end;
}

} // namespace

const char *
checkpointStatusName(CheckpointStatus s)
{
    switch (s) {
      case CheckpointStatus::ok: return "ok";
      case CheckpointStatus::missing: return "missing";
      case CheckpointStatus::corrupt: return "corrupt";
      case CheckpointStatus::mismatch: return "mismatch";
    }
    return "?";
}

bool
saveCheckpoint(const std::string &path, Soc &soc,
               const std::string &workloadName, std::uint64_t ffInsts,
               std::string *error)
{
    std::string payload;

    // 1. Architectural state of the executing core.
    std::string archBytes;
    execArch(soc).dumpState(archBytes);
    put64(payload, archBytes.size());
    payload += archBytes;

    // 2. Branch predictor (big-core designs only).
    GsharePredictor *bp = execBpred(soc);
    put8(payload, bp ? 1 : 0);
    if (bp) {
        put32(payload, bp->tableIndexBits());
        put32(payload, std::uint32_t(bp->rawTable().size()));
        payload.append(
            reinterpret_cast<const char *>(bp->rawTable().data()),
            bp->rawTable().size());
        put32(payload, bp->rawHistory());
    }

    // 3. Memory image, sorted by page number for determinism.
    std::vector<std::pair<Addr, const std::vector<std::uint8_t> *>>
        pages;
    for (const auto &kv : soc.backing.pageMap())
        pages.emplace_back(kv.first, &kv.second);
    std::sort(pages.begin(), pages.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    put64(payload, pages.size());
    for (const auto &[num, bytes] : pages) {
        put64(payload, num);
        payload.append(reinterpret_cast<const char *>(bytes->data()),
                       bytes->size());
    }

    // 4. Cache tag/LRU arrays in the fixed allCaches() order.
    auto caches = allCaches(soc);
    put32(payload, std::uint32_t(caches.size()));
    for (Cache *c : caches) {
        put8(payload, std::uint8_t(c->getIndexMode()));
        put32(payload, c->setCount());
        put32(payload, c->params().assoc);
        for (const auto &w : c->dumpWays()) {
            put8(payload, w.valid ? 1 : 0);
            put8(payload, w.dirty ? 1 : 0);
            put64(payload, w.line);
            put64(payload, w.lastUse);
        }
    }

    // 5. L2 directory sharer bitmaps, sorted by line.
    std::vector<std::pair<Addr, std::uint32_t>> sharers(
        soc.mem.l2().sharerMap().begin(),
        soc.mem.l2().sharerMap().end());
    std::sort(sharers.begin(), sharers.end());
    put64(payload, sharers.size());
    for (const auto &[line, mask] : sharers) {
        put64(payload, line);
        put32(payload, mask);
    }

    Json header = Json::object();
    header.set("schema", kSchema);
    header.set("version", kVersion);
    header.set("design", designName(soc.design()));
    header.set("workload", workloadName);
    header.set("ffInsts", ffInsts);
    header.set("payloadBytes", std::uint64_t(payload.size()));
    header.set("payloadSha256", sha256Hex(payload));

    std::string text = header.dump(0);
    text += '\n';
    text += payload;

    // Atomic publish: temp file, fsync, rename (result-cache idiom).
    std::error_code ec;
    auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);
    std::string tmp = path + ".tmp." + std::to_string(::getpid());
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        if (error)
            *error = "cannot open " + tmp;
        return false;
    }
    std::size_t off = 0;
    bool ok = true;
    while (off < text.size()) {
        ssize_t n = ::write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            ok = false;
            break;
        }
        off += std::size_t(n);
    }
    if (ok)
        ::fsync(fd);
    ::close(fd);
    if (!ok) {
        ::unlink(tmp.c_str());
        if (error)
            *error = "short write of " + tmp;
        return false;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        ::unlink(tmp.c_str());
        if (error)
            *error = "cannot publish " + path + ": " + ec.message();
        return false;
    }
    return true;
}

CheckpointStatus
loadCheckpoint(const std::string &path, Soc &soc,
               const std::string &workloadName, std::string *error)
{
    auto fail = [&](CheckpointStatus st, const std::string &why) {
        if (error)
            *error = why;
        return st;
    };

    std::ifstream in(path, std::ios::binary);
    if (!in)
        return fail(CheckpointStatus::missing,
                    "no checkpoint at " + path);
    std::ostringstream text;
    text << in.rdbuf();
    std::string data = text.str();

    auto nl = data.find('\n');
    if (nl == std::string::npos)
        return fail(CheckpointStatus::corrupt, "missing header line");

    Json header;
    try {
        header = Json::parse(data.substr(0, nl));
    } catch (const SimError &e) {
        return fail(CheckpointStatus::corrupt,
                    std::string("bad header: ") + e.what());
    }
    if (header["schema"].asString() != kSchema ||
        header["version"].asU64() != kVersion) {
        return fail(CheckpointStatus::corrupt,
                    "unknown schema/version");
    }
    if (header["design"].asString() != designName(soc.design()) ||
        header["workload"].asString() != workloadName) {
        return fail(CheckpointStatus::mismatch,
                    "checkpoint is for " +
                        header["design"].asString() + "/" +
                        header["workload"].asString() + ", not " +
                        designName(soc.design()) + "/" + workloadName);
    }

    std::string payload = data.substr(nl + 1);
    if (payload.size() != header["payloadBytes"].asU64())
        return fail(CheckpointStatus::corrupt, "truncated payload");
    if (sha256Hex(payload) != header["payloadSha256"].asString())
        return fail(CheckpointStatus::corrupt, "payload digest mismatch");

    Parsed img;
    if (!parsePayload(payload, img))
        return fail(CheckpointStatus::corrupt, "malformed payload");

    // Geometry verification before anything is applied.
    auto caches = allCaches(soc);
    if (img.caches.size() != caches.size())
        return fail(CheckpointStatus::mismatch, "cache count differs");
    for (std::size_t i = 0; i < caches.size(); ++i) {
        if (img.caches[i].numSets != caches[i]->setCount() ||
            img.caches[i].assoc != caches[i]->params().assoc ||
            img.caches[i].indexMode > 1) {
            return fail(CheckpointStatus::mismatch,
                        "geometry of " + caches[i]->name() +
                            " differs");
        }
    }
    GsharePredictor *bp = execBpred(soc);
    if (img.hasBpred != (bp != nullptr) ||
        (bp && (img.bpredBits != bp->tableIndexBits() ||
                img.bpredTable.size() != bp->rawTable().size()))) {
        return fail(CheckpointStatus::mismatch,
                    "branch-predictor geometry differs");
    }

    // --- apply (cannot fail from here on) ---------------------------

    bool archOk = execArch(soc).loadState(img.arch.data(),
                                          img.arch.size());
    bvl_assert(archOk, "arch image size verified but load failed");
    if (bp)
        bp->restore(img.bpredTable, img.bpredHistory);

    soc.backing.clear();
    for (const auto &[pageNum, bytes] : img.pages)
        soc.backing.write(pageNum << BackingStore::pageShift,
                          bytes.data(), bytes.size());

    for (std::size_t i = 0; i < caches.size(); ++i) {
        caches[i]->setIndexMode(IndexMode(img.caches[i].indexMode));
        bool waysOk = caches[i]->loadWays(img.caches[i].ways);
        bvl_assert(waysOk, "cache geometry verified but load failed");
    }
    soc.mem.l2().loadSharers(std::move(img.sharers));

    return CheckpointStatus::ok;
}

bool
quarantineCheckpoint(const std::string &path)
{
    std::error_code ec;
    std::filesystem::rename(path, path + ".corrupt", ec);
    if (ec) {
        warn("checkpoint: cannot quarantine %s: %s", path.c_str(),
             ec.message().c_str());
        return false;
    }
    return true;
}

} // namespace bvl
