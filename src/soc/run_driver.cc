#include "soc/run_driver.hh"

#include "sim/check/forensics.hh"
#include "sim/io/io_fault.hh"
#include "sim/logging.hh"
#include "sim/watchdog.hh"
#include "soc/fast_forward.hh"

namespace bvl
{

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::ok: return "ok";
      case RunStatus::time_limit: return "time_limit";
      case RunStatus::deadlock: return "deadlock";
      case RunStatus::verify_failed: return "verify_failed";
      case RunStatus::sim_error: return "sim_error";
      case RunStatus::check_failed: return "check_failed";
      case RunStatus::deadline: return "deadline";
      case RunStatus::worker_lost: return "worker_lost";
    }
    return "?";
}

RunStatus
runStatusFromName(const std::string &name)
{
    // Iterate the enum by count rather than a hand-maintained list,
    // so a new status only needs runStatusName + numRunStatuses.
    for (unsigned i = 0; i < numRunStatuses; ++i) {
        auto s = static_cast<RunStatus>(i);
        if (name == runStatusName(s))
            return s;
    }
    fatal("unknown run status '%s'", name.c_str());
}

RunResult
runWorkload(Design design, Workload &workload, const RunOptions &opts)
{
    // Divert this thread's diagnostics into the result for the
    // duration of the run: sweep workers must not interleave on
    // stderr, and each result should own its own warnings.
    LogCapture capture;

    RunResult r;
    r.workload = workload.name();
    r.design = designName(design);

    std::unique_ptr<Soc> soc;
    std::unique_ptr<WsRuntime> runtime;
    bool done = false;
    bool finished = false;
    std::optional<double> estimatedNs;
    std::map<std::string, std::uint64_t> extraStats;

    try {
        SocParams sp;
        sp.design = design;
        sp.bigFreqGhz = opts.bigGhz;
        sp.littleFreqGhz = opts.littleGhz;
        if (opts.engineOverride)
            sp.engineOverride =
                std::make_unique<VEngineParams>(*opts.engineOverride);
        sp.faults = opts.faults;
        sp.check = opts.check;
        sp.trace = opts.trace;
        soc = std::make_unique<Soc>(std::move(sp));

        workload.init(soc->backing);

        // Sampled / checkpointed runs dispatch through the
        // fast-forward engine instead of the switch below.
        bool ffMode = opts.sampling.enabled() ||
                      opts.checkpoint.enabled();

        // Lockstep is exact only when exactly one component fetches a
        // single program stream: the non-runtime data-parallel modes.
        // Task graphs (and 1b-4L/1bIV-4L) degrade to invariants only.
        bool singleStream = workload.isDataParallel() &&
                            design != Design::d1b4L &&
                            design != Design::d1bIV4L;
        // Arm before any program is dispatched: arming snapshots the
        // initialized backing store for the reference model. The
        // fast-forward engine rejects lockstep itself (the checker
        // must observe every fetch), so don't arm it here.
        if (!ffMode)
            soc->armLockstep(singleStream);

        auto onDone = [&] { done = true; };

        runtime = std::make_unique<WsRuntime>(*soc);
        runtime->registerProgress(soc->watchdog);

        if (ffMode) {
            // Dispatch happens inside runFastForwarded(), below, after
            // the watchdog is armed.
        } else if (workload.isDataParallel()) {
            switch (design) {
              case Design::d1L:
                soc->littles[0]->runProgram(workload.scalarProgram(),
                                            workload.fullRangeArgs(),
                                            onDone);
                break;
              case Design::d1b:
                soc->big->runProgram(workload.scalarProgram(),
                                     workload.fullRangeArgs(), onDone);
                break;
              case Design::d1bIV:
              case Design::d1bDV:
              case Design::d1b4VL: {
                ProgramPtr prog = workload.vectorProgram();
                bvl_assert(prog != nullptr, "%s has no vector program",
                           workload.name().c_str());
                soc->big->runProgram(prog, workload.fullRangeArgs(),
                                     onDone);
                break;
              }
              case Design::d1b4L:
                runtime->run(workload.taskGraph(), true,
                             soc->littles.size(), false, onDone);
                break;
              case Design::d1bIV4L:
                runtime->run(workload.taskGraph(), true,
                             soc->littles.size(), true, onDone);
                break;
            }
        } else {
            // Task-parallel (Ligra) workloads always go through the
            // work-stealing runtime.
            bool useBig = design != Design::d1L;
            unsigned littles = 0;
            switch (design) {
              case Design::d1L:
                littles = 1;
                break;
              case Design::d1b:
              case Design::d1bIV:
              case Design::d1bDV:
                littles = 0;
                break;
              default:
                littles = static_cast<unsigned>(soc->littles.size());
                break;
            }
            runtime->run(workload.taskGraph(), useBig, littles, false,
                         onDone);
        }

        // A wall-clock deadline rides on the watchdog's periodic check
        // events, so setting one arms the watchdog unconditionally.
        if (opts.watchdog || opts.wallDeadlineSec > 0.0) {
            soc->watchdog.setInterval(static_cast<Tick>(
                opts.watchdogIntervalNs * ticksPerNs));
            soc->watchdog.setWallDeadline(opts.wallDeadlineSec);
            soc->watchdog.arm();
        }

        if (ffMode) {
            FfRunOutcome ffo =
                runFastForwarded(*soc, design, workload, opts);
            finished = ffo.finished;
            estimatedNs = ffo.estimatedNs;
            extraStats = std::move(ffo.extraStats);
        } else {
            Tick limit = static_cast<Tick>(opts.limitNs * ticksPerNs);
            finished = soc->runUntil([&] { return done; }, limit);
        }

        if (finished) {
            r.status = RunStatus::ok;
            if (opts.verifyResult) {
                r.verified = workload.verify(soc->backing);
                if (!r.verified) {
                    r.status = RunStatus::verify_failed;
                    r.message = "result verification failed";
                }
            }
        } else if (soc->eq.empty()) {
            // The queue drained with the workload incomplete: a lost
            // wakeup. With the watchdog armed its check event keeps
            // the queue alive, so this branch is the watchdog-off path.
            r.status = RunStatus::deadlock;
            r.message = "event queue drained before completion\n" +
                        soc->watchdog.report();
        } else {
            r.status = RunStatus::time_limit;
            r.message = "simulated-time limit expired";
            warn("%s on %s: simulated-time limit (%g ns) expired",
                 r.workload.c_str(), r.design.c_str(), opts.limitNs);
        }
    } catch (const io::IoCrashError &) {
        // An injected crash point models process death: it must
        // unwind past the run-status machinery, not be absorbed as
        // one more sim_error.
        throw;
    } catch (const CheckError &e) {
        r.status = RunStatus::check_failed;
        r.message = e.what();
        if (e.hasDivergence())
            r.divergence = e.divergence();
    } catch (const WallDeadlineError &e) {
        r.status = RunStatus::deadline;
        r.message = e.what();
    } catch (const DeadlockError &e) {
        r.status = RunStatus::deadlock;
        r.message = e.what();
    } catch (const SimError &e) {
        r.status = RunStatus::sim_error;
        r.message = e.what();
    }

    if (soc) {
        soc->watchdog.disarm();
        // Flush the trace footer and the final (partial) stat sample
        // even when the run failed — a truncated-but-valid trace is
        // exactly what failure forensics wants.
        if (soc->tracer())
            soc->tracer()->finish();
        if (!r.ok()) {
            // Forensics capture: final heartbeat table and a last
            // invariant sweep, regardless of how the run failed.
            r.heartbeats = soc->watchdog.snapshot();
            if (soc->checker())
                r.invariantViolations = soc->checker()->invariantReport();
        }
        r.finished = finished;
        r.ns = soc->elapsedNs();
        // A sampled run reports the extrapolated runtime, not the
        // (much shorter) detailed-simulated time.
        if (estimatedNs)
            r.ns = *estimatedNs;
        r.ifetchReqs = soc->stats.value("sys.ifetchReqs");
        r.dataReqs = soc->stats.value("sys.dataReqs");
        r.bigFetched = soc->stats.value("big.fetched");
        for (const auto &kv : soc->stats.all())
            r.stats[kv.first] = kv.second.value();
        for (const auto &kv : extraStats)
            r.stats[kv.first] = kv.second;
    }
    r.log = capture.take();
    return r;
}

RunResult
runWorkload(Design design, const std::string &name, Scale scale,
            const RunOptions &opts)
{
    // Also capture diagnostics emitted while *building* the workload
    // (graph generation, program assembly) — they belong to this run.
    LogCapture capture;
    auto w = makeWorkload(name, scale);
    if (!w) {
        RunResult r;
        r.workload = name;
        r.design = designName(design);
        r.status = RunStatus::sim_error;
        r.message = "unknown workload '" + name + "'";
        warn("%s", r.message.c_str());
        r.log = capture.take();
        return r;
    }
    auto r = runWorkload(design, *w, opts);

    // Forensics: only this overload knows the (name, scale) pair a
    // replay recipe needs, so the failure report is written here.
    if (!r.ok() && !opts.check.forensicsPath.empty()) {
        ReplayRecipe recipe{design, name, scale, opts};
        if (writeFailureReport(opts.check.forensicsPath, r, recipe))
            inform("failure report written to %s",
                   opts.check.forensicsPath.c_str());
    }

    // Construction happened before the run, so its text goes first.
    r.log = capture.take() + r.log;
    return r;
}

} // namespace bvl
