#include "soc/run_driver.hh"

namespace bvl
{

RunResult
runWorkload(Design design, Workload &workload, const RunOptions &opts)
{
    SocParams sp;
    sp.design = design;
    sp.bigFreqGhz = opts.bigGhz;
    sp.littleFreqGhz = opts.littleGhz;
    if (opts.engineOverride)
        sp.engineOverride =
            std::make_unique<VEngineParams>(*opts.engineOverride);
    Soc soc(std::move(sp));

    workload.init(soc.backing);

    bool done = false;
    auto onDone = [&] { done = true; };

    WsRuntime runtime(soc);
    bool usedRuntime = false;

    if (workload.isDataParallel()) {
        switch (design) {
          case Design::d1L:
            soc.littles[0]->runProgram(workload.scalarProgram(),
                                       workload.fullRangeArgs(), onDone);
            break;
          case Design::d1b:
            soc.big->runProgram(workload.scalarProgram(),
                                workload.fullRangeArgs(), onDone);
            break;
          case Design::d1bIV:
          case Design::d1bDV:
          case Design::d1b4VL: {
            ProgramPtr prog = workload.vectorProgram();
            bvl_assert(prog != nullptr, "%s has no vector program",
                       workload.name().c_str());
            soc.big->runProgram(prog, workload.fullRangeArgs(), onDone);
            break;
          }
          case Design::d1b4L:
            runtime.run(workload.taskGraph(), true,
                        soc.littles.size(), false, onDone);
            usedRuntime = true;
            break;
          case Design::d1bIV4L:
            runtime.run(workload.taskGraph(), true,
                        soc.littles.size(), true, onDone);
            usedRuntime = true;
            break;
        }
    } else {
        // Task-parallel (Ligra) workloads always go through the
        // work-stealing runtime.
        bool useBig = design != Design::d1L;
        unsigned littles = 0;
        switch (design) {
          case Design::d1L:
            littles = 1;
            break;
          case Design::d1b:
          case Design::d1bIV:
          case Design::d1bDV:
            littles = 0;
            break;
          default:
            littles = static_cast<unsigned>(soc.littles.size());
            break;
        }
        runtime.run(workload.taskGraph(), useBig, littles, false,
                    onDone);
        usedRuntime = true;
    }
    (void)usedRuntime;

    Tick limit = static_cast<Tick>(opts.limitNs * ticksPerNs);
    bool finished = soc.runUntil([&] { return done; }, limit);

    RunResult r;
    r.workload = workload.name();
    r.design = designName(design);
    r.finished = finished;
    r.ns = soc.elapsedNs();
    if (finished && opts.verifyResult)
        r.verified = workload.verify(soc.backing);
    r.ifetchReqs = soc.stats.value("sys.ifetchReqs");
    r.dataReqs = soc.stats.value("sys.dataReqs");
    r.bigFetched = soc.stats.value("big.fetched");
    for (const auto &kv : soc.stats.all())
        r.stats[kv.first] = kv.second.value();
    return r;
}

RunResult
runWorkload(Design design, const std::string &name, Scale scale,
            const RunOptions &opts)
{
    auto w = makeWorkload(name, scale);
    bvl_assert(w != nullptr, "unknown workload '%s'", name.c_str());
    return runWorkload(design, *w, opts);
}

} // namespace bvl
