#include "soc/run_io.hh"

#include "sim/check/forensics.hh"
#include "sim/logging.hh"

namespace bvl
{

namespace
{

Json
checkOptionsToJson(const CheckOptions &c)
{
    Json j = Json::object();
    j.set("lockstep", c.lockstep);
    j.set("invariants", c.invariants);
    j.set("retireContext", c.retireContext);
    j.set("invariantPeriod", c.invariantPeriod);
    j.set("forensicsPath", c.forensicsPath);
    return j;
}

CheckOptions
checkOptionsFromJson(const Json &j)
{
    CheckOptions c;
    if (j.isNull())
        return c;
    if (j.has("lockstep"))
        c.lockstep = j["lockstep"].asBool();
    if (j.has("invariants"))
        c.invariants = j["invariants"].asBool();
    if (j.has("retireContext"))
        c.retireContext =
            static_cast<unsigned>(j["retireContext"].asU64());
    if (j.has("invariantPeriod"))
        c.invariantPeriod =
            static_cast<unsigned>(j["invariantPeriod"].asU64());
    if (j.has("forensicsPath"))
        c.forensicsPath = j["forensicsPath"].asString();
    return c;
}

Json
traceOptionsToJson(const TraceOptions &t)
{
    Json j = Json::object();
    j.set("path", t.path);
    j.set("samplePath", t.samplePath);
    j.set("startNs", t.startNs);
    j.set("stopNs", t.stopNs);
    j.set("categories", static_cast<std::uint64_t>(t.categories));
    j.set("sampleIntervalNs", t.sampleIntervalNs);
    return j;
}

TraceOptions
traceOptionsFromJson(const Json &j)
{
    TraceOptions t;
    if (j.isNull())
        return t;
    if (j.has("path"))
        t.path = j["path"].asString();
    if (j.has("samplePath"))
        t.samplePath = j["samplePath"].asString();
    if (j.has("startNs"))
        t.startNs = j["startNs"].asDouble();
    if (j.has("stopNs"))
        t.stopNs = j["stopNs"].asDouble();
    if (j.has("categories"))
        t.categories = static_cast<unsigned>(j["categories"].asU64());
    if (j.has("sampleIntervalNs"))
        t.sampleIntervalNs = j["sampleIntervalNs"].asDouble();
    return t;
}

Json
samplingOptionsToJson(const SamplingOptions &s)
{
    Json j = Json::object();
    j.set("ffInsts", s.ffInsts);
    j.set("warmupInsts", s.warmupInsts);
    j.set("detailInsts", s.detailInsts);
    j.set("periods", static_cast<std::uint64_t>(s.periods));
    return j;
}

SamplingOptions
samplingOptionsFromJson(const Json &j)
{
    SamplingOptions s;
    if (j.isNull())
        return s;
    if (j.has("ffInsts"))
        s.ffInsts = j["ffInsts"].asU64();
    if (j.has("warmupInsts"))
        s.warmupInsts = j["warmupInsts"].asU64();
    if (j.has("detailInsts"))
        s.detailInsts = j["detailInsts"].asU64();
    if (j.has("periods"))
        s.periods = static_cast<unsigned>(j["periods"].asU64());
    return s;
}

Json
checkpointOptionsToJson(const CheckpointOptions &c)
{
    Json j = Json::object();
    j.set("savePath", c.savePath);
    j.set("restorePath", c.restorePath);
    j.set("ffInsts", c.ffInsts);
    j.set("farm", c.farm);
    j.set("farmDir", c.farmDir);
    j.set("strict", c.strict);
    return j;
}

CheckpointOptions
checkpointOptionsFromJson(const Json &j)
{
    CheckpointOptions c;
    if (j.isNull())
        return c;
    if (j.has("savePath"))
        c.savePath = j["savePath"].asString();
    if (j.has("restorePath"))
        c.restorePath = j["restorePath"].asString();
    if (j.has("ffInsts"))
        c.ffInsts = j["ffInsts"].asU64();
    if (j.has("farm"))
        c.farm = j["farm"].asBool();
    if (j.has("farmDir"))
        c.farmDir = j["farmDir"].asString();
    if (j.has("strict"))
        c.strict = j["strict"].asBool();
    return c;
}

} // namespace

Json
vengineParamsToJson(const VEngineParams &p)
{
    Json j = Json::object();
    j.set("name", p.name);
    j.set("lanePrefix", p.lanePrefix);
    j.set("numLanes", p.numLanes);
    j.set("chimes", p.chimes);
    j.set("packed", p.packed);
    j.set("cmdQueueDepth", p.cmdQueueDepth);
    j.set("uopQueueDepth", p.uopQueueDepth);
    j.set("dataQueueDepth", p.dataQueueDepth);
    j.set("laneUopQueueDepth", p.laneUopQueueDepth);
    j.set("vmiuQueueDepth", p.vmiuQueueDepth);
    j.set("loadQueueLines", p.loadQueueLines);
    j.set("storeQueueLines", p.storeQueueLines);
    j.set("storeCamEntries", p.storeCamEntries);
    j.set("coalesceWindow", p.coalesceWindow);
    j.set("switchPenalty", p.switchPenalty);
    Json fu = Json::object();
    fu.set("intAlu", p.fu.intAlu);
    fu.set("intMul", p.fu.intMul);
    fu.set("intDiv", p.fu.intDiv);
    fu.set("fpAdd", p.fu.fpAdd);
    fu.set("fpMul", p.fu.fpMul);
    fu.set("fpDiv", p.fu.fpDiv);
    fu.set("mem", p.fu.mem);
    fu.set("branch", p.fu.branch);
    j.set("fu", std::move(fu));
    switch (p.memPath) {
      case VEngineParams::MemPath::bankedL1:
        j.set("memPath", "bankedL1");
        break;
      case VEngineParams::MemPath::bigL1D:
        j.set("memPath", "bigL1D");
        break;
      case VEngineParams::MemPath::directL2:
        j.set("memPath", "directL2");
        break;
    }
    j.set("controlsL1Mode", p.controlsL1Mode);
    j.set("headDispatch", p.headDispatch);
    return j;
}

VEngineParams
vengineParamsFromJson(const Json &j)
{
    VEngineParams p;
    auto u = [&](const char *key, auto &field) {
        if (j.has(key))
            field = static_cast<std::decay_t<decltype(field)>>(
                j[key].asU64());
    };
    if (j.has("name"))
        p.name = j["name"].asString();
    if (j.has("lanePrefix"))
        p.lanePrefix = j["lanePrefix"].asString();
    u("numLanes", p.numLanes);
    u("chimes", p.chimes);
    if (j.has("packed"))
        p.packed = j["packed"].asBool();
    u("cmdQueueDepth", p.cmdQueueDepth);
    u("uopQueueDepth", p.uopQueueDepth);
    u("dataQueueDepth", p.dataQueueDepth);
    u("laneUopQueueDepth", p.laneUopQueueDepth);
    u("vmiuQueueDepth", p.vmiuQueueDepth);
    u("loadQueueLines", p.loadQueueLines);
    u("storeQueueLines", p.storeQueueLines);
    u("storeCamEntries", p.storeCamEntries);
    u("coalesceWindow", p.coalesceWindow);
    u("switchPenalty", p.switchPenalty);
    const Json &fu = j["fu"];
    if (!fu.isNull()) {
        auto c = [&](const char *key, Cycles &field) {
            if (fu.has(key))
                field = fu[key].asU64();
        };
        c("intAlu", p.fu.intAlu);
        c("intMul", p.fu.intMul);
        c("intDiv", p.fu.intDiv);
        c("fpAdd", p.fu.fpAdd);
        c("fpMul", p.fu.fpMul);
        c("fpDiv", p.fu.fpDiv);
        c("mem", p.fu.mem);
        c("branch", p.fu.branch);
    }
    if (j.has("memPath")) {
        const std::string &m = j["memPath"].asString();
        if (m == "bankedL1")
            p.memPath = VEngineParams::MemPath::bankedL1;
        else if (m == "bigL1D")
            p.memPath = VEngineParams::MemPath::bigL1D;
        else if (m == "directL2")
            p.memPath = VEngineParams::MemPath::directL2;
        else
            fatal("run document: unknown memPath '%s'", m.c_str());
    }
    if (j.has("controlsL1Mode"))
        p.controlsL1Mode = j["controlsL1Mode"].asBool();
    if (j.has("headDispatch"))
        p.headDispatch = j["headDispatch"].asBool();
    return p;
}

Json
runOptionsToJson(const RunOptions &o)
{
    Json j = Json::object();
    j.set("bigGhz", o.bigGhz);
    j.set("littleGhz", o.littleGhz);
    j.set("limitNs", o.limitNs);
    j.set("verifyResult", o.verifyResult);
    j.set("watchdog", o.watchdog);
    j.set("watchdogIntervalNs", o.watchdogIntervalNs);
    j.set("wallDeadlineSec", o.wallDeadlineSec);
    if (o.engineOverride)
        j.set("engineOverride", vengineParamsToJson(*o.engineOverride));
    j.set("faults", faultSpecToJson(o.faults));
    j.set("check", checkOptionsToJson(o.check));
    j.set("trace", traceOptionsToJson(o.trace));
    j.set("sampling", samplingOptionsToJson(o.sampling));
    j.set("checkpoint", checkpointOptionsToJson(o.checkpoint));
    return j;
}

RunOptions
runOptionsFromJson(const Json &j)
{
    RunOptions o;
    if (j.isNull())
        return o;
    if (j.has("bigGhz"))
        o.bigGhz = j["bigGhz"].asDouble();
    if (j.has("littleGhz"))
        o.littleGhz = j["littleGhz"].asDouble();
    if (j.has("limitNs"))
        o.limitNs = j["limitNs"].asDouble();
    if (j.has("verifyResult"))
        o.verifyResult = j["verifyResult"].asBool();
    if (j.has("watchdog"))
        o.watchdog = j["watchdog"].asBool();
    if (j.has("watchdogIntervalNs"))
        o.watchdogIntervalNs = j["watchdogIntervalNs"].asDouble();
    if (j.has("wallDeadlineSec"))
        o.wallDeadlineSec = j["wallDeadlineSec"].asDouble();
    if (j.has("engineOverride") && !j["engineOverride"].isNull())
        o.engineOverride = vengineParamsFromJson(j["engineOverride"]);
    o.faults = faultSpecFromJson(j["faults"]);
    o.check = checkOptionsFromJson(j["check"]);
    if (j.has("trace"))
        o.trace = traceOptionsFromJson(j["trace"]);
    if (j.has("sampling"))
        o.sampling = samplingOptionsFromJson(j["sampling"]);
    if (j.has("checkpoint"))
        o.checkpoint = checkpointOptionsFromJson(j["checkpoint"]);
    return o;
}

Json
heartbeatsToJson(const std::vector<Watchdog::Heartbeat> &beats)
{
    Json arr = Json::array();
    for (const auto &hb : beats) {
        Json b = Json::object();
        b.set("name", hb.name);
        b.set("progress", hb.progress);
        b.set("lastAdvance", hb.lastAdvance);
        b.set("detail", hb.detail);
        arr.push(std::move(b));
    }
    return arr;
}

std::vector<Watchdog::Heartbeat>
heartbeatsFromJson(const Json &j)
{
    std::vector<Watchdog::Heartbeat> beats;
    for (const auto &b : j.items()) {
        Watchdog::Heartbeat hb;
        hb.name = b["name"].asString();
        hb.progress = b["progress"].asU64();
        hb.lastAdvance = b["lastAdvance"].asU64();
        hb.detail = b["detail"].asString();
        beats.push_back(std::move(hb));
    }
    return beats;
}

Json
divergenceToJson(const DivergenceRecord &d)
{
    Json dv = Json::object();
    dv.set("stream", d.stream);
    dv.set("seq", d.seq);
    dv.set("tick", d.tick);
    dv.set("instr", d.instr);
    dv.set("field", d.field);
    dv.set("timedValue", d.timedValue);
    dv.set("refValue", d.refValue);
    dv.set("chime", d.chime);
    dv.set("queueContext", d.queueContext);
    Json hist = Json::array();
    for (const auto &line : d.lastRetires)
        hist.push(line);
    dv.set("lastRetires", std::move(hist));
    return dv;
}

DivergenceRecord
divergenceFromJson(const Json &j)
{
    DivergenceRecord d;
    d.stream = j["stream"].asString();
    d.seq = j["seq"].asU64();
    d.tick = j["tick"].asU64();
    d.instr = j["instr"].asString();
    d.field = j["field"].asString();
    d.timedValue = j["timedValue"].asU64();
    d.refValue = j["refValue"].asU64();
    d.chime = static_cast<int>(j["chime"].asI64());
    d.queueContext = j["queueContext"].asString();
    for (const auto &line : j["lastRetires"].items())
        d.lastRetires.push_back(line.asString());
    return d;
}

Json
runResultToJson(const RunResult &r)
{
    Json j = Json::object();
    j.set("workload", r.workload);
    j.set("design", r.design);
    j.set("status", runStatusName(r.status));
    j.set("message", r.message);
    j.set("log", r.log);
    j.set("finished", r.finished);
    j.set("verified", r.verified);
    j.set("ns", r.ns);
    j.set("ifetchReqs", r.ifetchReqs);
    j.set("dataReqs", r.dataReqs);
    j.set("bigFetched", r.bigFetched);
    Json stats = Json::object();
    for (const auto &kv : r.stats)
        stats.set(kv.first, kv.second);
    j.set("stats", std::move(stats));
    if (!r.heartbeats.empty())
        j.set("heartbeats", heartbeatsToJson(r.heartbeats));
    if (r.divergence)
        j.set("divergence", divergenceToJson(*r.divergence));
    if (!r.invariantViolations.empty())
        j.set("invariantViolations", r.invariantViolations);
    return j;
}

RunResult
runResultFromJson(const Json &j)
{
    RunResult r;
    r.workload = j["workload"].asString();
    r.design = j["design"].asString();
    r.status = runStatusFromName(j["status"].asString());
    r.message = j["message"].asString();
    r.log = j["log"].asString();
    r.finished = j["finished"].asBool();
    r.verified = j["verified"].asBool();
    r.ns = j["ns"].asDouble();
    r.ifetchReqs = j["ifetchReqs"].asU64();
    r.dataReqs = j["dataReqs"].asU64();
    r.bigFetched = j["bigFetched"].asU64();
    for (const auto &kv : j["stats"].members())
        r.stats[kv.first] = kv.second.asU64();
    if (j.has("heartbeats"))
        r.heartbeats = heartbeatsFromJson(j["heartbeats"]);
    if (j.has("divergence") && !j["divergence"].isNull())
        r.divergence = divergenceFromJson(j["divergence"]);
    if (j.has("invariantViolations"))
        r.invariantViolations = j["invariantViolations"].asString();
    return r;
}

} // namespace bvl
