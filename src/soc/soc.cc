#include "soc/soc.hh"

#include "sim/logging.hh"
#include "vector/engine_presets.hh"

namespace bvl
{

const char *
designName(Design d)
{
    switch (d) {
      case Design::d1L: return "1L";
      case Design::d1b: return "1b";
      case Design::d1bIV: return "1bIV";
      case Design::d1b4L: return "1b-4L";
      case Design::d1bIV4L: return "1bIV-4L";
      case Design::d1bDV: return "1bDV";
      case Design::d1b4VL: return "1b-4VL";
    }
    return "?";
}

bool
designHasVector(Design d)
{
    return d == Design::d1bIV || d == Design::d1bIV4L ||
           d == Design::d1bDV || d == Design::d1b4VL;
}

bool
designUsesLittles(Design d)
{
    return d == Design::d1L || d == Design::d1b4L ||
           d == Design::d1bIV4L || d == Design::d1b4VL;
}

namespace
{

VEngineParams
defaultEngine(Design d)
{
    switch (d) {
      case Design::d1bIV:
      case Design::d1bIV4L:
        return integratedVuPreset();
      case Design::d1bDV:
        return decoupledVePreset();
      case Design::d1b4VL:
        return vlittlePreset();
      default:
        panic("design %s has no vector engine", designName(d));
    }
}

} // namespace

Soc::Soc(SocParams params)
    : bigClk(eq, "bigClk", params.bigFreqGhz),
      littleClk(eq, "littleClk", params.littleFreqGhz),
      uncoreClk(eq, "uncoreClk", params.uncoreFreqGhz),
      watchdog(eq),
      mem(uncoreClk, stats, params.memParams),
      p(std::move(params))
{
    if (p.faults.enabled) {
        injector = std::make_unique<FaultInjector>(p.faults, stats);
        mem.setFaultInjector(injector.get());
    }

    unsigned vlen = 64;
    if (designHasVector(p.design)) {
        VEngineParams ep = p.engineOverride ? *p.engineOverride
                                            : defaultEngine(p.design);
        ep.fu = p.littleParams.fu;
        // Engine lanes run on the little-core clock for the VLITTLE
        // engine, on the big-core clock for the integrated unit and
        // the decoupled engine (paper Section VII methodology).
        ClockDomain &engClk =
            p.design == Design::d1b4VL ? littleClk : bigClk;
        engine = std::make_unique<VlittleEngine>(engClk, stats, mem, ep);
        if (injector)
            engine->setFaultInjector(injector.get());
        vlen = engine->params().vlenBits();
    }

    big = std::make_unique<BigCore>(bigClk, stats, mem, backing, vlen,
                                    p.bigParams);
    if (engine)
        big->setVectorEngine(engine.get());

    for (unsigned i = 0; i < p.numLittle; ++i)
        littles.push_back(std::make_unique<LittleCore>(
            littleClk, stats, mem, backing, i, vlen, p.littleParams));

    // Heartbeats for deadlock diagnosis; inert until watchdog.arm().
    big->registerProgress(watchdog);
    for (auto &l : littles)
        l->registerProgress(watchdog);
    if (engine)
        engine->registerProgress(watchdog);
    mem.registerProgress(watchdog);

    // Structural invariants are registered unconditionally (a stored
    // closure per check, swept only when a CheckContext is armed).
    big->registerInvariants(invariants);
    for (auto &l : littles)
        l->registerInvariants(invariants);
    if (engine)
        engine->registerInvariants(invariants);
    mem.registerInvariants(invariants);

    if (p.trace.enabled()) {
        tracerPtr = std::make_unique<Tracer>(p.trace, eq, stats);
        big->setTracer(tracerPtr.get());
        for (auto &l : littles)
            l->setTracer(tracerPtr.get());
        if (engine)
            engine->setTracer(tracerPtr.get());
        mem.setTracer(tracerPtr.get());
        tracerPtr->startSampling();
    }

    if (p.check.enabled()) {
        checkCtx = std::make_unique<CheckContext>(p.check, stats,
                                                  invariants);
        big->setCheckContext(checkCtx.get());
        for (auto &l : littles)
            l->setCheckContext(checkCtx.get());
        if (engine)
            engine->setCheckContext(checkCtx.get());
        checkCtx->setContextProvider([this] {
            std::string out = "big: " + big->progressDetail();
            if (engine) {
                std::string rep = engine->inflightReport();
                if (!rep.empty())
                    out += "\nengine: " + rep;
            }
            return out;
        });
    }
}

bool
Soc::armLockstep(bool singleStream)
{
    if (!checkCtx || !p.check.lockstep)
        return false;
    if (!singleStream) {
        inform("lockstep checking requires a single program stream; "
               "degrading to structural invariants only");
        return false;
    }
    if (p.design == Design::d1L)
        return checkCtx->armLockstep(littles[0].get(), "little0",
                                     vlenBits(), 1, backing, false);
    unsigned chimes = engine ? engine->params().chimes : 1;
    return checkCtx->armLockstep(big.get(), "big", vlenBits(), chimes,
                                 backing, engine != nullptr);
}

Soc::Soc(Design design, double bigGhz, double littleGhz)
    : Soc([&] {
          SocParams sp;
          sp.design = design;
          sp.bigFreqGhz = bigGhz;
          sp.littleFreqGhz = littleGhz;
          return sp;
      }())
{}

bool
Soc::runUntil(const std::function<bool()> &done, Tick limit)
{
    return eq.runUntil(done, limit);
}

} // namespace bvl
