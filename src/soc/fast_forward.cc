#include "soc/fast_forward.hh"

#include "sim/logging.hh"
#include "soc/checkpoint.hh"
#include "soc/checkpoint_farm.hh"

namespace bvl
{

FastForwardResult
fastForward(Soc &soc, ArchState &arch, const Program &prog,
            std::uint64_t maxInsts, unsigned coreId,
            GsharePredictor *bpred, bool warm, WarmTrace *traceOut)
{
    FastForwardResult res;
    Addr lastFetchLine = ~Addr(0);
    while (res.executed < maxInsts) {
        if (arch.halted || arch.pc >= prog.size())
            break;

        if (warm) {
            // One I-side warm per fetched line, as the fetch buffer
            // would request it.
            Addr ia = prog.instAddr(arch.pc);
            if (lineOf(ia) != lastFetchLine) {
                lastFetchLine = lineOf(ia);
                soc.mem.warmFetch(coreId, ia);
                if (traceOut)
                    traceOut->add(WarmRecord::fetch, lineOf(ia), false);
            }
        }

        ExecTrace tr = stepOne(arch, prog, soc.backing);
        ++res.executed;

        if (bpred && tr.isBranch && tr.inst->op != Op::jump)
            bpred->update(tr.pc, tr.taken);

        if (warm) {
            if (!tr.elemAddrs.empty()) {
                // Vector element traffic reaches the shared L2 in
                // every engine configuration; per-line dedup matches
                // the VMU's line-granular requests. The banked L1D
                // image is mode-dependent and is left to the detailed
                // warmup window instead (DESIGN.md §15).
                Addr prevLine = ~Addr(0);
                for (Addr a : tr.elemAddrs) {
                    Addr ln = lineOf(a);
                    if (ln != prevLine) {
                        prevLine = ln;
                        soc.mem.warmL2(a, tr.isStore);
                        if (traceOut)
                            traceOut->add(WarmRecord::l2, ln,
                                          tr.isStore);
                    }
                }
            } else if (tr.isMem) {
                soc.mem.warmData(coreId, tr.addr, tr.isStore);
                if (traceOut)
                    traceOut->add(WarmRecord::data, lineOf(tr.addr),
                                  tr.isStore);
            }
        }

        if (tr.halted) {
            res.halted = true;
            break;
        }
    }
    return res;
}

FfRunOutcome
runFastForwarded(Soc &soc, Design design, Workload &workload,
                 const RunOptions &opts)
{
    const SamplingOptions &sam = opts.sampling;
    const CheckpointOptions &ckpt = opts.checkpoint;
    FfRunOutcome out;

    if (sam.enabled() && ckpt.enabled())
        fatal("sampling and checkpointing cannot be combined in one "
              "run");
    if (opts.check.lockstep)
        fatal("lockstep checking cannot be combined with fast-forward: "
              "the checker must observe every fetch");
    bool singleStream = workload.isDataParallel() &&
                        design != Design::d1b4L &&
                        design != Design::d1bIV4L;
    if (!singleStream)
        fatal("fast-forward requires a single program stream: a "
              "data-parallel workload on a design other than "
              "1b-4L/1bIV-4L (got %s on %s)",
              workload.name().c_str(), designName(design));

    bool useVector = designHasVector(design);
    ProgramPtr prog = useVector ? workload.vectorProgram()
                                : workload.scalarProgram();
    if (!prog)
        fatal("%s has no vector program", workload.name().c_str());

    bool onLittle = design == Design::d1L;
    ArchState &arch = onLittle ? soc.littles[0]->archState()
                               : soc.big->archState();
    unsigned coreId = onLittle ? 0u : soc.mem.bigCoreId();
    GsharePredictor *bp = onLittle ? nullptr : &soc.big->predictor();

    // Seed architectural state exactly as runProgram() would.
    arch.reset();
    for (const auto &[reg, value] : workload.fullRangeArgs()) {
        if (isFReg(reg))
            arch.setF(reg, value);
        else
            arch.setX(reg, value);
    }
    if (bp)
        bp->reset();

    Tick limit = static_cast<Tick>(opts.limitNs * ticksPerNs);
    std::uint64_t lastWindowFetched = 0;
    Tick lastWindowFetchTick = 0;
    Tick lastWindowMarkTick = 0;
    auto runWindowBlocking = [&](std::uint64_t maxFetch,
                                 std::uint64_t markFetch = 0) -> bool {
        bool done = false;
        if (onLittle)
            soc.littles[0]->runWindow(prog, maxFetch,
                                      [&] { done = true; }, markFetch);
        else
            soc.big->runWindow(prog, maxFetch, [&] { done = true; },
                               markFetch);
        bool fin = soc.runUntil([&] { return done; }, limit);
        lastWindowFetched = onLittle ? soc.littles[0]->windowFetched()
                                     : soc.big->windowFetched();
        lastWindowFetchTick =
            onLittle ? soc.littles[0]->windowLastFetchTick()
                     : soc.big->windowLastFetchTick();
        lastWindowMarkTick =
            onLittle ? soc.littles[0]->windowMarkTick()
                     : soc.big->windowMarkTick();
        if (!fin) {
            out.finished = false;
            out.queueDrained = soc.eq.empty();
        }
        return fin;
    };

    // --- checkpoint save / restore / farm / plain fast-forward ------

    if (ckpt.enabled()) {
        if (ckpt.farm &&
            (!ckpt.savePath.empty() || !ckpt.restorePath.empty()))
            fatal("the checkpoint farm manages its own entry paths; "
                  "farm mode cannot be combined with an explicit "
                  "save/restore path");
        if (ckpt.farm && ckpt.ffInsts == 0)
            fatal("farm mode needs ffInsts > 0: the prefix length is "
                  "part of the farm entry's identity");
        if (ckpt.strict && ckpt.restorePath.empty())
            fatal("strict mode only constrains --restore; nothing to "
                  "be strict about without a restore path");
        if (ckpt.strict && ckpt.ffInsts > 0)
            fatal("strict restore never re-simulates; drop ffInsts "
                  "(or drop strict to allow the fast-forward "
                  "fallback)");

        // Run the fast-forward prefix functionally, optionally
        // recording the warm stream; fatal()s if the program halts
        // inside the prefix (a checkpoint there would be useless).
        auto producePrefix = [&](WarmTrace *trace) {
            auto ff = fastForward(soc, arch, *prog, ckpt.ffInsts,
                                  coreId, bp, true, trace);
            if (ff.halted)
                fatal("workload halted after %llu instructions during "
                      "fast-forward; reduce ffInsts",
                      static_cast<unsigned long long>(ff.executed));
        };

        if (!ckpt.restorePath.empty()) {
            // Digest the initial inputs before fast-forward (or the
            // checkpoint itself) mutates memory.
            std::string inputSha = checkpointInputSha256(soc, workload);
            std::string err;
            CheckpointStatus st =
                loadCheckpoint(ckpt.restorePath, soc, workload.name(),
                               inputSha, &err);
            if (ckpt.strict && st != CheckpointStatus::ok)
                fatal("strict restore of %s failed (%s): %s",
                      ckpt.restorePath.c_str(),
                      checkpointStatusName(st), err.c_str());
            if (st == CheckpointStatus::mismatch)
                fatal("checkpoint %s does not match this run: %s",
                      ckpt.restorePath.c_str(), err.c_str());
            if (st != CheckpointStatus::ok) {
                // Never trust a bad checkpoint: quarantine it and
                // re-simulate the fast-forward region from scratch,
                // which reproduces the same state by construction.
                if (st == CheckpointStatus::corrupt) {
                    quarantineCheckpoint(ckpt.restorePath);
                    warn("checkpoint %s is corrupt (%s); quarantined "
                         "as %s.corrupt and re-simulating",
                         ckpt.restorePath.c_str(), err.c_str(),
                         ckpt.restorePath.c_str());
                } else {
                    warn("checkpoint %s is missing; re-simulating",
                         ckpt.restorePath.c_str());
                }
                if (ckpt.ffInsts == 0)
                    fatal("cannot re-simulate in place of checkpoint "
                          "%s: checkpoint ffInsts is 0",
                          ckpt.restorePath.c_str());
                producePrefix(nullptr);
            }
        } else if (ckpt.farm) {
            std::string inputSha = checkpointInputSha256(soc, workload);
            CheckpointFarm farm(ckpt.farmDir.empty()
                                    ? CheckpointFarm::defaultDir()
                                    : ckpt.farmDir);
            // Reclaim publish temps orphaned by a dead producer (the
            // first cell per dir pays this; a crash mid-publish must
            // not leak disk forever).
            farm.sweepStaleOnce();
            std::string hash = CheckpointFarm::prefixHashHex(
                workload.name(), ckpt.ffInsts, checkpointFlavor(soc),
                soc.vlenBits(), inputSha);
            std::string entry = farm.entryPath(hash);

            // Optimistic fast path: a published entry restores with
            // no lock traffic at all.
            auto tryRestore = [&]() -> bool {
                std::string err;
                CheckpointStatus st = loadCheckpoint(
                    entry, soc, workload.name(), inputSha, &err);
                if (st == CheckpointStatus::ok) {
                    CheckpointFarm::touch(entry);
                    CheckpointFarm::noteHit();
                    inform("checkpoint farm: restored prefix %s from "
                           "%s", hash.substr(0, 12).c_str(),
                           entry.c_str());
                    return true;
                }
                if (st == CheckpointStatus::mismatch)
                    // The key covers everything the file identifies
                    // itself by, so this cannot happen short of a
                    // hash collision or a mis-filed entry.
                    fatal("farm entry %s exists but describes a "
                          "different prefix: %s", entry.c_str(),
                          err.c_str());
                if (st == CheckpointStatus::corrupt) {
                    quarantineCheckpoint(entry);
                    CheckpointFarm::noteCorrupt();
                    warn("farm entry %s is corrupt (%s); quarantined "
                         "and re-producing", entry.c_str(),
                         err.c_str());
                }
                return false;
            };

            if (CheckpointFarm::storesDisabled()) {
                // A previous publish failed: don't contend on claims
                // or retry the bad disk per cell, just fast-forward
                // privately (restores above still work).
                producePrefix(nullptr);
            } else if (!tryRestore()) {
                // Single-flight: first claimant produces, everyone
                // else blocks here and restores what it published.
                CheckpointFarm::Claim claim(entry);
                if (!claim.held() || !tryRestore()) {
                    WarmTrace trace;
                    producePrefix(&trace);
                    std::string err;
                    if (!saveCheckpoint(entry, soc, workload.name(),
                                        ckpt.ffInsts, trace, inputSha,
                                        &err)) {
                        // The prefix state is already produced in
                        // this SoC — the run is unharmed. The farm
                        // just stops accelerating other cells.
                        CheckpointFarm::disableStores();
                        warn("cannot publish farm entry %s (%s); farm "
                             "stores DISABLED — cells fast-forward "
                             "privately from here on", entry.c_str(),
                             err.c_str());
                    } else {
                        CheckpointFarm::noteProduced();
                        inform("checkpoint farm: produced prefix %s "
                               "at %s (%llu warm records)",
                               hash.substr(0, 12).c_str(),
                               entry.c_str(),
                               static_cast<unsigned long long>(
                                   trace.records()));
                        farm.evictOverBudget(
                            CheckpointFarm::budgetBytesFromEnv(),
                            entry);
                    }
                }
            }
        } else if (!ckpt.savePath.empty()) {
            std::string inputSha = checkpointInputSha256(soc, workload);
            WarmTrace trace;
            producePrefix(&trace);
            std::string err;
            if (!saveCheckpoint(ckpt.savePath, soc, workload.name(),
                                ckpt.ffInsts, trace, inputSha, &err))
                fatal("cannot write checkpoint %s: %s",
                      ckpt.savePath.c_str(), err.c_str());
            inform("checkpoint written to %s after %llu instructions",
                   ckpt.savePath.c_str(),
                   static_cast<unsigned long long>(ckpt.ffInsts));
        } else {
            // Plain fast-forward: the cold per-cell baseline a farm
            // amortizes away. No file is read or written.
            producePrefix(nullptr);
        }
        out.finished = runWindowBlocking(0);
        return out;
    }

    // --- SMARTS-style sampling --------------------------------------

    std::uint64_t totalInsts = 0;
    std::uint64_t measuredInsts = 0;
    Tick measuredTicks = 0;
    unsigned periodsMeasured = 0;
    bool halted = false;

    for (unsigned per = 0; per < sam.periods && !halted; ++per) {
        if (sam.ffInsts > 0) {
            auto ff = fastForward(soc, arch, *prog, sam.ffInsts,
                                  coreId, bp, true);
            totalInsts += ff.executed;
            if (ff.halted) {
                halted = true;
                break;
            }
        }
        // Warmup and measurement share ONE detailed window, with the
        // measurement marked at the warmup boundary. A window starts
        // from a drained pipeline, so its first instructions pay
        // fill, the mode switch, and fetch sprinting ahead of retire
        // until the ROB is full; by the markFetch'th fetch the
        // front end is retire-coupled, and the fetch-to-fetch span
        // [mark, last] measures steady-state throughput. The
        // end-of-window drain — simulated only to leave consistent
        // state for the next functional region — is excluded the
        // same way, unless the program really halted in-window (that
        // drain is the program's actual tail and is kept).
        Tick t0 = soc.eq.now();
        if (!runWindowBlocking(sam.warmupInsts + sam.detailInsts,
                               sam.warmupInsts))
            return out;
        totalInsts += lastWindowFetched;
        halted = arch.halted;
        Tick tMark = sam.warmupInsts == 0 ? t0 : lastWindowMarkTick;
        if (lastWindowFetched > sam.warmupInsts &&
            (sam.warmupInsts == 0 || tMark != 0)) {
            measuredInsts += lastWindowFetched - sam.warmupInsts;
            Tick tEnd = halted ? soc.eq.now() : lastWindowFetchTick;
            measuredTicks += tEnd - tMark;
            ++periodsMeasured;
        }
    }

    if (!halted) {
        // Final functional region: completes the workload so result
        // verification still applies, but warms nothing (nothing runs
        // after it). Capped like runFunctional() as a runaway guard.
        auto ff = fastForward(soc, arch, *prog, 1ull << 32, coreId, bp,
                              false);
        totalInsts += ff.executed;
        if (!ff.halted)
            fatal("sampled run exceeded %llu instructions without "
                  "halting",
                  static_cast<unsigned long long>(1ull << 32));
    }
    out.finished = true;

    if (measuredInsts > 0) {
        out.estimatedNs = (double(measuredTicks) / ticksPerNs) *
                          (double(totalInsts) / double(measuredInsts));
    } else {
        warn("sampled run measured no detailed window; reporting "
             "detailed-simulated time only");
    }
    out.extraStats["sample.periodsMeasured"] = periodsMeasured;
    out.extraStats["sample.totalInsts"] = totalInsts;
    out.extraStats["sample.measuredInsts"] = measuredInsts;
    out.extraStats["sample.measuredTicks"] = measuredTicks;
    return out;
}

} // namespace bvl
