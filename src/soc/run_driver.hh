/**
 * @file
 * Run driver: executes one workload on one design and collects the
 * statistics the paper's figures are built from.
 *
 * Execution-mode table (paper Section IV):
 *
 *   data-parallel workloads
 *     1L          scalar whole-problem program on one little core
 *     1b          scalar program on the big core
 *     1bIV        vectorized program on the big core (VLEN 128)
 *     1b-4L       work-stealing task graph, big + 4 little, all scalar
 *     1bIV-4L     task graph; big runs vectorized chunks, littles scalar
 *     1bDV        vectorized program, decoupled engine (VLEN 2048)
 *     1b-4VL      vectorized program, VLITTLE engine (VLEN 512),
 *                 500-cycle mode switch, littles ganged as lanes
 *
 *   task-parallel workloads (Ligra)
 *     1L          task graph with one little worker
 *     1b/1bIV/1bDV task graph with the big core only (the decoupled
 *                 engine cannot help irregular scalar tasks)
 *     1b-4L/1bIV-4L/1b-4VL task graph on big + 4 little workers
 */

#ifndef BVL_SOC_RUN_DRIVER_HH
#define BVL_SOC_RUN_DRIVER_HH

#include <map>
#include <optional>
#include <string>

#include "runtime/ws_runtime.hh"
#include "soc/soc.hh"
#include "workloads/workload.hh"

namespace bvl
{

/**
 * SMARTS-style sampled simulation: interleave functional fast-forward
 * with detailed timing windows (DESIGN.md §15). Each of the
 * @p periods samples fast-forwards @p ffInsts instructions purely
 * functionally (warming caches, directory and branch predictor), runs
 * @p warmupInsts in unmeasured detail to warm pipeline/MSHR/engine
 * state, then measures @p detailInsts in full detail. Total runtime
 * is extrapolated from the measured windows; the final architectural
 * and memory state is exact (functional execution is the same oracle
 * the timing model fetches through), so result verification still
 * applies. Only single-stream runs (data-parallel workloads on
 * designs other than 1b-4L/1bIV-4L) can be sampled.
 */
struct SamplingOptions
{
    std::uint64_t ffInsts = 0;      ///< functionally-skipped insts/period
    std::uint64_t warmupInsts = 0;  ///< unmeasured detailed warmup insts
    std::uint64_t detailInsts = 0;  ///< measured detailed insts/period
    unsigned periods = 0;           ///< sample count; 0 disables

    bool enabled() const { return periods > 0 && detailInsts > 0; }
};

/**
 * Checkpoint save/restore (DESIGN.md §15). Saving fast-forwards
 * @p ffInsts instructions functionally, snapshots architectural +
 * warm microarchitectural state to @p savePath, then continues in
 * detail; restoring resumes detailed timing from @p restorePath. A
 * missing or corrupt checkpoint is quarantined (renamed *.corrupt)
 * and re-simulated from scratch via @p ffInsts — never silently
 * trusted — which yields byte-identical results by construction.
 *
 * Three further shapes (DESIGN.md §16):
 *  - plain fast-forward: @p ffInsts alone (no paths) skips the prefix
 *    functionally every run — the cold baseline a sweep pays per cell.
 *  - farm mode: @p farm resolves the run's prefix hash in the
 *    content-addressed checkpoint farm at @p farmDir (or
 *    CheckpointFarm::defaultDir()); the first cell to miss produces
 *    the entry once (single-flight), everyone else restores it.
 *  - strict restore: @p strict turns the restore fallback into a
 *    reported failure — a missing/corrupt/mismatched @p restorePath
 *    is fatal instead of silently re-simulated.
 */
struct CheckpointOptions
{
    std::string savePath;       ///< write a checkpoint here ("" = off)
    std::string restorePath;    ///< resume from this file ("" = off)
    std::uint64_t ffInsts = 0;  ///< insts to fast-forward before saving
    bool farm = false;          ///< share the prefix via the farm
    std::string farmDir;        ///< farm directory ("" = env/default)
    bool strict = false;        ///< restore must succeed; never re-ff

    bool enabled() const
    {
        return !savePath.empty() || !restorePath.empty() || farm ||
               ffInsts > 0;
    }
};

struct RunOptions
{
    double bigGhz = 1.0;
    double littleGhz = 1.0;
    /** Engine parameter override (Figure 7/8 ablations). */
    std::optional<VEngineParams> engineOverride;
    /** Simulated-time limit in nanoseconds. */
    double limitNs = 1e9;
    /** Skip result verification (pure performance sweeps). */
    bool verifyResult = true;
    /** Arm the progress watchdog for this run. */
    bool watchdog = true;
    /** No-progress window before the watchdog declares deadlock. */
    double watchdogIntervalNs = 100000.0;
    /**
     * Wall-clock (host-time) budget for the run in seconds; 0 disables.
     * Enforced at watchdog check events (the watchdog is armed when a
     * deadline is set, even with watchdog == false); an expired budget
     * ends the run with RunStatus::deadline. Host-time-dependent, so
     * it is excluded from the sweep service's job identity hash.
     */
    double wallDeadlineSec = 0.0;
    /** Deterministic fault-injection plan (disabled by default). */
    FaultSpec faults{};
    /**
     * Online checking: lockstep co-simulation against the functional
     * model and/or structural invariant sweeps, plus the forensics
     * report path. Disarmed by default (zero hot-path cost).
     */
    CheckOptions check{};
    /**
     * Event tracing and interval stat sampling. Disarmed by default;
     * arming writes a Chrome-trace/Perfetto JSON (TraceOptions::path)
     * and/or a stat time series (TraceOptions::samplePath).
     */
    TraceOptions trace{};
    /** Sampled (fast-forward interleaved) simulation; off by default. */
    SamplingOptions sampling{};
    /** Checkpoint save/restore; off by default. */
    CheckpointOptions checkpoint{};
};

/** How a run ended; anything but ok is a recoverable failure. */
enum class RunStatus
{
    ok,             ///< workload completed (and verified, if asked)
    time_limit,     ///< RunOptions::limitNs expired mid-run
    deadlock,       ///< watchdog fired or the event queue drained dry
    verify_failed,  ///< completed but produced a wrong result
    sim_error,      ///< a model invariant tripped (panic/fatal)
    check_failed,   ///< online checker caught a divergence/violation
    deadline,       ///< RunOptions::wallDeadlineSec host-time budget hit
    worker_lost,    ///< isolated sweep worker died (signal/short read)
};

/**
 * Number of RunStatus values. Keep in sync when adding a status: the
 * exhaustive round-trip test iterates [0, numRunStatuses) and also
 * asserts that the value *past* the end is unnamed, so forgetting to
 * bump this (or to extend runStatusName) fails loudly.
 */
constexpr unsigned numRunStatuses =
    static_cast<unsigned>(RunStatus::worker_lost) + 1;

const char *runStatusName(RunStatus s);
/** Inverse of runStatusName(); throws SimFatalError on unknown names. */
RunStatus runStatusFromName(const std::string &name);

struct RunResult
{
    std::string workload;
    std::string design;
    RunStatus status = RunStatus::sim_error;
    /** Diagnostic for any non-ok status (watchdog report, panic text). */
    std::string message;
    /**
     * Everything warn()/inform()/panic()/fatal() printed during this
     * run, captured per-run (LogCapture) so concurrent sweep jobs
     * never interleave diagnostics on stderr.
     */
    std::string log;
    bool finished = false;
    bool verified = false;
    double ns = 0.0;

    bool ok() const { return status == RunStatus::ok; }

    /** Key series used by the figures. */
    std::uint64_t ifetchReqs = 0;   ///< Figure 5
    std::uint64_t dataReqs = 0;     ///< Figure 6
    std::uint64_t bigFetched = 0;

    /** Full stat snapshot for detailed analyses. */
    std::map<std::string, std::uint64_t> stats;

    // --- forensics capture (populated on any non-ok status) ----------

    /** Final per-component heartbeat table (watchdog snapshot). */
    std::vector<Watchdog::Heartbeat> heartbeats;
    /** First lockstep divergence, when the checker caught one. */
    std::optional<DivergenceRecord> divergence;
    /** Structural-invariant violations at end of run ("" = none). */
    std::string invariantViolations;

    std::uint64_t stat(const std::string &name) const
    {
        auto it = stats.find(name);
        return it == stats.end() ? 0 : it->second;
    }
};

/** Run @p workload on @p design and return the measurements. */
RunResult runWorkload(Design design, Workload &workload,
                      const RunOptions &opts = {});

/** Convenience: build the named workload and run it. */
RunResult runWorkload(Design design, const std::string &name,
                      Scale scale, const RunOptions &opts = {});

} // namespace bvl

#endif // BVL_SOC_RUN_DRIVER_HH
