#include "soc/checkpoint_farm.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "sim/env.hh"
#include "sweep/service/digest.hh"
#include "sweep/service/job_hash.hh"

namespace bvl
{

namespace
{

// Process-wide so the sweep summary can report farm effectiveness
// without threading a farm object through every cell. Thread-mode
// workers share these; isolate-mode children lose theirs at exit (the
// inform() lines in each cell's log still tell the story).
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_produced{0};
std::atomic<std::uint64_t> g_corrupt{0};
std::atomic<std::uint64_t> g_evicted{0};

} // namespace

std::string
CheckpointFarm::defaultDir()
{
    const char *env = std::getenv("BVL_CKPT_DIR");
    return env && *env ? env : ".bvl-ckpt";
}

std::uint64_t
CheckpointFarm::budgetBytesFromEnv()
{
    return std::uint64_t(envInt("BVL_CKPT_BUDGET_MB", 0, 0,
                                1ll << 30)) *
           (1ull << 20);
}

std::string
CheckpointFarm::prefixHashHex(const std::string &workloadName,
                              std::uint64_t ffInsts,
                              const std::string &flavor,
                              std::uint64_t vlenBits,
                              const std::string &inputSha)
{
    Sha256 d;
    auto feed = [&](const std::string &s) {
        d.update(s.data(), s.size());
        d.update("\0", 1);
    };
    feed(workloadName);
    feed(std::to_string(ffInsts));
    feed(flavor);
    feed(std::to_string(vlenBits));
    feed(inputSha);
    feed(kLibraryRevision);
    return d.hex();
}

CheckpointFarm::CheckpointFarm(std::string dir) : _dir(std::move(dir))
{
}

std::string
CheckpointFarm::entryPath(const std::string &hash) const
{
    return _dir + "/" + hash.substr(0, 2) + "/" + hash + ".bvl";
}

CheckpointFarm::Claim::Claim(const std::string &entryPath)
{
    std::error_code ec;
    auto parent = std::filesystem::path(entryPath).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);
    std::string lock = entryPath + ".lock";
    // Each Claim opens its own file description, so LOCK_EX contends
    // between threads of one process as well as between processes.
    fd = ::open(lock.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0)
        return;
    while (::flock(fd, LOCK_EX) != 0) {
        if (errno != EINTR) {
            ::close(fd);
            fd = -1;
            return;
        }
    }
}

CheckpointFarm::Claim::~Claim()
{
    if (fd >= 0) {
        ::flock(fd, LOCK_UN);
        ::close(fd);
    }
}

void
CheckpointFarm::touch(const std::string &entryPath)
{
    std::error_code ec;
    std::filesystem::last_write_time(
        entryPath, std::filesystem::file_time_type::clock::now(), ec);
}

unsigned
CheckpointFarm::evictOverBudget(std::uint64_t budgetBytes,
                                const std::string &keepPath) const
{
    if (budgetBytes == 0)
        return 0;

    namespace fs = std::filesystem;
    struct Entry
    {
        fs::path path;
        fs::file_time_type mtime;
        std::uint64_t bytes;
    };
    std::error_code ec;
    fs::path keep = fs::weakly_canonical(keepPath, ec);

    std::vector<Entry> entries;
    std::uint64_t total = 0;
    for (auto it = fs::recursive_directory_iterator(
             _dir, fs::directory_options::skip_permission_denied, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file(ec) || it->path().extension() != ".bvl")
            continue;
        Entry e;
        e.path = it->path();
        e.mtime = fs::last_write_time(e.path, ec);
        e.bytes = it->file_size(ec);
        entries.push_back(std::move(e));
        total += entries.back().bytes;
    }
    if (total <= budgetBytes)
        return 0;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });

    unsigned removed = 0;
    for (const Entry &e : entries) {
        if (total <= budgetBytes)
            break;
        if (fs::weakly_canonical(e.path, ec) == keep)
            continue;
        if (fs::remove(e.path, ec) && !ec) {
            total -= e.bytes;
            ++removed;
        }
    }
    if (removed)
        noteEvicted(removed);
    return removed;
}

void CheckpointFarm::noteHit() { ++g_hits; }
void CheckpointFarm::noteProduced() { ++g_produced; }
void CheckpointFarm::noteCorrupt() { ++g_corrupt; }

void
CheckpointFarm::noteEvicted(unsigned n)
{
    g_evicted += n;
}

std::uint64_t CheckpointFarm::hits() { return g_hits; }
std::uint64_t CheckpointFarm::produced() { return g_produced; }
std::uint64_t CheckpointFarm::corrupt() { return g_corrupt; }
std::uint64_t CheckpointFarm::evicted() { return g_evicted; }

} // namespace bvl
