#include "soc/checkpoint_farm.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <set>
#include <vector>

#include "sim/env.hh"
#include "sim/io/sim_io.hh"
#include "sim/logging.hh"
#include "sweep/service/digest.hh"
#include "sweep/service/job_hash.hh"

namespace bvl
{

namespace
{

// Process-wide so the sweep summary can report farm effectiveness
// without threading a farm object through every cell. Thread-mode
// workers share these; isolate-mode children lose theirs at exit (the
// inform() lines in each cell's log still tell the story).
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_produced{0};
std::atomic<std::uint64_t> g_corrupt{0};
std::atomic<std::uint64_t> g_evicted{0};

// Sticky "stop writing to the farm" switch: one failed publish very
// likely means they all fail (disk full, directory gone), and the
// farm is a pure accelerator — cells just fast-forward privately.
std::atomic<bool> g_storesDisabled{false};

// Farm dirs already swept for stale temps this process: the sweep is
// a startup chore per directory, not a per-cell one.
std::mutex g_sweptMu;
std::set<std::string> g_sweptDirs;

} // namespace

std::string
CheckpointFarm::defaultDir()
{
    const char *env = std::getenv("BVL_CKPT_DIR");
    return env && *env ? env : ".bvl-ckpt";
}

std::uint64_t
CheckpointFarm::budgetBytesFromEnv()
{
    return std::uint64_t(envInt("BVL_CKPT_BUDGET_MB", 0, 0,
                                1ll << 30)) *
           (1ull << 20);
}

std::string
CheckpointFarm::prefixHashHex(const std::string &workloadName,
                              std::uint64_t ffInsts,
                              const std::string &flavor,
                              std::uint64_t vlenBits,
                              const std::string &inputSha)
{
    Sha256 d;
    auto feed = [&](const std::string &s) {
        d.update(s.data(), s.size());
        d.update("\0", 1);
    };
    feed(workloadName);
    feed(std::to_string(ffInsts));
    feed(flavor);
    feed(std::to_string(vlenBits));
    feed(inputSha);
    feed(kLibraryRevision);
    return d.hex();
}

CheckpointFarm::CheckpointFarm(std::string dir) : _dir(std::move(dir))
{
}

std::string
CheckpointFarm::entryPath(const std::string &hash) const
{
    return _dir + "/" + hash.substr(0, 2) + "/" + hash + ".bvl";
}

CheckpointFarm::Claim::Claim(const std::string &entryPath,
                             long long timeoutMs)
{
    auto parent = std::filesystem::path(entryPath).parent_path();
    if (!parent.empty())
        io::mkdirs("ckpt_farm.claim.mkdir", parent.string());
    std::string lock = entryPath + ".lock";
    // Each Claim opens its own file description, so LOCK_EX contends
    // between threads of one process as well as between processes.
    // The wait is bounded (BVL_CKPT_LOCK_TIMEOUT_MS): the kernel
    // drops the flock when a holder *dies*, so a timeout means a
    // live-but-wedged holder — waiting forever behind it would wedge
    // this cell too, when producing privately is always available.
    if (timeoutMs < 0)
        timeoutMs = envInt("BVL_CKPT_LOCK_TIMEOUT_MS", 60000, 1,
                           24ll * 3600 * 1000);
    std::string diag;
    fd = io::lockExclusive("ckpt_farm.lock", lock, timeoutMs, &diag);
    if (fd < 0) {
        warn("checkpoint farm: %s; producing without single-flight",
             diag.c_str());
    } else {
        // Anything "<entry>.tmp.*" under a held claim is an orphan of
        // a dead or failed producer — the claim serializes writers.
        // If this throws (injected crash) the destructor will never
        // run, so the flock must be released here or a later claimant
        // in this process would wait out the whole deadline on it.
        try {
            io::sweepTempsFor("ckpt_farm.claim.sweep", entryPath);
        } catch (...) {
            io::unlockAndClose(fd);
            fd = -1;
            throw;
        }
    }
}

CheckpointFarm::Claim::~Claim()
{
    io::unlockAndClose(fd);
}

void
CheckpointFarm::touch(const std::string &entryPath)
{
    std::error_code ec;
    std::filesystem::last_write_time(
        entryPath, std::filesystem::file_time_type::clock::now(), ec);
}

unsigned
CheckpointFarm::evictOverBudget(std::uint64_t budgetBytes,
                                const std::string &keepPath) const
{
    if (budgetBytes == 0)
        return 0;

    namespace fs = std::filesystem;
    struct Entry
    {
        fs::path path;
        fs::file_time_type mtime;
        std::uint64_t bytes;
    };
    std::error_code ec;
    fs::path keep = fs::weakly_canonical(keepPath, ec);

    std::vector<Entry> entries;
    std::uint64_t total = 0;
    for (auto it = fs::recursive_directory_iterator(
             _dir, fs::directory_options::skip_permission_denied, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file(ec) || it->path().extension() != ".bvl")
            continue;
        Entry e;
        e.path = it->path();
        e.mtime = fs::last_write_time(e.path, ec);
        e.bytes = it->file_size(ec);
        entries.push_back(std::move(e));
        total += entries.back().bytes;
    }
    if (total <= budgetBytes)
        return 0;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime < b.mtime;
              });

    unsigned removed = 0;
    for (const Entry &e : entries) {
        if (total <= budgetBytes)
            break;
        if (fs::weakly_canonical(e.path, ec) == keep)
            continue;
        if (fs::remove(e.path, ec) && !ec) {
            total -= e.bytes;
            ++removed;
        }
    }
    if (removed)
        noteEvicted(removed);
    return removed;
}

void CheckpointFarm::noteHit() { ++g_hits; }
void CheckpointFarm::noteProduced() { ++g_produced; }
void CheckpointFarm::noteCorrupt() { ++g_corrupt; }

void
CheckpointFarm::noteEvicted(unsigned n)
{
    g_evicted += n;
}

std::uint64_t CheckpointFarm::hits() { return g_hits; }
std::uint64_t CheckpointFarm::produced() { return g_produced; }
std::uint64_t CheckpointFarm::corrupt() { return g_corrupt; }
std::uint64_t CheckpointFarm::evicted() { return g_evicted; }

void CheckpointFarm::disableStores() { g_storesDisabled = true; }
bool CheckpointFarm::storesDisabled() { return g_storesDisabled; }

void
CheckpointFarm::resetForTest()
{
    g_hits = 0;
    g_produced = 0;
    g_corrupt = 0;
    g_evicted = 0;
    g_storesDisabled = false;
    std::lock_guard<std::mutex> lock(g_sweptMu);
    g_sweptDirs.clear();
}

unsigned
CheckpointFarm::sweepStale() const
{
    return io::sweepStaleTemps("ckpt_farm.sweep", _dir,
                               /*selfStale=*/true);
}

unsigned
CheckpointFarm::sweepStaleOnce() const
{
    {
        std::lock_guard<std::mutex> lock(g_sweptMu);
        if (!g_sweptDirs.insert(_dir).second)
            return 0;
    }
    return sweepStale();
}

} // namespace bvl
