/**
 * @file
 * Assembly of one simulated SoC: clock domains, shared backing store,
 * memory hierarchy, one big core, four little cores and (per design)
 * a vector engine — the seven systems of the paper's Table III.
 */

#ifndef BVL_SOC_SOC_HH
#define BVL_SOC_SOC_HH

#include <memory>
#include <string>
#include <vector>

#include "core/vlittle_engine.hh"
#include "cpu/big_core.hh"
#include "cpu/little_core.hh"
#include "mem/mem_system.hh"
#include "sim/check/check_context.hh"
#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/stats.hh"
#include "sim/trace/tracer.hh"
#include "sim/watchdog.hh"

namespace bvl
{

/** The evaluated systems (paper Table III). */
enum class Design
{
    d1L,       ///< one little core
    d1b,       ///< one big core
    d1bIV,     ///< big core + integrated 128-bit vector unit
    d1b4L,     ///< big + 4 little, no vector support
    d1bIV4L,   ///< big with integrated VU + 4 little
    d1bDV,     ///< big + decoupled 2048-bit vector engine
    d1b4VL,    ///< big.VLITTLE: big + VLITTLE engine of 4 little cores
};

const char *designName(Design d);

/** Does the design include an engine, and which lanes does it use? */
bool designHasVector(Design d);
bool designUsesLittles(Design d);

struct SocParams
{
    Design design = Design::d1b4VL;
    double bigFreqGhz = 1.0;
    double littleFreqGhz = 1.0;
    double uncoreFreqGhz = 1.0;
    unsigned numLittle = 4;
    MemSystemParams memParams{};
    BigCoreParams bigParams{};
    LittleCoreParams littleParams{};
    /** Engine parameter override (empty = design default preset). */
    std::unique_ptr<VEngineParams> engineOverride;
    /** Deterministic fault-injection plan (disabled by default). */
    FaultSpec faults{};
    /** Online checking (lockstep + invariants); disarmed by default. */
    CheckOptions check{};
    /** Event tracing / stat sampling; disarmed by default. */
    TraceOptions trace{};
};

class Soc
{
  public:
    explicit Soc(SocParams params);
    Soc(Design design, double bigGhz = 1.0, double littleGhz = 1.0);

    Design design() const { return p.design; }

    /** Hardware vector length of this design's engine (0 if none). */
    unsigned vlenBits() const
    { return engine ? engine->params().vlenBits() : 64; }

    /** Run the event queue until @p done or no events remain. */
    bool runUntil(const std::function<bool()> &done,
                  Tick limit = maxTick);

    /** Elapsed simulated nanoseconds. */
    double elapsedNs() const
    { return static_cast<double>(eq.now()) / ticksPerNs; }

    /** The run's fault injector (null when injection is disabled). */
    FaultInjector *faultInjector() { return injector.get(); }

    /** The run's check context (null when checking is disarmed). */
    CheckContext *checker() { return checkCtx.get(); }

    /** The run's tracer (null when tracing is disarmed). */
    Tracer *tracer() { return tracerPtr.get(); }

    /** Registered structural invariants (always populated). */
    InvariantRegistry &invariantRegistry() { return invariants; }

    /**
     * Arm the lockstep checker on this run's single program stream
     * (the big core, or the little core of the 1L design). Lockstep
     * is exact only for single-stream runs: @p singleStream is false
     * for task-parallel shapes, in which case the checker degrades to
     * structural invariants only and this returns false. Also returns
     * false when checking is disabled or lockstep was not requested.
     */
    bool armLockstep(bool singleStream);

    EventQueue eq;
    ClockDomain bigClk;
    ClockDomain littleClk;
    ClockDomain uncoreClk;
    StatGroup stats;
    /** Progress watchdog; every component's heartbeat is registered
     *  at construction, but nothing fires until arm() is called. */
    Watchdog watchdog;
    BackingStore backing;
    MemSystem mem;

    std::unique_ptr<BigCore> big;
    std::vector<std::unique_ptr<LittleCore>> littles;
    std::unique_ptr<VlittleEngine> engine;

  private:
    std::unique_ptr<FaultInjector> injector;
    /** Declared after the components its callbacks capture. */
    InvariantRegistry invariants;
    std::unique_ptr<CheckContext> checkCtx;
    std::unique_ptr<Tracer> tracerPtr;
    SocParams p;
};

} // namespace bvl

#endif // BVL_SOC_SOC_HH
