/**
 * @file
 * Fast-forward engine (DESIGN.md §15): execute program regions purely
 * functionally — the same stepOne() oracle the timing cores fetch
 * through — while warming the caches, L2 directory and branch
 * predictor, then resume detailed timing via the cores' runWindow().
 *
 * Two run shapes build on this:
 *
 *  - checkpointing: fast-forward N instructions, snapshot the SoC
 *    (soc/checkpoint.hh) and continue in detail; a later run restores
 *    the snapshot and produces byte-identical results.
 *  - SMARTS-style sampling: per period, fast-forward -> unmeasured
 *    detailed warmup -> measured detailed window; total runtime is
 *    extrapolated from the measured windows and the run finishes with
 *    a final functional region so result verification still applies.
 *
 * Only single-stream runs can be fast-forwarded: data-parallel
 * workloads on designs other than 1b-4L/1bIV-4L, where exactly one
 * core fetches one program.
 */

#ifndef BVL_SOC_FAST_FORWARD_HH
#define BVL_SOC_FAST_FORWARD_HH

#include <map>
#include <optional>

#include "soc/run_driver.hh"
#include "soc/soc.hh"
#include "soc/warm_trace.hh"
#include "workloads/workload.hh"

namespace bvl
{

struct FastForwardResult
{
    std::uint64_t executed = 0;  ///< dynamic instructions stepped
    bool halted = false;         ///< the program's halt was executed
};

/**
 * Functionally execute up to @p maxInsts instructions of @p prog
 * against @p arch and the SoC's backing store. With @p warm set, the
 * instruction-fetch path, scalar data path (of core @p coreId) and —
 * for vector element traffic — the L2 + directory are warmed
 * tag/LRU-only, and @p bpred (may be null) is trained on every
 * conditional branch, all without touching a single stat counter.
 * A non-null @p traceOut additionally records every warm call as a
 * compact line-access stream (soc/warm_trace.hh), the tier-B half of
 * a v2 checkpoint-farm entry.
 */
FastForwardResult fastForward(Soc &soc, ArchState &arch,
                              const Program &prog,
                              std::uint64_t maxInsts, unsigned coreId,
                              GsharePredictor *bpred, bool warm,
                              WarmTrace *traceOut = nullptr);

/** Outcome of a sampled or checkpointed run. */
struct FfRunOutcome
{
    /** The workload ran (or fast-forwarded) to completion. */
    bool finished = false;
    /** When !finished: the event queue drained (lost wakeup) rather
     *  than the simulated-time limit expiring. */
    bool queueDrained = false;
    /** Extrapolated runtime of a sampled run (ns); unset when the run
     *  was timed end-to-end (checkpoint save/restore). */
    std::optional<double> estimatedNs;
    /** sample.* stats describing the windows actually measured. */
    std::map<std::string, std::uint64_t> extraStats;
};

/**
 * Drive one sampled or checkpointed run per RunOptions::sampling /
 * RunOptions::checkpoint. The SoC must be freshly constructed with
 * the workload initialized; dispatch, fast-forward regions and
 * detailed windows are orchestrated internally. Invalid combinations
 * (both modes at once, non-single-stream runs, lockstep) fail with
 * SimFatalError, which the run driver reports as sim_error.
 */
FfRunOutcome runFastForwarded(Soc &soc, Design design,
                              Workload &workload,
                              const RunOptions &opts);

} // namespace bvl

#endif // BVL_SOC_FAST_FORWARD_HH
