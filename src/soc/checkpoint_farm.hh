/**
 * @file
 * Content-addressed checkpoint-prefix farm (DESIGN.md §16).
 *
 * A sweep re-runs one workload prefix under many design points. With
 * v2 two-tier checkpoints the fast-forwarded prefix is identical for
 * every cell that shares (workload, ffInsts, flavor, vlen, inputs) —
 * so the farm stores exactly one entry per such prefix, keyed by its
 * SHA-256, and every cell after the first restores instead of
 * re-simulating.
 *
 * Production is single-flight: the first cell to miss takes an
 * exclusive flock(2) on "<entry>.lock", re-checks (another producer
 * may have published while it waited), fast-forwards once and
 * publishes atomically (temp + fsync + rename). Cells blocked on the
 * lock wake to find the entry on disk. flock contends both across
 * threads (each Claim opens its own file description) and across
 * BVL_SWEEP_ISOLATE=1 worker processes, and the kernel drops it if a
 * producer dies — no stale-lock recovery protocol is needed. The wait
 * is nevertheless bounded (BVL_CKPT_LOCK_TIMEOUT_MS, default 60 s): a
 * live-but-wedged holder should cost this cell one diagnostic and a
 * private fast-forward, not a hang.
 *
 * Degradation policy (DESIGN.md §17): the farm is a pure accelerator.
 * A failed publish disables farm stores process-wide with one warning
 * (disableStores()); cells keep fast-forwarding privately and every
 * result stays correct. All filesystem access goes through the sim/io
 * seam, and orphaned "<entry>.tmp.*" publish temps are removed under
 * the claim lock (sweepTempsFor) or by sweepStale() at startup.
 *
 * Entries are never trusted blindly: a failed digest quarantines the
 * file to "*.corrupt" and the prefix is re-produced. A byte budget
 * (BVL_CKPT_BUDGET_MB) is enforced after each publication by evicting
 * the least-recently-used entries (mtime order; hits touch mtime).
 */

#ifndef BVL_SOC_CHECKPOINT_FARM_HH
#define BVL_SOC_CHECKPOINT_FARM_HH

#include <cstdint>
#include <string>

namespace bvl
{

class CheckpointFarm
{
  public:
    /** $BVL_CKPT_DIR, defaulting to ".bvl-ckpt". */
    static std::string defaultDir();

    /** BVL_CKPT_BUDGET_MB in bytes; 0 (the default) = unlimited. */
    static std::uint64_t budgetBytesFromEnv();

    /**
     * Content key of one fast-forward prefix. Everything that shapes
     * the functional trajectory and warm stream goes in: workload,
     * instruction count, flavor + vlen (which program text runs and
     * on what), the input digest (memory image + arguments, hence
     * scale and datasets), and the library revision.
     */
    static std::string prefixHashHex(const std::string &workloadName,
                                     std::uint64_t ffInsts,
                                     const std::string &flavor,
                                     std::uint64_t vlenBits,
                                     const std::string &inputSha);

    explicit CheckpointFarm(std::string dir);

    const std::string &dir() const { return _dir; }

    /** "<dir>/<hash[0:2]>/<hash>.bvl" (result-cache sharding). */
    std::string entryPath(const std::string &hash) const;

    /**
     * RAII exclusive flock on "<entry>.lock". The constructor blocks
     * until the lock is granted or @p timeoutMs elapses (-1 = the
     * BVL_CKPT_LOCK_TIMEOUT_MS env knob, default 60000); destruction
     * (or process death) releases it. held() is false when the lock
     * file could not be created or the wait timed out (one warn()
     * names the lock path and holder pid) — callers then fall back to
     * producing without single-flight (correct, just not
     * deduplicated). Acquiring the claim also removes any orphaned
     * "<entry>.tmp.*" left by a dead producer.
     */
    class Claim
    {
      public:
        explicit Claim(const std::string &entryPath,
                       long long timeoutMs = -1);
        ~Claim();
        Claim(const Claim &) = delete;
        Claim &operator=(const Claim &) = delete;

        bool held() const { return fd >= 0; }

      private:
        int fd = -1;
    };

    /** Mark @p entryPath recently used (best effort, for LRU). */
    static void touch(const std::string &entryPath);

    /**
     * Delete oldest-mtime "*.bvl" entries until the farm fits
     * @p budgetBytes (0 = unlimited). @p keepPath, the entry just
     * produced for the current cell, is never evicted. Returns the
     * number of entries removed.
     */
    unsigned evictOverBudget(std::uint64_t budgetBytes,
                             const std::string &keepPath) const;

    // --- process-wide telemetry (reported in the sweep summary) -----

    static void noteHit();
    static void noteProduced();
    static void noteCorrupt();
    static void noteEvicted(unsigned n);

    static std::uint64_t hits();
    static std::uint64_t produced();
    static std::uint64_t corrupt();
    static std::uint64_t evicted();

    /**
     * Stop publishing to the farm for the rest of the process (after
     * a failed publish — the farm is an accelerator, not a
     * requirement). Restores keep working.
     */
    static void disableStores();
    static bool storesDisabled();

    /** Zero the process-wide counters and re-enable stores (tests). */
    static void resetForTest();

    /** Remove stale "*.tmp.*" orphans under the farm dir (startup). */
    unsigned sweepStale() const;

    /**
     * sweepStale(), but at most once per directory per process — the
     * first cell to use a farm dir pays the walk, the rest skip it.
     */
    unsigned sweepStaleOnce() const;

  private:
    std::string _dir;
};

} // namespace bvl

#endif // BVL_SOC_CHECKPOINT_FARM_HH
