/**
 * @file
 * Content-addressed checkpoint-prefix farm (DESIGN.md §16).
 *
 * A sweep re-runs one workload prefix under many design points. With
 * v2 two-tier checkpoints the fast-forwarded prefix is identical for
 * every cell that shares (workload, ffInsts, flavor, vlen, inputs) —
 * so the farm stores exactly one entry per such prefix, keyed by its
 * SHA-256, and every cell after the first restores instead of
 * re-simulating.
 *
 * Production is single-flight: the first cell to miss takes an
 * exclusive flock(2) on "<entry>.lock", re-checks (another producer
 * may have published while it waited), fast-forwards once and
 * publishes atomically (temp + fsync + rename). Cells blocked on the
 * lock wake to find the entry on disk. flock contends both across
 * threads (each Claim opens its own file description) and across
 * BVL_SWEEP_ISOLATE=1 worker processes, and the kernel drops it if a
 * producer dies — no stale-lock recovery protocol is needed.
 *
 * Entries are never trusted blindly: a failed digest quarantines the
 * file to "*.corrupt" and the prefix is re-produced. A byte budget
 * (BVL_CKPT_BUDGET_MB) is enforced after each publication by evicting
 * the least-recently-used entries (mtime order; hits touch mtime).
 */

#ifndef BVL_SOC_CHECKPOINT_FARM_HH
#define BVL_SOC_CHECKPOINT_FARM_HH

#include <cstdint>
#include <string>

namespace bvl
{

class CheckpointFarm
{
  public:
    /** $BVL_CKPT_DIR, defaulting to ".bvl-ckpt". */
    static std::string defaultDir();

    /** BVL_CKPT_BUDGET_MB in bytes; 0 (the default) = unlimited. */
    static std::uint64_t budgetBytesFromEnv();

    /**
     * Content key of one fast-forward prefix. Everything that shapes
     * the functional trajectory and warm stream goes in: workload,
     * instruction count, flavor + vlen (which program text runs and
     * on what), the input digest (memory image + arguments, hence
     * scale and datasets), and the library revision.
     */
    static std::string prefixHashHex(const std::string &workloadName,
                                     std::uint64_t ffInsts,
                                     const std::string &flavor,
                                     std::uint64_t vlenBits,
                                     const std::string &inputSha);

    explicit CheckpointFarm(std::string dir);

    const std::string &dir() const { return _dir; }

    /** "<dir>/<hash[0:2]>/<hash>.bvl" (result-cache sharding). */
    std::string entryPath(const std::string &hash) const;

    /**
     * RAII exclusive flock on "<entry>.lock". The constructor BLOCKS
     * until the lock is granted; destruction (or process death)
     * releases it. held() is false only if the lock file could not be
     * created — callers then fall back to producing without
     * single-flight (correct, just not deduplicated).
     */
    class Claim
    {
      public:
        explicit Claim(const std::string &entryPath);
        ~Claim();
        Claim(const Claim &) = delete;
        Claim &operator=(const Claim &) = delete;

        bool held() const { return fd >= 0; }

      private:
        int fd = -1;
    };

    /** Mark @p entryPath recently used (best effort, for LRU). */
    static void touch(const std::string &entryPath);

    /**
     * Delete oldest-mtime "*.bvl" entries until the farm fits
     * @p budgetBytes (0 = unlimited). @p keepPath, the entry just
     * produced for the current cell, is never evicted. Returns the
     * number of entries removed.
     */
    unsigned evictOverBudget(std::uint64_t budgetBytes,
                             const std::string &keepPath) const;

    // --- process-wide telemetry (reported in the sweep summary) -----

    static void noteHit();
    static void noteProduced();
    static void noteCorrupt();
    static void noteEvicted(unsigned n);

    static std::uint64_t hits();
    static std::uint64_t produced();
    static std::uint64_t corrupt();
    static std::uint64_t evicted();

  private:
    std::string _dir;
};

} // namespace bvl

#endif // BVL_SOC_CHECKPOINT_FARM_HH
