/**
 * @file
 * Compact line-access stream recorded during fast-forward (DESIGN.md
 * §16). The stream is the design-independent *recipe* for warm
 * microarchitectural state: replaying it through any SoC's
 * MemSystem::warmFetch/warmData/warmL2 rederives that SoC's cache
 * tag/LRU arrays and L2 directory exactly as a live fast-forward
 * would — so one recorded prefix serves every cache geometry.
 *
 * Encoding, one record per warm call, in call order:
 *
 *   tag byte:  bits 0-1 = kind (0 fetch, 1 data, 2 l2)
 *              bit  2   = isStore
 *   varint:    zigzag(lineNum - previous record's lineNum), LEB128
 *
 * Line numbers are delta-encoded against the previous record of *any*
 * kind; fast-forward touches memory with high spatial locality, so
 * most deltas fit one byte (~2 bytes/record overall, vs 9+ raw).
 */

#ifndef BVL_SOC_WARM_TRACE_HH
#define BVL_SOC_WARM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace bvl
{

/** One decoded warm call. */
struct WarmRecord
{
    enum Kind : std::uint8_t { fetch = 0, data = 1, l2 = 2 };

    std::uint8_t kind = fetch;
    bool isStore = false;
    Addr lineNum = 0;       ///< address >> lineShift
};

/** Append-only recorder; bytes() goes verbatim into the checkpoint. */
class WarmTrace
{
  public:
    void
    add(WarmRecord::Kind kind, Addr lineNum, bool isStore)
    {
        enc.push_back(char(std::uint8_t(kind) | (isStore ? 0x4 : 0)));
        // Zigzag so backward strides stay short, then LEB128.
        std::int64_t delta = std::int64_t(lineNum) - std::int64_t(prev);
        std::uint64_t z = (std::uint64_t(delta) << 1) ^
                          std::uint64_t(delta >> 63);
        do {
            std::uint8_t b = z & 0x7f;
            z >>= 7;
            enc.push_back(char(b | (z ? 0x80 : 0)));
        } while (z);
        prev = lineNum;
        ++count;
    }

    const std::string &bytes() const { return enc; }
    std::uint64_t records() const { return count; }

  private:
    std::string enc;
    std::uint64_t count = 0;
    Addr prev = 0;
};

/**
 * Decode @p records records out of @p bytes into @p out. Returns
 * false — leaving @p out unspecified — on any malformation: truncated
 * varint, unknown kind, reserved tag bits, trailing bytes, or a count
 * mismatch. Callers decode-then-apply, so a corrupt stream is caught
 * before any warm call is issued.
 */
inline bool
decodeWarmTrace(const std::string &bytes, std::uint64_t records,
                std::vector<WarmRecord> &out)
{
    out.clear();
    out.reserve(records);
    const auto *p = reinterpret_cast<const std::uint8_t *>(bytes.data());
    const auto *end = p + bytes.size();
    Addr prev = 0;
    for (std::uint64_t i = 0; i < records; ++i) {
        if (p >= end)
            return false;
        std::uint8_t tag = *p++;
        if (tag & ~0x7u || (tag & 0x3) > WarmRecord::l2)
            return false;
        std::uint64_t z = 0;
        unsigned shift = 0;
        for (;;) {
            if (p >= end || shift >= 64)
                return false;
            std::uint8_t b = *p++;
            z |= std::uint64_t(b & 0x7f) << shift;
            if (!(b & 0x80))
                break;
            shift += 7;
        }
        std::int64_t delta = std::int64_t(z >> 1) ^
                             -std::int64_t(z & 1);
        WarmRecord r;
        r.kind = tag & 0x3;
        r.isStore = (tag & 0x4) != 0;
        r.lineNum = Addr(std::int64_t(prev) + delta);
        prev = r.lineNum;
        out.push_back(r);
    }
    return p == end;
}

} // namespace bvl

#endif // BVL_SOC_WARM_TRACE_HH
