/**
 * @file
 * Versioned, digest-protected checkpoints of one simulated SoC
 * (DESIGN.md §15).
 *
 * A checkpoint captures everything needed to resume detailed timing
 * from a fast-forwarded point and get byte-identical results:
 *
 *  - architectural state of the executing core (registers, pc, vl/sew)
 *  - the big core's branch predictor (counters + global history)
 *  - the full backing-store memory image
 *  - warm microarchitectural state: every cache's tag/dirty/LRU array
 *    and index mode, and the L2 directory's sharer bitmaps
 *
 * Not captured, by construction: MSHRs, pipeline and engine state
 * (checkpoints are only taken at fast-forward boundaries where all of
 * those are empty) and DRAM state (the DRAM model is fixed-latency
 * with no row tracking, so it has nothing warmable).
 *
 * On-disk format: one JSON header line
 *   {"schema":"bvl-checkpoint-v1","version":1,"design":...,
 *    "workload":...,"ffInsts":N,"payloadBytes":N,"payloadSha256":...}
 * followed by a raw binary payload in host (little-endian) byte
 * order. The header's SHA-256 protects the payload: any mismatch —
 * truncation, bit rot, manual edits — makes loadCheckpoint() report
 * corrupt, and the caller quarantines the file and re-simulates;
 * a checkpoint is never silently trusted.
 */

#ifndef BVL_SOC_CHECKPOINT_HH
#define BVL_SOC_CHECKPOINT_HH

#include <string>

#include "soc/soc.hh"

namespace bvl
{

enum class CheckpointStatus
{
    ok,        ///< loaded and applied
    missing,   ///< no file at the path
    corrupt,   ///< unreadable / bad digest / truncated payload
    mismatch,  ///< valid file for a different design/workload/geometry
};

const char *checkpointStatusName(CheckpointStatus s);

/**
 * Snapshot @p soc to @p path (atomic: temp file + fsync + rename).
 * @p ffInsts is recorded in the header for provenance. The SoC must
 * be at a fast-forward boundary (no events in flight). Returns false
 * and fills @p error on I/O failure.
 */
bool saveCheckpoint(const std::string &path, Soc &soc,
                    const std::string &workloadName,
                    std::uint64_t ffInsts, std::string *error = nullptr);

/**
 * Load a checkpoint and apply it to @p soc. The file is fully parsed
 * and verified (digest, design/workload names, cache geometry) before
 * anything is applied, so on any non-ok status @p soc is untouched.
 */
CheckpointStatus loadCheckpoint(const std::string &path, Soc &soc,
                                const std::string &workloadName,
                                std::string *error = nullptr);

/**
 * Rename a bad checkpoint to "<path>.corrupt" so a retry never picks
 * it up again. Returns false if the rename failed.
 */
bool quarantineCheckpoint(const std::string &path);

} // namespace bvl

#endif // BVL_SOC_CHECKPOINT_HH
