/**
 * @file
 * Versioned, digest-protected checkpoints of one simulated SoC
 * (DESIGN.md §15/§16).
 *
 * The v2 format is two-tier, so one checkpoint serves every cache
 * geometry that shares the same functional prefix:
 *
 *  - tier A (stored): design-independent architectural state — the
 *    executing core's ArchState dump, the branch-predictor tables
 *    (big-core flavors), and the full backing-store memory image.
 *  - tier B (rederived): warm microarchitectural state. Instead of
 *    cache tag/LRU images, the file carries the compact line-access
 *    stream fast-forward recorded (soc/warm_trace.hh); loading
 *    replays it through the restoring SoC's own warm ports, which
 *    reproduces exactly what a live fast-forward would have left in
 *    *that* SoC's caches and L2 directory — for any set count,
 *    associativity or index mode.
 *
 * Not captured, by construction: MSHRs, pipeline and engine state
 * (checkpoints are only taken at fast-forward boundaries where all of
 * those are empty) and DRAM state (the DRAM model is fixed-latency
 * with no row tracking, so it has nothing warmable).
 *
 * On-disk format: one JSON header line
 *   {"schema":"bvl-checkpoint-v2","version":2,"flavor":...,"vlen":N,
 *    "workload":...,"ffInsts":N,"inputSha256":...,
 *    "payloadBytes":N,"payloadSha256":...}
 * followed by a raw binary payload in host (little-endian) byte
 * order. "flavor" names the functional trajectory (which program
 * stream, which core kind executes it), "vlen" the vector length it
 * was traced at, and "inputSha256" digests the initial memory image +
 * register arguments — together they identify the prefix without
 * naming a design, which is what lets different designs share the
 * file. The payload SHA-256 protects against truncation, bit rot and
 * manual edits: any mismatch makes loadCheckpoint() report corrupt,
 * the caller quarantines the file and re-simulates; a checkpoint is
 * never silently trusted. v1 files fail the schema check and take the
 * same quarantine path.
 */

#ifndef BVL_SOC_CHECKPOINT_HH
#define BVL_SOC_CHECKPOINT_HH

#include <string>

#include "soc/soc.hh"
#include "soc/warm_trace.hh"
#include "workloads/workload.hh"

namespace bvl
{

enum class CheckpointStatus
{
    ok,        ///< loaded and applied
    missing,   ///< no file at the path
    corrupt,   ///< unreadable / bad digest / truncated payload
    mismatch,  ///< valid file for a different prefix/flavor/geometry
};

const char *checkpointStatusName(CheckpointStatus s);

/**
 * The functional-trajectory flavor of @p soc's single program stream:
 * "little-scalar" (1L), "big-scalar" (1b) or "big-vector" (the vector
 * designs). Together with vlenBits() this determines which program
 * runs, which core's ArchState holds it, and whether a branch
 * predictor is trained — everything design-specific about a prefix.
 */
const char *checkpointFlavor(const Soc &soc);

/**
 * SHA-256 over the initial functional inputs of a run: the
 * backing-store memory image (pages sorted by number) and the
 * workload's full-range register arguments. Workload name + scale +
 * datasets all fold into this one digest, which the checkpoint header
 * records and loadCheckpoint() verifies — a checkpoint can never be
 * applied to inputs it was not traced from. Must be computed before
 * fast-forward mutates memory.
 */
std::string checkpointInputSha256(const Soc &soc, Workload &workload);

/**
 * Snapshot @p soc to @p path (atomic: temp file + fsync + rename).
 * @p trace is the warm line-access stream recorded during the
 * fast-forward that produced this state; @p inputSha is
 * checkpointInputSha256() of the run's initial inputs. Returns false
 * and fills @p error on I/O failure.
 */
bool saveCheckpoint(const std::string &path, Soc &soc,
                    const std::string &workloadName,
                    std::uint64_t ffInsts, const WarmTrace &trace,
                    const std::string &inputSha,
                    std::string *error = nullptr);

/**
 * Load a checkpoint and apply it to @p soc, replaying the stored warm
 * stream through the SoC's own cache hierarchy. The file is fully
 * parsed and verified (digest, workload/flavor/vlen/input identity,
 * predictor geometry, stream decode) before anything is applied, so
 * on any non-ok status @p soc is untouched.
 */
CheckpointStatus loadCheckpoint(const std::string &path, Soc &soc,
                                const std::string &workloadName,
                                const std::string &inputSha,
                                std::string *error = nullptr);

/**
 * Rename a bad checkpoint to "<path>.corrupt" so a retry never picks
 * it up again. Returns false if the rename failed.
 */
bool quarantineCheckpoint(const std::string &path);

} // namespace bvl

#endif // BVL_SOC_CHECKPOINT_HH
