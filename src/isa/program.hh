/**
 * @file
 * Program container and a label-resolving assembler.
 *
 * Workload builders construct programs through the Asm fluent
 * interface; forward label references are patched when the program is
 * finished. Programs are immutable after finish() and shared between
 * all cores that execute them (e.g. every work-stealing task of a
 * parallel_for runs the same Program with different argument
 * registers).
 */

#ifndef BVL_ISA_PROGRAM_HH
#define BVL_ISA_PROGRAM_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/instr.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace bvl
{

/** An immutable sequence of instructions with a name and entry point. */
class Program
{
  public:
    explicit Program(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }
    std::size_t size() const { return code.size(); }
    const Instr &at(std::size_t pc) const
    {
        bvl_assert(pc < code.size(), "pc %zu out of range in %s",
                   pc, _name.c_str());
        return code[pc];
    }

    /**
     * Base address of this program's instruction storage in the
     * simulated address space; used by front ends to generate L1I
     * traffic. Assigned by the system when the program is loaded.
     */
    Addr textBase() const { return _textBase; }
    void setTextBase(Addr base) { _textBase = base; }

    /** Address of the instruction at @p pc. */
    Addr instAddr(std::size_t pc) const
    { return _textBase + pc * instBytes; }

    /** Disassembly of the whole program. */
    std::string toString() const;

  private:
    friend class Asm;

    std::string _name;
    std::vector<Instr> code;
    Addr _textBase = 0;
};

using ProgramPtr = std::shared_ptr<Program>;

/** Fluent assembler for building a Program. */
class Asm
{
  public:
    explicit Asm(std::string name)
        : prog(std::make_shared<Program>(std::move(name)))
    {}

    /** Bind a label to the next emitted instruction. */
    Asm &
    label(const std::string &l)
    {
        bvl_assert(!labels.count(l), "duplicate label '%s'", l.c_str());
        labels[l] = static_cast<std::int32_t>(prog->code.size());
        return *this;
    }

    /** Emit a raw instruction. */
    Asm &
    emit(const Instr &inst)
    {
        prog->code.push_back(inst);
        return *this;
    }

    // --- scalar convenience emitters -------------------------------

    Asm &nop() { return op0(Op::nop); }
    Asm &halt() { return op0(Op::halt); }

    /** rd = 64-bit immediate. */
    Asm &
    li(RegId rd, std::int64_t value)
    {
        Instr i;
        i.op = Op::li;
        i.rd = rd;
        i.imm = value;
        return emit(i);
    }

    /** rd = rs1 (integer move). */
    Asm &mv(RegId rd, RegId rs1) { return rri(Op::addi, rd, rs1, 0); }

    Asm &add(RegId rd, RegId a, RegId b) { return rrr(Op::add, rd, a, b); }
    Asm &sub(RegId rd, RegId a, RegId b) { return rrr(Op::sub, rd, a, b); }
    Asm &and_(RegId rd, RegId a, RegId b) { return rrr(Op::and_, rd, a, b); }
    Asm &or_(RegId rd, RegId a, RegId b) { return rrr(Op::or_, rd, a, b); }
    Asm &xor_(RegId rd, RegId a, RegId b) { return rrr(Op::xor_, rd, a, b); }
    Asm &sll(RegId rd, RegId a, RegId b) { return rrr(Op::sll, rd, a, b); }
    Asm &srl(RegId rd, RegId a, RegId b) { return rrr(Op::srl, rd, a, b); }
    Asm &slt(RegId rd, RegId a, RegId b) { return rrr(Op::slt, rd, a, b); }
    Asm &sltu(RegId rd, RegId a, RegId b) { return rrr(Op::sltu, rd, a, b); }
    Asm &mul(RegId rd, RegId a, RegId b) { return rrr(Op::mul, rd, a, b); }
    Asm &div_(RegId rd, RegId a, RegId b) { return rrr(Op::div_, rd, a, b); }
    Asm &rem(RegId rd, RegId a, RegId b) { return rrr(Op::rem, rd, a, b); }
    Asm &min_(RegId rd, RegId a, RegId b) { return rrr(Op::min_, rd, a, b); }
    Asm &max_(RegId rd, RegId a, RegId b) { return rrr(Op::max_, rd, a, b); }

    Asm &addi(RegId rd, RegId a, std::int64_t imm)
    { return rri(Op::addi, rd, a, imm); }
    Asm &andi(RegId rd, RegId a, std::int64_t imm)
    { return rri(Op::andi, rd, a, imm); }
    Asm &ori(RegId rd, RegId a, std::int64_t imm)
    { return rri(Op::ori, rd, a, imm); }
    Asm &xori(RegId rd, RegId a, std::int64_t imm)
    { return rri(Op::xori, rd, a, imm); }
    Asm &slli(RegId rd, RegId a, std::int64_t imm)
    { return rri(Op::slli, rd, a, imm); }
    Asm &srli(RegId rd, RegId a, std::int64_t imm)
    { return rri(Op::srli, rd, a, imm); }
    Asm &srai(RegId rd, RegId a, std::int64_t imm)
    { return rri(Op::srai, rd, a, imm); }
    Asm &slti(RegId rd, RegId a, std::int64_t imm)
    { return rri(Op::slti, rd, a, imm); }

    // --- scalar FP (width = 4 or 8 bytes) ---------------------------

    Asm &fadd(RegId rd, RegId a, RegId b, unsigned w = 4)
    { return frrr(Op::fadd, rd, a, b, w); }
    Asm &fsub(RegId rd, RegId a, RegId b, unsigned w = 4)
    { return frrr(Op::fsub, rd, a, b, w); }
    Asm &fmul(RegId rd, RegId a, RegId b, unsigned w = 4)
    { return frrr(Op::fmul, rd, a, b, w); }
    Asm &fdiv(RegId rd, RegId a, RegId b, unsigned w = 4)
    { return frrr(Op::fdiv, rd, a, b, w); }
    Asm &fmin(RegId rd, RegId a, RegId b, unsigned w = 4)
    { return frrr(Op::fmin, rd, a, b, w); }
    Asm &fmax(RegId rd, RegId a, RegId b, unsigned w = 4)
    { return frrr(Op::fmax, rd, a, b, w); }
    Asm &fsqrt(RegId rd, RegId a, unsigned w = 4)
    { return frrr(Op::fsqrt, rd, a, regIdInvalid, w); }
    Asm &fneg(RegId rd, RegId a, unsigned w = 4)
    { return frrr(Op::fneg, rd, a, regIdInvalid, w); }
    Asm &fabs_(RegId rd, RegId a, unsigned w = 4)
    { return frrr(Op::fabs_, rd, a, regIdInvalid, w); }

    /** rd = a * b + c */
    Asm &
    fmadd(RegId rd, RegId a, RegId b, RegId c, unsigned w = 4)
    {
        Instr i;
        i.op = Op::fmadd;
        i.rd = rd;
        i.rs1 = a;
        i.rs2 = b;
        i.rs3 = c;
        i.ew = static_cast<std::uint8_t>(w);
        return emit(i);
    }

    Asm &fcvt_f_x(RegId rd, RegId a, unsigned w = 4)
    { return frrr(Op::fcvt_f_x, rd, a, regIdInvalid, w); }
    Asm &fcvt_x_f(RegId rd, RegId a, unsigned w = 4)
    { return frrr(Op::fcvt_x_f, rd, a, regIdInvalid, w); }
    Asm &fmv_f_x(RegId rd, RegId a)
    { return frrr(Op::fmv_f_x, rd, a, regIdInvalid, 8); }
    Asm &fmv_x_f(RegId rd, RegId a)
    { return frrr(Op::fmv_x_f, rd, a, regIdInvalid, 8); }
    Asm &feq(RegId rd, RegId a, RegId b, unsigned w = 4)
    { return frrr(Op::feq, rd, a, b, w); }
    Asm &flt(RegId rd, RegId a, RegId b, unsigned w = 4)
    { return frrr(Op::flt, rd, a, b, w); }
    Asm &fle(RegId rd, RegId a, RegId b, unsigned w = 4)
    { return frrr(Op::fle, rd, a, b, w); }

    // --- scalar memory ----------------------------------------------

    /** Generic load: rd = mem[base + imm], @p w bytes. */
    Asm &
    load(RegId rd, RegId base, std::int64_t imm, unsigned w,
         bool sign = true)
    {
        Instr i;
        i.op = Op::load;
        i.rd = rd;
        i.rs1 = base;
        i.imm = imm;
        i.ew = static_cast<std::uint8_t>(w);
        i.sign = sign;
        return emit(i);
    }

    /** Generic store: mem[base + imm] = src, @p w bytes. */
    Asm &
    store(RegId src, RegId base, std::int64_t imm, unsigned w)
    {
        Instr i;
        i.op = Op::store;
        i.rs1 = base;
        i.rs2 = src;
        i.imm = imm;
        i.ew = static_cast<std::uint8_t>(w);
        return emit(i);
    }

    Asm &lw(RegId rd, RegId base, std::int64_t imm = 0)
    { return load(rd, base, imm, 4); }
    Asm &ld(RegId rd, RegId base, std::int64_t imm = 0)
    { return load(rd, base, imm, 8); }
    Asm &flw(RegId rd, RegId base, std::int64_t imm = 0)
    { return load(rd, base, imm, 4, false); }
    Asm &fld(RegId rd, RegId base, std::int64_t imm = 0)
    { return load(rd, base, imm, 8, false); }
    Asm &sw(RegId src, RegId base, std::int64_t imm = 0)
    { return store(src, base, imm, 4); }
    Asm &sd(RegId src, RegId base, std::int64_t imm = 0)
    { return store(src, base, imm, 8); }
    Asm &fsw(RegId src, RegId base, std::int64_t imm = 0)
    { return store(src, base, imm, 4); }
    Asm &fsd(RegId src, RegId base, std::int64_t imm = 0)
    { return store(src, base, imm, 8); }

    // --- control flow ------------------------------------------------

    Asm &beq(RegId a, RegId b, const std::string &l)
    { return branch(Op::beq, a, b, l); }
    Asm &bne(RegId a, RegId b, const std::string &l)
    { return branch(Op::bne, a, b, l); }
    Asm &blt(RegId a, RegId b, const std::string &l)
    { return branch(Op::blt, a, b, l); }
    Asm &bge(RegId a, RegId b, const std::string &l)
    { return branch(Op::bge, a, b, l); }
    Asm &bltu(RegId a, RegId b, const std::string &l)
    { return branch(Op::bltu, a, b, l); }
    Asm &bgeu(RegId a, RegId b, const std::string &l)
    { return branch(Op::bgeu, a, b, l); }
    Asm &j(const std::string &l)
    { return branch(Op::jump, regIdInvalid, regIdInvalid, l); }

    // --- vector -------------------------------------------------------

    /** rd = vl = min(avl in rs1, VLMAX for sew). */
    Asm &
    vsetvli(RegId rd, RegId avl, unsigned sew_bytes)
    {
        Instr i;
        i.op = Op::vsetvli;
        i.rd = rd;
        i.rs1 = avl;
        i.ew = static_cast<std::uint8_t>(sew_bytes);
        return emit(i);
    }

    /** Generic vector op, .vv form. */
    Asm &
    vv(Op op, RegId vd, RegId vs1, RegId vs2 = regIdInvalid,
       bool masked = false)
    {
        Instr i;
        i.op = op;
        i.rd = vd;
        i.rs1 = vs1;
        i.rs2 = vs2;
        i.vsrc = VSrc2::vv;
        i.masked = masked;
        return emit(i);
    }

    /** Generic vector op, .vx form (scalar x operand in rs2). */
    Asm &
    vx(Op op, RegId vd, RegId vs1, RegId xs2, bool masked = false)
    {
        Instr i;
        i.op = op;
        i.rd = vd;
        i.rs1 = vs1;
        i.rs2 = xs2;
        i.vsrc = VSrc2::vx;
        i.masked = masked;
        return emit(i);
    }

    /** Generic vector op, .vf form (scalar f operand in rs2). */
    Asm &
    vf(Op op, RegId vd, RegId vs1, RegId fs2, bool masked = false)
    {
        Instr i;
        i.op = op;
        i.rd = vd;
        i.rs1 = vs1;
        i.rs2 = fs2;
        i.vsrc = VSrc2::vf;
        i.masked = masked;
        return emit(i);
    }

    /** Generic vector op, .vi form (immediate operand). */
    Asm &
    vi(Op op, RegId vd, RegId vs1, std::int64_t imm, bool masked = false)
    {
        Instr i;
        i.op = op;
        i.rd = vd;
        i.rs1 = vs1;
        i.imm = imm;
        i.vsrc = VSrc2::vi;
        i.masked = masked;
        return emit(i);
    }

    /** Widen: vd[i] (2*srcEw) = zero-extend(vs[i] (srcEw)). */
    Asm &
    vzext2(RegId vd, RegId vs, unsigned srcEw, bool masked = false)
    {
        Instr i;
        i.op = Op::vzext2;
        i.rd = vd;
        i.rs1 = vs;
        i.ew = static_cast<std::uint8_t>(srcEw);
        i.masked = masked;
        return emit(i);
    }

    /** Widen: vd[i] (2*srcEw) = sign-extend(vs[i] (srcEw)). */
    Asm &
    vsext2(RegId vd, RegId vs, unsigned srcEw, bool masked = false)
    {
        Instr i;
        i.op = Op::vsext2;
        i.rd = vd;
        i.rs1 = vs;
        i.ew = static_cast<std::uint8_t>(srcEw);
        i.masked = masked;
        return emit(i);
    }

    /**
     * Narrow with saturation: vd[i] (dstEw) = sat(vs[i] (2*dstEw) >>
     * shamt). @p sign selects signed (vnclip) vs unsigned (vnclipu)
     * saturation bounds.
     */
    Asm &
    vnclip2(RegId vd, RegId vs, unsigned shamt, unsigned dstEw,
            bool sign = true, bool masked = false)
    {
        Instr i;
        i.op = Op::vnclip2;
        i.rd = vd;
        i.rs1 = vs;
        i.imm = static_cast<std::int64_t>(shamt);
        i.ew = static_cast<std::uint8_t>(dstEw);
        i.sign = sign;
        i.masked = masked;
        return emit(i);
    }

    /** vd[i] = v0[i] ? xs : vfalse[i] (merge with scalar true side). */
    Asm &
    vmerge_vx(RegId vd, RegId xs, RegId vfalse)
    {
        Instr i;
        i.op = Op::vmerge;
        i.rd = vd;
        i.rs1 = xs;
        i.rs2 = vfalse;
        i.vsrc = VSrc2::vx;
        return emit(i);
    }

    /** Splat scalar x register into vd. */
    Asm &vmv_vx(RegId vd, RegId xs)
    { return vx(Op::vmv, vd, regIdInvalid, xs); }
    /** Splat scalar f register into vd. */
    Asm &vmv_vf(RegId vd, RegId fs)
    { return vf(Op::vmv, vd, regIdInvalid, fs); }
    /** Vector-vector move. */
    Asm &vmv_vv(RegId vd, RegId vs)
    { return vv(Op::vmv, vd, vs, regIdInvalid); }
    /** vd[i] = i. */
    Asm &vid(RegId vd)
    { return vv(Op::vid, vd, regIdInvalid, regIdInvalid); }

    /** Unit-stride vector load, element width @p w bytes. */
    Asm &
    vle(RegId vd, RegId base, unsigned w, bool masked = false)
    {
        Instr i;
        i.op = Op::vle;
        i.rd = vd;
        i.rs1 = base;
        i.ew = static_cast<std::uint8_t>(w);
        i.masked = masked;
        return emit(i);
    }

    Asm &
    vse(RegId vs, RegId base, unsigned w, bool masked = false)
    {
        Instr i;
        i.op = Op::vse;
        i.rs1 = base;
        i.rs2 = vs;
        i.ew = static_cast<std::uint8_t>(w);
        i.masked = masked;
        return emit(i);
    }

    /** Constant-stride load: stride (bytes) in x register @p stride. */
    Asm &
    vlse(RegId vd, RegId base, RegId stride, unsigned w,
         bool masked = false)
    {
        Instr i;
        i.op = Op::vlse;
        i.rd = vd;
        i.rs1 = base;
        i.rs2 = stride;
        i.ew = static_cast<std::uint8_t>(w);
        i.masked = masked;
        return emit(i);
    }

    Asm &
    vsse(RegId vs, RegId base, RegId stride, unsigned w,
         bool masked = false)
    {
        Instr i;
        i.op = Op::vsse;
        i.rs1 = base;
        i.rs2 = stride;
        i.rs3 = vs;
        i.ew = static_cast<std::uint8_t>(w);
        i.masked = masked;
        return emit(i);
    }

    /** Indexed load: byte offsets in vector register @p vidx. */
    Asm &
    vluxei(RegId vd, RegId base, RegId vidx, unsigned w,
           bool masked = false)
    {
        Instr i;
        i.op = Op::vluxei;
        i.rd = vd;
        i.rs1 = base;
        i.rs2 = vidx;
        i.ew = static_cast<std::uint8_t>(w);
        i.masked = masked;
        return emit(i);
    }

    Asm &
    vsuxei(RegId vs, RegId base, RegId vidx, unsigned w,
           bool masked = false)
    {
        Instr i;
        i.op = Op::vsuxei;
        i.rs1 = base;
        i.rs2 = vidx;
        i.rs3 = vs;
        i.ew = static_cast<std::uint8_t>(w);
        i.masked = masked;
        return emit(i);
    }

    Asm &vmfence() { return op0(Op::vmfence); }

    /** vd[0] = scalar x register. */
    Asm &vmv_s_x(RegId vd, RegId xs) { return rds1(Op::vmv_s_x, vd, xs); }
    /** xd = element 0 of vs. */
    Asm &vmv_x_s(RegId xd, RegId vs) { return rds1(Op::vmv_x_s, xd, vs); }
    /** vd[0] = scalar f register. */
    Asm &vfmv_s_f(RegId vd, RegId fs)
    { return rds1(Op::vfmv_s_f, vd, fs); }
    /** fd = element 0 of vs. */
    Asm &vfmv_f_s(RegId fd, RegId vs)
    { return rds1(Op::vfmv_f_s, fd, vs); }
    /** xd = popcount of mask register vs (first vl bits). */
    Asm &vpopc(RegId xd, RegId vs) { return rds1(Op::vpopc, xd, vs); }
    /** xd = index of first set bit of mask vs, or -1. */
    Asm &vfirst(RegId xd, RegId vs) { return rds1(Op::vfirst, xd, vs); }

    // --- finishing -----------------------------------------------------

    /** Resolve labels and return the immutable program. */
    ProgramPtr
    finish()
    {
        for (const auto &fix : fixups) {
            auto it = labels.find(fix.second);
            bvl_assert(it != labels.end(), "undefined label '%s' in %s",
                       fix.second.c_str(), prog->name().c_str());
            prog->code[fix.first].target = it->second;
        }
        fixups.clear();
        finished = true;
        return prog;
    }

    /** Number of instructions emitted so far. */
    std::size_t size() const { return prog->code.size(); }

  private:
    Asm &
    op0(Op op)
    {
        Instr i;
        i.op = op;
        return emit(i);
    }

    Asm &
    rrr(Op op, RegId rd, RegId a, RegId b)
    {
        Instr i;
        i.op = op;
        i.rd = rd;
        i.rs1 = a;
        i.rs2 = b;
        return emit(i);
    }

    Asm &
    rri(Op op, RegId rd, RegId a, std::int64_t imm)
    {
        Instr i;
        i.op = op;
        i.rd = rd;
        i.rs1 = a;
        i.imm = imm;
        return emit(i);
    }

    Asm &
    frrr(Op op, RegId rd, RegId a, RegId b, unsigned w)
    {
        Instr i;
        i.op = op;
        i.rd = rd;
        i.rs1 = a;
        i.rs2 = b;
        i.ew = static_cast<std::uint8_t>(w);
        return emit(i);
    }

    Asm &
    rds1(Op op, RegId rd, RegId rs1)
    {
        Instr i;
        i.op = op;
        i.rd = rd;
        i.rs1 = rs1;
        return emit(i);
    }

    Asm &
    branch(Op op, RegId a, RegId b, const std::string &l)
    {
        Instr i;
        i.op = op;
        i.rs1 = a;
        i.rs2 = b;
        auto idx = prog->code.size();
        auto it = labels.find(l);
        if (it != labels.end())
            i.target = it->second;
        else
            fixups.emplace_back(idx, l);
        return emit(i);
    }

    ProgramPtr prog;
    std::map<std::string, std::int32_t> labels;
    std::vector<std::pair<std::size_t, std::string>> fixups;
    bool finished = false;
};

} // namespace bvl

#endif // BVL_ISA_PROGRAM_HH
