#include "isa/opcode.hh"

#include "sim/logging.hh"

namespace bvl
{

namespace
{

// Shorthand for table construction.
constexpr OpTraits
scalar(const char *name, FuClass fu, bool fp = false)
{
    return OpTraits{name, fu, false, false, false, false, false, fp};
}

constexpr OpTraits
vecArith(const char *name, FuClass fu, bool fp = false)
{
    return OpTraits{name, fu, true, false, false, false, false, fp};
}

constexpr OpTraits
vecMem(const char *name, bool isStore)
{
    return OpTraits{name, FuClass::mem, true, true, isStore, false, false,
                    false};
}

constexpr OpTraits
vecCross(const char *name, FuClass fu, bool writesScalar, bool fp = false)
{
    return OpTraits{name, fu, true, false, false, true, writesScalar, fp};
}

const OpTraits traitsTable[] = {
    // scalar control / misc
    scalar("nop", FuClass::nop),
    scalar("halt", FuClass::nop),
    scalar("li", FuClass::intAlu),
    // scalar integer
    scalar("add", FuClass::intAlu),
    scalar("sub", FuClass::intAlu),
    scalar("and", FuClass::intAlu),
    scalar("or", FuClass::intAlu),
    scalar("xor", FuClass::intAlu),
    scalar("sll", FuClass::intAlu),
    scalar("srl", FuClass::intAlu),
    scalar("sra", FuClass::intAlu),
    scalar("slt", FuClass::intAlu),
    scalar("sltu", FuClass::intAlu),
    scalar("addi", FuClass::intAlu),
    scalar("andi", FuClass::intAlu),
    scalar("ori", FuClass::intAlu),
    scalar("xori", FuClass::intAlu),
    scalar("slli", FuClass::intAlu),
    scalar("srli", FuClass::intAlu),
    scalar("srai", FuClass::intAlu),
    scalar("slti", FuClass::intAlu),
    scalar("mul", FuClass::intMul),
    scalar("mulh", FuClass::intMul),
    scalar("div", FuClass::intDiv),
    scalar("rem", FuClass::intDiv),
    scalar("min", FuClass::intAlu),
    scalar("max", FuClass::intAlu),
    // scalar floating point
    scalar("fadd", FuClass::fpAdd, true),
    scalar("fsub", FuClass::fpAdd, true),
    scalar("fmul", FuClass::fpMul, true),
    scalar("fdiv", FuClass::fpDiv, true),
    scalar("fsqrt", FuClass::fpDiv, true),
    scalar("fmin", FuClass::fpAdd, true),
    scalar("fmax", FuClass::fpAdd, true),
    scalar("fmadd", FuClass::fpMul, true),
    scalar("fneg", FuClass::fpAdd, true),
    scalar("fabs", FuClass::fpAdd, true),
    scalar("fcvt.f.x", FuClass::fpAdd, true),
    scalar("fcvt.x.f", FuClass::fpAdd, true),
    scalar("fmv.f.x", FuClass::intAlu, true),
    scalar("fmv.x.f", FuClass::intAlu, true),
    scalar("feq", FuClass::fpAdd, true),
    scalar("flt", FuClass::fpAdd, true),
    scalar("fle", FuClass::fpAdd, true),
    // scalar memory
    scalar("load", FuClass::mem),
    scalar("store", FuClass::mem),
    // control flow
    scalar("beq", FuClass::branch),
    scalar("bne", FuClass::branch),
    scalar("blt", FuClass::branch),
    scalar("bge", FuClass::branch),
    scalar("bltu", FuClass::branch),
    scalar("bgeu", FuClass::branch),
    scalar("jump", FuClass::branch),
    // vector configuration: writes a scalar (the new vl)
    OpTraits{"vsetvli", FuClass::vecCtrl, true, false, false, false, true,
             false},
    // vector integer arithmetic
    vecArith("vadd", FuClass::intAlu),
    vecArith("vsub", FuClass::intAlu),
    vecArith("vmul", FuClass::intMul),
    vecArith("vdiv", FuClass::intDiv),
    vecArith("vrem", FuClass::intDiv),
    vecArith("vmin", FuClass::intAlu),
    vecArith("vmax", FuClass::intAlu),
    vecArith("vand", FuClass::intAlu),
    vecArith("vor", FuClass::intAlu),
    vecArith("vxor", FuClass::intAlu),
    vecArith("vsll", FuClass::intAlu),
    vecArith("vsrl", FuClass::intAlu),
    vecArith("vsra", FuClass::intAlu),
    // vector width conversion
    vecArith("vzext2", FuClass::intAlu),
    vecArith("vsext2", FuClass::intAlu),
    vecArith("vnclip2", FuClass::intAlu),
    // vector floating point
    vecArith("vfadd", FuClass::fpAdd, true),
    vecArith("vfsub", FuClass::fpAdd, true),
    vecArith("vfmul", FuClass::fpMul, true),
    vecArith("vfdiv", FuClass::fpDiv, true),
    vecArith("vfsqrt", FuClass::fpDiv, true),
    vecArith("vfmin", FuClass::fpAdd, true),
    vecArith("vfmax", FuClass::fpAdd, true),
    vecArith("vfmacc", FuClass::fpMul, true),
    vecArith("vfnmsac", FuClass::fpMul, true),
    // vector compares
    vecArith("vmseq", FuClass::intAlu),
    vecArith("vmsne", FuClass::intAlu),
    vecArith("vmslt", FuClass::intAlu),
    vecArith("vmsle", FuClass::intAlu),
    vecArith("vmsgt", FuClass::intAlu),
    vecArith("vmflt", FuClass::fpAdd, true),
    vecArith("vmfle", FuClass::fpAdd, true),
    vecArith("vmfeq", FuClass::fpAdd, true),
    // vector mask / move
    vecArith("vmand", FuClass::intAlu),
    vecArith("vmor", FuClass::intAlu),
    vecArith("vmxor", FuClass::intAlu),
    vecArith("vmnot", FuClass::intAlu),
    vecArith("vmerge", FuClass::intAlu),
    vecArith("vmv", FuClass::intAlu),
    vecArith("vid", FuClass::intAlu),
    vecArith("vmv.s.x", FuClass::intAlu),
    OpTraits{"vmv.x.s", FuClass::intAlu, true, false, false, false, true,
             false},
    vecArith("vfmv.s.f", FuClass::intAlu, true),
    OpTraits{"vfmv.f.s", FuClass::intAlu, true, false, false, false, true,
             true},
    // vector memory
    vecMem("vle", false),
    vecMem("vse", true),
    vecMem("vlse", false),
    vecMem("vsse", true),
    vecMem("vluxei", false),
    vecMem("vsuxei", true),
    // cross-element
    vecCross("vrgather", FuClass::intAlu, false),
    vecCross("vslideup", FuClass::intAlu, false),
    vecCross("vslidedown", FuClass::intAlu, false),
    vecCross("vredsum", FuClass::intAlu, false),
    vecCross("vredmax", FuClass::intAlu, false),
    vecCross("vredmin", FuClass::intAlu, false),
    vecCross("vfredsum", FuClass::fpAdd, false, true),
    vecCross("vfredmax", FuClass::fpAdd, false, true),
    vecCross("vfredmin", FuClass::fpAdd, false, true),
    vecCross("vpopc", FuClass::intAlu, true),
    vecCross("vfirst", FuClass::intAlu, true),
    // memory ordering
    OpTraits{"vmfence", FuClass::vecCtrl, true, false, false, false, false,
             false},
};

static_assert(sizeof(traitsTable) / sizeof(traitsTable[0]) ==
              static_cast<std::size_t>(Op::numOps),
              "traits table out of sync with Op enum");

} // namespace

const OpTraits &
opTraits(Op op)
{
    auto idx = static_cast<std::size_t>(op);
    bvl_assert(idx < static_cast<std::size_t>(Op::numOps),
               "bad opcode %zu", idx);
    return traitsTable[idx];
}

} // namespace bvl
