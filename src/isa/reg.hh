/**
 * @file
 * Register identifiers for the bvl IR.
 *
 * A single flat 8-bit id space covers the three architectural register
 * files: integer x0-x31, floating-point f0-f31 and vector v0-v31.
 * x0 is hard-wired to zero as in RISC-V. v0 doubles as the mask
 * register for predicated vector instructions, matching RVV 1.0.
 */

#ifndef BVL_ISA_REG_HH
#define BVL_ISA_REG_HH

#include <cstdint>
#include <string>

namespace bvl
{

/** Flat register id (see file comment for the encoding). */
using RegId = std::uint8_t;

constexpr RegId regIdInvalid = 0xff;

constexpr RegId xregBase = 0;
constexpr RegId fregBase = 32;
constexpr RegId vregBase = 64;
constexpr unsigned numXRegs = 32;
constexpr unsigned numFRegs = 32;
constexpr unsigned numVRegs = 32;

/** Integer register xN. */
constexpr RegId xreg(unsigned n) { return xregBase + n; }
/** Floating-point register fN. */
constexpr RegId freg(unsigned n) { return fregBase + n; }
/** Vector register vN. */
constexpr RegId vreg(unsigned n) { return vregBase + n; }

constexpr bool isXReg(RegId r) { return r < fregBase; }
constexpr bool isFReg(RegId r) { return r >= fregBase && r < vregBase; }
constexpr bool isVReg(RegId r)
{ return r >= vregBase && r < vregBase + numVRegs; }

/** Index within the register's own file. */
constexpr unsigned regIndex(RegId r) { return r & 31; }

/** Human-readable register name, e.g. "x5", "f0", "v12". */
inline std::string
regName(RegId r)
{
    if (r == regIdInvalid)
        return "-";
    const char *prefix = isXReg(r) ? "x" : isFReg(r) ? "f" : "v";
    return prefix + std::to_string(regIndex(r));
}

} // namespace bvl

#endif // BVL_ISA_REG_HH
