#include "isa/arch_state.hh"

#include <cmath>
#include <cstring>
#include <type_traits>

#include "sim/logging.hh"

namespace bvl
{

namespace
{

double
bitsToFp(std::uint64_t raw, unsigned ew)
{
    if (ew == 4) {
        float fv;
        std::uint32_t lo = static_cast<std::uint32_t>(raw);
        std::memcpy(&fv, &lo, 4);
        return fv;
    }
    double dv;
    std::memcpy(&dv, &raw, 8);
    return dv;
}

std::uint64_t
fpToBits(double value, unsigned ew)
{
    if (ew == 4) {
        float fv = static_cast<float>(value);
        std::uint32_t lo;
        std::memcpy(&lo, &fv, 4);
        return lo;
    }
    std::uint64_t raw;
    std::memcpy(&raw, &value, 8);
    return raw;
}

/** Binary FP op computed at the operand width. */
double
fpBinOp(Op op, double a, double b)
{
    switch (op) {
      case Op::fadd: case Op::vfadd: return a + b;
      case Op::fsub: case Op::vfsub: return a - b;
      case Op::fmul: case Op::vfmul: return a * b;
      case Op::fdiv: case Op::vfdiv: return a / b;
      case Op::fmin: case Op::vfmin: return std::fmin(a, b);
      case Op::fmax: case Op::vfmax: return std::fmax(a, b);
      default: panic("fpBinOp: bad op %s", opName(op));
    }
}

std::int64_t
intDiv(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return -1;  // RISC-V semantics
    if (a == INT64_MIN && b == -1)
        return INT64_MIN;
    return a / b;
}

std::int64_t
intRem(std::int64_t a, std::int64_t b)
{
    if (b == 0)
        return a;
    if (a == INT64_MIN && b == -1)
        return 0;
    return a % b;
}

/** Binary integer op at full 64-bit width (vector ops mask later). */
std::uint64_t
intBinOp(Op op, std::uint64_t a, std::uint64_t b)
{
    auto sa = static_cast<std::int64_t>(a);
    auto sb = static_cast<std::int64_t>(b);
    switch (op) {
      case Op::add: case Op::vadd: return a + b;
      case Op::sub: case Op::vsub: return a - b;
      case Op::and_: case Op::vand: return a & b;
      case Op::or_: case Op::vor: return a | b;
      case Op::xor_: case Op::vxor: return a ^ b;
      case Op::sll: case Op::vsll: return a << (b & 63);
      case Op::srl: case Op::vsrl: return a >> (b & 63);
      case Op::sra: case Op::vsra: return std::uint64_t(sa >> (b & 63));
      case Op::slt: return sa < sb ? 1 : 0;
      case Op::sltu: return a < b ? 1 : 0;
      case Op::mul: case Op::vmul: return a * b;
      case Op::mulh:
        return std::uint64_t((__int128(sa) * __int128(sb)) >> 64);
      case Op::div_: case Op::vdiv: return std::uint64_t(intDiv(sa, sb));
      case Op::rem: case Op::vrem: return std::uint64_t(intRem(sa, sb));
      case Op::min_: case Op::vmin: return sa < sb ? a : b;
      case Op::max_: case Op::vmax: return sa > sb ? a : b;
      default: panic("intBinOp: bad op %s", opName(op));
    }
}

/** Truncate a 64-bit value to @p ew bytes. */
std::uint64_t
truncTo(std::uint64_t v, unsigned ew)
{
    if (ew >= 8)
        return v;
    return v & ((std::uint64_t(1) << (ew * 8)) - 1);
}

/** Sign-extend the low @p ew bytes of @p v. */
std::int64_t
sext(std::uint64_t v, unsigned ew)
{
    unsigned shift = 64 - ew * 8;
    return static_cast<std::int64_t>(v << shift) >> shift;
}

/**
 * Run @p body with the element width as a compile-time constant (the
 * legal widths are 1, 2, 4 and 8; the mobile kernel tier computes on
 * int8/int16 elements, the float kernels on 4/8). The per-element
 * loops below are the functional model's hot path — fast-forward
 * executes whole vector programs through them — and a constant width
 * turns every vecGet/vecSet memcpy into a single fixed-size load or
 * store.
 */
template <typename Body>
inline void
withEw(unsigned ew, Body &&body)
{
    switch (ew) {
      case 1: body(std::integral_constant<unsigned, 1>{}); break;
      case 2: body(std::integral_constant<unsigned, 2>{}); break;
      case 4: body(std::integral_constant<unsigned, 4>{}); break;
      default: body(std::integral_constant<unsigned, 8>{}); break;
    }
}

} // namespace

ExecTrace
stepOne(ArchState &st, const Program &prog, BackingStore &mem)
{
    const Instr &in = prog.at(st.pc);
    ExecTrace tr;
    tr.inst = &in;
    tr.pc = st.pc;
    tr.nextPc = st.pc + 1;
    tr.isVec = in.isVector();
    tr.vl = st.vl;
    tr.sew = st.sew;

    auto branchTo = [&](bool taken) {
        tr.isBranch = true;
        tr.taken = taken;
        if (taken) {
            bvl_assert(in.target >= 0, "unresolved branch target in %s",
                       prog.name().c_str());
            tr.nextPc = static_cast<std::uint64_t>(in.target);
        }
    };

    /** Scalar source of a .vx/.vf/.vi vector operand form. */
    auto vecScalarSrc = [&]() -> std::uint64_t {
        switch (in.vsrc) {
          case VSrc2::vx: return st.getX(in.rs2);
          case VSrc2::vf: return st.getF(in.rs2);
          case VSrc2::vi: return static_cast<std::uint64_t>(in.imm);
          default: panic("vector op lacks scalar operand form");
        }
    };

    switch (in.op) {
      // ----- control / misc --------------------------------------------
      case Op::nop:
        break;
      case Op::halt:
        tr.halted = true;
        st.halted = true;
        break;
      case Op::li:
        st.setX(in.rd, static_cast<std::uint64_t>(in.imm));
        break;

      // ----- scalar integer --------------------------------------------
      case Op::add: case Op::sub: case Op::and_: case Op::or_:
      case Op::xor_: case Op::sll: case Op::srl: case Op::sra:
      case Op::slt: case Op::sltu: case Op::mul: case Op::mulh:
      case Op::div_: case Op::rem: case Op::min_: case Op::max_:
        st.setX(in.rd, intBinOp(in.op, st.getX(in.rs1), st.getX(in.rs2)));
        break;

      case Op::addi:
        st.setX(in.rd, st.getX(in.rs1) + std::uint64_t(in.imm));
        break;
      case Op::andi:
        st.setX(in.rd, st.getX(in.rs1) & std::uint64_t(in.imm));
        break;
      case Op::ori:
        st.setX(in.rd, st.getX(in.rs1) | std::uint64_t(in.imm));
        break;
      case Op::xori:
        st.setX(in.rd, st.getX(in.rs1) ^ std::uint64_t(in.imm));
        break;
      case Op::slli:
        st.setX(in.rd, st.getX(in.rs1) << (in.imm & 63));
        break;
      case Op::srli:
        st.setX(in.rd, st.getX(in.rs1) >> (in.imm & 63));
        break;
      case Op::srai:
        st.setX(in.rd, std::uint64_t(
            static_cast<std::int64_t>(st.getX(in.rs1)) >> (in.imm & 63)));
        break;
      case Op::slti:
        st.setX(in.rd, static_cast<std::int64_t>(st.getX(in.rs1)) < in.imm
                ? 1 : 0);
        break;

      // ----- scalar FP ---------------------------------------------------
      case Op::fadd: case Op::fsub: case Op::fmul: case Op::fdiv:
      case Op::fmin: case Op::fmax: {
        double a = bitsToFp(st.getF(in.rs1), in.ew);
        double b = bitsToFp(st.getF(in.rs2), in.ew);
        double r = fpBinOp(in.op == Op::fadd ? Op::fadd :
                           in.op == Op::fsub ? Op::fsub :
                           in.op == Op::fmul ? Op::fmul :
                           in.op == Op::fdiv ? Op::fdiv :
                           in.op == Op::fmin ? Op::fmin : Op::fmax, a, b);
        if (in.ew == 4)
            r = static_cast<float>(r);
        st.setF(in.rd, fpToBits(r, in.ew));
        break;
      }
      case Op::fsqrt: {
        double a = bitsToFp(st.getF(in.rs1), in.ew);
        st.setF(in.rd, fpToBits(std::sqrt(a), in.ew));
        break;
      }
      case Op::fneg: {
        double a = bitsToFp(st.getF(in.rs1), in.ew);
        st.setF(in.rd, fpToBits(-a, in.ew));
        break;
      }
      case Op::fabs_: {
        double a = bitsToFp(st.getF(in.rs1), in.ew);
        st.setF(in.rd, fpToBits(std::fabs(a), in.ew));
        break;
      }
      case Op::fmadd: {
        if (in.ew == 4) {
            float a = float(bitsToFp(st.getF(in.rs1), 4));
            float b = float(bitsToFp(st.getF(in.rs2), 4));
            float c = float(bitsToFp(st.getF(in.rs3), 4));
            st.setF(in.rd, fpToBits(std::fma(a, b, c), 4));
        } else {
            double a = bitsToFp(st.getF(in.rs1), 8);
            double b = bitsToFp(st.getF(in.rs2), 8);
            double c = bitsToFp(st.getF(in.rs3), 8);
            st.setF(in.rd, fpToBits(std::fma(a, b, c), 8));
        }
        break;
      }
      case Op::fcvt_f_x:
        st.setF(in.rd, fpToBits(
            double(static_cast<std::int64_t>(st.getX(in.rs1))), in.ew));
        break;
      case Op::fcvt_x_f:
        st.setX(in.rd, std::uint64_t(static_cast<std::int64_t>(
            bitsToFp(st.getF(in.rs1), in.ew))));
        break;
      case Op::fmv_f_x:
        st.setF(in.rd, st.getX(in.rs1));
        break;
      case Op::fmv_x_f:
        st.setX(in.rd, st.getF(in.rs1));
        break;
      case Op::feq:
        st.setX(in.rd, bitsToFp(st.getF(in.rs1), in.ew) ==
                       bitsToFp(st.getF(in.rs2), in.ew) ? 1 : 0);
        break;
      case Op::flt:
        st.setX(in.rd, bitsToFp(st.getF(in.rs1), in.ew) <
                       bitsToFp(st.getF(in.rs2), in.ew) ? 1 : 0);
        break;
      case Op::fle:
        st.setX(in.rd, bitsToFp(st.getF(in.rs1), in.ew) <=
                       bitsToFp(st.getF(in.rs2), in.ew) ? 1 : 0);
        break;

      // ----- scalar memory ---------------------------------------------
      case Op::load: {
        Addr addr = st.getX(in.rs1) + std::uint64_t(in.imm);
        std::uint64_t raw = mem.readInt(addr, in.ew);
        std::uint64_t value =
            in.sign && !isFReg(in.rd) ? std::uint64_t(sext(raw, in.ew))
                                      : raw;
        if (isFReg(in.rd))
            st.setF(in.rd, raw);
        else
            st.setX(in.rd, value);
        tr.isMem = true;
        tr.addr = addr;
        tr.size = in.ew;
        break;
      }
      case Op::store: {
        Addr addr = st.getX(in.rs1) + std::uint64_t(in.imm);
        std::uint64_t value = st.getScalar(in.rs2);
        mem.writeInt(addr, value, in.ew);
        tr.isMem = true;
        tr.isStore = true;
        tr.addr = addr;
        tr.size = in.ew;
        break;
      }

      // ----- branches ----------------------------------------------------
      case Op::beq:
        branchTo(st.getX(in.rs1) == st.getX(in.rs2));
        break;
      case Op::bne:
        branchTo(st.getX(in.rs1) != st.getX(in.rs2));
        break;
      case Op::blt:
        branchTo(static_cast<std::int64_t>(st.getX(in.rs1)) <
                 static_cast<std::int64_t>(st.getX(in.rs2)));
        break;
      case Op::bge:
        branchTo(static_cast<std::int64_t>(st.getX(in.rs1)) >=
                 static_cast<std::int64_t>(st.getX(in.rs2)));
        break;
      case Op::bltu:
        branchTo(st.getX(in.rs1) < st.getX(in.rs2));
        break;
      case Op::bgeu:
        branchTo(st.getX(in.rs1) >= st.getX(in.rs2));
        break;
      case Op::jump:
        branchTo(true);
        break;

      // ----- vector configuration ----------------------------------------
      case Op::vsetvli: {
        unsigned new_sew = in.ew;
        std::uint64_t avl = in.rs1 == regIdInvalid ? st.vlmax(new_sew)
                                                   : st.getX(in.rs1);
        std::uint32_t new_vl = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(avl, st.vlmax(new_sew)));
        st.sew = static_cast<std::uint8_t>(new_sew);
        st.vl = new_vl;
        st.setX(in.rd, new_vl);
        tr.vl = new_vl;
        tr.sew = st.sew;
        break;
      }

      // ----- vector integer arithmetic ------------------------------------
      case Op::vadd: case Op::vsub: case Op::vmul: case Op::vdiv:
      case Op::vrem: case Op::vmin: case Op::vmax: case Op::vand:
      case Op::vor: case Op::vxor: case Op::vsll: case Op::vsrl:
      case Op::vsra: {
        bool vv = in.vsrc == VSrc2::vv;
        std::uint64_t sb = vv ? 0 : vecScalarSrc();
        withEw(st.sew, [&](auto ewc) {
            constexpr unsigned ew = decltype(ewc)::value;
            for (unsigned i = 0; i < st.vl; ++i) {
                if (!st.active(in, i))
                    continue;
                auto a = std::uint64_t(st.vecGetS(in.rs1, i, ew));
                std::uint64_t b =
                    vv ? std::uint64_t(st.vecGetS(in.rs2, i, ew)) : sb;
                st.vecSet(in.rd, i, ew,
                          truncTo(intBinOp(in.op, a, b), ew));
            }
        });
        break;
      }

      // ----- vector width conversion ---------------------------------------
      case Op::vzext2: case Op::vsext2: {
        // vd[i] (2*ew) = extend(vs1[i] (ew)). Source elements are read
        // into a buffer first: vd may alias vs1, and a dest element
        // overlaps two narrower source elements.
        unsigned sw = in.ew;
        unsigned dw = 2 * sw;
        bool sign = in.op == Op::vsext2;
        std::vector<std::uint64_t> src(st.vl, 0);
        for (unsigned i = 0; i < st.vl; ++i)
            src[i] = sign ? std::uint64_t(st.vecGetS(in.rs1, i, sw))
                          : st.vecGet(in.rs1, i, sw);
        for (unsigned i = 0; i < st.vl; ++i)
            if (st.active(in, i))
                st.vecSet(in.rd, i, dw, truncTo(src[i], dw));
        break;
      }
      case Op::vnclip2: {
        // vd[i] (ew) = saturate(sext(vs1[i] (2*ew)) >> imm); Instr::sign
        // selects signed (vnclip) or unsigned (vnclipu) saturation.
        unsigned dw = in.ew;
        unsigned sw = 2 * dw;
        unsigned shamt = static_cast<unsigned>(in.imm) & 63;
        std::int64_t lo = in.sign ? -(std::int64_t(1) << (8 * dw - 1)) : 0;
        std::int64_t hi = in.sign ? (std::int64_t(1) << (8 * dw - 1)) - 1
                                  : (std::int64_t(1) << (8 * dw)) - 1;
        std::vector<std::int64_t> src(st.vl, 0);
        for (unsigned i = 0; i < st.vl; ++i)
            src[i] = st.vecGetS(in.rs1, i, sw) >> shamt;
        for (unsigned i = 0; i < st.vl; ++i)
            if (st.active(in, i))
                st.vecSet(in.rd, i, dw, truncTo(
                    std::uint64_t(std::min(hi, std::max(lo, src[i]))), dw));
        break;
      }

      // ----- vector FP -----------------------------------------------------
      case Op::vfadd: case Op::vfsub: case Op::vfmul: case Op::vfdiv:
      case Op::vfmin: case Op::vfmax: {
        bool vv = in.vsrc == VSrc2::vv;
        double sb = vv ? 0.0 : bitsToFp(vecScalarSrc(), st.sew);
        withEw(st.sew, [&](auto ewc) {
            constexpr unsigned ew = decltype(ewc)::value;
            for (unsigned i = 0; i < st.vl; ++i) {
                if (!st.active(in, i))
                    continue;
                double a = bitsToFp(st.vecGet(in.rs1, i, ew), ew);
                double b =
                    vv ? bitsToFp(st.vecGet(in.rs2, i, ew), ew) : sb;
                double r = fpBinOp(in.op, a, b);
                if (ew == 4)
                    r = static_cast<float>(r);
                st.vecSet(in.rd, i, ew, fpToBits(r, ew));
            }
        });
        break;
      }
      case Op::vfsqrt: {
        unsigned ew = st.sew;
        for (unsigned i = 0; i < st.vl; ++i) {
            if (!st.active(in, i))
                continue;
            double a = bitsToFp(st.vecGet(in.rs1, i, ew), ew);
            st.vecSet(in.rd, i, ew, fpToBits(std::sqrt(a), ew));
        }
        break;
      }
      case Op::vfmacc: case Op::vfnmsac: {
        bool vv = in.vsrc == VSrc2::vv;
        bool macc = in.op == Op::vfmacc;
        double sb = vv ? 0.0 : bitsToFp(vecScalarSrc(), st.sew);
        withEw(st.sew, [&](auto ewc) {
            constexpr unsigned ew = decltype(ewc)::value;
            for (unsigned i = 0; i < st.vl; ++i) {
                if (!st.active(in, i))
                    continue;
                double a = bitsToFp(st.vecGet(in.rs1, i, ew), ew);
                double b =
                    vv ? bitsToFp(st.vecGet(in.rs2, i, ew), ew) : sb;
                double acc = bitsToFp(st.vecGet(in.rd, i, ew), ew);
                double r = macc ? acc + a * b : acc - a * b;
                if (ew == 4)
                    r = static_cast<float>(r);
                st.vecSet(in.rd, i, ew, fpToBits(r, ew));
            }
        });
        break;
      }

      // ----- vector compares (results into mask layout of vd) -------------
      case Op::vmseq: case Op::vmsne: case Op::vmslt: case Op::vmsle:
      case Op::vmsgt: {
        unsigned ew = st.sew;
        for (unsigned i = 0; i < st.vl; ++i) {
            if (!st.active(in, i))
                continue;
            std::int64_t a = st.vecGetS(in.rs1, i, ew);
            std::int64_t b = in.vsrc == VSrc2::vv
                ? st.vecGetS(in.rs2, i, ew)
                : sext(vecScalarSrc(), 8);
            bool r = in.op == Op::vmseq ? a == b :
                     in.op == Op::vmsne ? a != b :
                     in.op == Op::vmslt ? a < b :
                     in.op == Op::vmsle ? a <= b : a > b;
            st.setMaskBit(in.rd, i, r);
        }
        break;
      }
      case Op::vmflt: case Op::vmfle: case Op::vmfeq: {
        unsigned ew = st.sew;
        for (unsigned i = 0; i < st.vl; ++i) {
            if (!st.active(in, i))
                continue;
            double a = bitsToFp(st.vecGet(in.rs1, i, ew), ew);
            double b = in.vsrc == VSrc2::vv
                ? bitsToFp(st.vecGet(in.rs2, i, ew), ew)
                : bitsToFp(vecScalarSrc(), ew);
            bool r = in.op == Op::vmflt ? a < b :
                     in.op == Op::vmfle ? a <= b : a == b;
            st.setMaskBit(in.rd, i, r);
        }
        break;
      }

      // ----- mask logical ---------------------------------------------------
      case Op::vmand: case Op::vmor: case Op::vmxor: case Op::vmnot: {
        for (unsigned i = 0; i < st.vl; ++i) {
            bool a = st.maskBit(in.rs1, i);
            bool b = in.rs2 != regIdInvalid && st.maskBit(in.rs2, i);
            bool r = in.op == Op::vmand ? (a && b) :
                     in.op == Op::vmor ? (a || b) :
                     in.op == Op::vmxor ? (a != b) : !a;
            st.setMaskBit(in.rd, i, r);
        }
        break;
      }

      // ----- vector moves / merge / id --------------------------------------
      case Op::vmerge: {
        // vv: vd[i] = v0[i] ? vs1[i] : vs2[i]
        // vx/vf/vi: vd[i] = v0[i] ? scalar(rs1) : vs2[i]
        unsigned ew = st.sew;
        for (unsigned i = 0; i < st.vl; ++i) {
            std::uint64_t tval;
            switch (in.vsrc) {
              case VSrc2::vv: tval = st.vecGet(in.rs1, i, ew); break;
              case VSrc2::vx: tval = truncTo(st.getX(in.rs1), ew); break;
              case VSrc2::vf: tval = truncTo(st.getF(in.rs1), ew); break;
              default:
                tval = truncTo(std::uint64_t(in.imm), ew);
                break;
            }
            std::uint64_t fval = st.vecGet(in.rs2, i, ew);
            st.vecSet(in.rd, i, ew,
                      st.maskBit(vreg(0), i) ? tval : fval);
        }
        break;
      }
      case Op::vmv: {
        unsigned ew = st.sew;
        for (unsigned i = 0; i < st.vl; ++i) {
            if (!st.active(in, i))
                continue;
            std::uint64_t value = in.vsrc == VSrc2::vv
                ? st.vecGet(in.rs1, i, ew)
                : truncTo(vecScalarSrc(), ew);
            st.vecSet(in.rd, i, ew, value);
        }
        break;
      }
      case Op::vid: {
        unsigned ew = st.sew;
        for (unsigned i = 0; i < st.vl; ++i) {
            if (!st.active(in, i))
                continue;
            st.vecSet(in.rd, i, ew, i);
        }
        break;
      }
      case Op::vmv_s_x:
        if (st.vl > 0)
            st.vecSet(in.rd, 0, st.sew, truncTo(st.getX(in.rs1), st.sew));
        break;
      case Op::vmv_x_s:
        st.setX(in.rd, std::uint64_t(st.vecGetS(in.rs1, 0, st.sew)));
        break;
      case Op::vfmv_s_f:
        if (st.vl > 0)
            st.vecSet(in.rd, 0, st.sew, truncTo(st.getF(in.rs1), st.sew));
        break;
      case Op::vfmv_f_s:
        st.setF(in.rd, st.vecGet(in.rs1, 0, st.sew));
        break;

      // ----- vector memory ----------------------------------------------------
      case Op::vle: case Op::vlse: case Op::vluxei: {
        unsigned ew = in.ew;
        Addr base = st.getX(in.rs1);
        tr.elemAddrs.reserve(st.vl);
        if (in.op == Op::vle && !in.masked) {
            // Unit-stride unmasked: the destination elements are
            // contiguous bytes, so one block read replaces vl
            // element-granular loads. The element addresses are still
            // recorded individually — the VMU timing model and the
            // cache-warming pass consume them per element.
            mem.read(base, st.vecData(in.rd), std::size_t(st.vl) * ew);
            for (unsigned i = 0; i < st.vl; ++i)
                tr.elemAddrs.push_back(base + Addr(ew) * i);
        } else {
            std::int64_t stride = in.op == Op::vlse
                ? static_cast<std::int64_t>(st.getX(in.rs2)) : ew;
            for (unsigned i = 0; i < st.vl; ++i) {
                if (!st.active(in, i))
                    continue;
                Addr addr = in.op == Op::vluxei
                    ? base + st.vecGet(in.rs2, i, ew)
                    : base + Addr(stride) * i;
                st.vecSet(in.rd, i, ew, mem.readInt(addr, ew));
                tr.elemAddrs.push_back(addr);
            }
        }
        tr.isMem = true;
        tr.size = static_cast<std::uint8_t>(ew);
        break;
      }
      case Op::vse: case Op::vsse: case Op::vsuxei: {
        unsigned ew = in.ew;
        Addr base = st.getX(in.rs1);
        RegId data = in.op == Op::vse ? in.rs2 : in.rs3;
        tr.elemAddrs.reserve(st.vl);
        if (in.op == Op::vse && !in.masked) {
            mem.write(base, st.vecData(data), std::size_t(st.vl) * ew);
            for (unsigned i = 0; i < st.vl; ++i)
                tr.elemAddrs.push_back(base + Addr(ew) * i);
        } else {
            std::int64_t stride = in.op == Op::vsse
                ? static_cast<std::int64_t>(st.getX(in.rs2)) : ew;
            for (unsigned i = 0; i < st.vl; ++i) {
                if (!st.active(in, i))
                    continue;
                Addr addr = in.op == Op::vsuxei
                    ? base + st.vecGet(in.rs2, i, ew)
                    : base + Addr(stride) * i;
                mem.writeInt(addr, st.vecGet(data, i, ew), ew);
                tr.elemAddrs.push_back(addr);
            }
        }
        tr.isMem = true;
        tr.isStore = true;
        tr.size = static_cast<std::uint8_t>(ew);
        break;
      }

      // ----- cross-element -----------------------------------------------------
      case Op::vrgather: {
        unsigned ew = st.sew;
        std::vector<std::uint64_t> result(st.vl, 0);
        for (unsigned i = 0; i < st.vl; ++i) {
            std::uint64_t idx = st.vecGet(in.rs1, i, ew);
            result[i] = idx < st.vlmax(ew) ? st.vecGet(in.rs2, idx, ew) : 0;
        }
        for (unsigned i = 0; i < st.vl; ++i)
            if (st.active(in, i))
                st.vecSet(in.rd, i, ew, result[i]);
        break;
      }
      case Op::vslideup: {
        unsigned ew = st.sew;
        unsigned offset = static_cast<unsigned>(in.imm);
        std::vector<std::uint64_t> result(st.vl, 0);
        for (unsigned i = offset; i < st.vl; ++i)
            result[i] = st.vecGet(in.rs1, i - offset, ew);
        for (unsigned i = offset; i < st.vl; ++i)
            if (st.active(in, i))
                st.vecSet(in.rd, i, ew, result[i]);
        break;
      }
      case Op::vslidedown: {
        unsigned ew = st.sew;
        unsigned offset = static_cast<unsigned>(in.imm);
        std::vector<std::uint64_t> result(st.vl, 0);
        for (unsigned i = 0; i < st.vl; ++i) {
            unsigned src = i + offset;
            result[i] = src < st.vlmax(ew) ? st.vecGet(in.rs1, src, ew) : 0;
        }
        for (unsigned i = 0; i < st.vl; ++i)
            if (st.active(in, i))
                st.vecSet(in.rd, i, ew, result[i]);
        break;
      }
      case Op::vredsum: case Op::vredmax: case Op::vredmin: {
        unsigned ew = st.sew;
        std::int64_t acc = in.rs1 != regIdInvalid
            ? st.vecGetS(in.rs1, 0, ew)
            : (in.op == Op::vredsum ? 0 :
               in.op == Op::vredmax ? INT64_MIN : INT64_MAX);
        for (unsigned i = 0; i < st.vl; ++i) {
            if (!st.active(in, i))
                continue;
            std::int64_t e = st.vecGetS(in.rs2, i, ew);
            acc = in.op == Op::vredsum ? acc + e :
                  in.op == Op::vredmax ? std::max(acc, e)
                                       : std::min(acc, e);
        }
        st.vecSet(in.rd, 0, ew, truncTo(std::uint64_t(acc), ew));
        break;
      }
      case Op::vfredsum: case Op::vfredmax: case Op::vfredmin: {
        unsigned ew = st.sew;
        double acc = in.rs1 != regIdInvalid
            ? bitsToFp(st.vecGet(in.rs1, 0, ew), ew)
            : (in.op == Op::vfredsum ? 0.0 :
               in.op == Op::vfredmax ? -INFINITY : INFINITY);
        for (unsigned i = 0; i < st.vl; ++i) {
            if (!st.active(in, i))
                continue;
            double e = bitsToFp(st.vecGet(in.rs2, i, ew), ew);
            acc = in.op == Op::vfredsum ? acc + e :
                  in.op == Op::vfredmax ? std::fmax(acc, e)
                                        : std::fmin(acc, e);
            if (ew == 4)
                acc = static_cast<float>(acc);
        }
        st.vecSet(in.rd, 0, ew, fpToBits(acc, ew));
        break;
      }
      case Op::vpopc: {
        std::uint64_t count = 0;
        for (unsigned i = 0; i < st.vl; ++i)
            if (st.maskBit(in.rs1, i) && st.active(in, i))
                ++count;
        st.setX(in.rd, count);
        break;
      }
      case Op::vfirst: {
        std::int64_t first = -1;
        for (unsigned i = 0; i < st.vl; ++i) {
            if (st.maskBit(in.rs1, i) && st.active(in, i)) {
                first = i;
                break;
            }
        }
        st.setX(in.rd, std::uint64_t(first));
        break;
      }

      case Op::vmfence:
        break;

      case Op::numOps:
        panic("executed numOps sentinel");
    }

    st.pc = tr.nextPc;
    return tr;
}

std::uint64_t
runFunctional(ArchState &state, const Program &prog, BackingStore &mem,
              std::uint64_t maxSteps)
{
    std::uint64_t steps = 0;
    while (!state.halted && state.pc < prog.size() && steps < maxSteps) {
        stepOne(state, prog, mem);
        ++steps;
    }
    return steps;
}

} // namespace bvl
