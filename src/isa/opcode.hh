/**
 * @file
 * Operations of the bvl IR: an RV64-flavoured scalar set plus a
 * RISC-V Vector Extension (RVV 1.0) subset covering everything the
 * paper's workloads need: unit-stride / constant-stride / indexed
 * vector memory, integer and floating-point arithmetic including FMA
 * and division, mask-producing compares, merges, cross-element
 * permutation (vrgather, slides) and reductions, plus vsetvli and the
 * paper's vmfence.
 */

#ifndef BVL_ISA_OPCODE_HH
#define BVL_ISA_OPCODE_HH

#include <cstdint>

namespace bvl
{

enum class Op : std::uint8_t
{
    // --- scalar control / misc ---
    nop,
    halt,        ///< terminate the program
    li,          ///< rd = imm (64-bit immediate)

    // --- scalar integer ---
    add, sub, and_, or_, xor_, sll, srl, sra, slt, sltu,
    addi, andi, ori, xori, slli, srli, srai, slti,
    mul, mulh, div_, rem,
    min_, max_,  ///< convenience (RV Zbb-style)

    // --- scalar floating point (element width from Instr::ew) ---
    fadd, fsub, fmul, fdiv, fsqrt, fmin, fmax, fmadd,
    fneg, fabs_,
    fcvt_f_x,    ///< rd(f) = (fp) rs1(x)
    fcvt_x_f,    ///< rd(x) = (int) rs1(f), truncating
    fmv_f_x,     ///< move raw bits x -> f
    fmv_x_f,     ///< move raw bits f -> x
    feq, flt, fle,   ///< rd(x) = compare(rs1(f), rs2(f))

    // --- scalar memory (width from Instr::ew, sign from Instr::flag) ---
    load,        ///< rd = mem[rs1 + imm]
    store,       ///< mem[rs1 + imm] = rs2

    // --- control flow (target index in Instr::target) ---
    beq, bne, blt, bge, bltu, bgeu,
    jump,

    // --- vector configuration ---
    vsetvli,     ///< rd(x) = vl = min(rs1(x), VLMAX(ew))

    // --- vector integer arithmetic ---
    vadd, vsub, vmul, vdiv, vrem, vmin, vmax,
    vand, vor, vxor, vsll, vsrl, vsra,

    // --- vector width conversion (source/dest width from Instr::ew) ---
    vzext2,      ///< vd[i] (2*ew) = zext(vs1[i] (ew))
    vsext2,      ///< vd[i] (2*ew) = sext(vs1[i] (ew))
    vnclip2,     ///< vd[i] (ew) = sat(sext(vs1[i] (2*ew)) >> imm)

    // --- vector floating point ---
    vfadd, vfsub, vfmul, vfdiv, vfsqrt, vfmin, vfmax,
    vfmacc,      ///< vd += vs1 * vs2 (fused multiply-add)
    vfnmsac,     ///< vd -= vs1 * vs2

    // --- vector compares (write mask layout into vd) ---
    vmseq, vmsne, vmslt, vmsle, vmsgt,
    vmflt, vmfle, vmfeq,

    // --- vector mask / move ---
    vmand, vmor, vmxor, vmnot,
    vmerge,      ///< vd[i] = mask[i] ? vs1[i] : vs2[i]
    vmv,         ///< vd = vs1 (or splat of scalar for .vx/.vf)
    vid,         ///< vd[i] = i
    vmv_s_x,     ///< vd[0] = rs1(x)
    vmv_x_s,     ///< rd(x) = vs2[0]
    vfmv_s_f,    ///< vd[0] = rs1(f)
    vfmv_f_s,    ///< rd(f) = vs2[0]

    // --- vector memory ---
    vle,         ///< unit-stride load, base rs1
    vse,         ///< unit-stride store, base rs1
    vlse,        ///< strided load, base rs1, byte stride in rs2(x)
    vsse,        ///< strided store
    vluxei,      ///< indexed load, base rs1, byte indices in vs2
    vsuxei,      ///< indexed store

    // --- cross-element ---
    vrgather,    ///< vd[i] = vs2[vs1[i]]
    vslideup,    ///< vd[i+imm] = vs2[i]
    vslidedown,  ///< vd[i] = vs2[i+imm]
    vredsum, vredmax, vredmin,
    vfredsum, vfredmax, vfredmin,
    vpopc,       ///< rd(x) = popcount(mask vs2)
    vfirst,      ///< rd(x) = index of first set mask bit, -1 if none

    // --- memory ordering ---
    vmfence,     ///< scalar/vector memory fence (paper Section III-B)

    numOps
};

/** Functional-unit class an operation executes on. */
enum class FuClass : std::uint8_t
{
    nop,      ///< zero-latency bookkeeping (li, halt, jumps resolve early)
    intAlu,   ///< 1-cycle integer
    intMul,   ///< pipelined multiplier
    intDiv,   ///< iterative divider (unpipelined)
    fpAdd,    ///< FP add/sub/convert/compare
    fpMul,    ///< FP multiply / FMA
    fpDiv,    ///< FP divide / sqrt (unpipelined)
    mem,      ///< load/store port
    branch,   ///< branch resolution
    vecCtrl,  ///< vsetvli / vmfence, handled by the VCU
};

/** Addressing/operand form of the second source of a vector op. */
enum class VSrc2 : std::uint8_t
{
    none,
    vv,   ///< vector-vector
    vx,   ///< vector-scalar(x)
    vf,   ///< vector-scalar(f)
    vi,   ///< vector-immediate
};

/** Static properties of an Op. */
struct OpTraits
{
    const char *mnemonic;
    FuClass fu;
    bool isVector;     ///< any v* instruction (dispatches to an engine)
    bool isVecMem;     ///< vector load/store
    bool isVecStore;   ///< vector store
    bool isCrossElem;  ///< needs the VXU (permutation / reduction)
    bool writesScalar; ///< vector op producing a scalar (x/f) result
    bool isFp;         ///< floating-point datapath
};

/** Look up static traits (table in opcode.cc). */
const OpTraits &opTraits(Op op);

inline const char *opName(Op op) { return opTraits(op).mnemonic; }

} // namespace bvl

#endif // BVL_ISA_OPCODE_HH
