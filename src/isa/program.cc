#include "isa/program.hh"

#include <sstream>

namespace bvl
{

std::string
Instr::toString() const
{
    std::ostringstream os;
    os << opName(op);
    if (rd != regIdInvalid)
        os << " " << regName(rd);
    if (rs1 != regIdInvalid)
        os << ", " << regName(rs1);
    if (rs2 != regIdInvalid)
        os << ", " << regName(rs2);
    if (rs3 != regIdInvalid)
        os << ", " << regName(rs3);
    if (imm != 0 || op == Op::li)
        os << ", #" << imm;
    if (target >= 0)
        os << " -> @" << target;
    if (masked)
        os << " [v0.t]";
    return os.str();
}

std::string
Program::toString() const
{
    std::ostringstream os;
    os << _name << " (" << code.size() << " insts):\n";
    for (std::size_t i = 0; i < code.size(); ++i)
        os << "  @" << i << ": " << code[i].toString() << "\n";
    return os.str();
}

} // namespace bvl
