/**
 * @file
 * Architectural state and the functional executor.
 *
 * One ArchState exists per hardware thread context. The functional
 * executor steps one instruction at a time against an ArchState and
 * the shared BackingStore, returning an ExecTrace that carries
 * everything the timing models need (branch outcome, memory addresses,
 * vector length in effect). Timing models never re-execute semantics;
 * they only schedule the already-known effects.
 */

#ifndef BVL_ISA_ARCH_STATE_HH
#define BVL_ISA_ARCH_STATE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "isa/instr.hh"
#include "isa/program.hh"
#include "isa/reg.hh"
#include "mem/backing_store.hh"
#include "sim/types.hh"

namespace bvl
{

/** Maximum supported hardware vector length (the 1bDV's 2048 bits). */
constexpr unsigned maxVlenBits = 2048;
constexpr unsigned maxVlenBytes = maxVlenBits / 8;

/** Everything the timing model needs to know about one executed instr. */
struct ExecTrace
{
    const Instr *inst = nullptr;
    std::uint64_t pc = 0;        ///< index of the executed instruction
    std::uint64_t nextPc = 0;

    bool isBranch = false;
    bool taken = false;

    bool isMem = false;          ///< scalar memory access
    bool isStore = false;
    Addr addr = 0;
    std::uint8_t size = 0;

    bool isVec = false;
    std::uint32_t vl = 0;        ///< vector length in effect
    std::uint8_t sew = 0;        ///< element width in bytes in effect
    /** Per-active-element byte addresses of a vector memory access. */
    std::vector<Addr> elemAddrs;

    bool halted = false;
};

/** Architectural register + vector state of one hardware thread. */
class ArchState
{
  public:
    /** @param vlen_bits hardware vector length of the owning system. */
    explicit ArchState(unsigned vlen_bits = 512)
    {
        setVlenBits(vlen_bits);
        reset();
    }

    void
    reset()
    {
        x.fill(0);
        f.fill(0);
        for (auto &r : v)
            r.fill(0);
        pc = 0;
        vl = 0;
        sew = 4;
        halted = false;
    }

    void
    setVlenBits(unsigned bits)
    {
        bvl_assert(bits > 0 && bits <= maxVlenBits && bits % 64 == 0,
                   "unsupported VLEN %u", bits);
        _vlenb = bits / 8;
    }

    /** Hardware vector length in bytes. */
    unsigned vlenb() const { return _vlenb; }
    /** Maximum vl for the given element width. */
    unsigned vlmax(unsigned ew) const { return _vlenb / ew; }

    // --- scalar registers ---------------------------------------------

    std::uint64_t
    getX(RegId r) const
    {
        if (r == regIdInvalid || regIndex(r) == 0)
            return 0;
        return x[regIndex(r)];
    }

    void
    setX(RegId r, std::uint64_t value)
    {
        if (regIndex(r) != 0)
            x[regIndex(r)] = value;
    }

    std::uint64_t getF(RegId r) const { return f[regIndex(r)]; }
    void setF(RegId r, std::uint64_t raw) { f[regIndex(r)] = raw; }

    /** Read rs as the right file based on its id. */
    std::uint64_t
    getScalar(RegId r) const
    {
        return isFReg(r) ? getF(r) : getX(r);
    }

    // --- vector registers ---------------------------------------------

    /** Zero-extended element @p i of vector register @p r. */
    std::uint64_t
    vecGet(RegId r, unsigned i, unsigned ew) const
    {
        std::uint64_t value = 0;
        const auto &reg = v[regIndex(r)];
        bvl_assert((i + 1) * ew <= maxVlenBytes, "element out of range");
        std::memcpy(&value, reg.data() + i * ew, ew);
        return value;
    }

    /** Sign-extended element read. */
    std::int64_t
    vecGetS(RegId r, unsigned i, unsigned ew) const
    {
        std::uint64_t u = vecGet(r, i, ew);
        unsigned shift = 64 - ew * 8;
        return static_cast<std::int64_t>(u << shift) >> shift;
    }

    void
    vecSet(RegId r, unsigned i, unsigned ew, std::uint64_t value)
    {
        auto &reg = v[regIndex(r)];
        bvl_assert((i + 1) * ew <= maxVlenBytes, "element out of range");
        std::memcpy(reg.data() + i * ew, &value, ew);
    }

    /** Mask bit @p i of vector register @p r (RVV mask layout). */
    bool
    maskBit(RegId r, unsigned i) const
    {
        return (v[regIndex(r)][i / 8] >> (i % 8)) & 1;
    }

    void
    setMaskBit(RegId r, unsigned i, bool bit)
    {
        auto &byte = v[regIndex(r)][i / 8];
        if (bit)
            byte |= (1u << (i % 8));
        else
            byte &= ~(1u << (i % 8));
    }

    /** Active-element predicate for a (possibly) masked instruction. */
    bool
    active(const Instr &inst, unsigned i) const
    {
        return !inst.masked || maskBit(vreg(0), i);
    }

    /** Raw bytes of a vector register (for tests). */
    const std::array<std::uint8_t, maxVlenBytes> &
    vecRaw(RegId r) const
    {
        return v[regIndex(r)];
    }

    /** Mutable raw bytes; elements are contiguous at width ew, so
     *  unit-stride vector memory moves whole [0, vl*ew) spans. */
    std::uint8_t *vecData(RegId r) { return v[regIndex(r)].data(); }

    // --- checkpoint serialization (DESIGN.md §15) ----------------------

    /** Bytes dumpState() appends: x, f, v, pc, vl, sew, halted. */
    static constexpr std::size_t dumpedBytes =
        numXRegs * 8 + numFRegs * 8 + numVRegs * maxVlenBytes + 8 + 4 +
        1 + 1;

    /** Append a fixed-layout little-endian snapshot of every
     *  architectural register to @p out. */
    void
    dumpState(std::string &out) const
    {
        auto put = [&](const void *p, std::size_t n) {
            out.append(static_cast<const char *>(p), n);
        };
        put(x.data(), numXRegs * 8);
        put(f.data(), numFRegs * 8);
        for (const auto &reg : v)
            put(reg.data(), maxVlenBytes);
        put(&pc, 8);
        put(&vl, 4);
        put(&sew, 1);
        std::uint8_t h = halted ? 1 : 0;
        put(&h, 1);
    }

    /** Inverse of dumpState(); @p len must be exactly dumpedBytes. */
    bool
    loadState(const char *data, std::size_t len)
    {
        if (len != dumpedBytes)
            return false;
        auto get = [&](void *p, std::size_t n) {
            std::memcpy(p, data, n);
            data += n;
        };
        get(x.data(), numXRegs * 8);
        get(f.data(), numFRegs * 8);
        for (auto &reg : v)
            get(reg.data(), maxVlenBytes);
        get(&pc, 8);
        get(&vl, 4);
        get(&sew, 1);
        std::uint8_t h = 0;
        get(&h, 1);
        halted = h != 0;
        return true;
    }

    // --- public architectural state ------------------------------------

    std::uint64_t pc = 0;
    std::uint32_t vl = 0;
    std::uint8_t sew = 4;
    bool halted = false;

  private:
    std::array<std::uint64_t, numXRegs> x{};
    std::array<std::uint64_t, numFRegs> f{};
    std::array<std::array<std::uint8_t, maxVlenBytes>, numVRegs> v{};
    unsigned _vlenb = 64;
};

/**
 * Functionally execute the instruction at @p state.pc of @p prog,
 * updating @p state and @p mem, and return the trace.
 */
ExecTrace stepOne(ArchState &state, const Program &prog,
                  BackingStore &mem);

/**
 * Run a program functionally to completion (no timing), up to
 * @p maxSteps dynamic instructions.
 * @return number of dynamic instructions executed.
 */
std::uint64_t runFunctional(ArchState &state, const Program &prog,
                            BackingStore &mem,
                            std::uint64_t maxSteps = 1ull << 32);

} // namespace bvl

#endif // BVL_ISA_ARCH_STATE_HH
