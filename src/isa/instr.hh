/**
 * @file
 * Static (decoded) instruction representation.
 *
 * Programs are sequences of Instr; the "PC" is simply an index into
 * the sequence, and branch targets are resolved indices. This keeps
 * the front ends honest about fetch traffic (each Instr occupies four
 * bytes of simulated instruction memory) without dragging in a binary
 * encoder/decoder that the evaluation does not need.
 */

#ifndef BVL_ISA_INSTR_HH
#define BVL_ISA_INSTR_HH

#include <cstdint>
#include <string>

#include "isa/opcode.hh"
#include "isa/reg.hh"

namespace bvl
{

/** Size of one encoded instruction in simulated memory (bytes). */
constexpr unsigned instBytes = 4;

struct Instr
{
    Op op = Op::nop;
    RegId rd = regIdInvalid;
    RegId rs1 = regIdInvalid;
    RegId rs2 = regIdInvalid;
    RegId rs3 = regIdInvalid;  ///< third source (FMA accumulator input)
    std::int64_t imm = 0;

    /**
     * Element width in bytes: scalar FP/memory operand width, or the
     * SEW requested by vsetvli, or the element width of a vector
     * memory access.
     */
    std::uint8_t ew = 8;

    /** Sign-extend loaded value (scalar load only). */
    bool sign = true;

    /** Vector instruction is predicated by mask register v0. */
    bool masked = false;

    /** Operand form of a vector instruction's scalar source. */
    VSrc2 vsrc = VSrc2::none;

    /** Resolved branch/jump target (instruction index), -1 if none. */
    std::int32_t target = -1;

    const OpTraits &traits() const { return opTraits(op); }

    bool isVector() const { return traits().isVector; }
    bool isVecMem() const { return traits().isVecMem; }
    bool isBranch() const
    { return traits().fu == FuClass::branch; }
    bool isMem() const
    { return op == Op::load || op == Op::store || traits().isVecMem; }

    /** Disassembly for debugging and test failure messages. */
    std::string toString() const;
};

} // namespace bvl

#endif // BVL_ISA_INSTR_HH
