/**
 * @file
 * Front-end fetch line buffer with next-line prefetch.
 *
 * Holds a small window of instruction-cache lines that have completed
 * their L1I access. A demand request for a new line also prefetches
 * the sequential next line, modelling a pipelined front end: straight-
 * line code streams at full fetch width, while taken branches to cold
 * lines pay the L1I (or miss) latency.
 */

#ifndef BVL_CPU_FETCH_BUFFER_HH
#define BVL_CPU_FETCH_BUFFER_HH

#include <deque>
#include <unordered_set>

#include "mem/mem_system.hh"
#include "sim/clock_domain.hh"
#include "sim/stats.hh"

namespace bvl
{

class FetchBuffer
{
  public:
    FetchBuffer(MemSystem &mem, unsigned coreId, StatGroup &stats,
                std::string statPrefix, unsigned capacity = 8,
                unsigned prefetchDepth = 3)
        : mem(mem), coreId(coreId), stats(stats),
          prefix(std::move(statPrefix)),
          sLineReqs(stats.handle(prefix + "fetchLineReqs")),
          sPrefetches(stats.handle(prefix + "fetchPrefetches")),
          capacity(capacity), prefetchDepth(prefetchDepth)
    {}

    /**
     * True if the line containing @p addr is in the buffer. If not,
     * issues a demand fetch (plus a next-line prefetch) and arranges
     * for @p waker (when non-null) to be re-activated when the demand
     * line arrives. A Clocked pointer rather than a callable: both
     * cores wake the same way, and the completion closure stays a
     * fixed 24-byte capture.
     */
    bool
    lineReady(Addr addr, Clocked *waker)
    {
        Addr line = lineOf(addr);
        if (ready.count(line)) {
            for (unsigned d = 1; d <= prefetchDepth; ++d)
                prefetch(line + d);
            return true;
        }
        if (!pending.count(line)) {
            sLineReqs++;
            request(line, waker);
            for (unsigned d = 1; d <= prefetchDepth; ++d)
                prefetch(line + d);
        }
        return false;
    }

    void
    reset()
    {
        ready.clear();
        readyOrder.clear();
        // Pending requests may still complete; their callbacks tolerate
        // a reset because they only insert into the (cleared) sets.
        pending.clear();
    }

  private:
    void
    prefetch(Addr line)
    {
        if (ready.count(line) || pending.count(line))
            return;
        sPrefetches++;
        request(line, nullptr);
    }

    void
    request(Addr line, Clocked *waker)
    {
        pending.insert(line);
        mem.fetchInst(coreId, line << lineShift, [this, line, waker] {
            pending.erase(line);
            insertReady(line);
            if (waker)
                waker->activate();
        });
    }

    void
    insertReady(Addr line)
    {
        if (ready.insert(line).second)
            readyOrder.push_back(line);
        while (readyOrder.size() > capacity) {
            ready.erase(readyOrder.front());
            readyOrder.pop_front();
        }
    }

    MemSystem &mem;
    unsigned coreId;
    StatGroup &stats;
    std::string prefix;
    StatHandle sLineReqs, sPrefetches;
    unsigned capacity;
    unsigned prefetchDepth;

    std::unordered_set<Addr> ready;
    std::deque<Addr> readyOrder;
    std::unordered_set<Addr> pending;
};

} // namespace bvl

#endif // BVL_CPU_FETCH_BUFFER_HH
