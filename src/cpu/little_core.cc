#include "cpu/little_core.hh"

#include "sim/check/check_context.hh"
#include "sim/trace/tracer.hh"
#include "sim/watchdog.hh"

namespace bvl
{

LittleCore::LittleCore(ClockDomain &cd, StatGroup &sg, MemSystem &ms,
                       BackingStore &bs, unsigned core_id,
                       unsigned vlen_bits, LittleCoreParams params)
    : Clocked(cd, "little" + std::to_string(core_id)),
      stats(sg), mem(ms), backing(bs), id(core_id), p(params),
      prefix("little" + std::to_string(core_id) + "."),
      sFetched(sg.handle(prefix + "fetched")),
      sRetired(sg.handle(prefix + "retired")),
      sCycles(sg.handle(prefix + "cycles")),
      arch(vlen_bits),
      fetchBuf(ms, core_id, sg, prefix)
{
    for (unsigned c = 0; c < numStallCauses; ++c)
        sStall[c] = sg.handle(prefix + "stall." +
                              stallName(StallCause(c)));
    regReadyAt.fill(0);
    regProducer.fill(ProducerKind::none);
    fuBusyUntil.fill(0);
}

void
LittleCore::beginWindow(ProgramPtr program, std::uint64_t maxFetch,
                        std::function<void()> done)
{
    bvl_assert(!running, "little%u: window start while busy", id);
    prog = std::move(program);
    onDone = std::move(done);
    running = true;
    haltSeen = false;
    haltIssued = false;
    fetchStopAt = maxFetch;
    windowFetched_ = 0;
    markFetchAt = 0;
    windowLastFetch_ = clock().eventQueue().now();
    windowMark_ = 0;
    fetchQueue.clear();
    fetchBuf.reset();
    fetchStallUntil = 0;
    regReadyAt.fill(0);
    regProducer.fill(ProducerKind::none);
    fuBusyUntil.fill(0);
    outstandingLoads = 0;
    outstandingStores = 0;
    activate();
}

void
LittleCore::runProgram(ProgramPtr program,
                       const std::vector<std::pair<RegId, std::uint64_t>>
                           &args,
                       std::function<void()> done)
{
    arch.reset();
    for (const auto &[reg, value] : args) {
        if (isFReg(reg))
            arch.setF(reg, value);
        else
            arch.setX(reg, value);
    }
    beginWindow(std::move(program), 0, std::move(done));
    if (check)
        check->onProgramStart(this, prog.get(), arch);
}

void
LittleCore::runWindow(ProgramPtr program, std::uint64_t maxFetch,
                      std::function<void()> done,
                      std::uint64_t markFetch)
{
    // Architectural state is left exactly as the caller seeded it
    // (fast-forward / checkpoint restore).
    beginWindow(std::move(program), maxFetch, std::move(done));
    markFetchAt = markFetch;
}

void
LittleCore::recordStall(StallCause cause)
{
    sStall[unsigned(cause)]++;
}

void
LittleCore::fetchStage()
{
    auto &eq = clock().eventQueue();
    if (haltSeen || fetchLimitHit() || fetchStallUntil > eq.now() ||
        fetchQueue.size() >= p.fetchQueueDepth) {
        return;
    }
    if (arch.pc >= prog->size())
        return;

    Addr instAddr = prog->instAddr(arch.pc);
    if (!fetchBuf.lineReady(instAddr, this))
        return;

    // Functional-first execution at fetch (oracle EX).
    ExecTrace tr = stepOne(arch, *prog, backing);
    if (check)
        check->onFetchExecuted(this, arch, tr, backing, eq.now());
    fetchQueue.push_back(PendingInst{std::move(tr)});
    if (trace)
        fetchQueue.back().fetchTick = eq.now();
    sFetched++;
    ++windowFetched_;
    windowLastFetch_ = eq.now();
    if (windowFetched_ == markFetchAt)
        windowMark_ = eq.now();

    const ExecTrace &t = fetchQueue.back().trace;
    if (t.inst->op == Op::halt)
        haltSeen = true;
    if (t.isBranch && t.taken)
        fetchStallUntil =
            eq.now() + clock().cyclesToTicks(p.takenBranchPenalty);
}

bool
LittleCore::issueStage()
{
    auto &eq = clock().eventQueue();
    Tick now = eq.now();

    if (fetchQueue.empty()) {
        recordStall(StallCause::misc);
        return false;
    }

    const ExecTrace &t = fetchQueue.front().trace;
    const Instr &in = *t.inst;
    bvl_assert(!in.isVector(),
               "little%u executed vector instruction in scalar mode", id);

    FuClass fu = in.traits().fu;

    // Source operand readiness.
    for (RegId r : {in.rs1, in.rs2, in.rs3}) {
        if (r == regIdInvalid || r >= 64)
            continue;
        if (regReadyAt[r] > now) {
            recordStall(regProducer[r] == ProducerKind::memory
                        ? StallCause::rawMem : StallCause::rawLlfu);
            return false;
        }
    }

    // Structural: FU occupancy and LSQ space.
    if (fu != FuClass::nop && fuBusyUntil[unsigned(fu)] > now) {
        recordStall(StallCause::structural);
        return false;
    }
    if (in.op == Op::load && outstandingLoads >= p.lsqEntries) {
        recordStall(StallCause::structural);
        return false;
    }
    if (in.op == Op::store && outstandingStores >= p.lsqEntries) {
        recordStall(StallCause::structural);
        return false;
    }

    // --- issue ---
    if (fu != FuClass::nop) {
        Cycles lat = p.fu.latency(fu);
        fuBusyUntil[unsigned(fu)] =
            now + clock().cyclesToTicks(p.fu.pipelined(fu) ? 1 : lat);
    }

    if (in.op == Op::halt) {
        haltIssued = true;
    } else if (in.op == Op::load) {
        RegId rd = in.rd;
        regReadyAt[rd] = maxTick;
        regProducer[rd] = ProducerKind::memory;
        ++outstandingLoads;
        ++regGen[rd];
        std::uint32_t gen = regGen[rd];
        mem.accessData(id, t.addr, false, [this, rd, gen] {
            --outstandingLoads;
            if (regGen[rd] == gen)
                regReadyAt[rd] = clock().eventQueue().now();
            activate();
            maybeFinish();
        });
    } else if (in.op == Op::store) {
        ++outstandingStores;
        mem.accessData(id, t.addr, true, [this] {
            --outstandingStores;
            activate();
            maybeFinish();
        });
    } else if (in.rd != regIdInvalid && in.rd < 64) {
        Cycles lat = p.fu.latency(fu);
        regReadyAt[in.rd] = now + clock().cyclesToTicks(lat);
        regProducer[in.rd] = FuLatencies::longLatency(fu)
            ? ProducerKind::longFu : ProducerKind::shortOp;
        ++regGen[in.rd];
    }

    if (trace && trace->wants(TraceCat::core)) {
        // Fetch-to-issue lifetimes of queued instructions overlap, so
        // they trace as async begin/end pairs.
        std::uint64_t aid = trace->nextAsyncId();
        Json args = Json::object();
        args.set("seq", numRetired + 1);
        args.set("op", opName(in.op));
        args.set("fetch", fetchQueue.front().fetchTick);
        args.set("issue", now);
        trace->asyncBegin(TraceCat::core, traceTid, opName(in.op), aid,
                          fetchQueue.front().fetchTick, std::move(args));
        trace->asyncEnd(TraceCat::core, traceTid, opName(in.op), aid,
                        now);
    }
    fetchQueue.pop_front();
    ++numRetired;
    sRetired++;
    if (check)
        check->onRetire(this, now);
    recordStall(StallCause::busy);
    return true;
}

void
LittleCore::setTracer(Tracer *t)
{
    trace = t;
    if (trace)
        traceTid = trace->track("little" + std::to_string(id));
}

void
LittleCore::maybeFinish()
{
    bool windowDone = fetchLimitHit() && fetchQueue.empty();
    if (!running || !(haltIssued || windowDone))
        return;
    if (outstandingLoads != 0 || outstandingStores != 0)
        return;
    running = false;
    if (check)
        check->onDrain(this, clock().eventQueue().now());
    if (onDone) {
        // Defer: the callback may immediately start another program.
        auto done = std::move(onDone);
        onDone = nullptr;
        clock().eventQueue().schedule(clock().cyclesToTicks(1),
                                      std::move(done));
    }
}

bool
LittleCore::tick()
{
    if (!running)
        return false;
    ++numCycles;
    sCycles++;
    fetchStage();
    if (!haltIssued)
        issueStage();
    else
        recordStall(StallCause::misc);   // draining memory
    maybeFinish();
    return running;
}

void
LittleCore::registerInvariants(InvariantRegistry &reg)
{
    reg.add(prefix + "fetchQ.bound", [this]() -> std::string {
        if (fetchQueue.size() <= p.fetchQueueDepth)
            return "";
        return "fetch queue holds " +
               std::to_string(fetchQueue.size()) + " entries, depth " +
               std::to_string(p.fetchQueueDepth);
    });
    reg.add(prefix + "lsq.bound", [this]() -> std::string {
        if (outstandingLoads <= p.lsqEntries &&
            outstandingStores <= p.lsqEntries) {
            return "";
        }
        return "LSQ credit overflow: " +
               std::to_string(outstandingLoads) + " loads, " +
               std::to_string(outstandingStores) + " stores, " +
               std::to_string(p.lsqEntries) + " entries each";
    });
}

void
LittleCore::registerProgress(Watchdog &wd)
{
    wd.addSource(prefix + "retire", [this] { return numRetired; },
                 [this] { return progressDetail(); });
}

std::string
LittleCore::progressDetail() const
{
    if (!running)
        return "";
    return "fetchQ " + std::to_string(fetchQueue.size()) + " ld " +
           std::to_string(outstandingLoads) + " st " +
           std::to_string(outstandingStores) +
           (haltSeen ? " halting" : "");
}

} // namespace bvl
