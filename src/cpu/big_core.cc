#include "cpu/big_core.hh"

#include <algorithm>

#include "sim/check/check_context.hh"
#include "sim/trace/tracer.hh"
#include "sim/watchdog.hh"

namespace bvl
{

namespace
{

/** Map a FuClass to its pool index / size lookup. */
unsigned
poolSize(const BigCoreParams &p, FuClass fu)
{
    switch (fu) {
      case FuClass::intAlu: return p.numIntAlu;
      case FuClass::intMul:
      case FuClass::intDiv: return p.numMulDiv;
      case FuClass::fpAdd:
      case FuClass::fpMul:
      case FuClass::fpDiv: return p.numFp;
      case FuClass::mem: return p.numMemPorts;
      case FuClass::branch: return p.numBranch;
      default: return 1000;   // nop class: unconstrained
    }
}

} // namespace

BigCore::BigCore(ClockDomain &cd, StatGroup &sg, MemSystem &ms,
                 BackingStore &bs, unsigned vlen_bits,
                 BigCoreParams params)
    : Clocked(cd, "big"), stats(sg), mem(ms), backing(bs),
      p(params),
      sFetched(sg.handle(prefix + "fetched")),
      sRetired(sg.handle(prefix + "retired")),
      sCycles(sg.handle(prefix + "cycles")),
      sMispredicts(sg.handle(prefix + "mispredicts")),
      sVecDispatched(sg.handle(prefix + "vecDispatched")),
      arch(vlen_bits), bpred(params.bpredIndexBits),
      fetchBuf(ms, ms.bigCoreId(), sg, prefix)
{
    lastWriter.fill(nullptr);
}

void
BigCore::beginWindow(ProgramPtr program, std::uint64_t maxFetch,
                     std::function<void()> done)
{
    bvl_assert(!running, "big core: window start while busy");
    prog = std::move(program);
    onDone = std::move(done);
    running = true;
    haltSeen = false;
    fetchStopAt = maxFetch;
    windowFetched_ = 0;
    markFetchAt = 0;
    windowLastFetch_ = clock().eventQueue().now();
    windowMark_ = 0;
    fetchBuf.reset();
    fetchStallUntil = 0;
    blockingBranch = nullptr;
    rob.clear();
    lastWriter.fill(nullptr);
    lastStoreToLine.clear();
    readyQueue.clear();
    fuInUseThisCycle.fill(0);
    unpipedBusyUntil.fill(0);
    loadsInFlight = 0;
    storesInFlight = 0;
    vecOutstanding = 0;
    vecQueue.clear();
    activate();
}

void
BigCore::runProgram(ProgramPtr program,
                    const std::vector<std::pair<RegId, std::uint64_t>>
                        &args,
                    std::function<void()> done)
{
    arch.reset();
    for (const auto &[reg, value] : args) {
        if (isFReg(reg))
            arch.setF(reg, value);
        else
            arch.setX(reg, value);
    }
    bpred.reset();
    beginWindow(std::move(program), 0, std::move(done));
    if (check)
        check->onProgramStart(this, prog.get(), arch);
}

void
BigCore::runWindow(ProgramPtr program, std::uint64_t maxFetch,
                   std::function<void()> done, std::uint64_t markFetch)
{
    // Architectural state and the predictor are left exactly as the
    // caller seeded them (fast-forward / checkpoint restore).
    beginWindow(std::move(program), maxFetch, std::move(done));
    markFetchAt = markFetch;
}

void
BigCore::fetchStage()
{
    auto &eq = clock().eventQueue();
    for (unsigned n = 0; n < p.fetchWidth; ++n) {
        if (haltSeen || fetchLimitHit() || blockingBranch ||
            fetchStallUntil > eq.now() || rob.size() >= p.robEntries) {
            return;
        }
        if (arch.pc >= prog->size())
            return;

        Addr instAddr = prog->instAddr(arch.pc);
        if (!fetchBuf.lineReady(instAddr, this))
            return;

        std::uint64_t fetchPc = arch.pc;
        ExecTrace tr = stepOne(arch, *prog, backing);
        sFetched++;
        ++windowFetched_;
        windowLastFetch_ = eq.now();
        if (windowFetched_ == markFetchAt)
            windowMark_ = eq.now();
        if (check)
            check->onFetchExecuted(this, arch, tr, backing, eq.now());

        auto owned = std::make_unique<RobInst>();
        RobInst *inst = owned.get();
        inst->seq = nextSeq++;
        if (trace)
            inst->fetchTick = eq.now();
        inst->trace = std::move(tr);
        const Instr &in = *inst->trace.inst;

        // Register (scalar) source dependences.
        auto addDep = [&](RegId r) {
            if (r == regIdInvalid || r >= 64)
                return;
            RobInst *producer = lastWriter[r];
            if (producer && !producer->complete) {
                ++inst->pendingSrcs;
                producer->consumers.push_back(inst);
            }
        };
        addDep(in.rs1);
        // rs2 is a scalar source for scalar ops and .vx/.vf forms.
        if (!in.isVector() || in.vsrc == VSrc2::vx || in.vsrc == VSrc2::vf)
            addDep(in.rs2);
        addDep(in.rs3 < 64 ? in.rs3 : regIdInvalid);

        // Store -> load ordering through memory (scalar only; the
        // vector engines order their own memory, vmfence orders the
        // scalar/vector boundary).
        if (!in.isVector() && inst->trace.isMem) {
            Addr lnum = lineOf(inst->trace.addr);
            if (inst->trace.isStore) {
                lastStoreToLine[lnum] = inst;
            } else {
                auto it = lastStoreToLine.find(lnum);
                if (it != lastStoreToLine.end() &&
                    !it->second->complete) {
                    ++inst->pendingSrcs;
                    it->second->consumers.push_back(inst);
                }
            }
        }

        // Rename the destination.
        if (in.rd != regIdInvalid && in.rd < 64 && in.op != Op::store)
            lastWriter[in.rd] = inst;

        // Branch prediction (conditional branches only).
        if (inst->trace.isBranch && in.op != Op::jump) {
            bool predicted = bpred.predict(fetchPc);
            bpred.update(fetchPc, inst->trace.taken);
            if (predicted != inst->trace.taken) {
                inst->predictedWrong = true;
                blockingBranch = inst;
                sMispredicts++;
            }
        }

        if (in.op == Op::halt)
            haltSeen = true;

        if (in.isVector()) {
            vecQueue.push_back(inst);
            if (check)
                check->onVecQueued(this);
        }

        if (in.traits().fu == FuClass::nop) {
            // li/nop/halt: complete at dispatch, no FU needed.
            inst->issued = true;
            inst->complete = true;
            if (trace)
                inst->issueTick = inst->completeTick = eq.now();
        } else if (!in.isVector() && inst->pendingSrcs == 0) {
            readyQueue.emplace(inst->seq, inst);
            inst->inReadyQueue = true;
        }

        rob.push_back(std::move(owned));
    }
}

bool
BigCore::fuAvailable(FuClass fu, Tick now)
{
    if (fu == FuClass::nop)
        return true;
    if (!p.fu.pipelined(fu) && unpipedBusyUntil[unsigned(fu)] > now)
        return false;
    return fuInUseThisCycle[unsigned(fu)] < poolSize(p, fu);
}

void
BigCore::consumeFu(FuClass fu, Tick now)
{
    if (fu == FuClass::nop)
        return;
    ++fuInUseThisCycle[unsigned(fu)];
    if (!p.fu.pipelined(fu))
        unpipedBusyUntil[unsigned(fu)] =
            now + clock().cyclesToTicks(p.fu.latency(fu));
}

void
BigCore::issueStage()
{
    auto &eq = clock().eventQueue();
    Tick now = eq.now();

    if (fuCycleTick != now) {
        fuInUseThisCycle.fill(0);
        fuCycleTick = now;
    }

    unsigned issued = 0;
    auto it = readyQueue.begin();
    while (it != readyQueue.end() && issued < p.issueWidth) {
        RobInst *inst = it->second;
        const Instr &in = *inst->trace.inst;
        FuClass fu = in.traits().fu;

        if (!fuAvailable(fu, now)) {
            ++it;
            continue;
        }
        if (in.op == Op::load && loadsInFlight >= p.lsqLoads) {
            ++it;
            continue;
        }
        if (in.op == Op::store && storesInFlight >= p.lsqStores) {
            ++it;
            continue;
        }

        // Issue.
        consumeFu(fu, now);
        inst->issued = true;
        if (trace)
            inst->issueTick = now;
        inst->inReadyQueue = false;
        it = readyQueue.erase(it);
        ++issued;

        if (in.op == Op::load) {
            ++loadsInFlight;
            mem.accessData(mem.bigCoreId(), inst->trace.addr, false,
                           [this, inst] {
                --loadsInFlight;
                inst->producerKind = ProducerKind::memory;
                completeInst(inst);
            });
        } else if (in.op == Op::store) {
            ++storesInFlight;
            mem.accessData(mem.bigCoreId(), inst->trace.addr, true,
                           [this, inst] {
                --storesInFlight;
                completeInst(inst);
            });
        } else {
            Cycles lat = p.fu.latency(fu);
            eq.schedule(clock().cyclesToTicks(lat), [this, inst] {
                completeInst(inst);
            });
        }
    }
}

void
BigCore::completeInst(RobInst *inst)
{
    if (inst->complete)
        return;
    inst->complete = true;
    if (trace)
        inst->completeTick = clock().eventQueue().now();

    if (inst->predictedWrong && blockingBranch == inst) {
        blockingBranch = nullptr;
        fetchStallUntil = clock().eventQueue().now() +
                          clock().cyclesToTicks(p.redirectPenalty);
    }

    for (RobInst *consumer : inst->consumers) {
        bvl_assert(consumer->pendingSrcs > 0, "wakeup underflow");
        if (--consumer->pendingSrcs == 0 && !consumer->issued &&
            !consumer->inReadyQueue &&
            !consumer->trace.inst->isVector()) {
            readyQueue.emplace(consumer->seq, consumer);
            consumer->inReadyQueue = true;
        }
    }
    inst->consumers.clear();
    activate();
}

void
BigCore::vecDispatchStage()
{
    // Vector instructions dispatch in program order among themselves.
    // Decoupled engines additionally require the ROB head (paper
    // Section III-A); the integrated unit dispatches as soon as the
    // scalar operands are ready. vmfence always waits for the head
    // and for outstanding scalar memory (paper Section III-B).
    while (vengine && !vecQueue.empty()) {
        RobInst *inst = vecQueue.front();
        const Instr &in = *inst->trace.inst;
        if (inst->pendingSrcs != 0)
            return;
        bool needHead = vengine->dispatchAtHead() ||
                        in.op == Op::vmfence;
        if (needHead && (rob.empty() || rob.front().get() != inst))
            return;
        if (in.op == Op::vmfence &&
            (loadsInFlight != 0 || storesInFlight != 0)) {
            return;
        }
        if (!vengine->canAccept(inst->trace))
            return;

        inst->vecDispatched = true;
        ++vecOutstanding;
        sVecDispatched++;
        if (trace && trace->wants(TraceCat::big)) {
            Json args = Json::object();
            args.set("seq", inst->seq);
            args.set("op", opName(in.op));
            args.set("robHead",
                     !rob.empty() && rob.front().get() == inst);
            trace->instant(TraceCat::big, traceTid, "vecDispatch",
                           clock().eventQueue().now(), std::move(args));
        }
        if (in.traits().writesScalar) {
            vengine->dispatch(inst->trace, [this, inst] {
                --vecOutstanding;
                completeInst(inst);
            });
        } else {
            vengine->dispatch(inst->trace, [this] {
                --vecOutstanding;
                activate();
                maybeFinish();
            });
            inst->complete = true;
        }
        vecQueue.pop_front();
        // Only one dispatch per cycle (vector dispatch unit port).
        return;
    }
}

void
BigCore::commitStage()
{
    for (unsigned n = 0; n < p.commitWidth && !rob.empty(); ++n) {
        RobInst *head = rob.front().get();
        const Instr &in = *head->trace.inst;

        if (in.isVector()) {
            // Dispatch happens in vecDispatchStage; the ROB head only
            // waits here for dispatch (and, for scalar-writing ops,
            // for the engine's response).
            if (!head->vecDispatched || !head->complete)
                return;
        } else if (!head->complete) {
            return;
        }

        // Retire.
        if (in.rd != regIdInvalid && in.rd < 64 &&
            lastWriter[in.rd] == head) {
            lastWriter[in.rd] = nullptr;
        }
        if (head->trace.isMem && head->trace.isStore && !in.isVector()) {
            auto it = lastStoreToLine.find(lineOf(head->trace.addr));
            if (it != lastStoreToLine.end() && it->second == head)
                lastStoreToLine.erase(it);
        }
        if (trace && trace->wants(TraceCat::big)) {
            // Instruction lifetimes overlap (out-of-order core), so
            // they trace as async begin/end pairs, not complete spans.
            Tick now = clock().eventQueue().now();
            std::uint64_t id = trace->nextAsyncId();
            Json args = Json::object();
            args.set("seq", head->seq);
            args.set("op", opName(in.op));
            args.set("fetch", head->fetchTick);
            args.set("issue", head->issueTick);
            args.set("complete", head->completeTick);
            args.set("retire", now);
            trace->asyncBegin(TraceCat::big, traceTid, opName(in.op),
                              id, head->fetchTick, std::move(args));
            trace->asyncEnd(TraceCat::big, traceTid, opName(in.op),
                            id, now);
        }
        rob.pop_front();
        ++numRetired;
        sRetired++;
        if (check)
            check->onRetire(this, clock().eventQueue().now());
    }
}

void
BigCore::setTracer(Tracer *t)
{
    trace = t;
    if (trace)
        traceTid = trace->track("big");
}

void
BigCore::registerInvariants(InvariantRegistry &reg)
{
    reg.add("big.rob.bound", [this]() -> std::string {
        if (rob.size() <= p.robEntries)
            return "";
        return "ROB holds " + std::to_string(rob.size()) +
               " entries, capacity " + std::to_string(p.robEntries);
    });
    reg.add("big.lsq.bound", [this]() -> std::string {
        if (loadsInFlight <= p.lsqLoads && storesInFlight <= p.lsqStores)
            return "";
        return "LSQ credit overflow: " + std::to_string(loadsInFlight) +
               "/" + std::to_string(p.lsqLoads) + " loads, " +
               std::to_string(storesInFlight) + "/" +
               std::to_string(p.lsqStores) + " stores";
    });
    // Vector instructions dispatch in program order, and with a
    // head-dispatch engine an incomplete dispatched instruction can
    // only be the ROB head (paper Section III-A).
    reg.add("big.vec.dispatchOrder", [this]() -> std::string {
        bool headDispatch = vengine && vengine->dispatchAtHead();
        bool sawUndispatched = false;
        for (std::size_t i = 0; i < rob.size(); ++i) {
            const RobInst &inst = *rob[i];
            if (!inst.trace.inst || !inst.trace.inst->isVector())
                continue;
            if (!inst.vecDispatched) {
                sawUndispatched = true;
                continue;
            }
            if (sawUndispatched) {
                return "seq " + std::to_string(inst.seq) +
                       " dispatched before an older vector instruction";
            }
            if (headDispatch && i > 0 && !inst.complete) {
                return "seq " + std::to_string(inst.seq) +
                       " dispatched while not at the ROB head";
            }
        }
        return "";
    });
}

void
BigCore::registerProgress(Watchdog &wd)
{
    wd.addSource(prefix + "retire", [this] { return numRetired; },
                 [this] { return progressDetail(); });
}

std::string
BigCore::progressDetail() const
{
    if (!running)
        return "";
    std::string out = "rob " + std::to_string(rob.size()) + "/" +
                      std::to_string(p.robEntries) + " ready " +
                      std::to_string(readyQueue.size()) + " vecQ " +
                      std::to_string(vecQueue.size()) + " vecOut " +
                      std::to_string(vecOutstanding) + " ld " +
                      std::to_string(loadsInFlight) + " st " +
                      std::to_string(storesInFlight);
    if (!rob.empty()) {
        const RobInst &head = *rob.front();
        out += " | head v" + std::to_string(head.seq) + " " +
               opName(head.trace.inst->op) +
               (head.complete ? " complete" : " pending") +
               (head.trace.inst->isVector() && !head.vecDispatched
                    ? " awaitingDispatch" : "");
    }
    if (blockingBranch)
        out += " | blocked on branch v" +
               std::to_string(blockingBranch->seq);
    return out;
}

void
BigCore::maybeFinish()
{
    if (!running || !(haltSeen || fetchLimitHit()) || !rob.empty())
        return;
    if (loadsInFlight != 0 || storesInFlight != 0 || vecOutstanding != 0)
        return;
    if (vengine && !vengine->idle())
        return;
    running = false;
    if (check)
        check->onDrain(this, clock().eventQueue().now());
    if (onDone) {
        auto done = std::move(onDone);
        onDone = nullptr;
        clock().eventQueue().schedule(clock().cyclesToTicks(1),
                                      std::move(done));
    }
}

bool
BigCore::tick()
{
    if (!running)
        return false;
    ++numCycles;
    sCycles++;
    vecDispatchStage();
    commitStage();
    issueStage();
    fetchStage();
    maybeFinish();
    return running;
}

} // namespace bvl
