/**
 * @file
 * Functional-unit latency/pipelining parameters shared by the scalar
 * cores and the vector lanes (which re-use the little cores' execution
 * pipelines in vector mode, paper Section III-C).
 */

#ifndef BVL_CPU_FU_PARAMS_HH
#define BVL_CPU_FU_PARAMS_HH

#include "isa/opcode.hh"
#include "sim/types.hh"

namespace bvl
{

struct FuLatencies
{
    Cycles intAlu = 1;
    Cycles intMul = 3;
    Cycles intDiv = 12;
    Cycles fpAdd = 4;
    Cycles fpMul = 4;
    Cycles fpDiv = 12;
    Cycles mem = 1;      ///< address-generation slot (cache adds latency)
    Cycles branch = 1;

    Cycles
    latency(FuClass fu) const
    {
        switch (fu) {
          case FuClass::intAlu: return intAlu;
          case FuClass::intMul: return intMul;
          case FuClass::intDiv: return intDiv;
          case FuClass::fpAdd: return fpAdd;
          case FuClass::fpMul: return fpMul;
          case FuClass::fpDiv: return fpDiv;
          case FuClass::mem: return mem;
          case FuClass::branch: return branch;
          default: return 1;
        }
    }

    /** Unpipelined units block their FU for the full latency. */
    bool
    pipelined(FuClass fu) const
    {
        return fu != FuClass::intDiv && fu != FuClass::fpDiv;
    }

    /** Is this a long-latency unit for stall classification? */
    static bool
    longLatency(FuClass fu)
    {
        switch (fu) {
          case FuClass::intMul:
          case FuClass::intDiv:
          case FuClass::fpAdd:
          case FuClass::fpMul:
          case FuClass::fpDiv:
            return true;
          default:
            return false;
        }
    }
};

/** What kind of producer made a register pending (stall taxonomy). */
enum class ProducerKind : std::uint8_t
{
    none,
    shortOp,   ///< 1-cycle ALU
    longFu,    ///< mul/div/FP (raw_llfu)
    memory,    ///< load (raw_mem)
    crossElem, ///< VXU data (xelem)
};

/** Stall categories of Figure 7. */
enum class StallCause : std::uint8_t
{
    busy,     ///< issued work this cycle
    simd,     ///< lock-step uop issue blocked by a peer core
    rawMem,   ///< operand waiting on memory
    rawLlfu,  ///< operand waiting on a long-latency unit
    structural, ///< FU or queue structural hazard
    xelem,    ///< waiting on cross-element (VXU) data
    misc,     ///< no work available (fetch stall, empty uop queue, ...)
};

/** Number of StallCause values (size of per-cause stat-handle arrays). */
constexpr unsigned numStallCauses = 7;

inline const char *
stallName(StallCause c)
{
    switch (c) {
      case StallCause::busy: return "busy";
      case StallCause::simd: return "simd";
      case StallCause::rawMem: return "raw_mem";
      case StallCause::rawLlfu: return "raw_llfu";
      case StallCause::structural: return "struct";
      case StallCause::xelem: return "xelem";
      case StallCause::misc: return "misc";
    }
    return "?";
}

} // namespace bvl

#endif // BVL_CPU_FU_PARAMS_HH
