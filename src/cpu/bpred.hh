/**
 * @file
 * Gshare branch direction predictor with 2-bit saturating counters.
 * Targets are assumed BTB-resident (the timing model charges only
 * direction mispredictions); unconditional jumps always predict
 * correctly.
 */

#ifndef BVL_CPU_BPRED_HH
#define BVL_CPU_BPRED_HH

#include <cstdint>
#include <vector>

namespace bvl
{

class GsharePredictor
{
  public:
    explicit GsharePredictor(unsigned index_bits = 12)
        : indexBits(index_bits), table(1u << index_bits, 1)
    {}

    /** Predict the direction of the branch at @p pc. */
    bool
    predict(std::uint64_t pc) const
    {
        return table[index(pc)] >= 2;
    }

    /** Train with the resolved direction and update global history. */
    void
    update(std::uint64_t pc, bool taken)
    {
        auto &ctr = table[index(pc)];
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        history = ((history << 1) | (taken ? 1 : 0)) &
                  ((1u << indexBits) - 1);
    }

    void
    reset()
    {
        std::fill(table.begin(), table.end(), 1);
        history = 0;
    }

    // --- checkpoint access (DESIGN.md §15) ---------------------------

    unsigned tableIndexBits() const { return indexBits; }
    const std::vector<std::uint8_t> &rawTable() const { return table; }
    std::uint32_t rawHistory() const { return history; }

    /** Restore counters + history saved from an identical geometry. */
    void
    restore(const std::vector<std::uint8_t> &t, std::uint32_t h)
    {
        if (t.size() == table.size()) {
            table = t;
            history = h & ((1u << indexBits) - 1);
        }
    }

  private:
    unsigned
    index(std::uint64_t pc) const
    {
        return static_cast<unsigned>((pc ^ history) &
                                     ((1u << indexBits) - 1));
    }

    unsigned indexBits;
    std::vector<std::uint8_t> table;
    std::uint32_t history = 0;
};

} // namespace bvl

#endif // BVL_CPU_BPRED_HH
