/**
 * @file
 * Out-of-order big core.
 *
 * Functional-first like the little core: the oracle path is executed
 * at fetch, and the pipeline schedules timing through a ROB with
 * dataflow wakeup, per-class FU pools, a load/store queue with precise
 * (oracle-address) store->load disambiguation, and a gshare front end
 * whose mispredictions stall fetch until the branch resolves plus a
 * redirect penalty (wrong-path fetch is not modelled; DESIGN.md §5).
 *
 * Vector instructions do not issue to FUs: they wait for the ROB head
 * and dispatch to the attached VectorEngine (paper Section III-A).
 * Scalar-writing vector instructions complete (and wake dependents)
 * only when the engine responds.
 */

#ifndef BVL_CPU_BIG_CORE_HH
#define BVL_CPU_BIG_CORE_HH

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "cpu/bpred.hh"
#include "cpu/fetch_buffer.hh"
#include "cpu/fu_params.hh"
#include "cpu/vec_engine.hh"
#include "isa/arch_state.hh"
#include "mem/mem_system.hh"
#include "sim/clock_domain.hh"
#include "sim/stats.hh"

namespace bvl
{

class Watchdog;
class CheckContext;
class InvariantRegistry;
class Tracer;

struct BigCoreParams
{
    unsigned fetchWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;
    unsigned robEntries = 192;
    unsigned lsqLoads = 48;
    unsigned lsqStores = 32;
    FuLatencies fu{};
    unsigned numIntAlu = 3;
    unsigned numMulDiv = 1;
    unsigned numFp = 2;
    unsigned numMemPorts = 2;
    unsigned numBranch = 1;
    Cycles redirectPenalty = 3;   ///< cycles after branch resolution
    unsigned bpredIndexBits = 12;
};

class BigCore : public Clocked
{
  public:
    BigCore(ClockDomain &cd, StatGroup &stats, MemSystem &mem,
            BackingStore &backing, unsigned vlenBits,
            BigCoreParams params = {});

    /** Attach the vector engine vector instructions dispatch to. */
    void setVectorEngine(VectorEngine *engine) { vengine = engine; }

    void runProgram(ProgramPtr prog,
                    const std::vector<std::pair<RegId, std::uint64_t>>
                        &args,
                    std::function<void()> done);

    /**
     * Run a detailed-timing window over at most @p maxFetch dynamic
     * instructions without resetting architectural state — the
     * fast-forward engine seeds ArchState functionally and then
     * interleaves detailed windows with functional regions
     * (DESIGN.md §15). @p maxFetch == 0 means run to the halt.
     */
    /**
     * @p markFetch != 0 records the tick of that fetch
     * (windowMarkTick()): the sampler measures steady-state throughput
     * as the fetch-to-fetch span [markFetch, maxFetch] inside one
     * window, where fetch is retire-coupled once the ROB has filled.
     */
    void runWindow(ProgramPtr prog, std::uint64_t maxFetch,
                   std::function<void()> done,
                   std::uint64_t markFetch = 0);

    bool busy() const { return running; }
    ArchState &archState() { return arch; }
    std::uint64_t retired() const { return numRetired; }
    /** Instructions fetched by the current/last window. */
    std::uint64_t windowFetched() const { return windowFetched_; }
    /**
     * Tick of the window's last fetch. Sampled measurement spans
     * window start to here, so the end-of-window pipeline/engine
     * drain — simulated only to leave consistent state behind — is
     * not attributed to the measured instructions.
     */
    Tick windowLastFetchTick() const { return windowLastFetch_; }
    /** Tick of the runWindow() markFetch'th fetch (0 = never hit). */
    Tick windowMarkTick() const { return windowMark_; }
    /** Branch predictor (checkpoint save/restore, DESIGN.md §15). */
    GsharePredictor &predictor() { return bpred; }

    /** Register the retire stage's heartbeat with a watchdog. */
    void registerProgress(Watchdog &wd);

    /**
     * Attach the checker front end (nullptr = disarmed; the hot paths
     * then cost exactly one null-pointer branch, DESIGN.md §12).
     */
    void setCheckContext(CheckContext *cc) { check = cc; }

    /** Register ROB/LSQ structural invariants with the checker. */
    void registerInvariants(InvariantRegistry &reg);

    /**
     * Attach the tracer (nullptr = disarmed; the hot paths then cost
     * exactly one null-pointer branch, DESIGN.md §13). Registers this
     * core's track.
     */
    void setTracer(Tracer *t);

    /** Pipeline occupancy snapshot for deadlock diagnostics. */
    std::string progressDetail() const;

  protected:
    bool tick() override;

  private:
    struct RobInst
    {
        SeqNum seq = 0;
        ExecTrace trace;
        unsigned pendingSrcs = 0;
        bool inReadyQueue = false;
        bool issued = false;
        bool complete = false;
        bool vecDispatched = false;
        bool predictedWrong = false;
        ProducerKind producerKind = ProducerKind::shortOp;
        std::vector<RobInst *> consumers;
        /** Youngest older store to the same line (load ordering). */
        RobInst *depStore = nullptr;
        bool depStoreDone = true;
        /** Pipeline-stage timestamps, recorded only while tracing. */
        Tick fetchTick = 0;
        Tick issueTick = 0;
        Tick completeTick = 0;
    };

    /** Shared pipeline reset + start of runProgram()/runWindow(). */
    void beginWindow(ProgramPtr prog, std::uint64_t maxFetch,
                     std::function<void()> done);
    /** True once the window's fetch budget is spent. */
    bool fetchLimitHit() const
    { return fetchStopAt != 0 && windowFetched_ >= fetchStopAt; }

    void fetchStage();
    void issueStage();
    void vecDispatchStage();
    void commitStage();
    void completeInst(RobInst *inst);
    void tryWakeReady(RobInst *inst);
    bool fuAvailable(FuClass fu, Tick now);
    void consumeFu(FuClass fu, Tick now);
    void maybeFinish();

    StatGroup &stats;
    MemSystem &mem;
    BackingStore &backing;
    BigCoreParams p;
    std::string prefix = "big.";
    /** Interned counters (DESIGN.md §11). */
    StatHandle sFetched, sRetired, sCycles, sMispredicts, sVecDispatched;

    ProgramPtr prog;
    ArchState arch;
    std::function<void()> onDone;
    VectorEngine *vengine = nullptr;
    CheckContext *check = nullptr;
    Tracer *trace = nullptr;
    unsigned traceTid = 0;

    bool running = false;
    bool haltSeen = false;
    /** Window fetch budget (0 = unlimited) and fetches so far. */
    std::uint64_t fetchStopAt = 0;
    std::uint64_t windowFetched_ = 0;
    std::uint64_t markFetchAt = 0;
    Tick windowLastFetch_ = 0;
    Tick windowMark_ = 0;

    // front end
    GsharePredictor bpred;
    FetchBuffer fetchBuf;
    Tick fetchStallUntil = 0;
    RobInst *blockingBranch = nullptr;  ///< unresolved mispredict

    // ROB / rename
    std::deque<std::unique_ptr<RobInst>> rob;
    std::array<RobInst *, 64> lastWriter{};
    std::unordered_map<Addr, RobInst *> lastStoreToLine;
    std::map<SeqNum, RobInst *> readyQueue;
    /** Vector instructions awaiting dispatch, program order. */
    std::deque<RobInst *> vecQueue;
    SeqNum nextSeq = 1;

    // execution resources
    std::array<unsigned, 16> fuInUseThisCycle{};
    Tick fuCycleTick = 0;                 ///< cycle the counters refer to
    std::array<Tick, 16> unpipedBusyUntil{};
    unsigned loadsInFlight = 0;
    unsigned storesInFlight = 0;
    unsigned vecOutstanding = 0;

    std::uint64_t numRetired = 0;
    std::uint64_t numCycles = 0;
};

} // namespace bvl

#endif // BVL_CPU_BIG_CORE_HH
