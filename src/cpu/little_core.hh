/**
 * @file
 * In-order single-issue little core (scalar mode).
 *
 * Functional-first: instructions are executed against the shared
 * backing store at fetch time (oracle EX); the pipeline model then
 * schedules their timing through a scoreboard with per-register ready
 * times, a small non-blocking load/store queue, and the FuLatencies
 * table. Every stall cycle is attributed to one StallCause so the
 * paper's Figure-7 breakdown can be reported.
 *
 * In vector mode the core's pipeline is modelled by core::VectorLane
 * (paper: the core's front end is disabled and its back end executes
 * VCU micro-ops); this class then sits idle.
 */

#ifndef BVL_CPU_LITTLE_CORE_HH
#define BVL_CPU_LITTLE_CORE_HH

#include <array>
#include <deque>
#include <functional>

#include "cpu/fetch_buffer.hh"
#include "cpu/fu_params.hh"
#include "isa/arch_state.hh"
#include "mem/mem_system.hh"
#include "sim/clock_domain.hh"
#include "sim/stats.hh"

namespace bvl
{

class Watchdog;
class CheckContext;
class InvariantRegistry;
class Tracer;

struct LittleCoreParams
{
    FuLatencies fu{};
    unsigned lsqEntries = 4;
    Cycles takenBranchPenalty = 2;
    unsigned fetchQueueDepth = 4;
};

class LittleCore : public Clocked
{
  public:
    LittleCore(ClockDomain &cd, StatGroup &stats, MemSystem &mem,
               BackingStore &backing, unsigned coreId, unsigned vlenBits,
               LittleCoreParams params = {});

    /**
     * Start executing @p prog with argument registers @p args; @p done
     * fires when the program halts and all memory has drained.
     */
    void runProgram(ProgramPtr prog,
                    const std::vector<std::pair<RegId, std::uint64_t>>
                        &args,
                    std::function<void()> done);

    /**
     * Run a detailed window over at most @p maxFetch dynamic
     * instructions without resetting architectural state; the
     * fast-forward engine seeds ArchState functionally first
     * (DESIGN.md §15). @p maxFetch == 0 means run to the halt.
     */
    void runWindow(ProgramPtr prog, std::uint64_t maxFetch,
                   std::function<void()> done,
                   std::uint64_t markFetch = 0);

    bool busy() const { return running; }
    unsigned coreId() const { return id; }
    ArchState &archState() { return arch; }

    /** Instructions fetched by the current/last window. */
    std::uint64_t windowFetched() const { return windowFetched_; }
    /**
     * Tick of the window's last fetch. Sampled measurement spans
     * window start to here, so the end-of-window drain — simulated
     * only to leave consistent state behind — is not attributed to
     * the measured instructions.
     */
    Tick windowLastFetchTick() const { return windowLastFetch_; }
    /** Tick of the runWindow() markFetch'th fetch (0 = never hit). */
    Tick windowMarkTick() const { return windowMark_; }

    /** Dynamic instructions retired by this core. */
    std::uint64_t retired() const { return numRetired; }

    /** Total cycles this core was running a program. */
    std::uint64_t activeCycles() const { return numCycles; }

    /** Register the retire stage's heartbeat with a watchdog. */
    void registerProgress(Watchdog &wd);

    /** Attach the checker front end (nullptr = disarmed). */
    void setCheckContext(CheckContext *cc) { check = cc; }

    /** Register fetch-queue/LSQ structural invariants. */
    void registerInvariants(InvariantRegistry &reg);

    /** Attach the tracer (nullptr = disarmed) and register the
     *  "little<id>" track. */
    void setTracer(Tracer *t);

    /** Pipeline occupancy snapshot for deadlock diagnostics. */
    std::string progressDetail() const;

  protected:
    bool tick() override;

  private:
    struct PendingInst
    {
        ExecTrace trace;
        /** Fetch timestamp, recorded only while tracing. */
        Tick fetchTick = 0;
    };

    /** Shared pipeline reset + start of runProgram()/runWindow(). */
    void beginWindow(ProgramPtr prog, std::uint64_t maxFetch,
                     std::function<void()> done);
    /** True once the window's fetch budget is spent. */
    bool fetchLimitHit() const
    { return fetchStopAt != 0 && windowFetched_ >= fetchStopAt; }

    void fetchStage();
    bool issueStage();
    void recordStall(StallCause cause);
    void maybeFinish();

    StatGroup &stats;
    MemSystem &mem;
    BackingStore &backing;
    unsigned id;
    LittleCoreParams p;
    std::string prefix;
    /** Interned counters (DESIGN.md §11); sStall is indexed by
     *  StallCause so recordStall() is a single pointer add. */
    StatHandle sFetched, sRetired, sCycles;
    std::array<StatHandle, numStallCauses> sStall;

    ProgramPtr prog;
    ArchState arch;
    std::function<void()> onDone;
    CheckContext *check = nullptr;
    Tracer *trace = nullptr;
    unsigned traceTid = 0;
    bool running = false;
    bool haltSeen = false;     ///< halt fetched; stop fetching
    bool haltIssued = false;
    /** Window fetch budget (0 = unlimited) and fetches so far. */
    std::uint64_t fetchStopAt = 0;
    std::uint64_t windowFetched_ = 0;
    std::uint64_t markFetchAt = 0;
    Tick windowLastFetch_ = 0;
    Tick windowMark_ = 0;

    // fetch state
    std::deque<PendingInst> fetchQueue;
    FetchBuffer fetchBuf;
    Tick fetchStallUntil = 0;

    // scoreboard
    std::array<Tick, 64> regReadyAt{};          // x0-x31, f0-f31
    std::array<ProducerKind, 64> regProducer{};
    /** Write generation per register: a load callback only marks its
     *  destination ready if no younger producer overwrote it. */
    std::array<std::uint32_t, 64> regGen{};
    std::array<Tick, 16> fuBusyUntil{};          // per FuClass
    unsigned outstandingLoads = 0;
    unsigned outstandingStores = 0;

    std::uint64_t numRetired = 0;
    std::uint64_t numCycles = 0;
};

} // namespace bvl

#endif // BVL_CPU_LITTLE_CORE_HH
