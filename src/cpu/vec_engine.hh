/**
 * @file
 * Interface between the big core and a vector engine (the VLITTLE
 * engine, the integrated vector unit, or the decoupled vector engine).
 *
 * Following the paper (Section III-A): a vector instruction waits in
 * the big core's vector dispatch unit until it reaches the head of the
 * ROB and the engine can accept it. Non-scalar-writing instructions
 * commit on dispatch; scalar-writing instructions (vsetvli, vmv.x.s,
 * vpopc, ...) hold the ROB head until the engine responds.
 */

#ifndef BVL_CPU_VEC_ENGINE_HH
#define BVL_CPU_VEC_ENGINE_HH

#include <functional>

#include "isa/arch_state.hh"

namespace bvl
{

class VectorEngine
{
  public:
    virtual ~VectorEngine() = default;

    /**
     * Can the engine take this instruction now? (Command queue space,
     * plus a scalar-data queue slot if the instruction carries a
     * scalar operand — paper Section III-B.)
     */
    virtual bool canAccept(const ExecTrace &trace) const = 0;

    /**
     * Hand one (functionally already executed) vector instruction to
     * the engine. @p onDone fires when the instruction fully completes
     * in the engine (for scalar-writing ops this is when the scalar
     * response arrives back at the big core).
     */
    virtual void dispatch(const ExecTrace &trace,
                          std::function<void()> onDone) = 0;

    /** True when no work is in flight anywhere in the engine. */
    virtual bool idle() const = 0;

    /**
     * Decoupled engines receive instructions only from the head of
     * the ROB (paper Section III-A); an integrated unit executes in
     * the pipeline and may receive them as soon as their scalar
     * operands are ready (in program order among vector instructions).
     */
    virtual bool dispatchAtHead() const { return true; }

    /** Engine name for reporting. */
    virtual const char *engineName() const = 0;
};

} // namespace bvl

#endif // BVL_CPU_VEC_ENGINE_HH
