#include "sim/fault.hh"

namespace bvl
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::memDelay: return "memDelay";
      case FaultKind::cacheDelay: return "cacheDelay";
      case FaultKind::vcuStall: return "vcuStall";
      case FaultKind::vmuDrop: return "vmuDrop";
    }
    return "?";
}

FaultInjector::FaultInjector(FaultSpec spec, StatGroup &sg)
    : spec_(std::move(spec)), rng(spec_.seed), stats(sg),
      fired(spec_.script.size(), false)
{
}

void
FaultInjector::countFault(FaultKind kind, bool scripted)
{
    auto &handle = (scripted ? sKindScripted : sKind)[unsigned(kind)];
    if (!handle) {
        std::string name =
            std::string("faults.") + faultKindName(kind);
        if (scripted)
            name += ".scripted";
        handle = stats.handle(name);
    }
    handle++;
}

bool
FaultInjector::roll(double prob)
{
    // Draw only for live probabilities so that fault types stay
    // independent: enabling a scripted stall does not shift the draws
    // of a probabilistic memory-delay plan.
    if (prob <= 0.0)
        return false;
    return rng.real() < prob;
}

Cycles
FaultInjector::takeScripted(FaultKind kind, Tick now)
{
    Cycles total = 0;
    for (std::size_t i = 0; i < spec_.script.size(); ++i) {
        const ScriptedFault &f = spec_.script[i];
        if (fired[i] || f.kind != kind || f.atTick > now)
            continue;
        fired[i] = true;
        total += f.cycles;
        countFault(kind, true);
    }
    return total;
}

Cycles
FaultInjector::memResponseDelay(Tick now)
{
    if (!spec_.enabled)
        return 0;
    Cycles extra = takeScripted(FaultKind::memDelay, now);
    if (roll(spec_.memDelayProb)) {
        extra += spec_.memDelayCycles;
        countFault(FaultKind::memDelay, false);
    }
    return extra;
}

Cycles
FaultInjector::cacheResponseDelay(Tick now)
{
    if (!spec_.enabled)
        return 0;
    Cycles extra = takeScripted(FaultKind::cacheDelay, now);
    if (roll(spec_.cacheDelayProb)) {
        extra += spec_.cacheDelayCycles;
        countFault(FaultKind::cacheDelay, false);
    }
    return extra;
}

Cycles
FaultInjector::vcuStall(Tick now)
{
    if (!spec_.enabled)
        return 0;
    Cycles extra = takeScripted(FaultKind::vcuStall, now);
    if (roll(spec_.vcuStallProb)) {
        extra += spec_.vcuStallCycles;
        countFault(FaultKind::vcuStall, false);
    }
    return extra;
}

bool
FaultInjector::takeScriptedOne(FaultKind kind, Tick now)
{
    for (std::size_t i = 0; i < spec_.script.size(); ++i) {
        const ScriptedFault &f = spec_.script[i];
        if (fired[i] || f.kind != kind || f.atTick > now)
            continue;
        fired[i] = true;
        countFault(kind, true);
        return true;
    }
    return false;
}

bool
FaultInjector::dropVmuResponse(Tick now)
{
    if (!spec_.enabled)
        return false;
    // Scripted drops first: they never touch the Rng, so scripting a
    // deterministic drop does not shift a probabilistic plan's draws.
    if (takeScriptedOne(FaultKind::vmuDrop, now))
        return true;
    if (!roll(spec_.vmuDropProb))
        return false;
    countFault(FaultKind::vmuDrop, false);
    return true;
}

} // namespace bvl
