#include "sim/check/lockstep.hh"

#include <algorithm>
#include <cstdio>

namespace bvl
{

namespace
{

constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t fnvPrime = 0x100000001b3ull;

std::uint64_t
fnv1a(const void *data, std::size_t n, std::uint64_t h = fnvOffset)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= fnvPrime;
    }
    return h;
}

} // namespace

std::string
RetireRecord::brief() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "#%llu pc=%llu ",
                  static_cast<unsigned long long>(seq),
                  static_cast<unsigned long long>(pc));
    std::string out = buf;
    out += inst ? inst->toString() : "?";
    if (isMem && !isVec) {
        std::snprintf(buf, sizeof(buf), " [addr=0x%llx]",
                      static_cast<unsigned long long>(addr));
        out += buf;
    }
    if (inst && inst->rd != regIdInvalid && !isVReg(inst->rd)) {
        std::snprintf(buf, sizeof(buf), " rd=0x%llx",
                      static_cast<unsigned long long>(rdValue));
        out += buf;
    }
    return out;
}

std::string
DivergenceRecord::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "lockstep divergence on stream '%s' at tick %llu, "
                  "instr #%llu: %s",
                  stream.c_str(), static_cast<unsigned long long>(tick),
                  static_cast<unsigned long long>(seq), instr.c_str());
    std::string out = buf;
    std::snprintf(buf, sizeof(buf),
                  "\n  field %s%s: timed=0x%llx ref=0x%llx",
                  field.c_str(),
                  chime >= 0 ? (" (chime " + std::to_string(chime) + ")")
                                   .c_str()
                             : "",
                  static_cast<unsigned long long>(timedValue),
                  static_cast<unsigned long long>(refValue));
    out += buf;
    if (!lastRetires.empty()) {
        out += "\n  last retires (oldest first):";
        for (const auto &r : lastRetires)
            out += "\n    " + r;
    }
    if (!queueContext.empty()) {
        out += "\n  pipeline context:\n    ";
        for (char c : queueContext) {
            out += c;
            if (c == '\n')
                out += "    ";
        }
    }
    return out;
}

LockstepChecker::LockstepChecker(std::string streamName,
                                 unsigned vlenBits, unsigned chimes,
                                 const BackingStore &snapshot,
                                 unsigned retireContext)
    : streamName(std::move(streamName)),
      chimes(std::max(1u, chimes)),
      retireContext(std::max(1u, retireContext)),
      refArch(vlenBits),
      shadowMem(snapshot)
{
}

void
LockstepChecker::onProgramStart(const Program *p, const ArchState &arch)
{
    prog = p;
    refArch = arch;
    if (!pending.empty()) {
        throw CheckError("lockstep: stream '" + streamName +
                         "' restarted a program with " +
                         std::to_string(pending.size()) +
                         " instructions still in flight");
    }
}

RetireRecord
LockstepChecker::capture(const ArchState &arch, const ExecTrace &tr,
                         const BackingStore &mem,
                         std::uint64_t seq) const
{
    RetireRecord rec;
    rec.inst = tr.inst;
    rec.seq = seq;
    rec.pc = tr.pc;
    rec.nextPc = tr.nextPc;
    rec.op = tr.inst ? tr.inst->op : Op::nop;
    rec.isBranch = tr.isBranch;
    rec.taken = tr.taken;
    rec.isMem = tr.isMem;
    rec.isStore = tr.isStore;
    rec.isVec = tr.isVec;
    rec.addr = tr.addr;
    rec.vl = tr.vl;
    rec.sew = tr.sew;

    RegId rd = tr.inst ? tr.inst->rd : regIdInvalid;
    if (rd != regIdInvalid && !isVReg(rd))
        rec.rdValue = arch.getScalar(rd);

    if (tr.isMem && !tr.isVec) {
        std::uint8_t buf[8] = {};
        mem.read(tr.addr, buf, std::min<unsigned>(tr.size, 8));
        rec.memHash = fnv1a(buf, std::min<unsigned>(tr.size, 8));
    }
    if (!tr.elemAddrs.empty()) {
        unsigned ew = std::min<unsigned>(tr.sew ? tr.sew : 1, 8);
        std::uint64_t mh = fnvOffset;
        std::uint64_t ah = fnvOffset;
        std::uint8_t buf[8] = {};
        for (Addr a : tr.elemAddrs) {
            ah = fnv1a(&a, sizeof(a), ah);
            mem.read(a, buf, ew);
            mh = fnv1a(buf, ew, mh);
        }
        rec.memHash = mh;
        rec.addrHash = ah;
    }

    if (rd != regIdInvalid && isVReg(rd) && tr.isVec) {
        rec.hasVecDest = true;
        unsigned ew = std::min<unsigned>(tr.sew ? tr.sew : 1, 8);
        unsigned vlmax = std::max(1u, arch.vlenb() / ew);
        unsigned epc = std::max(1u, vlmax / chimes);
        unsigned slots =
            std::min((vlmax + epc - 1) / epc, maxChimeSlots);
        const auto &raw = arch.vecRaw(rd);
        for (unsigned g = 0; g < slots; ++g) {
            unsigned lo = g * epc;
            // The last slot folds any tail elements so every element
            // is covered even when vlmax does not divide evenly.
            unsigned hi = (g + 1 == slots) ? vlmax
                                           : std::min(vlmax, lo + epc);
            rec.chimeHash[g] = fnv1a(raw.data() + lo * ew,
                                     (hi - lo) * static_cast<std::size_t>(ew));
        }
        rec.chimes = slots;
    }
    return rec;
}

void
LockstepChecker::onFetchExecuted(const ArchState &arch,
                                 const ExecTrace &tr,
                                 const BackingStore &mem, Tick now)
{
    (void)now;
    std::uint64_t seq = nextSeq++;
    RetireRecord rec = capture(arch, tr, mem, seq);
    if (seq == corruptSeq) {
        rec.rdValue ^= corruptMask;
        rec.chimeHash[0] ^= corruptMask;
    }
    pending.push_back(std::move(rec));
}

void
LockstepChecker::onVecQueued()
{
    bvl_assert(!pending.empty(),
               "onVecQueued with no captured instruction");
    const RetireRecord &rec = pending.back();
    VecShadow sh;
    sh.seq = rec.seq;
    sh.hasDest = rec.hasVecDest;
    sh.chimes = rec.chimes;
    sh.inst = rec.inst;
    sh.timedHash = rec.chimeHash;
    vecFifo.push_back(std::move(sh));
}

void
LockstepChecker::onRetire(Tick now)
{
    if (pending.empty()) {
        throw CheckError("lockstep: stream '" + streamName +
                         "' retired with no instruction in flight");
    }
    RetireRecord timed = std::move(pending.front());
    pending.pop_front();

    ExecTrace rtr = stepOne(refArch, *prog, shadowMem);
    RetireRecord ref = capture(refArch, rtr, shadowMem, timed.seq);

    compare(timed, ref, now);
    ++numRetires;

    if (timed.isVec) {
        // Hand the reference chime hashes to the engine-side shadow so
        // per-uop compares (which usually arrive after retire in the
        // decoupled designs) have both sides available.
        auto it = seqToVseq.find(timed.seq);
        VecShadow *sh = nullptr;
        SeqNum vseq = 0;
        if (it != seqToVseq.end()) {
            vseq = it->second;
            auto vit = inflightVec.find(vseq);
            if (vit != inflightVec.end())
                sh = &vit->second;
        } else {
            for (auto &f : vecFifo) {
                if (f.seq == timed.seq) {
                    sh = &f;
                    break;
                }
            }
        }
        if (sh) {
            sh->refHash = ref.chimeHash;
            sh->refReady = true;
            std::uint32_t deferred = sh->deferredMask;
            sh->deferredMask = 0;
            for (unsigned c = 0; deferred; ++c, deferred >>= 1) {
                if (deferred & 1)
                    checkChime(*sh, vseq, c, now);
            }
            if (sh->completed)
                onVecComplete(vseq);
        }
    }

    pushHistory(timed);
}

void
LockstepChecker::onVecDispatch(SeqNum vseq)
{
    if (vecFifo.empty()) {
        throw CheckError("lockstep: stream '" + streamName +
                         "' engine dispatched vseq " +
                         std::to_string(vseq) +
                         " with an empty vector shadow FIFO");
    }
    VecShadow sh = std::move(vecFifo.front());
    vecFifo.pop_front();
    seqToVseq[sh.seq] = vseq;
    inflightVec.emplace(vseq, std::move(sh));
}

void
LockstepChecker::checkChime(VecShadow &sh, SeqNum vseq, unsigned chime,
                            Tick now)
{
    if (!sh.hasDest || sh.chimes == 0)
        return;
    unsigned slot = std::min(chime, sh.chimes - 1);
    if (!sh.refReady) {
        sh.deferredMask |= (1u << slot);
        return;
    }
    ++numUopChecks;
    if (sh.timedHash[slot] == sh.refHash[slot])
        return;

    DivergenceRecord rec;
    rec.stream = streamName;
    rec.seq = sh.seq;
    rec.tick = now;
    rec.instr = sh.inst ? sh.inst->toString() : "?";
    rec.field = "vector chime hash (vseq " + std::to_string(vseq) + ")";
    rec.timedValue = sh.timedHash[slot];
    rec.refValue = sh.refHash[slot];
    rec.chime = static_cast<int>(slot);
    if (contextProvider)
        rec.queueContext = contextProvider();
    rec.lastRetires.assign(history.begin(), history.end());
    // Message built before the record is moved: function-argument
    // evaluation order would otherwise be free to move first.
    std::string msg = rec.toString();
    throw CheckError(std::move(msg), std::move(rec));
}

void
LockstepChecker::onUopRetired(SeqNum vseq, unsigned chime, Tick now)
{
    auto it = inflightVec.find(vseq);
    if (it == inflightVec.end())
        return;
    checkChime(it->second, vseq, chime, now);
}

void
LockstepChecker::onVecComplete(SeqNum vseq)
{
    auto it = inflightVec.find(vseq);
    if (it == inflightVec.end())
        return;
    if (!it->second.refReady) {
        // Engine finished before the instruction retired in program
        // order; keep the shadow until onRetire fills the reference
        // hashes and re-issues this cleanup.
        it->second.completed = true;
        return;
    }
    seqToVseq.erase(it->second.seq);
    inflightVec.erase(it);
}

void
LockstepChecker::onDrain(Tick now)
{
    (void)now;
    if (!pending.empty()) {
        throw CheckError(
            "lockstep: stream '" + streamName + "' drained with " +
            std::to_string(pending.size()) +
            " fetched instructions never retired; oldest: " +
            pending.front().brief());
    }
    if (!vecFifo.empty()) {
        throw CheckError(
            "lockstep: stream '" + streamName + "' drained with " +
            std::to_string(vecFifo.size()) +
            " vector instructions queued but never dispatched");
    }
}

void
LockstepChecker::compare(const RetireRecord &timed,
                         const RetireRecord &ref, Tick now)
{
    auto check = [&](const char *field, std::uint64_t t,
                     std::uint64_t r) {
        if (t != r)
            diverge(timed, ref, now, field, t, r);
    };
    check("pc", timed.pc, ref.pc);
    check("opcode", static_cast<std::uint64_t>(timed.op),
          static_cast<std::uint64_t>(ref.op));
    check("nextPc", timed.nextPc, ref.nextPc);
    check("branch taken", timed.taken, ref.taken);
    check("is-store", timed.isStore, ref.isStore);
    check("memory address", timed.addr, ref.addr);
    check("element address hash", timed.addrHash, ref.addrHash);
    check("memory data hash", timed.memHash, ref.memHash);
    check("vl", timed.vl, ref.vl);
    check("sew", timed.sew, ref.sew);
    check("rd value", timed.rdValue, ref.rdValue);
    check("chime count", timed.chimes, ref.chimes);
    for (unsigned c = 0; c < std::min(timed.chimes, ref.chimes); ++c) {
        if (timed.chimeHash[c] != ref.chimeHash[c]) {
            diverge(timed, ref, now, "vector chime hash",
                    timed.chimeHash[c], ref.chimeHash[c],
                    static_cast<int>(c));
        }
    }
}

void
LockstepChecker::diverge(const RetireRecord &timed,
                         const RetireRecord &ref, Tick now,
                         const std::string &field,
                         std::uint64_t timedValue,
                         std::uint64_t refValue, int chime)
{
    (void)ref;
    DivergenceRecord rec;
    rec.stream = streamName;
    rec.seq = timed.seq;
    rec.tick = now;
    rec.instr = timed.inst ? timed.inst->toString() : "?";
    rec.field = field;
    rec.timedValue = timedValue;
    rec.refValue = refValue;
    rec.chime = chime;
    if (contextProvider)
        rec.queueContext = contextProvider();
    rec.lastRetires.assign(history.begin(), history.end());
    // Message built before the record is moved: function-argument
    // evaluation order would otherwise be free to move first.
    std::string msg = rec.toString();
    throw CheckError(std::move(msg), std::move(rec));
}

void
LockstepChecker::pushHistory(const RetireRecord &rec)
{
    history.push_back(rec.brief());
    while (history.size() > retireContext)
        history.pop_front();
}

} // namespace bvl
