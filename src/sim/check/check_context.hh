/**
 * @file
 * Checker front end shared by every timed component.
 *
 * A Soc owns at most one CheckContext, created only when RunOptions
 * asks for checking. Cores and engines hold a raw `CheckContext *`
 * that stays nullptr in normal runs, so the *entire* disarmed cost on
 * the retire/fetch hot paths is one null-pointer branch: no
 * allocation, no stat lookup, no virtual call (DESIGN.md §11/§12).
 *
 * The context multiplexes two independent facilities:
 *
 *  - Lockstep checking for one armed instruction stream. Hooks carry
 *    the calling component's `this` as an opaque stream tag; only the
 *    armed component reaches the LockstepChecker, other components'
 *    hooks fall through to the invariant sweep logic.
 *
 *  - Structural invariant sweeps over the registry that components
 *    populate at construction time. Sweeps run every invariantPeriod
 *    retires (across all streams), at drain points, and on demand for
 *    the watchdog's deadlock diagnostic.
 *
 * Any violation or divergence raises CheckError, which the run driver
 * maps to RunStatus::check_failed and feeds into forensics capture.
 */

#ifndef BVL_SIM_CHECK_CHECK_CONTEXT_HH
#define BVL_SIM_CHECK_CHECK_CONTEXT_HH

#include <memory>
#include <string>

#include "sim/check/invariants.hh"
#include "sim/check/lockstep.hh"
#include "sim/stats.hh"

namespace bvl
{

/** Checker knobs carried by RunOptions and SocParams. */
struct CheckOptions
{
    /** Run the functional reference model against every retire. */
    bool lockstep = false;
    /** Sweep registered structural invariants during the run. */
    bool invariants = false;
    /** Retires of pipeline history kept for divergence reports. */
    unsigned retireContext = 8;
    /** Sweep invariants every this many retires (across streams). */
    unsigned invariantPeriod = 64;
    /**
     * When non-empty, any non-ok run writes a JSON failure report
     * (with replay recipe) to this file. Works even with both
     * checkers off — forensics capture only needs the run driver.
     */
    std::string forensicsPath;

    /** True when the Soc needs to construct a CheckContext. */
    bool enabled() const { return lockstep || invariants; }
};

class CheckContext
{
  public:
    CheckContext(const CheckOptions &opts, StatGroup &stats,
                 InvariantRegistry &registry);

    const CheckOptions &options() const { return opts; }
    InvariantRegistry &invariants() { return registry; }

    /**
     * Arm lockstep checking for the stream identified by @p tag (the
     * component's address). @p vectorStream routes the engine-side
     * hooks to the checker. Returns false if lockstep was not
     * requested.
     */
    bool armLockstep(const void *tag, std::string streamName,
                     unsigned vlenBits, unsigned chimes,
                     const BackingStore &snapshot, bool vectorStream);

    bool lockstepArmed() const { return checker != nullptr; }
    LockstepChecker *lockstep() { return checker.get(); }

    /** Pipeline-state provider used in divergence reports. */
    void setContextProvider(std::function<std::string()> fn);

    // --- core-side hooks (tag = calling component's this) -------------

    void
    onProgramStart(const void *tag, const Program *prog,
                   const ArchState &arch)
    {
        if (checker && tag == armedTag)
            checker->onProgramStart(prog, arch);
    }

    void
    onFetchExecuted(const void *tag, const ArchState &arch,
                    const ExecTrace &tr, const BackingStore &mem,
                    Tick now)
    {
        if (checker && tag == armedTag)
            checker->onFetchExecuted(arch, tr, mem, now);
    }

    void
    onVecQueued(const void *tag)
    {
        if (checker && tag == armedTag)
            checker->onVecQueued();
    }

    void onRetire(const void *tag, Tick now);
    void onDrain(const void *tag, Tick now);

    // --- engine-side hooks -------------------------------------------

    void
    onVecDispatch(SeqNum vseq)
    {
        if (checker && vecArmed)
            checker->onVecDispatch(vseq);
    }

    void onUopRetired(SeqNum vseq, unsigned chime, Tick now);

    void
    onVecComplete(SeqNum vseq)
    {
        if (checker && vecArmed)
            checker->onVecComplete(vseq);
    }

    // --- invariants ---------------------------------------------------

    /** Sweep now; throws CheckError naming every violated invariant. */
    void sweepInvariants(const char *where);

    /**
     * Non-throwing sweep for the watchdog diagnostic: returns "" when
     * everything holds, else the violation report.
     */
    std::string invariantReport();

  private:
    CheckOptions opts;
    InvariantRegistry &registry;

    std::unique_ptr<LockstepChecker> checker;
    const void *armedTag = nullptr;
    bool vecArmed = false;
    /** Provider installed before arming; handed to the checker. */
    std::function<std::string()> pendingContextProvider;

    std::uint64_t retireCount = 0;

    StatHandle sRetires;
    StatHandle sUops;
    StatHandle sSweeps;
    StatHandle sDivergences;
};

} // namespace bvl

#endif // BVL_SIM_CHECK_CHECK_CONTEXT_HH
