#include "sim/check/check_context.hh"

namespace bvl
{

CheckContext::CheckContext(const CheckOptions &opts, StatGroup &stats,
                           InvariantRegistry &registry)
    : opts(opts), registry(registry),
      sRetires(stats.handle("check.retires")),
      sUops(stats.handle("check.uops")),
      sSweeps(stats.handle("check.sweeps")),
      sDivergences(stats.handle("check.divergences"))
{
    bvl_assert(this->opts.invariantPeriod > 0,
               "invariantPeriod must be positive");
}

bool
CheckContext::armLockstep(const void *tag, std::string streamName,
                          unsigned vlenBits, unsigned chimes,
                          const BackingStore &snapshot,
                          bool vectorStream)
{
    if (!opts.lockstep)
        return false;
    bvl_assert(!checker, "lockstep already armed for stream '%s'",
               checker ? checker->stream().c_str() : "");
    checker = std::make_unique<LockstepChecker>(
        std::move(streamName), vlenBits, chimes, snapshot,
        opts.retireContext);
    armedTag = tag;
    vecArmed = vectorStream;
    if (pendingContextProvider)
        checker->setContextProvider(std::move(pendingContextProvider));
    return true;
}

void
CheckContext::setContextProvider(std::function<std::string()> fn)
{
    if (checker)
        checker->setContextProvider(std::move(fn));
    else
        pendingContextProvider = std::move(fn);
}

void
CheckContext::onRetire(const void *tag, Tick now)
{
    if (checker && tag == armedTag) {
        sRetires++;
        try {
            checker->onRetire(now);
        } catch (const CheckError &) {
            sDivergences++;
            throw;
        }
    }
    if (opts.invariants && ++retireCount % opts.invariantPeriod == 0)
        sweepInvariants("retire");
}

void
CheckContext::onDrain(const void *tag, Tick now)
{
    if (checker && tag == armedTag)
        checker->onDrain(now);
    if (opts.invariants)
        sweepInvariants("drain");
}

void
CheckContext::onUopRetired(SeqNum vseq, unsigned chime, Tick now)
{
    if (!checker || !vecArmed)
        return;
    sUops++;
    try {
        checker->onUopRetired(vseq, chime, now);
    } catch (const CheckError &) {
        sDivergences++;
        throw;
    }
}

void
CheckContext::sweepInvariants(const char *where)
{
    sSweeps++;
    std::string violations = registry.sweep();
    if (!violations.empty()) {
        sDivergences++;
        throw CheckError(std::string("invariant violation (at ") +
                         where + "):\n" + violations);
    }
}

std::string
CheckContext::invariantReport()
{
    sSweeps++;
    return registry.sweep();
}

} // namespace bvl
