/**
 * @file
 * Online lockstep checker.
 *
 * When armed, the checker runs a private functional model — a
 * reference ArchState plus a *shadow* BackingStore snapshotted at arm
 * time — in parallel with the timed execution of one instruction
 * stream, and compares every retired instruction against it:
 * destination value, memory address and data, PC and branch outcome,
 * and per-chime hashes of vector destination registers so a wrong
 * vector micro-op is caught at the chime that produced it. The first
 * mismatch raises CheckError carrying a DivergenceRecord with the
 * pipeline context captured at that tick, instead of letting the run
 * finish and fail a final-state diff.
 *
 * The comparison is exact only for single-program-stream runs (one
 * core executing one program, optionally offloading vector work to
 * one engine): with multiple cores racing on shared memory the shadow
 * store cannot reproduce the timed interleaving. Soc::armLockstep
 * refuses to arm for those shapes and the run falls back to
 * structural invariants only (DESIGN.md §12).
 *
 * Both sides build their RetireRecord through the same capture
 * function, so any disagreement in partitioning or hashing cancels
 * out — a compare can only fail on a genuine semantic difference (or
 * the deliberate test corruption hook).
 */

#ifndef BVL_SIM_CHECK_LOCKSTEP_HH
#define BVL_SIM_CHECK_LOCKSTEP_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/arch_state.hh"
#include "mem/backing_store.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace bvl
{

/** Maximum chime groups tracked per vector destination register. */
constexpr unsigned maxChimeSlots = 8;

/**
 * Everything compared about one retired instruction. Built by
 * LockstepChecker::capture for both the timed and the reference side.
 */
struct RetireRecord
{
    const Instr *inst = nullptr; ///< static instruction (program-owned)
    std::uint64_t seq = 0;      ///< per-stream dynamic instruction number
    std::uint64_t pc = 0;
    std::uint64_t nextPc = 0;
    Op op = Op::nop;
    bool isBranch = false;
    bool taken = false;
    bool isMem = false;
    bool isStore = false;
    bool isVec = false;
    bool hasVecDest = false;    ///< destination is a vector register
    Addr addr = 0;              ///< scalar memory address
    std::uint32_t vl = 0;
    std::uint8_t sew = 0;
    std::uint64_t rdValue = 0;  ///< scalar destination value after execute
    std::uint64_t memHash = 0;  ///< FNV over accessed memory bytes
    std::uint64_t addrHash = 0; ///< FNV over vector element addresses
    unsigned chimes = 0;        ///< valid entries in chimeHash
    std::array<std::uint64_t, maxChimeSlots> chimeHash{};

    std::string brief() const;  ///< one-line form for retire history
};

/** First-divergence report: what, where, and the pipeline around it. */
struct DivergenceRecord
{
    std::string stream;         ///< armed stream name, e.g. "big"
    std::uint64_t seq = 0;
    Tick tick = 0;
    std::string instr;          ///< disassembly of the diverging instr
    std::string field;          ///< which compared field mismatched
    std::uint64_t timedValue = 0;
    std::uint64_t refValue = 0;
    int chime = -1;             ///< chime slot for vector mismatches
    std::string queueContext;   ///< in-flight VMU/VCU/pipeline state
    std::vector<std::string> lastRetires; ///< last N retires, oldest first

    std::string toString() const;
};

/** Raised on the first lockstep divergence or invariant violation. */
class CheckError : public SimError
{
  public:
    explicit CheckError(std::string msg) : SimError(std::move(msg)) {}
    CheckError(std::string msg, DivergenceRecord rec)
        : SimError(std::move(msg)), _divergence(std::move(rec)),
          _hasDivergence(true)
    {}

    bool hasDivergence() const { return _hasDivergence; }
    const DivergenceRecord &divergence() const { return _divergence; }

  private:
    DivergenceRecord _divergence;
    bool _hasDivergence = false;
};

class LockstepChecker
{
  public:
    /**
     * @param streamName  armed stream, for reports ("big", "little0")
     * @param vlenBits    hardware VLEN of the armed stream
     * @param chimes      chime count of the serving vector engine (1
     *                    when the stream has no engine)
     * @param snapshot    backing store contents at arm time; copied
     * @param retireContext  size of the last-retires history ring
     */
    LockstepChecker(std::string streamName, unsigned vlenBits,
                    unsigned chimes, const BackingStore &snapshot,
                    unsigned retireContext);

    /**
     * Timed stream is (re)starting @p prog with its architectural
     * state already reset and arguments applied; mirror it.
     */
    void onProgramStart(const Program *prog, const ArchState &arch);

    /**
     * Timed stream functionally executed one instruction (trace @p tr,
     * state @p arch now *after* the step, memory effects applied to
     * @p mem). Queues the timed-side record for the retire compare.
     */
    void onFetchExecuted(const ArchState &arch, const ExecTrace &tr,
                         const BackingStore &mem, Tick now);

    /** The instruction just captured was queued for the vector engine. */
    void onVecQueued();

    /**
     * Oldest in-flight instruction retired: step the reference model,
     * compare, and throw CheckError on the first mismatch.
     */
    void onRetire(Tick now);

    /** Engine dispatched the next queued vector instruction as @p vseq. */
    void onVecDispatch(SeqNum vseq);

    /** Engine retired chime @p chime of instruction @p vseq. */
    void onUopRetired(SeqNum vseq, unsigned chime, Tick now);

    /** Engine fully completed @p vseq; drop its shadow entry. */
    void onVecComplete(SeqNum vseq);

    /** Retire-ordered stream drained; verify nothing is left pending. */
    void onDrain(Tick now);

    /**
     * Test hook: XOR @p mask into the timed-side destination value and
     * first chime hash of dynamic instruction @p seq, seeding a
     * divergence the checker must catch at that instruction's retire.
     */
    void
    corruptRetireForTest(std::uint64_t seq, std::uint64_t mask)
    {
        corruptSeq = seq;
        corruptMask = mask;
    }

    /** Context provider queried once when building a divergence. */
    void
    setContextProvider(std::function<std::string()> fn)
    {
        contextProvider = std::move(fn);
    }

    std::uint64_t retires() const { return numRetires; }
    std::uint64_t uopChecks() const { return numUopChecks; }
    const std::string &stream() const { return streamName; }

  private:
    /** Shared capture: hash state + trace into a comparable record. */
    RetireRecord capture(const ArchState &arch, const ExecTrace &tr,
                         const BackingStore &mem, std::uint64_t seq) const;

    [[noreturn]] void diverge(const RetireRecord &timed,
                              const RetireRecord &ref, Tick now,
                              const std::string &field,
                              std::uint64_t timedValue,
                              std::uint64_t refValue, int chime = -1);

    void compare(const RetireRecord &timed, const RetireRecord &ref,
                 Tick now);
    void pushHistory(const RetireRecord &rec);

    /** Per-chime state of one engine-dispatched vector instruction. */
    struct VecShadow
    {
        std::uint64_t seq = 0;
        bool hasDest = false;
        bool refReady = false;
        bool completed = false;
        unsigned chimes = 0;
        const Instr *inst = nullptr;
        std::array<std::uint64_t, maxChimeSlots> timedHash{};
        std::array<std::uint64_t, maxChimeSlots> refHash{};
        /** Chimes retired by the engine before the ref side stepped. */
        std::uint32_t deferredMask = 0;
    };

    void checkChime(VecShadow &sh, SeqNum vseq, unsigned chime,
                    Tick now);

    std::string streamName;
    unsigned chimes;
    unsigned retireContext;

    const Program *prog = nullptr;
    ArchState refArch;
    BackingStore shadowMem;

    /** Timed-side records between fetch and retire, oldest first. */
    std::deque<RetireRecord> pending;
    /** Ring of the last retireContext retires (both sides agreed). */
    std::deque<std::string> history;

    /** Captured vec records awaiting engine dispatch, oldest first. */
    std::deque<VecShadow> vecFifo;
    std::unordered_map<SeqNum, VecShadow> inflightVec;
    std::unordered_map<std::uint64_t, SeqNum> seqToVseq;

    std::function<std::string()> contextProvider;

    std::uint64_t nextSeq = 0;
    std::uint64_t numRetires = 0;
    std::uint64_t numUopChecks = 0;

    std::uint64_t corruptSeq = ~0ull;
    std::uint64_t corruptMask = 0;
};

} // namespace bvl

#endif // BVL_SIM_CHECK_LOCKSTEP_HH
