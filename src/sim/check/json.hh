/**
 * @file
 * Minimal self-contained JSON value type, writer and parser.
 *
 * The forensics subsystem serializes failure reports and replay
 * recipes as JSON so they can be archived, diffed and fed back into
 * the simulator. The repo deliberately has no third-party
 * dependencies beyond the test/bench frameworks, so this is a small
 * hand-rolled implementation covering exactly what the reports need:
 * null/bool/number/string/array/object, 64-bit-exact integers (seeds
 * and ticks do not fit a double), and a strict recursive-descent
 * parser that throws SimFatalError on malformed input.
 *
 * Objects preserve insertion order so reports are stable and
 * diff-friendly; lookup is linear, which is fine for the small
 * documents involved.
 */

#ifndef BVL_SIM_CHECK_JSON_HH
#define BVL_SIM_CHECK_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bvl
{

class Json
{
  public:
    enum class Kind
    {
        null,
        boolean,
        number,
        string,
        array,
        object,
    };

    Json() = default;
    Json(bool b) : _kind(Kind::boolean), b(b) {}
    Json(double v) : _kind(Kind::number), d(v) {}
    Json(std::uint64_t v)
        : _kind(Kind::number), d(static_cast<double>(v)), u(v),
          integral(true)
    {}
    Json(std::int64_t v)
        : _kind(Kind::number), d(static_cast<double>(v)),
          u(static_cast<std::uint64_t>(v)), integral(true),
          negative(v < 0)
    {}
    Json(int v) : Json(static_cast<std::int64_t>(v)) {}
    Json(unsigned v) : Json(static_cast<std::uint64_t>(v)) {}
    Json(std::string v) : _kind(Kind::string), s(std::move(v)) {}
    Json(const char *v) : _kind(Kind::string), s(v) {}

    static Json
    array()
    {
        Json j;
        j._kind = Kind::array;
        return j;
    }

    static Json
    object()
    {
        Json j;
        j._kind = Kind::object;
        return j;
    }

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::null; }

    bool asBool() const { return b; }
    double asDouble() const { return d; }
    /** Exact unsigned value when the token was an integer literal. */
    std::uint64_t
    asU64() const
    {
        return integral ? u : static_cast<std::uint64_t>(d);
    }
    std::int64_t
    asI64() const
    {
        return integral ? static_cast<std::int64_t>(u)
                        : static_cast<std::int64_t>(d);
    }
    const std::string &asString() const { return s; }

    // --- array ---
    std::size_t size() const { return arr.size(); }
    const Json &at(std::size_t i) const { return arr[i]; }
    void push(Json v) { _kind = Kind::array; arr.push_back(std::move(v)); }
    const std::vector<Json> &items() const { return arr; }

    // --- object ---
    void
    set(std::string key, Json v)
    {
        _kind = Kind::object;
        for (auto &kv : obj) {
            if (kv.first == key) {
                kv.second = std::move(v);
                return;
            }
        }
        obj.emplace_back(std::move(key), std::move(v));
    }

    bool has(const std::string &key) const { return find(key) != nullptr; }

    /** Member lookup; returns a shared null value if absent. */
    const Json &operator[](const std::string &key) const;

    const std::vector<std::pair<std::string, Json>> &
    members() const
    {
        return obj;
    }

    /** Serialize; indent <= 0 emits a single compact line. */
    std::string dump(int indent = 2) const;

    /** Parse a complete document; throws SimFatalError on errors. */
    static Json parse(const std::string &text);

  private:
    const Json *find(const std::string &key) const;
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind _kind = Kind::null;
    bool b = false;
    double d = 0.0;
    std::uint64_t u = 0;
    bool integral = false;
    bool negative = false;
    std::string s;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;
};

} // namespace bvl

#endif // BVL_SIM_CHECK_JSON_HH
