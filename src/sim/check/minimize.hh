/**
 * @file
 * Automatic fault-plan minimization (delta debugging).
 *
 * Given a replay recipe whose scripted fault plan makes the run fail,
 * minimizeFaultPlan() shrinks the script to a minimal subset of
 * injections that still produces the *same* failure status, using the
 * classic ddmin algorithm over script indices. Every candidate subset
 * is an independent deterministic simulation, so each ddmin round
 * fans its candidates out on a SweepRunner; results are consumed in
 * submission order and the first still-failing candidate (in that
 * order) is adopted, which makes the minimization deterministic for
 * any BVL_JOBS value.
 *
 * The result is verified 1-minimal: removing any single remaining
 * injection makes the failure disappear.
 */

#ifndef BVL_SIM_CHECK_MINIMIZE_HH
#define BVL_SIM_CHECK_MINIMIZE_HH

#include <cstddef>
#include <vector>

#include "sim/check/forensics.hh"

namespace bvl
{

struct MinimizeOptions
{
    /** SweepRunner thread count (0 = BVL_JOBS / hardware threads). */
    unsigned jobs = 0;
    /** Safety cap on total oracle simulations (incl. the baseline). */
    unsigned maxOracleRuns = 512;
};

struct MinimizeOutcome
{
    /** The shrunk plan (recipe's options.faults with a minimal script). */
    ReplayRecipe minimal;
    /** Failure status the minimization preserved. */
    RunStatus target = RunStatus::ok;
    /** Total simulations executed, including the baseline. */
    unsigned oracleRuns = 0;
    /** True when every single removal was verified to pass. */
    bool oneMinimal = false;
    /** Surviving script positions in the *original* plan, ascending. */
    std::vector<std::size_t> keptIndices;
};

/**
 * Shrink @p failing's scripted fault plan. The recipe must fail as
 * given (throws SimFatalError if the baseline run is ok). A recipe
 * whose failure does not depend on scripted entries minimizes to an
 * empty script.
 */
MinimizeOutcome minimizeFaultPlan(const ReplayRecipe &failing,
                                  const MinimizeOptions &opts = {});

} // namespace bvl

#endif // BVL_SIM_CHECK_MINIMIZE_HH
