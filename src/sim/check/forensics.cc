#include "sim/check/forensics.hh"

#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace bvl
{

const char *
scaleName(Scale s)
{
    switch (s) {
      case Scale::tiny: return "tiny";
      case Scale::small: return "small";
      case Scale::medium: return "medium";
    }
    return "?";
}

namespace
{

Scale
parseScale(const std::string &name)
{
    for (Scale s : {Scale::tiny, Scale::small, Scale::medium})
        if (name == scaleName(s))
            return s;
    fatal("replay recipe: unknown scale '%s'", name.c_str());
}

Design
parseDesign(const std::string &name)
{
    for (Design d : {Design::d1L, Design::d1b, Design::d1bIV,
                     Design::d1b4L, Design::d1bIV4L, Design::d1bDV,
                     Design::d1b4VL})
        if (name == designName(d))
            return d;
    fatal("replay recipe: unknown design '%s'", name.c_str());
}

FaultKind
parseFaultKind(const std::string &name)
{
    for (FaultKind k : {FaultKind::memDelay, FaultKind::cacheDelay,
                        FaultKind::vcuStall, FaultKind::vmuDrop})
        if (name == faultKindName(k))
            return k;
    fatal("replay recipe: unknown fault kind '%s'", name.c_str());
}

Json
checkOptionsToJson(const CheckOptions &c)
{
    Json j = Json::object();
    j.set("lockstep", c.lockstep);
    j.set("invariants", c.invariants);
    j.set("retireContext", c.retireContext);
    j.set("invariantPeriod", c.invariantPeriod);
    j.set("forensicsPath", c.forensicsPath);
    return j;
}

CheckOptions
checkOptionsFromJson(const Json &j)
{
    CheckOptions c;
    if (j.isNull())
        return c;
    if (j.has("lockstep"))
        c.lockstep = j["lockstep"].asBool();
    if (j.has("invariants"))
        c.invariants = j["invariants"].asBool();
    if (j.has("retireContext"))
        c.retireContext =
            static_cast<unsigned>(j["retireContext"].asU64());
    if (j.has("invariantPeriod"))
        c.invariantPeriod =
            static_cast<unsigned>(j["invariantPeriod"].asU64());
    if (j.has("forensicsPath"))
        c.forensicsPath = j["forensicsPath"].asString();
    return c;
}

Json
traceOptionsToJson(const TraceOptions &t)
{
    Json j = Json::object();
    j.set("path", t.path);
    j.set("samplePath", t.samplePath);
    j.set("startNs", t.startNs);
    j.set("stopNs", t.stopNs);
    j.set("categories", static_cast<std::uint64_t>(t.categories));
    j.set("sampleIntervalNs", t.sampleIntervalNs);
    return j;
}

TraceOptions
traceOptionsFromJson(const Json &j)
{
    TraceOptions t;
    if (j.isNull())
        return t;
    if (j.has("path"))
        t.path = j["path"].asString();
    if (j.has("samplePath"))
        t.samplePath = j["samplePath"].asString();
    if (j.has("startNs"))
        t.startNs = j["startNs"].asDouble();
    if (j.has("stopNs"))
        t.stopNs = j["stopNs"].asDouble();
    if (j.has("categories"))
        t.categories = static_cast<unsigned>(j["categories"].asU64());
    if (j.has("sampleIntervalNs"))
        t.sampleIntervalNs = j["sampleIntervalNs"].asDouble();
    return t;
}

Json
runOptionsToJson(const RunOptions &o)
{
    Json j = Json::object();
    j.set("bigGhz", o.bigGhz);
    j.set("littleGhz", o.littleGhz);
    j.set("limitNs", o.limitNs);
    j.set("verifyResult", o.verifyResult);
    j.set("watchdog", o.watchdog);
    j.set("watchdogIntervalNs", o.watchdogIntervalNs);
    j.set("faults", faultSpecToJson(o.faults));
    j.set("check", checkOptionsToJson(o.check));
    j.set("trace", traceOptionsToJson(o.trace));
    return j;
}

RunOptions
runOptionsFromJson(const Json &j)
{
    RunOptions o;
    if (j.isNull())
        return o;
    if (j.has("bigGhz"))
        o.bigGhz = j["bigGhz"].asDouble();
    if (j.has("littleGhz"))
        o.littleGhz = j["littleGhz"].asDouble();
    if (j.has("limitNs"))
        o.limitNs = j["limitNs"].asDouble();
    if (j.has("verifyResult"))
        o.verifyResult = j["verifyResult"].asBool();
    if (j.has("watchdog"))
        o.watchdog = j["watchdog"].asBool();
    if (j.has("watchdogIntervalNs"))
        o.watchdogIntervalNs = j["watchdogIntervalNs"].asDouble();
    o.faults = faultSpecFromJson(j["faults"]);
    o.check = checkOptionsFromJson(j["check"]);
    if (j.has("trace"))
        o.trace = traceOptionsFromJson(j["trace"]);
    return o;
}

} // namespace

Json
faultSpecToJson(const FaultSpec &spec)
{
    Json j = Json::object();
    j.set("enabled", spec.enabled);
    j.set("seed", spec.seed);
    j.set("memDelayProb", spec.memDelayProb);
    j.set("memDelayCycles", spec.memDelayCycles);
    j.set("cacheDelayProb", spec.cacheDelayProb);
    j.set("cacheDelayCycles", spec.cacheDelayCycles);
    j.set("vcuStallProb", spec.vcuStallProb);
    j.set("vcuStallCycles", spec.vcuStallCycles);
    j.set("vmuDropProb", spec.vmuDropProb);
    j.set("vmuMaxRetries", spec.vmuMaxRetries);
    j.set("vmuRetryDelay", spec.vmuRetryDelay);
    Json script = Json::array();
    for (const auto &f : spec.script) {
        Json e = Json::object();
        e.set("atTick", f.atTick);
        e.set("kind", faultKindName(f.kind));
        e.set("cycles", f.cycles);
        script.push(std::move(e));
    }
    j.set("script", std::move(script));
    return j;
}

FaultSpec
faultSpecFromJson(const Json &j)
{
    FaultSpec spec;
    if (j.isNull())
        return spec;
    if (j.has("enabled"))
        spec.enabled = j["enabled"].asBool();
    if (j.has("seed"))
        spec.seed = j["seed"].asU64();
    if (j.has("memDelayProb"))
        spec.memDelayProb = j["memDelayProb"].asDouble();
    if (j.has("memDelayCycles"))
        spec.memDelayCycles = j["memDelayCycles"].asU64();
    if (j.has("cacheDelayProb"))
        spec.cacheDelayProb = j["cacheDelayProb"].asDouble();
    if (j.has("cacheDelayCycles"))
        spec.cacheDelayCycles = j["cacheDelayCycles"].asU64();
    if (j.has("vcuStallProb"))
        spec.vcuStallProb = j["vcuStallProb"].asDouble();
    if (j.has("vcuStallCycles"))
        spec.vcuStallCycles = j["vcuStallCycles"].asU64();
    if (j.has("vmuDropProb"))
        spec.vmuDropProb = j["vmuDropProb"].asDouble();
    if (j.has("vmuMaxRetries"))
        spec.vmuMaxRetries =
            static_cast<unsigned>(j["vmuMaxRetries"].asU64());
    if (j.has("vmuRetryDelay"))
        spec.vmuRetryDelay = j["vmuRetryDelay"].asU64();
    for (const auto &e : j["script"].items()) {
        ScriptedFault f;
        f.atTick = e["atTick"].asU64();
        f.kind = parseFaultKind(e["kind"].asString());
        f.cycles = e["cycles"].asU64();
        spec.script.push_back(f);
    }
    return spec;
}

Json
replayRecipeToJson(const ReplayRecipe &recipe)
{
    Json j = Json::object();
    j.set("design", designName(recipe.design));
    j.set("workload", recipe.workload);
    j.set("scale", scaleName(recipe.scale));
    j.set("options", runOptionsToJson(recipe.options));
    return j;
}

ReplayRecipe
replayRecipeFromJson(const Json &j)
{
    if (!j.has("design") || !j.has("workload") || !j.has("scale"))
        fatal("replay recipe: missing design/workload/scale");
    ReplayRecipe recipe;
    recipe.design = parseDesign(j["design"].asString());
    recipe.workload = j["workload"].asString();
    recipe.scale = parseScale(j["scale"].asString());
    recipe.options = runOptionsFromJson(j["options"]);
    return recipe;
}

Json
buildFailureReport(const RunResult &r, const ReplayRecipe &recipe)
{
    Json j = Json::object();
    j.set("schema", "bvl-failure-report-v1");
    j.set("status", runStatusName(r.status));
    j.set("workload", r.workload);
    j.set("design", r.design);
    j.set("message", r.message);
    j.set("finished", r.finished);
    j.set("verified", r.verified);
    j.set("ns", r.ns);

    Json beats = Json::array();
    for (const auto &hb : r.heartbeats) {
        Json b = Json::object();
        b.set("name", hb.name);
        b.set("progress", hb.progress);
        b.set("lastAdvance", hb.lastAdvance);
        b.set("detail", hb.detail);
        beats.push(std::move(b));
    }
    j.set("heartbeats", std::move(beats));

    if (r.divergence) {
        const DivergenceRecord &d = *r.divergence;
        Json dv = Json::object();
        dv.set("stream", d.stream);
        dv.set("seq", d.seq);
        dv.set("tick", d.tick);
        dv.set("instr", d.instr);
        dv.set("field", d.field);
        dv.set("timedValue", d.timedValue);
        dv.set("refValue", d.refValue);
        dv.set("chime", d.chime);
        dv.set("queueContext", d.queueContext);
        Json hist = Json::array();
        for (const auto &line : d.lastRetires)
            hist.push(line);
        dv.set("lastRetires", std::move(hist));
        j.set("divergence", std::move(dv));
    } else {
        j.set("divergence", Json());
    }

    j.set("invariantViolations", r.invariantViolations);
    j.set("log", r.log);

    Json stats = Json::object();
    for (const auto &kv : r.stats)
        stats.set(kv.first, kv.second);
    j.set("stats", std::move(stats));

    j.set("replay", replayRecipeToJson(recipe));
    return j;
}

bool
writeFailureReport(const std::string &path, const RunResult &r,
                   const ReplayRecipe &recipe)
{
    std::ofstream out(path);
    if (!out) {
        warn("forensics: cannot write failure report to %s",
             path.c_str());
        return false;
    }
    out << buildFailureReport(r, recipe).dump(2) << "\n";
    out.flush();
    if (!out) {
        warn("forensics: short write of failure report %s",
             path.c_str());
        return false;
    }
    return true;
}

ReplayRecipe
loadReplayRecipe(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("forensics: cannot read %s", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    Json doc = Json::parse(text.str());
    // Accept a full failure report or a bare recipe document.
    const Json &recipe = doc.has("replay") ? doc["replay"] : doc;
    return replayRecipeFromJson(recipe);
}

RunResult
runReplay(const ReplayRecipe &recipe)
{
    ReplayRecipe rerun = recipe;
    // Never clobber the report being replayed from.
    rerun.options.check.forensicsPath.clear();
    return runWorkload(rerun.design, rerun.workload, rerun.scale,
                       rerun.options);
}

} // namespace bvl
