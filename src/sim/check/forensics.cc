#include "sim/check/forensics.hh"

#include "sim/io/sim_io.hh"
#include "sim/logging.hh"
#include "soc/run_io.hh"

namespace bvl
{

const char *
scaleName(Scale s)
{
    switch (s) {
      case Scale::tiny: return "tiny";
      case Scale::small: return "small";
      case Scale::medium: return "medium";
    }
    return "?";
}

namespace
{

Scale
parseScale(const std::string &name)
{
    for (Scale s : {Scale::tiny, Scale::small, Scale::medium})
        if (name == scaleName(s))
            return s;
    fatal("replay recipe: unknown scale '%s'", name.c_str());
}

Design
parseDesign(const std::string &name)
{
    for (Design d : {Design::d1L, Design::d1b, Design::d1bIV,
                     Design::d1b4L, Design::d1bIV4L, Design::d1bDV,
                     Design::d1b4VL})
        if (name == designName(d))
            return d;
    fatal("replay recipe: unknown design '%s'", name.c_str());
}

FaultKind
parseFaultKind(const std::string &name)
{
    for (FaultKind k : {FaultKind::memDelay, FaultKind::cacheDelay,
                        FaultKind::vcuStall, FaultKind::vmuDrop})
        if (name == faultKindName(k))
            return k;
    fatal("replay recipe: unknown fault kind '%s'", name.c_str());
}

} // namespace

Json
faultSpecToJson(const FaultSpec &spec)
{
    Json j = Json::object();
    j.set("enabled", spec.enabled);
    j.set("seed", spec.seed);
    j.set("memDelayProb", spec.memDelayProb);
    j.set("memDelayCycles", spec.memDelayCycles);
    j.set("cacheDelayProb", spec.cacheDelayProb);
    j.set("cacheDelayCycles", spec.cacheDelayCycles);
    j.set("vcuStallProb", spec.vcuStallProb);
    j.set("vcuStallCycles", spec.vcuStallCycles);
    j.set("vmuDropProb", spec.vmuDropProb);
    j.set("vmuMaxRetries", spec.vmuMaxRetries);
    j.set("vmuRetryDelay", spec.vmuRetryDelay);
    Json script = Json::array();
    for (const auto &f : spec.script) {
        Json e = Json::object();
        e.set("atTick", f.atTick);
        e.set("kind", faultKindName(f.kind));
        e.set("cycles", f.cycles);
        script.push(std::move(e));
    }
    j.set("script", std::move(script));
    return j;
}

FaultSpec
faultSpecFromJson(const Json &j)
{
    FaultSpec spec;
    if (j.isNull())
        return spec;
    if (j.has("enabled"))
        spec.enabled = j["enabled"].asBool();
    if (j.has("seed"))
        spec.seed = j["seed"].asU64();
    if (j.has("memDelayProb"))
        spec.memDelayProb = j["memDelayProb"].asDouble();
    if (j.has("memDelayCycles"))
        spec.memDelayCycles = j["memDelayCycles"].asU64();
    if (j.has("cacheDelayProb"))
        spec.cacheDelayProb = j["cacheDelayProb"].asDouble();
    if (j.has("cacheDelayCycles"))
        spec.cacheDelayCycles = j["cacheDelayCycles"].asU64();
    if (j.has("vcuStallProb"))
        spec.vcuStallProb = j["vcuStallProb"].asDouble();
    if (j.has("vcuStallCycles"))
        spec.vcuStallCycles = j["vcuStallCycles"].asU64();
    if (j.has("vmuDropProb"))
        spec.vmuDropProb = j["vmuDropProb"].asDouble();
    if (j.has("vmuMaxRetries"))
        spec.vmuMaxRetries =
            static_cast<unsigned>(j["vmuMaxRetries"].asU64());
    if (j.has("vmuRetryDelay"))
        spec.vmuRetryDelay = j["vmuRetryDelay"].asU64();
    for (const auto &e : j["script"].items()) {
        ScriptedFault f;
        f.atTick = e["atTick"].asU64();
        f.kind = parseFaultKind(e["kind"].asString());
        f.cycles = e["cycles"].asU64();
        spec.script.push_back(f);
    }
    return spec;
}

Json
replayRecipeToJson(const ReplayRecipe &recipe)
{
    Json j = Json::object();
    j.set("design", designName(recipe.design));
    j.set("workload", recipe.workload);
    j.set("scale", scaleName(recipe.scale));
    j.set("options", runOptionsToJson(recipe.options));
    return j;
}

ReplayRecipe
replayRecipeFromJson(const Json &j)
{
    if (!j.has("design") || !j.has("workload") || !j.has("scale"))
        fatal("replay recipe: missing design/workload/scale");
    ReplayRecipe recipe;
    recipe.design = parseDesign(j["design"].asString());
    recipe.workload = j["workload"].asString();
    recipe.scale = parseScale(j["scale"].asString());
    recipe.options = runOptionsFromJson(j["options"]);
    return recipe;
}

Json
buildFailureReport(const RunResult &r, const ReplayRecipe &recipe)
{
    Json j = Json::object();
    j.set("schema", "bvl-failure-report-v1");
    j.set("status", runStatusName(r.status));
    j.set("workload", r.workload);
    j.set("design", r.design);
    j.set("message", r.message);
    j.set("finished", r.finished);
    j.set("verified", r.verified);
    j.set("ns", r.ns);

    j.set("heartbeats", heartbeatsToJson(r.heartbeats));
    j.set("divergence",
          r.divergence ? divergenceToJson(*r.divergence) : Json());

    j.set("invariantViolations", r.invariantViolations);
    j.set("log", r.log);

    Json stats = Json::object();
    for (const auto &kv : r.stats)
        stats.set(kv.first, kv.second);
    j.set("stats", std::move(stats));

    j.set("replay", replayRecipeToJson(recipe));
    return j;
}

bool
writeFailureReport(const std::string &path, const RunResult &r,
                   const ReplayRecipe &recipe)
{
    // A report that cannot be written costs a warning, never the
    // run's own status — the failure being reported is the news, not
    // the reporting. Atomic publish so a torn report is never
    // mistaken for a complete one.
    std::string text = buildFailureReport(r, recipe).dump(2);
    text += '\n';
    std::string err;
    if (!io::writeFileAtomic("forensics.report", path, text, &err)) {
        warn("forensics: short write of failure report %s (%s)",
             path.c_str(), err.c_str());
        return false;
    }
    return true;
}

ReplayRecipe
loadReplayRecipe(const std::string &path)
{
    std::string text;
    std::string err;
    if (!io::readFile("forensics.recipe.read", path, &text, nullptr,
                      &err))
        fatal("forensics: cannot read %s: %s", path.c_str(),
              err.c_str());
    Json doc = Json::parse(text);
    // Accept a full failure report or a bare recipe document.
    const Json &recipe = doc.has("replay") ? doc["replay"] : doc;
    return replayRecipeFromJson(recipe);
}

RunResult
runReplay(const ReplayRecipe &recipe)
{
    ReplayRecipe rerun = recipe;
    // Never clobber the report being replayed from.
    rerun.options.check.forensicsPath.clear();
    return runWorkload(rerun.design, rerun.workload, rerun.scale,
                       rerun.options);
}

} // namespace bvl
