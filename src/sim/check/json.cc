#include "sim/check/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sim/logging.hh"

namespace bvl
{

namespace
{

const Json nullValue{};

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const char *what)
    {
        fatal("json: %s at offset %zu", what, pos);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    char
    peek()
    {
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = std::char_traits<char>::length(lit);
        if (text.compare(pos, n, lit) != 0)
            return false;
        pos += n;
        return true;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Reports only emit \u for control characters; encode
                // anything else as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    Json
    parseNumber()
    {
        std::size_t start = pos;
        bool neg = false;
        bool isFloat = false;
        if (peek() == '-') {
            neg = true;
            ++pos;
        }
        while (pos < text.size()) {
            char c = text[pos];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isFloat = true;
                ++pos;
            } else {
                break;
            }
        }
        std::string tok = text.substr(start, pos - start);
        if (tok.empty() || tok == "-")
            fail("bad number");
        if (!isFloat) {
            errno = 0;
            if (neg) {
                std::int64_t v = std::strtoll(tok.c_str(), nullptr, 10);
                if (errno == 0)
                    return Json(v);
            } else {
                std::uint64_t v = std::strtoull(tok.c_str(), nullptr, 10);
                if (errno == 0)
                    return Json(v);
            }
        }
        return Json(std::strtod(tok.c_str(), nullptr));
    }

    Json
    parseValue()
    {
        skipWs();
        char c = peek();
        if (c == '{') {
            ++pos;
            Json out = Json::object();
            skipWs();
            if (peek() == '}') {
                ++pos;
                return out;
            }
            while (true) {
                skipWs();
                std::string key = parseString();
                skipWs();
                expect(':');
                out.set(std::move(key), parseValue());
                skipWs();
                char sep = peek();
                ++pos;
                if (sep == '}')
                    return out;
                if (sep != ',')
                    fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            Json out = Json::array();
            skipWs();
            if (peek() == ']') {
                ++pos;
                return out;
            }
            while (true) {
                out.push(parseValue());
                skipWs();
                char sep = peek();
                ++pos;
                if (sep == ']')
                    return out;
                if (sep != ',')
                    fail("expected ',' or ']'");
            }
        }
        if (c == '"')
            return Json(parseString());
        if (consumeLiteral("true"))
            return Json(true);
        if (consumeLiteral("false"))
            return Json(false);
        if (consumeLiteral("null"))
            return Json();
        return parseNumber();
    }
};

} // namespace

const Json &
Json::operator[](const std::string &key) const
{
    const Json *v = find(key);
    return v ? *v : nullValue;
}

const Json *
Json::find(const std::string &key) const
{
    for (const auto &kv : obj)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };

    switch (_kind) {
      case Kind::null:
        out += "null";
        break;
      case Kind::boolean:
        out += b ? "true" : "false";
        break;
      case Kind::number:
        if (integral) {
            if (negative)
                out += std::to_string(static_cast<std::int64_t>(u));
            else
                out += std::to_string(u);
        } else if (std::isfinite(d)) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.17g", d);
            out += buf;
        } else {
            out += "null";   // JSON has no inf/nan
        }
        break;
      case Kind::string:
        appendEscaped(out, s);
        break;
      case Kind::array:
        if (arr.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            arr[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Kind::object:
        if (obj.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < obj.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            appendEscaped(out, obj[i].first);
            out += indent > 0 ? ": " : ":";
            obj[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

Json
Json::parse(const std::string &text)
{
    Parser p{text};
    Json v = p.parseValue();
    p.skipWs();
    if (p.pos != text.size())
        p.fail("trailing characters");
    return v;
}

} // namespace bvl
