/**
 * @file
 * Structural invariant registry.
 *
 * Components register named invariants over their own state — queue
 * and credit conservation in the VCU/VMU, cache MSHR occupancy, the
 * ROB-head-only vector dispatch rule — at construction time. The
 * registry is *pulled*: nothing is evaluated per event, so an idle
 * registry adds zero work to the simulation hot paths. The checker
 * sweeps it at retire and drain points (CheckContext), and the
 * watchdog includes a sweep in its deadlock diagnostic, so a hang is
 * reported together with any structural violation that explains it.
 *
 * An invariant returns an empty string while it holds and a short
 * violation description otherwise. Check functions may only *read*
 * component state: a sweep must never perturb timing.
 */

#ifndef BVL_SIM_CHECK_INVARIANTS_HH
#define BVL_SIM_CHECK_INVARIANTS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace bvl
{

class InvariantRegistry
{
  public:
    /** Returns "" while the invariant holds, else a description. */
    using CheckFn = std::function<std::string()>;

    /** Register one invariant; call at construction, never per event. */
    void
    add(std::string name, CheckFn fn)
    {
        entries.push_back({std::move(name), std::move(fn)});
    }

    /**
     * Evaluate every invariant. Returns "" if all hold, else one
     * "name: description" line per violated invariant.
     */
    std::string
    sweep()
    {
        ++numSweeps;
        std::string out;
        for (const auto &e : entries) {
            std::string v = e.fn();
            if (v.empty())
                continue;
            ++numViolations;
            if (!out.empty())
                out += '\n';
            out += e.name + ": " + v;
        }
        return out;
    }

    std::size_t size() const { return entries.size(); }
    std::uint64_t sweeps() const { return numSweeps; }
    std::uint64_t violations() const { return numViolations; }

  private:
    struct Entry
    {
        std::string name;
        CheckFn fn;
    };

    std::vector<Entry> entries;
    std::uint64_t numSweeps = 0;
    std::uint64_t numViolations = 0;
};

} // namespace bvl

#endif // BVL_SIM_CHECK_INVARIANTS_HH
