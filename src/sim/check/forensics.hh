/**
 * @file
 * Failure forensics: structured reports and replay recipes.
 *
 * Any non-ok run can be serialized to a JSON failure report
 * (schema "bvl-failure-report-v1") capturing what is needed to
 * understand and reproduce it: the run configuration including the
 * fault plan and checker flags, the final per-component heartbeat
 * table, queue occupancies, the first lockstep divergence if one was
 * caught, the captured diagnostic log, and a replay recipe. Feeding
 * the recipe back through runReplay() re-executes the identical
 * deterministic run; every RunOptions field round-trips, including
 * the engine-parameter override of the Figure 7/8 sweeps (see
 * soc/run_io.hh, which owns the serialization).
 */

#ifndef BVL_SIM_CHECK_FORENSICS_HH
#define BVL_SIM_CHECK_FORENSICS_HH

#include <string>

#include "sim/check/json.hh"
#include "soc/run_driver.hh"
#include "workloads/workload.hh"

namespace bvl
{

/** Everything needed to deterministically re-run one failing run. */
struct ReplayRecipe
{
    Design design = Design::d1b4VL;
    std::string workload;
    Scale scale = Scale::tiny;
    RunOptions options{};
};

const char *scaleName(Scale s);

/** JSON <-> recipe. fromJson throws SimFatalError on malformed input. */
Json replayRecipeToJson(const ReplayRecipe &recipe);
ReplayRecipe replayRecipeFromJson(const Json &j);

/** JSON <-> fault plan (shared with the recipe serialization). */
Json faultSpecToJson(const FaultSpec &spec);
FaultSpec faultSpecFromJson(const Json &j);

/** Build the full "bvl-failure-report-v1" document for @p r. */
Json buildFailureReport(const RunResult &r, const ReplayRecipe &recipe);

/**
 * Serialize @p r to @p path. Returns false (with a warn()) when the
 * file cannot be written; forensics must never turn a diagnosable
 * failure into a crash.
 */
bool writeFailureReport(const std::string &path, const RunResult &r,
                        const ReplayRecipe &recipe);

/**
 * Load the replay recipe from @p path, accepting either a full
 * failure report (its "replay" member) or a bare recipe document.
 * Throws SimFatalError on unreadable or malformed files.
 */
ReplayRecipe loadReplayRecipe(const std::string &path);

/**
 * Re-run the recipe's workload/design/options. The recipe's
 * forensicsPath is cleared first so a replay never overwrites the
 * report it came from.
 */
RunResult runReplay(const ReplayRecipe &recipe);

} // namespace bvl

#endif // BVL_SIM_CHECK_FORENSICS_HH
