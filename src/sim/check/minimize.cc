#include "sim/check/minimize.hh"

#include <algorithm>
#include <future>

#include "sim/logging.hh"
#include "sweep/sweep_runner.hh"

namespace bvl
{

namespace
{

/** Recipe with only the given original-script positions kept. */
ReplayRecipe
subsetRecipe(const ReplayRecipe &base,
             const std::vector<std::size_t> &keep)
{
    ReplayRecipe r = base;
    r.options.check.forensicsPath.clear();
    r.options.faults.script.clear();
    for (std::size_t i : keep)
        r.options.faults.script.push_back(base.options.faults.script[i]);
    return r;
}

/** Split @p v into @p n contiguous chunks (first chunks get the rest). */
std::vector<std::vector<std::size_t>>
partition(const std::vector<std::size_t> &v, std::size_t n)
{
    std::vector<std::vector<std::size_t>> chunks;
    std::size_t base = v.size() / n, rest = v.size() % n, pos = 0;
    for (std::size_t c = 0; c < n; ++c) {
        std::size_t len = base + (c < rest ? 1 : 0);
        chunks.emplace_back(v.begin() + pos, v.begin() + pos + len);
        pos += len;
    }
    return chunks;
}

std::vector<std::size_t>
complementOf(const std::vector<std::size_t> &all,
             const std::vector<std::size_t> &chunk)
{
    std::vector<std::size_t> out;
    std::set_difference(all.begin(), all.end(), chunk.begin(),
                        chunk.end(), std::back_inserter(out));
    return out;
}

} // namespace

MinimizeOutcome
minimizeFaultPlan(const ReplayRecipe &failing,
                  const MinimizeOptions &mopts)
{
    MinimizeOutcome out;
    SweepRunner runner(mopts.jobs);

    // Oracle: a candidate "fails" when it reproduces the baseline
    // status exactly. All candidate runs go through the runner so
    // rounds parallelize; consumption stays in submission order.
    auto runKeep = [&](std::vector<std::size_t> keep) {
        ReplayRecipe r = subsetRecipe(failing, std::move(keep));
        return runner.submit([r] { return runReplay(r); });
    };

    out.oracleRuns = 1;
    RunResult baseline = runReplay(failing);
    if (baseline.ok())
        fatal("minimizeFaultPlan: the given plan does not fail");
    out.target = baseline.status;

    std::vector<std::size_t> current(failing.options.faults.script.size());
    for (std::size_t i = 0; i < current.size(); ++i)
        current[i] = i;

    bool budgetLeft = true;
    auto budget = [&](std::size_t want) {
        if (out.oracleRuns + want <= mopts.maxOracleRuns)
            return true;
        warn("minimizeFaultPlan: oracle budget (%u runs) exhausted; "
             "result may not be minimal", mopts.maxOracleRuns);
        budgetLeft = false;
        return false;
    };

    // ddmin (Zeller & Hildebrandt): try subsets, then complements, at
    // doubling granularity, re-running until nothing shrinks.
    std::size_t n = 2;
    while (current.size() >= 2 && budgetLeft) {
        n = std::min(n, current.size());
        auto chunks = partition(current, n);

        // Candidates in deterministic submission order: every chunk,
        // then (for n > 2) every complement.
        std::vector<std::vector<std::size_t>> cands;
        for (auto &c : chunks)
            cands.push_back(c);
        if (n > 2)
            for (auto &c : chunks)
                cands.push_back(complementOf(current, c));

        if (!budget(cands.size()))
            break;
        std::vector<std::future<RunResult>> futs;
        for (const auto &cand : cands)
            futs.push_back(runKeep(cand));

        std::ptrdiff_t adopted = -1;
        for (std::size_t i = 0; i < futs.size(); ++i) {
            RunResult r = futs[i].get();
            out.oracleRuns++;
            // First still-failing candidate in submission order wins;
            // later futures are still drained for deterministic counts.
            if (adopted < 0 && r.status == out.target)
                adopted = static_cast<std::ptrdiff_t>(i);
        }

        if (adopted >= 0) {
            bool isChunk = static_cast<std::size_t>(adopted)
                           < chunks.size();
            current = cands[static_cast<std::size_t>(adopted)];
            n = isChunk ? 2 : std::max<std::size_t>(n - 1, 2);
        } else if (n < current.size()) {
            n = std::min(n * 2, current.size());
        } else {
            break;
        }
    }

    // Verify (and enforce) 1-minimality: drop any entry whose removal
    // still reproduces the failure, until every single removal passes.
    bool stable = false;
    while (!stable && !current.empty() && budgetLeft) {
        if (!budget(current.size()))
            break;
        std::vector<std::future<RunResult>> futs;
        for (std::size_t i = 0; i < current.size(); ++i) {
            std::vector<std::size_t> keep = current;
            keep.erase(keep.begin() + static_cast<std::ptrdiff_t>(i));
            futs.push_back(runKeep(std::move(keep)));
        }
        stable = true;
        for (std::size_t i = 0; i < futs.size(); ++i) {
            RunResult r = futs[i].get();
            out.oracleRuns++;
            if (stable && r.status == out.target) {
                // Entry current[i] is redundant; drop it and re-verify.
                current.erase(current.begin() +
                              static_cast<std::ptrdiff_t>(i));
                stable = false;
            }
        }
    }
    out.oneMinimal = stable || current.empty();

    out.keptIndices = current;
    out.minimal = subsetRecipe(failing, current);
    return out;
}

} // namespace bvl
