/**
 * @file
 * Deterministic fault injection.
 *
 * A FaultSpec describes a seeded plan of transient hardware faults:
 * stretched cache/DRAM response latencies, VCU command-bus stalls, and
 * dropped VMU load/store responses. Faults fire either probabilistically
 * (one xoshiro draw per injection point, from the plan's own Rng so
 * workload generation is unaffected) or at scripted simulated ticks.
 *
 * Determinism guarantee: the simulation is single-threaded and the
 * event queue is FIFO within a tick, so the sequence of injection-point
 * queries — and therefore the sequence of Rng draws — is a pure
 * function of the configuration. Two runs with the same FaultSpec
 * produce bit-identical cycle counts and statistics. A spec with
 * enabled=false never draws from the Rng and never adds latency, so a
 * clean run matches a build without any injector attached, tick for
 * tick.
 *
 * Recovery contract: memory-latency stretches and bounded VCU stalls
 * are absorbed by the normal decoupling queues. Dropped VMU responses
 * are retried by the engine up to vmuMaxRetries times; with retries
 * exhausted (or disabled) the response is lost for good, the in-flight
 * instruction can never complete, and the progress watchdog converts
 * the hang into a diagnosable DeadlockError.
 */

#ifndef BVL_SIM_FAULT_HH
#define BVL_SIM_FAULT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace bvl
{

enum class FaultKind
{
    memDelay,   ///< stretch a DRAM response
    cacheDelay, ///< stretch a cache miss response
    vcuStall,   ///< freeze the VCU broadcast bus
    vmuDrop,    ///< drop a VMU load/store memory response
};

constexpr unsigned numFaultKinds = 4;

const char *faultKindName(FaultKind kind);

/** One fault injected at a fixed simulated time. */
struct ScriptedFault
{
    Tick atTick = 0;
    FaultKind kind = FaultKind::vcuStall;
    /** Stall/delay length in cycles of the victim's clock domain. */
    Cycles cycles = 0;
};

struct FaultSpec
{
    /** Master switch: when false no Rng draw or latency ever happens. */
    bool enabled = false;
    std::uint64_t seed = 1;

    double memDelayProb = 0.0;    ///< per DRAM response
    Cycles memDelayCycles = 50;

    double cacheDelayProb = 0.0;  ///< per cache miss
    Cycles cacheDelayCycles = 8;

    double vcuStallProb = 0.0;    ///< per broadcast attempt
    Cycles vcuStallCycles = 20;

    double vmuDropProb = 0.0;     ///< per VMU memory response
    /** Retries before a dropped response is unrecoverable (0 = none). */
    unsigned vmuMaxRetries = 3;
    Cycles vmuRetryDelay = 64;

    std::vector<ScriptedFault> script;
};

/**
 * Runtime side of a FaultSpec: owns the plan's Rng and the
 * fired-already state of scripted faults, and counts every injection
 * in the run's StatGroup ("faults.<kind>" / "faults.<kind>.scripted").
 */
class FaultInjector
{
  public:
    FaultInjector(FaultSpec spec, StatGroup &stats);

    bool enabled() const { return spec_.enabled; }
    const FaultSpec &spec() const { return spec_; }

    /** Extra DRAM response latency, in uncore cycles (usually 0). */
    Cycles memResponseDelay(Tick now);

    /** Extra cache miss-response latency, in cache-clock cycles. */
    Cycles cacheResponseDelay(Tick now);

    /** Cycles the VCU broadcast bus must stall, polled per attempt. */
    Cycles vcuStall(Tick now);

    /**
     * True if this VMU memory response should be dropped. Scripted
     * vmuDrop entries due by @p now each consume one response (one
     * drop per entry, checked before any probabilistic roll so the
     * plan's Rng draw sequence is unaffected by scripting).
     */
    bool dropVmuResponse(Tick now);

    unsigned vmuMaxRetries() const { return spec_.vmuMaxRetries; }
    Cycles vmuRetryDelay() const { return spec_.vmuRetryDelay; }

  private:
    /** Sum of not-yet-fired scripted faults of @p kind due by @p now. */
    Cycles takeScripted(FaultKind kind, Tick now);
    /** Consume one not-yet-fired scripted fault of @p kind due by now. */
    bool takeScriptedOne(FaultKind kind, Tick now);
    bool roll(double prob);
    void countFault(FaultKind kind, bool scripted);

    FaultSpec spec_;
    Rng rng;
    StatGroup &stats;
    /** Per-kind injection counters ("faults.<kind>" and
     *  "faults.<kind>.scripted", indexed by FaultKind). Interned
     *  lazily on the first fire of each kind: fault fires are rare
     *  events, not steady-state work, and a quiet plan must leave the
     *  stat map exactly as a run without any injector would. */
    std::array<StatHandle, numFaultKinds> sKind;
    std::array<StatHandle, numFaultKinds> sKindScripted;
    std::vector<bool> fired;
};

} // namespace bvl

#endif // BVL_SIM_FAULT_HH
