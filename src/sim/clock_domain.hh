/**
 * @file
 * Clock domains and the Clocked component base class.
 *
 * A ClockDomain converts between cycles and picosecond ticks for one
 * frequency island (big-core cluster, little-core cluster, uncore).
 * Frequencies are set at configuration time and stay fixed for a run;
 * the DVFS design-space exploration re-runs the simulation at each
 * voltage/frequency combination, exactly as the paper does.
 */

#ifndef BVL_SIM_CLOCK_DOMAIN_HH
#define BVL_SIM_CLOCK_DOMAIN_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace bvl
{

/** One frequency island. */
class ClockDomain
{
  public:
    /**
     * @param eq     owning event queue
     * @param name   domain name for reporting
     * @param freq_ghz operating frequency in GHz
     */
    ClockDomain(EventQueue &eq, std::string name, double freq_ghz)
        : queue(eq), _name(std::move(name))
    {
        setFrequency(freq_ghz);
    }

    /** Change the frequency; only legal before any event is scheduled. */
    void
    setFrequency(double freq_ghz)
    {
        bvl_assert(freq_ghz > 0.0, "frequency must be positive");
        _periodPs = static_cast<Tick>(1000.0 / freq_ghz + 0.5);
        bvl_assert(_periodPs > 0, "frequency too high");
        _freqGhz = freq_ghz;
    }

    const std::string &name() const { return _name; }
    double frequencyGhz() const { return _freqGhz; }
    Tick periodPs() const { return _periodPs; }

    /** Duration of @p n cycles in ticks. */
    Tick cyclesToTicks(Cycles n) const { return n * _periodPs; }

    /** Cycles elapsed at current time (rounded down). */
    Cycles curCycle() const { return queue.now() / _periodPs; }

    /** Convert an absolute tick count into whole cycles of this domain. */
    Cycles ticksToCycles(Tick t) const { return t / _periodPs; }

    /** Ticks until the next clock edge strictly after now. */
    Tick
    ticksToNextEdge() const
    {
        Tick rem = queue.now() % _periodPs;
        return _periodPs - rem;
    }

    /** Schedule @p fn a whole number of cycles from now. */
    void scheduleCycles(Cycles n, EventFn fn)
    { queue.schedule(cyclesToTicks(n), std::move(fn)); }

    EventQueue &eventQueue() { return queue; }

  private:
    EventQueue &queue;
    std::string _name;
    double _freqGhz = 1.0;
    Tick _periodPs = 1000;
};

/**
 * Base class for components that tick once per cycle of their clock
 * domain while active. Components call activate() when they have work
 * and go dormant by returning false from tick(); memory callbacks etc.
 * re-activate them.
 */
class Clocked
{
  public:
    Clocked(ClockDomain &cd, std::string name)
        : _clock(cd), _name(std::move(name))
    {}

    virtual ~Clocked() = default;

    ClockDomain &clock() { return _clock; }
    const ClockDomain &clock() const { return _clock; }
    const std::string &name() const { return _name; }

    /**
     * Ensure a tick event is pending. Safe to call redundantly; only
     * one tick event is in flight at a time.
     */
    void
    activate()
    {
        if (tickPending)
            return;
        tickPending = true;
        // Align to the next clock edge so multi-domain systems stay
        // phase-consistent.
        _clock.eventQueue().schedule(_clock.ticksToNextEdge(), [this] {
            tickPending = false;
            if (tick())
                activate();
        });
    }

    /** True if a tick event is currently scheduled. */
    bool active() const { return tickPending; }

  protected:
    /**
     * Do one cycle of work.
     * @retval true to keep ticking next cycle, false to go dormant.
     */
    virtual bool tick() = 0;

  private:
    ClockDomain &_clock;
    std::string _name;
    bool tickPending = false;
};

} // namespace bvl

#endif // BVL_SIM_CLOCK_DOMAIN_HH
