/**
 * @file
 * Clock domains and the Clocked component base class.
 *
 * A ClockDomain converts between cycles and picosecond ticks for one
 * frequency island (big-core cluster, little-core cluster, uncore).
 * Frequencies are set at configuration time and stay fixed for a run;
 * the DVFS design-space exploration re-runs the simulation at each
 * voltage/frequency combination, exactly as the paper does.
 */

#ifndef BVL_SIM_CLOCK_DOMAIN_HH
#define BVL_SIM_CLOCK_DOMAIN_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace bvl
{

/** One frequency island. */
class ClockDomain
{
  public:
    /**
     * @param eq     owning event queue
     * @param name   domain name for reporting
     * @param freq_ghz operating frequency in GHz
     */
    ClockDomain(EventQueue &eq, std::string name, double freq_ghz)
        : queue(eq), _name(std::move(name))
    {
        setFrequency(freq_ghz);
    }

    /** Change the frequency; only legal before any event is scheduled. */
    void
    setFrequency(double freq_ghz)
    {
        bvl_assert(freq_ghz > 0.0, "frequency must be positive");
        _periodPs = static_cast<Tick>(1000.0 / freq_ghz + 0.5);
        bvl_assert(_periodPs > 0, "frequency too high");
        _freqGhz = freq_ghz;
    }

    const std::string &name() const { return _name; }
    double frequencyGhz() const { return _freqGhz; }
    Tick periodPs() const { return _periodPs; }

    /** Duration of @p n cycles in ticks. */
    Tick cyclesToTicks(Cycles n) const { return n * _periodPs; }

    /** Cycles elapsed at current time (rounded down). */
    Cycles curCycle() const { return queue.now() / _periodPs; }

    /** Convert an absolute tick count into whole cycles of this domain. */
    Cycles ticksToCycles(Tick t) const { return t / _periodPs; }

    /** Ticks until the next clock edge strictly after now. */
    Tick
    ticksToNextEdge() const
    {
        Tick rem = queue.now() % _periodPs;
        return _periodPs - rem;
    }

    /** Schedule @p fn a whole number of cycles from now. */
    void scheduleCycles(Cycles n, EventFn fn)
    { queue.schedule(cyclesToTicks(n), std::move(fn)); }

    /** Arm an intrusive event a whole number of cycles from now. */
    void scheduleCycles(Event &ev, Cycles n)
    { queue.schedule(ev, cyclesToTicks(n)); }

    EventQueue &eventQueue() { return queue; }

  private:
    EventQueue &queue;
    std::string _name;
    double _freqGhz = 1.0;
    Tick _periodPs = 1000;
};

/**
 * Base class for components that tick once per cycle of their clock
 * domain while active. Components call activate() when they have work
 * and go dormant by returning false from tick(); memory callbacks etc.
 * re-activate them.
 *
 * Each Clocked owns one intrusive TickEvent that activate() re-arms,
 * so the steady-state tick loop never allocates: no closure is built
 * per cycle and the heap only shuffles 24-byte entries.
 */
class Clocked
{
  public:
    Clocked(ClockDomain &cd, std::string name)
        : _clock(cd), _name(std::move(name)), tickEvent(*this)
    {}

    /** Components are destroyed before their EventQueue, so disarm
     *  the tick event rather than leave a dangling heap entry. */
    virtual ~Clocked() { deactivate(); }

    ClockDomain &clock() { return _clock; }
    const ClockDomain &clock() const { return _clock; }
    const std::string &name() const { return _name; }

    /**
     * Ensure a tick event is pending. Safe to call redundantly; only
     * one tick event is in flight at a time.
     */
    void
    activate()
    {
        if (tickEvent.scheduled())
            return;
        // Align to the next clock edge so multi-domain systems stay
        // phase-consistent.
        _clock.eventQueue().schedule(tickEvent, _clock.ticksToNextEdge());
    }

    /** Cancel a pending tick event, going dormant immediately. */
    void
    deactivate()
    {
        if (tickEvent.scheduled())
            _clock.eventQueue().deschedule(tickEvent);
    }

    /** True if a tick event is currently scheduled. */
    bool active() const { return tickEvent.scheduled(); }

  protected:
    /**
     * Do one cycle of work.
     * @retval true to keep ticking next cycle, false to go dormant.
     */
    virtual bool tick() = 0;

  private:
    /** The component's single pre-allocated tick event. The queue
     *  disarms it before process(), so re-arming via activate()
     *  consumes exactly one FIFO sequence number per cycle — the same
     *  schedule points as the old per-cycle closure, preserving
     *  deterministic same-tick ordering bit-for-bit. */
    struct TickEvent final : Event
    {
        explicit TickEvent(Clocked &c) : owner(c) {}
        void
        process() override
        {
            if (owner.tick())
                owner.activate();
        }
        Clocked &owner;
    };

    ClockDomain &_clock;
    std::string _name;
    TickEvent tickEvent;
};

} // namespace bvl

#endif // BVL_SIM_CLOCK_DOMAIN_HH
