/**
 * @file
 * Error and status reporting, following the gem5 panic/fatal convention.
 *
 * panic() is for internal simulator bugs ("should never happen");
 * fatal() is for user errors (bad configuration, impossible
 * parameters). Both print their message and then throw a SimError
 * subclass so that sweep drivers can catch the failure, record it as a
 * structured per-run outcome and keep going. The pre-exception abort
 * behavior (useful for debugging with core dumps, and for death tests)
 * is restored with setAbortOnError(true) or BVL_ABORT_ON_ERROR=1 in
 * the environment. warn()/inform() report conditions without stopping
 * the simulation.
 */

#ifndef BVL_SIM_LOGGING_HH
#define BVL_SIM_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace bvl
{

/** Base class of every error thrown by the simulator. */
class SimError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Thrown by panic(): a simulator-internal invariant was violated. */
class SimPanicError : public SimError
{
  public:
    using SimError::SimError;
};

/** Thrown by fatal(): unusable user input or configuration. */
class SimFatalError : public SimError
{
  public:
    using SimError::SimError;
};

/** Print a formatted message and throw SimPanicError (or abort). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and throw SimFatalError (or exit). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted status message to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/**
 * Opt out of recoverable errors: panic() aborts and fatal() exits
 * instead of throwing. Also enabled by BVL_ABORT_ON_ERROR=1.
 */
void setAbortOnError(bool abort);
bool abortOnError();

/** panic() unless the given condition holds. */
#define bvl_assert(cond, fmt, ...)                                       \
    do {                                                                 \
        if (!(cond))                                                     \
            ::bvl::panic("assertion '" #cond "' failed: " fmt,           \
                         ##__VA_ARGS__);                                 \
    } while (0)

} // namespace bvl

#endif // BVL_SIM_LOGGING_HH
