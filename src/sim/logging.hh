/**
 * @file
 * Error and status reporting, following the gem5 panic/fatal convention.
 *
 * panic() is for internal simulator bugs ("should never happen"); it
 * aborts. fatal() is for user errors (bad configuration, impossible
 * parameters); it exits with an error code. warn()/inform() report
 * conditions without stopping the simulation.
 */

#ifndef BVL_SIM_LOGGING_HH
#define BVL_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace bvl
{

/** Print a formatted message and abort: simulator-internal bug. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1): unusable user input. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted status message to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** panic() unless the given condition holds. */
#define bvl_assert(cond, fmt, ...)                                       \
    do {                                                                 \
        if (!(cond))                                                     \
            ::bvl::panic("assertion '" #cond "' failed: " fmt,           \
                         ##__VA_ARGS__);                                 \
    } while (0)

} // namespace bvl

#endif // BVL_SIM_LOGGING_HH
