/**
 * @file
 * Error and status reporting, following the gem5 panic/fatal convention.
 *
 * panic() is for internal simulator bugs ("should never happen");
 * fatal() is for user errors (bad configuration, impossible
 * parameters). Both print their message and then throw a SimError
 * subclass so that sweep drivers can catch the failure, record it as a
 * structured per-run outcome and keep going. The pre-exception abort
 * behavior (useful for debugging with core dumps, and for death tests)
 * is restored with setAbortOnError(true) or BVL_ABORT_ON_ERROR=1 in
 * the environment. warn()/inform() report conditions without stopping
 * the simulation.
 *
 * Everything here is safe to use from concurrent simulation contexts:
 * the verbose/abort flags are atomics, and a LogCapture installed on a
 * thread redirects that thread's diagnostics into a private buffer so
 * parallel runs never interleave on stderr (DESIGN.md §10).
 */

#ifndef BVL_SIM_LOGGING_HH
#define BVL_SIM_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace bvl
{

/** Base class of every error thrown by the simulator. */
class SimError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Thrown by panic(): a simulator-internal invariant was violated. */
class SimPanicError : public SimError
{
  public:
    using SimError::SimError;
};

/** Thrown by fatal(): unusable user input or configuration. */
class SimFatalError : public SimError
{
  public:
    using SimError::SimError;
};

/** Print a formatted message and throw SimPanicError (or abort). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and throw SimFatalError (or exit). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted status message to stderr and continue. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/**
 * Opt out of recoverable errors: panic() aborts and fatal() exits
 * instead of throwing. Also enabled by BVL_ABORT_ON_ERROR=1.
 */
void setAbortOnError(bool abort);
bool abortOnError();

/**
 * RAII redirection of this thread's diagnostics into a buffer.
 *
 * While a LogCapture is alive on a thread, every warn()/inform() line
 * emitted from that thread — and the message printed by panic()/
 * fatal() before they throw — is appended to the capture instead of
 * stderr. Captures nest: the innermost one on the thread receives the
 * text. runWorkload() installs one per run so each RunResult owns its
 * diagnostics and concurrent sweeps never interleave output.
 */
class LogCapture
{
  public:
    LogCapture();
    ~LogCapture();
    LogCapture(const LogCapture &) = delete;
    LogCapture &operator=(const LogCapture &) = delete;

    /** Captured text so far (one "prefix: message\n" per line). */
    const std::string &text() const { return buf; }

    /** Return the captured text, leaving the capture empty. */
    std::string take() { return std::move(buf); }

    /** Internal: append one diagnostic line (used by the reporters). */
    void append(const char *prefix, const std::string &msg);

  private:
    std::string buf;
    LogCapture *prev;   ///< next-outer capture on this thread
};

/** panic() unless the given condition holds. */
// The condition text is passed as a %s argument, not pasted into the
// format string: a '%' inside the condition (e.g. "x % 64 == 0")
// would otherwise be misparsed as a conversion specifier.
#define bvl_assert(cond, fmt, ...)                                       \
    do {                                                                 \
        if (!(cond))                                                     \
            ::bvl::panic("assertion '%s' failed: " fmt, #cond,           \
                         ##__VA_ARGS__);                                 \
    } while (0)

} // namespace bvl

#endif // BVL_SIM_LOGGING_HH
