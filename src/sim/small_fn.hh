/**
 * @file
 * Move-only `void()` callable with inline small-buffer storage.
 *
 * The simulation kernel's hot paths (tick events, memory-completion
 * callbacks) used to heap-allocate a std::function closure per event.
 * SmallFn stores any capture of up to 64 bytes inline — which covers
 * every steady-state capture shape in the simulator (`[this]`,
 * `[this, rd, gen]`, `[this, lineNum]`, the VMSU's `[this, idx, req,
 * attempt]`) — and falls back to the heap only for oversized or
 * throwing-move captures (cold paths such as the L2 invalidate
 * penalty wrapper). DESIGN.md §11 states the hot-path rules that
 * depend on this.
 */

#ifndef BVL_SIM_SMALL_FN_HH
#define BVL_SIM_SMALL_FN_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace bvl
{

class SmallFn
{
  public:
    /** Captures up to this many bytes are stored without allocating. */
    static constexpr std::size_t inlineBytes = 64;

    SmallFn() = default;
    SmallFn(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    SmallFn(F &&f)
    {
        using D = std::decay_t<F>;
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(buf)) D(std::forward<F>(f));
            ops = &InlineOps<D>::table;
        } else {
            D *heap = new D(std::forward<F>(f));
            std::memcpy(buf, &heap, sizeof(heap));
            ops = &HeapOps<D>::table;
        }
    }

    SmallFn(SmallFn &&other) noexcept { moveFrom(other); }

    SmallFn &
    operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFn &operator=(std::nullptr_t) { reset(); return *this; }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    /** True if a callable is held. */
    explicit operator bool() const { return ops != nullptr; }

    void operator()() { ops->invoke(buf); }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move the callable from src into dst, leaving src empty. */
        void (*relocate)(void *src, void *dst);
        void (*destroy)(void *);
    };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= inlineBytes &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    struct InlineOps
    {
        static void invoke(void *p) { (*static_cast<D *>(p))(); }
        static void
        relocate(void *src, void *dst)
        {
            D *from = static_cast<D *>(src);
            ::new (dst) D(std::move(*from));
            from->~D();
        }
        static void destroy(void *p) { static_cast<D *>(p)->~D(); }
        static constexpr Ops table{&invoke, &relocate, &destroy};
    };

    template <typename D>
    struct HeapOps
    {
        static D *
        held(void *p)
        {
            D *heap;
            std::memcpy(&heap, p, sizeof(heap));
            return heap;
        }
        static void invoke(void *p) { (*held(p))(); }
        static void
        relocate(void *src, void *dst)
        {
            std::memcpy(dst, src, sizeof(D *));
        }
        static void destroy(void *p) { delete held(p); }
        static constexpr Ops table{&invoke, &relocate, &destroy};
    };

    void
    moveFrom(SmallFn &other)
    {
        ops = other.ops;
        if (ops) {
            ops->relocate(other.buf, buf);
            other.ops = nullptr;
        }
    }

    void
    reset()
    {
        if (ops) {
            ops->destroy(buf);
            ops = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte buf[inlineBytes];
    const Ops *ops = nullptr;
};

} // namespace bvl

#endif // BVL_SIM_SMALL_FN_HH
