/**
 * @file
 * Global discrete-event queue driving a simulation.
 *
 * Time is measured in picosecond Ticks so that clock domains with
 * different frequencies (the big-core and little-core clusters under
 * DVFS) can coexist in one queue. Events scheduled for the same tick
 * fire in FIFO order of their scheduling, which keeps the simulation
 * deterministic.
 *
 * Two scheduling paths share one heap and one FIFO sequence space:
 *
 *  - intrusive Events (gem5 style): a component owns the event object
 *    and re-arms it via schedule()/deschedule()/reschedule(). Nothing
 *    is allocated per firing — this is the steady-state tick path.
 *  - closure events: scheduleAt(when, fn) for one-shot callbacks. The
 *    callable is a SmallFn (no allocation for captures <= 64 bytes)
 *    moved into a pooled event node, so the steady state allocates
 *    nothing here either.
 *
 * Both paths draw FIFO sequence numbers from the same counter at
 * schedule time, so mixing them cannot perturb same-tick ordering.
 */

#ifndef BVL_SIM_EVENT_QUEUE_HH
#define BVL_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/logging.hh"
#include "sim/small_fn.hh"
#include "sim/types.hh"

namespace bvl
{

/** Callback type executed when a closure event fires. */
using EventFn = SmallFn;

/**
 * An intrusive, reschedulable event. Components embed one (e.g. the
 * Clocked tick event) and arm it through the EventQueue; the queue
 * never owns it. Descheduling is O(1): the heap entry is left behind
 * and lazily skipped, identified by a stale sequence stamp.
 */
class Event
{
  public:
    Event() = default;
    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;
    virtual ~Event() = default;

    /** Called when the event fires; the event is already disarmed. */
    virtual void process() = 0;

    /** True while armed in a queue. */
    bool scheduled() const { return _scheduled; }

    /** Absolute tick this event is (or was last) armed for. */
    Tick when() const { return _when; }

  private:
    friend class EventQueue;
    Tick _when = 0;
    /** Sequence stamp of the live heap entry (staleness check). */
    std::uint64_t _stamp = 0;
    bool _scheduled = false;
};

/**
 * A min-heap of timestamped events. One EventQueue exists per
 * simulated system; components hold a reference to it.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    // ---------------------------------------------------------------
    // Intrusive (non-owning) path: zero allocation per schedule.
    // ---------------------------------------------------------------

    /** Arm @p ev to fire at absolute time @p when (>= now). */
    void
    scheduleAt(Event &ev, Tick when)
    {
        bvl_assert(when >= _now, "event scheduled in the past "
                   "(when=%llu now=%llu)",
                   (unsigned long long)when, (unsigned long long)_now);
        bvl_assert(!ev._scheduled, "event double-scheduled");
        ev._when = when;
        ev._stamp = nextSeq;
        ev._scheduled = true;
        heap.push_back(HeapEntry{when, nextSeq++, &ev});
        std::push_heap(heap.begin(), heap.end(), laterThan);
        ++numLive;
    }

    /** Arm @p ev to fire @p delay ticks from now. */
    void schedule(Event &ev, Tick delay)
    { scheduleAt(ev, _now + delay); }

    /**
     * Disarm a pending event. O(1): the stale heap entry is skipped
     * when it surfaces. The event can be re-armed immediately.
     */
    void
    deschedule(Event &ev)
    {
        bvl_assert(ev._scheduled, "deschedule of an idle event");
        ev._scheduled = false;
        --numLive;
    }

    /** Move a (possibly armed) event to a new absolute time. The
     *  event re-enters the same-tick FIFO at its new schedule point. */
    void
    reschedule(Event &ev, Tick when)
    {
        if (ev._scheduled)
            deschedule(ev);
        scheduleAt(ev, when);
    }

    // ---------------------------------------------------------------
    // Closure path: one-shot callbacks on pooled event nodes.
    // ---------------------------------------------------------------

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void
    scheduleAt(Tick when, EventFn fn)
    {
        bvl_assert(when >= _now, "event scheduled in the past "
                   "(when=%llu now=%llu)",
                   (unsigned long long)when, (unsigned long long)_now);
        ClosureEvent *ev = acquireClosure();
        ev->fn = std::move(fn);
        scheduleAt(*ev, when);
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    void schedule(Tick delay, EventFn fn)
    { scheduleAt(_now + delay, std::move(fn)); }

    // ---------------------------------------------------------------

    /** True if no live events remain. */
    bool empty() const { return numLive == 0; }

    /** Number of pending (armed) events. */
    std::size_t size() const { return numLive; }

    /** Time of the earliest pending event (maxTick if none). */
    Tick
    nextEventTick()
    {
        purgeStale();
        return heap.empty() ? maxTick : heap.front().when;
    }

    /**
     * Pop and execute the earliest event, advancing time.
     * @retval false if the queue was empty.
     */
    bool
    step()
    {
        purgeStale();
        if (heap.empty())
            return false;
        HeapEntry top = heap.front();
        popFront();
        --numLive;
        _now = top.when;
        // Disarm before process() so the handler may re-arm itself;
        // a closure node returns to the pool the same way.
        top.ev->_scheduled = false;
        top.ev->process();
        ++_executed;
        return true;
    }

    /**
     * Run until the queue drains or @p limit ticks of simulated time
     * elapse.
     * @retval true if the queue drained, false if the limit was hit.
     */
    bool
    run(Tick limit = maxTick)
    {
        for (;;) {
            purgeStale();
            if (heap.empty())
                return true;
            if (heap.front().when > limit)
                return false;
            step();
        }
    }

    /**
     * Run until @p done returns true, the queue drains, or the tick
     * limit is reached.
     * @retval true iff @p done became true.
     */
    bool
    runUntil(const std::function<bool()> &done, Tick limit = maxTick)
    {
        while (!done()) {
            purgeStale();
            if (heap.empty() || heap.front().when > limit)
                return false;
            step();
        }
        return true;
    }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return _executed; }

  private:
    /**
     * 24-byte heap entry: the heap stores (when, seq, event pointer)
     * only, so sift operations move small trivially-copyable values
     * and never touch a callable.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;
    };

    /** Pooled node backing one one-shot closure event. */
    struct ClosureEvent final : Event
    {
        EventQueue *owner = nullptr;
        EventFn fn;

        void
        process() override
        {
            // Move the callable out and free the node first: the
            // callback may schedule new closures and reuse it.
            EventFn f = std::move(fn);
            owner->freeClosures.push_back(this);
            f();
        }
    };

    /** Min-heap comparator: the standard heap algorithms build a
     *  max-heap, so "greater" puts the earliest event at the front. */
    static bool
    laterThan(const HeapEntry &a, const HeapEntry &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    ClosureEvent *
    acquireClosure()
    {
        if (freeClosures.empty()) {
            closurePool.emplace_back();
            closurePool.back().owner = this;
            return &closurePool.back();
        }
        ClosureEvent *ev = freeClosures.back();
        freeClosures.pop_back();
        return ev;
    }

    /** Drop stale heap entries (descheduled or rescheduled events)
     *  off the top so heap.front() is the earliest live event. */
    void
    purgeStale()
    {
        while (!heap.empty()) {
            const HeapEntry &top = heap.front();
            if (top.ev->_scheduled && top.ev->_stamp == top.seq)
                return;
            popFront();
        }
    }

    void
    popFront()
    {
        std::pop_heap(heap.begin(), heap.end(), laterThan);
        heap.pop_back();
    }

    /** Binary min-heap maintained with std::push_heap/std::pop_heap;
     *  after purgeStale(), heap.front() is the earliest live event. */
    std::vector<HeapEntry> heap;
    /** Closure nodes live here for the queue's lifetime (deque: node
     *  addresses are stable) and recycle through freeClosures. */
    std::deque<ClosureEvent> closurePool;
    std::vector<ClosureEvent *> freeClosures;
    std::size_t numLive = 0;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t _executed = 0;
};

} // namespace bvl

#endif // BVL_SIM_EVENT_QUEUE_HH
