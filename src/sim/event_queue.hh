/**
 * @file
 * Global discrete-event queue driving a simulation.
 *
 * Time is measured in picosecond Ticks so that clock domains with
 * different frequencies (the big-core and little-core clusters under
 * DVFS) can coexist in one queue. Events scheduled for the same tick
 * fire in FIFO order of their scheduling, which keeps the simulation
 * deterministic.
 */

#ifndef BVL_SIM_EVENT_QUEUE_HH
#define BVL_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace bvl
{

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * A min-heap of timestamped callbacks. One EventQueue exists per
 * simulated system; components hold a reference to it.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void
    scheduleAt(Tick when, EventFn fn)
    {
        bvl_assert(when >= _now, "event scheduled in the past "
                   "(when=%llu now=%llu)",
                   (unsigned long long)when, (unsigned long long)_now);
        heap.push_back(Event{when, nextSeq++, std::move(fn)});
        std::push_heap(heap.begin(), heap.end(), laterThan);
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    void schedule(Tick delay, EventFn fn)
    { scheduleAt(_now + delay, std::move(fn)); }

    /** True if no events remain. */
    bool empty() const { return heap.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap.size(); }

    /** Time of the earliest pending event (maxTick if none). */
    Tick nextEventTick() const
    { return heap.empty() ? maxTick : heap.front().when; }

    /**
     * Pop and execute the earliest event, advancing time.
     * @retval false if the queue was empty.
     */
    bool
    step()
    {
        if (heap.empty())
            return false;
        // Move the event out before firing: the callback may schedule
        // new events and reshape the heap. pop_heap rotates the
        // earliest event to the back, so the move really is a move —
        // copying the std::function here would heap-allocate on the
        // hottest loop in the simulator.
        std::pop_heap(heap.begin(), heap.end(), laterThan);
        Event ev = std::move(heap.back());
        heap.pop_back();
        _now = ev.when;
        ev.fn();
        ++_executed;
        return true;
    }

    /**
     * Run until the queue drains or @p limit ticks of simulated time
     * elapse.
     * @retval true if the queue drained, false if the limit was hit.
     */
    bool
    run(Tick limit = maxTick)
    {
        while (!heap.empty()) {
            if (heap.front().when > limit)
                return false;
            step();
        }
        return true;
    }

    /**
     * Run until @p done returns true, the queue drains, or the tick
     * limit is reached.
     * @retval true iff @p done became true.
     */
    bool
    runUntil(const std::function<bool()> &done, Tick limit = maxTick)
    {
        while (!done()) {
            if (heap.empty() || heap.front().when > limit)
                return false;
            step();
        }
        return true;
    }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return _executed; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    /** Min-heap comparator: the standard heap algorithms build a
     *  max-heap, so "greater" puts the earliest event at the front. */
    static bool
    laterThan(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    /** Binary min-heap maintained with std::push_heap/std::pop_heap;
     *  heap.front() is always the earliest pending event. */
    std::vector<Event> heap;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t _executed = 0;
};

} // namespace bvl

#endif // BVL_SIM_EVENT_QUEUE_HH
