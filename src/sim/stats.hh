/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Components register Stat counters in a StatGroup; a run driver can
 * dump all statistics or query individual ones by hierarchical name
 * ("little0.stall.raw_mem"). Keeping stats in a registry (rather than
 * ad-hoc struct members) lets the benchmark harness extract exactly the
 * series each paper figure plots.
 *
 * Hot paths never touch the registry: a component interns each counter
 * once at construction via StatGroup::handle() and increments through
 * the returned StatHandle — a bare pointer, so the per-event cost is a
 * single add with no string building or map walk. Handles stay valid
 * for the StatGroup's lifetime because the registry is a node-based
 * std::map whose element addresses are stable.
 */

#ifndef BVL_SIM_STATS_HH
#define BVL_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "sim/logging.hh"

namespace bvl
{

/** A single additive statistic. */
class Stat
{
  public:
    Stat() = default;

    Stat &operator+=(std::uint64_t n) { _value += n; return *this; }
    Stat &operator++() { ++_value; return *this; }
    void operator++(int) { ++_value; }

    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/**
 * An interned reference to one Stat. Copyable and cheap to pass by
 * value; increments forward straight to the underlying counter, so
 * reporting by dotted name sees every update immediately.
 */
class StatHandle
{
  public:
    StatHandle() = default;

    StatHandle &operator+=(std::uint64_t n) { *s += n; return *this; }
    StatHandle &operator++() { ++*s; return *this; }
    void operator++(int) { ++*s; }

    std::uint64_t value() const { return s->value(); }

    /** True once bound to a registry entry. */
    explicit operator bool() const { return s != nullptr; }

  private:
    friend class StatGroup;
    explicit StatHandle(Stat &stat) : s(&stat) {}
    Stat *s = nullptr;
};

/** A flat registry of stats keyed by hierarchical dotted names. */
class StatGroup
{
  public:
    /** Get-or-create the stat with the given name. */
    Stat &
    stat(const std::string &name)
    {
        return stats[name];
    }

    /**
     * Intern a stat once (creating it at zero if new) and return a
     * handle for allocation-free increments. Valid for the group's
     * lifetime; call at construction time, not in hot loops.
     */
    StatHandle handle(const std::string &name)
    { return StatHandle(stats[name]); }

    /** Look up a stat; 0 if it was never created. */
    std::uint64_t
    value(const std::string &name) const
    {
        auto it = stats.find(name);
        return it == stats.end() ? 0 : it->second.value();
    }

    /** True if the stat exists. */
    bool has(const std::string &name) const
    { return stats.count(name) != 0; }

    /** Sum of all stats whose name starts with @p prefix. */
    std::uint64_t
    sumWithPrefix(const std::string &prefix) const
    {
        std::uint64_t total = 0;
        for (auto it = stats.lower_bound(prefix); it != stats.end(); ++it) {
            if (it->first.compare(0, prefix.size(), prefix) != 0)
                break;
            total += it->second.value();
        }
        return total;
    }

    /** Zero every registered stat. */
    void
    resetAll()
    {
        for (auto &kv : stats)
            kv.second.reset();
    }

    /** Print "name value" lines for every stat. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &kv : stats)
            os << kv.first << " " << kv.second.value() << "\n";
    }

    const std::map<std::string, Stat> &all() const { return stats; }

  private:
    std::map<std::string, Stat> stats;
};

} // namespace bvl

#endif // BVL_SIM_STATS_HH
