/**
 * @file
 * Deterministic I/O fault injection (DESIGN.md §17).
 *
 * Every filesystem operation the persistence stack performs goes
 * through the seam in sim/io/sim_io.hh, and every seam call names an
 * *injection site*: a stable dotted label ("result_cache.store.write")
 * plus a process-wide dynamic site index (the Nth seam call since the
 * last reset). An IoFaultPlan — same seeded-plan discipline as the
 * simulator's FaultSpec (sim/fault.hh) — selects sites by index or by
 * label and makes them fail in a chosen way:
 *
 *   fail_enospc / fail_eio  the operation fails outright
 *   short_write             a prefix of the data lands, then ENOSPC
 *   torn_rename             the destination materializes truncated
 *                           (a non-atomic publish caught mid-flight)
 *   stale_lock              the lock is never granted in the deadline
 *   crash                   the process "dies" right here: either a
 *                           clean IoCrashError unwind (in-process
 *                           harnesses) or _exit() (script harnesses),
 *                           leaving on-disk state exactly as a kill -9
 *                           at this point would
 *
 * Scripted entries fire once each (first match wins); a probabilistic
 * mode rolls every site against `prob` with the plan's own Rng so a
 * seeded random soak is reproducible. Plans install process-wide —
 * persistence objects (journals, caches, farms) are not per-run
 * simulation state — and with BVL_JOBS=1 the site sequence is a pure
 * function of the work performed, so "inject at site N" is
 * deterministic and enumerable.
 *
 * The same machinery is reachable from the environment so shell
 * harnesses (scripts/chaos_smoke.sh) can drive unmodified binaries:
 *
 *   BVL_IO_FAULT=<kind>@<site>[,...]  site = index or exact label
 *   BVL_IO_FAULT_CRASH=exit|throw     crash flavor (default exit)
 *   BVL_IO_FAULT_PROB / BVL_IO_FAULT_SEED   probabilistic mode
 *   BVL_IO_SITE_TRACE=<path>          append "index<TAB>label<TAB>op
 *                                     <TAB>path" per site reached
 */

#ifndef BVL_SIM_IO_IO_FAULT_HH
#define BVL_SIM_IO_IO_FAULT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace bvl
{
namespace io
{

/**
 * Thrown by an injected crash point in throw mode. Deliberately NOT
 * handled by the usual catch (SimError) recovery paths in the
 * persistence stack (they carve it out and rethrow): a crash must
 * unwind out of the process the way real death would, leaving partial
 * on-disk state for the next incarnation to recover from.
 */
class IoCrashError : public SimError
{
  public:
    using SimError::SimError;
};

/** Exit code used by exit-mode injected crashes. */
constexpr int ioCrashExitCode = 86;

/** Operation class of a seam call; decides which faults make sense. */
enum class IoOp
{
    open,
    read,
    write,
    fsync,
    rename,
    unlink,
    flock,
    mkdir,
};

const char *ioOpName(IoOp op);

enum class IoFaultKind
{
    fail_enospc,
    fail_eio,
    short_write,
    torn_rename,
    stale_lock,
    crash,
};

constexpr unsigned numIoFaultKinds = 6;

const char *ioFaultKindName(IoFaultKind k);

/**
 * One scripted fault. Matches by global site index (site >= 0) or by
 * exact label (site < 0); fires once. A kind that makes no sense for
 * the matched operation degrades to fail_eio — every operation can at
 * least fail — so a plan never silently does nothing.
 */
struct IoFault
{
    long long site = -1;
    std::string label;
    IoFaultKind kind = IoFaultKind::fail_eio;
};

struct IoFaultPlan
{
    bool enabled = false;
    std::vector<IoFault> script;

    /** Probabilistic mode: every site rolls; kind drawn per op. */
    double prob = 0.0;
    std::uint64_t seed = 1;

    /** Crash flavor: _exit(crashExitCode) instead of IoCrashError. */
    bool crashExits = false;
    int crashExitCode = ioCrashExitCode;
};

/**
 * Parse a "kind@site[,kind@site...]" spec (the BVL_IO_FAULT format),
 * e.g. "enospc@12,crash@result_cache.store.rename". Throws
 * SimFatalError with a one-line diagnosis on malformed input.
 */
IoFaultPlan ioFaultPlanFromSpec(const std::string &spec);

/** Install @p plan process-wide (replacing any previous plan). */
void ioFaultInstall(IoFaultPlan plan);

/**
 * Clear the installed plan, zero the site counter and fired/trace
 * state, and suppress any BVL_IO_FAULT environment plan for the rest
 * of the process (tests own the injector after the first reset).
 */
void ioFaultReset();

/** Seam calls (injection sites) reached since the last reset. */
std::uint64_t ioSiteCount();

/** Faults actually injected since the last reset. */
std::uint64_t ioFaultsFired();

/** Stale temp files removed by sweepStaleTemps() since last reset. */
std::uint64_t ioTempsCleaned();
void ioNoteTempsCleaned(unsigned n);

/** One site reached, as recorded by the in-memory site trace. */
struct IoSiteRecord
{
    std::uint64_t index = 0;
    std::string label;
    IoOp op = IoOp::open;
    std::string path;
};

/** Start/stop collecting every site reached in memory (harnesses). */
void ioSiteTraceEnable(bool enable);
std::vector<IoSiteRecord> ioSiteTraceSnapshot();

/**
 * Seam-internal: register that injection site @p label (operation
 * @p op, on @p path) was reached, and return the fault to apply, if
 * any. Never returns crash — a matched crash fires here directly
 * (throw or _exit). A crash matched while an exception is already
 * unwinding is skipped in throw mode: destructors run during unwind
 * (trace footers, lock releases) must not convert a clean unwind into
 * std::terminate.
 */
std::optional<IoFaultKind> ioSiteCheck(const char *label, IoOp op,
                                       const std::string &path);

} // namespace io
} // namespace bvl

#endif // BVL_SIM_IO_IO_FAULT_HH
