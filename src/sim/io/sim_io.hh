/**
 * @file
 * The I/O seam: every filesystem operation the persistence stack
 * performs (journal, result cache, checkpoint store, checkpoint farm,
 * forensics reports, trace writers) goes through these wrappers, each
 * call naming a stable injection-site label (see io_fault.hh).
 *
 * Design rules:
 *
 *  - Failure is a return value, not an exception. Persistence is a
 *    best-effort accelerator around a correct simulator; callers
 *    decide per component whether a failed write means "degrade and
 *    carry on" or "refuse to trust this artifact". The one exception
 *    is IoCrashError from an injected crash point, which must unwind
 *    (or _exit) like real process death.
 *
 *  - One logical operation = one site. writeAll() is a single site
 *    even though it may loop ::write(2); writeFileAtomic() exposes its
 *    constituent open/write/fsync/rename steps as "<site>.open" etc.
 *    so a plan can hit any stage of a publish.
 *
 *  - Temp files are self-describing: "<final>.tmp.<pid>[.<tid>]".
 *    sweepStaleTemps() can therefore tell a live writer's temp (owner
 *    pid alive) from an orphan (owner dead) without any lock.
 */

#ifndef BVL_SIM_IO_SIM_IO_HH
#define BVL_SIM_IO_SIM_IO_HH

#include <cstddef>
#include <string>

#include "sim/io/io_fault.hh"

namespace bvl
{
namespace io
{

/**
 * mkdir -p. Returns false (message in @p err) on failure; an already
 * existing directory is success.
 */
bool mkdirs(const char *site, const std::string &dir,
            std::string *err = nullptr);

/** unlink(2); absent file counts as success. */
bool unlinkFile(const char *site, const std::string &path,
                std::string *err = nullptr);

/**
 * rename(2). Under torn_rename injection the destination materializes
 * holding a truncated prefix of the source (and the source is gone) —
 * exactly what a non-atomic publish interrupted mid-copy leaves — and
 * the call reports failure.
 */
bool renameFile(const char *site, const std::string &from,
                const std::string &to, std::string *err = nullptr);

/**
 * Slurp a whole file. Distinguishes "not there" (@p missing set, when
 * non-null) from "there but unreadable" so callers can treat the
 * former as a clean miss and the latter as a corrupt artifact.
 */
bool readFile(const char *site, const std::string &path,
              std::string *out, bool *missing = nullptr,
              std::string *err = nullptr);

/**
 * A writable fd under the seam: explicit open/write/sync/close so
 * long-lived writers (journal, trace stream) can interleave seam
 * calls with their own buffering. Close errors are reported; the
 * destructor close is best-effort.
 */
class SimFile
{
  public:
    SimFile() = default;
    ~SimFile();

    SimFile(const SimFile &) = delete;
    SimFile &operator=(const SimFile &) = delete;

    /** O_WRONLY|O_CREAT|O_TRUNC. */
    bool createTrunc(const char *site, const std::string &path,
                     std::string *err = nullptr);
    /** O_WRONLY|O_CREAT|O_APPEND. */
    bool openAppend(const char *site, const std::string &path,
                    std::string *err = nullptr);

    /**
     * Write all of @p data (looping ::write internally; EINTR is
     * retried). One injection site. Under short_write injection a
     * prefix of @p data lands before the failure — the torn state a
     * full disk leaves.
     */
    bool writeAll(const char *site, const void *data, std::size_t len,
                  std::string *err = nullptr);

    /** fsync(2). */
    bool sync(const char *site, std::string *err = nullptr);

    bool close(std::string *err = nullptr);

    bool isOpen() const { return fd >= 0; }
    const std::string &path() const { return _path; }

  private:
    bool openHow(const char *site, const std::string &path, int flags,
                 std::string *err);

    int fd = -1;
    std::string _path;
};

/**
 * Publish @p data at @p path durably and atomically: write to
 * "<path>.tmp.<pid>.<tid>", fsync, rename over @p path. Sub-sites
 * "<site>.open", "<site>.write", "<site>.fsync", "<site>.rename".
 * On any failure the temp is unlinked (best-effort, even when the
 * failure is an injected crash unwinding in throw mode) and false is
 * returned with a one-line @p err.
 */
bool writeFileAtomic(const char *site, const std::string &path,
                     const std::string &data,
                     std::string *err = nullptr);

/**
 * Acquire an exclusive flock on @p lockPath (creating it as needed),
 * polling with LOCK_NB until @p timeoutMs elapses (<= 0 waits
 * "forever": ~1 hour, still bounded — an unbounded wait under a dead
 * peer's lock is exactly the hang this exists to kill). On success
 * returns the fd (callers hold it for the critical section and
 * release with unlockAndClose()) and records our pid in the lock file
 * for diagnosis. On timeout/failure returns -1 and @p diag names the
 * lock path and the holder pid read back from the file.
 *
 * stale_lock injection makes the lock look held for the whole
 * deadline without any real contention.
 */
int lockExclusive(const char *site, const std::string &lockPath,
                  long long timeoutMs, std::string *diag = nullptr);

void unlockAndClose(int fd);

/**
 * Recursively remove orphaned "*.tmp.<pid>..." files under @p dir: a
 * temp is stale when its embedded owner pid is no longer alive, when
 * it is *our* pid (@p selfStale — nothing of ours can be mid-publish
 * at a startup sweep), or when the pid is unparsable and the file is
 * over an hour old. Returns the number removed, which is also added
 * to the process-wide ioTempsCleaned() counter.
 */
unsigned sweepStaleTemps(const char *site, const std::string &dir,
                         bool selfStale = false);

/**
 * Force-remove every "<finalPath>.tmp.*" regardless of owner
 * liveness. Only correct when the caller holds whatever lock
 * serializes writers of @p finalPath (e.g. a farm entry's claim
 * flock). Returns the number removed (also counted).
 */
unsigned sweepTempsFor(const char *site, const std::string &finalPath);

} // namespace io
} // namespace bvl

#endif // BVL_SIM_IO_SIM_IO_HH
