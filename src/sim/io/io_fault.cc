#include "sim/io/io_fault.hh"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>

#include "sim/rng.hh"

namespace bvl
{
namespace io
{

namespace
{

const char *
kindForSpec(const std::string &name, IoFaultKind *out)
{
    for (unsigned i = 0; i < numIoFaultKinds; ++i) {
        auto k = static_cast<IoFaultKind>(i);
        if (name == ioFaultKindName(k)) {
            *out = k;
            return nullptr;
        }
    }
    return "unknown fault kind";
}

/** Kinds that model a real failure of @p op (crash fits anywhere). */
bool
eligible(IoFaultKind k, IoOp op)
{
    switch (k) {
      case IoFaultKind::crash:
        return true;
      case IoFaultKind::fail_eio:
        return true;
      case IoFaultKind::fail_enospc:
        return op == IoOp::write || op == IoOp::fsync ||
               op == IoOp::mkdir;
      case IoFaultKind::short_write:
        return op == IoOp::write;
      case IoFaultKind::torn_rename:
        return op == IoOp::rename;
      case IoFaultKind::stale_lock:
        return op == IoOp::flock;
    }
    return false;
}

struct ScriptEntry
{
    IoFault fault;
    bool fired = false;
};

/**
 * Process-wide injector state. Counters are atomics so quiet (plan
 * disabled) sites never contend on the mutex; plan matching and trace
 * collection serialize on `m`.
 */
struct Injector
{
    std::mutex m;
    IoFaultPlan plan;
    std::vector<ScriptEntry> script;
    Rng rng{1};
    bool envSettled = false;     ///< env consulted or overridden
    bool traceInMemory = false;
    std::vector<IoSiteRecord> trace;
    int traceFd = -2;            ///< -2 unprobed, -1 disabled
    std::string traceFdPath;

    std::atomic<std::uint64_t> sites{0};
    std::atomic<std::uint64_t> fired{0};
    std::atomic<std::uint64_t> tempsCleaned{0};

    void
    installLocked(IoFaultPlan p)
    {
        plan = std::move(p);
        script.clear();
        for (const IoFault &f : plan.script)
            script.push_back({f, false});
        rng = Rng(plan.seed);
        envSettled = true;
    }

    /** Load BVL_IO_FAULT* once, unless a programmatic plan came first. */
    void
    settleEnvLocked()
    {
        if (envSettled)
            return;
        envSettled = true;
        IoFaultPlan p;
        if (const char *spec = std::getenv("BVL_IO_FAULT")) {
            if (*spec)
                p = ioFaultPlanFromSpec(spec);
        }
        if (const char *prob = std::getenv("BVL_IO_FAULT_PROB")) {
            char *end = nullptr;
            p.prob = std::strtod(prob, &end);
            if (end == prob || *end != '\0' || p.prob < 0.0 ||
                p.prob > 1.0)
                fatal("BVL_IO_FAULT_PROB must be a probability in "
                      "[0, 1], got '%s'", prob);
            p.enabled = p.enabled || p.prob > 0.0;
        }
        if (const char *seed = std::getenv("BVL_IO_FAULT_SEED"))
            p.seed = std::strtoull(seed, nullptr, 10);
        // Script harnesses drive whole processes: a crash should end
        // the process the way real death does, not unwind main().
        p.crashExits = true;
        if (const char *mode = std::getenv("BVL_IO_FAULT_CRASH")) {
            if (!std::strcmp(mode, "throw"))
                p.crashExits = false;
            else if (std::strcmp(mode, "exit"))
                fatal("BVL_IO_FAULT_CRASH must be exit or throw, "
                      "got '%s'", mode);
        }
        if (p.enabled)
            installLocked(std::move(p));
    }

    void
    traceSiteLocked(std::uint64_t index, const char *label, IoOp op,
                    const std::string &path)
    {
        if (traceInMemory)
            trace.push_back({index, label, op, path});
        if (traceFd == -2) {
            traceFd = -1;
            if (const char *tp = std::getenv("BVL_IO_SITE_TRACE")) {
                if (*tp) {
                    // Raw open: the site trace must never itself pass
                    // through the seam it observes.
                    traceFd = ::open(
                        tp, O_WRONLY | O_CREAT | O_APPEND, 0644);
                    traceFdPath = tp;
                }
            }
        }
        if (traceFd >= 0) {
            char line[512];
            int n = std::snprintf(line, sizeof(line),
                                  "%llu\t%s\t%s\t%s\n",
                                  (unsigned long long)index, label,
                                  ioOpName(op), path.c_str());
            if (n > 0) {
                ssize_t ignored = ::write(
                    traceFd, line,
                    n < (int)sizeof(line) ? (std::size_t)n
                                          : sizeof(line) - 1);
                (void)ignored;
            }
        }
    }
};

Injector &
injector()
{
    static Injector inj;
    return inj;
}

} // namespace

const char *
ioOpName(IoOp op)
{
    switch (op) {
      case IoOp::open: return "open";
      case IoOp::read: return "read";
      case IoOp::write: return "write";
      case IoOp::fsync: return "fsync";
      case IoOp::rename: return "rename";
      case IoOp::unlink: return "unlink";
      case IoOp::flock: return "flock";
      case IoOp::mkdir: return "mkdir";
    }
    return "?";
}

const char *
ioFaultKindName(IoFaultKind k)
{
    switch (k) {
      case IoFaultKind::fail_enospc: return "enospc";
      case IoFaultKind::fail_eio: return "eio";
      case IoFaultKind::short_write: return "short";
      case IoFaultKind::torn_rename: return "torn";
      case IoFaultKind::stale_lock: return "stale_lock";
      case IoFaultKind::crash: return "crash";
    }
    return "?";
}

IoFaultPlan
ioFaultPlanFromSpec(const std::string &spec)
{
    IoFaultPlan plan;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        std::size_t at = item.find('@');
        if (at == std::string::npos || at == 0 || at + 1 == item.size())
            fatal("BVL_IO_FAULT entry '%s' is not <kind>@<site>",
                  item.c_str());
        IoFault f;
        if (kindForSpec(item.substr(0, at), &f.kind))
            fatal("BVL_IO_FAULT entry '%s': unknown kind '%s' (want "
                  "enospc|eio|short|torn|stale_lock|crash)",
                  item.c_str(), item.substr(0, at).c_str());
        std::string site = item.substr(at + 1);
        if (site.find_first_not_of("0123456789") == std::string::npos) {
            f.site = std::stoll(site);
        } else {
            f.site = -1;
            f.label = site;
        }
        plan.script.push_back(std::move(f));
    }
    plan.enabled = !plan.script.empty();
    return plan;
}

void
ioFaultInstall(IoFaultPlan plan)
{
    Injector &inj = injector();
    std::lock_guard<std::mutex> lock(inj.m);
    inj.installLocked(std::move(plan));
}

void
ioFaultReset()
{
    Injector &inj = injector();
    std::lock_guard<std::mutex> lock(inj.m);
    inj.installLocked(IoFaultPlan{});
    inj.trace.clear();
    inj.sites.store(0, std::memory_order_relaxed);
    inj.fired.store(0, std::memory_order_relaxed);
    inj.tempsCleaned.store(0, std::memory_order_relaxed);
}

std::uint64_t
ioSiteCount()
{
    return injector().sites.load(std::memory_order_relaxed);
}

std::uint64_t
ioFaultsFired()
{
    return injector().fired.load(std::memory_order_relaxed);
}

std::uint64_t
ioTempsCleaned()
{
    return injector().tempsCleaned.load(std::memory_order_relaxed);
}

void
ioNoteTempsCleaned(unsigned n)
{
    injector().tempsCleaned.fetch_add(n, std::memory_order_relaxed);
}

void
ioSiteTraceEnable(bool enable)
{
    Injector &inj = injector();
    std::lock_guard<std::mutex> lock(inj.m);
    inj.traceInMemory = enable;
    if (!enable)
        inj.trace.clear();
}

std::vector<IoSiteRecord>
ioSiteTraceSnapshot()
{
    Injector &inj = injector();
    std::lock_guard<std::mutex> lock(inj.m);
    return inj.trace;
}

std::optional<IoFaultKind>
ioSiteCheck(const char *label, IoOp op, const std::string &path)
{
    Injector &inj = injector();
    std::uint64_t index = inj.sites.fetch_add(1,
                                              std::memory_order_relaxed);

    IoFaultKind kind{};
    bool hit = false;
    bool crashExits = false;
    int crashExitCode = ioCrashExitCode;
    {
        std::lock_guard<std::mutex> lock(inj.m);
        inj.settleEnvLocked();
        if (inj.traceInMemory || inj.traceFd != -1)
            inj.traceSiteLocked(index, label, op, path);
        if (inj.plan.enabled) {
            for (ScriptEntry &e : inj.script) {
                if (e.fired)
                    continue;
                bool match = e.fault.site >= 0
                    ? static_cast<std::uint64_t>(e.fault.site) == index
                    : (e.fault.label.empty() || e.fault.label == label);
                if (!match)
                    continue;
                e.fired = true;
                kind = e.fault.kind;
                hit = true;
                break;
            }
            if (!hit && inj.plan.prob > 0.0 &&
                inj.rng.real() < inj.plan.prob) {
                // Uniform draw over the kinds this op can suffer.
                IoFaultKind pool[numIoFaultKinds];
                unsigned n = 0;
                for (unsigned i = 0; i < numIoFaultKinds; ++i) {
                    auto k = static_cast<IoFaultKind>(i);
                    if (eligible(k, op))
                        pool[n++] = k;
                }
                kind = pool[inj.rng.below(n)];
                hit = true;
            }
            crashExits = inj.plan.crashExits;
            crashExitCode = inj.plan.crashExitCode;
        }
    }
    if (!hit)
        return std::nullopt;
    if (!eligible(kind, op))
        kind = IoFaultKind::fail_eio;

    if (kind == IoFaultKind::crash) {
        if (crashExits) {
            // Flush nothing, run nothing: on-disk state stays exactly
            // as it is at this instant, like SIGKILL. The one-line
            // note goes straight to fd 2 so harnesses can tell an
            // injected crash from a real wreck.
            char msg[256];
            int n = std::snprintf(
                msg, sizeof(msg),
                "bvl-io: crash injected at site %llu (%s, %s)\n",
                (unsigned long long)index, label, path.c_str());
            if (n > 0) {
                ssize_t ignored = ::write(2, msg, (std::size_t)n);
                (void)ignored;
            }
            ::_exit(crashExitCode);
        }
        if (std::uncaught_exceptions() > 0) {
            // Already unwinding (a destructor flushing state): a
            // second throw would terminate. Real double-crashes do
            // not exist either — the first one ended the process.
            return std::nullopt;
        }
        inj.fired.fetch_add(1, std::memory_order_relaxed);
        throw IoCrashError(std::string("bvl-io: crash injected at "
                                       "site ") +
                           std::to_string(index) + " (" + label +
                           ", " + path + ")");
    }

    inj.fired.fetch_add(1, std::memory_order_relaxed);
    return kind;
}

} // namespace io
} // namespace bvl
