#include "sim/io/sim_io.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <thread>

namespace bvl
{
namespace io
{

namespace
{

void
setErr(std::string *err, const char *what, const std::string &path,
       int errnum)
{
    if (!err)
        return;
    *err = std::string(what) + " " + path + ": " +
           std::strerror(errnum);
}

void
setErrInjected(std::string *err, const char *what,
               const std::string &path, IoFaultKind kind, int errnum)
{
    if (!err)
        return;
    *err = std::string(what) + " " + path + ": " +
           std::strerror(errnum) + " [injected " +
           ioFaultKindName(kind) + "]";
}

int
errnoFor(IoFaultKind kind)
{
    switch (kind) {
      case IoFaultKind::fail_enospc:
      case IoFaultKind::short_write:
        return ENOSPC;
      default:
        return EIO;
    }
}

/** Loop ::write(2) over the buffer, retrying EINTR. */
bool
rawWriteAll(int fd, const void *data, std::size_t len, int *errnum)
{
    const char *p = static_cast<const char *>(data);
    std::size_t off = 0;
    while (off < len) {
        ssize_t n = ::write(fd, p + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            *errnum = errno;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** "<final>.tmp.<pid>.<tid16>" — unique per writer thread. */
std::string
tempPathFor(const std::string &finalPath)
{
    static thread_local unsigned long long tidTag = []() {
        return std::hash<std::thread::id>{}(
            std::this_thread::get_id());
    }();
    char suffix[64];
    std::snprintf(suffix, sizeof(suffix), ".tmp.%ld.%llx",
                  (long)::getpid(), tidTag);
    return finalPath + suffix;
}

/**
 * Parse the owner pid out of "name.tmp.<pid>[.<tid>]". Returns -1
 * when the name does not carry one.
 */
long
tempOwnerPid(const std::string &filename)
{
    std::size_t pos = filename.find(".tmp.");
    if (pos == std::string::npos)
        return -1;
    const char *digits = filename.c_str() + pos + 5;
    if (*digits < '0' || *digits > '9')
        return -1;
    char *end = nullptr;
    long pid = std::strtol(digits, &end, 10);
    if (end == digits || pid <= 0)
        return -1;
    return pid;
}

bool
pidAlive(long pid)
{
    return ::kill((pid_t)pid, 0) == 0 || errno != ESRCH;
}

bool
isStaleTemp(const std::filesystem::path &p, bool selfStale)
{
    long owner = tempOwnerPid(p.filename().string());
    if (owner > 0) {
        if (owner == (long)::getpid())
            return selfStale;
        return !pidAlive(owner);
    }
    // Legacy/foreign temp with no embedded pid: only age can tell.
    struct stat st;
    if (::stat(p.c_str(), &st) != 0)
        return false;
    return std::time(nullptr) - st.st_mtime > 3600;
}

} // namespace

bool
mkdirs(const char *site, const std::string &dir, std::string *err)
{
    if (auto fault = ioSiteCheck(site, IoOp::mkdir, dir)) {
        setErrInjected(err, "mkdir", dir, *fault, errnoFor(*fault));
        return false;
    }
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec && !std::filesystem::is_directory(dir)) {
        setErr(err, "mkdir", dir, ec.value() ? ec.value() : EIO);
        return false;
    }
    return true;
}

bool
unlinkFile(const char *site, const std::string &path, std::string *err)
{
    if (auto fault = ioSiteCheck(site, IoOp::unlink, path)) {
        setErrInjected(err, "unlink", path, *fault, errnoFor(*fault));
        return false;
    }
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
        setErr(err, "unlink", path, errno);
        return false;
    }
    return true;
}

bool
renameFile(const char *site, const std::string &from,
           const std::string &to, std::string *err)
{
    if (auto fault = ioSiteCheck(site, IoOp::rename, from)) {
        if (*fault == IoFaultKind::torn_rename) {
            // Simulate a non-atomic publish dying mid-copy: the
            // destination exists but truncated, the source is gone.
            std::string data;
            std::FILE *in = std::fopen(from.c_str(), "rb");
            if (in) {
                char buf[4096];
                std::size_t n = std::fread(buf, 1, sizeof(buf), in);
                std::fclose(in);
                data.assign(buf, n / 2);
            }
            std::FILE *out = std::fopen(to.c_str(), "wb");
            if (out) {
                std::fwrite(data.data(), 1, data.size(), out);
                std::fclose(out);
            }
            ::unlink(from.c_str());
        }
        setErrInjected(err, "rename", from + " -> " + to, *fault,
                       errnoFor(*fault));
        return false;
    }
    if (::rename(from.c_str(), to.c_str()) != 0) {
        setErr(err, "rename", from + " -> " + to, errno);
        return false;
    }
    return true;
}

bool
readFile(const char *site, const std::string &path, std::string *out,
         bool *missing, std::string *err)
{
    if (missing)
        *missing = false;
    if (auto fault = ioSiteCheck(site, IoOp::read, path)) {
        setErrInjected(err, "read", path, *fault, errnoFor(*fault));
        return false;
    }
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno == ENOENT) {
            if (missing)
                *missing = true;
            setErr(err, "read", path, ENOENT);
            return false;
        }
        setErr(err, "read", path, errno);
        return false;
    }
    out->clear();
    char buf[1 << 16];
    for (;;) {
        ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setErr(err, "read", path, errno);
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out->append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return true;
}

SimFile::~SimFile()
{
    if (fd >= 0)
        ::close(fd);
}

bool
SimFile::openHow(const char *site, const std::string &path, int flags,
                 std::string *err)
{
    bvl_assert(fd < 0, "SimFile opened twice");
    _path = path;
    if (auto fault = ioSiteCheck(site, IoOp::open, path)) {
        setErrInjected(err, "open", path, *fault, errnoFor(*fault));
        return false;
    }
    fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
        setErr(err, "open", path, errno);
        return false;
    }
    return true;
}

bool
SimFile::createTrunc(const char *site, const std::string &path,
                     std::string *err)
{
    return openHow(site, path, O_WRONLY | O_CREAT | O_TRUNC, err);
}

bool
SimFile::openAppend(const char *site, const std::string &path,
                    std::string *err)
{
    return openHow(site, path, O_WRONLY | O_CREAT | O_APPEND, err);
}

bool
SimFile::writeAll(const char *site, const void *data, std::size_t len,
                  std::string *err)
{
    bvl_assert(fd >= 0, "writeAll on closed SimFile");
    if (auto fault = ioSiteCheck(site, IoOp::write, _path)) {
        if (*fault == IoFaultKind::short_write && len > 1) {
            // Land a prefix, then "the disk fills": the torn state
            // callers must be able to detect or tolerate.
            int ignored;
            rawWriteAll(fd, data, len / 2, &ignored);
        }
        setErrInjected(err, "write", _path, *fault, errnoFor(*fault));
        return false;
    }
    int errnum = 0;
    if (!rawWriteAll(fd, data, len, &errnum)) {
        setErr(err, "write", _path, errnum);
        return false;
    }
    return true;
}

bool
SimFile::sync(const char *site, std::string *err)
{
    bvl_assert(fd >= 0, "sync on closed SimFile");
    if (auto fault = ioSiteCheck(site, IoOp::fsync, _path)) {
        setErrInjected(err, "fsync", _path, *fault, errnoFor(*fault));
        return false;
    }
    if (::fsync(fd) != 0) {
        setErr(err, "fsync", _path, errno);
        return false;
    }
    return true;
}

bool
SimFile::close(std::string *err)
{
    if (fd < 0)
        return true;
    int rc = ::close(fd);
    fd = -1;
    if (rc != 0) {
        setErr(err, "close", _path, errno);
        return false;
    }
    return true;
}

bool
writeFileAtomic(const char *site, const std::string &path,
                const std::string &data, std::string *err)
{
    std::string stage(site);
    std::string temp = tempPathFor(path);
    SimFile f;
    // The temp must not outlive a failure — including an injected
    // crash unwinding in throw mode, which models "process died but
    // the harness keeps running"; exit-mode crashes genuinely leave
    // the temp, and the startup sweep owns that case.
    struct TempGuard
    {
        const std::string &p;
        bool armed = true;
        ~TempGuard()
        {
            if (armed)
                ::unlink(p.c_str());
        }
    } guard{temp};

    if (!f.createTrunc((stage + ".open").c_str(), temp, err))
        return false;
    if (!f.writeAll((stage + ".write").c_str(), data.data(),
                    data.size(), err))
        return false;
    if (!f.sync((stage + ".fsync").c_str(), err))
        return false;
    if (!f.close(err))
        return false;
    if (!renameFile((stage + ".rename").c_str(), temp, path, err))
        return false;
    guard.armed = false;
    return true;
}

int
lockExclusive(const char *site, const std::string &lockPath,
              long long timeoutMs, std::string *diag)
{
    if (timeoutMs <= 0)
        timeoutMs = 3600LL * 1000;

    long long staleMs = 0;
    if (auto fault = ioSiteCheck(site, IoOp::flock, lockPath)) {
        if (*fault == IoFaultKind::stale_lock) {
            // Contend for the whole (capped) deadline, then time out
            // exactly as a wedged peer holding the flock would cause.
            staleMs = timeoutMs < 200 ? timeoutMs : 200;
        } else {
            if (diag)
                *diag = "flock " + lockPath + ": " +
                        std::strerror(errnoFor(*fault)) +
                        " [injected " + ioFaultKindName(*fault) + "]";
            return -1;
        }
    }

    int fd = ::open(lockPath.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
        if (diag)
            *diag = "flock: cannot open " + lockPath + ": " +
                    std::strerror(errno);
        return -1;
    }

    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(
                        staleMs ? staleMs : timeoutMs);
    for (;;) {
        if (!staleMs && ::flock(fd, LOCK_EX | LOCK_NB) == 0)
            break;
        if (!staleMs && errno != EWOULDBLOCK && errno != EINTR) {
            if (diag)
                *diag = "flock " + lockPath + ": " +
                        std::strerror(errno);
            ::close(fd);
            return -1;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            // Read the holder's pid back out for the diagnostic; a
            // peer that died *with* the flock held releases it (the
            // kernel drops flocks at close), so a timeout means a
            // live-but-stuck holder, not a stale file.
            char buf[32] = {0};
            ssize_t n = ::pread(fd, buf, sizeof(buf) - 1, 0);
            ::close(fd);
            if (diag) {
                *diag = "flock " + lockPath + ": timed out after " +
                        std::to_string(staleMs ? staleMs : timeoutMs) +
                        " ms (holder pid " +
                        (n > 0 ? std::string(buf, strcspn(buf, "\n"))
                               : std::string("unknown")) +
                        ")";
                if (staleMs)
                    *diag += " [injected stale_lock]";
            }
            return -1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    // Record our pid for the next victim's diagnostic.
    char buf[32];
    int n = std::snprintf(buf, sizeof(buf), "%ld\n", (long)::getpid());
    if (n > 0) {
        if (::ftruncate(fd, 0) == 0) {
            ssize_t ignored = ::pwrite(fd, buf, (std::size_t)n, 0);
            (void)ignored;
        }
    }
    return fd;
}

void
unlockAndClose(int fd)
{
    if (fd < 0)
        return;
    ::flock(fd, LOCK_UN);
    ::close(fd);
}

unsigned
sweepStaleTemps(const char *site, const std::string &dir,
                bool selfStale)
{
    if (auto fault = ioSiteCheck(site, IoOp::unlink, dir)) {
        (void)fault; // sweep is best-effort; an injected failure
        return 0;    // just means nothing gets cleaned this time
    }
    std::error_code ec;
    std::filesystem::recursive_directory_iterator it(
        dir,
        std::filesystem::directory_options::skip_permission_denied,
        ec);
    if (ec)
        return 0;
    unsigned removed = 0;
    for (auto end = std::filesystem::end(it); it != end;
         it.increment(ec)) {
        if (ec)
            break;
        if (!it->is_regular_file(ec))
            continue;
        const auto &p = it->path();
        if (p.filename().string().find(".tmp.") == std::string::npos)
            continue;
        if (!isStaleTemp(p, selfStale))
            continue;
        if (::unlink(p.c_str()) == 0)
            ++removed;
    }
    if (removed)
        ioNoteTempsCleaned(removed);
    return removed;
}

unsigned
sweepTempsFor(const char *site, const std::string &finalPath)
{
    if (auto fault = ioSiteCheck(site, IoOp::unlink, finalPath)) {
        (void)fault;
        return 0;
    }
    auto final_ = std::filesystem::path(finalPath);
    auto dir = final_.parent_path();
    std::string prefix = final_.filename().string() + ".tmp.";
    std::error_code ec;
    std::filesystem::directory_iterator it(
        dir.empty() ? "." : dir, ec);
    if (ec)
        return 0;
    unsigned removed = 0;
    for (auto end = std::filesystem::end(it); it != end;
         it.increment(ec)) {
        if (ec)
            break;
        std::string name = it->path().filename().string();
        if (name.rfind(prefix, 0) != 0)
            continue;
        if (::unlink(it->path().c_str()) == 0)
            ++removed;
    }
    if (removed)
        ioNoteTempsCleaned(removed);
    return removed;
}

} // namespace io
} // namespace bvl
