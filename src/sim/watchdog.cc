#include "sim/watchdog.hh"

namespace bvl
{

void
Watchdog::addSource(std::string name,
                    std::function<std::uint64_t()> progress,
                    std::function<std::string()> detail)
{
    Source src;
    src.name = std::move(name);
    src.progress = std::move(progress);
    src.detail = std::move(detail);
    sources.push_back(std::move(src));
}

void
Watchdog::arm()
{
    if (_armed)
        return;
    bvl_assert(_interval > 0, "watchdog interval must be positive");
    _armed = true;
    wallStart = std::chrono::steady_clock::now();
    lastAnyAdvance = eq.now();
    for (auto &src : sources) {
        src.lastValue = src.progress ? src.progress() : 0;
        src.lastAdvance = eq.now();
    }
    scheduleCheck();
}

std::string
Watchdog::report() const
{
    std::string out;
    out += "watchdog diagnostic @ " + std::to_string(eq.now()) +
           " ps (pending events: " + std::to_string(eq.size()) +
           ", executed: " + std::to_string(eq.executed()) + ")\n";
    out += "  component                       progress  "
           "last-advance(ps)\n";
    for (const auto &src : sources) {
        std::string name = src.name;
        if (name.size() < 30)
            name.resize(30, ' ');
        std::string cnt = std::to_string(src.lastValue);
        if (cnt.size() < 10)
            cnt.insert(0, 10 - cnt.size(), ' ');
        out += "  " + name + cnt + "  " +
               std::to_string(src.lastAdvance) + "\n";
    }
    for (const auto &src : sources) {
        if (!src.detail)
            continue;
        std::string d = src.detail();
        if (!d.empty())
            out += "  [" + src.name + "] " + d + "\n";
    }
    return out;
}

std::vector<Watchdog::Heartbeat>
Watchdog::snapshot() const
{
    std::vector<Heartbeat> out;
    out.reserve(sources.size());
    for (const auto &src : sources) {
        Heartbeat hb;
        hb.name = src.name;
        hb.progress = src.progress ? src.progress() : 0;
        hb.lastAdvance = src.lastAdvance;
        hb.detail = src.detail ? src.detail() : "";
        out.push_back(std::move(hb));
    }
    return out;
}

void
Watchdog::scheduleCheck()
{
    if (checkPending)
        return;
    checkPending = true;
    eq.schedule(_interval, [this] { check(); });
}

void
Watchdog::check()
{
    checkPending = false;
    if (!_armed)
        return;
    ++_checks;

    if (_wallDeadlineSec > 0.0) {
        std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - wallStart;
        if (elapsed.count() >= _wallDeadlineSec) {
            warn("watchdog: wall-clock deadline (%g s) exceeded after "
                 "%g s", _wallDeadlineSec, elapsed.count());
            throw WallDeadlineError(
                "wall-clock deadline exceeded\n" + report());
        }
    }

    Tick now = eq.now();
    bool any = false;
    for (auto &src : sources) {
        std::uint64_t v = src.progress ? src.progress() : 0;
        if (v != src.lastValue) {
            src.lastValue = v;
            src.lastAdvance = now;
            any = true;
        }
    }
    if (any) {
        lastAnyAdvance = now;
    } else if (now - lastAnyAdvance >= _interval) {
        std::string diag = report();
        warn("watchdog: no component made progress for %llu ps; "
             "declaring deadlock",
             (unsigned long long)(now - lastAnyAdvance));
        throw DeadlockError(diag);
    }
    scheduleCheck();
}

} // namespace bvl
