/**
 * @file
 * Fundamental simulation types shared by all bvl components.
 */

#ifndef BVL_SIM_TYPES_HH
#define BVL_SIM_TYPES_HH

#include <cstdint>

namespace bvl
{

/** Absolute simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A duration measured in clock cycles of some clock domain. */
using Cycles = std::uint64_t;

/** A byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Monotonically increasing id for dynamic instructions. */
using SeqNum = std::uint64_t;

/** Sentinel for "no tick scheduled / unknown time". */
constexpr Tick maxTick = ~Tick(0);

/** One nanosecond expressed in ticks (picoseconds). */
constexpr Tick ticksPerNs = 1000;

} // namespace bvl

#endif // BVL_SIM_TYPES_HH
