/**
 * @file
 * The Tracer: streaming Chrome trace-event emitter plus interval stat
 * sampler.
 *
 * One Tracer exists per armed Soc. Components register a named track
 * (a Perfetto "thread") at wiring time and then emit spans, instants
 * and async begin/end pairs against that track id from their tick
 * functions. Every emit call is guarded by the caller's null check on
 * its `Tracer *`, and cheap category/window filtering happens here, so
 * armed-but-filtered events cost one mask test.
 *
 * Determinism: events are written in emission order, emission order is
 * simulation order, and the simulation is deterministic — so the trace
 * file is byte-identical across reruns and across BVL_JOBS (each run
 * owns its Tracer and its output file; no shared state). Timestamps
 * are microseconds (the trace-event convention) derived from the
 * picosecond tick clock; Json prints doubles with %.17g, which
 * round-trips exactly.
 *
 * The stat sampler re-arms a closure event every sampleIntervalNs.
 * Like the watchdog's check event, that keeps the event queue alive
 * while the run is in flight — acceptable because runs end on a
 * done-predicate or the tick limit, not on queue drain (the only
 * visible effect: a hung run that would have drained dry reports
 * time_limit rather than deadlock while sampling is armed).
 *
 * Degradation policy (DESIGN.md §17): a trace is an observation, so
 * an output failure never perturbs — let alone fails — the run it
 * observes. A trace file that cannot be opened or written disarms
 * event tracing with one warning; a sample document that cannot be
 * published is dropped with a warning. Either way the RunStatus is
 * whatever the simulation earned. All output goes through the sim/io
 * seam (events buffered and flushed in chunks; samples published
 * atomically).
 */

#ifndef BVL_SIM_TRACE_TRACER_HH
#define BVL_SIM_TRACE_TRACER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/check/json.hh"
#include "sim/event_queue.hh"
#include "sim/io/sim_io.hh"
#include "sim/stats.hh"
#include "sim/trace/trace.hh"
#include "sim/types.hh"

namespace bvl
{

class Tracer
{
  public:
    Tracer(const TraceOptions &opts, EventQueue &eq, StatGroup &stats);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    const TraceOptions &options() const { return opts; }

    /**
     * Register a named track (rendered as a thread in Perfetto) and
     * return its id. Call once per track at wiring time; registration
     * order fixes the deterministic track-id assignment.
     */
    unsigned track(const std::string &name);

    /** Is this category armed for event tracing? Callers check this
     *  before building event arguments. */
    bool
    wants(TraceCat c) const
    {
        return eventsArmed && (opts.categories & static_cast<unsigned>(c));
    }

    /** A monotonically increasing id for async begin/end pairing.
     *  Allocation order is simulation order, hence deterministic. */
    std::uint64_t nextAsyncId() { return asyncSeq++; }

    /** Complete event ("X"): [start, end) on a track. */
    void span(TraceCat c, unsigned tid, const char *name,
              Tick start, Tick end, Json args = Json());

    /** Instant event ("i") at one tick. */
    void instant(TraceCat c, unsigned tid, const char *name,
                 Tick at, Json args = Json());

    /** Async lifetime ("b"/"e"); pair via an id from nextAsyncId().
     *  Use these for overlapping lifetimes (instructions in flight,
     *  cache misses) that would nest wrongly as complete events. */
    void asyncBegin(TraceCat c, unsigned tid, const char *name,
                    std::uint64_t id, Tick at, Json args = Json());
    void asyncEnd(TraceCat c, unsigned tid, const char *name,
                  std::uint64_t id, Tick at, Json args = Json());

    /** Arm the periodic stat sampler (no-op without a samplePath). */
    void startSampling();

    /**
     * Flush and close both outputs: write the trace footer and the
     * sample document (including a final partial interval so per-stat
     * delta sums equal the end-of-run totals). Idempotent; the
     * destructor calls it as a backstop.
     */
    void finish();

  private:
    bool inWindow(Tick t) const
    { return t >= startTick && t <= stopTick; }

    void emit(TraceCat c, unsigned tid, const char *name, char ph,
              Tick at, const Json *dur, const std::uint64_t *id,
              Json &&args);
    void writeEvent(const Json &ev);
    void flushEvents();
    void sampleNow(bool reschedule);
    void writeSamples();

    TraceOptions opts;
    EventQueue &eq;
    StatGroup &stats;

    bool eventsArmed = false;
    bool finished = false;
    Tick startTick = 0;
    Tick stopTick = maxTick;
    io::SimFile out;
    std::string buf;
    bool firstEvent = true;
    std::uint64_t asyncSeq = 1;
    unsigned nextTid = 1;

    // --- interval sampler -------------------------------------------
    struct Sample
    {
        Tick at;
        /** Only stats whose value changed during the interval. */
        std::vector<std::pair<std::string, std::uint64_t>> deltas;
    };
    Tick sampleTicks = 0;
    std::map<std::string, std::uint64_t> prevValues;
    std::vector<Sample> samples;
};

} // namespace bvl

#endif // BVL_SIM_TRACE_TRACER_HH
