#include "sim/trace/tracer.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "sim/logging.hh"

namespace bvl
{

const char *
traceCatName(TraceCat c)
{
    switch (c) {
      case TraceCat::big: return "big";
      case TraceCat::core: return "core";
      case TraceCat::vcu: return "vcu";
      case TraceCat::lane: return "lane";
      case TraceCat::vxu: return "vxu";
      case TraceCat::vmu: return "vmu";
      case TraceCat::cache: return "cache";
      case TraceCat::dram: return "dram";
    }
    return "?";
}

unsigned
parseTraceCats(const std::string &csv)
{
    if (csv.empty() || csv == "all")
        return traceCatAll;
    static const std::pair<const char *, TraceCat> table[] = {
        {"big", TraceCat::big},     {"core", TraceCat::core},
        {"vcu", TraceCat::vcu},     {"lane", TraceCat::lane},
        {"vxu", TraceCat::vxu},     {"vmu", TraceCat::vmu},
        {"cache", TraceCat::cache}, {"dram", TraceCat::dram},
    };
    unsigned mask = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string name = csv.substr(pos, comma - pos);
        bool found = false;
        for (const auto &[n, c] : table) {
            if (name == n) {
                mask |= static_cast<unsigned>(c);
                found = true;
                break;
            }
        }
        if (!found)
            fatal("unknown trace category '%s' in '%s'", name.c_str(),
                  csv.c_str());
        pos = comma + 1;
    }
    return mask;
}

Tracer::Tracer(const TraceOptions &options, EventQueue &queue,
               StatGroup &statGroup)
    : opts(options), eq(queue), stats(statGroup)
{
    if (!opts.path.empty()) {
        std::string err;
        if (!out.createTrunc("trace.events.open", opts.path, &err)) {
            // A trace is an observation: never fail the run over it.
            warn("cannot open trace output '%s' (%s); event tracing "
                 "disabled", opts.path.c_str(), err.c_str());
        } else {
            buf = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
            eventsArmed = true;
        }
        startTick = static_cast<Tick>(opts.startNs * ticksPerNs);
        stopTick = opts.stopNs < 0
                       ? maxTick
                       : static_cast<Tick>(opts.stopNs * ticksPerNs);
    }
    if (!opts.samplePath.empty()) {
        sampleTicks = static_cast<Tick>(opts.sampleIntervalNs * ticksPerNs);
        if (sampleTicks == 0)
            fatal("trace sampleIntervalNs must cover at least one tick");
    }
}

Tracer::~Tracer()
{
    finish();
}

unsigned
Tracer::track(const std::string &name)
{
    unsigned tid = nextTid++;
    if (eventsArmed) {
        Json ev = Json::object();
        ev.set("name", "thread_name");
        ev.set("ph", "M");
        ev.set("pid", 1u);
        ev.set("tid", tid);
        Json args = Json::object();
        args.set("name", name);
        ev.set("args", std::move(args));
        writeEvent(ev);
    }
    return tid;
}

void
Tracer::emit(TraceCat c, unsigned tid, const char *name, char ph,
             Tick at, const Json *dur, const std::uint64_t *id,
             Json &&args)
{
    if (!wants(c) || !inWindow(at))
        return;
    Json ev = Json::object();
    ev.set("name", name);
    ev.set("cat", traceCatName(c));
    ev.set("ph", std::string(1, ph));
    // Trace-event timestamps are microseconds; ticks are picoseconds.
    ev.set("ts", static_cast<double>(at) / 1e6);
    if (dur)
        ev.set("dur", *dur);
    ev.set("pid", 1u);
    ev.set("tid", tid);
    if (id)
        ev.set("id", *id);
    if (!args.isNull())
        ev.set("args", std::move(args));
    writeEvent(ev);
}

void
Tracer::span(TraceCat c, unsigned tid, const char *name, Tick start,
             Tick end, Json args)
{
    Json dur(static_cast<double>(end - start) / 1e6);
    emit(c, tid, name, 'X', start, &dur, nullptr, std::move(args));
}

void
Tracer::instant(TraceCat c, unsigned tid, const char *name, Tick at,
                Json args)
{
    emit(c, tid, name, 'i', at, nullptr, nullptr, std::move(args));
}

void
Tracer::asyncBegin(TraceCat c, unsigned tid, const char *name,
                   std::uint64_t id, Tick at, Json args)
{
    emit(c, tid, name, 'b', at, nullptr, &id, std::move(args));
}

void
Tracer::asyncEnd(TraceCat c, unsigned tid, const char *name,
                 std::uint64_t id, Tick at, Json args)
{
    emit(c, tid, name, 'e', at, nullptr, &id, std::move(args));
}

void
Tracer::writeEvent(const Json &ev)
{
    if (!eventsArmed)
        return;
    if (!firstEvent)
        buf += ",\n";
    firstEvent = false;
    buf += ev.dump(0);
    if (buf.size() >= (1u << 18))
        flushEvents();
}

void
Tracer::flushEvents()
{
    if (!out.isOpen() || buf.empty())
        return;
    std::string err;
    if (!out.writeAll("trace.events.write", buf.data(), buf.size(),
                      &err)) {
        warn("trace output %s: %s; event tracing disabled (partial "
             "trace left behind)", opts.path.c_str(), err.c_str());
        out.close();
        eventsArmed = false;
    }
    buf.clear();
}

void
Tracer::startSampling()
{
    if (sampleTicks == 0)
        return;
    // Seed the baseline snapshot so the first interval's deltas are
    // relative to the armed state, then self-rearm every interval.
    for (const auto &kv : stats.all())
        prevValues[kv.first] = kv.second.value();
    eq.schedule(sampleTicks, [this] { sampleNow(true); });
}

void
Tracer::sampleNow(bool reschedule)
{
    Sample s;
    s.at = eq.now();
    for (const auto &kv : stats.all()) {
        std::uint64_t cur = kv.second.value();
        auto it = prevValues.find(kv.first);
        std::uint64_t prev = it == prevValues.end() ? 0 : it->second;
        if (cur != prev)
            s.deltas.emplace_back(kv.first, cur - prev);
        prevValues[kv.first] = cur;
    }
    samples.push_back(std::move(s));
    if (reschedule)
        eq.schedule(sampleTicks, [this] { sampleNow(true); });
}

void
Tracer::writeSamples()
{
    std::string text;
    bool csv = opts.samplePath.size() >= 4 &&
               opts.samplePath.compare(opts.samplePath.size() - 4, 4,
                                       ".csv") == 0;
    if (csv) {
        // Columns: simulated ns, then every stat that ever moved.
        std::set<std::string> cols;
        for (const auto &s : samples)
            for (const auto &[name, delta] : s.deltas)
                cols.insert(name);
        std::ostringstream sout;
        sout << "ns";
        for (const auto &c : cols)
            sout << "," << c;
        sout << "\n";
        for (const auto &s : samples) {
            sout << static_cast<double>(s.at) / ticksPerNs;
            for (const auto &c : cols) {
                auto it = std::find_if(
                    s.deltas.begin(), s.deltas.end(),
                    [&](const auto &kv) { return kv.first == c; });
                sout << ","
                     << (it == s.deltas.end() ? 0 : it->second);
            }
            sout << "\n";
        }
        text = sout.str();
    } else {
        Json doc = Json::object();
        doc.set("format", "bvl-stat-samples-v1");
        doc.set("intervalNs", opts.sampleIntervalNs);
        Json rows = Json::array();
        for (const auto &s : samples) {
            Json row = Json::object();
            row.set("ns", static_cast<double>(s.at) / ticksPerNs);
            Json deltas = Json::object();
            for (const auto &[name, delta] : s.deltas)
                deltas.set(name, delta);
            row.set("deltas", std::move(deltas));
            rows.push(std::move(row));
        }
        doc.set("samples", std::move(rows));
        text = doc.dump(2);
        text += '\n';
    }

    std::string err;
    if (!io::writeFileAtomic("trace.samples", opts.samplePath, text,
                             &err))
        warn("cannot write sample output '%s' (%s); samples dropped",
             opts.samplePath.c_str(), err.c_str());
}

void
Tracer::finish()
{
    if (finished)
        return;
    finished = true;
    if (out.isOpen()) {
        if (eventsArmed)
            buf += "]}\n";
        flushEvents();
        out.close();
    }
    if (sampleTicks != 0) {
        // Close out the partial final interval so summing every
        // sample's deltas reproduces the end-of-run stat totals.
        sampleNow(false);
        writeSamples();
    }
}

} // namespace bvl
