/**
 * @file
 * Trace options shared by RunOptions and SocParams.
 *
 * The observability layer is always compiled and disarmed by default:
 * components hold a raw `Tracer *` that stays nullptr in normal runs,
 * so the entire disarmed cost on every hot path is one null-pointer
 * branch (the same discipline as the fault injector and the checker,
 * DESIGN.md §11/§12/§13). A Soc owns at most one Tracer, created only
 * when TraceOptions::enabled().
 *
 * Two independent outputs hang off one option block:
 *
 *  - `path`: a Chrome trace-event / Perfetto-compatible JSON stream of
 *    per-component spans and instants (load it in ui.perfetto.dev or
 *    chrome://tracing).
 *  - `samplePath`: interval stat sampling — StatGroup deltas are
 *    snapshotted every sampleIntervalNs into a time-series document
 *    (JSON, or CSV when the path ends in ".csv") so sweeps can plot
 *    occupancy/stall curves instead of end-of-run totals.
 */

#ifndef BVL_SIM_TRACE_TRACE_HH
#define BVL_SIM_TRACE_TRACE_HH

#include <string>

namespace bvl
{

/**
 * Event categories, a bitmask. Each emitted event carries exactly one
 * category; TraceOptions::categories selects which ones reach the
 * file. Category names appear in the trace's "cat" field so Perfetto
 * can filter on them too.
 */
enum class TraceCat : unsigned
{
    big = 1u << 0,    ///< big-core fetch/dispatch/retire, vector handoff
    core = 1u << 1,   ///< little-core scalar instruction lifetimes
    vcu = 1u << 2,    ///< VCU chime micro-op broadcast, mode switches
    lane = 1u << 3,   ///< per-lane micro-op execute spans
    vxu = 1u << 4,    ///< VXU ring reads and shift hops
    vmu = 1u << 5,    ///< VMIU/VMSU/VLU/VSU transactions
    cache = 1u << 6,  ///< cache miss lifetimes (MSHR allocate -> fill)
    dram = 1u << 7,   ///< DRAM channel transfers
};

/** All categories armed (the default). */
inline constexpr unsigned traceCatAll = 0xffu;

const char *traceCatName(TraceCat c);

/**
 * Parse a comma-separated category list ("vcu,lane,vmu") into a mask.
 * The empty string and "all" both mean every category. Throws
 * SimFatalError on an unknown name.
 */
unsigned parseTraceCats(const std::string &csv);

/** Tracing knobs carried by RunOptions and SocParams. */
struct TraceOptions
{
    /** Trace-event JSON output path; empty disables event tracing. */
    std::string path;
    /** Interval-sample output path; empty disables stat sampling.
     *  A ".csv" suffix selects CSV, anything else the JSON form. */
    std::string samplePath;
    /** Event-trace window start in simulated nanoseconds. */
    double startNs = 0.0;
    /** Window end in simulated ns; < 0 traces to the end of the run. */
    double stopNs = -1.0;
    /** Bitmask of TraceCat values routed to the event trace. */
    unsigned categories = traceCatAll;
    /** Stat-sampling period in simulated nanoseconds. */
    double sampleIntervalNs = 1000.0;

    /** True when the Soc needs to construct a Tracer. */
    bool enabled() const { return !path.empty() || !samplePath.empty(); }
};

} // namespace bvl

#endif // BVL_SIM_TRACE_TRACE_HH
