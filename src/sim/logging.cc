#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bvl
{

namespace
{

bool verboseEnabled = true;

bool abortOnErrorEnabled = [] {
    const char *env = std::getenv("BVL_ABORT_ON_ERROR");
    return env && *env && std::strcmp(env, "0") != 0;
}();

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (len < 0)
        return fmt;
    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

void
report(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    report("panic", msg);
    if (abortOnErrorEnabled)
        std::abort();
    throw SimPanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    report("fatal", msg);
    if (abortOnErrorEnabled)
        std::exit(1);
    throw SimFatalError(msg);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    report("warn", vformat(fmt, args));
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled)
        return;
    va_list args;
    va_start(args, fmt);
    report("info", vformat(fmt, args));
    va_end(args);
}

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

void
setAbortOnError(bool abort)
{
    abortOnErrorEnabled = abort;
}

bool
abortOnError()
{
    return abortOnErrorEnabled;
}

} // namespace bvl
