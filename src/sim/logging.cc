#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bvl
{

namespace
{

std::atomic<bool> verboseEnabled{true};

std::atomic<bool> abortOnErrorEnabled{[] {
    const char *env = std::getenv("BVL_ABORT_ON_ERROR");
    return env && *env && std::strcmp(env, "0") != 0;
}()};

/** Innermost capture installed on this thread (nullptr = stderr). */
thread_local LogCapture *activeCapture = nullptr;

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (len < 0)
        return fmt;
    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

void
report(const char *prefix, const std::string &msg)
{
    if (activeCapture) {
        activeCapture->append(prefix, msg);
        return;
    }
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace

LogCapture::LogCapture() : prev(activeCapture)
{
    activeCapture = this;
}

LogCapture::~LogCapture()
{
    activeCapture = prev;
}

void
LogCapture::append(const char *prefix, const std::string &msg)
{
    buf += prefix;
    buf += ": ";
    buf += msg;
    buf += '\n';
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    report("panic", msg);
    if (abortOnErrorEnabled.load(std::memory_order_relaxed))
        std::abort();
    throw SimPanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    report("fatal", msg);
    if (abortOnErrorEnabled.load(std::memory_order_relaxed))
        std::exit(1);
    throw SimFatalError(msg);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    report("warn", vformat(fmt, args));
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled.load(std::memory_order_relaxed))
        return;
    va_list args;
    va_start(args, fmt);
    report("info", vformat(fmt, args));
    va_end(args);
}

void
setVerbose(bool verbose)
{
    verboseEnabled.store(verbose, std::memory_order_relaxed);
}

void
setAbortOnError(bool abort)
{
    abortOnErrorEnabled.store(abort, std::memory_order_relaxed);
}

bool
abortOnError()
{
    return abortOnErrorEnabled.load(std::memory_order_relaxed);
}

} // namespace bvl
