/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Workload generators (graphs, particle weights, option parameters)
 * must be reproducible across runs and platforms, so we use our own
 * xoshiro256** instead of std::mt19937 + distribution objects whose
 * outputs are implementation-defined.
 */

#ifndef BVL_SIM_RNG_HH
#define BVL_SIM_RNG_HH

#include <cstdint>

namespace bvl
{

/** xoshiro256** by Blackman & Vigna (public domain reference code). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 seeding
        std::uint64_t x = seed;
        for (auto &word : s) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    real(double lo, double hi)
    {
        return lo + (hi - lo) * real();
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace bvl

#endif // BVL_SIM_RNG_HH
