/**
 * @file
 * Progress watchdog: detects deadlock and livelock in a running
 * simulation.
 *
 * Components register heartbeat counters (retired instructions,
 * broadcast micro-ops, cache fills, runtime task pops, ...) with the
 * Watchdog attached to their EventQueue. While armed, a periodic check
 * event samples every counter; if a full check interval of simulated
 * time passes in which *no* registered counter advanced, the run is
 * declared dead and a DeadlockError carrying a structured diagnostic
 * (per-component last-progress tick and in-flight detail, plus the
 * pending-event count) is thrown out of the event loop.
 *
 * Counters must measure *work* (instructions retired, lines filled),
 * never cycles: a livelocked engine keeps ticking — and keeps its
 * cycle counters advancing — without doing anything.
 *
 * The check event only reads state, so an armed watchdog never
 * perturbs simulated timing: cycle counts and statistics are
 * bit-identical with the watchdog on or off.
 */

#ifndef BVL_SIM_WATCHDOG_HH
#define BVL_SIM_WATCHDOG_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace bvl
{

/** Thrown from the watchdog check event when no progress is seen. */
class DeadlockError : public SimError
{
  public:
    using SimError::SimError;
};

/**
 * Thrown from the watchdog check event when the run's wall-clock
 * (host-time) budget expired. Distinct from DeadlockError: the sim
 * may be making progress, just not fast enough for the caller — the
 * sweep service maps it to RunStatus::deadline and may retry.
 */
class WallDeadlineError : public SimError
{
  public:
    using SimError::SimError;
};

class Watchdog
{
  public:
    /** Default no-progress window: 100 us of simulated time. */
    static constexpr Tick defaultInterval = 100000 * ticksPerNs;

    explicit Watchdog(EventQueue &eq, Tick interval = defaultInterval)
        : eq(eq), _interval(interval)
    {}

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Register one heartbeat. @p progress returns a counter that
     * advances whenever the component does useful work; @p detail
     * (optional) describes its in-flight state for the diagnostic.
     */
    void addSource(std::string name,
                   std::function<std::uint64_t()> progress,
                   std::function<std::string()> detail = {});

    /**
     * Start watching: baseline every counter at the current tick and
     * schedule the periodic check. Idempotent.
     */
    void arm();

    /** Stop watching; a pending check event becomes a no-op. */
    void disarm() { _armed = false; }

    bool armed() const { return _armed; }

    /** Change the no-progress window (takes effect on arm()). */
    void
    setInterval(Tick interval)
    {
        bvl_assert(interval > 0, "watchdog interval must be positive");
        _interval = interval;
    }

    Tick interval() const { return _interval; }

    /**
     * Wall-clock budget for the run in seconds; 0 disables. The clock
     * starts at arm(); each periodic check event compares host time
     * elapsed since then and throws WallDeadlineError once the budget
     * is exhausted. Granularity is therefore one check interval of
     * *simulated* time — a simulation that stops scheduling events
     * entirely still needs an external supervisor (the sweep service's
     * subprocess mode kills such workers from the parent).
     */
    void setWallDeadline(double seconds) { _wallDeadlineSec = seconds; }

    double wallDeadline() const { return _wallDeadlineSec; }

    /** Number of check events that have fired (tests). */
    std::uint64_t checksRun() const { return _checks; }

    /**
     * Structured diagnostic: one line per source with its progress
     * count and last-advance tick, followed by each source's in-flight
     * detail.
     */
    std::string report() const;

    /** One heartbeat sampled for the forensics failure report. */
    struct Heartbeat
    {
        std::string name;
        std::uint64_t progress = 0;
        Tick lastAdvance = 0;
        std::string detail;
    };

    /**
     * Sample every source *now* (re-querying progress and detail, so
     * it works whether or not the watchdog is armed).
     */
    std::vector<Heartbeat> snapshot() const;

  private:
    struct Source
    {
        std::string name;
        std::function<std::uint64_t()> progress;
        std::function<std::string()> detail;
        std::uint64_t lastValue = 0;
        Tick lastAdvance = 0;
    };

    void scheduleCheck();
    void check();

    EventQueue &eq;
    Tick _interval;
    bool _armed = false;
    bool checkPending = false;
    double _wallDeadlineSec = 0.0;
    std::chrono::steady_clock::time_point wallStart{};
    Tick lastAnyAdvance = 0;
    std::uint64_t _checks = 0;
    std::vector<Source> sources;
};

} // namespace bvl

#endif // BVL_SIM_WATCHDOG_HH
