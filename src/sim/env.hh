/**
 * @file
 * Strict environment-variable parsing.
 *
 * Every BVL_* knob goes through these helpers so a malformed value is
 * a one-line fatal error instead of a silent fallback: a typo like
 * BVL_JOBS=4x or BVL_SWEEP_ISOLATE=yes must never quietly run with a
 * default the user did not ask for.
 */

#ifndef BVL_SIM_ENV_HH
#define BVL_SIM_ENV_HH

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>

#include "sim/logging.hh"

namespace bvl
{

/**
 * Parse env var @p name as a decimal integer in [minValue, maxValue].
 * Unset returns @p fallback; anything else — trailing characters,
 * overflow, an empty string, an out-of-range value — is rejected with
 * an actionable fatal().
 */
inline long long
envInt(const char *name, long long fallback, long long minValue,
       long long maxValue)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(env, &end, 10);
    // strtoll skips leading whitespace; strict parsing must not.
    if (std::isspace(static_cast<unsigned char>(env[0])) || end == env ||
        *end != '\0' || errno == ERANGE || v < minValue || v > maxValue)
        fatal("%s must be an integer in [%lld, %lld], got '%s'", name,
              minValue, maxValue, env);
    return v;
}

/** Boolean env flag accepting exactly "0" or "1"; unset → fallback. */
inline bool
envBool01(const char *name, bool fallback)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    if (!std::strcmp(env, "0"))
        return false;
    if (!std::strcmp(env, "1"))
        return true;
    fatal("%s must be 0 or 1, got '%s'", name, env);
}

/**
 * Enumerated env choice: returns the index of the variable's value in
 * @p choices, @p fallback when unset, and fatal()s (listing the legal
 * values) on anything else.
 */
inline int
envChoice(const char *name, std::initializer_list<const char *> choices,
          int fallback)
{
    const char *env = std::getenv(name);
    if (!env)
        return fallback;
    int i = 0;
    std::string legal;
    for (const char *c : choices) {
        if (!std::strcmp(env, c))
            return i;
        if (!legal.empty())
            legal += '|';
        legal += c;
        ++i;
    }
    fatal("%s must be one of %s, got '%s'", name, legal.c_str(), env);
}

} // namespace bvl

#endif // BVL_SIM_ENV_HH
