/**
 * @file
 * sw — Smith-Waterman local sequence alignment (the genomics
 * benchmark of Table V). Scoring: match +2, mismatch -1, linear gap
 * -1; the reported result is the maximum cell score.
 *
 * Three implementations share the scoring function:
 *  - scalar: classic row DP with two rolling rows;
 *  - vector: anti-diagonal vectorization — cells of one anti-diagonal
 *    are independent; per-diagonal bounds and buffer rotation are
 *    scalar control on the big core (this is why sw is only partially
 *    vectorized, VOp ~69% in the paper, and why boosting the big core
 *    helps sw in the DVFS study). The reversed reference slice uses a
 *    negative-stride vlse; match/mismatch selection uses vmseq+vmerge.
 *  - task graph: block-wavefront decomposition over the full DP
 *    matrix with per-block partial maxima and a final reduce task.
 */

#include "workloads/common.hh"

namespace bvl
{

namespace
{

class SwWorkload : public WorkloadBase
{
  public:
    explicit SwWorkload(Scale scale)
    {
        qLen = rLen = scale == Scale::tiny ? 32 :
                      scale == Scale::small ? 96 : 192;
    }

    std::string name() const override { return "sw"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        for (unsigned j = 0; j < rLen; ++j)
            mem.writeT<std::int32_t>(regionA + 4 * j, refCh(j));
        for (unsigned i = 0; i < qLen; ++i)
            mem.writeT<std::int32_t>(regionB + 4 * i, qryCh(i));
    }

    ProgramPtr
    scalarProgram() override
    {
        if (sProg)
            return sProg;
        Asm a("sw.scalar");
        // prev row at regionC, cur row at regionC + 4*(R+1); both all
        // zeros initially (backing store default).
        a.li(xreg(2), regionA)
         .li(xreg(3), regionB)
         .li(xreg(4), regionC)                    // prev
         .li(xreg(5), regionC + 4 * (rLen + 1))   // cur
         .li(xreg(7), qLen)
         .li(xreg(8), rLen)
         .li(xreg(20), 0)                         // maxv
         .li(xreg(9), 1)                          // i
         .label("iloop")
         // f28 = query[i-1]
         .addi(xreg(28), xreg(9), -1)
         .slli(xreg(28), xreg(28), 2)
         .add(xreg(28), xreg(28), xreg(3))
         .lw(xreg(21), xreg(28))                  // q char
         .li(xreg(6), 1)                          // j
         .label("jloop")
         // s = (q == ref[j-1]) ? 2 : -1
         .addi(xreg(28), xreg(6), -1)
         .slli(xreg(28), xreg(28), 2)
         .add(xreg(28), xreg(28), xreg(2))
         .lw(xreg(22), xreg(28))
         .li(xreg(23), -1)
         .bne(xreg(21), xreg(22), "mis")
         .li(xreg(23), 2)
         .label("mis")
         // h = max(0, prev[j-1]+s, prev[j]-1, cur[j-1]-1)
         .slli(xreg(28), xreg(6), 2)
         .add(xreg(29), xreg(28), xreg(4))        // &prev[j]
         .lw(xreg(24), xreg(29), -4)
         .add(xreg(24), xreg(24), xreg(23))       // diag + s
         .lw(xreg(25), xreg(29))
         .addi(xreg(25), xreg(25), -1)            // up - gap
         .add(xreg(30), xreg(28), xreg(5))        // &cur[j]
         .lw(xreg(26), xreg(30), -4)
         .addi(xreg(26), xreg(26), -1)            // left - gap
         .max_(xreg(24), xreg(24), xreg(25))
         .max_(xreg(24), xreg(24), xreg(26))
         .max_(xreg(24), xreg(24), xreg(0))
         .sw(xreg(24), xreg(30))
         .max_(xreg(20), xreg(20), xreg(24))
         .addi(xreg(6), xreg(6), 1)
         .slti(xreg(28), xreg(6), rLen + 1)
         .bne(xreg(28), xreg(0), "jloop")
         // swap prev/cur
         .mv(xreg(28), xreg(4))
         .mv(xreg(4), xreg(5))
         .mv(xreg(5), xreg(28))
         .addi(xreg(9), xreg(9), 1)
         .slti(xreg(28), xreg(9), qLen + 1)
         .bne(xreg(28), xreg(0), "iloop")
         .li(xreg(28), regionE)
         .sw(xreg(20), xreg(28));
        emitBandedRescan(a);
        a.halt();
        return sProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vProg)
            return vProg;
        const unsigned bufStride = 4 * (qLen + 2);
        Asm a("sw.vector");
        a.li(xreg(2), regionA)
         .li(xreg(3), regionB)
         .li(xreg(4), regionC)                    // Hcur
         .li(xreg(5), regionC + bufStride)        // Hd1
         .li(xreg(6), regionC + 2 * bufStride)    // Hd2
         .li(xreg(7), qLen)
         .li(xreg(8), rLen)
         .li(xreg(17), 2)                         // match
         .li(xreg(18), -1)                        // mismatch
         .li(xreg(19), 1)                         // gap
         .li(xreg(22), qLen + rLen)               // last diagonal
         // vMax = 0 across the full hardware vector
         .li(xreg(28), 100000)
         .vsetvli(xreg(13), xreg(28), 4)
         .vx(Op::vmv, vreg(14), regIdInvalid, xreg(0))
         .li(xreg(9), 2)                          // d
         .label("dloop")
         // ilo = max(1, d - R), ihi = min(Q, d - 1)
         .sub(xreg(20), xreg(9), xreg(8))
         .li(xreg(28), 1)
         .max_(xreg(20), xreg(20), xreg(28))
         .addi(xreg(21), xreg(9), -1)
         .min_(xreg(21), xreg(21), xreg(7))
         // zero boundary cells Hcur[ilo-1], Hcur[ihi+1]
         .addi(xreg(28), xreg(20), -1)
         .slli(xreg(28), xreg(28), 2)
         .add(xreg(28), xreg(28), xreg(4))
         .sw(xreg(0), xreg(28))
         .addi(xreg(28), xreg(21), 1)
         .slli(xreg(28), xreg(28), 2)
         .add(xreg(28), xreg(28), xreg(4))
         .sw(xreg(0), xreg(28))
         // strip over i in [ilo, ihi]
         .sub(xreg(12), xreg(21), xreg(20))
         .addi(xreg(12), xreg(12), 1)
         .mv(xreg(15), xreg(20))
         .label("strip")
         .vsetvli(xreg(13), xreg(12), 4)
         // v1 = query[i-1 ..]
         .addi(xreg(28), xreg(15), -1)
         .slli(xreg(28), xreg(28), 2)
         .add(xreg(28), xreg(28), xreg(3))
         .vle(vreg(1), xreg(28), 4)
         // v2 = ref[d-i-1], decreasing: base + 4*(d-i0-1), stride -4
         .sub(xreg(29), xreg(9), xreg(15))
         .addi(xreg(29), xreg(29), -1)
         .slli(xreg(29), xreg(29), 2)
         .add(xreg(29), xreg(29), xreg(2))
         .li(xreg(30), -4)
         .vlse(vreg(2), xreg(29), xreg(30), 4)
         // score v3 = (q == r) ? match : mismatch
         .vv(Op::vmseq, vreg(0), vreg(1), vreg(2))
         .vx(Op::vmv, vreg(3), regIdInvalid, xreg(18))
         .vmerge_vx(vreg(3), xreg(17), vreg(3))
         // diag = Hd2[i-1 ..] + score
         .addi(xreg(28), xreg(15), -1)
         .slli(xreg(28), xreg(28), 2)
         .add(xreg(31), xreg(28), xreg(6))
         .vle(vreg(4), xreg(31), 4)
         .vv(Op::vadd, vreg(4), vreg(4), vreg(3))
         // up = Hd1[i-1 ..] - gap
         .add(xreg(31), xreg(28), xreg(5))
         .vle(vreg(5), xreg(31), 4)
         .vx(Op::vsub, vreg(5), vreg(5), xreg(19))
         // left = Hd1[i ..] - gap
         .slli(xreg(28), xreg(15), 2)
         .add(xreg(31), xreg(28), xreg(5))
         .vle(vreg(6), xreg(31), 4)
         .vx(Op::vsub, vreg(6), vreg(6), xreg(19))
         // h = max(diag, up, left, 0)
         .vv(Op::vmax, vreg(4), vreg(4), vreg(5))
         .vv(Op::vmax, vreg(4), vreg(4), vreg(6))
         .vx(Op::vmax, vreg(4), vreg(4), xreg(0))
         // store Hcur[i ..] and fold into vMax
         .add(xreg(31), xreg(28), xreg(4))
         .vse(vreg(4), xreg(31), 4)
         .vv(Op::vmax, vreg(14), vreg(14), vreg(4))
         .add(xreg(15), xreg(15), xreg(13))
         .sub(xreg(12), xreg(12), xreg(13))
         .bne(xreg(12), xreg(0), "strip")
         // rotate buffers: Hd2 <- Hd1 <- Hcur <- (old Hd2)
         .mv(xreg(28), xreg(6))
         .mv(xreg(6), xreg(5))
         .mv(xreg(5), xreg(4))
         .mv(xreg(4), xreg(28))
         .addi(xreg(9), xreg(9), 1)
         .bge(xreg(22), xreg(9), "dloop")
         // reduce vMax
         .li(xreg(28), 100000)
         .vsetvli(xreg(13), xreg(28), 4)
         .vv(Op::vredmax, vreg(15), regIdInvalid, vreg(14))
         .vmv_x_s(xreg(20), vreg(15))
         .li(xreg(28), regionE)
         .sw(xreg(20), xreg(28));
        emitBandedRescan(a);
        a.halt();
        return vProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), 1}};
    }

    TaskGraph
    taskGraph() override
    {
        // Block wavefront over the full H matrix at regionD.
        if (!blockProg) {
            blockProg = makeBlockProgram();
            reduceProg = makeReduceProgram();
        }
        TaskGraph g;
        const unsigned qb = qLen / blocksPerSide;
        const unsigned rb = rLen / blocksPerSide;
        for (unsigned wave = 0; wave <= 2 * (blocksPerSide - 1); ++wave) {
            Phase ph;
            for (unsigned bi = 0; bi < blocksPerSide; ++bi) {
                if (wave < bi || wave - bi >= blocksPerSide)
                    continue;
                unsigned bj = wave - bi;
                Task t;
                t.scalar = blockProg;
                t.args = {{xreg(8), 1 + bi * qb},
                          {xreg(9), 1 + (bi + 1) * qb},
                          {xreg(10), 1 + bj * rb},
                          {xreg(11), 1 + (bj + 1) * rb},
                          {xreg(7), bi * blocksPerSide + bj}};
                ph.tasks.push_back(std::move(t));
            }
            g.phases.push_back(std::move(ph));
        }
        Phase fin;
        Task t;
        t.scalar = reduceProg;
        t.args = {{xreg(10), 0},
                  {xreg(11), blocksPerSide * blocksPerSide}};
        fin.tasks.push_back(std::move(t));
        g.phases.push_back(std::move(fin));
        if (!bandProg) {
            Asm a("sw.band");
            emitBandedRescan(a);
            a.halt();
            bandProg = finishProg(a);
        }
        Phase band;
        Task bt;
        bt.scalar = bandProg;
        band.tasks.push_back(std::move(bt));
        g.phases.push_back(std::move(band));
        return g;
    }

    bool
    verify(const BackingStore &mem) const override
    {
        std::vector<std::int32_t> prev(rLen + 1, 0), cur(rLen + 1, 0);
        std::int32_t best = 0;
        for (unsigned i = 1; i <= qLen; ++i) {
            cur[0] = 0;
            for (unsigned j = 1; j <= rLen; ++j) {
                std::int32_t s =
                    qryCh(i - 1) == refCh(j - 1) ? 2 : -1;
                std::int32_t h = std::max({0, prev[j - 1] + s,
                                           prev[j] - 1, cur[j - 1] - 1});
                cur[j] = h;
                best = std::max(best, h);
            }
            std::swap(prev, cur);
        }
        if (mem.readT<std::int32_t>(regionE) != best)
            return false;
        return mem.readT<std::int32_t>(regionE + 4) == hostBandedMax();
    }

  private:
    ProgramPtr
    makeBlockProgram()
    {
        // DP over block [x8, x9) x [x10, x11) on the full H matrix;
        // partial max written to the block's slot (block id in x7).
        Asm a("sw.block");
        a.li(xreg(2), regionA)
         .li(xreg(3), regionB)
         .li(xreg(4), regionD)
         .li(xreg(5), rLen + 1)       // H row stride (cells)
         .li(xreg(20), 0)             // block max
         .mv(xreg(6), xreg(8))        // i
         .label("iloop")
         .addi(xreg(28), xreg(6), -1)
         .slli(xreg(28), xreg(28), 2)
         .add(xreg(28), xreg(28), xreg(3))
         .lw(xreg(21), xreg(28))      // query char
         .mv(xreg(15), xreg(10))      // j
         .label("jloop")
         .addi(xreg(28), xreg(15), -1)
         .slli(xreg(28), xreg(28), 2)
         .add(xreg(28), xreg(28), xreg(2))
         .lw(xreg(22), xreg(28))
         .li(xreg(23), -1)
         .bne(xreg(21), xreg(22), "mis")
         .li(xreg(23), 2)
         .label("mis")
         // &H[i][j]
         .mul(xreg(28), xreg(6), xreg(5))
         .add(xreg(28), xreg(28), xreg(15))
         .slli(xreg(28), xreg(28), 2)
         .add(xreg(28), xreg(28), xreg(4))
         // up row pointer: &H[i-1][j]
         .slli(xreg(29), xreg(5), 2)
         .sub(xreg(29), xreg(28), xreg(29))
         .lw(xreg(24), xreg(29), -4)   // diag
         .add(xreg(24), xreg(24), xreg(23))
         .lw(xreg(25), xreg(29))       // up
         .addi(xreg(25), xreg(25), -1)
         .lw(xreg(26), xreg(28), -4)   // left
         .addi(xreg(26), xreg(26), -1)
         .max_(xreg(24), xreg(24), xreg(25))
         .max_(xreg(24), xreg(24), xreg(26))
         .max_(xreg(24), xreg(24), xreg(0))
         .sw(xreg(24), xreg(28))
         .max_(xreg(20), xreg(20), xreg(24))
         .addi(xreg(15), xreg(15), 1)
         .blt(xreg(15), xreg(11), "jloop")
         .addi(xreg(6), xreg(6), 1)
         .blt(xreg(6), xreg(9), "iloop")
         // store partial max into the block slot
         .slli(xreg(28), xreg(7), 2)
         .li(xreg(29), regionE + 64)
         .add(xreg(29), xreg(29), xreg(28))
         .sw(xreg(20), xreg(29))
         .halt();
        return finishProg(a);
    }

    ProgramPtr
    makeReduceProgram()
    {
        Asm a("sw.reduce");
        a.li(xreg(2), regionE + 64)
         .li(xreg(20), 0);
        emitScalarRangeLoop(a, xreg(5), "loop", [&] {
            a.slli(xreg(28), xreg(5), 2)
             .add(xreg(28), xreg(28), xreg(2))
             .lw(xreg(29), xreg(28))
             .max_(xreg(20), xreg(20), xreg(29));
        });
        a.li(xreg(28), regionE)
         .sw(xreg(20), xreg(28))
         .halt();
        return finishProg(a);
    }

    /**
     * Scalar banded re-alignment pass (the traceback-recovery step of
     * real vectorized SW implementations, e.g. SSW/ksw2): recompute a
     * width-2W band along the main diagonal with plain scalar DP and
     * record the band-restricted maximum at regionE+4. This is the
     * genuinely scalar ~30% of sw's work (paper Table V: VOp ~69%),
     * and the reason boosting the big core helps sw in Section VII.
     * Band rows live at regionC + 0x8000 (two rolling rows).
     */
    void
    emitBandedRescan(Asm &a)
    {
        const Addr rows = regionC + 0x8000;
        a.li(xreg(2), regionA)
         .li(xreg(3), regionB)
         .li(xreg(4), rows)                        // prev row
         .li(xreg(5), rows + 4 * (rLen + 2))       // cur row
         .li(xreg(20), 0)                          // band max
         .li(xreg(9), 1)                           // i
         .label("bd.iloop")
         // q char
         .addi(xreg(28), xreg(9), -1)
         .slli(xreg(28), xreg(28), 2)
         .add(xreg(28), xreg(28), xreg(3))
         .lw(xreg(21), xreg(28))
         // jlo = max(1, i-W), jhi = min(R, i+W)
         .addi(xreg(6), xreg(9), -(int)bandW)
         .li(xreg(28), 1)
         .max_(xreg(6), xreg(6), xreg(28))
         .addi(xreg(16), xreg(9), bandW)
         .li(xreg(28), rLen)
         .min_(xreg(16), xreg(16), xreg(28))
         // zero cur[jlo-1] (band boundary)
         .addi(xreg(28), xreg(6), -1)
         .slli(xreg(28), xreg(28), 2)
         .add(xreg(28), xreg(28), xreg(5))
         .sw(xreg(0), xreg(28))
         .label("bd.jloop")
         // s = (q == ref[j-1]) ? 2 : -1
         .addi(xreg(28), xreg(6), -1)
         .slli(xreg(28), xreg(28), 2)
         .add(xreg(28), xreg(28), xreg(2))
         .lw(xreg(22), xreg(28))
         .li(xreg(23), -1)
         .bne(xreg(21), xreg(22), "bd.mis")
         .li(xreg(23), 2)
         .label("bd.mis")
         .slli(xreg(28), xreg(6), 2)
         .add(xreg(29), xreg(28), xreg(4))
         .lw(xreg(24), xreg(29), -4)
         .add(xreg(24), xreg(24), xreg(23))
         .lw(xreg(25), xreg(29))
         .addi(xreg(25), xreg(25), -1)
         .add(xreg(30), xreg(28), xreg(5))
         .lw(xreg(26), xreg(30), -4)
         .addi(xreg(26), xreg(26), -1)
         .max_(xreg(24), xreg(24), xreg(25))
         .max_(xreg(24), xreg(24), xreg(26))
         .max_(xreg(24), xreg(24), xreg(0))
         .sw(xreg(24), xreg(30))
         .max_(xreg(20), xreg(20), xreg(24))
         .addi(xreg(6), xreg(6), 1)
         .bge(xreg(16), xreg(6), "bd.jloop")
         // zero prev[jhi+1] for the next row's band edge, then swap
         .addi(xreg(28), xreg(16), 1)
         .slli(xreg(28), xreg(28), 2)
         .add(xreg(28), xreg(28), xreg(5))
         .sw(xreg(0), xreg(28))
         .mv(xreg(28), xreg(4))
         .mv(xreg(4), xreg(5))
         .mv(xreg(5), xreg(28))
         .addi(xreg(9), xreg(9), 1)
         .slti(xreg(28), xreg(9), qLen + 1)
         .bne(xreg(28), xreg(0), "bd.iloop")
         .li(xreg(28), regionE + 4)
         .sw(xreg(20), xreg(28));
    }

    std::int32_t
    hostBandedMax() const
    {
        std::vector<std::int32_t> prev(rLen + 2, 0), cur(rLen + 2, 0);
        std::int32_t best = 0;
        for (unsigned i = 1; i <= qLen; ++i) {
            unsigned jlo = i > bandW ? i - bandW : 1;
            unsigned jhi = std::min<unsigned>(rLen, i + bandW);
            cur[jlo - 1] = 0;
            for (unsigned j = jlo; j <= jhi; ++j) {
                std::int32_t sc =
                    qryCh(i - 1) == refCh(j - 1) ? 2 : -1;
                cur[j] = std::max({0, prev[j - 1] + sc, prev[j] - 1,
                                   cur[j - 1] - 1});
                best = std::max(best, cur[j]);
            }
            prev[jhi + 1] = 0;
            std::swap(prev, cur);
        }
        return best;
    }

    static constexpr unsigned bandW = 8;
    std::int32_t refCh(unsigned j) const { return (j * 131 + 7) % 4; }
    std::int32_t qryCh(unsigned i) const { return (i * 37 + 3) % 4; }

    static constexpr unsigned blocksPerSide = 4;
    unsigned qLen, rLen;
    ProgramPtr sProg, vProg, blockProg, reduceProg, bandProg;
};

} // namespace

std::vector<WorkloadPtr>
makeGenomicsApps(Scale scale)
{
    std::vector<WorkloadPtr> v;
    v.push_back(std::make_unique<SwWorkload>(scale));
    return v;
}

} // namespace bvl
