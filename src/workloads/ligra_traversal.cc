/**
 * @file
 * Traversal-flavoured graph apps: bfs (level-synchronous frontier
 * processing), bc (forward path counting + backward dependency
 * accumulation), tc (sorted-adjacency triangle counting) and radii
 * (multi-source bitmask sweeps).
 */

#include "workloads/ligra_common.hh"

namespace bvl
{

namespace
{

// ------------------------------------------------------------------
// bfs
// ------------------------------------------------------------------

class BfsWorkload : public GraphWorkloadBase
{
  public:
    explicit BfsWorkload(Scale scale) : GraphWorkloadBase(scale)
    {
        frontiers = g.bfsFrontiers(root);
        refLevels = g.bfsLevels(root);
    }

    std::string name() const override { return "bfs"; }

    void
    init(BackingStore &mem) override
    {
        writeGraph(mem);
        for (unsigned v = 0; v < g.n; ++v)
            mem.writeT<std::int32_t>(regionB + 4ull * v, -1);
        mem.writeT<std::int32_t>(regionB + 4ull * root, 0);
        // Concatenated frontier arrays.
        Addr p = frontierBase;
        for (const auto &f : frontiers) {
            frontierAddrs.push_back(p);
            for (auto v : f) {
                mem.writeT<std::uint32_t>(p, v);
                p += 4;
            }
        }
    }

    TaskGraph
    taskGraph() override
    {
        if (!stepProg)
            stepProg = makeStep();
        TaskGraph graph;
        for (std::size_t l = 0; l + 1 < frontiers.size(); ++l) {
            Phase ph;
            std::uint64_t cnt = frontiers[l].size();
            std::uint64_t per = std::max<std::uint64_t>(1,
                                                        (cnt + 7) / 8);
            for (std::uint64_t s = 0; s < cnt; s += per) {
                Task t;
                t.scalar = stepProg;
                t.args = {{xreg(10), s},
                          {xreg(11), std::min(cnt, s + per)},
                          {xreg(8), frontierAddrs[l]},
                          {xreg(7), l + 1}};
                ph.tasks.push_back(std::move(t));
            }
            graph.phases.push_back(std::move(ph));
        }
        return graph;
    }

    bool
    verify(const BackingStore &mem) const override
    {
        for (unsigned v = 0; v < g.n; ++v)
            if (mem.readT<std::int32_t>(regionB + 4ull * v) !=
                refLevels[v]) {
                return false;
            }
        return true;
    }

  private:
    /** Process frontier slice [x10,x11): relax unvisited out-edges. */
    ProgramPtr
    makeStep()
    {
        Asm a("bfs.step");
        emitGraphBases(a);
        a.li(xreg(9), regionB);   // level array
        emitVertexLoop(a, "bf", [&] {
            // u = frontier[idx]
            a.slli(xreg(28), xreg(6), 2)
             .add(xreg(28), xreg(28), xreg(8))
             .lw(xreg(20), xreg(28));
            // walk out-edges of u: inline edge loop over x20
            a.slli(xreg(28), xreg(20), 2)
             .add(xreg(28), xreg(28), xreg(2))
             .lw(xreg(15), xreg(28), 0)
             .lw(xreg(16), xreg(28), 4)
             .bge(xreg(15), xreg(16), "bf.edone")
             .label("bf.eloop")
             .slli(xreg(28), xreg(15), 2)
             .add(xreg(28), xreg(28), xreg(3))
             .lw(xreg(22), xreg(28))
             // if (level[v] < 0) level[v] = x7
             .slli(xreg(28), xreg(22), 2)
             .add(xreg(28), xreg(28), xreg(9))
             .lw(xreg(24), xreg(28))
             .bge(xreg(24), xreg(0), "bf.visited")
             .sw(xreg(7), xreg(28))
             .label("bf.visited")
             .addi(xreg(15), xreg(15), 1)
             .blt(xreg(15), xreg(16), "bf.eloop")
             .label("bf.edone");
        });
        a.halt();
        return finishProg(a);
    }

    static constexpr unsigned root = 0;
    static constexpr Addr frontierBase = regionD;
    std::vector<std::vector<std::uint32_t>> frontiers;
    std::vector<std::int32_t> refLevels;
    std::vector<Addr> frontierAddrs;
    ProgramPtr stepProg;
};

// ------------------------------------------------------------------
// bc: path counting + dependency accumulation over BFS levels
// ------------------------------------------------------------------

class BcWorkload : public GraphWorkloadBase
{
  public:
    explicit BcWorkload(Scale scale) : GraphWorkloadBase(scale)
    {
        frontiers = g.bfsFrontiers(root);
        levels = g.bfsLevels(root);
        computeReference();
    }

    std::string name() const override { return "bc"; }

    void
    init(BackingStore &mem) override
    {
        writeGraph(mem);
        for (unsigned v = 0; v < g.n; ++v) {
            mem.writeT<std::int32_t>(levelBase + 4ull * v, levels[v]);
            mem.writeT<float>(npBase + 4ull * v, 0.0f);
            mem.writeT<float>(depBase + 4ull * v, 0.0f);
        }
        mem.writeT<float>(npBase + 4ull * root, 1.0f);
        Addr p = frontierBase;
        for (const auto &f : frontiers) {
            frontierAddrs.push_back(p);
            for (auto v : f) {
                mem.writeT<std::uint32_t>(p, v);
                p += 4;
            }
        }
    }

    TaskGraph
    taskGraph() override
    {
        if (!fwdProg) {
            fwdProg = makeFwd();
            bwdProg = makeBwd();
        }
        TaskGraph graph;
        auto addPhase = [&](ProgramPtr prog, std::size_t l,
                            std::uint64_t extra) {
            Phase ph;
            std::uint64_t cnt = frontiers[l].size();
            std::uint64_t per = std::max<std::uint64_t>(1,
                                                        (cnt + 7) / 8);
            for (std::uint64_t s = 0; s < cnt; s += per) {
                Task t;
                t.scalar = prog;
                t.args = {{xreg(10), s},
                          {xreg(11), std::min(cnt, s + per)},
                          {xreg(8), frontierAddrs[l]},
                          {xreg(7), extra}};
                ph.tasks.push_back(std::move(t));
            }
            graph.phases.push_back(std::move(ph));
        };
        for (std::size_t l = 1; l < frontiers.size(); ++l)
            addPhase(fwdProg, l, l - 1);
        for (std::size_t l = frontiers.size() - 1; l-- > 0;)
            addPhase(bwdProg, l, l + 1);
        return graph;
    }

    bool
    verify(const BackingStore &mem) const override
    {
        for (unsigned v = 0; v < g.n; ++v) {
            if (levels[v] < 0)
                continue;
            float got = mem.readT<float>(depBase + 4ull * v);
            if (!closeEnough(got, refDep[v], 2e-2f))
                return false;
        }
        return true;
    }

  private:
    void
    computeReference()
    {
        refNp.assign(g.n, 0.0f);
        refDep.assign(g.n, 0.0f);
        refNp[root] = 1.0f;
        for (std::size_t l = 1; l < frontiers.size(); ++l)
            for (auto v : frontiers[l]) {
                float acc = 0.0f;
                for (unsigned e = g.inOffs[v]; e < g.inOffs[v + 1]; ++e) {
                    auto u = g.inTgts[e];
                    if (levels[u] == static_cast<std::int32_t>(l - 1))
                        acc += refNp[u];
                }
                refNp[v] = acc;
            }
        for (std::size_t l = frontiers.size() - 1; l-- > 0;)
            for (auto v : frontiers[l]) {
                float acc = 0.0f;
                for (unsigned e = g.outOffs[v]; e < g.outOffs[v + 1];
                     ++e) {
                    auto w = g.outTgts[e];
                    if (levels[w] == static_cast<std::int32_t>(l + 1) &&
                        refNp[w] > 0.0f) {
                        acc += refNp[v] / refNp[w] *
                               (1.0f + refDep[w]);
                    }
                }
                refDep[v] = acc;
            }
    }

    /** np[v] = sum of np[u] over in-neighbours at level x7. */
    ProgramPtr
    makeFwd()
    {
        Asm a("bc.fwd");
        emitGraphBases(a);
        a.li(xreg(9), levelBase)
         .li(xreg(17), npBase);
        emitVertexLoop(a, "bc", [&] {
            a.slli(xreg(28), xreg(6), 2)
             .add(xreg(28), xreg(28), xreg(8))
             .lw(xreg(20), xreg(28))            // v = frontier[idx]
             .li(xreg(29), 0)
             .fmv_f_x(freg(1), xreg(29));       // acc
            // in-edges of v
            a.slli(xreg(28), xreg(20), 2)
             .add(xreg(28), xreg(28), xreg(4))
             .lw(xreg(15), xreg(28), 0)
             .lw(xreg(16), xreg(28), 4)
             .bge(xreg(15), xreg(16), "bc.edone")
             .label("bc.eloop")
             .slli(xreg(28), xreg(15), 2)
             .add(xreg(28), xreg(28), xreg(5))
             .lw(xreg(22), xreg(28))
             .slli(xreg(28), xreg(22), 2)
             .add(xreg(29), xreg(28), xreg(9))
             .lw(xreg(24), xreg(29))            // level[u]
             .bne(xreg(24), xreg(7), "bc.skip")
             .add(xreg(29), xreg(28), xreg(17))
             .flw(freg(2), xreg(29))
             .fadd(freg(1), freg(1), freg(2), 4)
             .label("bc.skip")
             .addi(xreg(15), xreg(15), 1)
             .blt(xreg(15), xreg(16), "bc.eloop")
             .label("bc.edone")
             .slli(xreg(28), xreg(20), 2)
             .add(xreg(28), xreg(28), xreg(17))
             .fsw(freg(1), xreg(28));
        });
        a.halt();
        return finishProg(a);
    }

    /** dep[v] = sum over out-neighbours at level x7 of
     *  np[v]/np[w] * (1+dep[w]). */
    ProgramPtr
    makeBwd()
    {
        Asm a("bc.bwd");
        emitGraphBases(a);
        a.li(xreg(9), levelBase)
         .li(xreg(17), npBase)
         .li(xreg(18), depBase);
        emitFloatConst(a, freg(5), xreg(28), 1.0f);
        emitVertexLoop(a, "bw", [&] {
            a.slli(xreg(28), xreg(6), 2)
             .add(xreg(28), xreg(28), xreg(8))
             .lw(xreg(20), xreg(28))            // v
             .li(xreg(29), 0)
             .fmv_f_x(freg(1), xreg(29))        // acc
             .slli(xreg(28), xreg(20), 2)
             .add(xreg(29), xreg(28), xreg(17))
             .flw(freg(4), xreg(29));           // np[v]
            a.slli(xreg(28), xreg(20), 2)
             .add(xreg(28), xreg(28), xreg(2))
             .lw(xreg(15), xreg(28), 0)
             .lw(xreg(16), xreg(28), 4)
             .bge(xreg(15), xreg(16), "bw.edone")
             .label("bw.eloop")
             .slli(xreg(28), xreg(15), 2)
             .add(xreg(28), xreg(28), xreg(3))
             .lw(xreg(22), xreg(28))            // w
             .slli(xreg(28), xreg(22), 2)
             .add(xreg(29), xreg(28), xreg(9))
             .lw(xreg(24), xreg(29))
             .bne(xreg(24), xreg(7), "bw.skip")
             .add(xreg(29), xreg(28), xreg(17))
             .flw(freg(2), xreg(29))            // np[w]
             .add(xreg(29), xreg(28), xreg(18))
             .flw(freg(3), xreg(29))            // dep[w]
             .fadd(freg(3), freg(3), freg(5), 4)
             .fdiv(freg(2), freg(4), freg(2), 4)
             .fmadd(freg(1), freg(2), freg(3), freg(1), 4)
             .label("bw.skip")
             .addi(xreg(15), xreg(15), 1)
             .blt(xreg(15), xreg(16), "bw.eloop")
             .label("bw.edone")
             .slli(xreg(28), xreg(20), 2)
             .add(xreg(28), xreg(28), xreg(18))
             .fsw(freg(1), xreg(28));
        });
        a.halt();
        return finishProg(a);
    }

    static constexpr unsigned root = 0;
    static constexpr Addr levelBase = regionB;
    static constexpr Addr npBase = regionC;
    static constexpr Addr depBase = regionB + 0x100000;
    static constexpr Addr frontierBase = regionD;

    std::vector<std::vector<std::uint32_t>> frontiers;
    std::vector<std::int32_t> levels;
    std::vector<float> refNp, refDep;
    std::vector<Addr> frontierAddrs;
    ProgramPtr fwdProg, bwdProg;
};

// ------------------------------------------------------------------
// tc: triangle counting via sorted adjacency intersection
// ------------------------------------------------------------------

class TcWorkload : public GraphWorkloadBase
{
  public:
    explicit TcWorkload(Scale scale) : GraphWorkloadBase(scale)
    {
        auto counts = g.triangles();
        refTotal = 0;
        for (auto c : counts)
            refTotal += c;
    }

    std::string name() const override { return "tc"; }

    void
    init(BackingStore &mem) override
    {
        writeGraph(mem);
    }

    TaskGraph
    taskGraph() override
    {
        if (!countProg) {
            countProg = makeCount();
            reduceProg = makeReduce();
        }
        TaskGraph graph = vertexPhases({{countProg, {}}});
        Phase fin;
        Task t;
        t.scalar = reduceProg;
        t.args = {{xreg(10), 0}, {xreg(11), g.n}};
        fin.tasks.push_back(std::move(t));
        graph.phases.push_back(std::move(fin));
        return graph;
    }

    bool
    verify(const BackingStore &mem) const override
    {
        return mem.readT<std::uint64_t>(regionE) == refTotal;
    }

  private:
    ProgramPtr
    makeCount()
    {
        Asm a("tc.count");
        emitGraphBases(a);
        a.li(xreg(9), regionB);   // per-vertex counts
        emitVertexLoop(a, "tc", [&] {
            a.li(xreg(20), 0);    // count
            emitEdgeLoop(a, xreg(2), xreg(3), "tc.e", [&] {
                // two-pointer intersect adj(v) x adj(u=x22)
                a.slli(xreg(28), xreg(6), 2)
                 .add(xreg(28), xreg(28), xreg(2))
                 .lw(xreg(24), xreg(28), 0)     // a
                 .lw(xreg(25), xreg(28), 4)     // aEnd
                 .slli(xreg(28), xreg(22), 2)
                 .add(xreg(28), xreg(28), xreg(2))
                 .lw(xreg(26), xreg(28), 0)     // b
                 .lw(xreg(27), xreg(28), 4)     // bEnd
                 .label("tc.merge")
                 .bge(xreg(24), xreg(25), "tc.mdone")
                 .bge(xreg(26), xreg(27), "tc.mdone")
                 .slli(xreg(28), xreg(24), 2)
                 .add(xreg(28), xreg(28), xreg(3))
                 .lw(xreg(30), xreg(28))
                 .slli(xreg(28), xreg(26), 2)
                 .add(xreg(28), xreg(28), xreg(3))
                 .lw(xreg(31), xreg(28))
                 .blt(xreg(30), xreg(31), "tc.adv_a")
                 .blt(xreg(31), xreg(30), "tc.adv_b")
                 .addi(xreg(20), xreg(20), 1)
                 .addi(xreg(24), xreg(24), 1)
                 .addi(xreg(26), xreg(26), 1)
                 .j("tc.merge")
                 .label("tc.adv_a")
                 .addi(xreg(24), xreg(24), 1)
                 .j("tc.merge")
                 .label("tc.adv_b")
                 .addi(xreg(26), xreg(26), 1)
                 .j("tc.merge")
                 .label("tc.mdone");
            });
            a.slli(xreg(28), xreg(6), 2)
             .add(xreg(28), xreg(28), xreg(9))
             .sw(xreg(20), xreg(28));
        });
        a.halt();
        return finishProg(a);
    }

    ProgramPtr
    makeReduce()
    {
        Asm a("tc.reduce");
        a.li(xreg(2), regionB)
         .li(xreg(20), 0);
        emitScalarRangeLoop(a, xreg(5), "loop", [&] {
            a.slli(xreg(28), xreg(5), 2)
             .add(xreg(28), xreg(28), xreg(2))
             .lw(xreg(29), xreg(28))
             .add(xreg(20), xreg(20), xreg(29));
        });
        a.li(xreg(28), regionE)
         .sd(xreg(20), xreg(28))
         .halt();
        return finishProg(a);
    }

    std::uint64_t refTotal = 0;
    ProgramPtr countProg, reduceProg;
};

// ------------------------------------------------------------------
// radii: multi-source bitmask sweeps
// ------------------------------------------------------------------

class RadiiWorkload : public GraphWorkloadBase
{
  public:
    explicit RadiiWorkload(Scale scale) : GraphWorkloadBase(scale)
    {
        std::tie(refRadius, iters) = g.radii(numSources);
    }

    std::string name() const override { return "radii"; }

    void
    init(BackingStore &mem) override
    {
        writeGraph(mem);
        for (unsigned v = 0; v < g.n; ++v) {
            mem.writeT<std::uint32_t>(regionB + 4ull * v, 0);
            mem.writeT<std::uint32_t>(regionC + 4ull * v, 0);
            mem.writeT<std::int32_t>(regionD + 4ull * v, -1);
        }
        for (unsigned s = 0; s < numSources && s < g.n; ++s) {
            unsigned v = (s * 97) % g.n;
            auto bits = mem.readT<std::uint32_t>(regionB + 4ull * v);
            mem.writeT<std::uint32_t>(regionB + 4ull * v,
                                      bits | (1u << s));
            mem.writeT<std::uint32_t>(regionC + 4ull * v,
                                      bits | (1u << s));
            mem.writeT<std::int32_t>(regionD + 4ull * v, 0);
        }
    }

    TaskGraph
    taskGraph() override
    {
        if (!sweepProg)
            sweepProg = makeSweep();
        std::vector<std::pair<ProgramPtr, ProgArgs>> phases;
        for (unsigned t = 0; t < iters; ++t) {
            Addr cur = t % 2 ? regionC : regionB;
            Addr next = t % 2 ? regionB : regionC;
            phases.push_back({sweepProg, {{xreg(8), cur},
                                          {xreg(9), next},
                                          {xreg(7), t + 1}}});
        }
        return vertexPhases(phases);
    }

    bool
    verify(const BackingStore &mem) const override
    {
        for (unsigned v = 0; v < g.n; ++v)
            if (mem.readT<std::int32_t>(regionD + 4ull * v) !=
                refRadius[v]) {
                return false;
            }
        return true;
    }

  private:
    ProgramPtr
    makeSweep()
    {
        Asm a("radii.sweep");
        emitGraphBases(a);
        a.li(xreg(17), regionD);
        emitVertexLoop(a, "rd", [&] {
            a.slli(xreg(29), xreg(6), 2)
             .add(xreg(28), xreg(29), xreg(8))
             .lw(xreg(20), xreg(28));           // bits = cur[v]
            a.mv(xreg(21), xreg(20));           // original
            emitEdgeLoop(a, xreg(4), xreg(5), "rd.in", [&] {
                a.slli(xreg(28), xreg(22), 2)
                 .add(xreg(28), xreg(28), xreg(8))
                 .lw(xreg(24), xreg(28))
                 .or_(xreg(20), xreg(20), xreg(24));
            });
            a.slli(xreg(29), xreg(6), 2)
             .add(xreg(28), xreg(29), xreg(9))
             .sw(xreg(20), xreg(28))
             .beq(xreg(20), xreg(21), "rd.same")
             .add(xreg(28), xreg(29), xreg(17))
             .sw(xreg(7), xreg(28))
             .label("rd.same");
        });
        a.halt();
        return finishProg(a);
    }

    static constexpr unsigned numSources = 8;
    std::vector<std::int32_t> refRadius;
    unsigned iters = 0;
    ProgramPtr sweepProg;
};

} // namespace

std::vector<WorkloadPtr>
makeTraversalGraphApps(Scale scale)
{
    std::vector<WorkloadPtr> v;
    v.push_back(std::make_unique<BfsWorkload>(scale));
    v.push_back(std::make_unique<BcWorkload>(scale));
    v.push_back(std::make_unique<TcWorkload>(scale));
    v.push_back(std::make_unique<RadiiWorkload>(scale));
    return v;
}

} // namespace bvl
