/**
 * @file
 * Shared helpers for workload implementations: text-segment
 * allocation, standard data-region addresses, range chunking into
 * task graphs, and float comparison for verification.
 */

#ifndef BVL_WORKLOADS_COMMON_HH
#define BVL_WORKLOADS_COMMON_HH

#include <cmath>

#include "workloads/progutil.hh"
#include "workloads/workload.hh"

namespace bvl
{

/** Standard data-region bases (each Soc has a private address space). */
constexpr Addr regionA = 0x01000000;
constexpr Addr regionB = 0x02000000;
constexpr Addr regionC = 0x03000000;
constexpr Addr regionD = 0x04000000;
constexpr Addr regionE = 0x05000000;

class WorkloadBase : public Workload
{
  protected:
    /** Finish a program and place its text uniquely in this workload. */
    ProgramPtr
    finishProg(Asm &a)
    {
        auto prog = a.finish();
        prog->setTextBase(nextTextBase());
        return prog;
    }

    /**
     * Single-phase task graph: the range [0, n) split into
     * @p numChunks contiguous chunks over the given programs.
     */
    static TaskGraph
    rangeChunks(ProgramPtr scalar, ProgramPtr vector_, std::uint64_t n,
                unsigned numChunks)
    {
        TaskGraph g;
        g.phases.emplace_back();
        std::uint64_t per = (n + numChunks - 1) / numChunks;
        for (std::uint64_t s = 0; s < n; s += per) {
            Task t;
            t.scalar = scalar;
            t.vector = vector_;
            t.args = {{xreg(10), s}, {xreg(11), std::min(n, s + per)}};
            g.phases.back().tasks.push_back(std::move(t));
        }
        return g;
    }

    static bool
    closeEnough(float got, float want, float relTol = 1e-3f)
    {
        float mag = std::max(std::fabs(want), 1.0f);
        return std::fabs(got - want) <= relTol * mag;
    }

    /**
     * Default chunk count: work-stealing runtimes over-decompose so
     * the fast (vector-capable) worker can absorb most of the work;
     * a slow worker's single chunk must not dominate the critical
     * path.
     */
    static constexpr unsigned defaultChunks = 64;
};

} // namespace bvl

#endif // BVL_WORKLOADS_COMMON_HH
