#include "workloads/graph.hh"

#include <algorithm>
#include <queue>
#include <set>

namespace bvl
{

HostGraph
HostGraph::random(unsigned n, unsigned avgDeg, std::uint64_t seed)
{
    Rng rng(seed);
    std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
    std::uint64_t target = std::uint64_t(n) * avgDeg;
    std::uint64_t attempts = 0;
    while (edges.size() < target && attempts < 8 * target) {
        ++attempts;
        // Square-law skew toward low ids creates hub vertices.
        auto draw = [&] {
            double r = rng.real();
            return static_cast<std::uint32_t>(r * r * n) % n;
        };
        std::uint32_t u = draw();
        std::uint32_t v = static_cast<std::uint32_t>(rng.below(n));
        if (u == v)
            continue;
        edges.insert({u, v});
    }

    HostGraph g;
    g.n = n;
    g.outOffs.assign(n + 1, 0);
    g.inOffs.assign(n + 1, 0);
    for (auto &[u, v] : edges) {
        ++g.outOffs[u + 1];
        ++g.inOffs[v + 1];
    }
    for (unsigned v = 0; v < n; ++v) {
        g.outOffs[v + 1] += g.outOffs[v];
        g.inOffs[v + 1] += g.inOffs[v];
    }
    g.outTgts.resize(edges.size());
    g.inTgts.resize(edges.size());
    std::vector<std::uint32_t> outFill(g.outOffs.begin(),
                                       g.outOffs.end() - 1);
    std::vector<std::uint32_t> inFill(g.inOffs.begin(),
                                      g.inOffs.end() - 1);
    for (auto &[u, v] : edges) {
        g.outTgts[outFill[u]++] = v;
        g.inTgts[inFill[v]++] = u;
    }
    // std::set iteration gives sorted adjacency lists (needed by the
    // triangle-counting intersection).
    return g;
}

std::vector<std::int32_t>
HostGraph::bfsLevels(unsigned root) const
{
    std::vector<std::int32_t> level(n, -1);
    std::queue<std::uint32_t> q;
    level[root] = 0;
    q.push(root);
    while (!q.empty()) {
        auto u = q.front();
        q.pop();
        for (unsigned e = outOffs[u]; e < outOffs[u + 1]; ++e) {
            auto v = outTgts[e];
            if (level[v] < 0) {
                level[v] = level[u] + 1;
                q.push(v);
            }
        }
    }
    return level;
}

std::vector<std::vector<std::uint32_t>>
HostGraph::bfsFrontiers(unsigned root) const
{
    auto level = bfsLevels(root);
    std::int32_t maxLevel = 0;
    for (auto l : level)
        maxLevel = std::max(maxLevel, l);
    std::vector<std::vector<std::uint32_t>> frontiers(maxLevel + 1);
    for (unsigned v = 0; v < n; ++v)
        if (level[v] >= 0)
            frontiers[level[v]].push_back(v);
    return frontiers;
}

std::pair<std::vector<std::uint32_t>, unsigned>
HostGraph::components(unsigned maxIters) const
{
    std::vector<std::uint32_t> cur(n), next(n);
    for (unsigned v = 0; v < n; ++v)
        cur[v] = v;
    unsigned iters = 0;
    for (; iters < maxIters; ++iters) {
        bool changed = false;
        for (unsigned v = 0; v < n; ++v) {
            std::uint32_t m = cur[v];
            for (unsigned e = inOffs[v]; e < inOffs[v + 1]; ++e)
                m = std::min(m, cur[inTgts[e]]);
            // Symmetrize via out-edges too so labels flow both ways.
            for (unsigned e = outOffs[v]; e < outOffs[v + 1]; ++e)
                m = std::min(m, cur[outTgts[e]]);
            next[v] = m;
            changed |= (m != cur[v]);
        }
        std::swap(cur, next);
        if (!changed)
            break;
    }
    return {cur, iters + 1};
}

std::vector<float>
HostGraph::pagerank(unsigned iters) const
{
    std::vector<float> cur(n, 1.0f / n), next(n);
    for (unsigned it = 0; it < iters; ++it) {
        for (unsigned v = 0; v < n; ++v) {
            float acc = 0.0f;
            for (unsigned e = inOffs[v]; e < inOffs[v + 1]; ++e) {
                auto u = inTgts[e];
                unsigned deg = std::max(1u, outDeg(u));
                acc += cur[u] / deg;
            }
            next[v] = 0.15f / n + 0.85f * acc;
        }
        std::swap(cur, next);
    }
    return cur;
}

std::vector<std::uint32_t>
HostGraph::triangles() const
{
    std::vector<std::uint32_t> count(n, 0);
    for (unsigned v = 0; v < n; ++v) {
        for (unsigned e = outOffs[v]; e < outOffs[v + 1]; ++e) {
            auto u = outTgts[e];
            // Sorted-list intersection of adj(v) and adj(u).
            unsigned a = outOffs[v], b = outOffs[u];
            while (a < outOffs[v + 1] && b < outOffs[u + 1]) {
                if (outTgts[a] < outTgts[b])
                    ++a;
                else if (outTgts[a] > outTgts[b])
                    ++b;
                else {
                    ++count[v];
                    ++a;
                    ++b;
                }
            }
        }
    }
    return count;
}

std::pair<std::vector<std::int32_t>, unsigned>
HostGraph::radii(unsigned numSources) const
{
    std::vector<std::uint32_t> cur(n, 0), next(n);
    std::vector<std::int32_t> radius(n, -1);
    for (unsigned s = 0; s < numSources && s < n; ++s) {
        unsigned v = (s * 97) % n;
        cur[v] |= (1u << s);
        radius[v] = 0;
    }
    unsigned iters = 0;
    for (; iters < 64; ++iters) {
        bool changed = false;
        for (unsigned v = 0; v < n; ++v) {
            std::uint32_t bits = cur[v];
            for (unsigned e = inOffs[v]; e < inOffs[v + 1]; ++e)
                bits |= cur[inTgts[e]];
            next[v] = bits;
            if (bits != cur[v]) {
                radius[v] = static_cast<std::int32_t>(iters + 1);
                changed = true;
            }
        }
        std::swap(cur, next);
        if (!changed)
            break;
    }
    return {radius, iters};
}

std::pair<std::vector<std::uint8_t>, unsigned>
HostGraph::mis() const
{
    std::vector<std::uint8_t> status(n, 0);
    unsigned rounds = 0;
    bool progress = true;
    while (progress && rounds < 64) {
        progress = false;
        ++rounds;
        // Select: undecided v with minimal priority among undecided
        // neighbourhood joins the MIS.
        std::vector<std::uint8_t> joined(n, 0);
        for (unsigned v = 0; v < n; ++v) {
            if (status[v] != 0)
                continue;
            bool minimal = true;
            auto pv = misPriority(v);
            auto check = [&](std::uint32_t u) {
                if (status[u] == 0 &&
                    (misPriority(u) < pv ||
                     (misPriority(u) == pv && u < v))) {
                    minimal = false;
                }
            };
            for (unsigned e = inOffs[v]; e < inOffs[v + 1]; ++e)
                check(inTgts[e]);
            for (unsigned e = outOffs[v]; e < outOffs[v + 1]; ++e)
                check(outTgts[e]);
            if (minimal)
                joined[v] = 1;
        }
        for (unsigned v = 0; v < n; ++v) {
            if (joined[v]) {
                status[v] = 1;
                progress = true;
            }
        }
        // Exclude neighbours of new MIS members.
        for (unsigned v = 0; v < n; ++v) {
            if (status[v] != 0)
                continue;
            auto hasMisNeighbor = [&] {
                for (unsigned e = inOffs[v]; e < inOffs[v + 1]; ++e)
                    if (status[inTgts[e]] == 1)
                        return true;
                for (unsigned e = outOffs[v]; e < outOffs[v + 1]; ++e)
                    if (status[outTgts[e]] == 1)
                        return true;
                return false;
            }();
            if (hasMisNeighbor) {
                status[v] = 2;
                progress = true;
            }
        }
    }
    return {status, rounds};
}

std::pair<std::vector<std::uint32_t>, unsigned>
HostGraph::kcore(unsigned maxK) const
{
    std::vector<std::uint32_t> coreness(n, 0);
    std::vector<std::uint8_t> alive(n, 1);
    unsigned totalRounds = 0;
    auto degOf = [&](unsigned v) {
        unsigned d = 0;
        for (unsigned e = inOffs[v]; e < inOffs[v + 1]; ++e)
            d += alive[inTgts[e]];
        for (unsigned e = outOffs[v]; e < outOffs[v + 1]; ++e)
            d += alive[outTgts[e]];
        return d;
    };
    for (unsigned k = 1; k <= maxK; ++k) {
        bool removed = true;
        while (removed) {
            removed = false;
            ++totalRounds;
            std::vector<std::uint8_t> nextAlive = alive;
            for (unsigned v = 0; v < n; ++v) {
                if (alive[v] && degOf(v) < k) {
                    nextAlive[v] = 0;
                    coreness[v] = k - 1;
                    removed = true;
                }
            }
            alive = nextAlive;
        }
    }
    for (unsigned v = 0; v < n; ++v)
        if (alive[v])
            coreness[v] = maxK;
    return {coreness, totalRounds};
}

void
HostGraph::writeTo(BackingStore &mem, Addr outOffsBase, Addr outTgtsBase,
                   Addr inOffsBase, Addr inTgtsBase) const
{
    for (unsigned v = 0; v <= n; ++v) {
        mem.writeT<std::uint32_t>(outOffsBase + 4ull * v, outOffs[v]);
        mem.writeT<std::uint32_t>(inOffsBase + 4ull * v, inOffs[v]);
    }
    for (std::size_t e = 0; e < outTgts.size(); ++e)
        mem.writeT<std::uint32_t>(outTgtsBase + 4ull * e, outTgts[e]);
    for (std::size_t e = 0; e < inTgts.size(); ++e)
        mem.writeT<std::uint32_t>(inTgtsBase + 4ull * e, inTgts[e]);
}

} // namespace bvl
