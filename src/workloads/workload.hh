/**
 * @file
 * Workload interface and registry.
 *
 * A Workload owns its dataset layout in the simulated address space,
 * builds the scalar and vectorized programs that compute it (Table IV
 * and V of the paper), decomposes itself into a TaskGraph for the
 * multi-core configurations, and self-verifies its output against a
 * host-side reference after a run.
 *
 * All programs are range-parameterized: x10 = start, x11 = end, so
 * the serial run and every task chunk share the same Program objects.
 */

#ifndef BVL_WORKLOADS_WORKLOAD_HH
#define BVL_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "mem/backing_store.hh"
#include "runtime/task_graph.hh"
#include "sim/rng.hh"

namespace bvl
{

/** Problem-size scaling knob for the whole suite. */
enum class Scale
{
    tiny,     ///< smoke-test sizes (CI)
    small,    ///< benchmark sizes (default for figure regeneration)
    medium,   ///< closer-to-paper sizes
};

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Data-parallel (Rodinia/RiVec/genomics) vs task-parallel (Ligra). */
    virtual bool isDataParallel() const = 0;

    /** Populate input data; called once per simulation run. */
    virtual void init(BackingStore &mem) = 0;

    /** Scalar whole-problem program (runs on 1L / 1b). */
    virtual ProgramPtr scalarProgram() = 0;

    /** Arguments for the whole-problem programs. */
    virtual ProgArgs fullRangeArgs() const = 0;

    /** Vectorized whole-problem program (nullptr if not vectorizable). */
    virtual ProgramPtr vectorProgram() { return nullptr; }

    /** Task decomposition for the multi-core runs. */
    virtual TaskGraph taskGraph() = 0;

    /** Check the output in @p mem against the host reference. */
    virtual bool verify(const BackingStore &mem) const = 0;

  protected:
    /**
     * Allocate a text-segment base for the next program this workload
     * builds. The allocator is per-instance, so a workload's program
     * addresses depend only on the order it builds its own programs —
     * never on what else the process (or another thread) has
     * constructed. Each Soc has a private address space and runs one
     * workload, so instances never collide.
     */
    Addr nextTextBase();

  private:
    /** Text segments live far above all data regions and are spaced a
     *  page apart so instruction lines of different programs never
     *  alias in confusing ways. */
    Addr nextText = 0x40000000;
};

using WorkloadPtr = std::unique_ptr<Workload>;

/** The 3 kernels of Table IV: vvadd, mmult, saxpy. */
std::vector<WorkloadPtr> makeKernels(Scale scale);

/** The 8 data-parallel applications of Table V. */
std::vector<WorkloadPtr> makeDataParallelApps(Scale scale);

/** The 8 Ligra-style task-parallel graph applications. */
std::vector<WorkloadPtr> makeTaskParallelApps(Scale scale);

/**
 * The Swan-style mobile kernel tier: integer IDCT, YCbCr->RGB,
 * separable 2D convolution, quantized int8 GEMM, byte scanning
 * (DESIGN.md §18).
 */
std::vector<WorkloadPtr> makeMobileApps(Scale scale);

/**
 * fatal() with a one-line actionable error if two workloads in
 * @p suite share a name. Registration runs every factory through this
 * so a colliding name fails loudly instead of silently shadowing the
 * later workload (names key sweep journals, result caches and
 * checkpoint farms).
 */
void checkUniqueNames(const std::vector<WorkloadPtr> &suite);

/** One workload by name (nullptr if unknown). */
WorkloadPtr makeWorkload(const std::string &name, Scale scale);

/** Names of everything in the suite. */
std::vector<std::string> allWorkloadNames();

} // namespace bvl

#endif // BVL_WORKLOADS_WORKLOAD_HH
