#include "workloads/progutil.hh"

#include <cmath>

namespace bvl
{

namespace
{

constexpr float expC4 = 1.0f / 24.0f;
constexpr float expC3 = 1.0f / 6.0f;
constexpr float expC2 = 0.5f;
constexpr float expC1 = 1.0f;
constexpr float expC0 = 1.0f;
constexpr float cndK = -1.702f;   // logistic approximation constant

} // namespace

void
emitVecExp(Asm &a, RegId vout, RegId vx, RegId vtmp)
{
    // Horner: h = ((((c4*x + c3)*x + c2)*x + c1)*x + c0, alternating
    // between vout and vtmp so the final value lands in vout.
    emitFloatConst(a, freg(31), xreg(28), expC4);
    a.vmv_vf(vout, freg(31));

    emitFloatConst(a, freg(31), xreg(28), expC3);
    a.vmv_vf(vtmp, freg(31));
    a.vv(Op::vfmacc, vtmp, vx, vout);      // vtmp = c3 + x*h

    emitFloatConst(a, freg(31), xreg(28), expC2);
    a.vmv_vf(vout, freg(31));
    a.vv(Op::vfmacc, vout, vx, vtmp);      // vout = c2 + x*h

    emitFloatConst(a, freg(31), xreg(28), expC1);
    a.vmv_vf(vtmp, freg(31));
    a.vv(Op::vfmacc, vtmp, vx, vout);      // vtmp = c1 + x*h

    emitFloatConst(a, freg(31), xreg(28), expC0);
    a.vmv_vf(vout, freg(31));
    a.vv(Op::vfmacc, vout, vx, vtmp);      // vout = c0 + x*h
}

void
emitScalarExp(Asm &a, RegId fd, RegId fs, RegId ftmp)
{
    emitFloatConst(a, fd, xreg(28), expC4);
    emitFloatConst(a, ftmp, xreg(28), expC3);
    a.fmadd(fd, fs, fd, ftmp, 4);          // fd = x*h + c3
    emitFloatConst(a, ftmp, xreg(28), expC2);
    a.fmadd(fd, fs, fd, ftmp, 4);
    emitFloatConst(a, ftmp, xreg(28), expC1);
    a.fmadd(fd, fs, fd, ftmp, 4);
    emitFloatConst(a, ftmp, xreg(28), expC0);
    a.fmadd(fd, fs, fd, ftmp, 4);
}

void
emitVecCnd(Asm &a, RegId vout, RegId vx, RegId vt1, RegId vt2)
{
    // CND(x) ~= 1 / (1 + exp(-1.702 x))
    emitFloatConst(a, freg(30), xreg(28), cndK);
    a.vf(Op::vfmul, vt1, vx, freg(30));    // vt1 = -1.702 x
    emitVecExp(a, vout, vt1, vt2);         // vout = exp(vt1)
    emitFloatConst(a, freg(30), xreg(28), 1.0f);
    a.vf(Op::vfadd, vout, vout, freg(30)); // 1 + e
    a.vmv_vf(vt1, freg(30));               // splat 1
    a.vv(Op::vfdiv, vout, vt1, vout);      // 1 / (1 + e)
}

void
emitScalarCnd(Asm &a, RegId fd, RegId fs, RegId ft1, RegId ft2)
{
    emitFloatConst(a, ft1, xreg(28), cndK);
    a.fmul(ft1, fs, ft1, 4);               // -1.702 x
    emitScalarExp(a, fd, ft1, ft2);        // exp
    emitFloatConst(a, ft1, xreg(28), 1.0f);
    a.fadd(fd, fd, ft1, 4);                // 1 + e
    a.fdiv(fd, ft1, fd, 4);                // 1 / (1 + e)
}

float
hostPolyExp(float x)
{
    float h = expC4;
    h = static_cast<float>(static_cast<double>(expC3) +
                           static_cast<double>(x) * h);
    h = static_cast<float>(static_cast<double>(expC2) +
                           static_cast<double>(x) * h);
    h = static_cast<float>(static_cast<double>(expC1) +
                           static_cast<double>(x) * h);
    h = static_cast<float>(static_cast<double>(expC0) +
                           static_cast<double>(x) * h);
    return h;
}

float
hostPolyCnd(float x)
{
    float e = hostPolyExp(cndK * x);
    return 1.0f / (1.0f + e);
}

} // namespace bvl
