/**
 * @file
 * Synthetic graph substrate for the Ligra-style task-parallel apps:
 * power-law-ish random directed graphs in CSR form (out-edges and the
 * transpose for pull-style algorithms), plus host-side reference
 * algorithms used both to precompute iteration schedules (frontiers,
 * convergence counts) and to verify simulated results.
 */

#ifndef BVL_WORKLOADS_GRAPH_HH
#define BVL_WORKLOADS_GRAPH_HH

#include <cstdint>
#include <vector>

#include "mem/backing_store.hh"
#include "sim/rng.hh"

namespace bvl
{

struct HostGraph
{
    unsigned n = 0;
    std::vector<std::uint32_t> outOffs;   ///< size n+1
    std::vector<std::uint32_t> outTgts;
    std::vector<std::uint32_t> inOffs;    ///< transpose, size n+1
    std::vector<std::uint32_t> inTgts;

    unsigned numEdges() const
    { return static_cast<unsigned>(outTgts.size()); }

    unsigned outDeg(unsigned v) const
    { return outOffs[v + 1] - outOffs[v]; }

    /**
     * Build a skewed random directed graph: endpoints drawn with a
     * square-law bias toward low vertex ids (R-MAT-like hubs),
     * deduplicated, no self loops. Deterministic in @p seed.
     */
    static HostGraph random(unsigned n, unsigned avgDeg,
                            std::uint64_t seed = 7);

    /** BFS levels from @p root; unreached = -1. */
    std::vector<std::int32_t> bfsLevels(unsigned root) const;

    /** Frontiers per BFS level (vertex lists). */
    std::vector<std::vector<std::uint32_t>>
    bfsFrontiers(unsigned root) const;

    /** Label-propagation connected components; returns (labels, iters). */
    std::pair<std::vector<std::uint32_t>, unsigned>
    components(unsigned maxIters = 64) const;

    /** @p iters pull-style PageRank iterations. */
    std::vector<float> pagerank(unsigned iters) const;

    /** Per-vertex triangle counts (ordered intersection). */
    std::vector<std::uint32_t> triangles() const;

    /** Multi-source bitmask radii sweep; returns (radius, iters). */
    std::pair<std::vector<std::int32_t>, unsigned>
    radii(unsigned numSources) const;

    /** Deterministic Luby MIS; returns (status, rounds).
     *  status: 1 = in MIS, 2 = excluded. */
    std::pair<std::vector<std::uint8_t>, unsigned> mis() const;

    /** Peeling k-core; returns (coreness, total rounds). */
    std::pair<std::vector<std::uint32_t>, unsigned>
    kcore(unsigned maxK = 16) const;

    /** Hash priority used by MIS (shared with the simulated code). */
    static std::uint32_t
    misPriority(std::uint32_t v)
    {
        std::uint32_t x = v * 2654435761u + 12345u;
        x ^= x >> 16;
        return x;
    }

    /** Write CSR arrays into the simulated memory. */
    void writeTo(BackingStore &mem, Addr outOffsBase, Addr outTgtsBase,
                 Addr inOffsBase, Addr inTgtsBase) const;
};

} // namespace bvl

#endif // BVL_WORKLOADS_GRAPH_HH
