/**
 * @file
 * Shared program-builder idioms: stripmine loops, scalar range loops,
 * float constants, and the polynomial exp() approximation that the
 * vectorized blackscholes/lavamd/backprop codes use in place of a
 * libm call (vector code has no exp instruction either — real RVV
 * ports of these benchmarks inline the same kind of polynomial).
 */

#ifndef BVL_WORKLOADS_PROGUTIL_HH
#define BVL_WORKLOADS_PROGUTIL_HH

#include <cstring>
#include <functional>

#include "isa/program.hh"

namespace bvl
{

/** Raw bit pattern of a float, for li + fmv into an f register. */
inline std::int64_t
floatBits(float value)
{
    std::uint32_t raw;
    std::memcpy(&raw, &value, 4);
    return static_cast<std::int64_t>(raw);
}

/** Load a float constant into f register @p fd via x register @p tmp. */
inline void
emitFloatConst(Asm &a, RegId fd, RegId tmp, float value)
{
    a.li(tmp, floatBits(value));
    a.fmv_f_x(fd, tmp);
}

/**
 * Emit a scalar loop `for (i = x10; i < x11; ++i) body(i_reg)` with
 * the induction variable in @p ireg. The body callback emits the loop
 * body instructions.
 */
inline void
emitScalarRangeLoop(Asm &a, RegId ireg, const std::string &label,
                    const std::function<void()> &body)
{
    a.mv(ireg, xreg(10));
    a.label(label);
    body();
    a.addi(ireg, ireg, 1);
    a.blt(ireg, xreg(11), label);
}

/**
 * Emit a stripmined vector loop over elements [x10, x11):
 *   x12 = remaining, x13 = vl of this strip, x14 = current index.
 * The body callback emits the vector strip (element width @p ew);
 * it may use x14 (element index of strip start) and x13 (vl).
 */
inline void
emitStripmineLoop(Asm &a, unsigned ew, const std::string &label,
                  const std::function<void()> &body)
{
    a.sub(xreg(12), xreg(11), xreg(10));   // remaining
    a.mv(xreg(14), xreg(10));              // current index
    a.label(label);
    a.vsetvli(xreg(13), xreg(12), ew);
    body();
    a.add(xreg(14), xreg(14), xreg(13));
    a.sub(xreg(12), xreg(12), xreg(13));
    a.bne(xreg(12), xreg(0), label);
}

/**
 * Vector polynomial approximation of exp(x) for moderate |x|:
 * exp(x) ~= 1 + x + x^2/2 + x^3/6 + x^4/24.
 * Input in @p vx, result in @p vout; clobbers @p vtmp and f/x temps
 * f28-f31 / x28. Element width 32-bit, uses current vl.
 */
void emitVecExp(Asm &a, RegId vout, RegId vx, RegId vtmp);

/** Scalar counterpart of emitVecExp; input fs, result fd. */
void emitScalarExp(Asm &a, RegId fd, RegId fs, RegId ftmp);

/**
 * Vector polynomial approximation of the standard normal CDF via
 * Abramowitz-Stegun style rational polynomial (enough precision for
 * the blackscholes shape). Input vx, output vout; clobbers vt1/vt2.
 */
void emitVecCnd(Asm &a, RegId vout, RegId vx, RegId vt1, RegId vt2);

/** Scalar counterpart of emitVecCnd. */
void emitScalarCnd(Asm &a, RegId fd, RegId fs, RegId ft1, RegId ft2);

/** Host-side references matching the emitted polynomials bit-for-bit
 *  in structure (evaluated in float precision). */
float hostPolyExp(float x);
float hostPolyCnd(float x);

} // namespace bvl

#endif // BVL_WORKLOADS_PROGUTIL_HH
