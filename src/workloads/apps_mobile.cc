/**
 * @file
 * The Swan-style mobile kernel tier (DESIGN.md §18): JPEG-shaped
 * integer IDCT with zigzag coefficient gathering, YCbCr->RGB color
 * conversion over interleaved pixels, a separable 2D convolution, a
 * quantized int8 GEMM with widening accumulate, and memchr/memcmp
 * byte scanning. Unlike the Rodinia/Ligra tiers these kernels work on
 * int8/int16 elements with 2D access patterns, so together they
 * exercise every VMU address-generation path: unit-stride, constant
 * stride (row/column walks, pixel deinterleaving) and indexed
 * (table-driven gathers).
 *
 * All integer arithmetic is exact, so every kernel self-verifies
 * bit-for-bit against a host reference that replays the same
 * fixed-point steps (including the two-step vnclip2 saturation).
 */

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "workloads/common.hh"

namespace bvl
{

namespace
{

/** Saturate @p v to the signed range of @p bytes-wide elements. */
inline std::int64_t
satS(std::int64_t v, unsigned bytes)
{
    std::int64_t lo = -(std::int64_t(1) << (8 * bytes - 1));
    std::int64_t hi = (std::int64_t(1) << (8 * bytes - 1)) - 1;
    return std::min(hi, std::max(lo, v));
}

/** Saturate @p v to the unsigned range of @p bytes-wide elements. */
inline std::int64_t
satU(std::int64_t v, unsigned bytes)
{
    std::int64_t hi = (std::int64_t(1) << (8 * bytes)) - 1;
    return std::min(hi, std::max(std::int64_t(0), v));
}

// ------------------------------------------------------------------
// idct8: 8x8 integer IDCT over a stream of coefficient blocks.
//
// Three block-parallel passes, mirroring a JPEG decoder's inner loop:
//   1. dezigzag  — gather zigzag-ordered coefficients into natural
//                  order via an indexed load driven by an offset table
//   2. row IDCT  — 1D transform along rows, vectorized *across*
//                  blocks with stride-128 column accesses
//   3. col IDCT  — same along columns
// Fixed point: basis matrix scaled by 128, rounding add 64, shift 7,
// saturate to int16.
// ------------------------------------------------------------------

class Idct8Workload : public WorkloadBase
{
  public:
    explicit Idct8Workload(Scale scale)
    {
        nb = scale == Scale::tiny ? 16 :
             scale == Scale::small ? 96 : 256;
    }

    std::string name() const override { return "idct8"; }
    bool isDataParallel() const override { return true; }

    /** Basis value M[x][u], fixed-point scale 128. */
    static std::int16_t
    mval(unsigned x, unsigned u)
    {
        double k = u == 0 ? 1.0 / std::sqrt(8.0) : 0.5;
        double c = std::cos((2 * x + 1) * u * M_PI / 16.0);
        return static_cast<std::int16_t>(std::lround(128.0 * k * c));
    }

    /** Natural position of the z-th coefficient in zigzag order. */
    static unsigned
    zigNat(unsigned z)
    {
        static const std::uint8_t t[64] = {
             0,  1,  8, 16,  9,  2,  3, 10,
            17, 24, 32, 25, 18, 11,  4,  5,
            12, 19, 26, 33, 40, 48, 41, 34,
            27, 20, 13,  6,  7, 14, 21, 28,
            35, 42, 49, 56, 57, 50, 43, 36,
            29, 22, 15, 23, 30, 37, 44, 51,
            58, 59, 52, 45, 38, 31, 39, 46,
            53, 60, 61, 54, 47, 55, 62, 63,
        };
        return t[z];
    }

    void
    init(BackingStore &mem) override
    {
        // Coefficients in zigzag order; most high-frequency entries
        // zero, like real quantized JPEG blocks.
        Rng rng(11);
        for (std::uint64_t b = 0; b < nb; ++b) {
            for (unsigned z = 0; z < 64; ++z) {
                std::int16_t c = 0;
                if (z < 16 || rng.below(4) == 0)
                    c = static_cast<std::int16_t>(
                        static_cast<std::int64_t>(rng.below(256)) - 128);
                mem.writeT<std::int16_t>(zigAt(b, z), c);
            }
        }
        // Byte-offset table: dezig[p] = 2 * (zigzag position holding
        // natural coefficient p); drives the vluxei gather directly.
        unsigned inv[64];
        for (unsigned z = 0; z < 64; ++z)
            inv[zigNat(z)] = z;
        for (unsigned p = 0; p < 64; ++p)
            mem.writeT<std::int16_t>(zzTab + 2 * p,
                                     static_cast<std::int16_t>(2 * inv[p]));
        for (unsigned x = 0; x < 8; ++x)
            for (unsigned u = 0; u < 8; ++u)
                mem.writeT<std::int16_t>(mTab + 2 * (x * 8 + u), mval(x, u));
    }

    ProgramPtr
    scalarProgram() override
    {
        if (scalarProg)
            return scalarProg;
        Asm a("idct8.scalar");
        a.li(xreg(2), regionA).li(xreg(3), regionB).li(xreg(4), regionC)
         .li(xreg(8), regionD).li(xreg(9), zzTab).li(xreg(15), mTab)
         .mv(xreg(5), xreg(10))                 // b
         .label("bloop")
         .slli(xreg(16), xreg(5), 7);           // block byte offset
        // pass 1: nat[p] = zig[dezig[p]]
        a.li(xreg(6), 0)                        // p
         .label("zloop")
         .slli(xreg(28), xreg(6), 1)
         .add(xreg(28), xreg(28), xreg(9))
         .load(xreg(29), xreg(28), 0, 2, true)  // byte offset into block
         .add(xreg(29), xreg(29), xreg(16))
         .add(xreg(29), xreg(29), xreg(2))
         .load(xreg(30), xreg(29), 0, 2, true)
         .slli(xreg(28), xreg(6), 1)
         .add(xreg(28), xreg(28), xreg(16))
         .add(xreg(28), xreg(28), xreg(3))
         .store(xreg(30), xreg(28), 0, 2)
         .addi(xreg(6), xreg(6), 1)
         .slti(xreg(28), xreg(6), 64)
         .bne(xreg(28), xreg(0), "zloop");
        // pass 2 (rows, regionB -> regionC) and pass 3 (cols,
        // regionC -> regionD) share shape: out[o] = idct1d(in)
        emitPass(a, "row", xreg(3), xreg(4), true);
        emitPass(a, "col", xreg(4), xreg(8), false);
        a.addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), "bloop")
         .halt();
        return scalarProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vectorProg)
            return vectorProg;
        Asm a("idct8.vector");
        a.li(xreg(2), regionA).li(xreg(3), regionB).li(xreg(4), regionC)
         .li(xreg(8), regionD).li(xreg(9), zzTab).li(xreg(15), mTab)
         .li(xreg(16), 128)                     // block stride (bytes)
         .li(xreg(17), 64);                     // rounding constant
        // pass 1: per block, indexed gather of the 64 coefficients
        a.mv(xreg(5), xreg(10))
         .label("bloop")
         .slli(xreg(28), xreg(5), 7)
         .add(xreg(30), xreg(28), xreg(2))      // &zig[block]
         .add(xreg(31), xreg(28), xreg(3))      // &nat[block]
         .li(xreg(12), 64)
         .li(xreg(14), 0)
         .label("zloop")
         .vsetvli(xreg(13), xreg(12), 2)
         .slli(xreg(28), xreg(14), 1)
         .add(xreg(29), xreg(9), xreg(28))
         .vle(vreg(2), xreg(29), 2)             // byte offsets
         .vluxei(vreg(3), xreg(30), vreg(2), 2) // gather zigzag coeffs
         .add(xreg(29), xreg(31), xreg(28))
         .vse(vreg(3), xreg(29), 2)
         .add(xreg(14), xreg(14), xreg(13))
         .sub(xreg(12), xreg(12), xreg(13))
         .bne(xreg(12), xreg(0), "zloop")
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), "bloop");
        // passes 2/3: vectorized across blocks (stride-128 columns)
        emitVecPass(a, "row", xreg(3), xreg(4), true);
        emitVecPass(a, "col", xreg(4), xreg(8), false);
        a.halt();
        return vectorProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), nb}};
    }

    TaskGraph
    taskGraph() override
    {
        return rangeChunks(scalarProgram(), vectorProgram(), nb,
                           std::min<unsigned>(defaultChunks, nb));
    }

    bool
    verify(const BackingStore &mem) const override
    {
        for (std::uint64_t b = 0; b < nb; ++b) {
            std::int64_t nat[64], tmp[64];
            for (unsigned z = 0; z < 64; ++z)
                nat[zigNat(z)] = mem.readT<std::int16_t>(zigAt(b, z));
            for (unsigned r = 0; r < 8; ++r)
                for (unsigned x = 0; x < 8; ++x) {
                    std::int64_t acc = 0;
                    for (unsigned u = 0; u < 8; ++u)
                        acc += mval(x, u) * nat[r * 8 + u];
                    tmp[r * 8 + x] = satS((acc + 64) >> 7, 2);
                }
            for (unsigned y = 0; y < 8; ++y)
                for (unsigned x = 0; x < 8; ++x) {
                    std::int64_t acc = 0;
                    for (unsigned v = 0; v < 8; ++v)
                        acc += mval(y, v) * tmp[v * 8 + x];
                    auto want = static_cast<std::int16_t>(
                        satS((acc + 64) >> 7, 2));
                    if (mem.readT<std::int16_t>(
                            regionD + 128 * b + 2 * (y * 8 + x)) != want)
                        return false;
                }
        }
        return true;
    }

  private:
    static constexpr Addr zzTab = regionE;
    static constexpr Addr mTab = regionE + 0x1000;

    Addr zigAt(std::uint64_t b, unsigned z) const
    { return regionA + 128 * b + 2 * z; }

    /**
     * Scalar 1D IDCT pass over all 8 outputs of block b (in x5, block
     * byte offset in x16): @p rows selects in(o, u) = in[o*8+u] (row
     * pass) vs in[u*8+o2] (column pass).
     */
    void
    emitPass(Asm &a, const std::string &tag, RegId inBase, RegId outBase,
             bool rows)
    {
        a.li(xreg(6), 0)                        // outer index (r or y)
         .label(tag + "_o")
         .li(xreg(7), 0)                        // inner index (x)
         .label(tag + "_i")
         .li(xreg(18), 0)                       // acc
         .li(xreg(19), 0)                       // u
         .label(tag + "_u");
        // in element: rows ? (r*8+u) : (u*8+x)
        if (rows) {
            a.slli(xreg(28), xreg(6), 3)
             .add(xreg(28), xreg(28), xreg(19));
        } else {
            a.slli(xreg(28), xreg(19), 3)
             .add(xreg(28), xreg(28), xreg(7));
        }
        a.slli(xreg(28), xreg(28), 1)
         .add(xreg(28), xreg(28), xreg(16))
         .add(xreg(28), xreg(28), inBase)
         .load(xreg(29), xreg(28), 0, 2, true)
         // M[x][u] (row) / M[y][v] (col): outer is the basis row for
         // cols, inner for rows.
         .slli(xreg(30), rows ? xreg(7) : xreg(6), 3)
         .add(xreg(30), xreg(30), xreg(19))
         .slli(xreg(30), xreg(30), 1)
         .add(xreg(30), xreg(30), xreg(15))
         .load(xreg(31), xreg(30), 0, 2, true)
         .mul(xreg(29), xreg(29), xreg(31))
         .add(xreg(18), xreg(18), xreg(29))
         .addi(xreg(19), xreg(19), 1)
         .slti(xreg(28), xreg(19), 8)
         .bne(xreg(28), xreg(0), tag + "_u")
         // out[o*8+i] = satS16((acc + 64) >> 7)
         .addi(xreg(18), xreg(18), 64)
         .srai(xreg(18), xreg(18), 7)
         .li(xreg(28), 32767)
         .min_(xreg(18), xreg(18), xreg(28))
         .li(xreg(28), -32768)
         .max_(xreg(18), xreg(18), xreg(28))
         .slli(xreg(28), xreg(6), 3)
         .add(xreg(28), xreg(28), xreg(7))
         .slli(xreg(28), xreg(28), 1)
         .add(xreg(28), xreg(28), xreg(16))
         .add(xreg(28), xreg(28), outBase)
         .store(xreg(18), xreg(28), 0, 2)
         .addi(xreg(7), xreg(7), 1)
         .slti(xreg(28), xreg(7), 8)
         .bne(xreg(28), xreg(0), tag + "_i")
         .addi(xreg(6), xreg(6), 1)
         .slti(xreg(28), xreg(6), 8)
         .bne(xreg(28), xreg(0), tag + "_o");
    }

    /**
     * 1D IDCT pass vectorized across the block range [x10, x11):
     * element i of each vector is block b0+i, accessed with
     * stride-128 vlse/vsse at the same intra-block position.
     */
    void
    emitVecPass(Asm &a, const std::string &tag, RegId inBase,
                RegId outBase, bool rows)
    {
        a.sub(xreg(12), xreg(11), xreg(10))
         .mv(xreg(14), xreg(10))
         .label(tag + "_strip")
         .vsetvli(xreg(13), xreg(12), 4)
         .slli(xreg(20), xreg(14), 7)           // strip base byte offset
         .li(xreg(6), 0)                        // outer (r or y)
         .label(tag + "_o")
         .li(xreg(7), 0)                        // inner (x)
         .label(tag + "_i")
         .vmv_vx(vreg(1), xreg(0))              // acc = 0
         .li(xreg(19), 0)                       // u
         .label(tag + "_u");
        if (rows) {
            a.slli(xreg(28), xreg(6), 3)
             .add(xreg(28), xreg(28), xreg(19));
        } else {
            a.slli(xreg(28), xreg(19), 3)
             .add(xreg(28), xreg(28), xreg(7));
        }
        a.slli(xreg(28), xreg(28), 1)
         .add(xreg(28), xreg(28), xreg(20))
         .add(xreg(28), xreg(28), inBase)
         .vlse(vreg(2), xreg(28), xreg(16), 2)  // in(b0.., pos)
         .vsext2(vreg(3), vreg(2), 2)
         .slli(xreg(30), rows ? xreg(7) : xreg(6), 3)
         .add(xreg(30), xreg(30), xreg(19))
         .slli(xreg(30), xreg(30), 1)
         .add(xreg(30), xreg(30), xreg(15))
         .load(xreg(31), xreg(30), 0, 2, true)  // basis value
         .vx(Op::vmul, vreg(3), vreg(3), xreg(31))
         .vv(Op::vadd, vreg(1), vreg(1), vreg(3))
         .addi(xreg(19), xreg(19), 1)
         .slti(xreg(28), xreg(19), 8)
         .bne(xreg(28), xreg(0), tag + "_u")
         .vx(Op::vadd, vreg(1), vreg(1), xreg(17))   // + 64
         .vnclip2(vreg(2), vreg(1), 7, 2, true)      // >> 7, sat int16
         .slli(xreg(28), xreg(6), 3)
         .add(xreg(28), xreg(28), xreg(7))
         .slli(xreg(28), xreg(28), 1)
         .add(xreg(28), xreg(28), xreg(20))
         .add(xreg(28), xreg(28), outBase)
         .vsse(vreg(2), xreg(28), xreg(16), 2)
         .addi(xreg(7), xreg(7), 1)
         .slti(xreg(28), xreg(7), 8)
         .bne(xreg(28), xreg(0), tag + "_i")
         .addi(xreg(6), xreg(6), 1)
         .slti(xreg(28), xreg(6), 8)
         .bne(xreg(28), xreg(0), tag + "_o")
         .add(xreg(14), xreg(14), xreg(13))
         .sub(xreg(12), xreg(12), xreg(13))
         .bne(xreg(12), xreg(0), tag + "_strip");
    }

    std::uint64_t nb;
    ProgramPtr scalarProg, vectorProg;
};

// ------------------------------------------------------------------
// ycbcr: interleaved YCbCr -> interleaved RGB, BT.601 fixed point.
//
// Deinterleaving the 3-byte pixels is the access-pattern workout:
// the Y plane is gathered with an indexed load over vid()*3 byte
// offsets, Cb/Cr with stride-3 loads, and the RGB planes written
// back with stride-3 stores. All math at sew=4 after zero-extending
// the bytes, then a two-step unsigned vnclip2 clamps to [0, 255].
// ------------------------------------------------------------------

class YcbcrWorkload : public WorkloadBase
{
  public:
    explicit YcbcrWorkload(Scale scale)
    {
        n = scale == Scale::tiny ? 1024 :
            scale == Scale::small ? 16384 : 65536;
    }

    std::string name() const override { return "ycbcr"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        Rng rng(23);
        for (std::uint64_t i = 0; i < 3 * n; ++i)
            mem.writeT<std::uint8_t>(
                regionA + i, static_cast<std::uint8_t>(rng.below(256)));
    }

    static std::uint8_t
    clamp8(std::int64_t v)
    {
        // Matches the emitted two-step narrow: (v >> 8) unsigned-
        // saturated to 16 then 8 bits.
        return static_cast<std::uint8_t>(satU(satU(v >> 8, 2), 1));
    }

    ProgramPtr
    scalarProgram() override
    {
        if (scalarProg)
            return scalarProg;
        Asm a("ycbcr.scalar");
        a.li(xreg(2), regionA).li(xreg(3), regionB)
         .li(xreg(4), 298).li(xreg(5), 409).li(xreg(6), 100)
         .li(xreg(7), 208).li(xreg(8), 516)
         .li(xreg(15), 255)
         .mv(xreg(9), xreg(10))
         .label("loop")
         .slli(xreg(28), xreg(9), 1)
         .add(xreg(28), xreg(28), xreg(9))      // 3*i
         .add(xreg(29), xreg(28), xreg(2))
         .load(xreg(16), xreg(29), 0, 1, false) // Y
         .load(xreg(17), xreg(29), 1, 1, false) // Cb
         .load(xreg(18), xreg(29), 2, 1, false) // Cr
         .addi(xreg(16), xreg(16), -16)
         .addi(xreg(17), xreg(17), -128)
         .addi(xreg(18), xreg(18), -128)
         .mul(xreg(16), xreg(16), xreg(4))      // 298*y'
         .add(xreg(30), xreg(28), xreg(3));     // out pixel base
        // R
        a.mul(xreg(31), xreg(18), xreg(5))
         .add(xreg(31), xreg(31), xreg(16))
         .addi(xreg(31), xreg(31), 128)
         .srai(xreg(31), xreg(31), 8)
         .max_(xreg(31), xreg(31), xreg(0))
         .min_(xreg(31), xreg(31), xreg(15))
         .store(xreg(31), xreg(30), 0, 1);
        // G
        a.mul(xreg(31), xreg(17), xreg(6))
         .sub(xreg(19), xreg(16), xreg(31))
         .mul(xreg(31), xreg(18), xreg(7))
         .sub(xreg(19), xreg(19), xreg(31))
         .addi(xreg(19), xreg(19), 128)
         .srai(xreg(19), xreg(19), 8)
         .max_(xreg(19), xreg(19), xreg(0))
         .min_(xreg(19), xreg(19), xreg(15))
         .store(xreg(19), xreg(30), 1, 1);
        // B
        a.mul(xreg(31), xreg(17), xreg(8))
         .add(xreg(31), xreg(31), xreg(16))
         .addi(xreg(31), xreg(31), 128)
         .srai(xreg(31), xreg(31), 8)
         .max_(xreg(31), xreg(31), xreg(0))
         .min_(xreg(31), xreg(31), xreg(15))
         .store(xreg(31), xreg(30), 2, 1)
         .addi(xreg(9), xreg(9), 1)
         .blt(xreg(9), xreg(11), "loop")
         .halt();
        return scalarProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vectorProg)
            return vectorProg;
        Asm a("ycbcr.vector");
        a.li(xreg(2), regionA).li(xreg(3), regionB)
         .li(xreg(4), 298).li(xreg(5), 409).li(xreg(6), 100)
         .li(xreg(7), 208).li(xreg(15), 516)
         .li(xreg(8), 3);                       // pixel stride
        emitStripmineLoop(a, 4, "loop", [&] {
            a.slli(xreg(28), xreg(14), 1)
             .add(xreg(28), xreg(28), xreg(14)) // 3*i0
             .add(xreg(29), xreg(28), xreg(2))  // strip input base
             // Y gather: byte offsets 3*i, packed down to ew=1. The
             // offsets stay below 3*VLMAX(4) = 192 < 256, so they fit
             // an unsigned byte at every legal VLEN.
             .vid(vreg(7))
             .vx(Op::vmul, vreg(7), vreg(7), xreg(8))
             .vnclip2(vreg(7), vreg(7), 0, 2, false)
             .vnclip2(vreg(7), vreg(7), 0, 1, false)
             .vluxei(vreg(1), xreg(29), vreg(7), 1)
             .vzext2(vreg(1), vreg(1), 1)
             .vzext2(vreg(1), vreg(1), 2)
             .addi(xreg(30), xreg(29), 1)
             .vlse(vreg(2), xreg(30), xreg(8), 1)   // Cb, stride 3
             .vzext2(vreg(2), vreg(2), 1)
             .vzext2(vreg(2), vreg(2), 2)
             .addi(xreg(30), xreg(29), 2)
             .vlse(vreg(3), xreg(30), xreg(8), 1)   // Cr, stride 3
             .vzext2(vreg(3), vreg(3), 1)
             .vzext2(vreg(3), vreg(3), 2)
             .vi(Op::vadd, vreg(1), vreg(1), -16)
             .vi(Op::vadd, vreg(2), vreg(2), -128)
             .vi(Op::vadd, vreg(3), vreg(3), -128)
             .vx(Op::vmul, vreg(4), vreg(1), xreg(4))   // 298*y'
             .add(xreg(31), xreg(28), xreg(3));         // out strip base
            // R = clamp((298*y' + 409*cr' + 128) >> 8)
            a.vx(Op::vmul, vreg(5), vreg(3), xreg(5))
             .vv(Op::vadd, vreg(5), vreg(5), vreg(4))
             .vi(Op::vadd, vreg(5), vreg(5), 128)
             .vnclip2(vreg(5), vreg(5), 8, 2, false)
             .vnclip2(vreg(5), vreg(5), 0, 1, false)
             .vsse(vreg(5), xreg(31), xreg(8), 1);
            // G = clamp((298*y' - 100*cb' - 208*cr' + 128) >> 8)
            a.vx(Op::vmul, vreg(5), vreg(2), xreg(6))
             .vv(Op::vsub, vreg(6), vreg(4), vreg(5))
             .vx(Op::vmul, vreg(5), vreg(3), xreg(7))
             .vv(Op::vsub, vreg(6), vreg(6), vreg(5))
             .vi(Op::vadd, vreg(6), vreg(6), 128)
             .vnclip2(vreg(6), vreg(6), 8, 2, false)
             .vnclip2(vreg(6), vreg(6), 0, 1, false)
             .addi(xreg(30), xreg(31), 1)
             .vsse(vreg(6), xreg(30), xreg(8), 1);
            // B = clamp((298*y' + 516*cb' + 128) >> 8)
            a.vx(Op::vmul, vreg(5), vreg(2), xreg(15))
             .vv(Op::vadd, vreg(5), vreg(5), vreg(4))
             .vi(Op::vadd, vreg(5), vreg(5), 128)
             .vnclip2(vreg(5), vreg(5), 8, 2, false)
             .vnclip2(vreg(5), vreg(5), 0, 1, false)
             .addi(xreg(30), xreg(31), 2)
             .vsse(vreg(5), xreg(30), xreg(8), 1);
        });
        a.halt();
        return vectorProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), n}};
    }

    TaskGraph
    taskGraph() override
    {
        return rangeChunks(scalarProgram(), vectorProgram(), n,
                           defaultChunks);
    }

    bool
    verify(const BackingStore &mem) const override
    {
        Rng rng(23);
        std::vector<std::uint8_t> in(3 * n);
        for (auto &b : in)
            b = static_cast<std::uint8_t>(rng.below(256));
        for (std::uint64_t i = 0; i < n; ++i) {
            std::int64_t y = in[3 * i] - 16;
            std::int64_t cb = in[3 * i + 1] - 128;
            std::int64_t cr = in[3 * i + 2] - 128;
            std::uint8_t r = clamp8(298 * y + 409 * cr + 128);
            std::uint8_t g = clamp8(298 * y - 100 * cb - 208 * cr + 128);
            std::uint8_t b = clamp8(298 * y + 516 * cb + 128);
            if (mem.readT<std::uint8_t>(regionB + 3 * i) != r ||
                mem.readT<std::uint8_t>(regionB + 3 * i + 1) != g ||
                mem.readT<std::uint8_t>(regionB + 3 * i + 2) != b)
                return false;
        }
        return true;
    }

  private:
    std::uint64_t n;
    ProgramPtr scalarProg, vectorProg;
};

// ------------------------------------------------------------------
// conv2d: separable [1 2 1]/4 blur on an int16 image.
//
// Horizontal pass parallelized over rows (unit-stride, three
// shifted row reads); vertical pass parallelized over *columns* and
// vectorized down each column with stride-2W loads/stores — the
// column-major walk the MVE paper's 2D workloads are built around.
// The two passes are separate task-graph phases (the vertical pass
// reads neighbours produced by other chunks).
// ------------------------------------------------------------------

class Conv2dWorkload : public WorkloadBase
{
  public:
    explicit Conv2dWorkload(Scale scale)
    {
        w = scale == Scale::tiny ? 64 :
            scale == Scale::small ? 160 : 320;
        h = scale == Scale::tiny ? 24 :
            scale == Scale::small ? 64 : 128;
    }

    std::string name() const override { return "conv2d"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        Rng rng(5);
        for (std::uint64_t i = 0; i < w * h; ++i)
            mem.writeT<std::int16_t>(
                regionA + 2 * i,
                static_cast<std::int16_t>(
                    static_cast<std::int64_t>(rng.below(2000)) - 1000));
    }

    static std::int64_t
    tap(std::int64_t a, std::int64_t b, std::int64_t c)
    {
        return satS((a + 2 * b + c + 2) >> 2, 2);
    }

    ProgramPtr scalarProgram() override
    {
        if (scalarProg)
            return scalarProg;
        Asm a("conv2d.scalar");
        emitScalarH(a);
        a.li(xreg(10), 0).li(xreg(11), w);
        emitScalarV(a);
        a.halt();
        return scalarProg = finishProg(a);
    }

    ProgramPtr vectorProgram() override
    {
        if (vectorProg)
            return vectorProg;
        Asm a("conv2d.vector");
        emitVectorH(a);
        a.li(xreg(10), 0).li(xreg(11), w);
        emitVectorV(a);
        a.halt();
        return vectorProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), h}};
    }

    TaskGraph
    taskGraph() override
    {
        // Phase 1 chunks rows (horizontal pass), phase 2 chunks
        // columns (vertical pass) — a barrier separates them.
        if (!hScalarProg) {
            { Asm a("conv2d.hpass.scalar"); emitScalarH(a); a.halt();
              hScalarProg = finishProg(a); }
            { Asm a("conv2d.hpass.vector"); emitVectorH(a); a.halt();
              hVectorProg = finishProg(a); }
            { Asm a("conv2d.vpass.scalar"); emitScalarV(a); a.halt();
              vScalarProg = finishProg(a); }
            { Asm a("conv2d.vpass.vector"); emitVectorV(a); a.halt();
              vVectorProg = finishProg(a); }
        }
        TaskGraph g;
        auto p1 = rangeChunks(hScalarProg, hVectorProg, h,
                              std::min<unsigned>(defaultChunks, h));
        auto p2 = rangeChunks(vScalarProg, vVectorProg, w,
                              std::min<unsigned>(defaultChunks, w));
        g.phases.push_back(std::move(p1.phases[0]));
        g.phases.push_back(std::move(p2.phases[0]));
        return g;
    }

    bool
    verify(const BackingStore &mem) const override
    {
        Rng rng(5);
        std::vector<std::int64_t> img(w * h), tmp(w * h);
        for (auto &v : img)
            v = static_cast<std::int64_t>(rng.below(2000)) - 1000;
        for (std::uint64_t y = 0; y < h; ++y) {
            tmp[y * w] = img[y * w];
            tmp[y * w + w - 1] = img[y * w + w - 1];
            for (std::uint64_t x = 1; x + 1 < w; ++x)
                tmp[y * w + x] = tap(img[y * w + x - 1], img[y * w + x],
                                     img[y * w + x + 1]);
        }
        for (std::uint64_t x = 0; x < w; ++x) {
            if (mem.readT<std::int16_t>(regionC + 2 * x) != tmp[x])
                return false;
            std::uint64_t last = (h - 1) * w + x;
            if (mem.readT<std::int16_t>(regionC + 2 * last) != tmp[last])
                return false;
            for (std::uint64_t y = 1; y + 1 < h; ++y) {
                auto want = static_cast<std::int16_t>(
                    tap(tmp[(y - 1) * w + x], tmp[y * w + x],
                        tmp[(y + 1) * w + x]));
                if (mem.readT<std::int16_t>(
                        regionC + 2 * (y * w + x)) != want)
                    return false;
            }
        }
        return true;
    }

  private:
    /** Horizontal pass over rows [x10, x11): regionA -> regionB. */
    void
    emitScalarH(Asm &a)
    {
        a.li(xreg(2), regionA).li(xreg(3), regionB)
         .li(xreg(9), 2 * w)
         .mv(xreg(5), xreg(10))
         .label("h_row")
         .mul(xreg(28), xreg(5), xreg(9))
         .add(xreg(6), xreg(28), xreg(2))       // &img(y, 0)
         .add(xreg(7), xreg(28), xreg(3))       // &tmp(y, 0)
         // borders copy
         .load(xreg(29), xreg(6), 0, 2, true)
         .store(xreg(29), xreg(7), 0, 2)
         .load(xreg(29), xreg(6), 2 * (w - 1), 2, true)
         .store(xreg(29), xreg(7), 2 * (w - 1), 2)
         .li(xreg(8), 1)                        // x
         .label("h_x")
         .slli(xreg(28), xreg(8), 1)
         .add(xreg(29), xreg(6), xreg(28))
         .load(xreg(16), xreg(29), -2, 2, true)
         .load(xreg(17), xreg(29), 0, 2, true)
         .load(xreg(18), xreg(29), 2, 2, true)
         .slli(xreg(17), xreg(17), 1)
         .add(xreg(16), xreg(16), xreg(17))
         .add(xreg(16), xreg(16), xreg(18))
         .addi(xreg(16), xreg(16), 2)
         .srai(xreg(16), xreg(16), 2)
         .add(xreg(29), xreg(7), xreg(28))
         .store(xreg(16), xreg(29), 0, 2)
         .addi(xreg(8), xreg(8), 1)
         .li(xreg(28), w - 1)
         .blt(xreg(8), xreg(28), "h_x")
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), "h_row");
    }

    /** Vertical pass over columns [x10, x11): regionB -> regionC. */
    void
    emitScalarV(Asm &a)
    {
        a.li(xreg(2), regionB).li(xreg(3), regionC)
         .li(xreg(9), 2 * w)
         .mv(xreg(5), xreg(10))
         .label("v_col")
         .slli(xreg(28), xreg(5), 1)
         .add(xreg(6), xreg(28), xreg(2))       // &tmp(0, x)
         .add(xreg(7), xreg(28), xreg(3))       // &out(0, x)
         .load(xreg(29), xreg(6), 0, 2, true)
         .store(xreg(29), xreg(7), 0, 2)
         .load(xreg(29), xreg(6), 2 * w * (h - 1), 2, true)
         .store(xreg(29), xreg(7), 2 * w * (h - 1), 2)
         .li(xreg(8), 1)                        // y
         .label("v_y")
         .mul(xreg(28), xreg(8), xreg(9))
         .add(xreg(29), xreg(6), xreg(28))
         .load(xreg(16), xreg(29), -2 * static_cast<std::int64_t>(w),
               2, true)
         .load(xreg(17), xreg(29), 0, 2, true)
         .load(xreg(18), xreg(29), 2 * w, 2, true)
         .slli(xreg(17), xreg(17), 1)
         .add(xreg(16), xreg(16), xreg(17))
         .add(xreg(16), xreg(16), xreg(18))
         .addi(xreg(16), xreg(16), 2)
         .srai(xreg(16), xreg(16), 2)
         .add(xreg(29), xreg(7), xreg(28))
         .store(xreg(16), xreg(29), 0, 2)
         .addi(xreg(8), xreg(8), 1)
         .li(xreg(28), h - 1)
         .blt(xreg(8), xreg(28), "v_y")
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), "v_col");
    }

    /** Vectorized horizontal pass: unit-stride strips along the row. */
    void
    emitVectorH(Asm &a)
    {
        a.li(xreg(2), regionA).li(xreg(3), regionB)
         .li(xreg(9), 2 * w)
         .mv(xreg(5), xreg(10))
         .label("h_row")
         .mul(xreg(28), xreg(5), xreg(9))
         .add(xreg(6), xreg(28), xreg(2))
         .add(xreg(7), xreg(28), xreg(3))
         .load(xreg(29), xreg(6), 0, 2, true)
         .store(xreg(29), xreg(7), 0, 2)
         .load(xreg(29), xreg(6), 2 * (w - 1), 2, true)
         .store(xreg(29), xreg(7), 2 * (w - 1), 2)
         .li(xreg(12), w - 2)                   // remaining
         .li(xreg(14), 1)                       // x
         .label("h_strip")
         .vsetvli(xreg(13), xreg(12), 4)
         .slli(xreg(28), xreg(14), 1)
         .add(xreg(29), xreg(6), xreg(28))
         .addi(xreg(30), xreg(29), -2)
         .vle(vreg(1), xreg(30), 2)             // img(y, x-1..)
         .vle(vreg(2), xreg(29), 2)             // img(y, x..)
         .addi(xreg(30), xreg(29), 2)
         .vle(vreg(3), xreg(30), 2)             // img(y, x+1..)
         .vsext2(vreg(1), vreg(1), 2)
         .vsext2(vreg(2), vreg(2), 2)
         .vsext2(vreg(3), vreg(3), 2)
         .vi(Op::vsll, vreg(2), vreg(2), 1)
         .vv(Op::vadd, vreg(1), vreg(1), vreg(2))
         .vv(Op::vadd, vreg(1), vreg(1), vreg(3))
         .vi(Op::vadd, vreg(1), vreg(1), 2)
         .vnclip2(vreg(4), vreg(1), 2, 2, true)
         .add(xreg(29), xreg(7), xreg(28))
         .vse(vreg(4), xreg(29), 2)
         .add(xreg(14), xreg(14), xreg(13))
         .sub(xreg(12), xreg(12), xreg(13))
         .bne(xreg(12), xreg(0), "h_strip")
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), "h_row");
    }

    /** Vectorized vertical pass: stride-2W strips down the column. */
    void
    emitVectorV(Asm &a)
    {
        a.li(xreg(2), regionB).li(xreg(3), regionC)
         .li(xreg(9), 2 * w)
         .mv(xreg(5), xreg(10))
         .label("v_col")
         .slli(xreg(28), xreg(5), 1)
         .add(xreg(6), xreg(28), xreg(2))
         .add(xreg(7), xreg(28), xreg(3))
         .load(xreg(29), xreg(6), 0, 2, true)
         .store(xreg(29), xreg(7), 0, 2)
         .load(xreg(29), xreg(6), 2 * w * (h - 1), 2, true)
         .store(xreg(29), xreg(7), 2 * w * (h - 1), 2)
         .li(xreg(12), h - 2)                   // remaining
         .li(xreg(14), 1)                       // y
         .label("v_strip")
         .vsetvli(xreg(13), xreg(12), 4)
         .mul(xreg(28), xreg(14), xreg(9))
         .add(xreg(29), xreg(6), xreg(28))
         .sub(xreg(30), xreg(29), xreg(9))
         .vlse(vreg(1), xreg(30), xreg(9), 2)   // tmp(y-1.., x)
         .vlse(vreg(2), xreg(29), xreg(9), 2)   // tmp(y.., x)
         .add(xreg(30), xreg(29), xreg(9))
         .vlse(vreg(3), xreg(30), xreg(9), 2)   // tmp(y+1.., x)
         .vsext2(vreg(1), vreg(1), 2)
         .vsext2(vreg(2), vreg(2), 2)
         .vsext2(vreg(3), vreg(3), 2)
         .vi(Op::vsll, vreg(2), vreg(2), 1)
         .vv(Op::vadd, vreg(1), vreg(1), vreg(2))
         .vv(Op::vadd, vreg(1), vreg(1), vreg(3))
         .vi(Op::vadd, vreg(1), vreg(1), 2)
         .vnclip2(vreg(4), vreg(1), 2, 2, true)
         .add(xreg(29), xreg(7), xreg(28))
         .vsse(vreg(4), xreg(29), xreg(9), 2)
         .add(xreg(14), xreg(14), xreg(13))
         .sub(xreg(12), xreg(12), xreg(13))
         .bne(xreg(12), xreg(0), "v_strip")
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), "v_col");
    }

    std::uint64_t w, h;
    ProgramPtr scalarProg, vectorProg;
    ProgramPtr hScalarProg, hVectorProg, vScalarProg, vVectorProg;
};

// ------------------------------------------------------------------
// gemm8: quantized int8 GEMM with widening accumulate
// (XNNPACK-style): C = requant(A x B), int8 inputs, int32
// accumulators, requantize with rounding shift and int8 saturation.
// Rows of B stream through unit-stride byte loads, each sign-
// extended twice up to 32-bit lanes before the multiply-accumulate.
// ------------------------------------------------------------------

class Gemm8Workload : public WorkloadBase
{
  public:
    explicit Gemm8Workload(Scale scale)
    {
        dim = scale == Scale::tiny ? 16 :
              scale == Scale::small ? 48 : 96;
    }

    std::string name() const override { return "gemm8"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        Rng rng(31);
        for (std::uint64_t i = 0; i < dim * dim; ++i) {
            mem.writeT<std::int8_t>(
                regionA + i, static_cast<std::int8_t>(
                    static_cast<std::int64_t>(rng.below(256)) - 128));
            mem.writeT<std::int8_t>(
                regionB + i, static_cast<std::int8_t>(
                    static_cast<std::int64_t>(rng.below(256)) - 128));
        }
    }

    ProgramPtr
    scalarProgram() override
    {
        if (scalarProg)
            return scalarProg;
        Asm a("gemm8.scalar");
        a.li(xreg(2), regionA).li(xreg(3), regionB).li(xreg(4), regionC)
         .li(xreg(9), dim)
         .li(xreg(15), 127).li(xreg(16), -128)
         .mv(xreg(5), xreg(10))                 // i
         .label("iloop")
         .li(xreg(6), 0)                        // j
         .label("jloop")
         .li(xreg(7), 0)                        // k
         .li(xreg(18), 0)                       // acc
         .label("kloop")
         .mul(xreg(28), xreg(5), xreg(9))
         .add(xreg(28), xreg(28), xreg(7))
         .add(xreg(28), xreg(28), xreg(2))
         .load(xreg(29), xreg(28), 0, 1, true)  // A[i][k]
         .mul(xreg(28), xreg(7), xreg(9))
         .add(xreg(28), xreg(28), xreg(6))
         .add(xreg(28), xreg(28), xreg(3))
         .load(xreg(30), xreg(28), 0, 1, true)  // B[k][j]
         .mul(xreg(29), xreg(29), xreg(30))
         .add(xreg(18), xreg(18), xreg(29))
         .addi(xreg(7), xreg(7), 1)
         .blt(xreg(7), xreg(9), "kloop")
         .addi(xreg(18), xreg(18), 32)          // requant: (acc+32)>>6
         .srai(xreg(18), xreg(18), 6)
         .min_(xreg(18), xreg(18), xreg(15))
         .max_(xreg(18), xreg(18), xreg(16))
         .mul(xreg(28), xreg(5), xreg(9))
         .add(xreg(28), xreg(28), xreg(6))
         .add(xreg(28), xreg(28), xreg(4))
         .store(xreg(18), xreg(28), 0, 1)
         .addi(xreg(6), xreg(6), 1)
         .blt(xreg(6), xreg(9), "jloop")
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), "iloop")
         .halt();
        return scalarProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vectorProg)
            return vectorProg;
        Asm a("gemm8.vector");
        a.li(xreg(2), regionA).li(xreg(3), regionB).li(xreg(4), regionC)
         .li(xreg(9), dim)
         .mv(xreg(5), xreg(10))                 // i
         .label("iloop")
         .li(xreg(12), dim)                     // remaining j
         .li(xreg(14), 0)                       // j0
         .label("jstrip")
         .vsetvli(xreg(13), xreg(12), 4)
         .vmv_vx(vreg(1), xreg(0))              // acc = 0
         .li(xreg(7), 0)                        // k
         .label("kloop")
         .mul(xreg(28), xreg(5), xreg(9))
         .add(xreg(28), xreg(28), xreg(7))
         .add(xreg(28), xreg(28), xreg(2))
         .load(xreg(29), xreg(28), 0, 1, true)  // A[i][k]
         .mul(xreg(28), xreg(7), xreg(9))
         .add(xreg(28), xreg(28), xreg(14))
         .add(xreg(28), xreg(28), xreg(3))
         .vle(vreg(2), xreg(28), 1)             // B[k][j0..], int8
         .vsext2(vreg(2), vreg(2), 1)           // widen to int16
         .vsext2(vreg(2), vreg(2), 2)           // widen to int32
         .vx(Op::vmul, vreg(2), vreg(2), xreg(29))
         .vv(Op::vadd, vreg(1), vreg(1), vreg(2))
         .addi(xreg(7), xreg(7), 1)
         .blt(xreg(7), xreg(9), "kloop")
         .vi(Op::vadd, vreg(1), vreg(1), 32)
         .vnclip2(vreg(1), vreg(1), 6, 2, true) // (acc+32)>>6, sat s16
         .vnclip2(vreg(1), vreg(1), 0, 1, true) // sat to int8
         .mul(xreg(28), xreg(5), xreg(9))
         .add(xreg(28), xreg(28), xreg(14))
         .add(xreg(28), xreg(28), xreg(4))
         .vse(vreg(1), xreg(28), 1)
         .add(xreg(14), xreg(14), xreg(13))
         .sub(xreg(12), xreg(12), xreg(13))
         .bne(xreg(12), xreg(0), "jstrip")
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), "iloop")
         .halt();
        return vectorProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), dim}};
    }

    TaskGraph
    taskGraph() override
    {
        return rangeChunks(scalarProgram(), vectorProgram(), dim,
                           std::min<unsigned>(defaultChunks, dim));
    }

    bool
    verify(const BackingStore &mem) const override
    {
        Rng rng(31);
        std::vector<std::int64_t> av(dim * dim), bv(dim * dim);
        for (std::uint64_t i = 0; i < dim * dim; ++i) {
            // Same draw order as init: A and B interleaved per element.
            av[i] = static_cast<std::int64_t>(rng.below(256)) - 128;
            bv[i] = static_cast<std::int64_t>(rng.below(256)) - 128;
        }
        for (std::uint64_t i = 0; i < dim; ++i)
            for (std::uint64_t j = 0; j < dim; ++j) {
                std::int64_t acc = 0;
                for (std::uint64_t k = 0; k < dim; ++k)
                    acc += av[i * dim + k] * bv[k * dim + j];
                auto want = static_cast<std::int8_t>(
                    satS(satS((acc + 32) >> 6, 2), 1));
                if (mem.readT<std::int8_t>(regionC + i * dim + j) != want)
                    return false;
            }
        return true;
    }

  private:
    std::uint64_t dim;
    ProgramPtr scalarProg, vectorProg;
};

// ------------------------------------------------------------------
// bytescan: memchr + memcmp over fixed-length byte records.
//
// Per record: (1) index of the first 0x00 delimiter (or -1), via
// unit-stride byte loads + vmseq/vfirst at sew=1; (2) memcmp-style
// -1/0/1 against a second buffer via vmsne/vfirst and a scalar
// unsigned byte compare at the first mismatch. Both loops exit a
// strip early on a hit, so the vector length actually executed is
// data-dependent — the bursty shape the paper's on-demand argument
// is about.
// ------------------------------------------------------------------

class BytescanWorkload : public WorkloadBase
{
  public:
    explicit BytescanWorkload(Scale scale)
    {
        nrec = scale == Scale::tiny ? 48 :
               scale == Scale::small ? 192 : 384;
        len = scale == Scale::tiny ? 64 :
              scale == Scale::small ? 192 : 384;
    }

    std::string name() const override { return "bytescan"; }
    bool isDataParallel() const override { return true; }

    void
    fill(std::vector<std::uint8_t> &a, std::vector<std::uint8_t> &b) const
    {
        Rng rng(47);
        a.resize(nrec * len);
        for (auto &v : a)
            v = static_cast<std::uint8_t>(1 + rng.below(255));
        for (std::uint64_t r = 0; r < nrec; ++r)
            if (rng.below(4) != 0)          // 3/4 records get a delimiter
                a[r * len + rng.below(len)] = 0;
        b = a;
        for (std::uint64_t r = 0; r < nrec; ++r)
            if (rng.below(2) == 0) {        // half the records mismatch
                std::uint64_t p = rng.below(len);
                b[r * len + p] =
                    static_cast<std::uint8_t>(b[r * len + p] ^ 0x55);
            }
    }

    void
    init(BackingStore &mem) override
    {
        std::vector<std::uint8_t> a, b;
        fill(a, b);
        for (std::uint64_t i = 0; i < a.size(); ++i) {
            mem.writeT<std::uint8_t>(regionA + i, a[i]);
            mem.writeT<std::uint8_t>(regionB + i, b[i]);
        }
    }

    ProgramPtr
    scalarProgram() override
    {
        if (scalarProg)
            return scalarProg;
        Asm a("bytescan.scalar");
        a.li(xreg(2), regionA).li(xreg(3), regionB)
         .li(xreg(4), regionC).li(xreg(8), regionD)
         .li(xreg(9), len)
         .mv(xreg(5), xreg(10))                 // r
         .label("rec")
         .mul(xreg(6), xreg(5), xreg(9))
         .add(xreg(6), xreg(6), xreg(2))        // &A[r][0]
         // memchr
         .li(xreg(15), -1)
         .li(xreg(7), 0)
         .label("mc")
         .add(xreg(28), xreg(6), xreg(7))
         .load(xreg(29), xreg(28), 0, 1, false)
         .bne(xreg(29), xreg(0), "mc_next")
         .mv(xreg(15), xreg(7))
         .j("mc_done")
         .label("mc_next")
         .addi(xreg(7), xreg(7), 1)
         .blt(xreg(7), xreg(9), "mc")
         .label("mc_done")
         .slli(xreg(28), xreg(5), 2)
         .add(xreg(28), xreg(28), xreg(4))
         .store(xreg(15), xreg(28), 0, 4)
         // memcmp against B
         .mul(xreg(16), xreg(5), xreg(9))
         .add(xreg(16), xreg(16), xreg(3))      // &B[r][0]
         .li(xreg(15), 0)
         .li(xreg(7), 0)
         .label("cmp")
         .add(xreg(28), xreg(6), xreg(7))
         .load(xreg(29), xreg(28), 0, 1, false)
         .add(xreg(28), xreg(16), xreg(7))
         .load(xreg(30), xreg(28), 0, 1, false)
         .bne(xreg(29), xreg(30), "cmp_diff")
         .addi(xreg(7), xreg(7), 1)
         .blt(xreg(7), xreg(9), "cmp")
         .j("cmp_done")
         .label("cmp_diff")
         .li(xreg(15), 1)
         .bgeu(xreg(29), xreg(30), "cmp_done")
         .li(xreg(15), -1)
         .label("cmp_done")
         .slli(xreg(28), xreg(5), 2)
         .add(xreg(28), xreg(28), xreg(8))
         .store(xreg(15), xreg(28), 0, 4)
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), "rec")
         .halt();
        return scalarProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vectorProg)
            return vectorProg;
        Asm a("bytescan.vector");
        a.li(xreg(2), regionA).li(xreg(3), regionB)
         .li(xreg(4), regionC).li(xreg(8), regionD)
         .li(xreg(9), len)
         .mv(xreg(5), xreg(10))                 // r
         .label("rec")
         .mul(xreg(6), xreg(5), xreg(9))
         .add(xreg(16), xreg(6), xreg(3))       // &B[r][0]
         .add(xreg(6), xreg(6), xreg(2))        // &A[r][0]
         // memchr: strips of bytes, vmseq against 0, vfirst
         .li(xreg(15), -1)
         .mv(xreg(12), xreg(9))
         .li(xreg(14), 0)
         .label("mc")
         .vsetvli(xreg(13), xreg(12), 1)
         .add(xreg(28), xreg(6), xreg(14))
         .vle(vreg(1), xreg(28), 1)
         .vi(Op::vmseq, vreg(2), vreg(1), 0)
         .vfirst(xreg(29), vreg(2))
         .blt(xreg(29), xreg(0), "mc_next")
         .add(xreg(15), xreg(14), xreg(29))     // hit: record index
         .j("mc_done")
         .label("mc_next")
         .add(xreg(14), xreg(14), xreg(13))
         .sub(xreg(12), xreg(12), xreg(13))
         .bne(xreg(12), xreg(0), "mc")
         .label("mc_done")
         .slli(xreg(28), xreg(5), 2)
         .add(xreg(28), xreg(28), xreg(4))
         .store(xreg(15), xreg(28), 0, 4)
         // memcmp: vmsne across both buffers, scalar compare at the
         // first mismatching byte
         .li(xreg(15), 0)
         .mv(xreg(12), xreg(9))
         .li(xreg(14), 0)
         .label("cmp")
         .vsetvli(xreg(13), xreg(12), 1)
         .add(xreg(28), xreg(6), xreg(14))
         .vle(vreg(1), xreg(28), 1)
         .add(xreg(28), xreg(16), xreg(14))
         .vle(vreg(2), xreg(28), 1)
         .vv(Op::vmsne, vreg(3), vreg(1), vreg(2))
         .vfirst(xreg(29), vreg(3))
         .bge(xreg(29), xreg(0), "cmp_diff")
         .add(xreg(14), xreg(14), xreg(13))
         .sub(xreg(12), xreg(12), xreg(13))
         .bne(xreg(12), xreg(0), "cmp")
         .j("cmp_done")
         .label("cmp_diff")
         .add(xreg(30), xreg(14), xreg(29))     // mismatch index
         .add(xreg(28), xreg(6), xreg(30))
         .load(xreg(29), xreg(28), 0, 1, false)
         .add(xreg(28), xreg(16), xreg(30))
         .load(xreg(30), xreg(28), 0, 1, false)
         .li(xreg(15), 1)
         .bgeu(xreg(29), xreg(30), "cmp_done")
         .li(xreg(15), -1)
         .label("cmp_done")
         .slli(xreg(28), xreg(5), 2)
         .add(xreg(28), xreg(28), xreg(8))
         .store(xreg(15), xreg(28), 0, 4)
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), "rec")
         .halt();
        return vectorProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), nrec}};
    }

    TaskGraph
    taskGraph() override
    {
        return rangeChunks(scalarProgram(), vectorProgram(), nrec,
                           std::min<unsigned>(defaultChunks, nrec));
    }

    bool
    verify(const BackingStore &mem) const override
    {
        std::vector<std::uint8_t> a, b;
        fill(a, b);
        for (std::uint64_t r = 0; r < nrec; ++r) {
            std::int32_t chr = -1;
            for (std::uint64_t p = 0; p < len; ++p)
                if (a[r * len + p] == 0) {
                    chr = static_cast<std::int32_t>(p);
                    break;
                }
            std::int32_t cmp = 0;
            for (std::uint64_t p = 0; p < len; ++p) {
                std::uint8_t av = a[r * len + p], bv = b[r * len + p];
                if (av != bv) {
                    cmp = av < bv ? -1 : 1;
                    break;
                }
            }
            if (mem.readT<std::int32_t>(regionC + 4 * r) != chr ||
                mem.readT<std::int32_t>(regionD + 4 * r) != cmp)
                return false;
        }
        return true;
    }

  private:
    std::uint64_t nrec, len;
    ProgramPtr scalarProg, vectorProg;
};

} // namespace

std::vector<WorkloadPtr>
makeMobileApps(Scale scale)
{
    std::vector<WorkloadPtr> v;
    v.push_back(std::make_unique<Idct8Workload>(scale));
    v.push_back(std::make_unique<YcbcrWorkload>(scale));
    v.push_back(std::make_unique<Conv2dWorkload>(scale));
    v.push_back(std::make_unique<Gemm8Workload>(scale));
    v.push_back(std::make_unique<BytescanWorkload>(scale));
    return v;
}

} // namespace bvl
