/**
 * @file
 * Iterative double-buffer graph apps: components (label propagation),
 * pagerank, mis (deterministic Luby rounds) and kcore (peeling).
 */

#include "workloads/ligra_common.hh"

namespace bvl
{

namespace
{

// ------------------------------------------------------------------
// components: label propagation over both edge directions
// ------------------------------------------------------------------

class ComponentsWorkload : public GraphWorkloadBase
{
  public:
    explicit ComponentsWorkload(Scale scale) : GraphWorkloadBase(scale)
    {
        std::tie(refLabels, iters) = g.components();
    }

    std::string name() const override { return "components"; }

    void
    init(BackingStore &mem) override
    {
        writeGraph(mem);
        for (unsigned v = 0; v < g.n; ++v) {
            mem.writeT<std::uint32_t>(regionB + 4ull * v, v);
            mem.writeT<std::uint32_t>(regionC + 4ull * v, v);
        }
    }

    TaskGraph
    taskGraph() override
    {
        if (!prog)
            prog = makeSweep();
        std::vector<std::pair<ProgramPtr, ProgArgs>> phases;
        for (unsigned t = 0; t < iters; ++t) {
            Addr cur = t % 2 ? regionC : regionB;
            Addr next = t % 2 ? regionB : regionC;
            phases.push_back({prog, {{xreg(8), cur}, {xreg(9), next}}});
        }
        return vertexPhases(phases);
    }

    bool
    verify(const BackingStore &mem) const override
    {
        Addr final = iters % 2 ? regionC : regionB;
        for (unsigned v = 0; v < g.n; ++v)
            if (mem.readT<std::uint32_t>(final + 4ull * v) !=
                refLabels[v]) {
                return false;
            }
        return true;
    }

  private:
    ProgramPtr
    makeSweep()
    {
        // next[v] = min(cur[v], min over in/out neighbours cur[u])
        Asm a("components.sweep");
        emitGraphBases(a);
        emitVertexLoop(a, "cc", [&] {
            a.slli(xreg(29), xreg(6), 2)
             .add(xreg(29), xreg(29), xreg(8))
             .lw(xreg(20), xreg(29));                 // m = cur[v]
            emitEdgeLoop(a, xreg(4), xreg(5), "cc.in", [&] {
                a.slli(xreg(28), xreg(22), 2)
                 .add(xreg(28), xreg(28), xreg(8))
                 .lw(xreg(21), xreg(28))
                 .min_(xreg(20), xreg(20), xreg(21));
            });
            emitEdgeLoop(a, xreg(2), xreg(3), "cc.out", [&] {
                a.slli(xreg(28), xreg(22), 2)
                 .add(xreg(28), xreg(28), xreg(8))
                 .lw(xreg(21), xreg(28))
                 .min_(xreg(20), xreg(20), xreg(21));
            });
            a.slli(xreg(29), xreg(6), 2)
             .add(xreg(29), xreg(29), xreg(9))
             .sw(xreg(20), xreg(29));
        });
        a.halt();
        return finishProg(a);
    }

    std::vector<std::uint32_t> refLabels;
    unsigned iters = 0;
    ProgramPtr prog;
};

// ------------------------------------------------------------------
// pagerank: 5 pull iterations with precomputed degree reciprocals
// ------------------------------------------------------------------

class PagerankWorkload : public GraphWorkloadBase
{
  public:
    explicit PagerankWorkload(Scale scale) : GraphWorkloadBase(scale)
    {
        refRank = g.pagerank(iters);
    }

    std::string name() const override { return "pagerank"; }

    void
    init(BackingStore &mem) override
    {
        writeGraph(mem);
        for (unsigned v = 0; v < g.n; ++v) {
            mem.writeT<float>(regionB + 4ull * v, 1.0f / g.n);
            mem.writeT<float>(regionD + 4ull * v,
                              1.0f / std::max(1u, g.outDeg(v)));
        }
    }

    TaskGraph
    taskGraph() override
    {
        if (!prog)
            prog = makeSweep();
        std::vector<std::pair<ProgramPtr, ProgArgs>> phases;
        for (unsigned t = 0; t < iters; ++t) {
            Addr cur = t % 2 ? regionC : regionB;
            Addr next = t % 2 ? regionB : regionC;
            phases.push_back({prog, {{xreg(8), cur}, {xreg(9), next}}});
        }
        return vertexPhases(phases);
    }

    bool
    verify(const BackingStore &mem) const override
    {
        Addr final = iters % 2 ? regionC : regionB;
        for (unsigned v = 0; v < g.n; ++v) {
            float got = mem.readT<float>(final + 4ull * v);
            if (!closeEnough(got, refRank[v], 2e-2f))
                return false;
        }
        return true;
    }

  private:
    ProgramPtr
    makeSweep()
    {
        Asm a("pagerank.sweep");
        emitGraphBases(a);
        a.li(xreg(7), regionD);                       // 1/deg array
        emitFloatConst(a, freg(2), xreg(28), 0.85f);
        emitFloatConst(a, freg(3), xreg(28),
                       0.15f / static_cast<float>(g.n));
        emitVertexLoop(a, "pr", [&] {
            a.li(xreg(29), 0)
             .fmv_f_x(freg(1), xreg(29));             // acc = 0
            emitEdgeLoop(a, xreg(4), xreg(5), "pr.in", [&] {
                a.slli(xreg(28), xreg(22), 2)
                 .add(xreg(29), xreg(28), xreg(8))
                 .flw(freg(4), xreg(29))              // cur[u]
                 .add(xreg(29), xreg(28), xreg(7))
                 .flw(freg(5), xreg(29))              // 1/deg[u]
                 .fmadd(freg(1), freg(4), freg(5), freg(1), 4);
            });
            a.fmadd(freg(1), freg(1), freg(2), freg(3), 4)
             .slli(xreg(29), xreg(6), 2)
             .add(xreg(29), xreg(29), xreg(9))
             .fsw(freg(1), xreg(29));
        });
        a.halt();
        return finishProg(a);
    }

    static constexpr unsigned iters = 5;
    std::vector<float> refRank;
    ProgramPtr prog;
};

// ------------------------------------------------------------------
// mis: deterministic Luby rounds (join subphase + apply/exclude)
// ------------------------------------------------------------------

class MisWorkload : public GraphWorkloadBase
{
  public:
    explicit MisWorkload(Scale scale) : GraphWorkloadBase(scale)
    {
        std::tie(refStatus, rounds) = g.mis();
        // Priorities are precomputed to memory: the hash is host-side.
    }

    std::string name() const override { return "mis"; }

    void
    init(BackingStore &mem) override
    {
        writeGraph(mem);
        for (unsigned v = 0; v < g.n; ++v) {
            mem.writeT<std::uint32_t>(regionB + 4ull * v, 0);  // status
            mem.writeT<std::uint32_t>(regionD + 4ull * v,
                                      HostGraph::misPriority(v));
            mem.writeT<std::uint32_t>(regionC + 4ull * v, 0);  // joined
        }
    }

    TaskGraph
    taskGraph() override
    {
        if (!joinProg) {
            joinProg = makeJoin();
            applyProg = makeApply();
        }
        std::vector<std::pair<ProgramPtr, ProgArgs>> phases;
        for (unsigned r = 0; r < rounds; ++r) {
            phases.push_back({joinProg, {}});
            phases.push_back({applyProg, {}});
        }
        return vertexPhases(phases);
    }

    bool
    verify(const BackingStore &mem) const override
    {
        for (unsigned v = 0; v < g.n; ++v)
            if (mem.readT<std::uint32_t>(regionB + 4ull * v) !=
                refStatus[v]) {
                return false;
            }
        return true;
    }

  private:
    /** joined[v] = undecided(v) && priority minimal in neighbourhood. */
    ProgramPtr
    makeJoin()
    {
        Asm a("mis.join");
        emitGraphBases(a);
        a.li(xreg(8), regionB)    // status
         .li(xreg(9), regionC)    // joined
         .li(xreg(7), regionD);   // priority
        emitVertexLoop(a, "mj", [&] {
            a.slli(xreg(29), xreg(6), 2)
             .add(xreg(30), xreg(29), xreg(9))
             .sw(xreg(0), xreg(30))               // joined[v] = 0
             .add(xreg(28), xreg(29), xreg(8))
             .lw(xreg(20), xreg(28))              // status[v]
             .bne(xreg(20), xreg(0), "mj.skip")
             .add(xreg(28), xreg(29), xreg(7))
             .lw(xreg(21), xreg(28))              // pv
             .li(xreg(23), 1);                    // minimal flag
            auto perEdge = [&](const char *tag) {
                // if (status[u]==0 && (pu < pv || (pu==pv && u < v)))
                //     minimal = 0
                std::string lower = std::string(tag) + ".lower";
                std::string notlower = std::string(tag) + ".notlower";
                a.slli(xreg(28), xreg(22), 2)
                 .add(xreg(29), xreg(28), xreg(8))
                 .lw(xreg(24), xreg(29));
                a.add(xreg(29), xreg(28), xreg(7))
                 .lw(xreg(25), xreg(29))
                 // cond1 = (status==0)
                 .sltu(xreg(26), xreg(0), xreg(24))   // status != 0
                 // lower = pu<pv || (pu==pv && u<v)
                 .bltu(xreg(25), xreg(21), lower)
                 .bne(xreg(25), xreg(21), notlower)
                 .bltu(xreg(22), xreg(6), lower)
                 .j(notlower)
                 .label(lower)
                 .bne(xreg(26), xreg(0), notlower)    // u decided: skip
                 .li(xreg(23), 0)
                 .label(notlower);
            };
            // Walk in-edges then out-edges; labels must be unique, so
            // wrap per direction.
            emitEdgeLoopWithUnique(a, xreg(4), xreg(5), "mj.in", perEdge);
            emitEdgeLoopWithUnique(a, xreg(2), xreg(3), "mj.out",
                                   perEdge);
            a.slli(xreg(29), xreg(6), 2)
             .add(xreg(30), xreg(29), xreg(9))
             .sw(xreg(23), xreg(30))              // joined[v] = minimal
             .label("mj.skip");
        });
        a.halt();
        return finishProg(a);
    }

    /** Apply join results; exclude neighbours of new members. */
    ProgramPtr
    makeApply()
    {
        Asm a("mis.apply");
        emitGraphBases(a);
        a.li(xreg(8), regionB)
         .li(xreg(9), regionC);
        emitVertexLoop(a, "ma", [&] {
            a.slli(xreg(29), xreg(6), 2)
             .add(xreg(28), xreg(29), xreg(8))
             .lw(xreg(20), xreg(28))
             .bne(xreg(20), xreg(0), "ma.skip")
             .add(xreg(30), xreg(29), xreg(9))
             .lw(xreg(21), xreg(30))
             .beq(xreg(21), xreg(0), "ma.notjoin")
             .li(xreg(23), 1)
             .sw(xreg(23), xreg(28))              // status = in MIS
             .j("ma.skip")
             .label("ma.notjoin")
             .li(xreg(23), 0);                    // any joined neighbour?
            auto perEdge = [&](const char *) {
                a.slli(xreg(28), xreg(22), 2)
                 .add(xreg(28), xreg(28), xreg(9))
                 .lw(xreg(24), xreg(28))
                 .or_(xreg(23), xreg(23), xreg(24));
            };
            emitEdgeLoopWithUnique(a, xreg(4), xreg(5), "ma.in", perEdge);
            emitEdgeLoopWithUnique(a, xreg(2), xreg(3), "ma.out",
                                   perEdge);
            a.beq(xreg(23), xreg(0), "ma.skip")
             .slli(xreg(29), xreg(6), 2)
             .add(xreg(28), xreg(29), xreg(8))
             .li(xreg(24), 2)
             .sw(xreg(24), xreg(28))              // excluded
             .label("ma.skip");
        });
        a.halt();
        return finishProg(a);
    }

    /**
     * emitEdgeLoop with uniquified inner labels. Labels only need to
     * be unique within the program being assembled, so the suffix is
     * the emission position in @p a — deterministic and private to
     * the owning workload, unlike a process-wide counter.
     */
    static void
    emitEdgeLoopWithUnique(Asm &a, RegId offs, RegId tgts,
                           const std::string &tag,
                           const std::function<void(const char *)> &fn)
    {
        std::string u = tag + std::to_string(a.size());
        emitEdgeLoop(a, offs, tgts, u, [&] { fn(u.c_str()); });
    }

    std::vector<std::uint8_t> refStatusBytes() const;
    std::vector<std::uint8_t> refStatus;
    unsigned rounds = 0;
    ProgramPtr joinProg, applyProg;
};

// ------------------------------------------------------------------
// kcore: peeling rounds with double-buffered aliveness
// ------------------------------------------------------------------

class KcoreWorkload : public GraphWorkloadBase
{
  public:
    explicit KcoreWorkload(Scale scale) : GraphWorkloadBase(scale)
    {
        std::tie(refCore, totalRounds) = g.kcore(maxK);
        // Recompute the exact (k, round) schedule for phase building.
        buildSchedule();
    }

    std::string name() const override { return "kcore"; }

    void
    init(BackingStore &mem) override
    {
        writeGraph(mem);
        for (unsigned v = 0; v < g.n; ++v) {
            mem.writeT<std::uint32_t>(regionB + 4ull * v, 1);  // alive
            mem.writeT<std::uint32_t>(regionC + 4ull * v, 1);
            mem.writeT<std::uint32_t>(regionD + 4ull * v, maxK);
        }
    }

    TaskGraph
    taskGraph() override
    {
        if (!roundProg)
            roundProg = makeRound();
        std::vector<std::pair<ProgramPtr, ProgArgs>> phases;
        for (unsigned r = 0; r < schedule.size(); ++r) {
            Addr cur = r % 2 ? regionC : regionB;
            Addr next = r % 2 ? regionB : regionC;
            phases.push_back({roundProg,
                              {{xreg(8), cur},
                               {xreg(9), next},
                               {xreg(7), schedule[r]}}});
        }
        return vertexPhases(phases);
    }

    bool
    verify(const BackingStore &mem) const override
    {
        for (unsigned v = 0; v < g.n; ++v)
            if (mem.readT<std::uint32_t>(regionD + 4ull * v) !=
                refCore[v]) {
                return false;
            }
        return true;
    }

  private:
    void
    buildSchedule()
    {
        // Replicate HostGraph::kcore round structure.
        std::vector<std::uint8_t> alive(g.n, 1);
        auto degOf = [&](unsigned v) {
            unsigned d = 0;
            for (unsigned e = g.inOffs[v]; e < g.inOffs[v + 1]; ++e)
                d += alive[g.inTgts[e]];
            for (unsigned e = g.outOffs[v]; e < g.outOffs[v + 1]; ++e)
                d += alive[g.outTgts[e]];
            return d;
        };
        for (unsigned k = 1; k <= maxK; ++k) {
            bool removed = true;
            while (removed) {
                removed = false;
                schedule.push_back(k);
                auto next = alive;
                for (unsigned v = 0; v < g.n; ++v)
                    if (alive[v] && degOf(v) < k) {
                        next[v] = 0;
                        removed = true;
                    }
                alive = next;
            }
        }
    }

    /** One peeling round at threshold k (x7): recompute live degree
     *  from cur (x8); write aliveness to next (x9); dying vertices
     *  record coreness k-1. */
    ProgramPtr
    makeRound()
    {
        Asm a("kcore.round");
        emitGraphBases(a);
        a.li(xreg(17), regionD);          // coreness
        emitVertexLoop(a, "kc", [&] {
            a.slli(xreg(29), xreg(6), 2)
             .add(xreg(28), xreg(29), xreg(8))
             .lw(xreg(20), xreg(28))          // alive?
             .add(xreg(30), xreg(29), xreg(9))
             .sw(xreg(20), xreg(30))          // default: copy state
             .beq(xreg(20), xreg(0), "kc.skip")
             .li(xreg(21), 0);                // live degree
            auto perEdge = [&] {
                a.slli(xreg(28), xreg(22), 2)
                 .add(xreg(28), xreg(28), xreg(8))
                 .lw(xreg(24), xreg(28))
                 .add(xreg(21), xreg(21), xreg(24));
            };
            emitEdgeLoop(a, xreg(4), xreg(5), "kc.in", perEdge);
            emitEdgeLoop(a, xreg(2), xreg(3), "kc.out", perEdge);
            a.bge(xreg(21), xreg(7), "kc.skip")
             // dies this round: next[v] = 0; coreness[v] = k-1
             .slli(xreg(29), xreg(6), 2)
             .add(xreg(30), xreg(29), xreg(9))
             .sw(xreg(0), xreg(30))
             .addi(xreg(24), xreg(7), -1)
             .add(xreg(30), xreg(29), xreg(17))
             .sw(xreg(24), xreg(30))
             .label("kc.skip");
        });
        a.halt();
        return finishProg(a);
    }

    static constexpr unsigned maxK = 8;
    std::vector<std::uint32_t> refCore;
    unsigned totalRounds = 0;
    std::vector<std::uint64_t> schedule;
    ProgramPtr roundProg;
};

} // namespace

std::vector<WorkloadPtr>
makeIterativeGraphApps(Scale scale)
{
    std::vector<WorkloadPtr> v;
    v.push_back(std::make_unique<ComponentsWorkload>(scale));
    v.push_back(std::make_unique<PagerankWorkload>(scale));
    v.push_back(std::make_unique<MisWorkload>(scale));
    v.push_back(std::make_unique<KcoreWorkload>(scale));
    return v;
}

} // namespace bvl
