#include "workloads/workload.hh"

#include "sim/logging.hh"

namespace bvl
{

// Factories implemented in the per-category translation units.
std::vector<WorkloadPtr> makeComputeApps(Scale scale);
std::vector<WorkloadPtr> makeStencilApps(Scale scale);
std::vector<WorkloadPtr> makeGenomicsApps(Scale scale);
std::vector<WorkloadPtr> makeIterativeGraphApps(Scale scale);
std::vector<WorkloadPtr> makeTraversalGraphApps(Scale scale);

Addr
Workload::nextTextBase()
{
    Addr base = nextText;
    nextText += 0x10000;
    return base;
}

std::vector<WorkloadPtr>
makeDataParallelApps(Scale scale)
{
    std::vector<WorkloadPtr> v;
    for (auto &w : makeComputeApps(scale))
        v.push_back(std::move(w));
    for (auto &w : makeStencilApps(scale))
        v.push_back(std::move(w));
    for (auto &w : makeGenomicsApps(scale))
        v.push_back(std::move(w));
    return v;
}

std::vector<WorkloadPtr>
makeTaskParallelApps(Scale scale)
{
    std::vector<WorkloadPtr> v;
    for (auto &w : makeTraversalGraphApps(scale))
        v.push_back(std::move(w));
    for (auto &w : makeIterativeGraphApps(scale))
        v.push_back(std::move(w));
    return v;
}

WorkloadPtr
makeWorkload(const std::string &name, Scale scale)
{
    for (auto maker : {makeKernels, makeDataParallelApps,
                       makeTaskParallelApps}) {
        for (auto &w : maker(scale))
            if (w->name() == name)
                return std::move(w);
    }
    return nullptr;
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (auto maker : {makeKernels, makeDataParallelApps,
                       makeTaskParallelApps}) {
        for (auto &w : maker(Scale::tiny))
            names.push_back(w->name());
    }
    return names;
}

} // namespace bvl
