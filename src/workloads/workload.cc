#include "workloads/workload.hh"

#include <set>

#include "sim/logging.hh"

namespace bvl
{

// Factories implemented in the per-category translation units.
std::vector<WorkloadPtr> makeComputeApps(Scale scale);
std::vector<WorkloadPtr> makeStencilApps(Scale scale);
std::vector<WorkloadPtr> makeGenomicsApps(Scale scale);
std::vector<WorkloadPtr> makeIterativeGraphApps(Scale scale);
std::vector<WorkloadPtr> makeTraversalGraphApps(Scale scale);

Addr
Workload::nextTextBase()
{
    Addr base = nextText;
    nextText += 0x10000;
    return base;
}

std::vector<WorkloadPtr>
makeDataParallelApps(Scale scale)
{
    std::vector<WorkloadPtr> v;
    for (auto &w : makeComputeApps(scale))
        v.push_back(std::move(w));
    for (auto &w : makeStencilApps(scale))
        v.push_back(std::move(w));
    for (auto &w : makeGenomicsApps(scale))
        v.push_back(std::move(w));
    return v;
}

std::vector<WorkloadPtr>
makeTaskParallelApps(Scale scale)
{
    std::vector<WorkloadPtr> v;
    for (auto &w : makeTraversalGraphApps(scale))
        v.push_back(std::move(w));
    for (auto &w : makeIterativeGraphApps(scale))
        v.push_back(std::move(w));
    return v;
}

namespace
{

/** Every registered factory, in suite order. */
std::vector<WorkloadPtr>
allWorkloads(Scale scale)
{
    std::vector<WorkloadPtr> v;
    for (auto maker : {makeKernels, makeMobileApps, makeDataParallelApps,
                       makeTaskParallelApps}) {
        for (auto &w : maker(scale))
            v.push_back(std::move(w));
    }
    checkUniqueNames(v);
    return v;
}

} // namespace

void
checkUniqueNames(const std::vector<WorkloadPtr> &suite)
{
    std::set<std::string> seen;
    for (const auto &w : suite) {
        if (!seen.insert(w->name()).second) {
            fatal("duplicate workload name '%s': two registered factories "
                  "produce it; rename one (names key sweep journals, "
                  "result caches and checkpoint farms)",
                  w->name().c_str());
        }
    }
}

WorkloadPtr
makeWorkload(const std::string &name, Scale scale)
{
    for (auto &w : allWorkloads(scale))
        if (w->name() == name)
            return std::move(w);
    return nullptr;
}

std::vector<std::string>
allWorkloadNames()
{
    std::vector<std::string> names;
    for (auto &w : allWorkloads(Scale::tiny))
        names.push_back(w->name());
    return names;
}

} // namespace bvl
