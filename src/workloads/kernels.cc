/**
 * @file
 * The three kernels of Table IV: vvadd, saxpy and mmult. Each builds
 * a scalar and a stripmined vector program parameterized by an
 * element (or row) range in x10/x11, so the serial run and every
 * work-stealing chunk share the same code.
 */

#include "workloads/common.hh"

namespace bvl
{

namespace
{

// ------------------------------------------------------------------
// vvadd: c[i] = a[i] + b[i] (int32)
// ------------------------------------------------------------------

class VvaddWorkload : public WorkloadBase
{
  public:
    explicit VvaddWorkload(Scale scale)
    {
        n = scale == Scale::tiny ? 512 :
            scale == Scale::small ? 16384 : 65536;
    }

    std::string name() const override { return "vvadd"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        Rng rng(1);
        for (std::uint64_t i = 0; i < n; ++i) {
            auto av = static_cast<std::int32_t>(rng.below(1000));
            auto bv = static_cast<std::int32_t>(rng.below(1000));
            mem.writeT<std::int32_t>(regionA + 4 * i, av);
            mem.writeT<std::int32_t>(regionB + 4 * i, bv);
        }
    }

    ProgramPtr
    scalarProgram() override
    {
        if (scalarProg)
            return scalarProg;
        // Pointer-increment loop (what a compiler emits after
        // strength reduction): pa/pb/pc walk, end-pointer compare.
        Asm a("vvadd.scalar");
        a.li(xreg(2), regionA).li(xreg(3), regionB).li(xreg(4), regionC)
         .slli(xreg(6), xreg(10), 2)
         .add(xreg(2), xreg(2), xreg(6))
         .add(xreg(3), xreg(3), xreg(6))
         .add(xreg(4), xreg(4), xreg(6))
         .slli(xreg(7), xreg(11), 2)
         .li(xreg(5), regionA)
         .add(xreg(7), xreg(7), xreg(5))       // end = &a[x11]
         .bge(xreg(2), xreg(7), "done")
         .label("loop")
         .lw(xreg(8), xreg(2))
         .lw(xreg(9), xreg(3))
         .add(xreg(8), xreg(8), xreg(9))
         .sw(xreg(8), xreg(4))
         .addi(xreg(2), xreg(2), 4)
         .addi(xreg(3), xreg(3), 4)
         .addi(xreg(4), xreg(4), 4)
         .blt(xreg(2), xreg(7), "loop")
         .label("done")
         .halt();
        return scalarProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vectorProg)
            return vectorProg;
        Asm a("vvadd.vector");
        a.li(xreg(2), regionA).li(xreg(3), regionB).li(xreg(4), regionC);
        emitStripmineLoop(a, 4, "loop", [&] {
            a.slli(xreg(28), xreg(14), 2)
             .add(xreg(29), xreg(2), xreg(28))
             .vle(vreg(1), xreg(29), 4)
             .add(xreg(29), xreg(3), xreg(28))
             .vle(vreg(2), xreg(29), 4)
             .vv(Op::vadd, vreg(3), vreg(1), vreg(2))
             .add(xreg(29), xreg(4), xreg(28))
             .vse(vreg(3), xreg(29), 4);
        });
        a.halt();
        return vectorProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), n}};
    }

    TaskGraph
    taskGraph() override
    {
        return rangeChunks(scalarProgram(), vectorProgram(), n,
                           defaultChunks);
    }

    bool
    verify(const BackingStore &mem) const override
    {
        Rng rng(1);
        for (std::uint64_t i = 0; i < n; ++i) {
            auto av = static_cast<std::int32_t>(rng.below(1000));
            auto bv = static_cast<std::int32_t>(rng.below(1000));
            if (mem.readT<std::int32_t>(regionC + 4 * i) != av + bv)
                return false;
        }
        return true;
    }

  private:
    std::uint64_t n;
    ProgramPtr scalarProg, vectorProg;
};

// ------------------------------------------------------------------
// saxpy: y[i] = a * x[i] + y[i] (float)
// ------------------------------------------------------------------

class SaxpyWorkload : public WorkloadBase
{
  public:
    explicit SaxpyWorkload(Scale scale)
    {
        n = scale == Scale::tiny ? 512 :
            scale == Scale::small ? 16384 : 65536;
    }

    std::string name() const override { return "saxpy"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            mem.writeT<float>(regionA + 4 * i, 0.5f * i);
            mem.writeT<float>(regionB + 4 * i, 100.0f - 0.25f * i);
        }
    }

    ProgramPtr
    scalarProgram() override
    {
        if (scalarProg)
            return scalarProg;
        Asm a("saxpy.scalar");
        a.li(xreg(2), regionA).li(xreg(3), regionB);
        emitFloatConst(a, freg(1), xreg(28), alpha);
        a.slli(xreg(6), xreg(10), 2)
         .add(xreg(2), xreg(2), xreg(6))
         .add(xreg(3), xreg(3), xreg(6))
         .slli(xreg(7), xreg(11), 2)
         .li(xreg(5), regionA)
         .add(xreg(7), xreg(7), xreg(5))       // end = &x[x11]
         .bge(xreg(2), xreg(7), "done")
         .label("loop")
         .flw(freg(2), xreg(2))
         .flw(freg(3), xreg(3))
         .fmadd(freg(3), freg(1), freg(2), freg(3), 4)
         .fsw(freg(3), xreg(3))
         .addi(xreg(2), xreg(2), 4)
         .addi(xreg(3), xreg(3), 4)
         .blt(xreg(2), xreg(7), "loop")
         .label("done")
         .halt();
        return scalarProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vectorProg)
            return vectorProg;
        Asm a("saxpy.vector");
        a.li(xreg(2), regionA).li(xreg(3), regionB);
        emitFloatConst(a, freg(1), xreg(28), alpha);
        emitStripmineLoop(a, 4, "loop", [&] {
            a.slli(xreg(28), xreg(14), 2)
             .add(xreg(29), xreg(2), xreg(28))
             .vle(vreg(1), xreg(29), 4)
             .add(xreg(30), xreg(3), xreg(28))
             .vle(vreg(2), xreg(30), 4)
             .vf(Op::vfmacc, vreg(2), vreg(1), freg(1))
             .vse(vreg(2), xreg(30), 4);
        });
        a.halt();
        return vectorProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), n}};
    }

    TaskGraph
    taskGraph() override
    {
        return rangeChunks(scalarProgram(), vectorProgram(), n,
                           defaultChunks);
    }

    bool
    verify(const BackingStore &mem) const override
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            float x = 0.5f * i;
            float y = 100.0f - 0.25f * i;
            float want = alpha * x + y;
            if (!closeEnough(mem.readT<float>(regionB + 4 * i), want))
                return false;
        }
        return true;
    }

  private:
    static constexpr float alpha = 2.5f;
    std::uint64_t n;
    ProgramPtr scalarProg, vectorProg;
};

// ------------------------------------------------------------------
// mmult: C = A * B (float, square, row range parallelized)
// ------------------------------------------------------------------

class MmultWorkload : public WorkloadBase
{
  public:
    explicit MmultWorkload(Scale scale)
    {
        dim = scale == Scale::tiny ? 16 :
              scale == Scale::small ? 48 : 96;
    }

    std::string name() const override { return "mmult"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        for (unsigned i = 0; i < dim; ++i) {
            for (unsigned j = 0; j < dim; ++j) {
                mem.writeT<float>(addrOf(regionA, i, j),
                                  0.01f * ((i * 7 + j) % 32));
                mem.writeT<float>(addrOf(regionB, i, j),
                                  0.02f * ((i * 3 + j) % 16));
                mem.writeT<float>(addrOf(regionC, i, j), 0.0f);
            }
        }
    }

    ProgramPtr
    scalarProgram() override
    {
        if (scalarProg)
            return scalarProg;
        // for i in [x10, x11): for j: acc = 0; for k: acc += A[i][k]*B[k][j]
        Asm a("mmult.scalar");
        a.li(xreg(2), regionA).li(xreg(3), regionB).li(xreg(4), regionC)
         .li(xreg(9), dim)
         .mv(xreg(5), xreg(10))              // i
         .label("iloop")
         .li(xreg(6), 0)                     // j
         .label("jloop")
         .li(xreg(7), 0)                     // k
         .li(xreg(28), 0)
         .fmv_f_x(freg(1), xreg(28))         // acc = 0
         .label("kloop")
         // A[i][k]
         .mul(xreg(29), xreg(5), xreg(9))
         .add(xreg(29), xreg(29), xreg(7))
         .slli(xreg(29), xreg(29), 2)
         .add(xreg(29), xreg(29), xreg(2))
         .flw(freg(2), xreg(29))
         // B[k][j]
         .mul(xreg(30), xreg(7), xreg(9))
         .add(xreg(30), xreg(30), xreg(6))
         .slli(xreg(30), xreg(30), 2)
         .add(xreg(30), xreg(30), xreg(3))
         .flw(freg(3), xreg(30))
         .fmadd(freg(1), freg(2), freg(3), freg(1), 4)
         .addi(xreg(7), xreg(7), 1)
         .blt(xreg(7), xreg(9), "kloop")
         // C[i][j] = acc
         .mul(xreg(29), xreg(5), xreg(9))
         .add(xreg(29), xreg(29), xreg(6))
         .slli(xreg(29), xreg(29), 2)
         .add(xreg(29), xreg(29), xreg(4))
         .fsw(freg(1), xreg(29))
         .addi(xreg(6), xreg(6), 1)
         .blt(xreg(6), xreg(9), "jloop")
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), "iloop")
         .halt();
        return scalarProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vectorProg)
            return vectorProg;
        // for i in [x10, x11):
        //   for k:
        //     f1 = A[i][k]
        //     stripmine j: C[i][j..] += f1 * B[k][j..]
        Asm a("mmult.vector");
        a.li(xreg(2), regionA).li(xreg(3), regionB).li(xreg(4), regionC)
         .li(xreg(9), dim)
         .mv(xreg(5), xreg(10))              // i
         .label("iloop")
         .li(xreg(7), 0)                     // k
         .label("kloop")
         // f1 = A[i][k]
         .mul(xreg(29), xreg(5), xreg(9))
         .add(xreg(29), xreg(29), xreg(7))
         .slli(xreg(29), xreg(29), 2)
         .add(xreg(29), xreg(29), xreg(2))
         .flw(freg(1), xreg(29))
         // row bases: x30 = &B[k][0], x31 = &C[i][0]
         .mul(xreg(30), xreg(7), xreg(9))
         .slli(xreg(30), xreg(30), 2)
         .add(xreg(30), xreg(30), xreg(3))
         .mul(xreg(31), xreg(5), xreg(9))
         .slli(xreg(31), xreg(31), 2)
         .add(xreg(31), xreg(31), xreg(4))
         .mv(xreg(12), xreg(9))              // remaining = dim
         .label("jloop")
         .vsetvli(xreg(13), xreg(12), 4)
         .vle(vreg(1), xreg(30), 4)          // B[k][j..]
         .vle(vreg(2), xreg(31), 4)          // C[i][j..]
         .vf(Op::vfmacc, vreg(2), vreg(1), freg(1))
         .vse(vreg(2), xreg(31), 4)
         .slli(xreg(28), xreg(13), 2)
         .add(xreg(30), xreg(30), xreg(28))
         .add(xreg(31), xreg(31), xreg(28))
         .sub(xreg(12), xreg(12), xreg(13))
         .bne(xreg(12), xreg(0), "jloop")
         .addi(xreg(7), xreg(7), 1)
         .blt(xreg(7), xreg(9), "kloop")
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), "iloop")
         .halt();
        return vectorProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), dim}};
    }

    TaskGraph
    taskGraph() override
    {
        return rangeChunks(scalarProgram(), vectorProgram(), dim,
                           std::min<unsigned>(defaultChunks, dim));
    }

    bool
    verify(const BackingStore &mem) const override
    {
        for (unsigned i = 0; i < dim; ++i) {
            for (unsigned j = 0; j < dim; ++j) {
                float acc = 0.0f;
                for (unsigned k = 0; k < dim; ++k) {
                    float av = 0.01f * ((i * 7 + k) % 32);
                    float bv = 0.02f * ((k * 3 + j) % 16);
                    acc = static_cast<float>(
                        static_cast<double>(acc) +
                        static_cast<double>(av) * bv);
                }
                float got = mem.readT<float>(addrOf(regionC, i, j));
                if (!closeEnough(got, acc, 1e-2f))
                    return false;
            }
        }
        return true;
    }

  private:
    Addr
    addrOf(Addr base, unsigned i, unsigned j) const
    {
        return base + 4ull * (i * dim + j);
    }

    unsigned dim;
    ProgramPtr scalarProg, vectorProg;
};

} // namespace

std::vector<WorkloadPtr>
makeKernels(Scale scale)
{
    std::vector<WorkloadPtr> v;
    v.push_back(std::make_unique<VvaddWorkload>(scale));
    v.push_back(std::make_unique<MmultWorkload>(scale));
    v.push_back(std::make_unique<SaxpyWorkload>(scale));
    return v;
}

} // namespace bvl
