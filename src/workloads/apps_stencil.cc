/**
 * @file
 * Memory/stencil-flavoured data-parallel applications of Table V:
 * jacobi-2d (iterative 5-point stencil), pathfinder (row-wise DP with
 * min3), lavamd (neighbour-list n-body force kernel with indexed
 * gathers) and sw (Smith-Waterman local alignment, anti-diagonal
 * vectorization with scalar per-diagonal control).
 */

#include "workloads/common.hh"

namespace bvl
{

namespace
{

// ------------------------------------------------------------------
// jacobi-2d
// ------------------------------------------------------------------

class Jacobi2dWorkload : public WorkloadBase
{
  public:
    explicit Jacobi2dWorkload(Scale scale)
    {
        rows = scale == Scale::tiny ? 16 : 64;
        cols = scale == Scale::tiny ? 64 :
               scale == Scale::small ? 512 : 1024;
    }

    std::string name() const override { return "jacobi-2d"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        for (unsigned i = 0; i < rows; ++i)
            for (unsigned j = 0; j < cols; ++j) {
                float v = cellInit(i, j);
                mem.writeT<float>(addr(regionA, i, j), v);
                mem.writeT<float>(addr(regionB, i, j), v);
            }
    }

    ProgramPtr
    scalarProgram() override
    {
        if (sProg)
            return sProg;
        // Full T iterations with buffer swap; row range in x10/x11.
        Asm a("jacobi2d.scalar");
        a.li(xreg(2), regionA).li(xreg(3), regionB)
         .li(xreg(9), cols)
         .li(xreg(8), iters)
         .li(xreg(7), 0);                 // t
        emitFloatConst(a, freg(9), xreg(28), 0.25f);
        a.label("tloop");
        emitRowLoopScalar(a, "i");
        a.mv(xreg(28), xreg(2))           // swap in/out
         .mv(xreg(2), xreg(3))
         .mv(xreg(3), xreg(28))
         .addi(xreg(7), xreg(7), 1)
         .blt(xreg(7), xreg(8), "tloop")
         .halt();
        return sProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vProg)
            return vProg;
        Asm a("jacobi2d.vector");
        a.li(xreg(2), regionA).li(xreg(3), regionB)
         .li(xreg(9), cols)
         .li(xreg(8), iters)
         .li(xreg(7), 0);
        emitFloatConst(a, freg(9), xreg(28), 0.25f);
        a.label("tloop");
        emitRowLoopVector(a, "i");
        a.mv(xreg(28), xreg(2))
         .mv(xreg(2), xreg(3))
         .mv(xreg(3), xreg(28))
         .addi(xreg(7), xreg(7), 1)
         .blt(xreg(7), xreg(8), "tloop")
         .halt();
        return vProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 1}, {xreg(11), rows - 1}};
    }

    TaskGraph
    taskGraph() override
    {
        // Per-iteration phases; even iterations A->B, odd B->A.
        if (!tEvenS) {
            tEvenS = singleSweep(false, false);
            tEvenV = singleSweep(false, true);
            tOddS = singleSweep(true, false);
            tOddV = singleSweep(true, true);
        }
        TaskGraph g;
        for (unsigned t = 0; t < iters; ++t) {
            auto ph = rangeChunks(t % 2 ? tOddS : tEvenS,
                                  t % 2 ? tOddV : tEvenV, rows - 1, 8);
            // rangeChunks splits [0, rows-1); shift to [1, rows-1).
            Phase phase;
            for (auto &task : ph.phases[0].tasks) {
                if (task.args[1].second <= 1)
                    continue;
                task.args[0].second = std::max<std::uint64_t>(
                    1, task.args[0].second);
                phase.tasks.push_back(task);
            }
            g.phases.push_back(std::move(phase));
        }
        return g;
    }

    bool
    verify(const BackingStore &mem) const override
    {
        std::vector<float> cur(rows * cols), next(rows * cols);
        for (unsigned i = 0; i < rows; ++i)
            for (unsigned j = 0; j < cols; ++j)
                cur[i * cols + j] = next[i * cols + j] = cellInit(i, j);
        for (unsigned t = 0; t < iters; ++t) {
            for (unsigned i = 1; i + 1 < rows; ++i)
                for (unsigned j = 1; j + 1 < cols; ++j)
                    next[i * cols + j] = 0.25f *
                        (cur[(i - 1) * cols + j] + cur[(i + 1) * cols + j] +
                         cur[i * cols + j - 1] + cur[i * cols + j + 1]);
            std::swap(cur, next);
        }
        // iters is even: the final state lives in regionA.
        for (unsigned i = 1; i + 1 < rows; ++i)
            for (unsigned j = 1; j + 1 < cols; ++j) {
                float got = mem.readT<float>(addr(regionA, i, j));
                if (!closeEnough(got, cur[i * cols + j], 1e-2f))
                    return false;
            }
        return true;
    }

  private:
    /** One sweep over rows [x10, x11), src/dst chosen by parity. */
    ProgramPtr
    singleSweep(bool odd, bool vectorized)
    {
        Asm a(std::string("jacobi2d.sweep.") + (odd ? "o" : "e") +
              (vectorized ? ".v" : ".s"));
        a.li(xreg(2), odd ? regionB : regionA)
         .li(xreg(3), odd ? regionA : regionB)
         .li(xreg(9), cols);
        emitFloatConst(a, freg(9), xreg(28), 0.25f);
        if (vectorized)
            emitRowLoopVector(a, "i");
        else
            emitRowLoopScalar(a, "i");
        a.halt();
        return finishProg(a);
    }

    /** Scalar interior sweep of rows [x10, x11); in x2, out x3. */
    void
    emitRowLoopScalar(Asm &a, const std::string &tag)
    {
        a.mv(xreg(5), xreg(10))
         .label(tag + "loop")
         .li(xreg(6), 1)                   // j
         .addi(xreg(29), xreg(9), -1)
         .label(tag + "jloop")
         // base offsets
         .mul(xreg(30), xreg(5), xreg(9))
         .add(xreg(30), xreg(30), xreg(6))
         .slli(xreg(30), xreg(30), 2)
         // up = in[(i-1)*cols + j] -> offset - 4*cols
         .add(xreg(31), xreg(30), xreg(2));
        a.slli(xreg(28), xreg(9), 2)
         .sub(xreg(4), xreg(31), xreg(28))
         .flw(freg(1), xreg(4))            // up
         .add(xreg(4), xreg(31), xreg(28))
         .flw(freg(2), xreg(4))            // down
         .flw(freg(3), xreg(31), -4)       // left
         .flw(freg(4), xreg(31), 4)        // right
         .fadd(freg(1), freg(1), freg(2), 4)
         .fadd(freg(3), freg(3), freg(4), 4)
         .fadd(freg(1), freg(1), freg(3), 4)
         .fmul(freg(1), freg(1), freg(9), 4)
         .add(xreg(4), xreg(30), xreg(3))
         .fsw(freg(1), xreg(4))
         .addi(xreg(6), xreg(6), 1)
         .blt(xreg(6), xreg(29), tag + "jloop")
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), tag + "loop");
    }

    /** Vector interior sweep of rows [x10, x11). */
    void
    emitRowLoopVector(Asm &a, const std::string &tag)
    {
        a.mv(xreg(5), xreg(10))
         .label(tag + "loop")
         // row bases
         .mul(xreg(30), xreg(5), xreg(9))
         .slli(xreg(30), xreg(30), 2)
         .add(xreg(31), xreg(30), xreg(2))   // &in[i][0]
         .add(xreg(4), xreg(30), xreg(3))    // &out[i][0]
         .slli(xreg(28), xreg(9), 2)
         .sub(xreg(6), xreg(31), xreg(28))   // &in[i-1][0]
         .add(xreg(28), xreg(31), xreg(28))  // &in[i+1][0]
         // strip over j in [1, cols-1)
         .addi(xreg(12), xreg(9), -2)        // remaining
         .li(xreg(15), 1)                    // j
         .label(tag + "jstrip")
         .vsetvli(xreg(13), xreg(12), 4)
         .slli(xreg(29), xreg(15), 2);
        a.add(xreg(16), xreg(6), xreg(29))
         .vle(vreg(1), xreg(16), 4)          // up
         .add(xreg(16), xreg(28), xreg(29))
         .vle(vreg(2), xreg(16), 4)          // down
         .add(xreg(16), xreg(31), xreg(29))
         .addi(xreg(16), xreg(16), -4)
         .vle(vreg(3), xreg(16), 4)          // left
         .addi(xreg(16), xreg(16), 8)
         .vle(vreg(4), xreg(16), 4)          // right
         .vv(Op::vfadd, vreg(1), vreg(1), vreg(2))
         .vv(Op::vfadd, vreg(3), vreg(3), vreg(4))
         .vv(Op::vfadd, vreg(1), vreg(1), vreg(3))
         .vf(Op::vfmul, vreg(1), vreg(1), freg(9))
         .add(xreg(16), xreg(4), xreg(29))
         .vse(vreg(1), xreg(16), 4)
         .add(xreg(15), xreg(15), xreg(13))
         .sub(xreg(12), xreg(12), xreg(13))
         .bne(xreg(12), xreg(0), tag + "jstrip")
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), tag + "loop");
    }

    Addr addr(Addr base, unsigned i, unsigned j) const
    { return base + 4ull * (i * cols + j); }
    float cellInit(unsigned i, unsigned j) const
    { return 0.01f * ((i * 31 + j * 7) % 97); }

    static constexpr unsigned iters = 4;
    unsigned rows, cols;
    ProgramPtr sProg, vProg;
    ProgramPtr tEvenS, tEvenV, tOddS, tOddV;
};

// ------------------------------------------------------------------
// pathfinder: DP over grid rows, next[j] = grid[r][j] + min3(prev)
// ------------------------------------------------------------------

class PathfinderWorkload : public WorkloadBase
{
  public:
    explicit PathfinderWorkload(Scale scale)
    {
        rows = scale == Scale::tiny ? 4 : 8;
        cols = scale == Scale::tiny ? 256 :
               scale == Scale::small ? 8192 : 32768;
    }

    std::string name() const override { return "pathfinder"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        for (unsigned r = 0; r < rows; ++r)
            for (unsigned j = 0; j < cols; ++j)
                mem.writeT<std::int32_t>(gridAddr(r, j), gridVal(r, j));
        // DP buffers with one-cell pads on both ends (value huge).
        constexpr std::int32_t big = 1 << 28;
        for (Addr base : {Addr(regionB), Addr(regionC)}) {
            mem.writeT<std::int32_t>(base, big);
            mem.writeT<std::int32_t>(base + 4 * (cols + 1), big);
        }
        for (unsigned j = 0; j < cols; ++j)
            mem.writeT<std::int32_t>(regionB + 4 * (j + 1), 0);
    }

    ProgramPtr
    scalarProgram() override
    {
        if (sProg)
            return sProg;
        Asm a("pathfinder.scalar");
        a.li(xreg(2), regionB + 4)    // prev (cell 0)
         .li(xreg(3), regionC + 4)    // next
         .li(xreg(4), regionA)
         .li(xreg(9), cols)
         .li(xreg(8), rows)
         .li(xreg(7), 0);             // r
        a.label("rloop");
        emitRowScalar(a, "r");
        a.mv(xreg(28), xreg(2))
         .mv(xreg(2), xreg(3))
         .mv(xreg(3), xreg(28))
         .addi(xreg(7), xreg(7), 1)
         .blt(xreg(7), xreg(8), "rloop")
         .halt();
        return sProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vProg)
            return vProg;
        Asm a("pathfinder.vector");
        a.li(xreg(2), regionB + 4)
         .li(xreg(3), regionC + 4)
         .li(xreg(4), regionA)
         .li(xreg(9), cols)
         .li(xreg(8), rows)
         .li(xreg(7), 0);
        a.label("rloop");
        emitRowVector(a, "r");
        a.mv(xreg(28), xreg(2))
         .mv(xreg(2), xreg(3))
         .mv(xreg(3), xreg(28))
         .addi(xreg(7), xreg(7), 1)
         .blt(xreg(7), xreg(8), "rloop")
         .halt();
        return vProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), cols}};
    }

    TaskGraph
    taskGraph() override
    {
        // One phase per DP row; chunks over columns. The row index
        // and buffer direction are baked per phase via x7 args.
        if (!tEvenS) {
            tEvenS = singleRow(false, false);
            tEvenV = singleRow(false, true);
            tOddS = singleRow(true, false);
            tOddV = singleRow(true, true);
        }
        TaskGraph g;
        for (unsigned r = 0; r < rows; ++r) {
            auto ph = rangeChunks(r % 2 ? tOddS : tEvenS,
                                  r % 2 ? tOddV : tEvenV, cols, 8);
            for (auto &task : ph.phases[0].tasks)
                task.args.push_back({xreg(7), r});
            g.phases.push_back(std::move(ph.phases[0]));
        }
        return g;
    }

    bool
    verify(const BackingStore &mem) const override
    {
        std::vector<std::int64_t> prev(cols, 0), next(cols);
        for (unsigned r = 0; r < rows; ++r) {
            for (unsigned j = 0; j < cols; ++j) {
                std::int64_t m = prev[j];
                if (j > 0)
                    m = std::min(m, prev[j - 1]);
                if (j + 1 < cols)
                    m = std::min(m, prev[j + 1]);
                next[j] = gridVal(r, j) + m;
            }
            std::swap(prev, next);
        }
        Addr base = rows % 2 ? regionC + 4 : regionB + 4;
        for (unsigned j = 0; j < cols; ++j) {
            if (mem.readT<std::int32_t>(base + 4 * j) !=
                static_cast<std::int32_t>(prev[j])) {
                return false;
            }
        }
        return true;
    }

  private:
    /** One DP row over columns [x10, x11); row in x7, prev x2, next x3. */
    void
    emitRowScalar(Asm &a, const std::string &tag)
    {
        a.mv(xreg(5), xreg(10))
         .label(tag + "jloop")
         .slli(xreg(6), xreg(5), 2)
         .add(xreg(29), xreg(2), xreg(6))
         .lw(xreg(30), xreg(29), -4)
         .lw(xreg(31), xreg(29), 0)
         .min_(xreg(30), xreg(30), xreg(31))
         .lw(xreg(31), xreg(29), 4)
         .min_(xreg(30), xreg(30), xreg(31))
         // grid[r][j]
         .mul(xreg(29), xreg(7), xreg(9))
         .add(xreg(29), xreg(29), xreg(5))
         .slli(xreg(29), xreg(29), 2)
         .add(xreg(29), xreg(29), xreg(4))
         .lw(xreg(31), xreg(29))
         .add(xreg(30), xreg(30), xreg(31))
         .add(xreg(29), xreg(3), xreg(6))
         .sw(xreg(30), xreg(29))
         .addi(xreg(5), xreg(5), 1)
         .blt(xreg(5), xreg(11), tag + "jloop");
    }

    void
    emitRowVector(Asm &a, const std::string &tag)
    {
        a.sub(xreg(12), xreg(11), xreg(10))
         .mv(xreg(14), xreg(10))
         .label(tag + "jstrip")
         .vsetvli(xreg(13), xreg(12), 4)
         .slli(xreg(29), xreg(14), 2)
         .add(xreg(30), xreg(2), xreg(29))
         .addi(xreg(31), xreg(30), -4)
         .vle(vreg(1), xreg(31), 4)          // prev[j-1]
         .vle(vreg(2), xreg(30), 4)          // prev[j]
         .addi(xreg(31), xreg(30), 4)
         .vle(vreg(3), xreg(31), 4)          // prev[j+1]
         .vv(Op::vmin, vreg(1), vreg(1), vreg(2))
         .vv(Op::vmin, vreg(1), vreg(1), vreg(3))
         // grid row
         .mul(xreg(31), xreg(7), xreg(9))
         .slli(xreg(31), xreg(31), 2)
         .add(xreg(31), xreg(31), xreg(4))
         .add(xreg(31), xreg(31), xreg(29))
         .vle(vreg(2), xreg(31), 4)
         .vv(Op::vadd, vreg(1), vreg(1), vreg(2))
         .add(xreg(31), xreg(3), xreg(29))
         .vse(vreg(1), xreg(31), 4)
         .add(xreg(14), xreg(14), xreg(13))
         .sub(xreg(12), xreg(12), xreg(13))
         .bne(xreg(12), xreg(0), tag + "jstrip");
    }

    ProgramPtr
    singleRow(bool odd, bool vectorized)
    {
        Asm a(std::string("pathfinder.row.") + (odd ? "o" : "e") +
              (vectorized ? ".v" : ".s"));
        a.li(xreg(2), (odd ? regionC : regionB) + 4)
         .li(xreg(3), (odd ? regionB : regionC) + 4)
         .li(xreg(4), regionA)
         .li(xreg(9), cols);
        if (vectorized)
            emitRowVector(a, "r");
        else
            emitRowScalar(a, "r");
        a.halt();
        return finishProg(a);
    }

    Addr gridAddr(unsigned r, unsigned j) const
    { return regionA + 4ull * (r * cols + j); }
    std::int32_t gridVal(unsigned r, unsigned j) const
    { return static_cast<std::int32_t>((r * 131 + j * 17) % 10); }

    unsigned rows, cols;
    ProgramPtr sProg, vProg;
    ProgramPtr tEvenS, tEvenV, tOddS, tOddV;
};

// ------------------------------------------------------------------
// lavamd: neighbour-list force kernel (indexed gathers + FP chain)
// ------------------------------------------------------------------

class LavamdWorkload : public WorkloadBase
{
  public:
    explicit LavamdWorkload(Scale scale)
    {
        n = scale == Scale::tiny ? 128 :
            scale == Scale::small ? 1024 : 4096;
    }

    std::string name() const override { return "lavamd"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            mem.writeT<float>(posAddr(0, i), coord(0, i));
            mem.writeT<float>(posAddr(1, i), coord(1, i));
            mem.writeT<float>(posAddr(2, i), coord(2, i));
            for (unsigned k = 0; k < nb; ++k)
                mem.writeT<std::uint32_t>(
                    idxAddr(k, i),
                    static_cast<std::uint32_t>(neighbor(k, i) * 4));
        }
    }

    ProgramPtr
    scalarProgram() override
    {
        if (sProg)
            return sProg;
        Asm a("lavamd.scalar");
        a.li(xreg(2), posAddr(0, 0))
         .li(xreg(3), posAddr(1, 0))
         .li(xreg(4), posAddr(2, 0))
         .li(xreg(7), regionD)        // idx
         .li(xreg(9), regionC)        // out fx/fy/fz
         .li(xreg(8), n);
        emitScalarRangeLoop(a, xreg(5), "ploop", [&] {
            a.slli(xreg(6), xreg(5), 2)
             .add(xreg(29), xreg(2), xreg(6)).flw(freg(1), xreg(29))
             .add(xreg(29), xreg(3), xreg(6)).flw(freg(2), xreg(29))
             .add(xreg(29), xreg(4), xreg(6)).flw(freg(3), xreg(29))
             .li(xreg(30), 0)
             .fmv_f_x(freg(4), xreg(30))   // fx
             .fmv_f_x(freg(5), xreg(30))   // fy
             .fmv_f_x(freg(6), xreg(30))   // fz
             .li(xreg(31), 0)              // k
             .label("kloop")
             // offset = IDX[k][i]
             .mul(xreg(29), xreg(31), xreg(8))
             .add(xreg(29), xreg(29), xreg(5))
             .slli(xreg(29), xreg(29), 2)
             .add(xreg(29), xreg(29), xreg(7))
             .lw(xreg(30), xreg(29))
             .add(xreg(29), xreg(30), xreg(2)).flw(freg(7), xreg(29))
             .add(xreg(29), xreg(30), xreg(3)).flw(freg(8), xreg(29))
             .add(xreg(29), xreg(30), xreg(4)).flw(freg(9), xreg(29))
             .fsub(freg(7), freg(1), freg(7), 4)   // dx
             .fsub(freg(8), freg(2), freg(8), 4)
             .fsub(freg(9), freg(3), freg(9), 4)
             .fmul(freg(12), freg(7), freg(7), 4)
             .fmadd(freg(12), freg(8), freg(8), freg(12), 4)
             .fmadd(freg(12), freg(9), freg(9), freg(12), 4)
             .fneg(freg(12), freg(12), 4);
            emitScalarExp(a, freg(13), freg(12), freg(14));
            a.fmadd(freg(4), freg(13), freg(7), freg(4), 4)
             .fmadd(freg(5), freg(13), freg(8), freg(5), 4)
             .fmadd(freg(6), freg(13), freg(9), freg(6), 4)
             .addi(xreg(31), xreg(31), 1)
             .slti(xreg(29), xreg(31), nb)
             .bne(xreg(29), xreg(0), "kloop")
             // store forces
             .add(xreg(29), xreg(9), xreg(6)).fsw(freg(4), xreg(29));
            a.li(xreg(30), 4 * n)
             .add(xreg(29), xreg(29), xreg(30)).fsw(freg(5), xreg(29))
             .add(xreg(29), xreg(29), xreg(30)).fsw(freg(6), xreg(29));
        });
        a.halt();
        return sProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vProg)
            return vProg;
        Asm a("lavamd.vector");
        a.li(xreg(2), posAddr(0, 0))
         .li(xreg(3), posAddr(1, 0))
         .li(xreg(4), posAddr(2, 0))
         .li(xreg(7), regionD)
         .li(xreg(9), regionC)
         .li(xreg(8), n);
        emitStripmineLoop(a, 4, "pstrip", [&] {
            a.slli(xreg(29), xreg(14), 2)
             .add(xreg(28), xreg(2), xreg(29)).vle(vreg(1), xreg(28), 4)
             .add(xreg(28), xreg(3), xreg(29)).vle(vreg(2), xreg(28), 4)
             .add(xreg(28), xreg(4), xreg(29)).vle(vreg(3), xreg(28), 4)
             .li(xreg(30), 0)
             .fmv_f_x(freg(1), xreg(30))
             .vmv_vf(vreg(4), freg(1))
             .vmv_vf(vreg(5), freg(1))
             .vmv_vf(vreg(6), freg(1))
             .li(xreg(31), 0)              // k
             .label("kloop")
             // v7 = IDX[k][i..] (byte offsets)
             .mul(xreg(29), xreg(31), xreg(8))
             .add(xreg(29), xreg(29), xreg(14))
             .slli(xreg(29), xreg(29), 2)
             .add(xreg(29), xreg(29), xreg(7))
             .vle(vreg(7), xreg(29), 4)
             .vluxei(vreg(8), xreg(2), vreg(7), 4)     // xj
             .vluxei(vreg(9), xreg(3), vreg(7), 4)     // yj
             .vluxei(vreg(10), xreg(4), vreg(7), 4)    // zj
             .vv(Op::vfsub, vreg(8), vreg(1), vreg(8))
             .vv(Op::vfsub, vreg(9), vreg(2), vreg(9))
             .vv(Op::vfsub, vreg(10), vreg(3), vreg(10))
             .vv(Op::vfmul, vreg(11), vreg(8), vreg(8))
             .vv(Op::vfmacc, vreg(11), vreg(9), vreg(9))
             .vv(Op::vfmacc, vreg(11), vreg(10), vreg(10));
            emitFloatConst(a, freg(1), xreg(28), -1.0f);
            a.vf(Op::vfmul, vreg(11), vreg(11), freg(1));
            emitVecExp(a, vreg(12), vreg(11), vreg(13));
            a.vv(Op::vfmacc, vreg(4), vreg(12), vreg(8))
             .vv(Op::vfmacc, vreg(5), vreg(12), vreg(9))
             .vv(Op::vfmacc, vreg(6), vreg(12), vreg(10))
             .addi(xreg(31), xreg(31), 1)
             .slti(xreg(29), xreg(31), nb)
             .bne(xreg(29), xreg(0), "kloop")
             // store force components
             .slli(xreg(29), xreg(14), 2)
             .add(xreg(28), xreg(9), xreg(29))
             .vse(vreg(4), xreg(28), 4)
             .li(xreg(30), 4 * n)
             .add(xreg(28), xreg(28), xreg(30))
             .vse(vreg(5), xreg(28), 4)
             .add(xreg(28), xreg(28), xreg(30))
             .vse(vreg(6), xreg(28), 4);
        });
        a.halt();
        return vProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), n}};
    }

    TaskGraph
    taskGraph() override
    {
        return rangeChunks(scalarProgram(), vectorProgram(), n,
                           defaultChunks);
    }

    bool
    verify(const BackingStore &mem) const override
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            float fx = 0, fy = 0, fz = 0;
            for (unsigned k = 0; k < nb; ++k) {
                std::uint64_t j = neighbor(k, i);
                float dx = coord(0, i) - coord(0, j);
                float dy = coord(1, i) - coord(1, j);
                float dz = coord(2, i) - coord(2, j);
                float e = hostPolyExp(-(dx * dx + dy * dy + dz * dz));
                fx += e * dx;
                fy += e * dy;
                fz += e * dz;
            }
            if (!closeEnough(mem.readT<float>(regionC + 4 * i), fx,
                             2e-2f) ||
                !closeEnough(mem.readT<float>(regionC + 4 * (n + i)),
                             fy, 2e-2f) ||
                !closeEnough(mem.readT<float>(regionC + 4 * (2 * n + i)),
                             fz, 2e-2f)) {
                return false;
            }
        }
        return true;
    }

  private:
    float coord(unsigned axis, std::uint64_t i) const
    { return 0.001f * ((i * (axis + 3) * 131) % 997); }
    std::uint64_t neighbor(unsigned k, std::uint64_t i) const
    { return (i + 1 + k * 37) % n; }
    Addr posAddr(unsigned axis, std::uint64_t i) const
    { return regionA + 4ull * (axis * n + i); }
    Addr idxAddr(unsigned k, std::uint64_t i) const
    { return regionD + 4ull * (k * n + i); }

    static constexpr unsigned nb = 16;
    std::uint64_t n;
    ProgramPtr sProg, vProg;
};

} // namespace

std::vector<WorkloadPtr>
makeStencilApps(Scale scale)
{
    std::vector<WorkloadPtr> v;
    v.push_back(std::make_unique<Jacobi2dWorkload>(scale));
    v.push_back(std::make_unique<PathfinderWorkload>(scale));
    v.push_back(std::make_unique<LavamdWorkload>(scale));
    return v;
}

} // namespace bvl
