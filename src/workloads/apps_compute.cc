/**
 * @file
 * Compute-centric data-parallel applications of Table V: backprop
 * (forward fully connected layer + sigmoid), kmeans (one assignment
 * iteration), blackscholes (at-the-money option pricing with
 * polynomial exp/CND, see DESIGN.md §5) and particlefilter (weight
 * update, normalization and resampling gather).
 *
 * All programs are range-parameterized (x10/x11) and exist in scalar
 * and stripmined-vector versions built from the same loop structure,
 * mirroring how the paper compiles each app twice (scalar task code
 * for little cores, RVV intrinsics for vector units).
 */

#include "workloads/common.hh"

namespace bvl
{

namespace
{

// ------------------------------------------------------------------
// backprop: out[j] = sigmoid(sum_i in[i] * W[i][j])
// ------------------------------------------------------------------

class BackpropWorkload : public WorkloadBase
{
  public:
    explicit BackpropWorkload(Scale scale)
    {
        ni = scale == Scale::tiny ? 16 : 64;
        no = scale == Scale::tiny ? 128 :
             scale == Scale::small ? 2048 : 8192;
    }

    std::string name() const override { return "backprop"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        for (unsigned i = 0; i < ni; ++i)
            mem.writeT<float>(regionA + 4 * i, inVal(i));
        for (unsigned i = 0; i < ni; ++i)
            for (unsigned j = 0; j < no; ++j)
                mem.writeT<float>(wAddr(i, j), wVal(i, j));
    }

    ProgramPtr
    scalarProgram() override
    {
        if (sProg)
            return sProg;
        Asm a("backprop.scalar");
        a.li(xreg(2), regionA)      // in
         .li(xreg(3), regionB)      // W
         .li(xreg(4), regionC)      // out
         .li(xreg(9), no)
         .li(xreg(8), ni);
        emitScalarRangeLoop(a, xreg(5), "jloop", [&] {
            a.li(xreg(29), 0)
             .fmv_f_x(freg(1), xreg(29))    // acc = 0
             .li(xreg(6), 0)                // i
             .label("iloop")
             .slli(xreg(29), xreg(6), 2)
             .add(xreg(29), xreg(29), xreg(2))
             .flw(freg(2), xreg(29))        // in[i]
             .mul(xreg(30), xreg(6), xreg(9))
             .add(xreg(30), xreg(30), xreg(5))
             .slli(xreg(30), xreg(30), 2)
             .add(xreg(30), xreg(30), xreg(3))
             .flw(freg(3), xreg(30))        // W[i][j]
             .fmadd(freg(1), freg(2), freg(3), freg(1), 4)
             .addi(xreg(6), xreg(6), 1)
             .blt(xreg(6), xreg(8), "iloop");
            emitScalarCnd(a, freg(4), freg(1), freg(5), freg(6));
            a.slli(xreg(29), xreg(5), 2)
             .add(xreg(29), xreg(29), xreg(4))
             .fsw(freg(4), xreg(29));
        });
        a.halt();
        return sProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vProg)
            return vProg;
        Asm a("backprop.vector");
        a.li(xreg(2), regionA)
         .li(xreg(3), regionB)
         .li(xreg(4), regionC)
         .li(xreg(9), no)
         .li(xreg(8), ni);
        emitStripmineLoop(a, 4, "strip", [&] {
            // v3 = 0 accumulator
            a.li(xreg(29), 0)
             .fmv_f_x(freg(1), xreg(29))
             .vmv_vf(vreg(3), freg(1))
             .li(xreg(6), 0)
             .label("iloop")
             // f2 = in[i]
             .slli(xreg(29), xreg(6), 2)
             .add(xreg(29), xreg(29), xreg(2))
             .flw(freg(2), xreg(29))
             // v1 = W[i][j..]
             .mul(xreg(30), xreg(6), xreg(9))
             .add(xreg(30), xreg(30), xreg(14))
             .slli(xreg(30), xreg(30), 2)
             .add(xreg(30), xreg(30), xreg(3))
             .vle(vreg(1), xreg(30), 4)
             .vf(Op::vfmacc, vreg(3), vreg(1), freg(2))
             .addi(xreg(6), xreg(6), 1)
             .blt(xreg(6), xreg(8), "iloop");
            // sigmoid
            emitVecCnd(a, vreg(4), vreg(3), vreg(5), vreg(6));
            a.slli(xreg(29), xreg(14), 2)
             .add(xreg(29), xreg(29), xreg(4))
             .vse(vreg(4), xreg(29), 4);
        });
        a.halt();
        return vProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), no}};
    }

    TaskGraph
    taskGraph() override
    {
        return rangeChunks(scalarProgram(), vectorProgram(), no,
                           defaultChunks);
    }

    bool
    verify(const BackingStore &mem) const override
    {
        for (unsigned j = 0; j < no; ++j) {
            float acc = 0.0f;
            for (unsigned i = 0; i < ni; ++i)
                acc = static_cast<float>(
                    static_cast<double>(acc) +
                    static_cast<double>(inVal(i)) * wVal(i, j));
            float want = hostPolyCnd(acc);
            if (!closeEnough(mem.readT<float>(regionC + 4 * j), want,
                             5e-3f)) {
                return false;
            }
        }
        return true;
    }

  private:
    float inVal(unsigned i) const { return 0.05f * ((i % 16) - 8); }
    float wVal(unsigned i, unsigned j) const
    { return 0.01f * (((i * 13 + j * 7) % 64) - 32); }
    Addr wAddr(unsigned i, unsigned j) const
    { return regionB + 4ull * (i * no + j); }

    unsigned ni, no;
    ProgramPtr sProg, vProg;
};

// ------------------------------------------------------------------
// kmeans: one assignment step over feature-major points
// ------------------------------------------------------------------

class KmeansWorkload : public WorkloadBase
{
  public:
    explicit KmeansWorkload(Scale scale)
    {
        n = scale == Scale::tiny ? 256 :
            scale == Scale::small ? 4096 : 16384;
    }

    std::string name() const override { return "kmeans"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        for (unsigned f = 0; f < d; ++f)
            for (std::uint64_t pnt = 0; pnt < n; ++pnt)
                mem.writeT<float>(fAddr(f, pnt), feat(f, pnt));
        for (unsigned c = 0; c < k; ++c)
            for (unsigned f = 0; f < d; ++f)
                mem.writeT<float>(cAddr(c, f), cent(c, f));
    }

    ProgramPtr
    scalarProgram() override
    {
        if (sProg)
            return sProg;
        Asm a("kmeans.scalar");
        a.li(xreg(2), regionA)      // features
         .li(xreg(3), regionB)      // centroids
         .li(xreg(4), regionC)      // assignment out
         .li(xreg(8), n)
         .li(xreg(9), d);
        emitScalarRangeLoop(a, xreg(5), "ploop", [&] {
            emitFloatConst(a, freg(4), xreg(28), 1e30f);  // bestDist
            a.li(xreg(7), 0);                             // best c
            a.li(xreg(6), 0)                              // c
             .label("cloop")
             .li(xreg(29), 0)
             .fmv_f_x(freg(1), xreg(29))                  // dist
             .li(xreg(30), 0)                             // f
             .label("floop")
             // F[f][p]
             .mul(xreg(29), xreg(30), xreg(8))
             .add(xreg(29), xreg(29), xreg(5))
             .slli(xreg(29), xreg(29), 2)
             .add(xreg(29), xreg(29), xreg(2))
             .flw(freg(2), xreg(29))
             // C[c][f]
             .mul(xreg(29), xreg(6), xreg(9))
             .add(xreg(29), xreg(29), xreg(30))
             .slli(xreg(29), xreg(29), 2)
             .add(xreg(29), xreg(29), xreg(3))
             .flw(freg(3), xreg(29))
             .fsub(freg(2), freg(2), freg(3), 4)
             .fmadd(freg(1), freg(2), freg(2), freg(1), 4)
             .addi(xreg(30), xreg(30), 1)
             .blt(xreg(30), xreg(9), "floop")
             // if (dist < best) { best = dist; bestc = c; }
             .flt(xreg(29), freg(1), freg(4), 4)
             .beq(xreg(29), xreg(0), "skip")
             .fmv_x_f(xreg(29), freg(1))
             .fmv_f_x(freg(4), xreg(29))            // bestDist = dist
             .mv(xreg(7), xreg(6))
             .label("skip")
             .addi(xreg(6), xreg(6), 1)
             .slti(xreg(29), xreg(6), k)
             .bne(xreg(29), xreg(0), "cloop")
             // out[p] = bestc
             .slli(xreg(29), xreg(5), 2)
             .add(xreg(29), xreg(29), xreg(4))
             .sw(xreg(7), xreg(29));
        });
        a.halt();
        return sProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vProg)
            return vProg;
        Asm a("kmeans.vector");
        a.li(xreg(2), regionA)
         .li(xreg(3), regionB)
         .li(xreg(4), regionC)
         .li(xreg(8), n)
         .li(xreg(9), d);
        emitStripmineLoop(a, 4, "strip", [&] {
            emitFloatConst(a, freg(4), xreg(28), 1e30f);
            a.vmv_vf(vreg(5), freg(4))          // vBestDist
             .vi(Op::vmv, vreg(6), regIdInvalid, 0)  // vBest
             .li(xreg(6), 0)                    // c
             .label("cloop")
             .li(xreg(29), 0)
             .fmv_f_x(freg(1), xreg(29))
             .vmv_vf(vreg(4), freg(1))          // vDist = 0
             .li(xreg(30), 0)                   // f
             .label("floop")
             // v1 = F[f][p..]
             .mul(xreg(29), xreg(30), xreg(8))
             .add(xreg(29), xreg(29), xreg(14))
             .slli(xreg(29), xreg(29), 2)
             .add(xreg(29), xreg(29), xreg(2))
             .vle(vreg(1), xreg(29), 4)
             // f3 = C[c][f]
             .mul(xreg(29), xreg(6), xreg(9))
             .add(xreg(29), xreg(29), xreg(30))
             .slli(xreg(29), xreg(29), 2)
             .add(xreg(29), xreg(29), xreg(3))
             .flw(freg(3), xreg(29))
             // diff and accumulate
             .vf(Op::vfsub, vreg(2), vreg(1), freg(3))
             .vv(Op::vfmacc, vreg(4), vreg(2), vreg(2))
             .addi(xreg(30), xreg(30), 1)
             .blt(xreg(30), xreg(9), "floop")
             // merge argmin
             .vv(Op::vmflt, vreg(0), vreg(4), vreg(5))
             .vmerge_vx(vreg(6), xreg(6), vreg(6))
             .vv(Op::vmerge, vreg(5), vreg(4), vreg(5))
             .addi(xreg(6), xreg(6), 1)
             .slti(xreg(29), xreg(6), k)
             .bne(xreg(29), xreg(0), "cloop")
             // store assignments
             .slli(xreg(29), xreg(14), 2)
             .add(xreg(29), xreg(29), xreg(4))
             .vse(vreg(6), xreg(29), 4);
        });
        a.halt();
        return vProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), n}};
    }

    TaskGraph
    taskGraph() override
    {
        return rangeChunks(scalarProgram(), vectorProgram(), n,
                           defaultChunks);
    }

    bool
    verify(const BackingStore &mem) const override
    {
        for (std::uint64_t pnt = 0; pnt < n; ++pnt) {
            auto got = mem.readT<std::int32_t>(regionC + 4 * pnt);
            if (got < 0 || got >= static_cast<std::int32_t>(k))
                return false;
            // Accept any cluster whose distance is within epsilon of
            // the true minimum (FP rounding may flip exact ties).
            float best = 1e30f;
            for (unsigned c = 0; c < k; ++c)
                best = std::min(best, dist(c, pnt));
            if (dist(static_cast<unsigned>(got), pnt) >
                best * (1.0f + 1e-4f) + 1e-5f) {
                return false;
            }
        }
        return true;
    }

  private:
    float feat(unsigned f, std::uint64_t pnt) const
    { return 0.1f * ((pnt * 31 + f * 17) % 100); }
    float cent(unsigned c, unsigned f) const
    { return 0.1f * ((c * 41 + f * 23) % 100); }
    float
    dist(unsigned c, std::uint64_t pnt) const
    {
        float acc = 0.0f;
        for (unsigned f = 0; f < d; ++f) {
            float diff = feat(f, pnt) - cent(c, f);
            acc = static_cast<float>(static_cast<double>(acc) +
                                     static_cast<double>(diff) * diff);
        }
        return acc;
    }
    Addr fAddr(unsigned f, std::uint64_t pnt) const
    { return regionA + 4ull * (f * n + pnt); }
    Addr cAddr(unsigned c, unsigned f) const
    { return regionB + 4ull * (c * d + f); }

    static constexpr unsigned d = 8;
    static constexpr unsigned k = 8;
    std::uint64_t n;
    ProgramPtr sProg, vProg;
};

// ------------------------------------------------------------------
// blackscholes: at-the-money call pricing (polynomial exp/CND)
// price = S * CND(d1) - S * exp(-rT) * CND(d2)
// d1 = (r + v^2/2) T / (v sqrt(T)); d2 = d1 - v sqrt(T)
// ------------------------------------------------------------------

class BlackscholesWorkload : public WorkloadBase
{
  public:
    explicit BlackscholesWorkload(Scale scale)
    {
        n = scale == Scale::tiny ? 256 :
            scale == Scale::small ? 4096 : 16384;
    }

    std::string name() const override { return "blackscholes"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            mem.writeT<float>(regionA + 4 * i, sVal(i));
            mem.writeT<float>(regionB + 4 * i, tVal(i));
            mem.writeT<float>(regionC + 4 * i, vVal(i));
        }
    }

    ProgramPtr
    scalarProgram() override
    {
        if (sProg)
            return sProg;
        Asm a("blackscholes.scalar");
        a.li(xreg(2), regionA)   // S
         .li(xreg(3), regionB)   // T
         .li(xreg(4), regionC)   // v
         .li(xreg(9), regionD);  // out
        emitScalarRangeLoop(a, xreg(5), "loop", [&] {
            a.slli(xreg(6), xreg(5), 2)
             .add(xreg(7), xreg(2), xreg(6)).flw(freg(1), xreg(7))  // S
             .add(xreg(7), xreg(3), xreg(6)).flw(freg(2), xreg(7))  // T
             .add(xreg(7), xreg(4), xreg(6)).flw(freg(3), xreg(7)); // v
            // f4 = v*sqrt(T); f5 = (r + v^2/2)*T / f4 = d1
            a.fsqrt(freg(4), freg(2), 4)
             .fmul(freg(4), freg(3), freg(4), 4);
            emitFloatConst(a, freg(6), xreg(28), 0.5f);
            a.fmul(freg(5), freg(3), freg(3), 4)
             .fmul(freg(5), freg(5), freg(6), 4);
            emitFloatConst(a, freg(6), xreg(28), rRate);
            a.fadd(freg(5), freg(5), freg(6), 4)
             .fmul(freg(5), freg(5), freg(2), 4)
             .fdiv(freg(5), freg(5), freg(4), 4)       // d1
             .fsub(freg(7), freg(5), freg(4), 4);      // d2
            // f8 = CND(d1), f9 = CND(d2)
            emitScalarCnd(a, freg(8), freg(5), freg(10), freg(11));
            emitScalarCnd(a, freg(9), freg(7), freg(10), freg(11));
            // f12 = exp(-r T)
            emitFloatConst(a, freg(6), xreg(28), -rRate);
            a.fmul(freg(12), freg(2), freg(6), 4);
            emitScalarExp(a, freg(13), freg(12), freg(10));
            // price = S*cnd1 - S*exp(-rT)*cnd2
            a.fmul(freg(8), freg(1), freg(8), 4)
             .fmul(freg(9), freg(1), freg(9), 4)
             .fmul(freg(9), freg(9), freg(13), 4)
             .fsub(freg(8), freg(8), freg(9), 4)
             .add(xreg(7), xreg(9), xreg(6))
             .fsw(freg(8), xreg(7));
        });
        a.halt();
        return sProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vProg)
            return vProg;
        Asm a("blackscholes.vector");
        a.li(xreg(2), regionA)
         .li(xreg(3), regionB)
         .li(xreg(4), regionC)
         .li(xreg(9), regionD);
        emitStripmineLoop(a, 4, "strip", [&] {
            a.slli(xreg(29), xreg(14), 2)
             .add(xreg(28), xreg(2), xreg(29)).vle(vreg(1), xreg(28), 4)
             .add(xreg(28), xreg(3), xreg(29)).vle(vreg(2), xreg(28), 4)
             .add(xreg(28), xreg(4), xreg(29)).vle(vreg(3), xreg(28), 4);
            // v4 = v*sqrt(T)
            a.vv(Op::vfsqrt, vreg(4), vreg(2))
             .vv(Op::vfmul, vreg(4), vreg(3), vreg(4));
            // v5 = (r + v^2/2)*T / v4 = d1
            a.vv(Op::vfmul, vreg(5), vreg(3), vreg(3));
            emitFloatConst(a, freg(6), xreg(28), 0.5f);
            a.vf(Op::vfmul, vreg(5), vreg(5), freg(6));
            emitFloatConst(a, freg(6), xreg(28), rRate);
            a.vf(Op::vfadd, vreg(5), vreg(5), freg(6))
             .vv(Op::vfmul, vreg(5), vreg(5), vreg(2))
             .vv(Op::vfdiv, vreg(5), vreg(5), vreg(4))
             .vv(Op::vfsub, vreg(7), vreg(5), vreg(4));   // d2
            // CNDs
            emitVecCnd(a, vreg(8), vreg(5), vreg(10), vreg(11));
            emitVecCnd(a, vreg(9), vreg(7), vreg(10), vreg(11));
            // v12 = exp(-r T)
            emitFloatConst(a, freg(6), xreg(28), -rRate);
            a.vf(Op::vfmul, vreg(12), vreg(2), freg(6));
            emitVecExp(a, vreg(13), vreg(12), vreg(10));
            // price
            a.vv(Op::vfmul, vreg(8), vreg(1), vreg(8))
             .vv(Op::vfmul, vreg(9), vreg(1), vreg(9))
             .vv(Op::vfmul, vreg(9), vreg(9), vreg(13))
             .vv(Op::vfsub, vreg(8), vreg(8), vreg(9))
             .slli(xreg(29), xreg(14), 2)
             .add(xreg(28), xreg(9), xreg(29))
             .vse(vreg(8), xreg(28), 4);
        });
        a.halt();
        return vProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), n}};
    }

    TaskGraph
    taskGraph() override
    {
        return rangeChunks(scalarProgram(), vectorProgram(), n,
                           defaultChunks);
    }

    bool
    verify(const BackingStore &mem) const override
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            float S = sVal(i), T = tVal(i), v = vVal(i);
            float vsq = v * std::sqrt(T);
            float d1 = (rRate + 0.5f * v * v) * T / vsq;
            float d2 = d1 - vsq;
            float want = S * hostPolyCnd(d1) -
                         S * hostPolyExp(-rRate * T) * hostPolyCnd(d2);
            if (!closeEnough(mem.readT<float>(regionD + 4 * i), want,
                             2e-2f)) {
                return false;
            }
        }
        return true;
    }

  private:
    static constexpr float rRate = 0.02f;
    float sVal(std::uint64_t i) const { return 50.0f + (i % 50); }
    float tVal(std::uint64_t i) const { return 0.2f + 0.05f * (i % 16); }
    float vVal(std::uint64_t i) const { return 0.2f + 0.02f * (i % 10); }

    std::uint64_t n;
    ProgramPtr sProg, vProg;
};

// ------------------------------------------------------------------
// particlefilter: likelihood update, normalization, resample gather
// ------------------------------------------------------------------

class ParticlefilterWorkload : public WorkloadBase
{
  public:
    explicit ParticlefilterWorkload(Scale scale)
    {
        n = scale == Scale::tiny ? 256 :
            scale == Scale::small ? 4096 : 16384;
    }

    std::string name() const override { return "particlefilter"; }
    bool isDataParallel() const override { return true; }

    void
    init(BackingStore &mem) override
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            mem.writeT<float>(regionA + 4 * i, xVal(i));      // particle
            // Resampling gather indices as byte offsets (the
            // systematic-resampling selection itself is host
            // precomputed; the memory behaviour — an indexed gather
            // across the particle array — is what matters here).
            mem.writeT<std::uint32_t>(
                regionD + 4 * i,
                static_cast<std::uint32_t>(((i * 31 + 7) % n) * 4));
        }
    }

    // Stage emitters shared by scalar/vector whole programs and tasks.
    ProgramPtr
    scalarProgram() override
    {
        if (sProg)
            return sProg;
        Asm a("particlefilter.scalar");
        emitScalarStages(a, true, true, true);
        a.halt();
        return sProg = finishProg(a);
    }

    ProgramPtr
    vectorProgram() override
    {
        if (vProg)
            return vProg;
        Asm a("particlefilter.vector");
        emitVectorStages(a, true, true, true);
        a.halt();
        return vProg = finishProg(a);
    }

    ProgArgs
    fullRangeArgs() const override
    {
        return {{xreg(10), 0}, {xreg(11), n}};
    }

    TaskGraph
    taskGraph() override
    {
        // Phase 1: chunked weight update. Phase 2: one task reduces
        // the weight sum. Phase 3: chunked normalize + resample.
        if (!tUpdateS) {
            {
                Asm a("particlefilter.update.s");
                emitScalarStages(a, true, false, false);
                a.halt();
                tUpdateS = finishProg(a);
            }
            {
                Asm a("particlefilter.update.v");
                emitVectorStages(a, true, false, false);
                a.halt();
                tUpdateV = finishProg(a);
            }
            {
                Asm a("particlefilter.sum.s");
                emitScalarStages(a, false, true, false);
                a.halt();
                tSumS = finishProg(a);
            }
            {
                Asm a("particlefilter.sum.v");
                emitVectorStages(a, false, true, false);
                a.halt();
                tSumV = finishProg(a);
            }
            {
                Asm a("particlefilter.norm.s");
                emitScalarStages(a, false, false, true);
                a.halt();
                tNormS = finishProg(a);
            }
            {
                Asm a("particlefilter.norm.v");
                emitVectorStages(a, false, false, true);
                a.halt();
                tNormV = finishProg(a);
            }
        }
        TaskGraph g;
        g.phases.resize(3);
        auto chunks = rangeChunks(tUpdateS, tUpdateV, n, defaultChunks);
        g.phases[0] = chunks.phases[0];
        Task sum;
        sum.scalar = tSumS;
        sum.vector = tSumV;
        sum.args = {{xreg(10), 0}, {xreg(11), n}};
        g.phases[1].tasks.push_back(sum);
        auto norm = rangeChunks(tNormS, tNormV, n, defaultChunks);
        g.phases[2] = norm.phases[0];
        return g;
    }

    bool
    verify(const BackingStore &mem) const override
    {
        // Recompute reference weights and sum.
        std::vector<float> w(n);
        float sum = 0.0f;
        for (std::uint64_t i = 0; i < n; ++i) {
            float x = xVal(i);
            w[i] = hostPolyExp(-x * x);
            sum += w[i];
        }
        if (!closeEnough(mem.readT<float>(regionE), sum, 1e-2f))
            return false;
        for (std::uint64_t i = 0; i < n; ++i) {
            std::uint64_t src = (i * 31 + 7) % n;
            float want = xVal(src) + w[i] / sum;
            if (!closeEnough(mem.readT<float>(regionC + 4 * i), want,
                             1e-2f)) {
                return false;
            }
        }
        return true;
    }

  private:
    /** w[i] = exp(-x^2); S = sum w; out[i] = x[idx[i]] + w[i]/S */
    void
    emitScalarStages(Asm &a, bool update, bool sum, bool norm)
    {
        a.li(xreg(2), regionA)    // x
         .li(xreg(3), regionB)    // w
         .li(xreg(4), regionC)    // out
         .li(xreg(7), regionD)    // idx (byte offsets)
         .li(xreg(9), regionE);   // scalar sum cell
        if (update) {
            emitScalarRangeLoop(a, xreg(5), "uloop", [&] {
                a.slli(xreg(6), xreg(5), 2)
                 .add(xreg(29), xreg(2), xreg(6))
                 .flw(freg(1), xreg(29))
                 .fmul(freg(2), freg(1), freg(1), 4)
                 .fneg(freg(2), freg(2), 4);
                emitScalarExp(a, freg(3), freg(2), freg(4));
                a.add(xreg(29), xreg(3), xreg(6))
                 .fsw(freg(3), xreg(29));
            });
        }
        if (sum) {
            a.li(xreg(29), 0)
             .fmv_f_x(freg(1), xreg(29));
            emitScalarRangeLoop(a, xreg(5), "sloop", [&] {
                a.slli(xreg(6), xreg(5), 2)
                 .add(xreg(29), xreg(3), xreg(6))
                 .flw(freg(2), xreg(29))
                 .fadd(freg(1), freg(1), freg(2), 4);
            });
            a.fsw(freg(1), xreg(9));
        }
        if (norm) {
            a.flw(freg(4), xreg(9));   // S
            emitScalarRangeLoop(a, xreg(5), "nloop", [&] {
                a.slli(xreg(6), xreg(5), 2)
                 .add(xreg(29), xreg(3), xreg(6))
                 .flw(freg(2), xreg(29))
                 .fdiv(freg(2), freg(2), freg(4), 4)
                 // gather x[idx[i]]
                 .add(xreg(29), xreg(7), xreg(6))
                 .lw(xreg(30), xreg(29))
                 .add(xreg(30), xreg(30), xreg(2))
                 .flw(freg(3), xreg(30))
                 .fadd(freg(2), freg(3), freg(2), 4)
                 .add(xreg(29), xreg(4), xreg(6))
                 .fsw(freg(2), xreg(29));
            });
        }
    }

    void
    emitVectorStages(Asm &a, bool update, bool sum, bool norm)
    {
        a.li(xreg(2), regionA)
         .li(xreg(3), regionB)
         .li(xreg(4), regionC)
         .li(xreg(7), regionD)
         .li(xreg(9), regionE);
        if (update) {
            emitStripmineLoop(a, 4, "ustrip", [&] {
                a.slli(xreg(29), xreg(14), 2)
                 .add(xreg(28), xreg(2), xreg(29))
                 .vle(vreg(1), xreg(28), 4)
                 .vv(Op::vfmul, vreg(2), vreg(1), vreg(1));
                emitFloatConst(a, freg(1), xreg(28), -1.0f);
                a.vf(Op::vfmul, vreg(2), vreg(2), freg(1));
                emitVecExp(a, vreg(3), vreg(2), vreg(4));
                a.slli(xreg(29), xreg(14), 2)
                 .add(xreg(28), xreg(3), xreg(29))
                 .vse(vreg(3), xreg(28), 4);
            });
        }
        if (sum) {
            a.li(xreg(29), 0)
             .fmv_f_x(freg(1), xreg(29))
             .vsetvli(xreg(13), xreg(11), 4)
             .vfmv_s_f(vreg(5), freg(1));   // running sum in v5[0]
            emitStripmineLoop(a, 4, "sstrip", [&] {
                a.slli(xreg(29), xreg(14), 2)
                 .add(xreg(28), xreg(3), xreg(29))
                 .vle(vreg(1), xreg(28), 4)
                 .vv(Op::vfredsum, vreg(5), vreg(5), vreg(1));
            });
            a.vfmv_f_s(freg(1), vreg(5))
             .fsw(freg(1), xreg(9));
        }
        if (norm) {
            a.flw(freg(4), xreg(9));
            emitStripmineLoop(a, 4, "nstrip", [&] {
                a.slli(xreg(29), xreg(14), 2)
                 .add(xreg(28), xreg(3), xreg(29))
                 .vle(vreg(1), xreg(28), 4)
                 .vf(Op::vfdiv, vreg(1), vreg(1), freg(4))
                 // gather x[idx[i]]
                 .add(xreg(28), xreg(7), xreg(29))
                 .vle(vreg(2), xreg(28), 4)
                 .vluxei(vreg(3), xreg(2), vreg(2), 4)
                 .vv(Op::vfadd, vreg(1), vreg(3), vreg(1))
                 .add(xreg(28), xreg(4), xreg(29))
                 .vse(vreg(1), xreg(28), 4);
            });
        }
    }

    float xVal(std::uint64_t i) const
    { return 0.002f * ((i * 13) % 1000) - 1.0f; }

    std::uint64_t n;
    ProgramPtr sProg, vProg;
    ProgramPtr tUpdateS, tUpdateV, tSumS, tSumV, tNormS, tNormV;
};

} // namespace

std::vector<WorkloadPtr>
makeComputeApps(Scale scale)
{
    std::vector<WorkloadPtr> v;
    v.push_back(std::make_unique<BackpropWorkload>(scale));
    v.push_back(std::make_unique<KmeansWorkload>(scale));
    v.push_back(std::make_unique<BlackscholesWorkload>(scale));
    v.push_back(std::make_unique<ParticlefilterWorkload>(scale));
    return v;
}

} // namespace bvl
