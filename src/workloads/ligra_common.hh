/**
 * @file
 * Shared machinery for the Ligra-style task-parallel graph workloads.
 *
 * These apps are the paper's *task-parallel* suite: scalar, irregular,
 * executed through the work-stealing runtime (they are exactly the
 * workloads that do not vectorize well and motivate keeping the
 * little cores as independent scalar cores). Tasks carry only scalar
 * programs; the driver runs the task graph with one worker for the
 * single-core designs.
 *
 * All apps use deterministic pull-style iterations (reads from the
 * previous buffer, writes owned by the destination vertex) so that
 * multi-core execution is race-free and verifiable against the host
 * reference; dynamic iteration counts (convergence, BFS depth) are
 * precomputed by the same host algorithm (DESIGN.md §5).
 */

#ifndef BVL_WORKLOADS_LIGRA_COMMON_HH
#define BVL_WORKLOADS_LIGRA_COMMON_HH

#include "workloads/common.hh"
#include "workloads/graph.hh"

namespace bvl
{

class GraphWorkloadBase : public WorkloadBase
{
  public:
    bool isDataParallel() const override { return false; }

    ProgramPtr scalarProgram() override { return nullptr; }
    ProgramPtr vectorProgram() override { return nullptr; }

    ProgArgs fullRangeArgs() const override { return {}; }

  protected:
    explicit GraphWorkloadBase(Scale scale)
    {
        unsigned n = scale == Scale::tiny ? 256 :
                     scale == Scale::small ? 2048 : 8192;
        unsigned deg = scale == Scale::tiny ? 4 : 8;
        g = HostGraph::random(n, deg);
    }

    static constexpr Addr outOffsBase = regionA;
    static constexpr Addr outTgtsBase = regionA + 0x100000;
    static constexpr Addr inOffsBase = regionA + 0x200000;
    static constexpr Addr inTgtsBase = regionA + 0x300000;

    void
    writeGraph(BackingStore &mem) const
    {
        g.writeTo(mem, outOffsBase, outTgtsBase, inOffsBase, inTgtsBase);
    }

    /** Emit li's for the CSR base registers x2..x5. */
    static void
    emitGraphBases(Asm &a)
    {
        a.li(xreg(2), outOffsBase)
         .li(xreg(3), outTgtsBase)
         .li(xreg(4), inOffsBase)
         .li(xreg(5), inTgtsBase);
    }

    /**
     * Emit `for (v = x10; v < x11; ++v) { body }` with v in x6.
     * Labels are prefixed with @p tag.
     */
    static void
    emitVertexLoop(Asm &a, const std::string &tag,
                   const std::function<void()> &body)
    {
        a.mv(xreg(6), xreg(10));
        a.label(tag + ".vloop");
        body();
        a.addi(xreg(6), xreg(6), 1)
         .blt(xreg(6), xreg(11), tag + ".vloop");
    }

    /**
     * Emit a walk of an edge range: offs/tgts bases in @p offsReg /
     * @p tgtsReg, vertex in x6; neighbour id appears in x22 for each
     * edge. Uses x15 (e), x16 (eEnd), x28 temps.
     */
    static void
    emitEdgeLoop(Asm &a, RegId offsReg, RegId tgtsReg,
                 const std::string &tag,
                 const std::function<void()> &perEdge)
    {
        a.slli(xreg(28), xreg(6), 2)
         .add(xreg(28), xreg(28), offsReg)
         .lw(xreg(15), xreg(28), 0)
         .lw(xreg(16), xreg(28), 4)
         .bge(xreg(15), xreg(16), tag + ".edone")
         .label(tag + ".eloop")
         .slli(xreg(28), xreg(15), 2)
         .add(xreg(28), xreg(28), tgtsReg)
         .lw(xreg(22), xreg(28));
        perEdge();
        a.addi(xreg(15), xreg(15), 1)
         .blt(xreg(15), xreg(16), tag + ".eloop")
         .label(tag + ".edone");
    }

    /** Task graph of one phase chunked over the vertex range. */
    TaskGraph
    vertexPhases(const std::vector<std::pair<ProgramPtr, ProgArgs>>
                     &phasePrograms,
                 unsigned chunks = 8) const
    {
        TaskGraph graph;
        for (const auto &[prog, extraArgs] : phasePrograms) {
            Phase ph;
            std::uint64_t per = (g.n + chunks - 1) / chunks;
            for (std::uint64_t s = 0; s < g.n; s += per) {
                Task t;
                t.scalar = prog;
                t.args = {{xreg(10), s},
                          {xreg(11), std::min<std::uint64_t>(g.n,
                                                             s + per)}};
                for (auto &arg : extraArgs)
                    t.args.push_back(arg);
                ph.tasks.push_back(std::move(t));
            }
            graph.phases.push_back(std::move(ph));
        }
        return graph;
    }

    HostGraph g;
};

} // namespace bvl

#endif // BVL_WORKLOADS_LIGRA_COMMON_HH
