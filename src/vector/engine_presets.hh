/**
 * @file
 * Parameter presets instantiating the three vector machines of the
 * paper's evaluation (Table III) from the one parameterized engine
 * model:
 *
 *  - vlittlePreset(): the big.VLITTLE engine of 1b-4VL — 4 lanes
 *    (reconfigured little cores), 2 chimes, packed 32-bit elements
 *    (512-bit VLEN, 8 simple-int / 4 complex-FP 32-bit ops per cycle),
 *    banked shared L1D, L1I-SRAM load/store data queues, 500-cycle
 *    mode switch;
 *  - integratedVuPreset(): the 1bIV unit — 128-bit VLEN, shares two
 *    big-core pipelines (2 lane-equivalents, 4x 32-bit ops/cycle) and
 *    the big core's L1D port, tiny buffers, no switch cost;
 *  - decoupledVePreset(): the 1bDV Tarantula-style engine — 2048-bit
 *    VLEN, 16x 32-bit lanes, 4 chimes, deep command/data buffers,
 *    high-bandwidth direct L2 path.
 */

#ifndef BVL_VECTOR_ENGINE_PRESETS_HH
#define BVL_VECTOR_ENGINE_PRESETS_HH

#include "core/vlittle_engine.hh"

namespace bvl
{

inline VEngineParams
vlittlePreset()
{
    VEngineParams p;
    p.name = "vlittle";
    p.lanePrefix = "little";
    p.numLanes = 4;
    p.chimes = 2;
    p.packed = true;
    p.cmdQueueDepth = 32;
    p.dataQueueDepth = 8;
    p.laneUopQueueDepth = 4;
    p.vmiuQueueDepth = 16;
    p.loadQueueLines = 16;
    p.storeQueueLines = 16;
    p.storeCamEntries = 8;
    p.switchPenalty = 500;
    p.memPath = VEngineParams::MemPath::bankedL1;
    p.controlsL1Mode = true;
    return p;
}

inline VEngineParams
integratedVuPreset()
{
    VEngineParams p;
    p.name = "ivu";
    p.lanePrefix = "ivu";
    p.numLanes = 2;     // two shared big-core pipelines, 128-bit VLEN
    p.chimes = 1;
    p.packed = true;
    p.cmdQueueDepth = 4;
    p.dataQueueDepth = 2;
    p.laneUopQueueDepth = 2;
    p.vmiuQueueDepth = 4;
    p.loadQueueLines = 4;
    p.storeQueueLines = 4;
    p.storeCamEntries = 4;
    p.switchPenalty = 0;
    p.memPath = VEngineParams::MemPath::bigL1D;
    p.controlsL1Mode = false;
    p.headDispatch = false;   // executes inside the big core pipeline
    return p;
}

inline VEngineParams
decoupledVePreset()
{
    VEngineParams p;
    p.name = "dve";
    p.lanePrefix = "dve";
    p.numLanes = 8;     // 8x 64-bit lanes = 16x 32-bit ops/cycle
    p.chimes = 4;
    p.packed = true;    // 2048-bit VLEN
    p.cmdQueueDepth = 64;
    p.dataQueueDepth = 16;
    p.laneUopQueueDepth = 8;
    p.vmiuQueueDepth = 32;
    p.loadQueueLines = 64;
    p.storeQueueLines = 64;
    p.storeCamEntries = 16;
    p.switchPenalty = 0;
    p.memPath = VEngineParams::MemPath::directL2;
    p.controlsL1Mode = false;
    return p;
}

} // namespace bvl

#endif // BVL_VECTOR_ENGINE_PRESETS_HH
