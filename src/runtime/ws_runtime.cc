#include "runtime/ws_runtime.hh"

#include "sim/watchdog.hh"

namespace bvl
{

WsRuntime::WsRuntime(Soc &soc, RuntimeParams params)
    : soc(soc), p(params), rng(params.seed),
      sPhases(soc.stats.handle("runtime.phases")),
      sSteals(soc.stats.handle("runtime.steals")),
      sPops(soc.stats.handle("runtime.pops")),
      sOverheadCycles(soc.stats.handle("runtime.overheadCycles"))
{}

ClockDomain &
WsRuntime::workerClock(const Worker &worker)
{
    return worker.isBig ? soc.bigClk : soc.littleClk;
}

void
WsRuntime::registerProgress(Watchdog &wd)
{
    wd.addSource("runtime",
                 [this] {
                     return sPops.value() + sSteals.value() +
                            sPhases.value();
                 },
                 [this] { return progressDetail(); });
}

std::string
WsRuntime::progressDetail() const
{
    if (!running)
        return "";
    std::string out = "phase " + std::to_string(phaseIdx) + "/" +
                      std::to_string(graph.phases.size()) +
                      " inFlight " + std::to_string(tasksInFlight) +
                      " pending " + std::to_string(pendingTasks) +
                      " workers";
    for (const auto &w : workers)
        out += " " + std::string(w.isBig ? "b" : "l") +
               (w.idle ? "i" : "r") + std::to_string(w.deque.size());
    return out;
}

void
WsRuntime::run(TaskGraph g, bool useBig,
               unsigned numLittleWorkers, bool bigRunsVector,
               std::function<void()> done)
{
    bvl_assert(!running, "runtime: run() while busy");
    bvl_assert(useBig || numLittleWorkers > 0, "runtime: no workers");
    graph = std::move(g);
    onDone = std::move(done);
    running = true;
    bigVector = bigRunsVector;
    phaseIdx = 0;

    workers.clear();
    if (useBig) {
        Worker w;
        w.isBig = true;
        workers.push_back(w);
    }
    {
        unsigned count = std::min<std::size_t>(numLittleWorkers,
                                               soc.littles.size());
        for (unsigned i = 0; i < count; ++i) {
            Worker w;
            w.isBig = false;
            w.littleIdx = i;
            workers.push_back(w);
        }
    }
    startPhase();
}

void
WsRuntime::startPhase()
{
    if (phaseIdx >= graph.phases.size()) {
        running = false;
        sPhases += phaseIdx;
        if (onDone) {
            auto done = std::move(onDone);
            onDone = nullptr;
            done();
        }
        return;
    }

    const Phase &phase = graph.phases[phaseIdx];
    for (auto &w : workers) {
        w.deque.clear();
        w.idle = true;
    }
    // Round-robin initial distribution (a fork tree reaches a similar
    // spread; stealing corrects any imbalance dynamically).
    pendingTasks = 0;
    for (std::size_t t = 0; t < phase.tasks.size(); ++t) {
        workers[t % workers.size()].deque.push_back(&phase.tasks[t]);
        ++pendingTasks;
    }
    tasksInFlight = 0;

    for (unsigned w = 0; w < workers.size(); ++w)
        schedule(w);
}

const Task *
WsRuntime::trySteal(unsigned thief, unsigned &attempts)
{
    attempts = 0;
    // Bounded random probing: each probe costs stealCost cycles.
    for (unsigned probe = 0; probe < 2 * workers.size(); ++probe) {
        ++attempts;
        unsigned victim =
            static_cast<unsigned>(rng.below(workers.size()));
        if (victim == thief)
            continue;
        auto &vd = workers[victim].deque;
        if (!vd.empty()) {
            const Task *task = vd.back();   // steal from the cold end
            vd.pop_back();
            sSteals++;
            return task;
        }
    }
    return nullptr;
}

void
WsRuntime::schedule(unsigned w)
{
    Worker &worker = workers[w];

    // Pop own deque first.
    if (!worker.deque.empty()) {
        const Task *task = worker.deque.front();
        worker.deque.pop_front();
        worker.idle = false;
        ClockDomain &clk = workerClock(worker);
        sPops++;
        sOverheadCycles += p.popCost;
        clk.scheduleCycles(p.popCost, [this, w, task] {
            runTask(w, task);
        });
        return;
    }

    // Steal.
    unsigned attempts = 0;
    const Task *stolen = trySteal(w, attempts);
    if (stolen) {
        worker.idle = false;
        ClockDomain &clk = workerClock(worker);
        sOverheadCycles += p.stealCost * attempts;
        clk.scheduleCycles(p.stealCost * attempts, [this, w, stolen] {
            runTask(w, stolen);
        });
        return;
    }

    // Nothing to do: idle until the phase barrier.
    worker.idle = true;
    maybePhaseDone();
}

void
WsRuntime::runTask(unsigned w, const Task *task)
{
    Worker &worker = workers[w];
    ++tasksInFlight;
    --pendingTasks;

    auto finished = [this, w] {
        --tasksInFlight;
        schedule(w);
        maybePhaseDone();
    };

    if (worker.isBig) {
        ProgramPtr prog = (bigVector && task->vector) ? task->vector
                                                      : task->scalar;
        soc.big->runProgram(prog, task->args, finished);
    } else {
        soc.littles[worker.littleIdx]->runProgram(task->scalar,
                                                  task->args, finished);
    }
}

void
WsRuntime::maybePhaseDone()
{
    if (!running || phaseEnding || tasksInFlight != 0 ||
        pendingTasks != 0) {
        return;
    }
    for (const auto &w : workers)
        if (!w.deque.empty())
            return;
    // Defer the barrier crossing one cycle so that any schedule()
    // calls still walking the old phase observe a consistent state.
    phaseEnding = true;
    soc.littleClk.scheduleCycles(1, [this] {
        phaseEnding = false;
        ++phaseIdx;
        startPhase();
    });
}

} // namespace bvl
