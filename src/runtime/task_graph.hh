/**
 * @file
 * Task-graph representation consumed by the work-stealing runtime.
 *
 * A workload decomposes into phases separated by barriers (e.g. BFS
 * levels, Jacobi sweeps); each phase holds independent tasks. A task
 * carries a scalar program and, when the workload is vectorizable, a
 * vectorized version of the same computation: the runtime dynamically
 * picks the version matching the core a task lands on, exactly like
 * the paper's 1bIV-4L configuration (Section IV-B).
 */

#ifndef BVL_RUNTIME_TASK_GRAPH_HH
#define BVL_RUNTIME_TASK_GRAPH_HH

#include <vector>

#include "isa/program.hh"
#include "isa/reg.hh"

namespace bvl
{

using ProgArgs = std::vector<std::pair<RegId, std::uint64_t>>;

struct Task
{
    ProgramPtr scalar;    ///< scalar version (little cores / plain big)
    ProgramPtr vector;    ///< vectorized version (big core with a VU)
    ProgArgs args;        ///< argument registers (e.g. range bounds)
};

struct Phase
{
    std::vector<Task> tasks;
};

struct TaskGraph
{
    std::vector<Phase> phases;

    std::size_t
    totalTasks() const
    {
        std::size_t n = 0;
        for (const auto &ph : phases)
            n += ph.tasks.size();
        return n;
    }
};

} // namespace bvl

#endif // BVL_RUNTIME_TASK_GRAPH_HH
