/**
 * @file
 * Work-stealing task runtime model (paper Section IV-B).
 *
 * Models a Cilk/TBB-style random work-stealing scheduler executing a
 * TaskGraph on the simulated cores. Tasks of a phase are distributed
 * round-robin across the participating workers' deques; an idle
 * worker pops its own deque (popCost cycles of scheduler work) or
 * steals from a random victim (stealCost per attempt). Phases are
 * separated by barriers. On a heterogeneous system the big-core
 * worker runs the vectorized version of a task when one exists.
 */

#ifndef BVL_RUNTIME_WS_RUNTIME_HH
#define BVL_RUNTIME_WS_RUNTIME_HH

#include <deque>
#include <functional>

#include "runtime/task_graph.hh"
#include "sim/rng.hh"
#include "soc/soc.hh"

namespace bvl
{

class Watchdog;

struct RuntimeParams
{
    Cycles popCost = 20;      ///< deque pop + task setup
    Cycles stealCost = 100;   ///< one steal attempt (CAS + traffic)
    std::uint64_t seed = 12345;
};

class WsRuntime
{
  public:
    WsRuntime(Soc &soc, RuntimeParams params = {});

    /**
     * Execute @p graph and invoke @p done when the last phase drains.
     * @param useBig       big core participates as a worker
     * @param useLittles   little cores participate as workers
     * @param bigRunsVector big-core worker prefers task.vector
     */
    void run(TaskGraph graph, bool useBig,
             unsigned numLittleWorkers, bool bigRunsVector,
             std::function<void()> done);

    bool busy() const { return running; }

    /**
     * Register the scheduler's heartbeat with a watchdog. The runtime
     * must outlive the watchdog's armed window.
     */
    void registerProgress(Watchdog &wd);

    /** Scheduler occupancy snapshot for deadlock diagnostics. */
    std::string progressDetail() const;

  private:
    struct Worker
    {
        bool isBig = false;
        unsigned littleIdx = 0;
        std::deque<const Task *> deque;
        bool idle = true;
    };

    void startPhase();
    void schedule(unsigned w);
    void runTask(unsigned w, const Task *task);
    const Task *trySteal(unsigned thief, unsigned &attempts);
    void maybePhaseDone();
    ClockDomain &workerClock(const Worker &worker);

    Soc &soc;
    RuntimeParams p;
    Rng rng;
    /** Interned counters (DESIGN.md §11). */
    StatHandle sPhases, sSteals, sPops, sOverheadCycles;

    TaskGraph graph;   ///< owned copy; tasks point into this
    std::function<void()> onDone;
    bool running = false;
    bool bigVector = false;

    std::vector<Worker> workers;
    std::size_t phaseIdx = 0;
    unsigned tasksInFlight = 0;
    unsigned pendingTasks = 0;
    bool phaseEnding = false;
};

} // namespace bvl

#endif // BVL_RUNTIME_WS_RUNTIME_HH
