/**
 * @file
 * Figure 4: speedup over 1L of all seven systems, for the 8
 * task-parallel (Ligra) and 11 data-parallel (kernels + apps)
 * workloads. The paper's headline numbers are the geometric means:
 * 1b-4VL ~1.6x over 1bIV-4L on data-parallel work and 1bIV-4L/1b-4VL
 * ~1.7x over 1bDV on task-parallel work.
 */

#include <cmath>

#include "bench/bench_util.hh"

using namespace bvlbench;

namespace
{

void
runSuite(const char *label, const std::vector<std::string> &names,
         Scale scale, SweepService &pool)
{
    const Design designs[] = {Design::d1b, Design::d1bIV, Design::d1b4L,
                              Design::d1bIV4L, Design::d1bDV,
                              Design::d1b4VL};

    // Submit the whole (workload x design) grid up front; results come
    // back in submission order no matter when each job finishes.
    SweepResults runs(pool);
    for (const auto &name : names) {
        runs.push(Design::d1L, name, scale);
        for (Design d : designs)
            runs.push(d, name, scale);
    }

    std::printf("\n[%s]\n", label);
    std::printf("%-14s", "workload");
    std::printf(" %8s", "1L");
    for (Design d : designs)
        std::printf(" %8s", designName(d));
    std::printf("\n");

    std::vector<double> logsum(6, 0.0);
    std::vector<unsigned> counted(6, 0);
    for (const auto &name : names) {
        auto base = runs.pop();
        std::printf("%-14s %8.2f", name.c_str(), 1.0);
        unsigned i = 0;
        for (Design d : designs) {
            (void)d;
            auto r = runs.pop();
            double speedup = speedupOf(base, r);
            if (speedup > 0.0) {
                logsum[i] += std::log(speedup);
                ++counted[i];
                std::printf(" %8.2f", speedup);
            } else {
                // Failed runs are excluded from the geomean.
                std::printf(" %8s", runStatusName(r.status));
            }
            ++i;
        }
        std::printf("\n");
        std::fflush(stdout);
    }
    std::printf("%-14s %8.2f", "geomean", 1.0);
    for (unsigned i = 0; i < 6; ++i)
        std::printf(" %8.2f",
                    counted[i] ? std::exp(logsum[i] / counted[i]) : 0.0);
    std::printf("\n");
}

} // namespace

int
main()
{
    setVerbose(false);
    Scale scale = chosenScale(Scale::small);
    SweepService pool(benchServiceOptions("fig04_speedup"));
    printHeader("Figure 4: speedup over 1L", scale);
    return finishSweep(pool, [&] {
        runSuite("task-parallel (Ligra)", taskParallelNames(), scale,
                 pool);
        runSuite("data-parallel (kernels + apps)", dataParallelNames(),
                 scale, pool);
    });
}
