/**
 * @file
 * Tables II/III/IV/V for reference: simulated core/memory parameters,
 * the seven evaluated systems, and the workload suite with sizes at
 * each scale.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "vector/engine_presets.hh"

using namespace bvlbench;

namespace
{

void
printEngine(const char *label, const VEngineParams &p)
{
    std::printf("  %-8s lanes=%u chimes=%u packed=%d VLEN=%ub "
                "cmdQ=%u uopQ=%u dataQ=%u vmiuQ=%u ldQ=%u stQ=%u "
                "cam=%u switch=%llucy mem=%s\n",
                label, p.numLanes, p.chimes, p.packed ? 1 : 0,
                p.vlenBits(), p.cmdQueueDepth, p.uopQueueDepth,
                p.dataQueueDepth, p.vmiuQueueDepth, p.loadQueueLines,
                p.storeQueueLines, p.storeCamEntries,
                (unsigned long long)p.switchPenalty,
                p.memPath == VEngineParams::MemPath::bankedL1
                    ? "banked-L1"
                    : p.memPath == VEngineParams::MemPath::bigL1D
                          ? "big-L1D" : "direct-L2");
}

} // namespace

int
main()
{
    std::printf("# Tables II/III: simulated systems\n");
    BigCoreParams bp;
    std::printf("big core: %u-wide fetch/commit, ROB %u, IQ dataflow, "
                "LSQ %u/%u, %u ALU + %u mul/div + %u FP + %u mem "
                "ports, gshare %u-bit\n",
                bp.fetchWidth, bp.robEntries, bp.lsqLoads, bp.lsqStores,
                bp.numIntAlu, bp.numMulDiv, bp.numFp, bp.numMemPorts,
                bp.bpredIndexBits);
    LittleCoreParams lp;
    std::printf("little core: single-issue in-order, LSQ %u, "
                "lat(alu/mul/div/fadd/fmul/fdiv)=%llu/%llu/%llu/%llu/"
                "%llu/%llu\n",
                lp.lsqEntries,
                (unsigned long long)lp.fu.intAlu,
                (unsigned long long)lp.fu.intMul,
                (unsigned long long)lp.fu.intDiv,
                (unsigned long long)lp.fu.fpAdd,
                (unsigned long long)lp.fu.fpMul,
                (unsigned long long)lp.fu.fpDiv);
    MemSystemParams mp;
    std::printf("memory: 32KB 2-way L1I/L1D per little, 64KB 4-way "
                "big L1s, %uKB %u-way shared L2, DRAM %.0fns / "
                "%.1fGB/s\n",
                mp.l2.sizeBytes / 1024, mp.l2.assoc, mp.dram.latencyNs,
                mp.dram.bandwidthGBps);

    std::printf("\nvector engines:\n");
    printEngine("1bIV", integratedVuPreset());
    printEngine("1bDV", decoupledVePreset());
    printEngine("1b-4VL", vlittlePreset());

    std::printf("\n# Tables IV/V: workload suite\n");
    std::printf("data-parallel:");
    for (const auto &n : dataParallelNames())
        std::printf(" %s", n.c_str());
    std::printf("\ntask-parallel:");
    for (const auto &n : taskParallelNames())
        std::printf(" %s", n.c_str());
    std::printf("\n");
    return 0;
}
