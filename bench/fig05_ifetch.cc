/**
 * @file
 * Figure 5: number of instruction-fetch requests to memory for the
 * data-parallel workloads on 1bIV-4L, 1bDV and 1b-4VL, normalized to
 * 1bDV. Long hardware vectors amortize the front end, so 1bDV and
 * 1b-4VL fetch far less than 1bIV-4L's four independently fetching
 * little cores plus its short-vector big core.
 */

#include "bench/bench_util.hh"

using namespace bvlbench;

int
main()
{
    setVerbose(false);
    Scale scale = chosenScale(Scale::small);
    printHeader("Figure 5: instruction fetch requests to memory "
                "(normalized to 1bDV)", scale);

    const Design designs[] = {Design::d1bIV4L, Design::d1bDV,
                              Design::d1b4VL};
    SweepService pool(benchServiceOptions("fig05_ifetch"));
    return finishSweep(pool, [&] {
        SweepResults runs(pool);
        for (const auto &name : dataParallelNames())
            for (Design d : designs)
                runs.push(d, name, scale);

        std::printf("%-14s %10s %10s %10s\n", "workload", "1bIV-4L",
                    "1bDV", "1b-4VL");
        for (const auto &name : dataParallelNames()) {
            double vals[3];
            for (int i = 0; i < 3; ++i)
                vals[i] = static_cast<double>(runs.pop().ifetchReqs);
            double base = vals[1] > 0 ? vals[1] : 1.0;
            std::printf("%-14s %10.2f %10.2f %10.2f\n", name.c_str(),
                        vals[0] / base, vals[1] / base, vals[2] / base);
            std::fflush(stdout);
        }
    });
}
