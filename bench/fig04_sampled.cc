/**
 * @file
 * Figure 4 validation leg: sampled (SMARTS fast-forward) simulation
 * versus full detail on 1b-4VL across the data-parallel suite.
 *
 * For each workload this runs full detail first (ground-truth cycles
 * and dynamic instruction count), then the sampled configuration, and
 * reports per-workload cycle error plus measured wall-clock speedup.
 * Runs are serial and in-process — wall time is std::chrono around
 * runWorkload() itself, so neither process startup nor workload
 * construction (program assembly and host-side reference generation,
 * identical for both modes and not simulation) pollutes a measurement
 * — which is also why this bench does not go through the sweep
 * service.
 *
 * BVL_SAMPLED_OUT=<file> additionally writes the table as JSON
 * (schema "bvl-sampled-validation-v1") for scripts/check_bench.py,
 * which gates the mean cycle error at 3%.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "bench/bench_util.hh"

using namespace bvlbench;

namespace
{

struct SampleConfig
{
    unsigned periods;
    std::uint64_t warmupInsts;
    std::uint64_t detailInsts;
};

/**
 * Tuned per-workload configurations, valid at Scale::medium (the
 * validated scale of EXPERIMENTS.md §"Sampled simulation"). Warmup
 * must comfortably exceed ROB fill (192) so the measurement mark lands
 * in retire-coupled steady state; the gather-heavy workloads (lavamd,
 * sw) get long detailed warmups because fast-forward deliberately
 * leaves the mode-dependent banked L1D cold (DESIGN.md §15) and their
 * vector element traffic misses hurt until it refills; particlefilter
 * is phase-y on top of that and wants many short windows so the
 * sample average sees every phase.
 */
const std::pair<const char *, SampleConfig> kMediumConfigs[] = {
    {"vvadd",          {4, 400,  512}},
    {"mmult",          {8, 400,  1800}},
    {"saxpy",          {4, 400,  500}},
    {"backprop",       {6, 400,  1250}},
    {"kmeans",         {8, 400,  3200}},
    {"blackscholes",   {5, 400,  800}},
    {"particlefilter", {28, 300, 150}},
    {"jacobi-2d",      {6, 400,  1667}},
    {"pathfinder",     {8, 400,  900}},
    {"lavamd",         {4, 1500, 1200}},
    {"sw",             {6, 2000, 1000}},
};

/**
 * Fallback for unknown workloads or non-medium scales: aim for ~12
 * periods of ~1/12th detail coverage each, clamped so short programs
 * still get a few meaningful windows.
 */
SampleConfig
formulaConfig(std::uint64_t totalInsts)
{
    double p = std::round(double(totalInsts) / 12000.0);
    unsigned periods = unsigned(std::min(16.0, std::max(4.0, p)));
    std::uint64_t detail =
        std::max<std::uint64_t>(500, totalInsts / (12 * periods));
    return {periods, 400, detail};
}

SampleConfig
configFor(const std::string &name, Scale scale, std::uint64_t totalInsts)
{
    if (scale == Scale::medium)
        for (const auto &[n, cfg] : kMediumConfigs)
            if (name == n)
                return cfg;
    return formulaConfig(totalInsts);
}

double
wallSeconds(const std::function<void()> &body)
{
    auto t0 = std::chrono::steady_clock::now();
    body();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    setVerbose(false);
    Scale scale = chosenScale(Scale::medium);
    printHeader("Figure 4 validation: sampled vs full detail on 1b-4VL",
                scale);
    std::printf("%-14s %10s %12s %12s %8s %9s %9s %8s\n", "workload",
                "insts", "full_ns", "sampled_ns", "err%", "full_s",
                "sampled_s", "speedup");

    Json rows = Json::array();
    double absErrSum = 0.0, fullWallSum = 0.0, sampledWallSum = 0.0;
    unsigned counted = 0;
    bool failed = false;

    for (const auto &name : dataParallelNames()) {
        auto wl = makeWorkload(name, scale);
        bvl_assert(wl != nullptr, "unknown workload '%s'", name.c_str());
        RunResult full;
        double fullWall = wallSeconds([&] {
            full = checkResult(runWorkload(Design::d1b4VL, *wl));
        });
        if (!usable(full)) {
            failed = true;
            std::printf("%-14s %10s\n", name.c_str(),
                        runStatusName(full.status));
            continue;
        }
        std::uint64_t insts = full.stat("big.fetched");

        SampleConfig cfg = configFor(name, scale, insts);
        std::uint64_t perPeriod = insts / cfg.periods;
        std::uint64_t windowInsts = cfg.warmupInsts + cfg.detailInsts;
        RunOptions opts;
        opts.sampling.periods = cfg.periods;
        opts.sampling.warmupInsts = cfg.warmupInsts;
        opts.sampling.detailInsts = cfg.detailInsts;
        opts.sampling.ffInsts =
            perPeriod > windowInsts ? perPeriod - windowInsts : 0;

        RunResult sampled;
        double sampledWall = wallSeconds([&] {
            sampled = checkResult(runWorkload(Design::d1b4VL, *wl, opts));
        });
        if (!usable(sampled)) {
            failed = true;
            std::printf("%-14s %10llu %12.0f %12s\n", name.c_str(),
                        static_cast<unsigned long long>(insts), full.ns,
                        runStatusName(sampled.status));
            continue;
        }

        double err = (sampled.ns - full.ns) / full.ns;
        double speedup = sampledWall > 0.0 ? fullWall / sampledWall : 0.0;
        std::printf("%-14s %10llu %12.0f %12.0f %+7.2f%% %9.3f %9.3f "
                    "%7.1fx\n",
                    name.c_str(), static_cast<unsigned long long>(insts),
                    full.ns, sampled.ns, err * 100.0, fullWall,
                    sampledWall, speedup);
        std::fflush(stdout);

        absErrSum += std::fabs(err);
        fullWallSum += fullWall;
        sampledWallSum += sampledWall;
        ++counted;

        Json row = Json::object();
        row.set("workload", name);
        row.set("insts", insts);
        row.set("fullNs", full.ns);
        row.set("sampledNs", sampled.ns);
        row.set("error", err);
        row.set("fullWallSec", fullWall);
        row.set("sampledWallSec", sampledWall);
        row.set("speedup", speedup);
        row.set("periods", cfg.periods);
        row.set("warmupInsts", cfg.warmupInsts);
        row.set("detailInsts", cfg.detailInsts);
        row.set("ffInsts", opts.sampling.ffInsts);
        row.set("periodsMeasured",
                sampled.stat("sample.periodsMeasured"));
        rows.push(std::move(row));
    }

    double meanAbsError = counted ? absErrSum / counted : 1.0;
    double aggSpeedup =
        sampledWallSum > 0.0 ? fullWallSum / sampledWallSum : 0.0;
    std::printf("%-14s %10s %12s %12s %+7.2f%% %9.3f %9.3f %7.1fx\n",
                "mean|err|/total", "", "", "", meanAbsError * 100.0,
                fullWallSum, sampledWallSum, aggSpeedup);

    if (const char *out = std::getenv("BVL_SAMPLED_OUT"); out && *out) {
        Json doc = Json::object();
        doc.set("schema", "bvl-sampled-validation-v1");
        doc.set("design", designName(Design::d1b4VL));
        doc.set("scale", scaleName(scale));
        doc.set("rows", std::move(rows));
        doc.set("meanAbsError", meanAbsError);
        doc.set("aggregateSpeedup", aggSpeedup);
        std::ofstream f(out, std::ios::trunc);
        f << doc.dump(2) << "\n";
        if (!f)
            fatal("cannot write %s", out);
    }
    return failed ? 1 : 0;
}
