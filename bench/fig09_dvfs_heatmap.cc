/**
 * @file
 * Figure 9: speedup over 1L (at 1 GHz) of 1bIV-4L and 1b-4VL across
 * all (big V/f) x (little V/f) combinations of Table VII. The paper's
 * observation: for 1b-4VL, boosting the big core barely helps (the
 * engine does the work; the deep command queue tolerates a slow
 * control core) — except for sw, whose scalar per-diagonal control
 * runs on the big core. Uses tiny scale by default (16 combos x 11
 * apps x 2 designs).
 */

#include "bench/bench_util.hh"
#include "power/power_model.hh"

using namespace bvlbench;

namespace
{

void
submitHeatmap(Design design, const std::string &name, Scale scale,
              SweepResults &runs)
{
    for (const auto &b : bigLevels) {
        for (const auto &l : littleLevels) {
            RunOptions opts;
            opts.bigGhz = b.freqGhz;
            opts.littleGhz = l.freqGhz;
            runs.push(design, name, scale, opts);
        }
    }
}

void
printHeatmap(Design design, const std::string &name,
             const RunResult &base, SweepResults &runs)
{
    std::printf("\n%s on %s (speedup over 1L@1GHz)\n", name.c_str(),
                designName(design));
    std::printf("%6s", "");
    for (const auto &l : littleLevels)
        std::printf(" %7s", l.name);
    std::printf("\n");
    for (const auto &b : bigLevels) {
        std::printf("%6s", b.name);
        for (const auto &l : littleLevels) {
            (void)l;
            auto r = runs.pop();
            if (double s = speedupOf(base, r))
                std::printf(" %7.2f", s);
            else
                std::printf(" %7s", runStatusName(r.status));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    Scale scale = chosenScale(Scale::tiny);
    printHeader("Figure 9: V/f scaling heat maps for 1bIV-4L and "
                "1b-4VL", scale);

    SweepService pool(benchServiceOptions("fig09_dvfs_heatmap"));
    return finishSweep(pool, [&] {
        SweepResults runs(pool);
        for (const auto &name : dataParallelNames()) {
            runs.push(Design::d1L, name, scale);
            submitHeatmap(Design::d1bIV4L, name, scale, runs);
            submitHeatmap(Design::d1b4VL, name, scale, runs);
        }
        for (const auto &name : dataParallelNames()) {
            auto base = runs.pop();
            printHeatmap(Design::d1bIV4L, name, base, runs);
            printHeatmap(Design::d1b4VL, name, base, runs);
        }
    });
}
