/**
 * @file
 * Checkpoint-farm demo sweep (DESIGN.md §16): one workload, seven
 * design points, three distinct fast-forward prefixes — 1bIV
 * (VLEN 128), 1bDV (VLEN 2048), and five 1b-4VL VMU queue-depth
 * variants that all share the VLEN-512 prefix.
 *
 * Every cell fast-forwards the common prefix and simulates only the
 * last instructions in detail. Cold (default), each cell pays its own
 * fast-forward; with BVL_CKPT_FARM=1 the farm produces each prefix
 * once and every other cell restores it. stdout is byte-identical
 * either way — only the wall clock moves — which is what
 * scripts/checkpoint_smoke.sh's farm leg measures and asserts.
 */

#include <filesystem>

#include "bench/bench_util.hh"
#include "isa/arch_state.hh"
#include "sim/io/sim_io.hh"
#include "soc/checkpoint_farm.hh"
#include "sweep/service/job_hash.hh"
#include "vector/engine_presets.hh"

using namespace bvlbench;

namespace
{

/**
 * Dynamic instruction count of the workload's vector program at
 * @p vlenBits, measured by a pure functional dry run (the same oracle
 * fast-forward steps through).
 */
std::uint64_t
measureDynamicInsts(const std::string &name, Scale scale,
                    unsigned vlenBits)
{
    auto w = makeWorkload(name, scale);
    bvl_assert(w != nullptr, "unknown workload %s", name.c_str());
    BackingStore mem;
    w->init(mem);
    ArchState arch(vlenBits);
    arch.reset();
    for (const auto &[reg, value] : w->fullRangeArgs()) {
        if (isFReg(reg))
            arch.setF(reg, value);
        else
            arch.setX(reg, value);
    }
    auto prog = w->vectorProgram();
    bvl_assert(prog != nullptr, "%s has no vector program",
               name.c_str());
    return runFunctional(arch, *prog, mem);
}

/**
 * Like measureDynamicInsts(), but in farm mode the count is memoized
 * under the farm directory (it is prefix metadata: a pure function of
 * workload/scale/VLEN/library revision, exactly the coordinates the
 * prefix hash covers). Cold sweeps always pay the dry run — that is
 * the per-cell cost the farm exists to amortize; warm sweeps read the
 * count back and touch no functional execution at all.
 */
std::uint64_t
dynamicInsts(const std::string &name, Scale scale, unsigned vlenBits)
{
    std::string memoPath;
    if (envBool01("BVL_CKPT_FARM", false)) {
        memoPath = CheckpointFarm::defaultDir() + "/counts/" + name +
                   "-" + scaleName(scale) + "-v" +
                   std::to_string(vlenBits) + "-" + kLibraryRevision +
                   ".txt";
        std::string text;
        if (io::readFile("farm_memo.read", memoPath, &text)) {
            // Trust the memo only when it is one complete
            // newline-terminated number: a torn publish leaves a
            // digit *prefix*, which would parse fine and silently
            // fast-forward the wrong number of instructions. An
            // invalid memo is simply re-measured and re-published.
            char *end = nullptr;
            std::uint64_t cached = std::strtoull(text.c_str(), &end,
                                                 10);
            if (cached > 0 && end && end != text.c_str() &&
                end[0] == '\n' && end[1] == '\0')
                return cached;
        }
    }
    std::uint64_t n = measureDynamicInsts(name, scale, vlenBits);
    if (!memoPath.empty()) {
        // Best effort: the memo is a pure accelerator, so a failed
        // publish just means the next cold sweep re-measures.
        auto parent = std::filesystem::path(memoPath).parent_path();
        if (io::mkdirs("farm_memo.mkdir", parent.string()))
            io::writeFileAtomic("farm_memo.store", memoPath,
                                std::to_string(n) + "\n");
    }
    return n;
}

/** Stop the prefix shortly before the halt so a detailed tail runs. */
std::uint64_t
prefixInsts(std::uint64_t dynamic)
{
    return dynamic > 128 ? dynamic - 64 : dynamic / 2;
}

} // namespace

int
main()
{
    setVerbose(false);
    Scale scale = chosenScale(Scale::small);
    const std::string workload = "kmeans";
    printHeader("Checkpoint-farm sweep: 7 design points, 3 shared "
                "fast-forward prefixes", scale);

    // One prefix per distinct flavor/VLEN trajectory.
    std::uint64_t ffIv =
        prefixInsts(dynamicInsts(workload, scale,
                                 integratedVuPreset().vlenBits()));
    std::uint64_t ffDv =
        prefixInsts(dynamicInsts(workload, scale,
                                 decoupledVePreset().vlenBits()));
    std::uint64_t ffVl =
        prefixInsts(dynamicInsts(workload, scale,
                                 vlittlePreset().vlenBits()));

    const unsigned depths[] = {2, 4, 8, 16, 32};

    SweepService pool(benchServiceOptions("sweep_farm"));
    return finishSweep(pool, [&] {
        SweepResults runs(pool);

        RunOptions iv;
        iv.checkpoint.ffInsts = ffIv;
        runs.push(Design::d1bIV, workload, scale, iv);

        RunOptions dv;
        dv.checkpoint.ffInsts = ffDv;
        runs.push(Design::d1bDV, workload, scale, dv);

        for (unsigned d : depths) {
            VEngineParams ep = vlittlePreset();
            ep.loadQueueLines = d;
            ep.storeQueueLines = d;
            RunOptions opts;
            opts.engineOverride = ep;
            opts.checkpoint.ffInsts = ffVl;
            runs.push(Design::d1b4VL, workload, scale, opts);
        }

        std::printf("%-10s %-8s %12s %s\n", "design", "tag", "ns",
                    "verified");
        auto row = [&](const char *tag) {
            auto r = runs.pop();
            if (usable(r))
                std::printf("%-10s %-8s %12.0f %s\n", r.design.c_str(),
                            tag, r.ns, r.verified ? "yes" : "NO");
            else
                std::printf("%-10s %-8s %12s %s\n", r.design.c_str(),
                            tag, runStatusName(r.status), "-");
            std::fflush(stdout);
        };

        row("-");
        row("-");
        for (unsigned d : depths) {
            char tag[16];
            std::snprintf(tag, sizeof(tag), "q%u", d);
            row(tag);
        }
    });
}
