/**
 * @file
 * Figure 8: performance of 1b-4VL as the VMU's per-bank load/store
 * data queues (the re-purposed L1I SRAM FIFOs) grow. Memory-intensive
 * workloads keep improving with deeper buffers: more in-flight lines
 * exploit the banked L1D bandwidth and decouple memory further ahead
 * of compute.
 */

#include "bench/bench_util.hh"
#include "vector/engine_presets.hh"

using namespace bvlbench;

int
main()
{
    setVerbose(false);
    Scale scale = chosenScale(Scale::small);
    printHeader("Figure 8: 1b-4VL speedup over 1L vs VMU data-queue "
                "depth (lines per bank)", scale);

    const unsigned depths[] = {2, 4, 8, 16, 32};
    // The paper highlights the memory-intensive subset.
    const std::vector<std::string> apps = {"vvadd", "saxpy",
                                           "pathfinder", "backprop",
                                           "jacobi-2d", "kmeans"};

    SweepService pool(benchServiceOptions("fig08_buffering"));
    return finishSweep(pool, [&] {
        SweepResults runs(pool);
        for (const auto &name : apps) {
            runs.push(Design::d1L, name, scale);
            for (unsigned d : depths) {
                VEngineParams ep = vlittlePreset();
                ep.loadQueueLines = d;
                ep.storeQueueLines = d;
                RunOptions opts;
                opts.engineOverride = ep;
                runs.push(Design::d1b4VL, name, scale, opts);
            }
        }

        std::printf("%-14s", "workload");
        for (unsigned d : depths)
            std::printf(" %7u", d);
        std::printf("\n");

        for (const auto &name : apps) {
            auto base = runs.pop();
            std::printf("%-14s", name.c_str());
            for (unsigned d : depths) {
                (void)d;
                auto r = runs.pop();
                if (double s = speedupOf(base, r))
                    std::printf(" %7.2f", s);
                else
                    std::printf(" %7s", runStatusName(r.status));
                std::fflush(stdout);
            }
            std::printf("\n");
        }
    });
}
