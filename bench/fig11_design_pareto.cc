/**
 * @file
 * Figure 11: execution time vs estimated power Pareto frontiers for
 * 1b-4L, 1bIV-4L, 1bDV and 1b-4VL across the Table-VII V/f levels.
 * Expected shape: 1b-4VL owns the low-power (<1 W) region; 1bDV only
 * competes above ~1.4 W because its engine burns 1.4x the big core.
 */

#include "bench/bench_util.hh"
#include "power/power_model.hh"

using namespace bvlbench;

int
main()
{
    setVerbose(false);
    Scale scale = chosenScale(Scale::tiny);
    printHeader("Figure 11: per-design Pareto frontiers (time vs "
                "power)", scale);

    const Design designs[] = {Design::d1b4L, Design::d1bIV4L,
                              Design::d1bDV, Design::d1b4VL};

    SweepService pool(benchServiceOptions("fig11_design_pareto"));
    return finishSweep(pool, [&] {
        SweepResults runs(pool);
        for (const auto &name : dataParallelNames()) {
            for (Design d : designs) {
                for (unsigned bi = 0; bi < bigLevels.size(); ++bi) {
                    // 1bDV has no little cluster: big levels only.
                    unsigned lcount = d == Design::d1bDV
                        ? 1u
                        : static_cast<unsigned>(littleLevels.size());
                    for (unsigned li = 0; li < lcount; ++li) {
                        RunOptions opts;
                        opts.bigGhz = bigLevels[bi].freqGhz;
                        opts.littleGhz = littleLevels[li].freqGhz;
                        runs.push(d, name, scale, opts);
                    }
                }
            }
        }

        for (const auto &name : dataParallelNames()) {
            std::printf("\n%s\n", name.c_str());
            for (Design d : designs) {
                std::vector<PerfPowerPoint> points;
                for (unsigned bi = 0; bi < bigLevels.size(); ++bi) {
                    unsigned lcount = d == Design::d1bDV
                        ? 1u
                        : static_cast<unsigned>(littleLevels.size());
                    for (unsigned li = 0; li < lcount; ++li) {
                        auto r = runs.pop();
                        if (!usable(r))
                            continue;   // runChecked already warned
                        points.push_back(
                            {bi, li, r.ns,
                             systemPowerW(d, bigLevels[bi],
                                          littleLevels[li])});
                    }
                }
                std::printf("  %-8s frontier:", designName(d));
                for (const auto &f : paretoFrontier(points))
                    std::printf("  (%.3fW, %.0fns)", f.watts, f.ns);
                std::printf("\n");
                std::fflush(stdout);
            }
        }
    });
}
