/**
 * @file
 * Mobile kernel tier sweep (DESIGN.md §18): the Swan-style kernels
 * (integer IDCT, YCbCr->RGB, separable conv2d, int8 GEMM, byte
 * scanning) across the standard design points, reporting speedup over
 * the scalar big core and the per-kernel VMU access-pattern mix —
 * how many line requests each kernel generated through unit-stride,
 * constant-stride and indexed address generation.
 *
 * Runs go through the sweep service like every other figure bench, so
 * stdout is byte-identical for any BVL_JOBS and the write-ahead
 * journal records each cell for the CI journal gate.
 *
 * BVL_MOBILE_OUT=<file> additionally writes the table as JSON (schema
 * "bvl-mobile-tier-v1") for scripts/check_bench.py --mobile, which
 * gates simulated time and pattern-mix presence against the pinned
 * BENCH_mobile.json baseline.
 */

#include <fstream>

#include "bench/bench_util.hh"

using namespace bvlbench;

namespace
{

/** Stat prefix of the design's vector engine ("" = no engine). */
const char *
enginePrefix(Design d)
{
    switch (d) {
      case Design::d1bIV:
      case Design::d1bIV4L:
        return "ivu.";
      case Design::d1bDV:
        return "dve.";
      case Design::d1b4VL:
        return "vlittle.";
      default:
        return "";
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    Scale scale = chosenScale(Scale::small);
    printHeader("Mobile tier: speedup over 1b and VMU access-pattern "
                "mix", scale);

    const Design base = Design::d1b;
    const Design vec[] = {Design::d1bIV, Design::d1bDV, Design::d1b4VL};

    SweepService pool(benchServiceOptions("fig_mobile"));
    Json rows = Json::array();
    bool failed = false;
    int rc = finishSweep(pool, [&] {
        SweepResults runs(pool);
        for (const auto &name : mobileNames()) {
            runs.push(base, name, scale);
            for (Design d : vec)
                runs.push(d, name, scale);
        }

        std::printf("%-10s %8s %8s %8s   %-7s %9s %9s %9s\n",
                    "workload", "1bIV", "1bDV", "1b-4VL", "design",
                    "unit", "strided", "indexed");
        for (const auto &name : mobileNames()) {
            RunResult b = runs.pop();
            failed |= !usable(b) || !b.verified;
            double sp[3];
            RunResult vr[3];
            for (int i = 0; i < 3; ++i) {
                vr[i] = runs.pop();
                failed |= !usable(vr[i]) || !vr[i].verified;
                sp[i] = speedupOf(b, vr[i]);
            }
            for (int i = 0; i < 3; ++i) {
                std::string pfx = enginePrefix(vec[i]);
                std::uint64_t unit = vr[i].stat(pfx + "unitLines");
                std::uint64_t strided = vr[i].stat(pfx + "stridedLines");
                std::uint64_t indexed = vr[i].stat(pfx + "indexedLines");
                if (i == 0)
                    std::printf("%-10s %7.2fx %7.2fx %7.2fx   ",
                                name.c_str(), sp[0], sp[1], sp[2]);
                else
                    std::printf("%-10s %8s %8s %8s   ", "", "", "", "");
                std::printf("%-7s %9llu %9llu %9llu\n",
                            designName(vec[i]),
                            static_cast<unsigned long long>(unit),
                            static_cast<unsigned long long>(strided),
                            static_cast<unsigned long long>(indexed));
                std::fflush(stdout);

                Json row = Json::object();
                row.set("workload", name);
                row.set("design", designName(vec[i]));
                row.set("ns", vr[i].ns);
                row.set("baseNs", b.ns);
                row.set("speedup", sp[i]);
                row.set("verified", vr[i].verified);
                row.set("unitLines", unit);
                row.set("stridedLines", strided);
                row.set("indexedLines", indexed);
                rows.push(std::move(row));
            }
        }
    });

    if (const char *out = std::getenv("BVL_MOBILE_OUT"); out && *out) {
        Json doc = Json::object();
        doc.set("schema", "bvl-mobile-tier-v1");
        doc.set("scale", scaleName(scale));
        doc.set("rows", std::move(rows));
        std::ofstream f(out, std::ios::trunc);
        f << doc.dump(2) << "\n";
        if (!f)
            fatal("cannot write %s", out);
    }
    return failed ? 1 : rc;
}
