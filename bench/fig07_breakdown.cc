/**
 * @file
 * Figure 7: average execution-time breakdown of the four little cores
 * in 1b-4VL under three engine configurations:
 *   1c    — one chime, no packed-element support (128-bit VLEN)
 *   1c+sw — one chime with 2x32-bit packing (256-bit VLEN)
 *   2c+sw — two chimes with packing (512-bit VLEN, the default)
 * Packing raises utilization; the second chime hides long-latency
 * (FP/mul/memory) micro-ops, cutting raw_llfu/raw_mem stalls.
 */

#include "bench/bench_util.hh"
#include "vector/engine_presets.hh"

using namespace bvlbench;

namespace
{

const char *causes[] = {"busy", "simd", "raw_mem", "raw_llfu", "struct",
                        "xelem", "misc"};

void
runConfig(const char *label, const VEngineParams &ep, Scale scale,
          SweepService &pool)
{
    SweepResults runs(pool);
    for (const auto &name : dataParallelNames()) {
        RunOptions opts;
        opts.engineOverride = ep;
        runs.push(Design::d1b4VL, name, scale, opts);
    }

    std::printf("\n[%s] (VLEN=%u)\n", label, ep.vlenBits());
    std::printf("%-14s", "workload");
    for (auto c : causes)
        std::printf(" %9s", c);
    std::printf("\n");

    for (const auto &name : dataParallelNames()) {
        auto r = runs.pop();

        // Average the four lanes' per-cause cycles; report percent.
        double total = 0.0;
        double sums[7] = {};
        for (unsigned l = 0; l < 4; ++l) {
            std::string pre = "little" + std::to_string(l) + ".stall.";
            for (int c = 0; c < 7; ++c) {
                double v = static_cast<double>(r.stat(pre + causes[c]));
                sums[c] += v;
                total += v;
            }
        }
        std::printf("%-14s", name.c_str());
        for (int c = 0; c < 7; ++c)
            std::printf(" %8.1f%%", total > 0 ? 100.0 * sums[c] / total
                                              : 0.0);
        std::printf("\n");
        std::fflush(stdout);
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    Scale scale = chosenScale(Scale::small);
    printHeader("Figure 7: little-core execution time breakdown in "
                "1b-4VL", scale);

    VEngineParams oneChime = vlittlePreset();
    oneChime.chimes = 1;
    oneChime.packed = false;

    VEngineParams oneChimePacked = vlittlePreset();
    oneChimePacked.chimes = 1;

    SweepService pool(benchServiceOptions("fig07_breakdown"));
    return finishSweep(pool, [&] {
        runConfig("1c", oneChime, scale, pool);
        runConfig("1c+sw", oneChimePacked, scale, pool);
        runConfig("2c+sw", vlittlePreset(), scale, pool);
    });
}
