/**
 * @file
 * Figure 6: number of data requests to memory, normalized to 1bDV.
 * Wide engines fetch whole cache lines per request; 1bIV-4L's scalar
 * little cores and 128-bit integrated unit issue many more, smaller
 * requests.
 */

#include "bench/bench_util.hh"

using namespace bvlbench;

int
main()
{
    setVerbose(false);
    Scale scale = chosenScale(Scale::small);
    printHeader("Figure 6: data requests to memory "
                "(normalized to 1bDV)", scale);

    const Design designs[] = {Design::d1bIV4L, Design::d1bDV,
                              Design::d1b4VL};
    SweepService pool(benchServiceOptions("fig06_dreq"));
    return finishSweep(pool, [&] {
        SweepResults runs(pool);
        for (const auto &name : dataParallelNames())
            for (Design d : designs)
                runs.push(d, name, scale);

        std::printf("%-14s %10s %10s %10s\n", "workload", "1bIV-4L",
                    "1bDV", "1b-4VL");
        for (const auto &name : dataParallelNames()) {
            double vals[3];
            for (int i = 0; i < 3; ++i)
                vals[i] = static_cast<double>(runs.pop().dataReqs);
            double base = vals[1] > 0 ? vals[1] : 1.0;
            std::printf("%-14s %10.2f %10.2f %10.2f\n", name.c_str(),
                        vals[0] / base, vals[1] / base, vals[2] / base);
            std::fflush(stdout);
        }
    });
}
