/**
 * @file
 * Shared helpers for the figure-regeneration benches: scale selection
 * (BVL_SCALE=tiny|small|medium), row printing, and the workload lists
 * of the paper's evaluation (Tables IV/V + Ligra suite).
 *
 * All benches submit their full simulation grid to a SweepRunner and
 * consume the futures in submission order, so stdout is byte-identical
 * for any BVL_JOBS while the independent simulations run concurrently.
 */

#ifndef BVL_BENCH_BENCH_UTIL_HH
#define BVL_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "soc/run_driver.hh"
#include "sweep/sweep_runner.hh"

namespace bvlbench
{

using namespace bvl;

inline Scale
chosenScale(Scale fallback)
{
    const char *env = std::getenv("BVL_SCALE");
    if (!env)
        return fallback;
    if (!std::strcmp(env, "tiny"))
        return Scale::tiny;
    if (!std::strcmp(env, "small"))
        return Scale::small;
    if (!std::strcmp(env, "medium"))
        return Scale::medium;
    fatal("BVL_SCALE must be tiny|small|medium");
}

inline const char *
scaleName(Scale s)
{
    switch (s) {
      case Scale::tiny: return "tiny";
      case Scale::small: return "small";
      case Scale::medium: return "medium";
    }
    return "?";
}

inline std::vector<std::string>
dataParallelNames()
{
    return {"vvadd", "mmult", "saxpy", "backprop", "kmeans",
            "blackscholes", "particlefilter", "jacobi-2d", "pathfinder",
            "lavamd", "sw"};
}

inline std::vector<std::string>
taskParallelNames()
{
    return {"bfs", "bc", "tc", "radii", "components", "pagerank",
            "mis", "kcore"};
}

/**
 * BVL_TRACE_DIR=<dir>: every run the bench launches writes a
 * Perfetto trace to <dir>/<seq>_<design>_<workload>.json. The
 * sequence number is assigned at submission time (single-threaded),
 * so concurrent sweep jobs never share a file and the filenames are
 * stable for any BVL_JOBS.
 */
inline void
applyTraceEnv(RunOptions &opts, Design d, const std::string &name)
{
    const char *dir = std::getenv("BVL_TRACE_DIR");
    if (!dir || !*dir)
        return;
    static unsigned seq = 0;
    opts.trace.path = std::string(dir) + "/" + std::to_string(seq++) +
                      "_" + designName(d) + "_" + name + ".json";
}

/** Report a failed run while consuming sweep results. */
inline RunResult
checkResult(RunResult r)
{
    if (!r.ok())
        warn("%s on %s: %s%s%s", r.workload.c_str(), r.design.c_str(),
             runStatusName(r.status), r.message.empty() ? "" : ": ",
             r.message.c_str());
    return r;
}

/** Run and insist on a finished, verified result. */
inline RunResult
runChecked(Design d, const std::string &name, Scale scale,
           RunOptions opts = {})
{
    applyTraceEnv(opts, d, name);
    return checkResult(runWorkload(d, name, scale, opts));
}

/**
 * Submission-ordered consumer of sweep futures: benches push every
 * run of their grid, then pop results in the same order while
 * printing. Deterministic output regardless of completion order.
 */
class SweepResults
{
  public:
    explicit SweepResults(SweepRunner &pool) : pool(pool) {}

    void
    push(Design d, const std::string &name, Scale scale,
         RunOptions opts = {})
    {
        applyTraceEnv(opts, d, name);
        futures.push_back(pool.submit({d, name, scale, opts}));
    }

    /** Next result in submission order (warns if the run failed). */
    RunResult
    pop()
    {
        bvl_assert(next < futures.size(),
                   "more sweep results consumed than submitted");
        return checkResult(futures[next++].get());
    }

  private:
    SweepRunner &pool;
    std::vector<std::future<RunResult>> futures;
    std::size_t next = 0;
};

/** Can this result be used as the denominator/numerator of a ratio? */
inline bool
usable(const RunResult &r)
{
    return r.ok() && r.ns > 0.0;
}

/** Speedup of @p fast over @p base, or 0.0 if either run failed. */
inline double
speedupOf(const RunResult &base, const RunResult &fast)
{
    if (!usable(base) || !usable(fast))
        return 0.0;
    return base.ns / fast.ns;
}

inline void
printHeader(const char *title, Scale scale)
{
    std::printf("# %s\n# scale=%s (set BVL_SCALE=tiny|small|medium)\n",
                title, scaleName(scale));
}

} // namespace bvlbench

#endif // BVL_BENCH_BENCH_UTIL_HH
