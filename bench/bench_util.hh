/**
 * @file
 * Shared helpers for the figure-regeneration benches: scale selection
 * (BVL_SCALE=tiny|small|medium), row printing, the workload lists of
 * the paper's evaluation (Tables IV/V + Ligra suite), and the
 * crash-safe sweep-service plumbing every bench shares.
 *
 * All benches submit their full simulation grid to a SweepService and
 * consume the futures in submission order, so stdout is byte-identical
 * for any BVL_JOBS — and, because completed jobs replay from the
 * write-ahead journal and result cache, also across kill/resume and
 * warm reruns (DESIGN.md §14). The sweep summary goes to stderr so it
 * never perturbs the figure output.
 */

#ifndef BVL_BENCH_BENCH_UTIL_HH
#define BVL_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "sim/env.hh"
#include "sim/logging.hh"
#include "soc/run_driver.hh"
#include "sweep/service/service.hh"

namespace bvlbench
{

using namespace bvl;

inline Scale
chosenScale(Scale fallback)
{
    switch (envChoice("BVL_SCALE", {"tiny", "small", "medium"}, -1)) {
      case 0: return Scale::tiny;
      case 1: return Scale::small;
      case 2: return Scale::medium;
      default: return fallback;
    }
}

inline const char *
scaleName(Scale s)
{
    switch (s) {
      case Scale::tiny: return "tiny";
      case Scale::small: return "small";
      case Scale::medium: return "medium";
    }
    return "?";
}

inline std::vector<std::string>
dataParallelNames()
{
    return {"vvadd", "mmult", "saxpy", "backprop", "kmeans",
            "blackscholes", "particlefilter", "jacobi-2d", "pathfinder",
            "lavamd", "sw"};
}

inline std::vector<std::string>
taskParallelNames()
{
    return {"bfs", "bc", "tc", "radii", "components", "pagerank",
            "mis", "kcore"};
}

/** The Swan-style mobile kernel tier (DESIGN.md §18). */
inline std::vector<std::string>
mobileNames()
{
    return {"idct8", "ycbcr", "conv2d", "gemm8", "bytescan"};
}

/**
 * BVL_TRACE_DIR=<dir>: every run the bench launches writes a
 * Perfetto trace to <dir>/<seq>_<design>_<workload>.json. The
 * sequence number is assigned at submission time (single-threaded),
 * so concurrent sweep jobs never share a file and the filenames are
 * stable for any BVL_JOBS.
 */
inline void
applyTraceEnv(RunOptions &opts, Design d, const std::string &name)
{
    const char *dir = std::getenv("BVL_TRACE_DIR");
    if (!dir || !*dir)
        return;
    static unsigned seq = 0;
    opts.trace.path = std::string(dir) + "/" + std::to_string(seq++) +
                      "_" + designName(d) + "_" + name + ".json";
}

/**
 * BVL_CKPT_FARM=1: route every fast-forwarded run the bench launches
 * through the shared checkpoint-prefix farm (DESIGN.md §16) instead
 * of a per-cell cold fast-forward. Only applied to runs that already
 * fast-forward (ffInsts > 0) and do not name explicit checkpoint
 * paths; BVL_CKPT_DIR picks the farm directory.
 */
inline void
applyCkptEnv(RunOptions &opts)
{
    if (!envBool01("BVL_CKPT_FARM", false))
        return;
    if (opts.checkpoint.ffInsts == 0 ||
        !opts.checkpoint.savePath.empty() ||
        !opts.checkpoint.restorePath.empty())
        return;
    opts.checkpoint.farm = true;
}

/**
 * Sweep-service configuration shared by every figure bench:
 *
 *  - journal: ${BVL_SWEEP_DIR:-.bvl-sweep}/<bench>.journal.jsonl.
 *    BVL_SWEEP_JOURNAL=0 disables journaling; any other non-"1" value
 *    overrides the journal path verbatim.
 *  - cache: BVL_CACHE_DIR (unset = no cache).
 *  - isolation: BVL_SWEEP_ISOLATE=1 (read by SweepService itself).
 */
inline SweepServiceOptions
benchServiceOptions(const char *benchName)
{
    SweepServiceOptions o;
    const char *j = std::getenv("BVL_SWEEP_JOURNAL");
    if (j && !std::strcmp(j, "0")) {
        // Journaling explicitly off.
    } else if (j && *j && std::strcmp(j, "1") != 0) {
        o.journalPath = j;
    } else {
        const char *dir = std::getenv("BVL_SWEEP_DIR");
        o.journalPath = std::string(dir && *dir ? dir : ".bvl-sweep") +
                        "/" + benchName + ".journal.jsonl";
    }
    if (const char *c = std::getenv("BVL_CACHE_DIR"); c && *c)
        o.cacheDir = c;
    return o;
}

/**
 * Run a bench body under graceful-stop supervision: installs the
 * SIGINT/SIGTERM handlers, translates SweepInterrupted into the
 * distinct resumable exit code (75), and prints the machine-readable
 * sweep summary plus any quarantine records to stderr — stdout stays
 * byte-identical across cold, warm, and kill/resume runs.
 */
inline int
finishSweep(SweepService &svc, const std::function<void()> &body)
{
    SweepService::installSignalHandlers();
    bool interrupted = false;
    try {
        body();
    } catch (const SweepInterrupted &e) {
        interrupted = true;
        std::fprintf(stderr, "bvl-sweep: %s\n", e.what());
    }
    std::fflush(stdout);
    for (const auto &q : svc.quarantined())
        std::fprintf(stderr,
                     "bvl-sweep-quarantined: %s on %s: %s after %u "
                     "attempt(s)%s%s\n",
                     q.workload.c_str(), q.design.c_str(),
                     runStatusName(q.status), q.attempts,
                     q.forensicsPath.empty() ? "" : "; forensics at ",
                     q.forensicsPath.c_str());
    std::fprintf(stderr, "%s\n", svc.summaryLine().c_str());
    return interrupted ? exitResumable : 0;
}

/** Report a failed run while consuming sweep results. */
inline RunResult
checkResult(RunResult r)
{
    if (!r.ok())
        warn("%s on %s: %s%s%s", r.workload.c_str(), r.design.c_str(),
             runStatusName(r.status), r.message.empty() ? "" : ": ",
             r.message.c_str());
    return r;
}

/** Run and insist on a finished, verified result. */
inline RunResult
runChecked(Design d, const std::string &name, Scale scale,
           RunOptions opts = {})
{
    applyTraceEnv(opts, d, name);
    applyCkptEnv(opts);
    return checkResult(runWorkload(d, name, scale, opts));
}

/**
 * Submission-ordered consumer of sweep futures: benches push every
 * run of their grid, then pop results in the same order while
 * printing. Deterministic output regardless of completion order.
 */
class SweepResults
{
  public:
    explicit SweepResults(SweepService &pool) : pool(pool) {}

    void
    push(Design d, const std::string &name, Scale scale,
         RunOptions opts = {})
    {
        applyTraceEnv(opts, d, name);
        applyCkptEnv(opts);
        futures.push_back(pool.submit({d, name, scale, opts}));
    }

    /** Next result in submission order (warns if the run failed). */
    RunResult
    pop()
    {
        bvl_assert(next < futures.size(),
                   "more sweep results consumed than submitted");
        return checkResult(futures[next++].get());
    }

  private:
    SweepService &pool;
    std::vector<std::future<RunResult>> futures;
    std::size_t next = 0;
};

/** Can this result be used as the denominator/numerator of a ratio? */
inline bool
usable(const RunResult &r)
{
    return r.ok() && r.ns > 0.0;
}

/** Speedup of @p fast over @p base, or 0.0 if either run failed. */
inline double
speedupOf(const RunResult &base, const RunResult &fast)
{
    if (!usable(base) || !usable(fast))
        return 0.0;
    return base.ns / fast.ns;
}

inline void
printHeader(const char *title, Scale scale)
{
    std::printf("# %s\n# scale=%s (set BVL_SCALE=tiny|small|medium)\n",
                title, scaleName(scale));
}

} // namespace bvlbench

#endif // BVL_BENCH_BENCH_UTIL_HH
