/**
 * @file
 * Shared helpers for the figure-regeneration benches: scale selection
 * (BVL_SCALE=tiny|small|medium), row printing, and the workload lists
 * of the paper's evaluation (Tables IV/V + Ligra suite).
 */

#ifndef BVL_BENCH_BENCH_UTIL_HH
#define BVL_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "soc/run_driver.hh"

namespace bvlbench
{

using namespace bvl;

inline Scale
chosenScale(Scale fallback)
{
    const char *env = std::getenv("BVL_SCALE");
    if (!env)
        return fallback;
    if (!std::strcmp(env, "tiny"))
        return Scale::tiny;
    if (!std::strcmp(env, "small"))
        return Scale::small;
    if (!std::strcmp(env, "medium"))
        return Scale::medium;
    fatal("BVL_SCALE must be tiny|small|medium");
}

inline const char *
scaleName(Scale s)
{
    switch (s) {
      case Scale::tiny: return "tiny";
      case Scale::small: return "small";
      case Scale::medium: return "medium";
    }
    return "?";
}

inline std::vector<std::string>
dataParallelNames()
{
    return {"vvadd", "mmult", "saxpy", "backprop", "kmeans",
            "blackscholes", "particlefilter", "jacobi-2d", "pathfinder",
            "lavamd", "sw"};
}

inline std::vector<std::string>
taskParallelNames()
{
    return {"bfs", "bc", "tc", "radii", "components", "pagerank",
            "mis", "kcore"};
}

/** Run and insist on a finished, verified result. */
inline RunResult
runChecked(Design d, const std::string &name, Scale scale,
           RunOptions opts = {})
{
    auto r = runWorkload(d, name, scale, opts);
    if (!r.ok())
        warn("%s on %s: %s%s%s", name.c_str(), designName(d),
             runStatusName(r.status), r.message.empty() ? "" : ": ",
             r.message.c_str());
    return r;
}

/** Can this result be used as the denominator/numerator of a ratio? */
inline bool
usable(const RunResult &r)
{
    return r.ok() && r.ns > 0.0;
}

/** Speedup of @p fast over @p base, or 0.0 if either run failed. */
inline double
speedupOf(const RunResult &base, const RunResult &fast)
{
    if (!usable(base) || !usable(fast))
        return 0.0;
    return base.ns / fast.ns;
}

inline void
printHeader(const char *title, Scale scale)
{
    std::printf("# %s\n# scale=%s (set BVL_SCALE=tiny|small|medium)\n",
                title, scaleName(scale));
}

} // namespace bvlbench

#endif // BVL_BENCH_BENCH_UTIL_HH
