/**
 * @file
 * Figure 10: execution time vs estimated average power of 1b-4VL at
 * every Table-VII V/f combination. The paper's point: slowing the
 * big core and boosting the little cores traces the Pareto-optimal
 * curve — the engine does the heavy work, so power is best spent on
 * the little cluster.
 */

#include "bench/bench_util.hh"
#include "power/power_model.hh"

using namespace bvlbench;

int
main()
{
    setVerbose(false);
    Scale scale = chosenScale(Scale::tiny);
    printHeader("Figure 10: 1b-4VL execution time vs power across V/f "
                "combinations", scale);

    SweepService pool(benchServiceOptions("fig10_vf_pareto"));
    return finishSweep(pool, [&] {
        SweepResults runs(pool);
        for (const auto &name : dataParallelNames()) {
            (void)name;
            for (unsigned bi = 0; bi < bigLevels.size(); ++bi) {
                for (unsigned li = 0; li < littleLevels.size(); ++li) {
                    RunOptions opts;
                    opts.bigGhz = bigLevels[bi].freqGhz;
                    opts.littleGhz = littleLevels[li].freqGhz;
                    runs.push(Design::d1b4VL, name, scale, opts);
                }
            }
        }

        for (const auto &name : dataParallelNames()) {
            std::printf("\n%s\n%6s %6s %12s %8s %7s\n", name.c_str(),
                        "big", "little", "time(ns)", "power(W)",
                        "pareto");
            std::vector<PerfPowerPoint> points;
            for (unsigned bi = 0; bi < bigLevels.size(); ++bi) {
                for (unsigned li = 0; li < littleLevels.size(); ++li) {
                    auto r = runs.pop();
                    if (!usable(r)) {
                        // Keep the failed combination off the frontier.
                        std::printf("%6s %6s %12s\n", bigLevels[bi].name,
                                    littleLevels[li].name,
                                    runStatusName(r.status));
                        continue;
                    }
                    points.push_back(
                        {bi, li, r.ns,
                         systemPowerW(Design::d1b4VL, bigLevels[bi],
                                      littleLevels[li])});
                }
            }
            auto frontier = paretoFrontier(points);
            for (const auto &pt : points) {
                bool onFrontier = false;
                for (const auto &f : frontier)
                    if (f.bigLevel == pt.bigLevel &&
                        f.littleLevel == pt.littleLevel) {
                        onFrontier = true;
                    }
                std::printf("%6s %6s %12.0f %8.3f %7s\n",
                            bigLevels[pt.bigLevel].name,
                            littleLevels[pt.littleLevel].name, pt.ns,
                            pt.watts, onFrontier ? "*" : "");
            }
            std::fflush(stdout);
        }
    });
}
