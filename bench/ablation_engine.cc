/**
 * @file
 * Ablations of big.VLITTLE's design choices (beyond the paper's own
 * Figure 7/8 sweeps): contribution of chimes and packing to end
 * performance, VCU command-queue depth (decoupling distance from the
 * big core), lane micro-op queue depth (lock-step slack), and the
 * indexed-coalescing window. Prints 1b-4VL speedup over 1L per
 * configuration.
 */

#include "bench/bench_util.hh"
#include "vector/engine_presets.hh"

using namespace bvlbench;

namespace
{

void
sweep(const char *title,
      const std::vector<std::pair<std::string, VEngineParams>> &configs,
      const std::vector<std::string> &apps, Scale scale,
      SweepService &pool)
{
    SweepResults runs(pool);
    for (const auto &name : apps) {
        runs.push(Design::d1L, name, scale);
        for (const auto &cfg : configs) {
            RunOptions opts;
            opts.engineOverride = cfg.second;
            runs.push(Design::d1b4VL, name, scale, opts);
        }
    }

    std::printf("\n[%s]\n%-14s", title, "workload");
    for (const auto &cfg : configs)
        std::printf(" %9s", cfg.first.c_str());
    std::printf("\n");
    for (const auto &name : apps) {
        auto base = runs.pop();
        std::printf("%-14s", name.c_str());
        for (const auto &cfg : configs) {
            (void)cfg;
            auto r = runs.pop();
            if (double s = speedupOf(base, r))
                std::printf(" %9.2f", s);
            else
                std::printf(" %9s", runStatusName(r.status));
            std::fflush(stdout);
        }
        std::printf("\n");
    }
}

VEngineParams
withChimes(unsigned chimes, bool packed)
{
    auto p = vlittlePreset();
    p.chimes = chimes;
    p.packed = packed;
    return p;
}

} // namespace

int
main()
{
    setVerbose(false);
    Scale scale = chosenScale(Scale::tiny);
    printHeader("Ablation: big.VLITTLE design choices "
                "(1b-4VL speedup over 1L)", scale);

    SweepService pool(benchServiceOptions("ablation_engine"));
    return finishSweep(pool, [&] {
        sweep("chimes x packing (effective VLEN)",
              {{"1c", withChimes(1, false)},
               {"1c+sw", withChimes(1, true)},
               {"2c+sw", withChimes(2, true)},
               {"4c+sw", withChimes(4, true)}},
              {"saxpy", "blackscholes", "jacobi-2d", "lavamd"}, scale,
              pool);

        {
            std::vector<std::pair<std::string, VEngineParams>> cfgs;
            for (unsigned depth : {2u, 4u, 8u, 16u, 32u}) {
                auto p = vlittlePreset();
                p.cmdQueueDepth = depth;
                p.uopQueueDepth = 2 * depth;
                p.vmiuQueueDepth = depth;
                cfgs.push_back({"cmdq" + std::to_string(depth), p});
            }
            sweep("VCU command-queue depth (decoupling from the big "
                  "core)",
                  cfgs, {"saxpy", "pathfinder", "blackscholes"}, scale,
                  pool);
        }

        {
            std::vector<std::pair<std::string, VEngineParams>> cfgs;
            for (unsigned depth : {1u, 2u, 4u, 8u}) {
                auto p = vlittlePreset();
                p.laneUopQueueDepth = depth;
                cfgs.push_back({"laneq" + std::to_string(depth), p});
            }
            sweep("lane micro-op queue depth (lock-step slack)", cfgs,
                  {"saxpy", "kmeans", "lavamd"}, scale, pool);
        }

        {
            std::vector<std::pair<std::string, VEngineParams>> cfgs;
            for (unsigned w : {1u, 2u, 4u, 8u}) {
                auto p = vlittlePreset();
                p.coalesceWindow = w;
                cfgs.push_back({"coal" + std::to_string(w), p});
            }
            sweep("indexed-access coalescing window (gather-heavy "
                  "apps)",
                  cfgs, {"lavamd", "particlefilter"}, scale, pool);
        }
    });
}
