/**
 * @file
 * google-benchmark microbenchmarks of the simulation kernel itself:
 * event-queue throughput, cache access path, little-core and big-core
 * simulated cycles per host second. Useful when changing the hot
 * simulation loops.
 */

#include <benchmark/benchmark.h>

#include "cpu/big_core.hh"
#include "cpu/little_core.hh"
#include "mem/mem_system.hh"
#include "sim/check/check_context.hh"
#include "sim/check/invariants.hh"
#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "sweep/sweep_runner.hh"

namespace
{

using namespace bvl;

/**
 * Schedule+drain of 1000 closure events — the historic combined
 * number, kept for comparison across revisions.
 */
void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(i * 10, [&] { ++fired; });
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
}
BENCHMARK(BM_EventQueue);

/**
 * Schedule cost alone: 1000 closure events pushed into a fresh queue;
 * the destructor discards them untimed-ish (it only tears down the
 * heap vector and node pool, it never invokes callables).
 */
void
BM_EventQueueSchedule(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(i * 10, [&] { ++sink; });
        benchmark::DoNotOptimize(eq.size());
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueueSchedule);

/** Drain cost alone: the queue is refilled outside the timed region. */
void
BM_EventQueueDrain(benchmark::State &state)
{
    std::uint64_t fired = 0;
    for (auto _ : state) {
        state.PauseTiming();
        EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(i * 10, [&] { ++fired; });
        state.ResumeTiming();
        eq.run();
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueDrain);

/** Clocked stub whose tick re-arms itself a fixed number of times. */
class BenchTicker : public Clocked
{
  public:
    using Clocked::Clocked;
    std::uint64_t remaining = 0;

  protected:
    bool tick() override { return --remaining != 0; }
};

/**
 * Steady-state cost of one simulated cycle of an active component:
 * intrusive TickEvent re-arm, heap push/pop, virtual process()
 * dispatch. This is the path every active Clocked pays every cycle.
 */
void
BM_TickChurn(benchmark::State &state)
{
    EventQueue eq;
    ClockDomain cd(eq, "c", 1.0);
    BenchTicker t(cd, "t");
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        t.remaining = 1000;
        t.activate();
        eq.run();
        cycles += 1000;
    }
    state.counters["ticks/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TickChurn);

/** Interned-handle stat increment: the hot-path discipline. */
void
BM_StatIncrement(benchmark::State &state)
{
    StatGroup sg;
    StatHandle h = sg.handle("bench.counter");
    for (auto _ : state) {
        h++;
        benchmark::ClobberMemory();
    }
    benchmark::DoNotOptimize(h.value());
}
BENCHMARK(BM_StatIncrement);

/** Name-keyed increment: what every hot-path call site used to do. */
void
BM_StatLookupIncrement(benchmark::State &state)
{
    StatGroup sg;
    for (auto _ : state) {
        sg.stat(std::string("bench.") + "counter")++;
        benchmark::ClobberMemory();
    }
    benchmark::DoNotOptimize(sg.value("bench.counter"));
}
BENCHMARK(BM_StatLookupIncrement);

void
BM_CacheHitPath(benchmark::State &state)
{
    EventQueue eq;
    ClockDomain uncore(eq, "u", 1.0);
    StatGroup stats;
    MemSystem sys(uncore, stats);
    // Warm one line.
    bool done = false;
    sys.accessData(0, 0x1000, false, [&] { done = true; });
    while (!done && eq.step()) {}
    for (auto _ : state) {
        bool hit = false;
        sys.accessData(0, 0x1000, false, [&] { hit = true; });
        while (!hit && eq.step()) {}
        benchmark::DoNotOptimize(hit);
    }
}
BENCHMARK(BM_CacheHitPath);

/**
 * DESIGN.md §12 overhead gate: the identical hit loop in the disarmed
 * checker configuration a normal run sees — every cache's invariants
 * registered (Soc does this unconditionally) and no CheckContext
 * (Soc only constructs one when CheckOptions::enabled()). The
 * registered closures are inert until swept and the access path has
 * no checker hook, so this must stay within noise (<= 1%) of
 * BM_CacheHitPath.
 */
void
BM_CacheHitPathCheckerDisarmed(benchmark::State &state)
{
    EventQueue eq;
    ClockDomain uncore(eq, "u", 1.0);
    StatGroup stats;
    MemSystem sys(uncore, stats);
    InvariantRegistry reg;
    sys.registerInvariants(reg);
    static_assert(!CheckOptions{}.lockstep && !CheckOptions{}.invariants,
                  "default CheckOptions must mean: no CheckContext");
    benchmark::DoNotOptimize(&reg);
    // Warm one line.
    bool done = false;
    sys.accessData(0, 0x1000, false, [&] { done = true; });
    while (!done && eq.step()) {}
    for (auto _ : state) {
        bool hit = false;
        sys.accessData(0, 0x1000, false, [&] { hit = true; });
        while (!hit && eq.step()) {}
        benchmark::DoNotOptimize(hit);
    }
}
BENCHMARK(BM_CacheHitPathCheckerDisarmed);

ProgramPtr
loopProgram(int n)
{
    Asm a("bench");
    a.li(xreg(1), 0)
     .li(xreg(2), n)
     .label("loop")
     .addi(xreg(3), xreg(1), 5)
     .xor_(xreg(4), xreg(3), xreg(1))
     .addi(xreg(1), xreg(1), 1)
     .blt(xreg(1), xreg(2), "loop")
     .halt();
    return a.finish();
}

void
BM_LittleCoreSimSpeed(benchmark::State &state)
{
    EventQueue eq;
    ClockDomain uncore(eq, "u", 1.0), cores(eq, "c", 1.0);
    StatGroup stats;
    BackingStore backing;
    MemSystem sys(uncore, stats);
    LittleCore little(cores, stats, sys, backing, 0, 512);
    auto prog = loopProgram(1000);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        bool done = false;
        Tick start = eq.now();
        little.runProgram(prog, {}, [&] { done = true; });
        while (!done && eq.step()) {}
        cycles += cores.ticksToCycles(eq.now() - start);
    }
    state.counters["simCycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LittleCoreSimSpeed);

/**
 * Functional fast-forward throughput: stepOne() over a three-stream
 * memory loop (two loads + one store per iteration, streams on
 * different pages). This is the loop a checkpoint-farm producer and
 * every cold sweep cell spend their prefix in; the BackingStore page
 * cache is the dominant cost, and the alternating streams are exactly
 * the pattern a one-entry cache thrashed on.
 */
void
BM_FastForwardStep(benchmark::State &state)
{
    constexpr std::int64_t n = 2048;     // 16 KiB/stream = 4 pages
    constexpr Addr srcA = 0x100000, srcB = 0x120000, dst = 0x140000;
    Asm a("ffbench");
    a.li(xreg(1), 0)
     .li(xreg(2), n)
     .li(xreg(5), static_cast<std::int64_t>(srcA))
     .li(xreg(6), static_cast<std::int64_t>(srcB))
     .li(xreg(7), static_cast<std::int64_t>(dst))
     .label("loop")
     .ld(xreg(3), xreg(5))
     .ld(xreg(4), xreg(6))
     .add(xreg(3), xreg(3), xreg(4))
     .sd(xreg(3), xreg(7))
     .addi(xreg(5), xreg(5), 8)
     .addi(xreg(6), xreg(6), 8)
     .addi(xreg(7), xreg(7), 8)
     .addi(xreg(1), xreg(1), 1)
     .blt(xreg(1), xreg(2), "loop")
     .halt();
    auto prog = a.finish();

    BackingStore backing;
    for (std::int64_t i = 0; i < n; ++i) {
        backing.writeT<std::uint64_t>(srcA + i * 8, i);
        backing.writeT<std::uint64_t>(srcB + i * 8, i * 3);
    }
    ArchState arch(512);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        arch.reset();
        while (!arch.halted) {
            stepOne(arch, *prog, backing);
            ++insts;
        }
    }
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FastForwardStep);

void
BM_BigCoreSimSpeed(benchmark::State &state)
{
    EventQueue eq;
    ClockDomain uncore(eq, "u", 1.0), cores(eq, "c", 1.0);
    StatGroup stats;
    BackingStore backing;
    MemSystem sys(uncore, stats);
    BigCore big(cores, stats, sys, backing, 512);
    auto prog = loopProgram(1000);
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        bool done = false;
        Tick start = eq.now();
        big.runProgram(prog, {}, [&] { done = true; });
        while (!done && eq.step()) {}
        cycles += cores.ticksToCycles(eq.now() - start);
    }
    state.counters["simCycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BigCoreSimSpeed);

/**
 * End-to-end sweep throughput through the parallel runner: a small
 * grid of independent simulations at the given thread count. Arg(1)
 * is the serial (inline) baseline; higher args exercise the pool.
 */
void
BM_SweepRunner(benchmark::State &state)
{
    std::vector<SweepJob> grid;
    for (const char *name : {"vvadd", "saxpy"})
        for (Design d : {Design::d1L, Design::d1b, Design::d1b4VL})
            grid.push_back({d, name, Scale::tiny, {}});
    std::uint64_t completed = 0;
    for (auto _ : state) {
        auto results =
            runSweep(grid, static_cast<unsigned>(state.range(0)));
        for (const auto &r : results)
            if (r.ok())
                ++completed;
        benchmark::DoNotOptimize(results);
    }
    state.counters["runs/s"] = benchmark::Counter(
        static_cast<double>(completed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();
