/**
 * @file
 * Table VI: post-synthesis component-level area of a 4-little-core
 * cluster (4L) vs the equivalent VLITTLE engine (4VL), for both
 * little-core RTL models, plus the Section-VI first-order Ara-based
 * estimate of the 1bDV engine's area. Paper result: ~2.4% overhead
 * with the simple core, ~2.1% with Ariane.
 */

#include <cstdio>

#include "area/area_model.hh"
#include "vector/engine_presets.hh"

using namespace bvl;

namespace
{

void
printReport(const char *label, const AreaReport &r)
{
    std::printf("\n[%s]\n", label);
    std::printf("  4L baseline:\n");
    for (const auto &line : r.baseline4L)
        std::printf("    %-34s %7.1f k um^2 x%u = %8.1f\n",
                    line.component.c_str(), line.kum2, line.count,
                    line.total());
    std::printf("  4VL engine:\n");
    for (const auto &line : r.cluster4VL)
        std::printf("    %-34s %7.1f k um^2 x%u = %8.1f\n",
                    line.component.c_str(), line.kum2, line.count,
                    line.total());
    std::printf("  total 4L  = %8.1f k um^2\n", r.total4L);
    std::printf("  total 4VL = %8.1f k um^2\n", r.total4VL);
    std::printf("  4VL vs 4L overhead = %.1f%%\n", r.overheadPercent);
}

} // namespace

int
main()
{
    std::printf("# Table VI: area of 4L cluster vs 4VL engine "
                "(12nm post-synthesis model)\n");
    auto engine = vlittlePreset();
    printReport("simple little core",
                computeClusterArea(LittleCoreRtl::simple, engine));
    printReport("Ariane little core",
                computeClusterArea(LittleCoreRtl::ariane, engine));

    auto dve = estimateDveArea();
    std::printf("\n[1bDV first-order estimate (Section VI)]\n");
    std::printf("  8-lane Ara-class engine   = %7.0f kGE\n",
                dve.engineKge);
    std::printf("  4x Ariane + 8x 32KB L1s   = %7.0f kGE\n",
                dve.cluster4Ariane);
    std::printf("  cluster/engine area ratio = %7.2f "
                "(~1.0 means area-comparable)\n", dve.ratio);
    return 0;
}
