/**
 * @file
 * Co-simulation property tests: for randomly generated programs, the
 * architectural state after *timed* execution (little core, big core,
 * big core + each vector engine) must exactly match pure functional
 * execution. This catches any timing-model interference with
 * semantics (wrong-path effects, lost writebacks, engine reordering).
 */

#include <gtest/gtest.h>

#include "isa/arch_state.hh"
#include "sim/rng.hh"
#include "soc/run_driver.hh"
#include "soc/soc.hh"

namespace bvl
{
namespace
{

constexpr Addr dataBase = 0x100000;
constexpr unsigned dataWords = 256;

/** Random scalar program: ALU ops, loads/stores into a small window,
 *  and a countdown loop around the whole body. */
ProgramPtr
randomScalarProgram(Rng &rng, unsigned bodyLen)
{
    Asm a("rand.scalar");
    a.li(xreg(1), dataBase)
     .li(xreg(20), 4)              // loop counter
     .label("top");
    for (unsigned i = 0; i < bodyLen; ++i) {
        RegId rd = xreg(2 + rng.below(8));
        RegId ra = xreg(2 + rng.below(8));
        RegId rb = xreg(2 + rng.below(8));
        switch (rng.below(8)) {
          case 0: a.add(rd, ra, rb); break;
          case 1: a.sub(rd, ra, rb); break;
          case 2: a.mul(rd, ra, rb); break;
          case 3: a.xor_(rd, ra, rb); break;
          case 4: a.addi(rd, ra, static_cast<std::int64_t>(
                      rng.below(100)));
                  break;
          case 5: {
            // load from a bounded slot
            a.andi(xreg(10), ra, (dataWords - 1) * 4)
             .add(xreg(10), xreg(10), xreg(1))
             .lw(rd, xreg(10));
            break;
          }
          case 6: {
            a.andi(xreg(10), ra, (dataWords - 1) * 4)
             .add(xreg(10), xreg(10), xreg(1))
             .sw(rb, xreg(10));
            break;
          }
          default: a.slti(rd, ra, 50); break;
        }
    }
    a.addi(xreg(20), xreg(20), -1)
     .bne(xreg(20), xreg(0), "top")
     .halt();
    auto p = a.finish();
    p->setTextBase(0x40000000);
    return p;
}

/** Random vector program: stripmined loop mixing vector arithmetic,
 *  unit-stride memory and occasional reductions. */
ProgramPtr
randomVectorProgram(Rng &rng, unsigned bodyLen)
{
    Asm a("rand.vector");
    a.li(xreg(2), dataBase)
     .li(xreg(3), dataBase + dataWords * 4)
     .li(xreg(10), dataWords)
     .label("loop")
     .vsetvli(xreg(4), xreg(10), 4)
     .vle(vreg(1), xreg(2), 4)
     .vle(vreg(2), xreg(3), 4);
    for (unsigned i = 0; i < bodyLen; ++i) {
        RegId vd = vreg(3 + rng.below(5));
        RegId va = vreg(1 + rng.below(7));
        RegId vb = vreg(1 + rng.below(7));
        switch (rng.below(6)) {
          case 0: a.vv(Op::vadd, vd, va, vb); break;
          case 1: a.vv(Op::vmul, vd, va, vb); break;
          case 2: a.vv(Op::vxor, vd, va, vb); break;
          case 3: a.vv(Op::vmax, vd, va, vb); break;
          case 4: a.vi(Op::vsll, vd, va, 1 + rng.below(3)); break;
          default: a.vv(Op::vmin, vd, va, vb); break;
        }
    }
    a.vv(Op::vadd, vreg(8), vreg(3), vreg(4))
     .vse(vreg(8), xreg(2), 4)
     .vv(Op::vredsum, vreg(9), regIdInvalid, vreg(8))
     .vmv_x_s(xreg(21), vreg(9))
     .add(xreg(22), xreg(22), xreg(21))
     .slli(xreg(6), xreg(4), 2)
     .add(xreg(2), xreg(2), xreg(6))
     .add(xreg(3), xreg(3), xreg(6))
     .sub(xreg(10), xreg(10), xreg(4))
     .bne(xreg(10), xreg(0), "loop")
     .halt();
    auto p = a.finish();
    p->setTextBase(0x40000000);
    return p;
}

void
initData(BackingStore &mem, Rng &rng)
{
    for (unsigned i = 0; i < 2 * dataWords; ++i)
        mem.writeT<std::uint32_t>(dataBase + 4 * i,
                                  static_cast<std::uint32_t>(
                                      rng.below(1000)));
}

/** Compare x registers and the data window. */
void
expectSameState(const ArchState &timed, const ArchState &func,
                const BackingStore &timedMem,
                const BackingStore &funcMem, const char *what)
{
    for (unsigned r = 1; r < 32; ++r)
        EXPECT_EQ(timed.getX(xreg(r)), func.getX(xreg(r)))
            << what << ": x" << r;
    for (unsigned i = 0; i < 2 * dataWords; ++i)
        ASSERT_EQ(timedMem.readT<std::uint32_t>(dataBase + 4 * i),
                  funcMem.readT<std::uint32_t>(dataBase + 4 * i))
            << what << ": word " << i;
}

class CosimScalarTest : public ::testing::TestWithParam<int>
{};

TEST_P(CosimScalarTest, LittleMatchesFunctional)
{
    Rng rng(1000 + GetParam());
    auto prog = randomScalarProgram(rng, 24);

    BackingStore funcMem;
    Rng dataRng(GetParam());
    initData(funcMem, dataRng);
    ArchState func(512);
    runFunctional(func, *prog, funcMem);

    Soc soc(Design::d1L);
    Rng dataRng2(GetParam());
    initData(soc.backing, dataRng2);
    bool done = false;
    soc.littles[0]->runProgram(prog, {}, [&] { done = true; });
    ASSERT_TRUE(soc.runUntil([&] { return done; },
                             soc.eq.now() + 50'000'000ull));
    expectSameState(soc.littles[0]->archState(), func, soc.backing,
                    funcMem, "little");
}

TEST_P(CosimScalarTest, BigMatchesFunctional)
{
    Rng rng(2000 + GetParam());
    auto prog = randomScalarProgram(rng, 24);

    BackingStore funcMem;
    Rng dataRng(GetParam());
    initData(funcMem, dataRng);
    ArchState func(512);
    runFunctional(func, *prog, funcMem);

    Soc soc(Design::d1b);
    Rng dataRng2(GetParam());
    initData(soc.backing, dataRng2);
    bool done = false;
    soc.big->runProgram(prog, {}, [&] { done = true; });
    ASSERT_TRUE(soc.runUntil([&] { return done; },
                             soc.eq.now() + 50'000'000ull));
    expectSameState(soc.big->archState(), func, soc.backing, funcMem,
                    "big");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CosimScalarTest,
                         ::testing::Range(0, 8));

class CosimVectorTest
    : public ::testing::TestWithParam<std::tuple<int, Design>>
{};

TEST_P(CosimVectorTest, EngineMatchesFunctional)
{
    auto [seed, design] = GetParam();
    Rng rng(3000 + seed);
    auto prog = randomVectorProgram(rng, 6);

    Soc soc(design);
    BackingStore funcMem;
    Rng dataRng(seed);
    initData(funcMem, dataRng);
    ArchState func(soc.vlenBits());
    runFunctional(func, *prog, funcMem);

    Rng dataRng2(seed);
    initData(soc.backing, dataRng2);
    bool done = false;
    soc.big->runProgram(prog, {}, [&] { done = true; });
    ASSERT_TRUE(soc.runUntil([&] { return done; },
                             soc.eq.now() + 50'000'000ull));
    expectSameState(soc.big->archState(), func, soc.backing, funcMem,
                    designName(design));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByEngine, CosimVectorTest,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(Design::d1bIV, Design::d1bDV,
                                         Design::d1b4VL)),
    [](const auto &info) {
        std::string s = std::string(designName(std::get<1>(info.param))) +
                        "_s" + std::to_string(std::get<0>(info.param));
        for (auto &c : s)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return s;
    });

// ------------------------------------------------- faulted co-simulation
//
// Recoverable fault plans must not change semantics: with the lockstep
// checker armed, every retire still has to match the functional model
// exactly, and the run must end RunStatus::ok. This is the strongest
// statement of the recovery contract — not just "the workload verified"
// but "no instruction ever produced a wrong value on the way".

/** A recoverable fault plan per paper-relevant disturbance class. */
FaultSpec
recoverablePlan(int variant)
{
    FaultSpec f;
    f.enabled = true;
    f.seed = 77 + variant;
    switch (variant) {
      case 0:   // stretched memory responses
        f.memDelayProb = 0.05;
        f.cacheDelayProb = 0.1;
        break;
      case 1:   // bounded VCU broadcast stalls, scripted and random
        f.vcuStallProb = 0.05;
        f.vcuStallCycles = 12;
        f.script.push_back({20000, FaultKind::vcuStall, 40});
        f.script.push_back({60000, FaultKind::vcuStall, 40});
        break;
      default:  // dropped VMU responses, all within the retry budget
        f.vmuDropProb = 0.1;
        f.vmuMaxRetries = 3;
        f.vmuRetryDelay = 16;
        f.script.push_back({0, FaultKind::vmuDrop, 0});
        f.script.push_back({0, FaultKind::vmuDrop, 0});
        break;
    }
    return f;
}

class FaultedCosimTest
    : public ::testing::TestWithParam<std::tuple<int, Design>>
{};

TEST_P(FaultedCosimTest, RecoverableFaultsRetireMatchTheModel)
{
    auto [variant, design] = GetParam();
    RunOptions opts;
    opts.faults = recoverablePlan(variant);
    opts.check.lockstep = true;
    opts.check.invariants = true;

    RunResult r = runWorkload(design, "vvadd", Scale::tiny, opts);
    ASSERT_EQ(r.status, RunStatus::ok) << r.message << "\n" << r.log;
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.stat("check.retires"), 0u);
    EXPECT_EQ(r.stat("check.divergences"), 0u);
    if (designHasVector(design))
        EXPECT_GT(r.stat("check.uops"), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PlansByDesign, FaultedCosimTest,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Values(Design::d1b, Design::d1bIV,
                                         Design::d1bDV,
                                         Design::d1b4VL)),
    [](const auto &info) {
        std::string s = std::string(designName(std::get<1>(info.param))) +
                        "_plan" + std::to_string(std::get<0>(info.param));
        for (auto &c : s)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return s;
    });

} // namespace
} // namespace bvl
