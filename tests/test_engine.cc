/**
 * @file
 * Integration tests of the vector engines under the big core: the
 * VLITTLE engine (1b-4VL), the integrated vector unit (1bIV) and the
 * decoupled engine (1bDV) all run the same stripmined programs; we
 * check functional output, relative performance ordering, decoupling
 * behaviour, the mode-switch penalty, cross-element timing and the
 * lock-step/simd stall accounting.
 */

#include <gtest/gtest.h>

#include "soc/soc.hh"
#include "vector/engine_presets.hh"

namespace bvl
{
namespace
{

constexpr Addr xBase = 0x100000;
constexpr Addr yBase = 0x200000;
constexpr Addr outBase = 0x300000;

/** Stripmined saxpy: y[i] += a * x[i]; n in x10. */
ProgramPtr
saxpyProgram()
{
    Asm a("vsaxpy");
    a.li(xreg(2), xBase)
     .li(xreg(3), yBase)
     .li(xreg(5), 2)
     .fcvt_f_x(freg(1), xreg(5), 4)
     .label("loop")
     .vsetvli(xreg(4), xreg(10), 4)
     .vle(vreg(1), xreg(2), 4)
     .vle(vreg(2), xreg(3), 4)
     .vf(Op::vfmacc, vreg(2), vreg(1), freg(1))
     .vse(vreg(2), xreg(3), 4)
     .slli(xreg(6), xreg(4), 2)
     .add(xreg(2), xreg(2), xreg(6))
     .add(xreg(3), xreg(3), xreg(6))
     .sub(xreg(10), xreg(10), xreg(4))
     .bne(xreg(10), xreg(0), "loop")
     .halt();
    return a.finish();
}

void
initSaxpyData(BackingStore &mem, unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        mem.writeT<float>(xBase + 4 * i, 1.0f * i);
        mem.writeT<float>(yBase + 4 * i, 3.0f);
    }
}

/** Run a program on the big core of @p soc; returns elapsed ns. */
double
runOnBig(Soc &soc, ProgramPtr prog,
         std::vector<std::pair<RegId, std::uint64_t>> args)
{
    bool done = false;
    double start = soc.elapsedNs();
    soc.big->runProgram(std::move(prog), std::move(args),
                        [&] { done = true; });
    bool finished = soc.runUntil([&] { return done; },
                                 soc.eq.now() + 500'000'000ull);
    EXPECT_TRUE(finished) << "simulation deadlocked";
    return soc.elapsedNs() - start;
}

class EngineTest : public ::testing::TestWithParam<Design>
{};

TEST_P(EngineTest, SaxpyFunctionallyCorrect)
{
    const unsigned n = 300;
    Soc soc(GetParam());
    initSaxpyData(soc.backing, n);
    runOnBig(soc, saxpyProgram(), {{xreg(10), n}});
    for (unsigned i = 0; i < n; ++i) {
        float got = soc.backing.readT<float>(yBase + 4 * i);
        EXPECT_FLOAT_EQ(got, 2.0f * i + 3.0f) << "i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(VectorDesigns, EngineTest,
                         ::testing::Values(Design::d1bIV, Design::d1bDV,
                                           Design::d1b4VL),
                         [](const auto &info) {
                             std::string n = designName(info.param);
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(EngineOrderTest, WiderEnginesRunLargeSaxpyFaster)
{
    const unsigned n = 4096;
    double t[3];
    Design designs[3] = {Design::d1bIV, Design::d1b4VL, Design::d1bDV};
    for (int i = 0; i < 3; ++i) {
        Soc soc(designs[i]);
        initSaxpyData(soc.backing, n);
        t[i] = runOnBig(soc, saxpyProgram(), {{xreg(10), n}});
    }
    // 1bDV (2048b) < 1b-4VL (512b) < 1bIV (128b)
    EXPECT_LT(t[2], t[1]) << "1bDV should beat 1b-4VL";
    EXPECT_LT(t[1], t[0]) << "1b-4VL should beat 1bIV";
}

TEST(EngineTestDetail, ModeSwitchPenaltyAppearsOnce)
{
    const unsigned n = 16;
    Soc soc(Design::d1b4VL);
    initSaxpyData(soc.backing, n);
    double t = runOnBig(soc, saxpyProgram(), {{xreg(10), n}});
    // The 500-cycle (500ns at 1GHz) switch penalty dominates a tiny
    // kernel.
    EXPECT_GT(t, 500.0);
    EXPECT_EQ(soc.stats.value("vlittle.modeSwitches"), 1u);

    // A second region in the same run does not re-pay the penalty
    // unless the engine exited vector mode.
    EXPECT_TRUE(soc.engine->inVectorMode());
    soc.engine->exitVectorMode();
    EXPECT_FALSE(soc.engine->inVectorMode());
}

TEST(EngineTestDetail, LittleL1dSwitchesToBankedMode)
{
    Soc soc(Design::d1b4VL);
    initSaxpyData(soc.backing, 64);
    EXPECT_EQ(soc.mem.littleL1D(0).getIndexMode(),
              IndexMode::scalarPrivate);
    runOnBig(soc, saxpyProgram(), {{xreg(10), 64}});
    EXPECT_EQ(soc.mem.littleL1D(0).getIndexMode(),
              IndexMode::vectorBanked);
    soc.engine->exitVectorMode();
    EXPECT_EQ(soc.mem.littleL1D(0).getIndexMode(),
              IndexMode::scalarPrivate);
}

TEST(EngineTestDetail, VectorMemorySpreadsAcrossBanks)
{
    const unsigned n = 4096;
    Soc soc(Design::d1b4VL);
    initSaxpyData(soc.backing, n);
    runOnBig(soc, saxpyProgram(), {{xreg(10), n}});
    // Unit-stride streams must hit all four banks roughly equally.
    std::uint64_t acc[4];
    for (unsigned b = 0; b < 4; ++b)
        acc[b] = soc.stats.value("little" + std::to_string(b) +
                                 ".l1d.accesses");
    for (unsigned b = 0; b < 4; ++b) {
        EXPECT_GT(acc[b], 0u);
        EXPECT_LT(acc[b], 2 * acc[0] + 16);
    }
}

TEST(EngineTestDetail, StallBreakdownCoversAllLaneCycles)
{
    const unsigned n = 2048;
    Soc soc(Design::d1b4VL);
    initSaxpyData(soc.backing, n);
    runOnBig(soc, saxpyProgram(), {{xreg(10), n}});
    for (unsigned l = 0; l < 4; ++l) {
        std::string pre = "little" + std::to_string(l) + ".";
        std::uint64_t cycles = soc.stats.value(pre + "cycles");
        std::uint64_t sum = 0;
        for (auto cause : {"busy", "simd", "raw_mem", "raw_llfu",
                           "struct", "xelem", "misc"})
            sum += soc.stats.value(pre + "stall." + cause);
        EXPECT_EQ(sum, cycles) << "lane " << l;
        EXPECT_GT(soc.stats.value(pre + "stall.busy"), 0u) << "lane " << l;
    }
}

TEST(EngineTestDetail, ReductionReturnsScalarToBigCore)
{
    const unsigned n = 64;
    Soc soc(Design::d1b4VL);
    for (unsigned i = 0; i < n; ++i)
        soc.backing.writeT<std::int32_t>(xBase + 4 * i, 1);
    // Sum n ones via stripmined vredsum, accumulate in x20.
    Asm a("vsum");
    a.li(xreg(2), xBase)
     .li(xreg(20), 0)
     .label("loop")
     .vsetvli(xreg(4), xreg(10), 4)
     .vle(vreg(1), xreg(2), 4)
     .vmv_s_x(vreg(2), xreg(0))
     .vv(Op::vredsum, vreg(3), vreg(2), vreg(1))
     .vmv_x_s(xreg(5), vreg(3))
     .add(xreg(20), xreg(20), xreg(5))
     .slli(xreg(6), xreg(4), 2)
     .add(xreg(2), xreg(2), xreg(6))
     .sub(xreg(10), xreg(10), xreg(4))
     .bne(xreg(10), xreg(0), "loop")
     .halt();
    runOnBig(soc, a.finish(), {{xreg(10), n}});
    EXPECT_EQ(soc.big->archState().getX(xreg(20)), n);
    // Cross-element work must appear in the VXU path.
    EXPECT_GT(soc.stats.value("vlittle.completed"), 0u);
}

TEST(EngineTestDetail, IndexedGatherWorksThroughVmu)
{
    const unsigned n = 256;
    Soc soc(Design::d1b4VL);
    // table[i] = 7*i; idx[i] = byte offset of a permuted entry
    for (unsigned i = 0; i < n; ++i) {
        soc.backing.writeT<std::int32_t>(xBase + 4 * i, 7 * i);
        soc.backing.writeT<std::uint32_t>(yBase + 4 * i,
                                          ((i * 17) % n) * 4);
    }
    Asm a("vgather");
    a.li(xreg(2), xBase)
     .li(xreg(3), yBase)
     .li(xreg(7), outBase)
     .label("loop")
     .vsetvli(xreg(4), xreg(10), 4)
     .vle(vreg(2), xreg(3), 4)                 // load indices
     .vluxei(vreg(1), xreg(2), vreg(2), 4)     // gather table[idx]
     .vse(vreg(1), xreg(7), 4)
     .slli(xreg(6), xreg(4), 2)
     .add(xreg(3), xreg(3), xreg(6))
     .add(xreg(7), xreg(7), xreg(6))
     .sub(xreg(10), xreg(10), xreg(4))
     .bne(xreg(10), xreg(0), "loop")
     .halt();
    runOnBig(soc, a.finish(), {{xreg(10), n}});
    for (unsigned i = 0; i < n; ++i) {
        auto got = soc.backing.readT<std::int32_t>(outBase + 4 * i);
        EXPECT_EQ(got, static_cast<std::int32_t>(7 * ((i * 17) % n)))
            << "i=" << i;
    }
}

TEST(EngineTestDetail, VmfenceDrainsVectorStores)
{
    const unsigned n = 64;
    Soc soc(Design::d1b4VL);
    for (unsigned i = 0; i < n; ++i)
        soc.backing.writeT<std::int32_t>(xBase + 4 * i, 5);
    // Vector store then scalar load of the same data, fenced.
    Asm a("fence");
    a.li(xreg(2), xBase)
     .li(xreg(3), outBase)
     .vsetvli(xreg(4), xreg(10), 4)
     .vle(vreg(1), xreg(2), 4)
     .vse(vreg(1), xreg(3), 4)
     .vmfence()
     .lw(xreg(5), xreg(3))
     .halt();
    runOnBig(soc, a.finish(), {{xreg(10), n}});
    EXPECT_EQ(soc.big->archState().getX(xreg(5)), 5u);
    EXPECT_TRUE(soc.engine->idle());
}

TEST(EngineTestDetail, DecouplingRunsMemoryAheadOfCompute)
{
    // A long dependent FP chain after each load: with deep buffers the
    // VMIU generates line requests well before lanes consume them.
    const unsigned n = 4096;
    Soc soc(Design::d1b4VL);
    initSaxpyData(soc.backing, n);
    runOnBig(soc, saxpyProgram(), {{xreg(10), n}});
    EXPECT_GT(soc.stats.value("vlittle.loadLineReqs"), n / 16 / 2);
    EXPECT_GT(soc.stats.value("vlittle.vluDeliveries"), 0u);
    EXPECT_GT(soc.stats.value("vlittle.vsuLines"), 0u);
}

TEST(EngineTestDetail, IvuSharesBigCoreL1d)
{
    const unsigned n = 1024;
    Soc soc(Design::d1bIV);
    initSaxpyData(soc.backing, n);
    runOnBig(soc, saxpyProgram(), {{xreg(10), n}});
    EXPECT_GT(soc.stats.value("big.l1d.accesses"), 0u);
    EXPECT_EQ(soc.stats.value("little0.l1d.accesses"), 0u);
}

TEST(EngineTestDetail, DveBypassesL1GoesToL2)
{
    const unsigned n = 1024;
    Soc soc(Design::d1bDV);
    initSaxpyData(soc.backing, n);
    runOnBig(soc, saxpyProgram(), {{xreg(10), n}});
    EXPECT_GT(soc.stats.value("l2.accesses"), 0u);
    EXPECT_EQ(soc.stats.value("little0.l1d.accesses"), 0u);
    EXPECT_EQ(soc.stats.value("big.l1d.accesses"), 0u);
}

TEST(EngineTestDetail, VlenMatchesDesign)
{
    EXPECT_EQ(Soc(Design::d1bIV).vlenBits(), 128u);
    EXPECT_EQ(Soc(Design::d1b4VL).vlenBits(), 512u);
    EXPECT_EQ(Soc(Design::d1bDV).vlenBits(), 2048u);
}

TEST(EngineTestDetail, FewerDynamicInstructionsWithLongerVectors)
{
    const unsigned n = 4096;
    std::uint64_t fetched[2];
    Design designs[2] = {Design::d1bIV, Design::d1b4VL};
    for (int i = 0; i < 2; ++i) {
        Soc soc(designs[i]);
        initSaxpyData(soc.backing, n);
        runOnBig(soc, saxpyProgram(), {{xreg(10), n}});
        fetched[i] = soc.stats.value("big.fetched");
    }
    // 512-bit VLEN needs ~4x fewer stripmine iterations than 128-bit.
    EXPECT_LT(fetched[1] * 3, fetched[0]);
}

} // namespace
} // namespace bvl
