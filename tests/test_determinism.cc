/**
 * @file
 * Determinism and re-entrancy regression tests.
 *
 * The library must hold two properties for the parallel sweep runner
 * to be sound (DESIGN.md §10):
 *
 *  1. Run-to-run determinism: building and running the same workload
 *     twice in one process yields bit-identical statistics. This is
 *     what the old process-global text-base allocator and assembler
 *     label counter broke — the second construction saw different
 *     counter values, so simulated addresses depended on sweep order.
 *
 *  2. Thread independence: two runWorkload() calls on different
 *     threads share nothing, so a parallel sweep produces exactly the
 *     serial results.
 */

#include <gtest/gtest.h>

#include <thread>

#include "sweep/sweep_runner.hh"

namespace bvl
{
namespace
{

/** Full bit-identity check between two runs of the same config. */
void
expectIdenticalRuns(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.design, b.design);
    EXPECT_EQ(a.status, b.status);
    EXPECT_EQ(a.finished, b.finished);
    EXPECT_EQ(a.verified, b.verified);
    EXPECT_EQ(a.ns, b.ns);
    EXPECT_EQ(a.ifetchReqs, b.ifetchReqs);
    EXPECT_EQ(a.dataReqs, b.dataReqs);
    EXPECT_EQ(a.bigFetched, b.bigFetched);
    // The full stat snapshots, key by key.
    EXPECT_EQ(a.stats, b.stats);
}

TEST(DeterminismTest, SameWorkloadTwiceIsBitIdentical)
{
    // One data-parallel and one task-parallel (graph) workload; the
    // graph apps exercise the per-program label uniquifier.
    for (const char *name : {"saxpy", "mis"}) {
        auto r1 = runWorkload(Design::d1b4VL, name, Scale::tiny);
        auto r2 = runWorkload(Design::d1b4VL, name, Scale::tiny);
        ASSERT_TRUE(r1.ok()) << name << ": " << r1.message;
        expectIdenticalRuns(r1, r2);
    }
}

TEST(DeterminismTest, RunOrderDoesNotChangeResults)
{
    // With the old process-global text-base counter, what ran *before*
    // a workload changed its program addresses and therefore its
    // cache/ifetch statistics. Run B alone, then run it after several
    // unrelated constructions, and demand identical results.
    auto alone = runWorkload(Design::d1b, "vvadd", Scale::tiny);
    ASSERT_TRUE(alone.ok()) << alone.message;

    (void)runWorkload(Design::d1b4VL, "saxpy", Scale::tiny);
    (void)runWorkload(Design::d1b, "mis", Scale::tiny);
    auto after = runWorkload(Design::d1b, "vvadd", Scale::tiny);
    expectIdenticalRuns(alone, after);

    // And either relative order of two workloads gives each the same
    // per-run stats.
    auto mmultFirst = runWorkload(Design::d1bIV, "mmult", Scale::tiny);
    auto bfsSecond = runWorkload(Design::d1b4L, "bfs", Scale::tiny);
    auto bfsFirst = runWorkload(Design::d1b4L, "bfs", Scale::tiny);
    auto mmultSecond = runWorkload(Design::d1bIV, "mmult", Scale::tiny);
    expectIdenticalRuns(mmultFirst, mmultSecond);
    expectIdenticalRuns(bfsFirst, bfsSecond);
}

TEST(SweepRunnerTest, ParallelSweepMatchesSerialSweep)
{
    std::vector<SweepJob> grid;
    for (const char *name : {"vvadd", "saxpy", "bfs", "pagerank"})
        for (Design d : {Design::d1L, Design::d1b4VL})
            grid.push_back({d, name, Scale::tiny, {}});

    auto serial = runSweep(grid, 1);
    auto parallel = runSweep(grid, 4);
    ASSERT_EQ(serial.size(), grid.size());
    ASSERT_EQ(parallel.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_TRUE(serial[i].ok()) << serial[i].workload << ": "
                                    << serial[i].message;
        expectIdenticalRuns(serial[i], parallel[i]);
    }
}

TEST(SweepRunnerTest, ResultsComeBackInSubmissionOrder)
{
    std::vector<SweepJob> grid;
    const char *names[] = {"vvadd", "mmult", "saxpy"};
    for (const char *name : names)
        grid.push_back({Design::d1b, name, Scale::tiny, {}});
    auto results = runSweep(grid, 4);
    ASSERT_EQ(results.size(), 3u);
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_EQ(results[i].workload, names[i]);
}

TEST(SweepRunnerTest, JobsComeFromEnvironment)
{
    // Explicit argument wins over everything.
    EXPECT_EQ(SweepRunner(3).jobs(), 3u);
    // 0 resolves BVL_JOBS (unset here in-process: hw concurrency >= 1).
    EXPECT_GE(SweepRunner(0).jobs(), 1u);
}

TEST(SweepRunnerTest, CustomThunksAndFailuresAreBanked)
{
    SweepRunner pool(2);
    auto ok = pool.submit([] {
        return runWorkload(Design::d1L, "vvadd", Scale::tiny);
    });
    auto bad = pool.submit({Design::d1b, "no-such-workload",
                            Scale::tiny, {}});
    EXPECT_TRUE(ok.get().ok());
    auto r = bad.get();
    EXPECT_EQ(r.status, RunStatus::sim_error);
    // The diagnostic was captured into the result, not stderr.
    EXPECT_NE(r.message.find("unknown workload"), std::string::npos);
    EXPECT_NE(r.log.find("unknown workload"), std::string::npos);
}

TEST(ConcurrencyStressTest, ManyThreadsRunWorkloadsIndependently)
{
    // Reference results, computed serially.
    auto refSaxpy = runWorkload(Design::d1b4VL, "saxpy", Scale::tiny);
    auto refBfs = runWorkload(Design::d1b4L, "bfs", Scale::tiny);
    ASSERT_TRUE(refSaxpy.ok()) << refSaxpy.message;
    ASSERT_TRUE(refBfs.ok()) << refBfs.message;

    // Hammer runWorkload from several raw threads at once (below the
    // SweepRunner layer, so this exercises the library's re-entrancy
    // directly) and compare every result against the references.
    constexpr unsigned numThreads = 8;
    constexpr unsigned runsPerThread = 2;
    std::vector<RunResult> results(numThreads * runsPerThread);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < numThreads; ++t) {
        threads.emplace_back([t, &results] {
            for (unsigned i = 0; i < runsPerThread; ++i) {
                bool saxpy = (t + i) % 2 == 0;
                results[t * runsPerThread + i] = saxpy
                    ? runWorkload(Design::d1b4VL, "saxpy", Scale::tiny)
                    : runWorkload(Design::d1b4L, "bfs", Scale::tiny);
            }
        });
    }
    for (auto &th : threads)
        th.join();

    for (unsigned t = 0; t < numThreads; ++t) {
        for (unsigned i = 0; i < runsPerThread; ++i) {
            const auto &r = results[t * runsPerThread + i];
            expectIdenticalRuns(
                (t + i) % 2 == 0 ? refSaxpy : refBfs, r);
        }
    }
}

TEST(LogCaptureTest, CapturesThisThreadAndNests)
{
    LogCapture outer;
    warn("outer %d", 1);
    {
        LogCapture inner;
        warn("inner");
        inform("status");   // honoured only if verbose
        EXPECT_NE(inner.text().find("warn: inner\n"),
                  std::string::npos);
        EXPECT_EQ(inner.text().find("outer"), std::string::npos);
    }
    warn("outer %d", 2);
    EXPECT_NE(outer.text().find("warn: outer 1\n"), std::string::npos);
    EXPECT_NE(outer.text().find("warn: outer 2\n"), std::string::npos);
    EXPECT_EQ(outer.text().find("inner"), std::string::npos);
}

TEST(LogCaptureTest, PanicMessageIsCapturedBeforeThrow)
{
    if (abortOnError())
        GTEST_SKIP() << "BVL_ABORT_ON_ERROR is set";
    LogCapture capture;
    EXPECT_THROW(panic("exploded with code %d", 42), SimPanicError);
    EXPECT_NE(capture.text().find("panic: exploded with code 42\n"),
              std::string::npos);
}

} // namespace
} // namespace bvl
