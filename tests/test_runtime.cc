/**
 * @file
 * Unit tests of the work-stealing runtime model: every task executes
 * exactly once, barriers separate phases, heterogeneity picks the
 * vectorized task version on the big core, and multi-worker execution
 * beats a single worker on parallel phases.
 */

#include <gtest/gtest.h>

#include "runtime/ws_runtime.hh"

namespace bvl
{
namespace
{

/** Program: mem[x10] += 1 (each task bumps its own slot). */
ProgramPtr
bumpProgram()
{
    Asm a("bump");
    a.li(xreg(2), 0x100000)
     .slli(xreg(3), xreg(10), 2)
     .add(xreg(2), xreg(2), xreg(3))
     .lw(xreg(4), xreg(2))
     .addi(xreg(4), xreg(4), 1)
     .sw(xreg(4), xreg(2))
     .halt();
    auto p = a.finish();
    p->setTextBase(0x40000000);
    return p;
}

/** Program: mem[0x200000 + 4*x10] = 2 (marks "vector version ran"). */
ProgramPtr
markVectorProgram()
{
    Asm a("markv");
    a.li(xreg(2), 0x200000)
     .slli(xreg(3), xreg(10), 2)
     .add(xreg(2), xreg(2), xreg(3))
     .li(xreg(4), 2)
     .sw(xreg(4), xreg(2))
     .halt();
    auto p = a.finish();
    p->setTextBase(0x40010000);
    return p;
}

TaskGraph
bumpGraph(unsigned phases, unsigned tasksPerPhase, ProgramPtr scalar,
          ProgramPtr vector_ = nullptr)
{
    TaskGraph g;
    unsigned slot = 0;
    for (unsigned ph = 0; ph < phases; ++ph) {
        g.phases.emplace_back();
        for (unsigned t = 0; t < tasksPerPhase; ++t) {
            Task task;
            task.scalar = scalar;
            task.vector = vector_;
            task.args = {{xreg(10), slot++}};
            g.phases.back().tasks.push_back(std::move(task));
        }
    }
    return g;
}

double
runGraph(Soc &soc, TaskGraph g, bool useBig, unsigned littles,
         bool bigVector = false)
{
    WsRuntime rt(soc);
    bool done = false;
    double start = soc.elapsedNs();
    rt.run(std::move(g), useBig, littles, bigVector,
           [&] { done = true; });
    EXPECT_TRUE(soc.runUntil([&] { return done; },
                             soc.eq.now() + 100'000'000ull));
    return soc.elapsedNs() - start;
}

TEST(RuntimeTest, EveryTaskRunsExactlyOnce)
{
    Soc soc(Design::d1b4L);
    auto prog = bumpProgram();
    runGraph(soc, bumpGraph(3, 20, prog), true, 4);
    for (unsigned slot = 0; slot < 60; ++slot)
        EXPECT_EQ(soc.backing.readT<std::int32_t>(0x100000 + 4 * slot),
                  1) << "slot " << slot;
}

TEST(RuntimeTest, SingleWorkerAlsoCompletes)
{
    Soc soc(Design::d1L);
    auto prog = bumpProgram();
    runGraph(soc, bumpGraph(2, 8, prog), false, 1);
    for (unsigned slot = 0; slot < 16; ++slot)
        EXPECT_EQ(soc.backing.readT<std::int32_t>(0x100000 + 4 * slot),
                  1);
}

TEST(RuntimeTest, MoreWorkersFinishFaster)
{
    auto prog = bumpProgram();
    Soc solo(Design::d1L);
    double tSolo = runGraph(solo, bumpGraph(1, 64, prog), false, 1);
    Soc multi(Design::d1b4L);
    double tMulti = runGraph(multi, bumpGraph(1, 64, prog), true, 4);
    EXPECT_LT(tMulti * 2, tSolo);
}

TEST(RuntimeTest, BigCorePrefersVectorVersion)
{
    Soc soc(Design::d1bIV4L);
    auto g = bumpGraph(1, 12, bumpProgram(), markVectorProgram());
    runGraph(soc, std::move(g), true, 0, true);   // big only
    // All tasks ran the "vector" marker program.
    for (unsigned slot = 0; slot < 12; ++slot) {
        EXPECT_EQ(soc.backing.readT<std::int32_t>(0x200000 + 4 * slot),
                  2);
        EXPECT_EQ(soc.backing.readT<std::int32_t>(0x100000 + 4 * slot),
                  0);
    }
}

TEST(RuntimeTest, LittleWorkersRunScalarVersion)
{
    Soc soc(Design::d1bIV4L);
    auto g = bumpGraph(1, 12, bumpProgram(), markVectorProgram());
    runGraph(soc, std::move(g), false, 4, true);   // littles only
    for (unsigned slot = 0; slot < 12; ++slot)
        EXPECT_EQ(soc.backing.readT<std::int32_t>(0x100000 + 4 * slot),
                  1);
}

TEST(RuntimeTest, StealsHappenUnderImbalance)
{
    Soc soc(Design::d1b4L);
    // One phase with many tasks: round-robin spreads them, but the
    // big core drains its share faster and must steal.
    runGraph(soc, bumpGraph(1, 40, bumpProgram()), true, 4);
    EXPECT_GT(soc.stats.value("runtime.pops"), 0u);
    EXPECT_GT(soc.stats.value("runtime.steals") +
                  soc.stats.value("runtime.pops"),
              39u);
}

TEST(RuntimeTest, EmptyPhasesAreSkipped)
{
    Soc soc(Design::d1b4L);
    TaskGraph g;
    g.phases.resize(3);   // all empty
    Task t;
    t.scalar = bumpProgram();
    t.args = {{xreg(10), 0}};
    g.phases.emplace_back();
    g.phases.back().tasks.push_back(std::move(t));
    runGraph(soc, std::move(g), true, 4);
    EXPECT_EQ(soc.backing.readT<std::int32_t>(0x100000), 1);
}

TEST(RuntimeTest, PhasesActAsBarriers)
{
    // Phase 2 reads what phase 1 wrote: a chain of increments to the
    // same slot must serialize correctly across phases.
    Soc soc(Design::d1b4L);
    TaskGraph g;
    for (int ph = 0; ph < 5; ++ph) {
        g.phases.emplace_back();
        Task t;
        t.scalar = bumpProgram();
        t.args = {{xreg(10), 7}};
        g.phases.back().tasks.push_back(std::move(t));
    }
    runGraph(soc, std::move(g), true, 4);
    EXPECT_EQ(soc.backing.readT<std::int32_t>(0x100000 + 4 * 7), 5);
}

} // namespace
} // namespace bvl
