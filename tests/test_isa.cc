/**
 * @file
 * Unit tests for the ISA layer: assembler, scalar semantics, vector
 * semantics (including masking, strided/indexed memory, cross-element
 * ops), and vsetvli behaviour across hardware vector lengths.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "isa/arch_state.hh"
#include "isa/program.hh"
#include "mem/backing_store.hh"

namespace bvl
{
namespace
{

class IsaTest : public ::testing::Test
{
  protected:
    ArchState st{512};
    BackingStore mem;
};

TEST_F(IsaTest, LiAndAdd)
{
    Asm a("t");
    a.li(xreg(1), 40).li(xreg(2), 2).add(xreg(3), xreg(1), xreg(2)).halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    EXPECT_EQ(st.getX(xreg(3)), 42u);
    EXPECT_TRUE(st.halted);
}

TEST_F(IsaTest, X0IsAlwaysZero)
{
    Asm a("t");
    a.li(xreg(0), 123).addi(xreg(1), xreg(0), 7).halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    EXPECT_EQ(st.getX(xreg(0)), 0u);
    EXPECT_EQ(st.getX(xreg(1)), 7u);
}

TEST_F(IsaTest, SignedDivisionSemantics)
{
    Asm a("t");
    a.li(xreg(1), -7).li(xreg(2), 2)
     .div_(xreg(3), xreg(1), xreg(2))
     .rem(xreg(4), xreg(1), xreg(2))
     .li(xreg(5), 0)
     .div_(xreg(6), xreg(1), xreg(5))   // div by zero -> -1
     .rem(xreg(7), xreg(1), xreg(5))    // rem by zero -> dividend
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    EXPECT_EQ(static_cast<std::int64_t>(st.getX(xreg(3))), -3);
    EXPECT_EQ(static_cast<std::int64_t>(st.getX(xreg(4))), -1);
    EXPECT_EQ(static_cast<std::int64_t>(st.getX(xreg(6))), -1);
    EXPECT_EQ(static_cast<std::int64_t>(st.getX(xreg(7))), -7);
}

TEST_F(IsaTest, BranchLoopSumsRange)
{
    // for (i = 0; i < 10; i++) sum += i;
    Asm a("t");
    a.li(xreg(1), 0)        // i
     .li(xreg(2), 0)        // sum
     .li(xreg(3), 10)
     .label("loop")
     .add(xreg(2), xreg(2), xreg(1))
     .addi(xreg(1), xreg(1), 1)
     .blt(xreg(1), xreg(3), "loop")
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    EXPECT_EQ(st.getX(xreg(2)), 45u);
}

TEST_F(IsaTest, ForwardBranchTargetsResolve)
{
    Asm a("t");
    a.li(xreg(1), 1)
     .j("end")
     .li(xreg(1), 99)
     .label("end")
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    EXPECT_EQ(st.getX(xreg(1)), 1u);
}

TEST_F(IsaTest, ScalarLoadStoreWidths)
{
    mem.writeT<std::uint64_t>(0x1000, 0xdeadbeefcafef00dULL);
    Asm a("t");
    a.li(xreg(1), 0x1000)
     .load(xreg(2), xreg(1), 0, 1, false)
     .load(xreg(3), xreg(1), 0, 4, true)
     .ld(xreg(4), xreg(1))
     .li(xreg(5), 0x77)
     .store(xreg(5), xreg(1), 8, 1)
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    EXPECT_EQ(st.getX(xreg(2)), 0x0dull);
    // low 32 bits 0xcafef00d sign-extends to negative
    EXPECT_EQ(st.getX(xreg(3)), 0xffffffffcafef00dULL);
    EXPECT_EQ(st.getX(xreg(4)), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(mem.readT<std::uint8_t>(0x1008), 0x77);
}

TEST_F(IsaTest, ScalarFloatSinglePrecision)
{
    Asm a("t");
    a.li(xreg(1), 3)
     .fcvt_f_x(freg(1), xreg(1), 4)
     .li(xreg(2), 4)
     .fcvt_f_x(freg(2), xreg(2), 4)
     .fmul(freg(3), freg(1), freg(2), 4)
     .fsqrt(freg(4), freg(3), 4)
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    float r;
    std::uint64_t raw = st.getF(freg(4));
    std::uint32_t lo = static_cast<std::uint32_t>(raw);
    std::memcpy(&r, &lo, 4);
    EXPECT_FLOAT_EQ(r, std::sqrt(12.0f));
}

TEST_F(IsaTest, VsetvliClampsToVlmax)
{
    Asm a("t");
    a.li(xreg(1), 1000)
     .vsetvli(xreg(2), xreg(1), 4)
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    // VLEN=512 bits -> 16 x 32-bit elements
    EXPECT_EQ(st.getX(xreg(2)), 16u);
    EXPECT_EQ(st.vl, 16u);

    ArchState wide(2048);
    wide.reset();
    runFunctional(wide, *p, mem);
    EXPECT_EQ(wide.getX(xreg(2)), 64u);
}

TEST_F(IsaTest, VsetvliSmallAvl)
{
    Asm a("t");
    a.li(xreg(1), 5).vsetvli(xreg(2), xreg(1), 4).halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    EXPECT_EQ(st.getX(xreg(2)), 5u);
}

TEST_F(IsaTest, UnitStrideLoadComputeStore)
{
    for (int i = 0; i < 16; ++i)
        mem.writeT<std::int32_t>(0x1000 + 4 * i, i);
    Asm a("t");
    a.li(xreg(1), 16)
     .vsetvli(xreg(2), xreg(1), 4)
     .li(xreg(3), 0x1000)
     .vle(vreg(1), xreg(3), 4)
     .vx(Op::vadd, vreg(2), vreg(1), xreg(2))   // += 16
     .li(xreg(4), 0x2000)
     .vse(vreg(2), xreg(4), 4)
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(mem.readT<std::int32_t>(0x2000 + 4 * i), i + 16);
}

TEST_F(IsaTest, StridedLoad)
{
    for (int i = 0; i < 16; ++i)
        mem.writeT<std::int32_t>(0x1000 + 16 * i, 100 + i);
    Asm a("t");
    a.li(xreg(1), 8)
     .vsetvli(xreg(2), xreg(1), 4)
     .li(xreg(3), 0x1000)
     .li(xreg(4), 16)
     .vlse(vreg(1), xreg(3), xreg(4), 4)
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(st.vecGet(vreg(1), i, 4), 100u + i);
}

TEST_F(IsaTest, IndexedGatherLoad)
{
    for (int i = 0; i < 64; ++i)
        mem.writeT<std::int32_t>(0x1000 + 4 * i, 2 * i);
    Asm a("t");
    a.li(xreg(1), 8)
     .vsetvli(xreg(2), xreg(1), 4)
     .vid(vreg(3))
     .vx(Op::vmul, vreg(3), vreg(3), xreg(4))   // indices *= 28 bytes
     .li(xreg(3), 0x1000)
     .vluxei(vreg(1), xreg(3), vreg(3), 4)
     .halt();
    // stage x4 = 28 before program start
    st.setX(xreg(4), 28);
    auto p = a.finish();
    runFunctional(st, *p, mem);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(st.vecGet(vreg(1), i, 4), 2 * (28 * i / 4));
}

TEST_F(IsaTest, MaskedAddLeavesInactiveElements)
{
    Asm a("t");
    a.li(xreg(1), 8)
     .vsetvli(xreg(2), xreg(1), 4)
     .vid(vreg(1))
     .vi(Op::vmv, vreg(2), regIdInvalid, 77)     // vd = splat 77
     .vi(Op::vmslt, vreg(0), vreg(1), 4)         // mask: i < 4
     .vx(Op::vadd, vreg(2), vreg(1), xreg(3), true)  // masked add
     .halt();
    st.setX(xreg(3), 100);
    auto p = a.finish();
    runFunctional(st, *p, mem);
    for (unsigned i = 0; i < 8; ++i) {
        if (i < 4)
            EXPECT_EQ(st.vecGet(vreg(2), i, 4), 100u + i);
        else
            EXPECT_EQ(st.vecGet(vreg(2), i, 4), 77u);
    }
}

TEST_F(IsaTest, VmergeSelectsByMask)
{
    Asm a("t");
    a.li(xreg(1), 8)
     .vsetvli(xreg(2), xreg(1), 4)
     .vid(vreg(1))
     .vi(Op::vmv, vreg(2), regIdInvalid, 5)
     .vi(Op::vmv, vreg(3), regIdInvalid, 9)
     .vi(Op::vmsgt, vreg(0), vreg(1), 3)    // mask = i > 3
     .vv(Op::vmerge, vreg(4), vreg(2), vreg(3))
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(st.vecGet(vreg(4), i, 4), i > 3 ? 5u : 9u);
}

TEST_F(IsaTest, ReductionSum)
{
    Asm a("t");
    a.li(xreg(1), 16)
     .vsetvli(xreg(2), xreg(1), 4)
     .vid(vreg(1))
     .vmv_s_x(vreg(2), xreg(3))     // init = 1000
     .vv(Op::vredsum, vreg(3), vreg(2), vreg(1))
     .vmv_x_s(xreg(4), vreg(3))
     .halt();
    st.setX(xreg(3), 1000);
    auto p = a.finish();
    runFunctional(st, *p, mem);
    EXPECT_EQ(st.getX(xreg(4)), 1000u + 120u);
}

TEST_F(IsaTest, FpReductionSum)
{
    Asm a("t");
    a.li(xreg(1), 8)
     .vsetvli(xreg(2), xreg(1), 4)
     .li(xreg(3), 0)
     .fcvt_f_x(freg(1), xreg(3), 4)
     .vmv_vf(vreg(2), freg(1))                  // zero accumulator
     .vid(vreg(1))
     .vv(Op::vfadd, vreg(3), vreg(2), regIdInvalid);
    // convert indices to float via scalar loop is tedious: use int sum
    // on purpose here. Just reduce a splatted constant instead.
    Asm b("t2");
    b.li(xreg(1), 8)
     .vsetvli(xreg(2), xreg(1), 4)
     .li(xreg(3), 3)
     .fcvt_f_x(freg(1), xreg(3), 4)
     .vmv_vf(vreg(1), freg(1))                   // v1 = splat 3.0f
     .vv(Op::vfredsum, vreg(2), regIdInvalid, vreg(1))
     .vfmv_f_s(freg(2), vreg(2))
     .halt();
    auto p = b.finish();
    runFunctional(st, *p, mem);
    float r;
    std::uint32_t lo = static_cast<std::uint32_t>(st.getF(freg(2)));
    std::memcpy(&r, &lo, 4);
    EXPECT_FLOAT_EQ(r, 24.0f);
}

TEST_F(IsaTest, VrgatherPermutes)
{
    Asm a("t");
    a.li(xreg(1), 8)
     .vsetvli(xreg(2), xreg(1), 4)
     .vid(vreg(1))                       // data 0..7
     .li(xreg(3), 7)
     .vx(Op::vsub, vreg(2), regIdInvalid, xreg(3));
    // v2 = -7..0: wrong; build reverse indices as 7 - i via vsub.vx on vid
    Asm b("t2");
    b.li(xreg(1), 8)
     .vsetvli(xreg(2), xreg(1), 4)
     .vid(vreg(1))                       // 0..7
     .li(xreg(3), 7)
     .vx(Op::vmul, vreg(4), vreg(1), xreg(4))  // unused
     .vi(Op::vmv, vreg(2), regIdInvalid, 7)    // splat 7
     .vv(Op::vsub, vreg(2), vreg(2), vreg(1))  // 7-i
     .vv(Op::vrgather, vreg(3), vreg(2), vreg(1))  // reverse of data
     .halt();
    auto p = b.finish();
    runFunctional(st, *p, mem);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(st.vecGet(vreg(3), i, 4), 7u - i);
}

TEST_F(IsaTest, SlideUpAndDown)
{
    Asm a("t");
    a.li(xreg(1), 8)
     .vsetvli(xreg(2), xreg(1), 4)
     .vid(vreg(1))
     .vi(Op::vmv, vreg(2), regIdInvalid, 0)
     .vi(Op::vslidedown, vreg(2), vreg(1), 2)
     .vi(Op::vmv, vreg(3), regIdInvalid, 0)
     .vi(Op::vslideup, vreg(3), vreg(1), 3)
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_EQ(st.vecGet(vreg(2), i, 4), i + 2);
    for (unsigned i = 3; i < 8; ++i)
        EXPECT_EQ(st.vecGet(vreg(3), i, 4), i - 3);
}

TEST_F(IsaTest, PopcountAndFirst)
{
    Asm a("t");
    a.li(xreg(1), 8)
     .vsetvli(xreg(2), xreg(1), 4)
     .vid(vreg(1))
     .vi(Op::vmsgt, vreg(4), vreg(1), 4)   // bits for i in {5,6,7}
     .vpopc(xreg(5), vreg(4))
     .vfirst(xreg(6), vreg(4))
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    EXPECT_EQ(st.getX(xreg(5)), 3u);
    EXPECT_EQ(st.getX(xreg(6)), 5u);
}

TEST_F(IsaTest, ExecTraceRecordsVectorAddresses)
{
    Asm a("t");
    a.li(xreg(1), 4)
     .vsetvli(xreg(2), xreg(1), 8)
     .li(xreg(3), 0x4000)
     .vle(vreg(1), xreg(3), 8)
     .halt();
    auto p = a.finish();
    // step through manually
    ExecTrace tr;
    while (!st.halted) {
        tr = stepOne(st, *p, mem);
        if (tr.inst->op == Op::vle)
            break;
    }
    ASSERT_EQ(tr.elemAddrs.size(), 4u);
    EXPECT_EQ(tr.elemAddrs[0], 0x4000u);
    EXPECT_EQ(tr.elemAddrs[3], 0x4018u);
    EXPECT_TRUE(tr.isMem);
    EXPECT_FALSE(tr.isStore);
}

TEST_F(IsaTest, UndefinedLabelPanics)
{
    Asm a("t");
    a.j("nowhere").halt();
    EXPECT_THROW(a.finish(), SimPanicError);
}

TEST_F(IsaTest, VectorElementsSurviveAcrossEw)
{
    // write 8-bit patterns, read as 32-bit
    Asm a("t");
    a.li(xreg(1), 4)
     .vsetvli(xreg(2), xreg(1), 4)
     .vid(vreg(1))
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    EXPECT_EQ(st.vecGet(vreg(1), 0, 4), 0u);
    EXPECT_EQ(st.vecGet(vreg(1), 3, 4), 3u);
    // 16-byte raw prefix should read back as two 64-bit values
    EXPECT_EQ(st.vecGet(vreg(1), 0, 8), 0x0000000100000000ULL);
}

TEST_F(IsaTest, WidenOpsZeroAndSignExtend)
{
    const std::uint8_t bytes[] = {0x01, 0x7f, 0x80, 0xff};
    for (unsigned i = 0; i < 4; ++i)
        mem.writeT<std::uint8_t>(0x1000 + i, bytes[i]);
    Asm a("t");
    a.li(xreg(1), 4)
     .vsetvli(xreg(2), xreg(1), 1)
     .li(xreg(3), 0x1000)
     .vle(vreg(1), xreg(3), 1)
     .vzext2(vreg(2), vreg(1), 1)
     .vsext2(vreg(3), vreg(1), 1)
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    const std::uint16_t zext[] = {0x0001, 0x007f, 0x0080, 0x00ff};
    const std::uint16_t sext[] = {0x0001, 0x007f, 0xff80, 0xffff};
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(st.vecGet(vreg(2), i, 2), zext[i]) << i;
        EXPECT_EQ(st.vecGet(vreg(3), i, 2), sext[i]) << i;
    }
}

TEST_F(IsaTest, NarrowClipSaturatesSigned)
{
    const std::int16_t vals[] = {1000, -1000, 70, -70};
    for (unsigned i = 0; i < 4; ++i)
        mem.writeT<std::int16_t>(0x1000 + 2 * i, vals[i]);
    Asm a("t");
    a.li(xreg(1), 4)
     .vsetvli(xreg(2), xreg(1), 2)
     .li(xreg(3), 0x1000)
     .vle(vreg(1), xreg(3), 2)
     .vnclip2(vreg(2), vreg(1), 2, 1, true)   // sat8((v >> 2))
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    // 250 -> 127, -250 -> -128, 17 stays, -70>>2 arithmetic -> -18
    const std::uint8_t want[] = {0x7f, 0x80, 17,
                                 static_cast<std::uint8_t>(-18)};
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(st.vecGet(vreg(2), i, 1), want[i]) << i;
}

TEST_F(IsaTest, NarrowClipSaturatesUnsigned)
{
    const std::int16_t vals[] = {300, -5, 128, 255};
    for (unsigned i = 0; i < 4; ++i)
        mem.writeT<std::int16_t>(0x1000 + 2 * i, vals[i]);
    Asm a("t");
    a.li(xreg(1), 4)
     .vsetvli(xreg(2), xreg(1), 2)
     .li(xreg(3), 0x1000)
     .vle(vreg(1), xreg(3), 2)
     .vnclip2(vreg(2), vreg(1), 0, 1, false)  // clampU8, no shift
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    const std::uint8_t want[] = {255, 0, 128, 255};
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(st.vecGet(vreg(2), i, 1), want[i]) << i;
}

TEST_F(IsaTest, ByteElementLoadCompareScan)
{
    // memchr building block at ew=1: load bytes, compare-eq against
    // zero, vfirst finds the first delimiter.
    for (unsigned i = 0; i < 16; ++i)
        mem.writeT<std::uint8_t>(0x1000 + i, i == 11 ? 0 : 0x41);
    Asm a("t");
    a.li(xreg(1), 16)
     .vsetvli(xreg(2), xreg(1), 1)
     .li(xreg(3), 0x1000)
     .vle(vreg(1), xreg(3), 1)
     .vi(Op::vmseq, vreg(2), vreg(1), 0)
     .vfirst(xreg(4), vreg(2))
     .halt();
    auto p = a.finish();
    runFunctional(st, *p, mem);
    EXPECT_EQ(static_cast<std::int64_t>(st.getX(xreg(4))), 11);
}

class IsaVlenTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(IsaVlenTest, StripmineLoopIsVlenInvariant)
{
    // Compute saxpy over 100 elements with stripmining; the result
    // must be identical for every hardware vector length.
    const unsigned n = 100;
    BackingStore mem;
    for (unsigned i = 0; i < n; ++i) {
        mem.writeT<float>(0x1000 + 4 * i, 1.0f * i);
        mem.writeT<float>(0x2000 + 4 * i, 100.0f - i);
    }
    Asm a("saxpy");
    a.li(xreg(1), n)          // remaining
     .li(xreg(2), 0x1000)     // &x
     .li(xreg(3), 0x2000)     // &y
     .li(xreg(5), 2)
     .fcvt_f_x(freg(1), xreg(5), 4)   // a = 2.0
     .label("loop")
     .vsetvli(xreg(4), xreg(1), 4)
     .vle(vreg(1), xreg(2), 4)
     .vle(vreg(2), xreg(3), 4)
     .vf(Op::vfmacc, vreg(2), vreg(1), freg(1))
     .vse(vreg(2), xreg(3), 4)
     .slli(xreg(6), xreg(4), 2)
     .add(xreg(2), xreg(2), xreg(6))
     .add(xreg(3), xreg(3), xreg(6))
     .sub(xreg(1), xreg(1), xreg(4))
     .bne(xreg(1), xreg(0), "loop")
     .halt();
    auto p = a.finish();

    ArchState st(GetParam());
    runFunctional(st, *p, mem);
    for (unsigned i = 0; i < n; ++i) {
        float got = mem.readT<float>(0x2000 + 4 * i);
        EXPECT_FLOAT_EQ(got, 2.0f * i + (100.0f - i)) << "i=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(AllVlens, IsaVlenTest,
                         ::testing::Values(128u, 256u, 512u, 1024u, 2048u));

} // namespace
} // namespace bvl
