/**
 * @file
 * Unit tests for the scalar core timing models (little in-order core,
 * big out-of-order core): functional correctness under timing, stall
 * accounting invariants, memory-latency sensitivity, OoO speedup over
 * in-order, and branch-misprediction behaviour.
 */

#include <gtest/gtest.h>

#include "cpu/big_core.hh"
#include "cpu/little_core.hh"
#include "mem/mem_system.hh"
#include "sim/clock_domain.hh"

namespace bvl
{
namespace
{

struct CoreHarness
{
    CoreHarness()
        : uncore(eq, "uncore", 1.0), cores(eq, "cores", 1.0),
          sys(uncore, stats),
          little(cores, stats, sys, backing, 0, 512),
          big(cores, stats, sys, backing, 512)
    {}

    /** Run @p prog on the little core to completion, return cycles. */
    std::uint64_t
    runLittle(ProgramPtr prog,
              std::vector<std::pair<RegId, std::uint64_t>> args = {})
    {
        bool done = false;
        Tick start = eq.now();
        little.runProgram(std::move(prog), args, [&] { done = true; });
        while (!done && eq.step()) {}
        EXPECT_TRUE(done);
        return cores.ticksToCycles(eq.now() - start);
    }

    std::uint64_t
    runBig(ProgramPtr prog,
           std::vector<std::pair<RegId, std::uint64_t>> args = {})
    {
        bool done = false;
        Tick start = eq.now();
        big.runProgram(std::move(prog), args, [&] { done = true; });
        while (!done && eq.step()) {}
        EXPECT_TRUE(done);
        return cores.ticksToCycles(eq.now() - start);
    }

    EventQueue eq;
    ClockDomain uncore;
    ClockDomain cores;
    StatGroup stats;
    BackingStore backing;
    MemSystem sys;
    LittleCore little;
    BigCore big;
};

ProgramPtr
sumLoopProgram(int n)
{
    Asm a("sumloop");
    a.li(xreg(1), 0)
     .li(xreg(2), 0)
     .li(xreg(3), n)
     .label("loop")
     .add(xreg(2), xreg(2), xreg(1))
     .addi(xreg(1), xreg(1), 1)
     .blt(xreg(1), xreg(3), "loop")
     .halt();
    return a.finish();
}

/** Long chain of independent adds (ILP test). */
ProgramPtr
independentAddsProgram(int n)
{
    Asm a("indep");
    for (int i = 0; i < n; ++i)
        a.addi(xreg(1 + (i % 8)), xreg(0), i);
    a.halt();
    return a.finish();
}

TEST(CoreTest, LittleRunsLoopCorrectly)
{
    CoreHarness h;
    auto cycles = h.runLittle(sumLoopProgram(50));
    EXPECT_EQ(h.little.archState().getX(xreg(2)), 1225u);
    // 3 instructions per iteration, plus stalls: well under 20x.
    EXPECT_GT(cycles, 150u);
    EXPECT_LT(cycles, 2000u);
}

TEST(CoreTest, LittleStallCategoriesSumToCycles)
{
    CoreHarness h;
    h.runLittle(sumLoopProgram(100));
    std::uint64_t cycles = h.stats.value("little0.cycles");
    std::uint64_t sum = 0;
    for (auto cause : {"busy", "simd", "raw_mem", "raw_llfu", "struct",
                       "xelem", "misc"})
        sum += h.stats.value(std::string("little0.stall.") + cause);
    EXPECT_EQ(sum, cycles);
    EXPECT_EQ(h.stats.value("little0.stall.busy"),
              h.stats.value("little0.retired"));
}

TEST(CoreTest, LittleLoadLatencyShowsAsRawMem)
{
    CoreHarness h;
    // Pointer-chase-like: each load feeds the next address.
    for (int i = 0; i < 64; ++i)
        h.backing.writeT<std::uint64_t>(0x1000 + 8 * i, 0x1000 + 8 * (i + 1));
    Asm a("chase");
    a.li(xreg(1), 0x1000)
     .li(xreg(2), 0)
     .li(xreg(3), 32)
     .label("loop")
     .ld(xreg(1), xreg(1))
     .addi(xreg(2), xreg(2), 1)
     .blt(xreg(2), xreg(3), "loop")
     .halt();
    h.runLittle(a.finish());
    EXPECT_GT(h.stats.value("little0.stall.raw_mem"), 32u);
}

TEST(CoreTest, LittleDivStallsAsRawLlfu)
{
    CoreHarness h;
    Asm a("divs");
    a.li(xreg(1), 1000).li(xreg(2), 3);
    for (int i = 0; i < 10; ++i) {
        a.div_(xreg(3), xreg(1), xreg(2));
        a.addi(xreg(4), xreg(3), 1);   // immediately consume
    }
    a.halt();
    h.runLittle(a.finish());
    EXPECT_GT(h.stats.value("little0.stall.raw_llfu"), 50u);
}

TEST(CoreTest, BigBeatsLittleOnIlp)
{
    // Warm the instruction path first: the comparison is about issue
    // width, not cold-fetch DRAM latency.
    CoreHarness h;
    h.runLittle(independentAddsProgram(400));
    auto lcycles = h.runLittle(independentAddsProgram(400));
    CoreHarness h2;
    h2.runBig(independentAddsProgram(400));
    auto bcycles = h2.runBig(independentAddsProgram(400));
    // 3 ALUs + 4-wide vs single-issue.
    EXPECT_LT(bcycles * 2, lcycles);
}

TEST(CoreTest, BigProducesCorrectArchState)
{
    CoreHarness h;
    h.runBig(sumLoopProgram(80));
    EXPECT_EQ(h.big.archState().getX(xreg(2)), 80u * 79u / 2u);
}

TEST(CoreTest, BigStoreLoadDependencyOrdersCorrectly)
{
    CoreHarness h;
    Asm a("stld");
    a.li(xreg(1), 0x2000)
     .li(xreg(2), 42)
     .sd(xreg(2), xreg(1))
     .ld(xreg(3), xreg(1))
     .addi(xreg(4), xreg(3), 1)
     .halt();
    h.runBig(a.finish());
    EXPECT_EQ(h.big.archState().getX(xreg(4)), 43u);
}

TEST(CoreTest, BigMispredictsOnDataDependentBranches)
{
    CoreHarness h;
    // Alternate taken/not-taken in a data-dependent (parity) pattern
    // with short history warmup; expect some mispredictions but also
    // correct final state.
    Asm a("parity");
    a.li(xreg(1), 0)     // i
     .li(xreg(2), 0)     // acc
     .li(xreg(3), 200)
     .label("loop")
     .andi(xreg(4), xreg(1), 1)
     .beq(xreg(4), xreg(0), "even")
     .addi(xreg(2), xreg(2), 2)
     .j("next")
     .label("even")
     .addi(xreg(2), xreg(2), 1)
     .label("next")
     .addi(xreg(1), xreg(1), 1)
     .blt(xreg(1), xreg(3), "loop")
     .halt();
    h.runBig(a.finish());
    EXPECT_EQ(h.big.archState().getX(xreg(2)), 100u * 3u);
    // gshare learns the alternation quickly; mispredicts stay low.
    EXPECT_LT(h.stats.value("big.mispredicts"), 60u);
}

TEST(CoreTest, BigFetchesLinesNotInstructions)
{
    CoreHarness h;
    h.runBig(independentAddsProgram(160));
    // 160 insts * 4B = 640B = ~11 lines; the prefetcher turns most
    // into prefetches, but demand + prefetch requests must cover all
    // lines and not exceed them by much.
    auto total = h.stats.value("big.fetchLineReqs") +
                 h.stats.value("big.fetchPrefetches");
    EXPECT_GE(total, 11u);
    EXPECT_LE(total, 20u);
}

TEST(CoreTest, LittleBackToBackProgramsReuseCore)
{
    CoreHarness h;
    h.runLittle(sumLoopProgram(10));
    auto first = h.little.archState().getX(xreg(2));
    h.runLittle(sumLoopProgram(20));
    EXPECT_EQ(first, 45u);
    EXPECT_EQ(h.little.archState().getX(xreg(2)), 190u);
}

TEST(CoreTest, ArgumentRegistersAreApplied)
{
    CoreHarness h;
    Asm a("args");
    a.add(xreg(3), xreg(10), xreg(11)).halt();
    h.runLittle(a.finish(), {{xreg(10), 30}, {xreg(11), 12}});
    EXPECT_EQ(h.little.archState().getX(xreg(3)), 42u);
}

TEST(CoreTest, ColdCacheSlowerThanWarm)
{
    CoreHarness h;
    // Sum an array twice; second pass should be much faster.
    const int n = 256;
    for (int i = 0; i < n; ++i)
        h.backing.writeT<std::uint64_t>(0x10000 + 8 * i, 1);
    auto pass = [&]() {
        Asm a("sumarr");
        a.li(xreg(1), 0x10000)
         .li(xreg(2), 0)
         .li(xreg(3), n)
         .li(xreg(5), 0)
         .label("loop")
         .ld(xreg(4), xreg(1))
         .add(xreg(5), xreg(5), xreg(4))
         .addi(xreg(1), xreg(1), 8)
         .addi(xreg(2), xreg(2), 1)
         .blt(xreg(2), xreg(3), "loop")
         .halt();
        return a.finish();
    };
    auto cold = h.runLittle(pass());
    auto warm = h.runLittle(pass());
    EXPECT_LT(warm, cold);
    EXPECT_EQ(h.little.archState().getX(xreg(5)),
              static_cast<std::uint64_t>(n));
}

} // namespace
} // namespace bvl
