/**
 * @file
 * Property tests of the cache timing model under randomized request
 * streams: counter conservation (hits + misses == accesses, fills <=
 * misses), capacity (resident lines never exceed ways x sets),
 * determinism across repeated runs, LRU retention of hot lines, and
 * mode-switch hygiene of the reconfigurable indexing.
 */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"
#include "sim/rng.hh"

namespace bvl
{
namespace
{

struct CacheHarness
{
    CacheHarness() : uncore(eq, "u", 1.0), sys(uncore, stats) {}

    /** Issue a random request stream and drain the queue. */
    void
    randomStream(std::uint64_t seed, unsigned count, Addr span,
                 unsigned coreId = 0)
    {
        Rng rng(seed);
        unsigned pending = 0;
        for (unsigned i = 0; i < count; ++i) {
            Addr addr = rng.below(span) & ~Addr(3);
            bool write = rng.below(4) == 0;
            ++pending;
            sys.accessData(coreId, addr, write, [&] { --pending; });
            // Occasionally drain to bound queue growth.
            if (i % 16 == 15)
                while (pending > 0 && eq.step()) {}
        }
        while (pending > 0 && eq.step()) {}
        eq.run();
    }

    EventQueue eq;
    ClockDomain uncore;
    StatGroup stats;
    MemSystem sys;
};

class CacheStreamTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(CacheStreamTest, CountersAreConserved)
{
    CacheHarness h;
    h.randomStream(GetParam(), 600, 256 * 1024);
    auto a = h.stats.value("little0.l1d.accesses");
    auto hits = h.stats.value("little0.l1d.hits");
    auto misses = h.stats.value("little0.l1d.misses");
    EXPECT_EQ(a, hits + misses);
    EXPECT_GT(a, 0u);
    EXPECT_LE(h.stats.value("little0.l1d.fills"), misses);
    EXPECT_LE(h.stats.value("little0.l1d.writebacks"),
              h.stats.value("little0.l1d.evictions"));
    // L2 sees only L1 misses (plus writebacks).
    EXPECT_LE(h.stats.value("l2.accesses"),
              misses + h.stats.value("little0.l1d.writebacks"));
}

TEST_P(CacheStreamTest, DeterministicAcrossRuns)
{
    CacheHarness h1, h2;
    h1.randomStream(GetParam(), 400, 128 * 1024);
    h2.randomStream(GetParam(), 400, 128 * 1024);
    EXPECT_EQ(h1.stats.value("little0.l1d.hits"),
              h2.stats.value("little0.l1d.hits"));
    EXPECT_EQ(h1.stats.value("dram.reads"),
              h2.stats.value("dram.reads"));
    EXPECT_EQ(h1.eq.now(), h2.eq.now());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheStreamTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(CachePropertyTest, SmallFootprintEventuallyAllHits)
{
    CacheHarness h;
    // 8KB working set fits the 32KB L1D: after a warm pass, a second
    // pass must be all hits.
    for (int pass = 0; pass < 2; ++pass) {
        if (pass == 1)
            h.stats.resetAll();
        unsigned pending = 0;
        for (Addr a = 0; a < 8 * 1024; a += 64) {
            ++pending;
            h.sys.accessData(0, 0x20000 + a, false, [&] { --pending; });
            while (pending > 0 && h.eq.step()) {}
        }
    }
    EXPECT_EQ(h.stats.value("little0.l1d.misses"), 0u);
    EXPECT_GT(h.stats.value("little0.l1d.hits"), 0u);
}

TEST(CachePropertyTest, LargerFootprintMissesMore)
{
    auto missRate = [](Addr span) {
        CacheHarness h;
        h.randomStream(99, 800, span);
        double a = double(h.stats.value("little0.l1d.accesses"));
        return double(h.stats.value("little0.l1d.misses")) / a;
    };
    double small = missRate(16 * 1024);     // fits L1
    double large = missRate(1024 * 1024);   // far exceeds L1
    EXPECT_LT(small, large);
}

TEST(CachePropertyTest, HotLineSurvivesLru)
{
    CacheHarness h;
    auto touch = [&](Addr a) {
        bool done = false;
        h.sys.accessData(0, a, false, [&] { done = true; });
        while (!done && h.eq.step()) {}
    };
    // Keep re-touching one line while streaming conflicting lines
    // through the same set (32KB 2-way: sets repeat every 16KB).
    touch(0x10000);
    for (int i = 1; i <= 6; ++i) {
        touch(0x10000 + Addr(i) * 16 * 1024);   // conflicts
        touch(0x10000);                          // keep it hot
    }
    EXPECT_TRUE(h.sys.littleL1D(0).probe(0x10000));
}

TEST(CachePropertyTest, ModeSwitchKeepsSingleCopyPerCache)
{
    CacheHarness h;
    auto touch = [&](bool banked, Addr a) {
        bool done = false;
        if (banked)
            h.sys.accessBank(h.sys.bankOf(a), a, false,
                             [&] { done = true; });
        else
            h.sys.accessData(0, a, false, [&] { done = true; });
        while (!done && h.eq.step()) {}
    };
    // Alternate modes over the same addresses; residentAnywhere must
    // never observe duplicates (fills drop the stale-mode copy), which
    // would otherwise corrupt capacity accounting.
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        Addr a = (rng.below(512) * 64) & ~Addr(63);
        bool banked = rng.below(2) == 0;
        h.sys.setVectorMode(banked);
        if (banked && h.sys.bankOf(a) != 0)
            continue;
        touch(banked, a);
        EXPECT_TRUE(h.sys.littleL1D(0).residentAnywhere(a));
    }
    h.sys.setVectorMode(false);
}

} // namespace
} // namespace bvl
