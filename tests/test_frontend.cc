/**
 * @file
 * Unit tests of front-end helpers and small components: the gshare
 * predictor, the prefetching fetch buffer, the backing store's edge
 * cases, disassembly, and the bank-mode cache indexing maths.
 */

#include <gtest/gtest.h>

#include "cpu/bpred.hh"
#include "cpu/fetch_buffer.hh"
#include "mem/backing_store.hh"
#include "mem/mem_system.hh"
#include "isa/program.hh"

namespace bvl
{
namespace
{

TEST(BpredTest, LearnsAlwaysTaken)
{
    GsharePredictor bp(10);
    // Enough updates for the global history to saturate at all-taken,
    // so the same table index trains repeatedly.
    for (int i = 0; i < 30; ++i)
        bp.update(0x40, true);
    EXPECT_TRUE(bp.predict(0x40));
}

TEST(BpredTest, LearnsAlternationThroughHistory)
{
    GsharePredictor bp(10);
    // Alternating T/N at one pc: global history disambiguates.
    int mispredicts = 0;
    bool taken = false;
    for (int i = 0; i < 400; ++i) {
        taken = !taken;
        if (bp.predict(0x80) != taken && i > 100)
            ++mispredicts;
        bp.update(0x80, taken);
    }
    EXPECT_LT(mispredicts, 10);
}

TEST(BpredTest, ResetForgets)
{
    GsharePredictor bp(10);
    for (int i = 0; i < 8; ++i)
        bp.update(0x40, true);
    bp.reset();
    EXPECT_FALSE(bp.predict(0x40));   // counters back to weakly-NT
}

/** Clocked stub that records whether its tick ever fired. */
class WakeProbe : public Clocked
{
  public:
    using Clocked::Clocked;
    bool woke = false;

  protected:
    bool tick() override { woke = true; return false; }
};

class FetchBufTest : public ::testing::Test
{
  protected:
    FetchBufTest()
        : uncore(eq, "u", 1.0), sys(uncore, stats),
          buf(sys, 0, stats, "t.", 8, 3), probe(uncore, "probe")
    {}

    EventQueue eq;
    ClockDomain uncore;
    StatGroup stats;
    MemSystem sys;
    FetchBuffer buf;
    WakeProbe probe;
};

TEST_F(FetchBufTest, DemandLineBecomesReady)
{
    EXPECT_FALSE(buf.lineReady(0x1000, &probe));
    eq.run();
    EXPECT_TRUE(probe.woke);
    EXPECT_TRUE(buf.lineReady(0x1000, nullptr));
    EXPECT_TRUE(buf.lineReady(0x103f, nullptr));   // same line
}

TEST_F(FetchBufTest, PrefetchesSequentialLines)
{
    buf.lineReady(0x1000, nullptr);
    eq.run();
    // depth-3 prefetch: the next three lines arrive without demand.
    EXPECT_TRUE(buf.lineReady(0x1040, nullptr));
    EXPECT_TRUE(buf.lineReady(0x1080, nullptr));
    EXPECT_TRUE(buf.lineReady(0x10c0, nullptr));
    EXPECT_EQ(stats.value("t.fetchLineReqs"), 1u);
    EXPECT_GE(stats.value("t.fetchPrefetches"), 3u);
}

TEST_F(FetchBufTest, CapacityEvictsOldLines)
{
    // Touch far more lines than the 8-entry capacity.
    for (int i = 0; i < 24; ++i) {
        buf.lineReady(0x1000 + i * 0x40, nullptr);
        eq.run();
    }
    // The very first line must have been evicted: demand again.
    auto before = stats.value("t.fetchLineReqs");
    EXPECT_FALSE(buf.lineReady(0x1000, nullptr));
    EXPECT_GT(stats.value("t.fetchLineReqs"), before);
}

TEST(BackingStoreTest, PageStraddlingAccess)
{
    BackingStore mem;
    Addr edge = BackingStore::pageBytes - 4;
    mem.writeT<std::uint64_t>(edge, 0x1122334455667788ULL);
    EXPECT_EQ(mem.readT<std::uint64_t>(edge), 0x1122334455667788ULL);
    EXPECT_EQ(mem.readT<std::uint32_t>(edge), 0x55667788u);
    EXPECT_EQ(mem.readT<std::uint32_t>(BackingStore::pageBytes),
              0x11223344u);
    EXPECT_EQ(mem.allocatedPages(), 2u);
}

TEST(BackingStoreTest, UnwrittenMemoryReadsZero)
{
    BackingStore mem;
    EXPECT_EQ(mem.readT<std::uint64_t>(0xdeadb000), 0u);
    EXPECT_EQ(mem.readInt(12345, 2), 0u);
    EXPECT_EQ(mem.allocatedPages(), 0u);
}

TEST(BackingStoreTest, PartialWidthWrites)
{
    BackingStore mem;
    mem.writeT<std::uint64_t>(0x100, ~0ull);
    mem.writeInt(0x102, 0, 2);
    EXPECT_EQ(mem.readT<std::uint64_t>(0x100),
              0xffffffff0000ffffULL);
}

TEST(DisasmTest, InstrToStringIsReadable)
{
    Asm a("t");
    a.li(xreg(1), 42)
     .vle(vreg(2), xreg(1), 4)
     .blt(xreg(1), xreg(2), "end")
     .label("end")
     .halt();
    auto p = a.finish();
    EXPECT_NE(p->at(0).toString().find("li"), std::string::npos);
    EXPECT_NE(p->at(0).toString().find("#42"), std::string::npos);
    EXPECT_NE(p->at(1).toString().find("vle"), std::string::npos);
    EXPECT_NE(p->at(2).toString().find("-> @3"), std::string::npos);
    EXPECT_NE(p->toString().find("(4 insts)"), std::string::npos);
}

TEST(BankMapTest, BankBitsAboveOffset)
{
    BankMap map;
    map.numBanks = 4;
    EXPECT_EQ(map.bankOf(0x0), 0u);
    EXPECT_EQ(map.bankOf(0x40), 1u);
    EXPECT_EQ(map.bankOf(0x80), 2u);
    EXPECT_EQ(map.bankOf(0xc0), 3u);
    EXPECT_EQ(map.bankOf(0x100), 0u);
    // Bank-local line numbers strip the bank bits.
    EXPECT_EQ(map.bankLocalLine(0x40), map.bankLocalLine(0x0) + 0u);
    EXPECT_EQ(map.bankLocalLine(0x100), 1u);
}

TEST(ProgramTest, TextBasePlacesInstructions)
{
    Asm a("t");
    a.nop().nop().halt();
    auto p = a.finish();
    p->setTextBase(0x50000000);
    EXPECT_EQ(p->instAddr(0), 0x50000000u);
    EXPECT_EQ(p->instAddr(2), 0x50000008u);
}

TEST(ProgramTest, OutOfRangePcPanics)
{
    Asm a("t");
    a.halt();
    auto p = a.finish();
    EXPECT_THROW(p->at(5), SimPanicError);
}

} // namespace
} // namespace bvl
