/**
 * @file
 * Tests of the analytical models: Table-VI area (must reproduce the
 * paper's totals and ~2% overheads, and respond to queue-size
 * ablations), Table-VII power levels, and the Pareto-frontier helper.
 */

#include <gtest/gtest.h>

#include "area/area_model.hh"
#include "power/power_model.hh"
#include "vector/engine_presets.hh"

namespace bvl
{
namespace
{

TEST(AreaTest, ReproducesPaperTotalsSimpleCore)
{
    auto r = computeClusterArea(LittleCoreRtl::simple, vlittlePreset());
    EXPECT_NEAR(r.total4L, 427.0, 1.0);
    EXPECT_NEAR(r.total4VL, 437.4, 1.0);
    EXPECT_NEAR(r.overheadPercent, 2.4, 0.2);
}

TEST(AreaTest, ReproducesPaperTotalsAriane)
{
    auto r = computeClusterArea(LittleCoreRtl::ariane, vlittlePreset());
    EXPECT_NEAR(r.overheadPercent, 2.1, 0.2);
}

TEST(AreaTest, BiggerQueuesCostMoreArea)
{
    auto base = computeClusterArea(LittleCoreRtl::simple,
                                   vlittlePreset());
    auto bigq = vlittlePreset();
    bigq.vmiuQueueDepth *= 4;
    bigq.dataQueueDepth *= 4;
    bigq.uopQueueDepth *= 4;
    auto r = computeClusterArea(LittleCoreRtl::simple, bigq);
    EXPECT_GT(r.total4VL, base.total4VL);
    EXPECT_GT(r.overheadPercent, base.overheadPercent);
}

TEST(AreaTest, DveEstimateIsAreaComparable)
{
    auto e = estimateDveArea();
    // Section VI: a 4-Ariane cluster is roughly the size of the
    // 8-lane Ara-class engine.
    EXPECT_GT(e.ratio, 0.8);
    EXPECT_LT(e.ratio, 1.3);
}

TEST(PowerTest, LevelsAreMonotonic)
{
    for (unsigned i = 1; i < bigLevels.size(); ++i) {
        EXPECT_GT(bigLevels[i].freqGhz, bigLevels[i - 1].freqGhz);
        EXPECT_GT(bigLevels[i].watts, bigLevels[i - 1].watts);
    }
    for (unsigned i = 1; i < littleLevels.size(); ++i) {
        EXPECT_GT(littleLevels[i].freqGhz, littleLevels[i - 1].freqGhz);
        EXPECT_GT(littleLevels[i].watts, littleLevels[i - 1].watts);
    }
}

TEST(PowerTest, LittleClusterIsMuchCheaperThanBig)
{
    // The big core at a given frequency burns several times the
    // little cluster at the same frequency (the premise of the
    // paper's power-trading argument).
    EXPECT_GT(bigLevels[1].watts, 1.5 * littleLevels[2].watts);
}

TEST(PowerTest, DvePowerDominatesInHighRegion)
{
    double dv = systemPowerW(Design::d1bDV, bigLevels[1],
                             littleLevels[1]);
    double vl = systemPowerW(Design::d1b4VL, bigLevels[1],
                             littleLevels[1]);
    EXPECT_GT(dv, vl);
    // 1bDV cannot reach the sub-1W region even at its lowest level.
    EXPECT_GT(systemPowerW(Design::d1bDV, bigLevels[0],
                           littleLevels[0]),
              systemPowerW(Design::d1b4VL, bigLevels[0],
                           littleLevels[3]));
}

TEST(PowerTest, ParetoFrontierIsNonDominatedAndSorted)
{
    std::vector<PerfPowerPoint> pts = {
        {0, 0, 100.0, 1.0},
        {0, 1, 90.0, 1.5},
        {0, 2, 95.0, 2.0},   // dominated by (90, 1.5)
        {1, 0, 120.0, 0.5},
        {1, 1, 80.0, 3.0},
    };
    auto f = paretoFrontier(pts);
    ASSERT_EQ(f.size(), 4u);
    for (unsigned i = 1; i < f.size(); ++i) {
        EXPECT_GE(f[i].watts, f[i - 1].watts);
        EXPECT_LE(f[i].ns, f[i - 1].ns);
    }
    for (const auto &a : f)
        for (const auto &b : f)
            EXPECT_FALSE(a.dominates(b) && b.dominates(a));
}

TEST(PowerTest, FrontierOfSinglePointIsItself)
{
    std::vector<PerfPowerPoint> pts = {{0, 0, 10.0, 1.0}};
    auto f = paretoFrontier(pts);
    ASSERT_EQ(f.size(), 1u);
    EXPECT_EQ(f[0].ns, 10.0);
}

} // namespace
} // namespace bvl
