/**
 * @file
 * Unit tests for the memory hierarchy: cache hit/miss timing, MSHR
 * behaviour, LRU and writebacks, directory invalidations, DRAM
 * bandwidth, and the reconfigurable banked indexing used in vector
 * mode.
 */

#include <gtest/gtest.h>

#include "mem/mem_system.hh"
#include "sim/clock_domain.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace bvl
{
namespace
{

class MemTest : public ::testing::Test
{
  protected:
    MemTest() : uncore(eq, "uncore", 1.0), sys(uncore, stats) {}

    /** Run until drained and return completion tick of a callback. */
    Tick
    runUntilDone(bool &done)
    {
        Tick t = 0;
        while (!done && eq.step())
            t = eq.now();
        EXPECT_TRUE(done);
        return t;
    }

    EventQueue eq;
    ClockDomain uncore;
    StatGroup stats;
    MemSystem sys;
};

TEST_F(MemTest, ColdMissThenHit)
{
    bool done = false;
    sys.accessData(0, 0x1000, false, [&] { done = true; });
    Tick missTick = runUntilDone(done);

    // A hit to the same line must be much faster than the miss.
    bool done2 = false;
    sys.accessData(0, 0x1020, false, [&] { done2 = true; });
    Tick start = eq.now();
    while (!done2 && eq.step()) {}
    Tick hitLatency = eq.now() - start;

    EXPECT_GT(missTick, hitLatency * 5);
    EXPECT_EQ(stats.value("little0.l1d.hits"), 1u);
    EXPECT_EQ(stats.value("little0.l1d.misses"), 1u);
}

TEST_F(MemTest, MissLatencyIncludesDram)
{
    bool done = false;
    sys.accessData(0, 0x1000, false, [&] { done = true; });
    Tick t = runUntilDone(done);
    // l1 2cy + l2 20cy + dram 80ns at 1GHz -> at least 100ns.
    EXPECT_GE(t, 100 * ticksPerNs);
}

TEST_F(MemTest, SecondaryMissPiggybacksOnMshr)
{
    bool a = false, b = false;
    sys.accessData(0, 0x2000, false, [&] { a = true; });
    sys.accessData(0, 0x2008, false, [&] { b = true; });
    while ((!a || !b) && eq.step()) {}
    EXPECT_TRUE(a && b);
    // Only one DRAM read for the shared line.
    EXPECT_EQ(stats.value("dram.reads"), 1u);
    EXPECT_EQ(stats.value("little0.l1d.misses"), 2u);
    EXPECT_EQ(stats.value("little0.l1d.fills"), 1u);
}

TEST_F(MemTest, L2HitAvoidsDram)
{
    bool a = false;
    sys.accessData(0, 0x3000, false, [&] { a = true; });
    runUntilDone(a);
    // Different little core, same line: L1 miss, L2 hit.
    bool b = false;
    sys.accessData(1, 0x3000, false, [&] { b = true; });
    runUntilDone(b);
    EXPECT_EQ(stats.value("dram.reads"), 1u);
    EXPECT_EQ(stats.value("l2.hits"), 1u);
}

TEST_F(MemTest, EvictionWritesBackDirtyLine)
{
    // 32KB 2-way: lines mapping to the same set are 16KB apart.
    // Fill both ways dirty, then force an eviction with a third line.
    bool d1 = false, d2 = false, d3 = false;
    sys.accessData(0, 0x10000, true, [&] { d1 = true; });
    runUntilDone(d1);
    sys.accessData(0, 0x10000 + 16 * 1024, true, [&] { d2 = true; });
    runUntilDone(d2);
    sys.accessData(0, 0x10000 + 32 * 1024, true, [&] { d3 = true; });
    runUntilDone(d3);
    EXPECT_EQ(stats.value("little0.l1d.evictions"), 1u);
    EXPECT_EQ(stats.value("little0.l1d.writebacks"), 1u);
}

TEST_F(MemTest, DirectoryInvalidatesOtherSharersOnWrite)
{
    bool a = false, b = false;
    sys.accessData(0, 0x4000, false, [&] { a = true; });
    runUntilDone(a);
    sys.accessData(1, 0x4000, false, [&] { b = true; });
    runUntilDone(b);
    EXPECT_TRUE(sys.littleL1D(0).residentAnywhere(0x4000));
    EXPECT_TRUE(sys.littleL1D(1).residentAnywhere(0x4000));

    // Core 2 writes: both copies must be invalidated. The write misses
    // core 2's L1D, so the directory sees it.
    bool c = false;
    sys.accessData(2, 0x4000, true, [&] { c = true; });
    runUntilDone(c);
    EXPECT_FALSE(sys.littleL1D(0).residentAnywhere(0x4000));
    EXPECT_FALSE(sys.littleL1D(1).residentAnywhere(0x4000));
    EXPECT_TRUE(sys.littleL1D(2).residentAnywhere(0x4000));
    EXPECT_GE(stats.value("l2.dir.invalidates"), 1u);
}

TEST_F(MemTest, BankedIndexingFindsLinesAfterModeSwitch)
{
    // Fill a line in scalar mode, switch to vector mode: the same
    // line must MISS under banked indexing (wrong set), and the fill
    // must drop the stale scalar-mode copy so the cache never holds
    // two copies.
    bool a = false;
    sys.accessData(0, 0x8000, false, [&] { a = true; });
    runUntilDone(a);
    EXPECT_TRUE(sys.littleL1D(0).probe(0x8000));

    sys.setVectorMode(true);
    unsigned bank = sys.bankOf(0x8000);
    if (bank == 0) {
        EXPECT_TRUE(sys.littleL1D(0).residentAnywhere(0x8000));
        bool b = false;
        sys.accessBank(0, 0x8000, false, [&] { b = true; });
        runUntilDone(b);
        EXPECT_TRUE(sys.littleL1D(0).probe(0x8000));
        // exactly one copy resident
        EXPECT_TRUE(sys.littleL1D(0).residentAnywhere(0x8000));
    }
    sys.setVectorMode(false);
}

TEST_F(MemTest, BankInterleavingIsLineGranular)
{
    // Consecutive lines must map to consecutive banks (paper §III-E).
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(sys.bankOf(0x1000 + i * lineBytes), i % 4);
    // Addresses within one line map to the same bank.
    EXPECT_EQ(sys.bankOf(0x1000), sys.bankOf(0x103f));
}

TEST_F(MemTest, DramBandwidthSerializesLines)
{
    // Two misses to different L2 sets both go to DRAM; the second
    // line transfer must start after the first finishes its slot.
    bool a = false, b = false;
    Tick ta = 0, tb = 0;
    sys.accessData(0, 0x100000, false, [&] { a = true; ta = eq.now(); });
    sys.accessData(0, 0x200000, false, [&] { b = true; tb = eq.now(); });
    while ((!a || !b) && eq.step()) {}
    ASSERT_TRUE(a && b);
    // 64B at 25.6GB/s = 2.5ns per line slot.
    EXPECT_GE(tb, ta + 2 * ticksPerNs);
    EXPECT_EQ(stats.value("dram.reads"), 2u);
}

TEST_F(MemTest, InstructionFetchPathCounts)
{
    bool a = false;
    sys.fetchInst(0, 0x9000, [&] { a = true; });
    runUntilDone(a);
    bool b = false;
    sys.fetchInst(sys.bigCoreId(), 0x9000, [&] { b = true; });
    runUntilDone(b);
    EXPECT_EQ(stats.value("sys.ifetchReqs"), 2u);
    EXPECT_EQ(stats.value("little0.l1i.misses"), 1u);
    EXPECT_EQ(stats.value("big.l1i.misses"), 1u);
}

TEST_F(MemTest, DirectL2PathForDecoupledEngine)
{
    bool a = false;
    sys.accessL2(0xa000, false, [&] { a = true; });
    runUntilDone(a);
    EXPECT_EQ(stats.value("l2.accesses"), 1u);
    EXPECT_EQ(stats.value("sys.dataReqs"), 1u);
    // L1s untouched
    EXPECT_EQ(stats.value("little0.l1d.accesses"), 0u);
}

TEST_F(MemTest, MshrFullQueuesAndEventuallyCompletes)
{
    // little L1D has 8 MSHRs; issue 12 distinct-line misses.
    int completed = 0;
    for (int i = 0; i < 12; ++i)
        sys.accessData(0, 0x40000 + i * 4096, false,
                       [&] { ++completed; });
    while (completed < 12 && eq.step()) {}
    EXPECT_EQ(completed, 12);
    EXPECT_GE(stats.value("little0.l1d.mshrFull"), 1u);
}

} // namespace
} // namespace bvl
